// Result-cache tests (DESIGN.md §4.2). Four contracts:
//
//   (a) cached answers are bitwise identical to uncached ones over
//       randomized query/publish interleavings, on every route mode, at
//       1/2/4/8 pool threads,
//   (b) concurrent readers through a cache-attached store stay
//       bit-consistent per pinned version while a publisher churns
//       (runs under TSan in CI),
//   (c) publish-time invalidation is precise: clean-block engine entries
//       survive (hit), dirty-block entries miss, exact-path entries are
//       version-scoped, and a no-aliasing full build drops everything,
//   (d) a tiny capacity evicts without ever answering wrong, and pinned
//       old versions keep resolving within version_cap and degrade to
//       plain (still correct) compute past it.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"

#include "obs/metrics.hpp"
#include "pg/incremental.hpp"
#include "serve/model_store.hpp"
#include "serve/query_frontend.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot.hpp"
#include "serve_test_util.hpp"

namespace er {
namespace {

// ---------------------------------------------------------------------------
// (a) cached == uncached, bitwise, across interleavings and thread counts.
// ---------------------------------------------------------------------------

TEST(ResultCache, CachedMatchesUncachedBitwiseAcrossInterleavings) {
  const ServeCase c = make_case(20, 20, 48, 307);
  constexpr int kMods = 4;
  constexpr int kSteps = 14;

  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ReductionOptions opts;
    opts.num_blocks = 8;
    opts.parallel.num_threads = threads;
    obs::MetricsRegistry reg;
    ModelStore store(&reg);
    IncrementalReducer reducer(c.net, c.ports, opts);
    reducer.attach_store(&store);
    const auto cache =
        std::make_shared<ResultCache>(ResultCacheOptions{}, &reg);
    store.attach_cache(cache);
    ThreadPool pool(threads);
    ThreadPool* p = threads > 1 ? &pool : nullptr;

    const ModStream stream =
        make_mod_stream(c.net, reducer.structure(), kMods, 0.25, 1.3, 1100);
    const auto kept = kept_originals(reducer.model());

    // Randomized (seeded) interleaving of publishes and query batches.
    // Every batch pins one snapshot and is answered twice — through the
    // cache and without it — so a publish racing the pair can't confuse
    // the comparison. Batch seeds repeat (700 + step % 3), so later
    // batches revisit earlier keys and genuinely hit.
    Rng rng(static_cast<std::uint64_t>(threads) * 7919 + 5);
    int published = 0;
    for (int step = 0; step < kSteps; ++step) {
      if (published < kMods && rng.uniform() < 0.3) {
        const auto u = static_cast<std::size_t>(published++);
        reducer.update(stream.nets[u], stream.mods[u].dirty_blocks);
        continue;
      }
      const auto batch = mixed_batch(
          kept, 120, static_cast<std::uint64_t>(700 + step % 3));
      const RouteMode mode =
          step % 3 == 0   ? RouteMode::kSharded
          : step % 3 == 1 ? RouteMode::kMonolithic
                          : RouteMode::kLocalApprox;
      const SnapshotPtr snap = store.acquire();
      BatchStats cached_stats;
      const auto cached = QueryFrontEnd::answer_on(
          *snap, batch, {p, mode, &cached_stats, &reg, cache.get()});
      const auto uncached =
          QueryFrontEnd::answer_on(*snap, batch, {p, mode, nullptr, &reg});
      ASSERT_EQ(cached.size(), uncached.size());
      for (std::size_t i = 0; i < cached.size(); ++i) {
        // Bitwise comparison that treats the NaN of an invalid query as
        // equal to itself.
        const bool both_nan =
            std::isnan(cached[i]) && std::isnan(uncached[i]);
        ASSERT_TRUE(cached[i] == uncached[i] || both_nan)
            << to_string(mode) << " step " << step << " query " << i;
      }
      EXPECT_EQ(cached_stats.cache_hits + cached_stats.cache_misses,
                cached_stats.queries - cached_stats.invalid);
    }
    // The interleaving must have exercised the cache on both sides.
    EXPECT_GT(cache->hits(), 0u);
    EXPECT_GT(cache->misses(), 0u);
  }
}

// ---------------------------------------------------------------------------
// (b) concurrent readers + publisher, cache attached (TSan target).
// ---------------------------------------------------------------------------

TEST(ResultCache, ConcurrentReadersStayBitConsistentWithCacheAttached) {
  const ServeCase c = make_case(20, 20, 48, 311);
  ReductionOptions opts;
  opts.num_blocks = 8;
  opts.parallel.num_threads = 2;
  constexpr int kUpdates = 3;
  constexpr int kReaders = 4;
  constexpr int kBatchesPerReader = 12;

  // Per-version serial reference from a deterministic twin.
  std::vector<PortQuery> batch;
  std::map<std::uint64_t, std::vector<real_t>> reference;
  ModStream stream;
  {
    IncrementalReducer twin(c.net, c.ports, opts);
    batch = mixed_batch(kept_originals(twin.model()), 64, 19);
    reference[0] = QueryFrontEnd::answer_on(
        *ModelSnapshot::build(twin.blocks(), twin.model()), batch);
    stream = make_mod_stream(c.net, twin.structure(), kUpdates, 0.25, 1.4,
                             1200);
    for (int u = 1; u <= kUpdates; ++u) {
      twin.update(stream.nets[static_cast<std::size_t>(u - 1)],
                  stream.mods[static_cast<std::size_t>(u - 1)].dirty_blocks);
      reference[static_cast<std::uint64_t>(u)] = QueryFrontEnd::answer_on(
          *ModelSnapshot::build(twin.blocks(), twin.model()), batch);
    }
  }

  obs::MetricsRegistry reg;
  ModelStore store(&reg);
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  const auto cache =
      std::make_shared<ResultCache>(ResultCacheOptions{}, &reg);
  store.attach_cache(cache);
  const QueryFrontEnd frontend(&store, &reg);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r)
    readers.emplace_back([&] {
      for (int i = 0; i < kBatchesPerReader; ++i) {
        BatchStats stats;
        const auto got =
            frontend.answer(batch, nullptr, RouteMode::kSharded, &stats);
        const auto& want = reference.at(stats.snapshot_version);
        for (std::size_t j = 0; j < want.size(); ++j)
          if (got[j] != want[j]) {
            ++mismatches;
            break;
          }
      }
    });

  for (int u = 1; u <= kUpdates; ++u)
    reducer.update(stream.nets[static_cast<std::size_t>(u - 1)],
                   stream.mods[static_cast<std::size_t>(u - 1)].dirty_blocks);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  // Readers repeat one batch, so the cache must have served hits.
  EXPECT_GT(cache->hits(), 0u);
}

// ---------------------------------------------------------------------------
// (c) invalidation precision.
// ---------------------------------------------------------------------------

/// Same-block engine-eligible (kResistance) query batches, one per block,
/// with distinct consecutive kept-node pairs (each insert is unique).
std::vector<std::vector<PortQuery>> per_block_batches(
    const ModelSnapshot& snap, const std::vector<index_t>& kept,
    std::size_t pairs_per_block) {
  std::vector<std::vector<index_t>> by_block(
      static_cast<std::size_t>(snap.num_blocks()));
  for (index_t v : kept) {
    const index_t r = snap.reduced_id(v);
    if (r >= 0)
      by_block[static_cast<std::size_t>(snap.block_of_reduced(r))].push_back(
          v);
  }
  std::vector<std::vector<PortQuery>> batches(by_block.size());
  for (std::size_t b = 0; b < by_block.size(); ++b) {
    const auto& nodes = by_block[b];
    for (std::size_t i = 0;
         i + 1 < nodes.size() && batches[b].size() < pairs_per_block; i += 2)
      batches[b].push_back(
          {QueryKind::kResistance, nodes[i], nodes[i + 1]});
  }
  return batches;
}

TEST(ResultCache, PublishInvalidatesDirtyBlocksOnlyAndFullBuildDropsAll) {
  const ServeCase c = make_case(20, 20, 48, 313);
  ReductionOptions opts;
  opts.num_blocks = 6;
  obs::MetricsRegistry reg;
  ModelStore store(&reg);
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  // version_cap = 1: only the newest version's scopes stay live, so every
  // publish sweeps the stale scopes eagerly and the invalidations counter
  // accounts for exactly the entries that became unreachable.
  ResultCacheOptions copts;
  copts.version_cap = 1;
  const auto cache = std::make_shared<ResultCache>(copts, &reg);
  store.attach_cache(cache);
  const QueryFrontEnd frontend(&store, &reg);

  const auto kept = kept_originals(reducer.model());
  const SnapshotPtr snap0 = store.acquire();
  const auto batches = per_block_batches(*snap0, kept, 12);

  // Warm every block's engine entries (kLocalApprox routes same-block
  // resistance queries to the block engine, keyed by the block's scope).
  // A block without a resident engine falls back to the version-scoped
  // exact path; only fully-engine-answered blocks carry across publishes,
  // so track which those are.
  std::size_t engine_entries = 0;
  std::vector<char> engine_backed(batches.size(), 0);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    if (batches[b].empty()) continue;
    BatchStats stats;
    (void)frontend.answer(batches[b], nullptr, RouteMode::kLocalApprox,
                          &stats);
    EXPECT_EQ(stats.cache_hits, 0u) << "block " << b;
    engine_entries += stats.engine_answered;
    engine_backed[b] = stats.engine_answered == batches[b].size() ? 1 : 0;
  }
  ASSERT_GT(engine_entries, 0u);
  // Plus a version-scoped exact batch (distinct cross/sharded entries).
  const auto exact_batch = mixed_batch(kept, 80, 29);
  BatchStats exact_stats;
  (void)frontend.answer(exact_batch, nullptr, RouteMode::kSharded,
                        &exact_stats);
  const std::size_t entries_before = cache->entries();
  ASSERT_GT(entries_before, engine_entries);

  // Publish with one known-dirty block.
  GridModification mod;
  mod.dirty_blocks = {0};
  mod.resistance_scale = 1.5;
  const ConductanceNetwork net1 =
      apply_modification(c.net, reducer.structure(), mod);
  reducer.update(net1, mod.dirty_blocks);
  const SnapshotPtr snap1 = store.acquire();
  ASSERT_NE(snap0->version(), snap1->version());
  ASSERT_GT(snap1->reused_blocks(), 0);

  // Clean blocks: every warmed engine entry survives the publish (carried
  // scope). The dirty block: every probe misses (fresh scope).
  std::size_t clean_blocks_checked = 0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    if (batches[b].empty() || !engine_backed[b]) continue;
    BatchStats stats;
    (void)frontend.answer(batches[b], nullptr, RouteMode::kLocalApprox,
                          &stats);
    if (b == 0) {
      EXPECT_EQ(stats.cache_hits, 0u) << "dirty block must miss";
      EXPECT_GT(stats.cache_misses, 0u);
    } else {
      EXPECT_EQ(stats.cache_misses, 0u)
          << "clean block " << b << " must hit fully";
      EXPECT_EQ(stats.cache_hits, batches[b].size());
      ++clean_blocks_checked;
    }
  }
  EXPECT_GT(clean_blocks_checked, 0u);
  // Exact-path entries are version-scoped: the same batch misses through.
  BatchStats exact_after;
  (void)frontend.answer(exact_batch, nullptr, RouteMode::kSharded,
                        &exact_after);
  EXPECT_EQ(exact_after.cache_hits, 0u);

  // A full from-scratch snapshot (no artifact aliasing) carries nothing:
  // after its publish every prior entry is unreachable and swept.
  const std::size_t entries_mid = cache->entries();
  const std::uint64_t invalidated_mid = cache->invalidations();
  store.publish(ModelSnapshot::build(reducer.blocks(), reducer.model(),
                                     snap1->options(), nullptr,
                                     snap1->version() + 1));
  EXPECT_EQ(cache->entries(), 0u);
  EXPECT_EQ(cache->invalidations(), invalidated_mid + entries_mid);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    if (batches[b].empty()) continue;
    BatchStats stats;
    (void)frontend.answer(batches[b], nullptr, RouteMode::kLocalApprox,
                          &stats);
    EXPECT_EQ(stats.cache_hits, 0u) << "full build must drop block " << b;
  }
}

// ---------------------------------------------------------------------------
// (d) eviction under a tiny capacity + pinned-version resolution.
// ---------------------------------------------------------------------------

TEST(ResultCache, TinyCapacityEvictsWithoutEverAnsweringWrong) {
  const ServeCase c = make_case(18, 18, 40, 317);
  ReductionOptions opts;
  opts.num_blocks = 6;
  obs::MetricsRegistry reg;
  ModelStore store(&reg);
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  ResultCacheOptions copts;
  copts.shards = 1;
  copts.max_entries = 16;  // far below the batch working set
  const auto cache = std::make_shared<ResultCache>(copts, &reg);
  store.attach_cache(cache);

  const auto kept = kept_originals(reducer.model());
  const SnapshotPtr snap = store.acquire();
  for (int round = 0; round < 4; ++round) {
    const auto batch = mixed_batch(
        kept, 200, static_cast<std::uint64_t>(1300 + round % 2));
    for (RouteMode mode :
         {RouteMode::kSharded, RouteMode::kLocalApprox}) {
      const auto cached = QueryFrontEnd::answer_on(
          *snap, batch, {nullptr, mode, nullptr, &reg, cache.get()});
      const auto plain = QueryFrontEnd::answer_on(
          *snap, batch, {nullptr, mode, nullptr, &reg});
      for (std::size_t i = 0; i < cached.size(); ++i) {
        const bool both_nan = std::isnan(cached[i]) && std::isnan(plain[i]);
        ASSERT_TRUE(cached[i] == plain[i] || both_nan)
            << to_string(mode) << " round " << round << " query " << i;
      }
    }
  }
  EXPECT_GT(cache->evictions(), 0u);
  EXPECT_LE(cache->entries(), copts.max_entries);
}

TEST(ResultCache, PinnedVersionsResolveWithinCapAndDegradePastIt) {
  const ServeCase c = make_case(18, 18, 40, 331);
  ReductionOptions opts;
  opts.num_blocks = 6;
  obs::MetricsRegistry reg;
  ModelStore store(&reg);
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  ResultCacheOptions copts;
  copts.version_cap = 2;
  const auto cache = std::make_shared<ResultCache>(copts, &reg);
  store.attach_cache(cache);

  const auto kept = kept_originals(reducer.model());
  const auto batch = mixed_batch(kept, 100, 37);
  const ModStream stream =
      make_mod_stream(c.net, reducer.structure(), 2, 0.25, 1.3, 1400);

  // Pin version 0, warm it, then publish once: {v0, v1} both within the
  // cap, so the pinned snapshot keeps hitting its own scoped entries.
  const SnapshotPtr pinned = store.acquire();
  BatchStats warm;
  (void)QueryFrontEnd::answer_on(
      *pinned, batch,
      {nullptr, RouteMode::kSharded, &warm, &reg, cache.get()});
  EXPECT_GT(warm.cache_misses, 0u);
  reducer.update(stream.nets[0], stream.mods[0].dirty_blocks);
  BatchStats still_cached;
  const auto hit_answers = QueryFrontEnd::answer_on(
      *pinned, batch,
      {nullptr, RouteMode::kSharded, &still_cached, &reg, cache.get()});
  EXPECT_GT(still_cached.cache_hits, 0u);
  EXPECT_EQ(still_cached.cache_misses, 0u);

  // Second publish ages v0 past the cap: the pinned snapshot's version no
  // longer resolves, so the cache is bypassed — zero probes, answers
  // still bitwise identical to the warm run.
  reducer.update(stream.nets[1], stream.mods[1].dirty_blocks);
  BatchStats past_cap;
  const auto plain_answers = QueryFrontEnd::answer_on(
      *pinned, batch,
      {nullptr, RouteMode::kSharded, &past_cap, &reg, cache.get()});
  EXPECT_EQ(past_cap.cache_hits, 0u);
  EXPECT_EQ(past_cap.cache_misses, 0u);
  ASSERT_EQ(hit_answers.size(), plain_answers.size());
  for (std::size_t i = 0; i < hit_answers.size(); ++i) {
    const bool both_nan =
        std::isnan(hit_answers[i]) && std::isnan(plain_answers[i]);
    ASSERT_TRUE(hit_answers[i] == plain_answers[i] || both_nan)
        << "query " << i;
  }
}

}  // namespace
}  // namespace er
