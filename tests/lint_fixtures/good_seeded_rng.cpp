// Lint fixture (never compiled): the sanctioned pattern — util/rng's Rng
// seeded through mix_seed(seed, stream). Mentions of std::rand and
// steady_clock in this comment and the string below must NOT trip the
// lint (comments and strings are stripped). Expected: clean.
#include "util/rng.hpp"

double fixture_sample(std::uint64_t seed, std::uint64_t block) {
  er::Rng rng(er::mix_seed(seed, block));
  const char* note = "std::mt19937 and std::random_device are banned";
  (void)note;
  return rng.uniform();
}
