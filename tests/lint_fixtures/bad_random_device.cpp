// Lint fixture (never compiled): std::random_device — non-deterministic
// hardware entropy. Expected: [banned-rng].
#include <random>

unsigned fixture_entropy() {
  std::random_device rd;
  return rd();
}
