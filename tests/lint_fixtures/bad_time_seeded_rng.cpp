// Lint fixture (never compiled): time-seeded engine — different stream
// every run. Expected: [banned-rng] (mt19937_64, srand) and [wall-clock]
// (time(nullptr)).
#include <ctime>
#include <random>

int fixture_roll() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::mt19937_64 gen(static_cast<unsigned long>(std::rand()));
  return static_cast<int>(gen());
}
