// Lint fixture (never compiled): unseeded std::mt19937 — its default seed
// is fixed, but the distribution implementations are platform-dependent,
// so the lint bans the engine family outright. Expected: [banned-rng].
#include <random>

int fixture_roll() {
  std::mt19937 gen;
  return static_cast<int>(gen());
}
