// Lint fixture (never compiled): const/constexpr statics and static
// member functions are fine — immutable or stateless. Expected: clean.

static const int kFixtureTableSize = 64;
static constexpr double kFixtureTolerance = 1e-9;

struct FixtureHelper {
  static int clamp(int v);
  static FixtureHelper& instance();
};

static int fixture_twice(int v) { return 2 * v; }
