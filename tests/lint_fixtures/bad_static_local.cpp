// Lint fixture (never compiled): mutable static/thread_local state —
// call-order-dependent results. Expected: [static-mutable] x3.
#include <vector>

int fixture_next_id() {
  static int counter = 0;
  return ++counter;
}

thread_local std::vector<int> fixture_scratch;

static double fixture_accumulator{0.0};
