// Lint fixture (never compiled): a clock read that only feeds a stats
// field, registered in the self-test's allowlist with a reason — the
// escape hatch pattern for reporting-only timers. Expected: clean WITH
// the fixture allowlist, [wall-clock] without it.
#include <chrono>

struct FixtureStats {
  double wall_seconds = 0.0;
};

void fixture_time_it(FixtureStats& stats) {
  const auto t0 = std::chrono::steady_clock::now();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}
