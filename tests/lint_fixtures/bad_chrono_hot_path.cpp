// Lint fixture (never compiled): a clock read steering model-affecting
// work (time-budgeted iteration) — classic determinism leak: the result
// depends on machine speed. Expected: [wall-clock] on the include and
// the steady_clock uses.
#include <chrono>

double fixture_refine(double x) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  while (std::chrono::steady_clock::now() < deadline) x = 0.5 * (x + 2.0 / x);
  return x;
}
