// Tests for incremental ER updates (Sherman-Morrison edge-addition
// preview) and ApproxInverse serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "approxinv/approx_inverse.hpp"
#include "chol/ichol.hpp"
#include "effres/exact.hpp"
#include "effres/updates.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "util/rng.hpp"

namespace er {
namespace {

TEST(EdgeUpdate, MatchesRebuiltGraph) {
  Graph g = grid_2d(8, 8, WeightKind::kUniform, 1);
  const ExactEffRes before(g);
  const index_t a = 3, b = 60;
  const real_t w = 0.7;
  const EdgeUpdatePreview preview(before, a, b, w);

  g.add_edge(a, b, w);
  const ExactEffRes after(g);

  Rng rng(2);
  for (int t = 0; t < 30; ++t) {
    const index_t p = rng.uniform_int(g.num_nodes());
    index_t q = rng.uniform_int(g.num_nodes());
    if (q == p) q = (q + 1) % g.num_nodes();
    EXPECT_NEAR(preview.updated_resistance(p, q), after.resistance(p, q),
                1e-9);
  }
}

TEST(EdgeUpdate, DeltaIsNonPositive) {
  // Rayleigh monotonicity through the closed form.
  const Graph g = barabasi_albert(80, 2, WeightKind::kUniform, 3);
  const ExactEffRes engine(g);
  const EdgeUpdatePreview preview(engine, 5, 60, 1.5);
  Rng rng(4);
  for (int t = 0; t < 50; ++t) {
    const index_t p = rng.uniform_int(80);
    const index_t q = rng.uniform_int(80);
    EXPECT_LE(preview.delta(p, q), 1e-12);
  }
}

TEST(EdgeUpdate, NewEdgeEndpointsShrinkMost) {
  const Graph g = grid_2d(6, 6, WeightKind::kUnit, 5);
  const ExactEffRes engine(g);
  const index_t a = 0, b = 35;  // opposite corners
  const EdgeUpdatePreview preview(engine, a, b, 1.0);
  // R'(a,b) = R(a,b) / (1 + w R(a,b)) — parallel resistor formula.
  const real_t r0 = engine.resistance(a, b);
  EXPECT_NEAR(preview.updated_resistance(a, b), r0 / (1 + r0), 1e-10);
}

TEST(EdgeUpdate, RejectsBadInput) {
  const Graph g = grid_2d(3, 3, WeightKind::kUnit, 6);
  const ExactEffRes engine(g);
  EXPECT_THROW(EdgeUpdatePreview(engine, 1, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(EdgeUpdatePreview(engine, 0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(EdgeUpdatePreview(engine, 0, 1, -2.0), std::invalid_argument);
}

TEST(Serialize, StreamRoundTrip) {
  const Graph g = grid_2d(12, 12, WeightKind::kUniform, 7);
  const CholFactor f = ichol(grounded_laplacian(g), Ordering::kMinDeg, {});
  const ApproxInverse z = ApproxInverse::build(f);

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  z.save(ss);
  const ApproxInverse w = ApproxInverse::load(ss);

  ASSERT_EQ(w.dimension(), z.dimension());
  ASSERT_EQ(w.nnz(), z.nnz());
  for (index_t j = 0; j < z.dimension(); ++j) {
    const auto ra = z.column_rows(j), rb = w.column_rows(j);
    const auto va = z.column_values(j), vb = w.column_values(j);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k], rb[k]);
      EXPECT_DOUBLE_EQ(va[k], vb[k]);
    }
  }
  // Queries identical through the round trip.
  for (index_t p = 0; p < 20; ++p)
    EXPECT_DOUBLE_EQ(z.column_distance_squared(p, p + 50),
                     w.column_distance_squared(p, p + 50));
}

TEST(Serialize, FileRoundTrip) {
  const Graph g = barabasi_albert(100, 2, WeightKind::kUnit, 8);
  const CholFactor f = ichol(grounded_laplacian(g), Ordering::kMinDeg, {});
  const ApproxInverse z = ApproxInverse::build(f);
  const std::string path = "test_zcache.bin";
  z.save_file(path);
  const ApproxInverse w = ApproxInverse::load_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(w.nnz(), z.nnz());
  EXPECT_EQ(w.perm(), z.perm());
}

TEST(Serialize, RejectsCorruptedInput) {
  std::stringstream bad1(std::string("GARBAGE"), std::ios::in | std::ios::binary);
  EXPECT_THROW(ApproxInverse::load(bad1), std::runtime_error);

  // Truncate a valid payload.
  const Graph g = grid_2d(5, 5, WeightKind::kUnit, 9);
  const CholFactor f = ichol(grounded_laplacian(g), Ordering::kMinDeg, {});
  const ApproxInverse z = ApproxInverse::build(f);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  z.save(ss);
  std::string payload = ss.str();
  payload.resize(payload.size() / 2);
  std::stringstream cut(payload, std::ios::in | std::ios::binary);
  EXPECT_THROW(ApproxInverse::load(cut), std::runtime_error);
}

}  // namespace
}  // namespace er
