// Wire-protocol codec tests (DESIGN.md §8): randomized round-trip
// properties (encode -> decode is bit-identical, including f64 payloads,
// at any fragmentation granularity) and an adversarial-frame suite —
// truncated headers, oversized declared lengths, bad magic/version/CRC,
// zero-length batches, trailing garbage, mutated bytes. Decoders must
// reject cleanly: no crash, no over-read (the ASan/UBSan CI jobs run this
// suite), no resynchronization after a fatal framing error.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "util/rng.hpp"

namespace er::net {
namespace {

std::vector<std::uint8_t> u32_bytes(std::uint32_t v) {
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  return out;
}

/// A double with a fully random bit pattern, nudged away from NaN/Inf so
/// == comparison is the same as bit comparison.
double random_finite(Rng& rng) {
  for (;;) {
    std::uint64_t bits = rng.next_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    if (std::isfinite(v)) return v;
  }
}

QueryBatchRequest random_batch(Rng& rng, std::size_t count) {
  QueryBatchRequest req;
  const RouteMode routes[] = {RouteMode::kSharded, RouteMode::kMonolithic,
                              RouteMode::kLocalApprox};
  req.route = routes[rng.uniform_index(3)];
  for (std::size_t i = 0; i < count; ++i) {
    PortQuery q;
    q.kind = rng.bernoulli(0.5) ? QueryKind::kResponse : QueryKind::kResistance;
    q.p = static_cast<index_t>(rng.next_u64());
    q.q = static_cast<index_t>(rng.next_u64());
    // Half the queries carry a non-default policy so the v2 round-trip
    // exercises every field; the rest stay at the v1-compatible default.
    if (rng.bernoulli(0.5)) {
      q.policy.deadline_us = static_cast<std::uint32_t>(rng.next_u64());
      q.policy.accuracy_tier = static_cast<AccuracyTier>(rng.uniform_index(3));
      q.policy.backend_pref = static_cast<BackendPref>(rng.uniform_index(4));
      q.policy.hedge = rng.bernoulli(0.5);
    }
    req.queries.push_back(q);
  }
  return req;
}

TEST(NetProtocolCrc, KnownAnswer) {
  // The zlib/IEEE 802.3 check value for "123456789".
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(NetProtocolRoundTrip, QueryBatchRandomized) {
  Rng rng(11);
  for (int iter = 0; iter < 50; ++iter) {
    const QueryBatchRequest req =
        random_batch(rng, 1 + rng.uniform_index(40));
    QueryBatchRequest back;
    ASSERT_TRUE(decode_query_batch(encode_query_batch(req), &back));
    EXPECT_EQ(back.route, req.route);
    ASSERT_EQ(back.queries.size(), req.queries.size());
    for (std::size_t i = 0; i < req.queries.size(); ++i) {
      EXPECT_EQ(back.queries[i].kind, req.queries[i].kind);
      EXPECT_EQ(back.queries[i].p, req.queries[i].p);
      EXPECT_EQ(back.queries[i].q, req.queries[i].q);
      EXPECT_EQ(back.queries[i].policy.deadline_us,
                req.queries[i].policy.deadline_us);
      EXPECT_EQ(back.queries[i].policy.accuracy_tier,
                req.queries[i].policy.accuracy_tier);
      EXPECT_EQ(back.queries[i].policy.backend_pref,
                req.queries[i].policy.backend_pref);
      EXPECT_EQ(back.queries[i].policy.hedge, req.queries[i].policy.hedge);
    }
  }
}

TEST(NetProtocolRoundTrip, OldDialectDropsPoliciesToDefaults) {
  // A v1 batch (old client or old server) carries no policy bytes:
  // encoding at kMinProtocolVersion drops them, decoding a v1 payload
  // yields the default policy for every query.
  Rng rng(21);
  QueryBatchRequest req = random_batch(rng, 12);
  req.queries[0].policy = {250'000u, AccuracyTier::kFast,
                           BackendPref::kLocalApprox, true};
  const std::vector<std::uint8_t> v1 =
      encode_query_batch(req, kMinProtocolVersion);
  // v1 per-query layout is 9 bytes (kind + p + q); v2 is 16.
  EXPECT_EQ(v1.size(), 1 + 4 + req.queries.size() * 9);
  QueryBatchRequest back;
  ASSERT_TRUE(decode_query_batch(v1, &back, kMinProtocolVersion));
  ASSERT_EQ(back.queries.size(), req.queries.size());
  for (std::size_t i = 0; i < back.queries.size(); ++i) {
    EXPECT_EQ(back.queries[i].kind, req.queries[i].kind);
    EXPECT_EQ(back.queries[i].p, req.queries[i].p);
    EXPECT_EQ(back.queries[i].q, req.queries[i].q);
    EXPECT_TRUE(is_default(back.queries[i].policy)) << "query " << i;
  }
  // Dialect mismatch is rejected rather than misparsed: a v1 payload does
  // not decode as v2 and vice versa (the fixed per-query width differs).
  EXPECT_FALSE(decode_query_batch(v1, &back, kProtocolVersion));
  EXPECT_FALSE(decode_query_batch(encode_query_batch(req, kProtocolVersion),
                                  &back, kMinProtocolVersion));
}

TEST(NetProtocolRoundTrip, ModificationRandomized) {
  Rng rng(12);
  for (int iter = 0; iter < 50; ++iter) {
    WireModification mod;
    const std::size_t count = 1 + rng.uniform_index(30);
    for (std::size_t i = 0; i < count; ++i)
      mod.dirty_blocks.push_back(static_cast<index_t>(rng.uniform_index(1u << 20)));
    mod.resistance_scale = 0.25 + rng.uniform();
    WireModification back;
    ASSERT_TRUE(decode_modification(encode_modification(mod), &back));
    EXPECT_EQ(back.dirty_blocks, mod.dirty_blocks);
    // Bit-identical, not approximately-equal.
    EXPECT_EQ(std::memcmp(&back.resistance_scale, &mod.resistance_scale,
                          sizeof(real_t)),
              0);
  }
}

TEST(NetProtocolRoundTrip, AnswerBitPatterns) {
  Rng rng(13);
  AnswerReply reply;
  reply.snapshot_version = rng.next_u64();
  // Exercise awkward doubles explicitly: ±0, denormals, huge, tiny.
  reply.answers = {0.0, -0.0, 5e-324, -5e-324, 1.7976931348623157e308,
                   -2.2250738585072014e-308};
  for (int i = 0; i < 64; ++i) reply.answers.push_back(random_finite(rng));
  AnswerReply back;
  ASSERT_TRUE(decode_answer(encode_answer(reply), &back));
  EXPECT_EQ(back.snapshot_version, reply.snapshot_version);
  ASSERT_EQ(back.answers.size(), reply.answers.size());
  EXPECT_EQ(std::memcmp(back.answers.data(), reply.answers.data(),
                        reply.answers.size() * sizeof(real_t)),
            0);
}

TEST(NetProtocolRoundTrip, EmptyAnswerIsValid) {
  // Unlike requests, an answer may carry zero values (e.g. future no-op
  // replies); the decoder accepts count = 0.
  AnswerReply reply;
  reply.snapshot_version = 7;
  AnswerReply back;
  ASSERT_TRUE(decode_answer(encode_answer(reply), &back));
  EXPECT_TRUE(back.answers.empty());
  EXPECT_EQ(back.snapshot_version, 7u);
}

TEST(NetProtocolRoundTrip, StatsAndError) {
  StatsReply s;
  s.has_version = true;
  s.snapshot_version = 41;
  s.publishes = 42;
  s.connections_accepted = 5;
  s.connections_rejected = 1;
  s.requests_admitted = 99;
  s.retry_later_sent = 3;
  s.mods_applied = 17;
  s.bad_frames = 2;
  s.queue_depth = 8;
  s.draining = true;
  StatsReply sb;
  ASSERT_TRUE(decode_stats(encode_stats(s), &sb));
  EXPECT_EQ(sb.snapshot_version, 41u);
  EXPECT_EQ(sb.publishes, 42u);
  EXPECT_EQ(sb.retry_later_sent, 3u);
  EXPECT_EQ(sb.queue_depth, 8u);
  EXPECT_TRUE(sb.has_version);
  EXPECT_TRUE(sb.draining);

  ErrorReply e;
  e.code = ErrorCode::kNoModel;
  e.message = "nothing published";
  ErrorReply eb;
  ASSERT_TRUE(decode_error(encode_error(e), &eb));
  EXPECT_EQ(eb.code, ErrorCode::kNoModel);
  EXPECT_EQ(eb.message, "nothing published");
}

TEST(NetProtocolFraming, ByteAtATimeRoundTrip) {
  Rng rng(14);
  const QueryBatchRequest req = random_batch(rng, 9);
  const std::vector<std::uint8_t> wire =
      encode_frame(Opcode::kErBatch, 0xDEADBEEFCAFEBABEull,
                   encode_query_batch(req));
  FrameBuffer buf;
  Frame frame;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    buf.append(&wire[i], 1);
    ASSERT_EQ(buf.next(&frame), DecodeStatus::kNeedMore) << "at byte " << i;
  }
  buf.append(&wire.back(), 1);
  ASSERT_EQ(buf.next(&frame), DecodeStatus::kOk);
  EXPECT_EQ(frame.opcode, static_cast<std::uint16_t>(Opcode::kErBatch));
  EXPECT_EQ(frame.request_id, 0xDEADBEEFCAFEBABEull);
  QueryBatchRequest back;
  ASSERT_TRUE(decode_query_batch(frame.payload, &back));
  ASSERT_EQ(back.queries.size(), req.queries.size());
  EXPECT_EQ(buf.next(&frame), DecodeStatus::kNeedMore);
}

TEST(NetProtocolFraming, PolicyFrameSplitAcrossThreeFeeds) {
  // A policy-bearing v2 frame delivered in three fragments: the first two
  // feeds end mid-header / mid-payload, the third completes the frame and
  // every policy field survives intact.
  Rng rng(22);
  QueryBatchRequest req = random_batch(rng, 6);
  req.queries[0].policy = {125'000u, AccuracyTier::kApprox,
                           BackendPref::kMonolithic, false};
  req.queries[5].policy = {40u, AccuracyTier::kFast, BackendPref::kLocalApprox,
                           true};
  const std::vector<std::uint8_t> wire =
      encode_frame(Opcode::kErBatch, 31, encode_query_batch(req));
  const std::size_t cut1 = kHeaderBytes / 2;      // mid-header
  const std::size_t cut2 = kHeaderBytes + 7;      // mid-payload
  ASSERT_LT(cut2, wire.size());
  FrameBuffer buf;
  Frame frame;
  buf.append(wire.data(), cut1);
  ASSERT_EQ(buf.next(&frame), DecodeStatus::kNeedMore);
  buf.append(wire.data() + cut1, cut2 - cut1);
  ASSERT_EQ(buf.next(&frame), DecodeStatus::kNeedMore);
  buf.append(wire.data() + cut2, wire.size() - cut2);
  ASSERT_EQ(buf.next(&frame), DecodeStatus::kOk);
  EXPECT_EQ(frame.version, kProtocolVersion);
  QueryBatchRequest back;
  ASSERT_TRUE(decode_query_batch(frame.payload, &back, frame.version));
  ASSERT_EQ(back.queries.size(), req.queries.size());
  for (std::size_t i = 0; i < back.queries.size(); ++i) {
    EXPECT_EQ(back.queries[i].policy.deadline_us,
              req.queries[i].policy.deadline_us);
    EXPECT_EQ(back.queries[i].policy.accuracy_tier,
              req.queries[i].policy.accuracy_tier);
    EXPECT_EQ(back.queries[i].policy.backend_pref,
              req.queries[i].policy.backend_pref);
    EXPECT_EQ(back.queries[i].policy.hedge, req.queries[i].policy.hedge);
  }
}

TEST(NetProtocolFraming, OldVersionFrameCarriesItsDialect) {
  // A v1 frame from an old client passes framing (version within the
  // accepted window) and reports version 1, so the server decodes the
  // payload with the v1 dialect and queries get the default policy.
  Rng rng(23);
  const QueryBatchRequest req = random_batch(rng, 4);
  const std::vector<std::uint8_t> wire =
      encode_frame(Opcode::kErBatch, 8,
                   encode_query_batch(req, kMinProtocolVersion),
                   kMinProtocolVersion);
  FrameBuffer buf;
  buf.append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(buf.next(&frame), DecodeStatus::kOk);
  EXPECT_EQ(frame.version, kMinProtocolVersion);
  QueryBatchRequest back;
  ASSERT_TRUE(decode_query_batch(frame.payload, &back, frame.version));
  ASSERT_EQ(back.queries.size(), req.queries.size());
  for (const PortQuery& q : back.queries)
    EXPECT_TRUE(is_default(q.policy));
}

TEST(NetProtocolFraming, MultipleFramesOneAppend) {
  std::vector<std::uint8_t> wire = encode_frame(Opcode::kStats, 1, {});
  const std::vector<std::uint8_t> second =
      encode_frame(Opcode::kModAck, 2, {});
  wire.insert(wire.end(), second.begin(), second.end());
  FrameBuffer buf;
  buf.append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(buf.next(&frame), DecodeStatus::kOk);
  EXPECT_EQ(frame.request_id, 1u);
  ASSERT_EQ(buf.next(&frame), DecodeStatus::kOk);
  EXPECT_EQ(frame.request_id, 2u);
  EXPECT_EQ(buf.next(&frame), DecodeStatus::kNeedMore);
  EXPECT_EQ(buf.pending_bytes(), 0u);
}

TEST(NetProtocolFraming, LongLivedBufferCompacts) {
  // Enough traffic to cross the internal compaction threshold; the
  // decoder must keep producing correct frames throughout.
  FrameBuffer buf;
  Frame frame;
  const std::vector<std::uint8_t> payload(300, 0x5A);
  for (std::uint64_t id = 0; id < 64; ++id) {
    const std::vector<std::uint8_t> wire =
        encode_frame(Opcode::kErBatch, id, payload);
    buf.append(wire.data(), wire.size());
    ASSERT_EQ(buf.next(&frame), DecodeStatus::kOk);
    EXPECT_EQ(frame.request_id, id);
    ASSERT_EQ(frame.payload.size(), payload.size());
  }
  EXPECT_EQ(buf.pending_bytes(), 0u);
}

TEST(NetProtocolFraming, TruncatedHeaderNeedsMore) {
  const std::vector<std::uint8_t> wire = encode_frame(Opcode::kStats, 9, {});
  FrameBuffer buf;
  buf.append(wire.data(), kHeaderBytes - 1);
  Frame frame;
  EXPECT_EQ(buf.next(&frame), DecodeStatus::kNeedMore);
}

TEST(NetProtocolFraming, BadMagicIsSticky) {
  std::vector<std::uint8_t> wire = encode_frame(Opcode::kStats, 9, {});
  wire[0] ^= 0xFF;
  FrameBuffer buf;
  buf.append(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(buf.next(&frame), DecodeStatus::kBadMagic);
  // A valid frame appended afterwards cannot resynchronize the stream.
  const std::vector<std::uint8_t> good = encode_frame(Opcode::kStats, 10, {});
  buf.append(good.data(), good.size());
  EXPECT_EQ(buf.next(&frame), DecodeStatus::kBadMagic);
}

TEST(NetProtocolFraming, BadVersionRejected) {
  std::vector<std::uint8_t> wire = encode_frame(Opcode::kStats, 9, {});
  wire[4] = 0x7F;
  FrameBuffer buf;
  buf.append(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(buf.next(&frame), DecodeStatus::kBadVersion);
}

TEST(NetProtocolFraming, OversizedLengthRejectedFromHeaderAlone) {
  // Declare kMaxPayloadBytes + 1 but send only the header: the decoder
  // must reject without waiting for (or buffering toward) the payload.
  std::vector<std::uint8_t> wire = encode_frame(Opcode::kErBatch, 9, {});
  const std::vector<std::uint8_t> len = u32_bytes(kMaxPayloadBytes + 1);
  std::memcpy(wire.data() + 16, len.data(), 4);
  FrameBuffer buf;
  buf.append(wire.data(), kHeaderBytes);
  Frame frame;
  EXPECT_EQ(buf.next(&frame), DecodeStatus::kBadLength);
}

TEST(NetProtocolFraming, CorruptPayloadFailsCrc) {
  const std::vector<std::uint8_t> payload(32, 0x11);
  std::vector<std::uint8_t> wire = encode_frame(Opcode::kErBatch, 9, payload);
  wire[kHeaderBytes + 7] ^= 0x01;  // one flipped payload bit
  FrameBuffer buf;
  buf.append(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(buf.next(&frame), DecodeStatus::kBadCrc);
}

TEST(NetProtocolFraming, MutatedFramesNeverCrash) {
  // Single-byte mutations anywhere in a valid frame: every outcome must
  // be a clean status. Header mutations in the length field may
  // legitimately report kNeedMore (a longer-but-bounded declared
  // payload); everything else must resolve. ASan/UBSan patrol the
  // no-over-read part.
  Rng rng(15);
  const std::vector<std::uint8_t> base =
      encode_frame(Opcode::kErBatch, 77,
                   encode_query_batch(random_batch(rng, 5)));
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<std::uint8_t> wire = base;
    const std::size_t pos = rng.uniform_index(wire.size());
    wire[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    FrameBuffer buf;
    buf.append(wire.data(), wire.size());
    Frame frame;
    const DecodeStatus st = buf.next(&frame);
    if (st == DecodeStatus::kOk) {
      // Only a mutation of opcode / request id (not covered by the CRC)
      // can still decode as a frame.
      EXPECT_TRUE((pos >= 6 && pos < 16))
          << "byte " << pos << " mutated but frame decoded";
      QueryBatchRequest req;
      (void)decode_query_batch(frame.payload, &req);  // must not crash
    }
  }
}

TEST(NetProtocolPayload, QueryBatchRejectsMalformed) {
  Rng rng(16);
  const QueryBatchRequest req = random_batch(rng, 4);
  const std::vector<std::uint8_t> good = encode_query_batch(req);
  QueryBatchRequest out;

  std::vector<std::uint8_t> zero = good;
  std::memset(zero.data() + 1, 0, 4);  // count = 0
  EXPECT_FALSE(decode_query_batch(zero, &out));

  std::vector<std::uint8_t> huge = good;
  const std::vector<std::uint8_t> count = u32_bytes(kMaxBatchItems + 1);
  std::memcpy(huge.data() + 1, count.data(), 4);
  EXPECT_FALSE(decode_query_batch(huge, &out));

  std::vector<std::uint8_t> truncated = good;
  truncated.pop_back();
  EXPECT_FALSE(decode_query_batch(truncated, &out));

  std::vector<std::uint8_t> trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(decode_query_batch(trailing, &out));

  std::vector<std::uint8_t> bad_route = good;
  bad_route[0] = 9;
  EXPECT_FALSE(decode_query_batch(bad_route, &out));

  std::vector<std::uint8_t> bad_kind = good;
  bad_kind[5] = 9;  // first query's kind byte
  EXPECT_FALSE(decode_query_batch(bad_kind, &out));

  EXPECT_FALSE(decode_query_batch({}, &out));
}

TEST(NetProtocolPayload, PolicyBytesOutOfRangeRejected) {
  // v2 per-query layout: kind u8, p i32, q i32, deadline u32, tier u8,
  // pref u8, hedge u8 (16 bytes). For the first query (payload offset 5)
  // that puts tier at 18, pref at 19, hedge at 20. Every enum byte outside
  // its wire range must fail decoding; the deadline is a free u32 and any
  // value must pass.
  Rng rng(24);
  const QueryBatchRequest req = random_batch(rng, 4);
  const std::vector<std::uint8_t> good = encode_query_batch(req);
  QueryBatchRequest out;
  ASSERT_TRUE(decode_query_batch(good, &out));

  constexpr std::size_t kTierAt = 18, kPrefAt = 19, kHedgeAt = 20;
  for (int v = 3; v < 256; v += 41) {  // 3 is the first invalid tier
    std::vector<std::uint8_t> bad = good;
    bad[kTierAt] = static_cast<std::uint8_t>(v);
    EXPECT_FALSE(decode_query_batch(bad, &out)) << "tier byte " << v;
  }
  for (int v = 4; v < 256; v += 41) {  // 4 is the first invalid pref
    std::vector<std::uint8_t> bad = good;
    bad[kPrefAt] = static_cast<std::uint8_t>(v);
    EXPECT_FALSE(decode_query_batch(bad, &out)) << "pref byte " << v;
  }
  for (int v = 2; v < 256; v += 41) {  // hedge is strictly 0/1
    std::vector<std::uint8_t> bad = good;
    bad[kHedgeAt] = static_cast<std::uint8_t>(v);
    EXPECT_FALSE(decode_query_batch(bad, &out)) << "hedge byte " << v;
  }

  // All in-range enum bytes and any deadline bit pattern decode fine.
  std::vector<std::uint8_t> tweaked = good;
  tweaked[kTierAt] = 2;
  tweaked[kPrefAt] = 3;
  tweaked[kHedgeAt] = 1;
  for (std::size_t i = 14; i < 18; ++i)  // deadline bytes of query 0
    tweaked[i] = 0xFF;
  ASSERT_TRUE(decode_query_batch(tweaked, &out));
  EXPECT_EQ(out.queries[0].policy.deadline_us, 0xFFFFFFFFu);
  EXPECT_EQ(out.queries[0].policy.accuracy_tier, AccuracyTier::kFast);
  EXPECT_EQ(out.queries[0].policy.backend_pref, BackendPref::kLocalApprox);
  EXPECT_TRUE(out.queries[0].policy.hedge);
}

TEST(NetProtocolPayload, ModificationRejectsMalformed) {
  WireModification mod;
  mod.dirty_blocks = {0, 3, 5};
  mod.resistance_scale = 1.25;
  const std::vector<std::uint8_t> good = encode_modification(mod);
  WireModification out;
  ASSERT_TRUE(decode_modification(good, &out));

  std::vector<std::uint8_t> zero = good;
  std::memset(zero.data(), 0, 4);  // zero dirty blocks
  EXPECT_FALSE(decode_modification(zero, &out));

  std::vector<std::uint8_t> truncated = good;
  truncated.pop_back();
  EXPECT_FALSE(decode_modification(truncated, &out));

  WireModification nan_scale = mod;
  nan_scale.resistance_scale = std::nan("");
  EXPECT_FALSE(decode_modification(encode_modification(nan_scale), &out));

  WireModification neg_scale = mod;
  neg_scale.resistance_scale = -2.0;
  EXPECT_FALSE(decode_modification(encode_modification(neg_scale), &out));

  EXPECT_FALSE(decode_modification({}, &out));
}

TEST(NetProtocolPayload, ErrorRejectsMalformed) {
  ErrorReply e;
  e.code = ErrorCode::kBadPayload;
  e.message = "x";
  const std::vector<std::uint8_t> good = encode_error(e);
  ErrorReply out;

  std::vector<std::uint8_t> bad_code = good;
  bad_code[0] = 0;
  EXPECT_FALSE(decode_error(bad_code, &out));
  bad_code[0] = 200;
  EXPECT_FALSE(decode_error(bad_code, &out));

  // Declared message length runs past the payload.
  std::vector<std::uint8_t> overlen = good;
  const std::vector<std::uint8_t> len = u32_bytes(1000);
  std::memcpy(overlen.data() + 4, len.data(), 4);
  EXPECT_FALSE(decode_error(overlen, &out));

  // Oversized messages are clamped at encode time, not rejected.
  ErrorReply big;
  big.code = ErrorCode::kInternal;
  big.message.assign(kMaxErrorBytes + 500, 'y');
  ASSERT_TRUE(decode_error(encode_error(big), &out));
  EXPECT_EQ(out.message.size(), kMaxErrorBytes);
}

}  // namespace
}  // namespace er::net
