// Shared fixtures of the serving test suites (test_serving.cpp,
// test_async_updater.cpp, test_result_cache.cpp): a small gridded
// ConductanceNetwork with random ports/pad shunts, mixed
// response/resistance query batches over its surviving nodes, the
// AsyncUpdater<->IncrementalReducer wiring, and deterministic
// modification streams.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "pg/incremental.hpp"
#include "reduction/pipeline.hpp"
#include "serve/async_updater.hpp"
#include "serve/query_frontend.hpp"
#include "util/rng.hpp"

namespace er {

struct ServeCase {
  ConductanceNetwork net;
  std::vector<char> ports;
};

/// nx-by-ny uniform grid with `nports` random ports, the first four of
/// which get pad shunts (so the stitched system is SPD).
inline ServeCase make_case(index_t nx, index_t ny, index_t nports,
                           std::uint64_t seed) {
  ServeCase c;
  c.net.graph = grid_2d(nx, ny, WeightKind::kUniform, seed);
  const index_t n = nx * ny;
  c.net.shunts.assign(static_cast<std::size_t>(n), 0.0);
  c.ports.assign(static_cast<std::size_t>(n), 0);
  Rng rng(seed + 1);
  index_t placed = 0;
  while (placed < nports) {
    const index_t v = rng.uniform_int(n);
    if (c.ports[static_cast<std::size_t>(v)]) continue;
    c.ports[static_cast<std::size_t>(v)] = 1;
    if (placed < 4) c.net.shunts[static_cast<std::size_t>(v)] = 50.0;
    ++placed;
  }
  return c;
}

/// Original node ids that survive the reduction.
inline std::vector<index_t> kept_originals(const ReducedModel& model) {
  std::vector<index_t> kept;
  for (std::size_t v = 0; v < model.node_map.size(); ++v)
    if (model.node_map[v] >= 0) kept.push_back(static_cast<index_t>(v));
  return kept;
}

/// Mixed batch over surviving original nodes: alternating response /
/// resistance queries on random pairs (naturally mixing intra- and
/// cross-block routing).
inline std::vector<PortQuery> mixed_batch(const std::vector<index_t>& nodes,
                                          std::size_t count,
                                          std::uint64_t seed) {
  std::vector<PortQuery> batch;
  batch.reserve(count);
  Rng rng(seed);
  const auto n = static_cast<index_t>(nodes.size());
  for (std::size_t i = 0; i < count; ++i) {
    PortQuery query;
    query.kind = i % 2 == 0 ? QueryKind::kResistance : QueryKind::kResponse;
    query.p = nodes[static_cast<std::size_t>(rng.uniform_int(n))];
    query.q = nodes[static_cast<std::size_t>(rng.uniform_int(n))];
    batch.push_back(query);
  }
  return batch;
}

/// The AsyncUpdater <-> IncrementalReducer wiring used throughout: the
/// worker applies the batch through the reducer (whose attached store
/// publishes the snapshot) and reports the resulting revision.
inline AsyncUpdater::UpdateFn bind_reducer(IncrementalReducer& reducer) {
  return [&reducer](const ConductanceNetwork& net,
                    const std::vector<index_t>& dirty) {
    reducer.update(net, dirty);
    return reducer.revision();
  };
}

/// A deterministic modification stream: nets[u] is the *cumulative*
/// network state after mods[0..u] (the AsyncUpdater submission contract —
/// each submitted network already contains every earlier modification).
struct ModStream {
  std::vector<ConductanceNetwork> nets;
  std::vector<GridModification> mods;
};

/// Build `count` random modifications over `base`, seeded seed0+1..
/// seed0+count. `structure` must be captured from the reducer *before*
/// any update runs (IncrementalReducer::structure() mutates during
/// update(), so the submitter snapshots the routing info up front).
inline ModStream make_mod_stream(const ConductanceNetwork& base,
                                 const BlockStructure& structure, int count,
                                 real_t fraction, real_t scale,
                                 std::uint64_t seed0) {
  ModStream stream;
  ConductanceNetwork current = base;
  for (int u = 1; u <= count; ++u) {
    const GridModification mod =
        random_modification(structure.num_blocks, fraction, scale,
                            seed0 + static_cast<std::uint64_t>(u));
    current = apply_modification(current, structure, mod);
    stream.nets.push_back(current);
    stream.mods.push_back(mod);
  }
  return stream;
}

}  // namespace er
