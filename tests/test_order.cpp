// Tests for order: elimination tree on known matrices, postorder validity,
// permutation utilities, RCM and minimum-degree quality/sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "order/etree.hpp"
#include "order/mindeg.hpp"
#include "order/rcm.hpp"

namespace er {
namespace {

/// Dense symbolic Cholesky fill count (reference for ordering quality).
offset_t fill_count(const CscMatrix& a, const std::vector<index_t>& perm) {
  const CscMatrix ap = a.permute_symmetric(perm);
  const index_t n = ap.cols();
  std::vector<std::vector<char>> dense(
      static_cast<std::size_t>(n), std::vector<char>(static_cast<std::size_t>(n), 0));
  for (index_t c = 0; c < n; ++c)
    for (offset_t k = ap.col_ptr()[static_cast<std::size_t>(c)];
         k < ap.col_ptr()[static_cast<std::size_t>(c) + 1]; ++k)
      dense[static_cast<std::size_t>(ap.row_ind()[static_cast<std::size_t>(k)])]
           [static_cast<std::size_t>(c)] = 1;
  offset_t nnz = 0;
  for (index_t k = 0; k < n; ++k) {
    for (index_t i = k; i < n; ++i) {
      if (!dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]) continue;
      if (i > k) {
        for (index_t j = i; j < n; ++j)
          if (dense[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)]) {
            dense[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = 1;
            dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = 1;
          }
      }
      ++nnz;
    }
  }
  return nnz;
}

CscMatrix arrow_matrix(index_t n) {
  // Arrowhead: dense first row/column + diagonal. Natural order fills
  // completely; eliminating the hub last gives no fill.
  TripletMatrix t(n, n);
  for (index_t i = 0; i < n; ++i) t.add(i, i, static_cast<real_t>(n + 1));
  for (index_t i = 1; i < n; ++i) t.add_symmetric(0, i, -1.0);
  return CscMatrix::from_triplets(t);
}

TEST(Etree, PathGraphIsAChain) {
  // Tridiagonal matrix: etree is the path 0 -> 1 -> ... -> n-1.
  const Graph g = grid_2d(6, 1);
  const CscMatrix l = grounded_laplacian(g);
  const auto parent = etree(l);
  for (index_t i = 0; i + 1 < 6; ++i) EXPECT_EQ(parent[static_cast<std::size_t>(i)], i + 1);
  EXPECT_EQ(parent[5], -1);
}

TEST(Etree, ArrowheadNaturalOrder) {
  // With the hub first, every node's parent chain runs through the next
  // node: column 0 connects to all, creating a chain.
  const CscMatrix a = arrow_matrix(5);
  const auto parent = etree(a);
  EXPECT_EQ(parent[0], 1);
  EXPECT_EQ(parent[1], 2);
  EXPECT_EQ(parent[4], -1);
}

TEST(Etree, ParentAlwaysLarger) {
  const Graph g = erdos_renyi(60, 150, WeightKind::kUnit, 3);
  const CscMatrix l = grounded_laplacian(g);
  const auto parent = etree(l);
  for (index_t v = 0; v < 60; ++v) {
    if (parent[static_cast<std::size_t>(v)] != -1) {
      EXPECT_GT(parent[static_cast<std::size_t>(v)], v);
    }
  }
}

TEST(Postorder, IsAPermutationAndChildrenFirst) {
  const Graph g = erdos_renyi(40, 90, WeightKind::kUnit, 5);
  const CscMatrix l = grounded_laplacian(g);
  const auto parent = etree(l);
  const auto post = postorder(parent);
  EXPECT_TRUE(is_permutation(post));
  // position[] of each node in the postorder.
  std::vector<index_t> pos(post.size());
  for (std::size_t i = 0; i < post.size(); ++i)
    pos[static_cast<std::size_t>(post[i])] = static_cast<index_t>(i);
  for (index_t v = 0; v < 40; ++v) {
    const index_t p = parent[static_cast<std::size_t>(v)];
    if (p >= 0) {
      EXPECT_LT(pos[static_cast<std::size_t>(v)], pos[static_cast<std::size_t>(p)]);
    }
  }
}

TEST(TreeHeights, PathAndStar) {
  // Path etree: heights 0..n-1.
  std::vector<index_t> chain{1, 2, 3, -1};
  const auto h1 = tree_heights(chain);
  EXPECT_EQ(h1[3], 3);
  EXPECT_EQ(h1[0], 0);
  // Star rooted at 3.
  std::vector<index_t> star{3, 3, 3, -1};
  const auto h2 = tree_heights(star);
  EXPECT_EQ(h2[3], 1);
}

TEST(Permutations, InvertRoundTrip) {
  const std::vector<index_t> perm{2, 0, 3, 1};
  EXPECT_TRUE(is_permutation(perm));
  const auto inv = invert_permutation(perm);
  for (index_t i = 0; i < 4; ++i)
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])], i);
}

TEST(Permutations, DetectsInvalid) {
  EXPECT_FALSE(is_permutation({0, 0, 1}));
  EXPECT_FALSE(is_permutation({0, 3, 1}));
  EXPECT_TRUE(is_permutation({}));
}

TEST(Rcm, ProducesValidPermutation) {
  const Graph g = random_geometric(300, 0.1, WeightKind::kUnit, 7);
  const CscMatrix l = grounded_laplacian(g);
  const auto perm = rcm_order(l);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(Rcm, ReducesBandwidthOnShuffledGrid) {
  // Take a 2D grid, shuffle it, and check RCM restores a small bandwidth.
  const Graph g = grid_2d(12, 12);
  CscMatrix l = grounded_laplacian(g);
  Rng rng(9);
  std::vector<index_t> shuffle = identity_permutation(l.cols());
  for (index_t i = l.cols(); i-- > 1;)
    std::swap(shuffle[static_cast<std::size_t>(i)],
              shuffle[static_cast<std::size_t>(rng.uniform_int(i + 1))]);
  l = l.permute_symmetric(shuffle);

  auto bandwidth = [](const CscMatrix& m) {
    index_t b = 0;
    for (index_t c = 0; c < m.cols(); ++c)
      for (offset_t k = m.col_ptr()[static_cast<std::size_t>(c)];
           k < m.col_ptr()[static_cast<std::size_t>(c) + 1]; ++k)
        b = std::max(b, static_cast<index_t>(std::abs(
                            m.row_ind()[static_cast<std::size_t>(k)] - c)));
    return b;
  };

  const auto perm = rcm_order(l);
  const CscMatrix lp = l.permute_symmetric(perm);
  EXPECT_LT(bandwidth(lp), bandwidth(l) / 2);
  EXPECT_LE(bandwidth(lp), 30);  // grid bandwidth should be ~nx
}

TEST(MinDeg, ProducesValidPermutation) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = erdos_renyi(120, 400, WeightKind::kUnit, seed);
    const CscMatrix l = grounded_laplacian(g);
    const auto perm = mindeg_order(l);
    EXPECT_TRUE(is_permutation(perm));
  }
}

TEST(MinDeg, SolvesArrowheadOptimally) {
  // Minimum degree must eliminate the hub last -> zero fill.
  const index_t n = 20;
  const CscMatrix a = arrow_matrix(n);
  const auto perm = mindeg_order(a);
  EXPECT_TRUE(is_permutation(perm));
  // Hub (old index 0) must be among the last two (once one leaf remains,
  // hub and leaf are degree-tied and either elimination is fill-free).
  EXPECT_TRUE(perm[static_cast<std::size_t>(n) - 1] == 0 ||
              perm[static_cast<std::size_t>(n) - 2] == 0);
  EXPECT_EQ(fill_count(a, perm), static_cast<offset_t>(2 * n - 1));
}

TEST(MinDeg, BeatsNaturalOrderOnGrid) {
  const Graph g = grid_2d(10, 10);
  const CscMatrix l = grounded_laplacian(g);
  const auto natural = identity_permutation(l.cols());
  const auto md = mindeg_order(l);
  EXPECT_LE(fill_count(l, md), fill_count(l, natural));
}

TEST(MinDeg, HandlesDiagonalMatrix) {
  TripletMatrix t(5, 5);
  for (index_t i = 0; i < 5; ++i) t.add(i, i, 1.0);
  const CscMatrix a = CscMatrix::from_triplets(t);
  const auto perm = mindeg_order(a);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(ComputeOrdering, DispatchesAllKinds) {
  const Graph g = grid_2d(5, 5);
  const CscMatrix l = grounded_laplacian(g);
  for (auto kind : {Ordering::kNatural, Ordering::kRcm, Ordering::kMinDeg}) {
    const auto perm = compute_ordering(l, kind);
    EXPECT_TRUE(is_permutation(perm));
  }
  const auto nat = compute_ordering(l, Ordering::kNatural);
  for (index_t i = 0; i < l.cols(); ++i)
    EXPECT_EQ(nat[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace er
