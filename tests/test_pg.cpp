// Tests for pg: model validation, generator structure, netlist round trip,
// DC analysis (KCL, reduction accuracy), transient analysis (analytic RC
// reference, original vs reduced), incremental analysis (cache equivalence).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "graph/components.hpp"
#include "pg/analysis.hpp"
#include "pg/generator.hpp"
#include "pg/incremental.hpp"
#include "pg/netlist.hpp"
#include "pg/power_grid.hpp"
#include "sparse/dense.hpp"

namespace er {
namespace {

PgGeneratorOptions small_grid_opts(std::uint64_t seed = 1) {
  PgGeneratorOptions o;
  o.nx = 16;
  o.ny = 16;
  o.layers = 2;
  o.pads_per_side = 2;
  o.load_density = 0.1;
  o.seed = seed;
  return o;
}

TEST(PowerGrid, LoadWaveform) {
  CurrentLoad l;
  l.dc = 1.0;
  l.pulse = 2.0;
  l.period = 10.0;
  l.duty = 0.3;
  EXPECT_DOUBLE_EQ(l.current_at(0.0), 3.0);   // pulse on
  EXPECT_DOUBLE_EQ(l.current_at(2.9), 3.0);   // still on
  EXPECT_DOUBLE_EQ(l.current_at(3.1), 1.0);   // off
  EXPECT_DOUBLE_EQ(l.current_at(12.9), 3.0);  // periodic
}

TEST(PowerGrid, NetworkConversion) {
  PowerGrid pg;
  pg.num_nodes = 3;
  pg.resistors.push_back({0, 1, 2.0});
  pg.resistors.push_back({1, 2, 4.0});
  pg.pads.push_back({0, 100.0});
  const ConductanceNetwork net = pg.to_network();
  EXPECT_EQ(net.num_nodes(), 3);
  EXPECT_DOUBLE_EQ(net.graph.edges()[0].weight, 0.5);
  EXPECT_DOUBLE_EQ(net.graph.edges()[1].weight, 0.25);
  EXPECT_DOUBLE_EQ(net.shunts[0], 100.0);
}

TEST(PowerGrid, PortMaskCoversPadsAndLoads) {
  PowerGrid pg;
  pg.num_nodes = 5;
  pg.resistors.push_back({0, 1, 1.0});
  pg.pads.push_back({0, 10.0});
  pg.loads.push_back({3, 1e-3, 0, 1e-9, 0.5});
  const auto mask = pg.port_mask();
  EXPECT_TRUE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_TRUE(mask[3]);
  EXPECT_EQ(pg.port_nodes().size(), 2u);
}

TEST(Generator, ProducesValidConnectedGrid) {
  const PowerGrid pg = generate_power_grid(small_grid_opts());
  EXPECT_TRUE(pg.validate());
  EXPECT_TRUE(is_connected(pg.to_network().graph));
  EXPECT_FALSE(pg.pads.empty());
  EXPECT_FALSE(pg.loads.empty());
  EXPECT_EQ(pg.capacitors.size(), static_cast<std::size_t>(pg.num_nodes));
}

TEST(Generator, PresetSizesIncrease) {
  index_t prev = 0;
  for (int idx : {2, 3, 6}) {
    const PgGeneratorOptions o = ibmpg_like_preset(idx, 0.2);
    const PowerGrid pg = generate_power_grid(o);
    EXPECT_GT(pg.num_nodes, prev);
    prev = pg.num_nodes;
  }
}

TEST(Generator, DeterministicForSeed) {
  const PowerGrid a = generate_power_grid(small_grid_opts(5));
  const PowerGrid b = generate_power_grid(small_grid_opts(5));
  ASSERT_EQ(a.resistors.size(), b.resistors.size());
  for (std::size_t i = 0; i < a.resistors.size(); ++i)
    EXPECT_DOUBLE_EQ(a.resistors[i].resistance, b.resistors[i].resistance);
}

TEST(Netlist, RoundTrip) {
  const PowerGrid pg = generate_power_grid(small_grid_opts(7));
  std::stringstream ss;
  write_netlist(pg, ss);
  const PowerGrid back = read_netlist(ss);
  EXPECT_EQ(back.num_nodes, pg.num_nodes);
  ASSERT_EQ(back.resistors.size(), pg.resistors.size());
  ASSERT_EQ(back.loads.size(), pg.loads.size());
  ASSERT_EQ(back.pads.size(), pg.pads.size());
  for (std::size_t i = 0; i < pg.resistors.size(); ++i) {
    EXPECT_EQ(back.resistors[i].a, pg.resistors[i].a);
    EXPECT_EQ(back.resistors[i].b, pg.resistors[i].b);
    EXPECT_NEAR(back.resistors[i].resistance, pg.resistors[i].resistance,
                1e-6 * pg.resistors[i].resistance);
  }
}

TEST(Netlist, ParsesHandWrittenDeck) {
  std::stringstream ss(R"(* tiny grid
R1 0 1 2.0
R2 1 2 2.0
C1 1 0 1e-15
I1 2 0 1e-3
V1 0 0 1.8 100.0
.end)");
  const PowerGrid pg = read_netlist(ss);
  EXPECT_EQ(pg.num_nodes, 3);
  EXPECT_EQ(pg.resistors.size(), 2u);
  EXPECT_DOUBLE_EQ(pg.vdd, 1.8);
  EXPECT_DOUBLE_EQ(pg.pads[0].conductance, 100.0);
}

TEST(Netlist, RejectsMalformedInput) {
  std::stringstream bad1("R1 0 0 1.0\n");
  EXPECT_THROW(read_netlist(bad1), std::runtime_error);
  std::stringstream bad2("R1 0 1 -1.0\n");
  EXPECT_THROW(read_netlist(bad2), std::runtime_error);
  std::stringstream bad3("X1 0 1 1.0\n");
  EXPECT_THROW(read_netlist(bad3), std::runtime_error);
}

TEST(DcAnalysis, TwoResistorDivider) {
  // pad --1ohm-- node1 --1ohm-- node2 with 1A draw at node2:
  // drop(node2) = I*(Rpad + R1 + R2) with Rpad = 1/g.
  PowerGrid pg;
  pg.num_nodes = 3;
  pg.resistors.push_back({0, 1, 1.0});
  pg.resistors.push_back({1, 2, 1.0});
  pg.pads.push_back({0, 1000.0});
  pg.loads.push_back({2, 1.0, 0, 1e-9, 0.5});
  const DcSolution sol = solve_dc(pg.to_network(), pg.load_vector(0.0));
  EXPECT_NEAR(sol.drops[2], 1.0 * (1e-3 + 1.0 + 1.0), 1e-9);
  EXPECT_NEAR(sol.drops[1], 1.0 * (1e-3 + 1.0), 1e-9);
  EXPECT_NEAR(sol.drops[0], 1e-3, 1e-9);
}

TEST(DcAnalysis, KclHolds) {
  // Net current through every non-load node is zero: G d = J exactly.
  const PowerGrid pg = generate_power_grid(small_grid_opts(9));
  const ConductanceNetwork net = pg.to_network();
  const auto j = pg.load_vector(0.0);
  const DcSolution sol = solve_dc(net, j);
  const auto residual = net.system_matrix().multiply(sol.drops);
  for (index_t v = 0; v < pg.num_nodes; ++v)
    EXPECT_NEAR(residual[static_cast<std::size_t>(v)],
                j[static_cast<std::size_t>(v)], 1e-9);
}

TEST(DcAnalysis, DropsAreNonnegative) {
  // With current draws only, every node sits at or below Vdd.
  const PowerGrid pg = generate_power_grid(small_grid_opts(10));
  const DcSolution sol = solve_dc(pg.to_network(), pg.load_vector(0.0));
  for (real_t d : sol.drops) EXPECT_GE(d, -1e-12);
}

TEST(DcAnalysis, ReducedModelMatchesFull) {
  const PowerGrid pg = generate_power_grid(small_grid_opts(11));
  const ConductanceNetwork net = pg.to_network();
  const auto j = pg.load_vector(0.0);
  const DcSolution full = solve_dc(net, j);

  ReductionOptions ropts;
  ropts.num_blocks = 4;
  ropts.sparsify_quality = 6.0;
  const ReducedModel m = reduce_network(net, pg.port_mask(), ropts);
  const DcSolution red = solve_dc(m.network, map_injections(m, j));
  const SolutionError err = compare_dc(full.drops, red, m, pg.port_nodes());
  EXPECT_LT(err.rel, 0.05);
}

TEST(Transient, MatchesAnalyticRcDecay) {
  // Single node: pad conductance g to supply, cap C, constant load I.
  // d(t) = I/g * (1 - exp(-g t / C)) from rest. Backward Euler converges to
  // this with O(h) error.
  PowerGrid pg;
  pg.num_nodes = 2;
  pg.resistors.push_back({0, 1, 1e-3});  // tie node 1 tightly to the pad node
  pg.pads.push_back({0, 1.0});           // g = 1
  pg.capacitors.push_back({1, 1.0});     // C = 1
  pg.loads.push_back({1, 1.0, 0, 1e9, 0.0});  // I = 1, no pulse

  TransientOptions topts;
  topts.step = 1e-3;
  topts.steps = 2000;  // t_end = 2
  const TransientResult res =
      run_transient(pg.to_network(), pg.capacitance_vector(), pg.loads, topts,
                    {1});
  const real_t t_end = topts.step * topts.steps;
  const real_t analytic = 1.0 * (1.0 - std::exp(-t_end));
  EXPECT_NEAR(res.series[0].back(), analytic, 5e-3);
}

TEST(Transient, SettlesToDcUnderConstantLoad) {
  PowerGrid pg = generate_power_grid(small_grid_opts(12));
  for (auto& l : pg.loads) l.pulse = 0.0;  // constant loads
  const ConductanceNetwork net = pg.to_network();

  TransientOptions topts;
  topts.step = 5e-10;  // ~25 tau for these caps
  topts.steps = 200;
  const auto ports = pg.port_nodes();
  const TransientResult res =
      run_transient(net, pg.capacitance_vector(), pg.loads, topts, ports);

  const DcSolution dc = solve_dc(net, pg.load_vector(0.0));
  for (std::size_t p = 0; p < ports.size(); ++p)
    EXPECT_NEAR(res.series[p].back(),
                dc.drops[static_cast<std::size_t>(ports[p])], 1e-4);
}

TEST(Transient, ReducedModelTracksOriginal) {
  const PowerGrid pg = generate_power_grid(small_grid_opts(13));
  const ConductanceNetwork net = pg.to_network();
  const auto ports = pg.port_nodes();

  TransientOptions topts;
  topts.step = 2e-11;
  topts.steps = 120;
  const TransientResult full =
      run_transient(net, pg.capacitance_vector(), pg.loads, topts, ports);

  ReductionOptions ropts;
  ropts.num_blocks = 4;
  ropts.sparsify_quality = 6.0;
  const ReducedModel m = reduce_network(net, pg.port_mask(), ropts);
  std::vector<index_t> red_ports;
  for (index_t p : ports)
    red_ports.push_back(m.node_map[static_cast<std::size_t>(p)]);
  const TransientResult red = run_transient(
      m.network, map_capacitances(m, pg.capacitance_vector()),
      map_loads(m, pg.loads), topts, red_ports);

  double max_drop = 0.0;
  for (const auto& s : full.series)
    for (real_t v : s) max_drop = std::max(max_drop, std::abs(v));
  const SolutionError err = compare_transient(full, red, max_drop);
  EXPECT_LT(err.rel, 0.05);
}

TEST(Transient, CapacitanceMappingConservesTotal) {
  const PowerGrid pg = generate_power_grid(small_grid_opts(14));
  const ConductanceNetwork net = pg.to_network();
  ReductionOptions ropts;
  ropts.num_blocks = 4;
  const ReducedModel m = reduce_network(net, pg.port_mask(), ropts);
  const auto full_caps = pg.capacitance_vector();
  const auto red_caps = map_capacitances(m, full_caps);
  real_t total_full = 0.0, total_red = 0.0;
  for (real_t c : full_caps) total_full += c;
  for (real_t c : red_caps) total_red += c;
  EXPECT_NEAR(total_red, total_full, 1e-12 * total_full + 1e-20);
}

TEST(Incremental, ModificationScalesOnlyDirtyBlocks) {
  const PowerGrid pg = generate_power_grid(small_grid_opts(15));
  const ConductanceNetwork net = pg.to_network();
  ReductionOptions ropts;
  ropts.num_blocks = 4;
  const BlockStructure st = build_block_structure(net, pg.port_mask(), ropts);
  GridModification mod;
  mod.dirty_blocks = {1};
  mod.resistance_scale = 2.0;
  const ConductanceNetwork modified = apply_modification(net, st, mod);
  ASSERT_EQ(modified.graph.num_edges(), net.graph.num_edges());
  for (std::size_t e = 0; e < net.graph.num_edges(); ++e) {
    const Edge& a = net.graph.edges()[e];
    const Edge& b = modified.graph.edges()[e];
    const bool dirty = st.block_of[static_cast<std::size_t>(a.u)] == 1 &&
                       st.block_of[static_cast<std::size_t>(a.v)] == 1;
    if (dirty)
      EXPECT_NEAR(b.weight, a.weight / 2.0, 1e-15);
    else
      EXPECT_DOUBLE_EQ(b.weight, a.weight);
  }
}

TEST(Incremental, UpdateMatchesFreshReduction) {
  // Incremental update must give the same reduced model as reducing the
  // modified grid from scratch with the same partition and seeds.
  const PowerGrid pg = generate_power_grid(small_grid_opts(16));
  const ConductanceNetwork net = pg.to_network();
  ReductionOptions ropts;
  ropts.num_blocks = 4;
  ropts.backend = ErBackend::kExact;

  IncrementalReducer inc(net, pg.port_mask(), ropts);
  const GridModification mod =
      random_modification(inc.structure().num_blocks, 0.25, 1.5, 3);
  const ConductanceNetwork modified =
      apply_modification(net, inc.structure(), mod);
  const ReducedModel& updated = inc.update(modified, mod.dirty_blocks);

  // Fresh full reduction over the same structure.
  std::vector<BlockReduced> blocks;
  for (index_t b = 0; b < inc.structure().num_blocks; ++b)
    blocks.push_back(
        reduce_block(modified, pg.port_mask(), inc.structure(), b, ropts));
  const ReducedModel fresh = stitch_blocks(modified, inc.structure(), blocks);

  ASSERT_EQ(updated.network.num_nodes(), fresh.network.num_nodes());
  ASSERT_EQ(updated.network.graph.num_edges(), fresh.network.graph.num_edges());
  for (std::size_t e = 0; e < fresh.network.graph.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(updated.network.graph.edges()[e].weight,
                     fresh.network.graph.edges()[e].weight);
  }
  // The update went through the copy-on-write stitch (clean blocks' node
  // slices carried over from the previous version) and is nevertheless
  // bit-identical to the from-scratch stitch, which reuses nothing.
  EXPECT_TRUE(models_identical(updated, fresh));
  EXPECT_EQ(updated.stats.stitch_reused_blocks,
            inc.structure().num_blocks -
                static_cast<index_t>(mod.dirty_blocks.size()));
  EXPECT_EQ(fresh.stats.stitch_reused_blocks, 0);
}

TEST(Incremental, CowStitchMatchesFullStitchDirectly) {
  // stitch_blocks_update against an explicit previous model: bit-identical
  // to stitch_blocks over the same inputs, at several thread counts, and
  // robust to a dirty set naming every block (nothing reusable).
  const PowerGrid pg = generate_power_grid(small_grid_opts(21));
  const ConductanceNetwork net = pg.to_network();
  ReductionOptions ropts;
  ropts.num_blocks = 4;

  IncrementalReducer inc(net, pg.port_mask(), ropts);
  const ReducedModel previous = inc.model();  // private copy as baseline
  const GridModification mod =
      random_modification(inc.structure().num_blocks, 0.5, 1.25, 11);
  const ConductanceNetwork modified =
      apply_modification(net, inc.structure(), mod);

  // Re-reduce the dirty blocks exactly as update() would.
  std::vector<BlockReduced> blocks = inc.blocks();
  BlockStructure st = inc.structure();
  for (auto& edges : st.block_edges) edges.clear();
  st.cut_edges.clear();
  for (const auto& e : modified.graph.edges()) {
    const index_t bu = st.block_of[static_cast<std::size_t>(e.u)];
    const index_t bv = st.block_of[static_cast<std::size_t>(e.v)];
    if (bu == bv)
      st.block_edges[static_cast<std::size_t>(bu)].push_back(e);
    else
      st.cut_edges.push_back(e);
  }
  for (index_t b : mod.dirty_blocks)
    blocks[static_cast<std::size_t>(b)] =
        reduce_block(modified, pg.port_mask(), st, b, ropts);

  const ReducedModel full = stitch_blocks(modified, st, blocks);
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    ThreadPool* p = threads > 1 ? &pool : nullptr;
    const ReducedModel cow =
        stitch_blocks_update(modified, st, blocks, previous,
                             mod.dirty_blocks, p);
    EXPECT_TRUE(models_identical(cow, full));
    EXPECT_EQ(cow.stats.stitch_reused_blocks,
              st.num_blocks - static_cast<index_t>(mod.dirty_blocks.size()));
  }

  // All-dirty set: nothing to reuse, still identical.
  std::vector<index_t> all_dirty;
  for (index_t b = 0; b < st.num_blocks; ++b) all_dirty.push_back(b);
  for (index_t b : all_dirty)
    blocks[static_cast<std::size_t>(b)] =
        reduce_block(modified, pg.port_mask(), st, b, ropts);
  const ReducedModel full2 = stitch_blocks(modified, st, blocks);
  const ReducedModel cow2 =
      stitch_blocks_update(modified, st, blocks, previous, all_dirty);
  EXPECT_TRUE(models_identical(cow2, full2));
  EXPECT_EQ(cow2.stats.stitch_reused_blocks, 0);
}

TEST(Incremental, UpdateIsFasterThanInitialReduction) {
  PgGeneratorOptions gopts = small_grid_opts(17);
  gopts.nx = 32;
  gopts.ny = 32;
  const PowerGrid pg = generate_power_grid(gopts);
  const ConductanceNetwork net = pg.to_network();
  ReductionOptions ropts;
  ropts.num_blocks = 8;

  IncrementalReducer inc(net, pg.port_mask(), ropts);
  const GridModification mod =
      random_modification(inc.structure().num_blocks, 0.1, 1.3, 5);
  const ConductanceNetwork modified =
      apply_modification(net, inc.structure(), mod);
  inc.update(modified, mod.dirty_blocks);
  EXPECT_LT(inc.update_seconds(), inc.initial_seconds());
}

TEST(Incremental, ReducedIncrementalSolutionAccurate) {
  const PowerGrid pg = generate_power_grid(small_grid_opts(18));
  const ConductanceNetwork net = pg.to_network();
  ReductionOptions ropts;
  ropts.num_blocks = 4;
  ropts.sparsify_quality = 6.0;

  IncrementalReducer inc(net, pg.port_mask(), ropts);
  const GridModification mod =
      random_modification(inc.structure().num_blocks, 0.25, 1.4, 7);
  const ConductanceNetwork modified =
      apply_modification(net, inc.structure(), mod);
  const ReducedModel& m = inc.update(modified, mod.dirty_blocks);

  const auto j = pg.load_vector(0.0);
  const DcSolution full = solve_dc(modified, j);
  const DcSolution red = solve_dc(m.network, map_injections(m, j));
  const SolutionError err = compare_dc(full.drops, red, m, pg.port_nodes());
  EXPECT_LT(err.rel, 0.05);
}

}  // namespace
}  // namespace er
