// Tests for reduction: Schur complement exactness (port-response
// preservation), network/matrix round trips, sparsification spectral
// quality, port merging, and the full Alg. 1 pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "chol/cholesky.hpp"
#include "effres/exact.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "reduction/network.hpp"
#include "reduction/pipeline.hpp"
#include "reduction/port_merge.hpp"
#include "reduction/schur.hpp"
#include "reduction/sparsify.hpp"
#include "sparse/dense.hpp"
#include "util/rng.hpp"

namespace er {
namespace {

/// Test fixture network: mesh + shunts at a few nodes (so it is SPD).
ConductanceNetwork mesh_network(index_t nx, index_t ny, std::uint64_t seed) {
  ConductanceNetwork net;
  net.graph = grid_2d(nx, ny, WeightKind::kUniform, seed);
  net.shunts.assign(static_cast<std::size_t>(nx * ny), 0.0);
  net.shunts[0] = 10.0;
  net.shunts[static_cast<std::size_t>(nx * ny - 1)] = 10.0;
  return net;
}

TEST(Network, MatrixRoundTrip) {
  const ConductanceNetwork net = mesh_network(5, 4, 1);
  const CscMatrix a = net.system_matrix();
  const ConductanceNetwork back = network_from_matrix(a);
  EXPECT_EQ(back.num_nodes(), net.num_nodes());
  // Graph weights and shunts must reproduce the matrix.
  const CscMatrix a2 = back.system_matrix();
  EXPECT_LT(a.add(a2, -1.0).max_abs(), 1e-12);
}

TEST(Network, RejectsPositiveOffDiagonal) {
  TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add_symmetric(0, 1, 0.5);  // positive off-diagonal: not a conductance
  EXPECT_THROW(network_from_matrix(CscMatrix::from_triplets(t)),
               std::invalid_argument);
}

TEST(Schur, PreservesPortResponseExactly) {
  // Solve A x = b with b supported on kept nodes; the Schur system must
  // reproduce x at the kept nodes to machine precision.
  const ConductanceNetwork net = mesh_network(6, 6, 2);
  const CscMatrix a = net.system_matrix();
  std::vector<index_t> keep{0, 5, 17, 30, 35};
  std::vector<index_t> elim;
  {
    std::vector<char> kept(36, 0);
    for (index_t k : keep) kept[static_cast<std::size_t>(k)] = 1;
    for (index_t v = 0; v < 36; ++v)
      if (!kept[static_cast<std::size_t>(v)]) elim.push_back(v);
  }
  const SchurResult s = schur_complement(a, keep, elim);

  Rng rng(3);
  std::vector<real_t> b(36, 0.0);
  for (index_t k : keep) b[static_cast<std::size_t>(k)] = rng.uniform(-1, 1);

  const CholFactor full = cholesky(a, Ordering::kMinDeg);
  const auto x_full = full.solve(b);

  std::vector<real_t> bs(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i)
    bs[i] = b[static_cast<std::size_t>(keep[i])];
  const CholFactor red = cholesky(s.matrix, Ordering::kMinDeg);
  const auto x_red = red.solve(bs);

  for (std::size_t i = 0; i < keep.size(); ++i)
    EXPECT_NEAR(x_red[i], x_full[static_cast<std::size_t>(keep[i])], 1e-9);
}

TEST(Schur, EmptyEliminationIsExtraction) {
  const ConductanceNetwork net = mesh_network(4, 4, 4);
  const CscMatrix a = net.system_matrix();
  std::vector<index_t> keep(16);
  for (index_t i = 0; i < 16; ++i) keep[static_cast<std::size_t>(i)] = i;
  const SchurResult s = schur_complement(a, keep, {});
  EXPECT_LT(a.add(s.matrix, -1.0).max_abs(), 1e-15);
}

TEST(Schur, ComplementIsSddConductanceNetwork) {
  // Schur complements of SDD matrices stay SDD: network_from_matrix must
  // accept them (nonnegative shunts, positive weights).
  const ConductanceNetwork net = mesh_network(8, 8, 5);
  const CscMatrix a = net.system_matrix();
  std::vector<index_t> keep, elim;
  for (index_t v = 0; v < 64; ++v)
    (v % 3 == 0 ? keep : elim).push_back(v);
  const SchurResult s = schur_complement(a, keep, elim);
  const ConductanceNetwork back = network_from_matrix(s.matrix);
  for (const auto& e : back.graph.edges()) EXPECT_GT(e.weight, 0.0);
  for (real_t sh : back.shunts) EXPECT_GE(sh, 0.0);
}

TEST(Schur, SizeMismatchThrows) {
  const CscMatrix a = mesh_network(3, 3, 6).system_matrix();
  EXPECT_THROW(schur_complement(a, {0, 1}, {2, 3}), std::invalid_argument);
}

TEST(Sparsify, SpanningForestKeepsConnectivity) {
  const Graph g = grid_2d(12, 12, WeightKind::kUniform, 7);
  const ExactEffRes er_engine(g);
  std::vector<real_t> edge_er;
  for (const auto& e : g.edges())
    edge_er.push_back(er_engine.resistance(e.u, e.v));
  SparsifyOptions opts;
  opts.quality = 0.3;  // aggressive
  const Graph s = sparsify_by_effective_resistance(g, edge_er, opts);
  EXPECT_TRUE(is_connected(s));
  EXPECT_LT(s.num_edges(), g.num_edges());
}

TEST(Sparsify, PreservesEffectiveResistancesApproximately) {
  const Graph g = grid_2d(10, 10, WeightKind::kUnit, 8);
  const ExactEffRes before(g);
  std::vector<real_t> edge_er;
  for (const auto& e : g.edges())
    edge_er.push_back(before.resistance(e.u, e.v));
  SparsifyOptions opts;
  opts.quality = 6.0;
  const Graph s = sparsify_by_effective_resistance(g, edge_er, opts);
  const ExactEffRes after(s);
  // Corner-to-corner resistance within ~25%.
  const real_t r0 = before.resistance(0, 99);
  const real_t r1 = after.resistance(0, 99);
  EXPECT_NEAR(r1, r0, 0.25 * r0);
}

TEST(Sparsify, TotalWeightRoughlyPreserved) {
  // Importance sampling is unbiased per edge: total conductance should be
  // within a modest factor of the original.
  const Graph g = grid_2d(14, 14, WeightKind::kUniform, 9);
  const ExactEffRes engine(g);
  std::vector<real_t> edge_er;
  for (const auto& e : g.edges())
    edge_er.push_back(engine.resistance(e.u, e.v));
  SparsifyOptions opts;
  opts.quality = 4.0;
  const Graph s = sparsify_by_effective_resistance(g, edge_er, opts);
  EXPECT_NEAR(s.total_weight(), g.total_weight(), 0.35 * g.total_weight());
}

TEST(Sparsify, MaxSpanningForestIsSpanning) {
  const Graph g = barabasi_albert(100, 3, WeightKind::kUniform, 10);
  std::vector<real_t> score(g.num_edges(), 1.0);
  const auto forest = max_spanning_forest(g, score);
  EXPECT_EQ(forest.size(), 99u);  // n-1 for a connected graph
}

TEST(PortMerge, DisabledThresholdKeepsEverything) {
  const Graph g = grid_2d(5, 5, WeightKind::kUnit, 11);
  std::vector<real_t> er_vals(g.num_edges(), 0.5);
  std::vector<char> mergeable(25, 1);
  MergeOptions opts;  // threshold 0
  const MergeResult r =
      merge_by_effective_resistance(g, er_vals, mergeable, opts);
  EXPECT_EQ(r.merged_count, 25);
  EXPECT_EQ(r.merged.num_edges(), g.num_edges());
}

TEST(PortMerge, MergesTightlyCoupledPair) {
  // Two nodes joined by a huge conductance (tiny ER) collapse.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1e6);  // nearly a short
  g.add_edge(2, 3, 1.0);
  const ExactEffRes engine(g);
  std::vector<real_t> er_vals;
  for (const auto& e : g.edges())
    er_vals.push_back(engine.resistance(e.u, e.v));
  std::vector<char> mergeable{1, 1, 1, 1};
  MergeOptions opts;
  opts.relative_threshold = 0.01;
  const MergeResult r =
      merge_by_effective_resistance(g, er_vals, mergeable, opts);
  EXPECT_EQ(r.merged_count, 3);
  EXPECT_EQ(r.node_map[1], r.node_map[2]);
}

TEST(PortMerge, NeverMergesTwoPorts) {
  Graph g(2);
  g.add_edge(0, 1, 1e9);
  std::vector<real_t> er_vals{1e-9};
  std::vector<char> mergeable{0, 0};  // both ports
  MergeOptions opts;
  opts.relative_threshold = 100.0;
  const MergeResult r =
      merge_by_effective_resistance(g, er_vals, mergeable, opts);
  EXPECT_EQ(r.merged_count, 2);
}

TEST(PortMerge, PortAbsorbsNonPort) {
  Graph g(3);
  g.add_edge(0, 1, 1e9);
  g.add_edge(1, 2, 1.0);
  std::vector<real_t> er_vals{1e-9, 0.9};
  std::vector<char> mergeable{0, 1, 1};  // 0 is a port
  MergeOptions opts;
  opts.relative_threshold = 0.1;
  const MergeResult r =
      merge_by_effective_resistance(g, er_vals, mergeable, opts);
  EXPECT_EQ(r.merged_count, 2);
  EXPECT_EQ(r.node_map[0], r.node_map[1]);
}

// ---------------- Full pipeline (Alg. 1) ----------------

struct PipelineCase {
  ConductanceNetwork net;
  std::vector<char> ports;
  std::vector<index_t> port_nodes;
};

PipelineCase make_case(index_t nx, index_t ny, index_t nports,
                       std::uint64_t seed) {
  PipelineCase c;
  c.net.graph = grid_2d(nx, ny, WeightKind::kUniform, seed);
  const index_t n = nx * ny;
  c.net.shunts.assign(static_cast<std::size_t>(n), 0.0);
  c.ports.assign(static_cast<std::size_t>(n), 0);
  Rng rng(seed + 1);
  while (static_cast<index_t>(c.port_nodes.size()) < nports) {
    const index_t v = rng.uniform_int(n);
    if (c.ports[static_cast<std::size_t>(v)]) continue;
    c.ports[static_cast<std::size_t>(v)] = 1;
    c.port_nodes.push_back(v);
  }
  // Ground a couple of ports so the system is SPD.
  c.net.shunts[static_cast<std::size_t>(c.port_nodes[0])] = 50.0;
  c.net.shunts[static_cast<std::size_t>(c.port_nodes[1])] = 50.0;
  return c;
}

/// Port-response error of a reduced model vs the original network.
real_t port_response_error(const PipelineCase& c, const ReducedModel& m) {
  Rng rng(77);
  std::vector<real_t> b(static_cast<std::size_t>(c.net.num_nodes()), 0.0);
  for (index_t p : c.port_nodes)
    b[static_cast<std::size_t>(p)] = rng.uniform(0.0, 1.0);

  const CholFactor full = cholesky(c.net.system_matrix(), Ordering::kMinDeg);
  const auto x_full = full.solve(b);

  std::vector<real_t> br(static_cast<std::size_t>(m.network.num_nodes()), 0.0);
  for (index_t p : c.port_nodes)
    br[static_cast<std::size_t>(m.node_map[static_cast<std::size_t>(p)])] +=
        b[static_cast<std::size_t>(p)];
  const CholFactor red = cholesky(m.network.system_matrix(), Ordering::kMinDeg);
  const auto x_red = red.solve(br);

  real_t err = 0.0, scale = 0.0;
  for (index_t p : c.port_nodes) {
    const index_t gid = m.node_map[static_cast<std::size_t>(p)];
    err += std::abs(x_full[static_cast<std::size_t>(p)] -
                    x_red[static_cast<std::size_t>(gid)]);
    scale = std::max(scale, std::abs(x_full[static_cast<std::size_t>(p)]));
  }
  return err / (static_cast<real_t>(c.port_nodes.size()) * scale);
}

TEST(Pipeline, AllPortsSurvive) {
  const PipelineCase c = make_case(16, 16, 40, 12);
  ReductionOptions opts;
  opts.num_blocks = 4;
  const ReducedModel m = reduce_network(c.net, c.ports, opts);
  for (index_t p : c.port_nodes)
    EXPECT_GE(m.node_map[static_cast<std::size_t>(p)], 0);
}

TEST(Pipeline, ReducesNodeCount) {
  const PipelineCase c = make_case(20, 20, 30, 13);
  ReductionOptions opts;
  opts.num_blocks = 4;
  const ReducedModel m = reduce_network(c.net, c.ports, opts);
  EXPECT_LT(m.stats.reduced_nodes, m.stats.original_nodes / 2);
  EXPECT_EQ(m.network.num_nodes(), m.stats.reduced_nodes);
}

TEST(Pipeline, ExactBackendSmallPortError) {
  const PipelineCase c = make_case(16, 16, 30, 14);
  ReductionOptions opts;
  opts.num_blocks = 4;
  opts.backend = ErBackend::kExact;
  opts.sparsify_quality = 6.0;
  const ReducedModel m = reduce_network(c.net, c.ports, opts);
  EXPECT_LT(port_response_error(c, m), 0.06);
}

TEST(Pipeline, ApproxCholBackendMatchesExactBackendQuality) {
  const PipelineCase c = make_case(16, 16, 30, 15);
  ReductionOptions exact_opts, alg3_opts;
  exact_opts.num_blocks = alg3_opts.num_blocks = 4;
  exact_opts.sparsify_quality = alg3_opts.sparsify_quality = 6.0;
  exact_opts.backend = ErBackend::kExact;
  alg3_opts.backend = ErBackend::kApproxChol;
  const ReducedModel me = reduce_network(c.net, c.ports, exact_opts);
  const ReducedModel ma = reduce_network(c.net, c.ports, alg3_opts);
  const real_t ee = port_response_error(c, me);
  const real_t ea = port_response_error(c, ma);
  // Paper claim: Alg. 3 ER does not degrade reduction accuracy.
  EXPECT_LT(ea, ee * 2.0 + 0.02);
}

TEST(Pipeline, MergingShrinksModelFurther) {
  const PipelineCase c = make_case(16, 16, 20, 16);
  ReductionOptions no_merge, with_merge;
  no_merge.num_blocks = with_merge.num_blocks = 4;
  with_merge.merge_threshold = 0.5;
  const ReducedModel m0 = reduce_network(c.net, c.ports, no_merge);
  const ReducedModel m1 = reduce_network(c.net, c.ports, with_merge);
  EXPECT_LE(m1.stats.reduced_nodes, m0.stats.reduced_nodes);
}

TEST(Pipeline, StatsAreConsistent) {
  const PipelineCase c = make_case(12, 12, 20, 17);
  ReductionOptions opts;
  opts.num_blocks = 3;
  const ReducedModel m = reduce_network(c.net, c.ports, opts);
  EXPECT_EQ(m.stats.blocks, 3);
  EXPECT_EQ(m.stats.original_nodes, 144);
  EXPECT_EQ(m.stats.reduced_edges, m.network.graph.num_edges());
  EXPECT_GE(m.stats.total_seconds, 0.0);
  // Representative round trip: representative of node_map[v] maps back.
  for (index_t p : c.port_nodes) {
    const index_t gid = m.node_map[static_cast<std::size_t>(p)];
    const index_t rep = m.representative[static_cast<std::size_t>(gid)];
    EXPECT_EQ(m.node_map[static_cast<std::size_t>(rep)], gid);
  }
}

TEST(Pipeline, AutoBlockCountFollowsPortRule) {
  const PipelineCase c = make_case(16, 16, 120, 18);
  ReductionOptions opts;  // num_blocks = 0 -> #ports/50 = 2
  const ReducedModel m = reduce_network(c.net, c.ports, opts);
  EXPECT_EQ(m.stats.blocks, 2);
}

class PipelineBackends : public ::testing::TestWithParam<ErBackend> {};

TEST_P(PipelineBackends, PortErrorBoundedOnMesh) {
  const PipelineCase c = make_case(14, 14, 24, 19);
  ReductionOptions opts;
  opts.num_blocks = 4;
  opts.backend = GetParam();
  opts.sparsify_quality = 6.0;
  opts.projection_scale = 24.0;
  const ReducedModel m = reduce_network(c.net, c.ports, opts);
  EXPECT_LT(port_response_error(c, m), 0.12)
      << "backend " << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Backends, PipelineBackends,
                         ::testing::Values(ErBackend::kExact,
                                           ErBackend::kRandomProjection,
                                           ErBackend::kApproxChol));

}  // namespace
}  // namespace er
