// Tests for the parallel subsystem: thread-pool task completion, exception
// propagation, nested (reentrant) parallel_for, batched ER queries across a
// pool, and the determinism guarantee — the partitioner, stitch, RP row
// solves, and the whole reduce_network pipeline must produce bit-identical
// results at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "effres/approx_chol.hpp"
#include "effres/exact.hpp"
#include "effres/random_projection.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_pool.hpp"
#include "partition/partition.hpp"
#include "pg/incremental.hpp"
#include "reduction/pipeline.hpp"
#include "util/rng.hpp"

namespace er {
namespace {

// ---------------- ThreadPool ----------------

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(resolve_num_threads(1), 1);
  EXPECT_EQ(resolve_num_threads(7), 7);
  EXPECT_GE(resolve_num_threads(0), 1);  // auto
  EXPECT_THROW(resolve_num_threads(-1), std::invalid_argument);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, SubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  std::future<void> inner_fut;
  pool.submit([&] { inner_fut = pool.submit([&inner] { ++inner; }); }).get();
  inner_fut.get();
  EXPECT_EQ(inner.load(), 1);
}

// ---------------- parallel_for ----------------

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for(&pool, 0, 1000, 16, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i)
      ++hits[static_cast<std::size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, SerialFallbacks) {
  // Null pool, empty range, and single-grain ranges all run inline.
  int calls = 0;
  parallel_for(nullptr, 0, 10, 1, [&](index_t lo, index_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
  });
  EXPECT_EQ(calls, 1);
  parallel_for(nullptr, 5, 5, 1,
               [&](index_t, index_t) { FAIL() << "empty range ran"; });
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(&pool, 0, 100, 1,
                   [](index_t lo, index_t) {
                     if (lo >= 50) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ReentrantFromWorkerRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(&pool, 0, 8, 1, [&](index_t lo, index_t hi) {
    // Nested call from a worker thread: must complete without deadlock.
    parallel_for(&pool, 0, (hi - lo) * 10, 1, [&](index_t a, index_t b) {
      total += b - a;
    });
  });
  EXPECT_EQ(total.load(), 80);
}

// ---------------- Batched ER queries ----------------

TEST(BatchedQueries, AllEnginesMatchSerialExactly) {
  const Graph g = grid_2d(12, 12, WeightKind::kUniform, 21);
  const auto queries = all_edge_queries(g);
  ThreadPool pool(4);

  const ExactEffRes exact(g);
  RandomProjectionOptions rp_opts;
  rp_opts.seed = 7;
  const RandomProjectionEffRes rp(g, rp_opts);
  const ApproxCholEffRes alg3(g);
  const std::vector<const EffResEngine*> engines{&exact, &rp, &alg3};

  for (const EffResEngine* engine : engines) {
    const auto serial = engine->resistances(queries);
    const auto parallel = engine->resistances(queries, &pool);
    ASSERT_EQ(serial.size(), parallel.size()) << engine->name();
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(serial[i], parallel[i]) << engine->name() << " query " << i;
  }
}

// ---------------- Parallel partitioner ----------------

TEST(ParallelPartition, BitIdenticalAcrossThreadCounts) {
  // Coarsening contraction, coarse-weight accumulation, and the boundary
  // scan all chunk across the pool; the partition must not change.
  for (const Graph& g :
       {grid_2d(40, 40, WeightKind::kUniform, 51),
        barabasi_albert(1500, 3, WeightKind::kUniform, 52)}) {
    PartitionOptions opts;
    opts.num_parts = 8;
    opts.seed = 7;
    const PartitionResult serial = partition_graph(g, opts);
    for (int threads : {2, 4, 8}) {
      ThreadPool pool(threads);
      const PartitionResult par = partition_graph(g, opts, &pool);
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ASSERT_EQ(serial.part, par.part);
    }
  }
}

// ---------------- Determinism of the parallel pipeline ----------------

struct PipelineCase {
  ConductanceNetwork net;
  std::vector<char> ports;
};

PipelineCase make_case(index_t nx, index_t ny, index_t nports,
                       std::uint64_t seed) {
  PipelineCase c;
  c.net.graph = grid_2d(nx, ny, WeightKind::kUniform, seed);
  const index_t n = nx * ny;
  c.net.shunts.assign(static_cast<std::size_t>(n), 0.0);
  c.ports.assign(static_cast<std::size_t>(n), 0);
  Rng rng(seed + 1);
  index_t placed = 0;
  while (placed < nports) {
    const index_t v = rng.uniform_int(n);
    if (c.ports[static_cast<std::size_t>(v)]) continue;
    c.ports[static_cast<std::size_t>(v)] = 1;
    if (placed < 2) c.net.shunts[static_cast<std::size_t>(v)] = 50.0;
    ++placed;
  }
  return c;
}

void expect_identical_models(const ReducedModel& a, const ReducedModel& b) {
  // The library's determinism oracle must agree with the field-by-field
  // comparison below (which exists for its per-field gtest diagnostics).
  EXPECT_TRUE(models_identical(a, b));
  ASSERT_EQ(a.node_map, b.node_map);
  ASSERT_EQ(a.representative, b.representative);
  ASSERT_EQ(a.block_of, b.block_of);
  ASSERT_EQ(a.block_kept, b.block_kept);
  ASSERT_EQ(a.network.num_nodes(), b.network.num_nodes());
  ASSERT_EQ(a.network.graph.num_edges(), b.network.graph.num_edges());
  for (std::size_t e = 0; e < a.network.graph.num_edges(); ++e) {
    const Edge& ea = a.network.graph.edges()[e];
    const Edge& eb = b.network.graph.edges()[e];
    ASSERT_EQ(ea.u, eb.u) << "edge " << e;
    ASSERT_EQ(ea.v, eb.v) << "edge " << e;
    ASSERT_EQ(ea.weight, eb.weight) << "edge " << e;  // bit-identical
  }
  ASSERT_EQ(a.network.shunts.size(), b.network.shunts.size());
  for (std::size_t v = 0; v < a.network.shunts.size(); ++v)
    ASSERT_EQ(a.network.shunts[v], b.network.shunts[v]) << "shunt " << v;
}

TEST(ParallelReduction, BitIdenticalAcrossThreadCounts) {
  const PipelineCase c = make_case(40, 40, 96, 31);
  for (ErBackend backend : {ErBackend::kApproxChol, ErBackend::kExact,
                            ErBackend::kRandomProjection}) {
    ReductionOptions opts;
    opts.num_blocks = 32;
    opts.backend = backend;
    opts.parallel.num_threads = 1;
    const ReducedModel serial = reduce_network(c.net, c.ports, opts);
    for (int threads : {2, 4, 8}) {
      opts.parallel.num_threads = threads;
      const ReducedModel par = reduce_network(c.net, c.ports, opts);
      SCOPED_TRACE(std::string(to_string(backend)) + " threads=" +
                   std::to_string(threads));
      expect_identical_models(serial, par);
    }
  }
}

TEST(ParallelReduction, IncrementalUpdateBitIdentical) {
  const PipelineCase c = make_case(32, 32, 64, 33);
  ReductionOptions serial_opts, par_opts;
  serial_opts.num_blocks = par_opts.num_blocks = 16;
  serial_opts.parallel.num_threads = 1;
  par_opts.parallel.num_threads = 4;

  IncrementalReducer serial(c.net, c.ports, serial_opts);
  IncrementalReducer parallel(c.net, c.ports, par_opts);
  expect_identical_models(serial.model(), parallel.model());

  const GridModification mod =
      random_modification(serial.structure().num_blocks, 0.2, 1.5, 5);
  const ConductanceNetwork modified =
      apply_modification(c.net, serial.structure(), mod);
  const ReducedModel& ms = serial.update(modified, mod.dirty_blocks);
  const ReducedModel& mp = parallel.update(modified, mod.dirty_blocks);
  expect_identical_models(ms, mp);
}

TEST(ParallelReduction, IncrementalUpdateToleratesDuplicateDirtyBlocks) {
  // Duplicate ids must not race (two tasks writing one slot) nor change
  // the result.
  const PipelineCase c = make_case(24, 24, 48, 37);
  ReductionOptions opts;
  opts.num_blocks = 8;
  opts.parallel.num_threads = 4;
  IncrementalReducer unique_ids(c.net, c.ports, opts);
  IncrementalReducer dup_ids(c.net, c.ports, opts);
  const GridModification mod =
      random_modification(unique_ids.structure().num_blocks, 0.5, 1.5, 11);
  const ConductanceNetwork modified =
      apply_modification(c.net, unique_ids.structure(), mod);
  std::vector<index_t> duplicated;
  for (index_t b : mod.dirty_blocks) {
    duplicated.push_back(b);
    duplicated.push_back(b);
  }
  const ReducedModel& a = unique_ids.update(modified, mod.dirty_blocks);
  const ReducedModel& b = dup_ids.update(modified, duplicated);
  expect_identical_models(a, b);
}

TEST(ParallelReduction, IncrementalUpdateOrderIndependent) {
  // Every per-block RNG stream is hash(seed, block), so re-reducing the
  // dirty blocks in any order — or any thread interleaving — yields the
  // same model.
  const PipelineCase c = make_case(32, 32, 64, 35);
  ReductionOptions opts;
  opts.num_blocks = 16;
  IncrementalReducer fwd(c.net, c.ports, opts);
  IncrementalReducer rev(c.net, c.ports, opts);
  const GridModification mod =
      random_modification(fwd.structure().num_blocks, 0.25, 2.0, 9);
  const ConductanceNetwork modified =
      apply_modification(c.net, fwd.structure(), mod);
  std::vector<index_t> reversed(mod.dirty_blocks.rbegin(),
                                mod.dirty_blocks.rend());
  const ReducedModel& a = fwd.update(modified, mod.dirty_blocks);
  const ReducedModel& b = rev.update(modified, reversed);
  expect_identical_models(a, b);
}

TEST(ParallelStitch, BitIdenticalAcrossThreadCounts) {
  // Fix one set of per-block reductions, then stitch it serially and across
  // pools of every width: the two-pass prefix-sum scheme must write the
  // exact same model.
  const PipelineCase c = make_case(36, 36, 80, 41);
  ReductionOptions opts;
  opts.num_blocks = 24;
  const BlockStructure st = build_block_structure(c.net, c.ports, opts);
  std::vector<BlockReduced> blocks(static_cast<std::size_t>(st.num_blocks));
  for (index_t b = 0; b < st.num_blocks; ++b)
    blocks[static_cast<std::size_t>(b)] =
        reduce_block(c.net, c.ports, st, b, opts);

  const ReducedModel serial = stitch_blocks(c.net, st, blocks);
  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    const ReducedModel par = stitch_blocks(c.net, st, blocks, &pool);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical_models(serial, par);
  }
}

// ---------------- Parallel random-projection rows ----------------

TEST(ParallelRandomProjection, RowSolvesBitIdenticalAcrossThreadCounts) {
  // Every projection row draws from its own mix_seed(seed, r) stream and
  // solves into a disjoint embedding slice, so the engine built at any
  // thread count answers every query with the exact same bits.
  const Graph g = grid_2d(14, 14, WeightKind::kUniform, 61);
  const auto queries = all_edge_queries(g);
  RandomProjectionOptions opts;
  opts.seed = 19;
  const RandomProjectionEffRes serial(g, opts);
  const auto reference = serial.resistances(queries);
  EXPECT_EQ(serial.stats().nonconverged_rows, 0);
  for (int threads : {2, 4, 8}) {
    RandomProjectionOptions par_opts;
    par_opts.seed = 19;
    par_opts.parallel.num_threads = threads;
    const RandomProjectionEffRes par(g, par_opts);
    const auto got = par.resistances(queries);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ASSERT_EQ(reference.size(), got.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
      ASSERT_EQ(reference[i], got[i]) << "query " << i;
    EXPECT_EQ(par.stats().total_solver_iterations,
              serial.stats().total_solver_iterations);
  }
}

TEST(ParallelRandomProjection, CountsNonconvergedRows) {
  // With the preconditioner degraded to (near-)diagonal, one CG iteration
  // can't reach a 1e-12 residual on a mesh, so every row must be flagged
  // instead of silently feeding an unconverged embedding onward.
  const Graph g = grid_2d(12, 12, WeightKind::kUniform, 62);
  RandomProjectionOptions opts;
  opts.dimensions = 16;
  opts.solver_max_iterations = 1;
  opts.solver_tolerance = 1e-12;
  opts.ichol_droptol = 1.0;
  const RandomProjectionEffRes rp(g, opts);
  EXPECT_EQ(rp.stats().nonconverged_rows, 16);
}

// ---------------- Timing-stats sanity ----------------

TEST(ReductionStats, PhaseWallClocksBoundedByTotal) {
  // Regression for the misleading multi-thread breakdown: the wall-clock
  // stage spans are disjoint, so each must stay within total_seconds even
  // when blocks run concurrently (the CPU-second aggregates may not).
  const PipelineCase c = make_case(32, 32, 64, 43);
  ReductionOptions opts;
  opts.num_blocks = 16;
  for (int threads : {1, 4}) {
    opts.parallel.num_threads = threads;
    const ReducedModel m = reduce_network(c.net, c.ports, opts);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const ReductionStats& s = m.stats;
    EXPECT_GE(s.partition_seconds, 0.0);
    EXPECT_GE(s.reduce_seconds, 0.0);
    EXPECT_GE(s.stitch_seconds, 0.0);
    EXPECT_LE(s.partition_seconds, s.total_seconds);
    EXPECT_LE(s.reduce_seconds, s.total_seconds);
    EXPECT_LE(s.stitch_seconds, s.total_seconds);
    EXPECT_LE(s.partition_seconds + s.reduce_seconds + s.stitch_seconds,
              s.total_seconds);
    EXPECT_GE(s.schur_cpu_seconds, 0.0);
    EXPECT_GE(s.er_cpu_seconds, 0.0);
    EXPECT_GE(s.sparsify_cpu_seconds, 0.0);
  }
}

TEST(RandomModification, PerBlockSelectionIsStable) {
  const GridModification a = random_modification(64, 0.25, 1.2, 17);
  const GridModification b = random_modification(64, 0.25, 1.2, 17);
  EXPECT_EQ(a.dirty_blocks, b.dirty_blocks);
  EXPECT_EQ(a.dirty_blocks.size(), 16u);
  // Growing the universe keeps each block's priority: the selection for a
  // prefix universe is consistent with per-block hashing.
  const GridModification c = random_modification(64, 1.0, 1.2, 17);
  EXPECT_EQ(c.dirty_blocks.size(), 64u);
}

}  // namespace
}  // namespace er
