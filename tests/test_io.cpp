// Tests for file I/O: Matrix Market round trips and format handling,
// edge-list round trips, graph/matrix conversions.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/laplacian.hpp"
#include "sparse/io.hpp"
#include "util/rng.hpp"

namespace er {
namespace {

TEST(MatrixMarket, RoundTripGeneral) {
  Rng rng(1);
  TripletMatrix t(7, 5);
  for (int k = 0; k < 15; ++k)
    t.add(rng.uniform_int(7), rng.uniform_int(5), rng.uniform(-3, 3));
  const CscMatrix a = CscMatrix::from_triplets(t);

  std::stringstream ss;
  write_matrix_market(a, ss);
  const CscMatrix b = read_matrix_market(ss);
  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.cols(), a.cols());
  const auto da = a.to_dense(), db = b.to_dense();
  for (std::size_t i = 0; i < da.size(); ++i) EXPECT_DOUBLE_EQ(da[i], db[i]);
}

TEST(MatrixMarket, ReadsSymmetricExpanded) {
  std::stringstream ss(R"(%%MatrixMarket matrix coordinate real symmetric
% a 3x3 Laplacian, lower triangle
3 3 5
1 1 2.0
2 2 2.0
3 3 2.0
2 1 -1.0
3 2 -1.0
)");
  const CscMatrix a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), -1.0);
  EXPECT_TRUE(a.is_symmetric(0.0));
}

TEST(MatrixMarket, ReadsPatternAsOnes) {
  std::stringstream ss(R"(%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 1
)");
  const CscMatrix a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
}

TEST(MatrixMarket, RejectsGarbage) {
  std::stringstream bad1("hello world\n");
  EXPECT_THROW(read_matrix_market(bad1), std::runtime_error);
  std::stringstream bad2("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market(bad2), std::runtime_error);
  std::stringstream bad3(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n");
  EXPECT_THROW(read_matrix_market(bad3), std::runtime_error);
  std::stringstream bad4(
      "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(bad4), std::runtime_error);
}

TEST(MatrixMarket, FileRoundTrip) {
  const CscMatrix a = grounded_laplacian(grid_2d(4, 4));
  const std::string path = "test_mm_roundtrip.mtx";
  write_matrix_market_file(a, path);
  const CscMatrix b = read_matrix_market_file(path);
  std::remove(path.c_str());
  EXPECT_LT(a.add(b, -1.0).max_abs(), 1e-15);
}

TEST(EdgeList, RoundTrip) {
  const Graph g = barabasi_albert(60, 2, WeightKind::kUniform, 3);
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph h = read_edge_list(ss);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edges()[e].u, g.edges()[e].u);
    EXPECT_EQ(h.edges()[e].v, g.edges()[e].v);
    EXPECT_DOUBLE_EQ(h.edges()[e].weight, g.edges()[e].weight);
  }
}

TEST(EdgeList, DefaultWeightAndComments) {
  std::stringstream ss(R"(# comment
% another comment
0 1
1 2 2.5
2 2 9.9
)");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2u);  // self-loop skipped
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(g.edges()[1].weight, 2.5);
}

TEST(EdgeList, ExplicitNodeCountOverride) {
  std::stringstream ss("0 1\n");
  const Graph g = read_edge_list(ss, 10);
  EXPECT_EQ(g.num_nodes(), 10);
}

TEST(EdgeList, RejectsBadInput) {
  std::stringstream bad1("0\n");
  EXPECT_THROW(read_edge_list(bad1), std::runtime_error);
  std::stringstream bad2("0 1 -2.0\n");
  EXPECT_THROW(read_edge_list(bad2), std::runtime_error);
  std::stringstream bad3("-1 2\n");
  EXPECT_THROW(read_edge_list(bad3), std::runtime_error);
}

TEST(GraphFromMatrix, LaplacianRoundTrip) {
  const Graph g = grid_2d(5, 5, WeightKind::kUniform, 5);
  const CscMatrix l = laplacian(g);
  const Graph h = graph_from_symmetric_matrix(l);
  ASSERT_EQ(h.num_edges(), g.num_edges());
  EXPECT_NEAR(h.total_weight(), g.total_weight(), 1e-12);
}

}  // namespace
}  // namespace er
