// Tests for approxinv: depth (Eq. 11) vs brute force, Lemma 1
// (nonnegativity of Z), exactness at epsilon=0, Theorem 1 error bound,
// truncation semantics, log-n floor.
#include <gtest/gtest.h>

#include <cmath>

#include "approxinv/approx_inverse.hpp"
#include "approxinv/depth.hpp"
#include "chol/cholesky.hpp"
#include "chol/ichol.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "sparse/dense.hpp"

namespace er {
namespace {

/// Brute-force depth per Eq. (11) computed from the factor's dense pattern.
std::vector<index_t> depth_reference(const CholFactor& f) {
  const index_t n = f.n;
  const auto l = f.to_csc().to_dense();
  std::vector<index_t> depth(static_cast<std::size_t>(n), -1);
  // Recurrence evaluated by repeated passes (small n only).
  bool changed = true;
  while (changed) {
    changed = false;
    for (index_t p = n; p-- > 0;) {
      index_t d = 0;
      bool has_offdiag = false, ready = true;
      for (index_t i = p + 1; i < n; ++i) {
        if (l[static_cast<std::size_t>(p) * n + i] != 0.0) {
          has_offdiag = true;
          if (depth[static_cast<std::size_t>(i)] < 0) {
            ready = false;
            break;
          }
          d = std::max(d, static_cast<index_t>(
                              depth[static_cast<std::size_t>(i)] + 1));
        }
      }
      if (!ready) continue;
      const index_t want = has_offdiag ? d : 0;
      if (depth[static_cast<std::size_t>(p)] != want) {
        depth[static_cast<std::size_t>(p)] = want;
        changed = true;
      }
    }
  }
  return depth;
}

/// Dense inverse of the factor's L (reference Z).
DenseMatrix inverse_of_factor(const CholFactor& f) {
  const index_t n = f.n;
  const auto l = f.to_csc().to_dense();
  DenseMatrix inv(n, n);
  // Forward solves against unit vectors.
  for (index_t c = 0; c < n; ++c) {
    std::vector<real_t> x(static_cast<std::size_t>(n), 0.0);
    x[static_cast<std::size_t>(c)] = 1.0;
    for (index_t j = 0; j < n; ++j) {
      const real_t xj = x[static_cast<std::size_t>(j)] /
                        l[static_cast<std::size_t>(j) * n + j];
      x[static_cast<std::size_t>(j)] = xj;
      if (xj == 0.0) continue;
      for (index_t i = j + 1; i < n; ++i)
        x[static_cast<std::size_t>(i)] -=
            l[static_cast<std::size_t>(j) * n + i] * xj;
    }
    for (index_t r = 0; r < n; ++r) inv(r, c) = x[static_cast<std::size_t>(r)];
  }
  return inv;
}

TEST(Depth, MatchesBruteForceOnSmallGraphs) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = erdos_renyi(30, 70, WeightKind::kUniform, seed);
    const CscMatrix lg = grounded_laplacian(g);
    const CholFactor f = cholesky(lg, Ordering::kMinDeg);
    const auto fast = filled_graph_depths(f);
    const auto ref = depth_reference(f);
    for (index_t v = 0; v < f.n; ++v)
      EXPECT_EQ(fast[static_cast<std::size_t>(v)],
                ref[static_cast<std::size_t>(v)])
          << "node " << v << " seed " << seed;
  }
}

TEST(Depth, PathGraphNaturalOrderIsLinear) {
  // Tridiagonal L: depth(p) = n-1-p.
  const Graph g = grid_2d(8, 1);
  const CscMatrix lg = grounded_laplacian(g);
  const CholFactor f = cholesky(lg, identity_permutation(lg.cols()));
  const auto d = filled_graph_depths(f);
  for (index_t p = 0; p < 8; ++p)
    EXPECT_EQ(d[static_cast<std::size_t>(p)], 7 - p);
  EXPECT_EQ(max_filled_graph_depth(f), 7);
}

TEST(Depth, LastColumnIsZero) {
  const Graph g = barabasi_albert(60, 2, WeightKind::kUniform, 5);
  const CscMatrix lg = grounded_laplacian(g);
  const CholFactor f = cholesky(lg, Ordering::kMinDeg);
  const auto d = filled_graph_depths(f);
  EXPECT_EQ(d.back(), 0);
}

TEST(ApproxInverse, ExactWhenEpsilonZero) {
  const Graph g = erdos_renyi(40, 90, WeightKind::kUniform, 6);
  const CscMatrix lg = grounded_laplacian(g);
  const CholFactor f = cholesky(lg, Ordering::kMinDeg);
  ApproxInverseOptions opts;
  opts.epsilon = 0.0;
  const ApproxInverse z = ApproxInverse::build(f, opts);
  const DenseMatrix ref = inverse_of_factor(f);
  for (index_t j = 0; j < f.n; ++j) {
    const auto col = z.column(j).to_dense(f.n);
    for (index_t i = 0; i < f.n; ++i)
      EXPECT_NEAR(col[static_cast<std::size_t>(i)], ref(i, j), 1e-10);
  }
}

TEST(ApproxInverse, Lemma1Nonnegativity) {
  // Z = L^{-1} of a Laplacian factor is entrywise nonnegative; the
  // approximate columns must stay nonnegative too.
  for (std::uint64_t seed = 7; seed <= 9; ++seed) {
    const Graph g = barabasi_albert(120, 3, WeightKind::kLogUniform, seed);
    const CscMatrix lg = grounded_laplacian(g);
    const CholFactor f = cholesky(lg, Ordering::kMinDeg);
    ApproxInverseOptions opts;
    opts.epsilon = 1e-2;
    const ApproxInverse z = ApproxInverse::build(f, opts);
    for (index_t j = 0; j < f.n; ++j)
      for (real_t v : z.column_values(j)) EXPECT_GE(v, 0.0);
  }
}

TEST(ApproxInverse, Theorem1ErrorBound) {
  // ||z_p - z̃_p||_1 <= depth(p) * epsilon * ||z_p||_1.
  const Graph g = grid_2d(7, 7, WeightKind::kUniform, 10);
  const CscMatrix lg = grounded_laplacian(g);
  const CholFactor f = cholesky(lg, Ordering::kMinDeg);
  const auto depths = filled_graph_depths(f);
  const DenseMatrix ref = inverse_of_factor(f);

  for (real_t eps : {1e-1, 1e-2, 1e-3}) {
    ApproxInverseOptions opts;
    opts.epsilon = eps;
    const ApproxInverse z = ApproxInverse::build(f, opts);
    for (index_t p = 0; p < f.n; ++p) {
      const auto col = z.column(p).to_dense(f.n);
      real_t err1 = 0.0, norm1 = 0.0;
      for (index_t i = 0; i < f.n; ++i) {
        err1 += std::abs(col[static_cast<std::size_t>(i)] - ref(i, p));
        norm1 += std::abs(ref(i, p));
      }
      const real_t bound =
          static_cast<real_t>(depths[static_cast<std::size_t>(p)]) * eps * norm1;
      EXPECT_LE(err1, bound + 1e-12)
          << "p=" << p << " eps=" << eps
          << " depth=" << depths[static_cast<std::size_t>(p)];
    }
  }
}

TEST(ApproxInverse, TruncationRespectsColumnBudget) {
  // Directly check Eq. (10): ||z̃_j - z*_j||_1 <= eps * ||z*_j||_1, using
  // the exact-inverse columns as reference for leaf-to-root consistency is
  // complex; instead verify the weaker but direct property that each stored
  // column's 1-norm differs from the eps=0 column by at most depth*eps.
  const Graph g = watts_strogatz(64, 3, 0.15, WeightKind::kUniform, 11);
  const CscMatrix lg = grounded_laplacian(g);
  const CholFactor f = cholesky(lg, Ordering::kMinDeg);
  ApproxInverseOptions exact_opts;
  exact_opts.epsilon = 0.0;
  const ApproxInverse z0 = ApproxInverse::build(f, exact_opts);
  ApproxInverseOptions opts;
  opts.epsilon = 5e-3;
  const ApproxInverse z = ApproxInverse::build(f, opts);
  const auto depths = filled_graph_depths(f);
  for (index_t j = 0; j < f.n; ++j) {
    const SparseVector a = z0.column(j);
    const SparseVector b = z.column(j);
    const real_t bound = static_cast<real_t>(depths[static_cast<std::size_t>(j)]) *
                         opts.epsilon * a.norm1();
    EXPECT_LE(distance_1norm(a, b), bound + 1e-12);
  }
}

TEST(ApproxInverse, SmallColumnsNeverTruncated) {
  // Columns with nnz <= log2(n) keep all entries regardless of epsilon
  // (Alg. 2 line 3). The last column z_n = e_n / L_nn always qualifies.
  const Graph g = grid_2d(10, 10, WeightKind::kUnit, 12);
  const CscMatrix lg = grounded_laplacian(g);
  const CholFactor f = cholesky(lg, Ordering::kMinDeg);
  ApproxInverseOptions opts;
  opts.epsilon = 0.9;  // absurdly aggressive truncation
  const ApproxInverse z = ApproxInverse::build(f, opts);
  const index_t last = f.n - 1;
  ASSERT_EQ(z.column_rows(last).size(), 1u);
  EXPECT_EQ(z.column_rows(last)[0], last);
  EXPECT_NEAR(z.column_values(last)[0], 1.0 / f.diag(last), 1e-12);
}

TEST(ApproxInverse, SparsityGrowsAsEpsilonShrinks) {
  const Graph g = grid_2d(16, 16, WeightKind::kUniform, 13);
  const CscMatrix lg = grounded_laplacian(g);
  const CholFactor f = cholesky(lg, Ordering::kMinDeg);
  offset_t prev = 0;
  for (real_t eps : {1e-1, 1e-2, 1e-3, 0.0}) {
    ApproxInverseOptions opts;
    opts.epsilon = eps;
    const ApproxInverse z = ApproxInverse::build(f, opts);
    EXPECT_GE(z.nnz(), prev);
    prev = z.nnz();
  }
}

TEST(ApproxInverse, WorksOnIncompleteFactor) {
  // Alg. 3 pairs Alg. 2 with ICT; the recurrence and sign structure hold
  // for the incomplete factor as well.
  const Graph g = multilayer_mesh(10, 10, 2, WeightKind::kLogUniform, 14);
  const CscMatrix lg = grounded_laplacian(g);
  IcholOptions ic;
  ic.droptol = 1e-3;
  const CholFactor f = ichol(lg, Ordering::kMinDeg, ic);
  ApproxInverseOptions opts;
  opts.epsilon = 1e-3;
  const ApproxInverse z = ApproxInverse::build(f, opts);
  EXPECT_EQ(z.dimension(), f.n);
  for (index_t j = 0; j < f.n; ++j) {
    EXPECT_GE(z.column_rows(j).size(), 1u);
    for (real_t v : z.column_values(j)) EXPECT_GE(v, 0.0);
  }
}

TEST(ApproxInverse, ColumnDistanceMatchesSparseVectorDistance) {
  const Graph g = grid_2d(9, 9, WeightKind::kUniform, 15);
  const CscMatrix lg = grounded_laplacian(g);
  const CholFactor f = cholesky(lg, Ordering::kMinDeg);
  const ApproxInverse z = ApproxInverse::build(f);
  for (index_t p = 0; p < 10; ++p) {
    const index_t q = (p * 7 + 3) % f.n;
    EXPECT_NEAR(z.column_distance_squared(p, q),
                distance_squared(z.column(p), z.column(q)), 1e-12);
  }
}

class EpsilonScaling : public ::testing::TestWithParam<real_t> {};

TEST_P(EpsilonScaling, ColumnErrorsScaleRoughlyLinearly) {
  // Eq. (26): relative errors scale ~linearly with epsilon.
  const real_t eps = GetParam();
  const Graph g = grid_2d(12, 12, WeightKind::kUniform, 16);
  const CscMatrix lg = grounded_laplacian(g);
  const CholFactor f = cholesky(lg, Ordering::kMinDeg);
  const DenseMatrix ref = inverse_of_factor(f);
  ApproxInverseOptions opts;
  opts.epsilon = eps;
  const ApproxInverse z = ApproxInverse::build(f, opts);
  real_t worst_rel = 0.0;
  for (index_t j = 0; j < f.n; ++j) {
    const auto col = z.column(j).to_dense(f.n);
    real_t err = 0.0, norm = 0.0;
    for (index_t i = 0; i < f.n; ++i) {
      err += std::abs(col[static_cast<std::size_t>(i)] - ref(i, j));
      norm += std::abs(ref(i, j));
    }
    worst_rel = std::max(worst_rel, err / norm);
  }
  // Depth on this mesh ordering stays modest; rel error must be bounded by
  // ~depth*eps and in particular shrink with eps.
  const auto dpt = static_cast<real_t>(max_filled_graph_depth(f));
  EXPECT_LE(worst_rel, dpt * eps + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonScaling,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4));

}  // namespace
}  // namespace er
