// Tests for util: RNG determinism/distributions, alias sampler, stats,
// table formatting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace er {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_index(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[rng.uniform_index(8)];
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [v, c] : counts) EXPECT_GT(c, 1000);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, SignIsBalanced) {
  Rng rng(17);
  int pos = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.sign() > 0) ++pos;
  EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.02);
}

TEST(AliasSampler, MatchesWeights) {
  AliasSampler s({1.0, 2.0, 3.0, 4.0});
  Rng rng(23);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(s.sample(rng))];
  for (int k = 0; k < 4; ++k)
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(k)]) / n,
                (k + 1) / 10.0, 0.01);
}

TEST(AliasSampler, SingleOutcome) {
  AliasSampler s({5.0});
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s.sample(rng), 0);
}

TEST(AliasSampler, ZeroWeightNeverSampled) {
  AliasSampler s({0.0, 1.0, 0.0, 1.0});
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const index_t v = s.sample(rng);
    EXPECT_TRUE(v == 1 || v == 3);
  }
}

TEST(AliasSampler, RejectsNegativeAndAllZero) {
  EXPECT_THROW(AliasSampler({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), std::invalid_argument);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(RelativeError, Basics) {
  EXPECT_NEAR(relative_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(1.0, 0.0), 1.0);
}

TEST(TablePrinter, AlignsAndPrints) {
  TablePrinter t({"a", "bb"});
  t.add_row({"1", "22"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(TablePrinter, Formatters) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt_int(42), "42");
  EXPECT_EQ(TablePrinter::fmt_size(130000), "1.3E5");
  EXPECT_EQ(TablePrinter::fmt_sci(0.00123, 1), "1.2E-03");
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 1000; ++i) x = x + i;
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace er
