// Serving subsystem tests (DESIGN.md §4): the sharded domain-decomposition
// path must agree with the monolithic single-model path, answers must be
// bit-identical at any thread count, and ModelStore's publish protocol must
// let queries race with IncrementalReducer updates — every batch answers
// exactly against the snapshot version it pinned (no torn reads; the
// concurrent test is part of the CI TSan job).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "pg/analysis.hpp"
#include "pg/incremental.hpp"
#include "reduction/pipeline.hpp"
#include "serve/model_store.hpp"
#include "serve/query_frontend.hpp"
#include "serve/snapshot.hpp"
#include "serve_test_util.hpp"

namespace er {
namespace {

TEST(ModelSnapshot, ShardedMatchesMonolithic) {
  const ServeCase c = make_case(24, 24, 64, 71);
  ReductionOptions opts;
  opts.num_blocks = 8;
  const ReductionArtifacts art =
      reduce_network_artifacts(c.net, c.ports, opts);
  const auto snap = ModelSnapshot::build(art);
  ASSERT_GT(snap->num_boundary_nodes(), 0);

  const auto batch = mixed_batch(kept_originals(*art.model), 400, 3);
  BatchStats sharded_stats, mono_stats;
  const auto sharded = QueryFrontEnd::answer_on(
      *snap, batch, {nullptr, RouteMode::kSharded, &sharded_stats});
  const auto mono = QueryFrontEnd::answer_on(
      *snap, batch, {nullptr, RouteMode::kMonolithic, &mono_stats});
  ASSERT_EQ(sharded.size(), mono.size());
  EXPECT_EQ(sharded_stats.invalid, 0u);
  EXPECT_GT(sharded_stats.cross_block, 0u);  // the batch exercises routing
  EXPECT_GT(sharded_stats.same_block, 0u);
  for (std::size_t i = 0; i < sharded.size(); ++i)
    EXPECT_NEAR(sharded[i], mono[i], 1e-8 * (1.0 + std::abs(mono[i])))
        << "query " << i;
}

TEST(ModelSnapshot, ResponseMatchesDcSolve) {
  const ServeCase c = make_case(18, 18, 40, 73);
  ReductionOptions opts;
  opts.num_blocks = 6;
  const ReductionArtifacts art =
      reduce_network_artifacts(c.net, c.ports, opts);
  const auto snap = ModelSnapshot::build(art);

  // Z(p, q) is column p of G^{-1}: inject a unit current at reduced p and
  // read the DC voltage drops.
  const index_t p_orig = kept_originals(*art.model).front();
  const index_t p_red = snap->reduced_id(p_orig);
  std::vector<real_t> injection(
      static_cast<std::size_t>(art.model->network.num_nodes()), 0.0);
  injection[static_cast<std::size_t>(p_red)] = 1.0;
  const DcSolution dc = solve_dc(art.model->network, injection);

  ModelSnapshot::Workspace ws;
  for (index_t q = 0; q < art.model->network.num_nodes(); q += 7) {
    const real_t z = snap->response(p_red, q, ws);
    EXPECT_NEAR(z, dc.drops[static_cast<std::size_t>(q)],
                1e-8 * (1.0 + std::abs(z)))
        << "response at reduced node " << q;
  }

  // Internal consistency: R(p,q) = Z(p,p) - Z(p,q) - Z(q,p) + Z(q,q).
  const index_t q_red = snap->reduced_id(kept_originals(*art.model).back());
  const real_t r = snap->resistance(p_red, q_red, ws);
  const real_t via_z = snap->response(p_red, p_red, ws) -
                       snap->response(p_red, q_red, ws) -
                       snap->response(q_red, p_red, ws) +
                       snap->response(q_red, q_red, ws);
  EXPECT_NEAR(r, via_z, 1e-9 * (1.0 + std::abs(r)));
}

TEST(QueryFrontEnd, BitIdenticalAcrossThreadCounts) {
  const ServeCase c = make_case(24, 24, 64, 79);
  ReductionOptions opts;
  opts.num_blocks = 8;
  const ReductionArtifacts art =
      reduce_network_artifacts(c.net, c.ports, opts);
  const auto snap = ModelSnapshot::build(art);
  const auto batch = mixed_batch(kept_originals(*art.model), 1500, 5);

  for (RouteMode mode : {RouteMode::kSharded, RouteMode::kMonolithic,
                         RouteMode::kLocalApprox}) {
    const auto serial =
        QueryFrontEnd::answer_on(*snap, batch, {nullptr, mode});
    for (int threads : {2, 4, 8}) {
      ThreadPool pool(threads);
      const auto par =
          QueryFrontEnd::answer_on(*snap, batch, {&pool, mode});
      SCOPED_TRACE(std::string(to_string(mode)) + " threads=" +
                   std::to_string(threads));
      ASSERT_EQ(serial.size(), par.size());
      for (std::size_t i = 0; i < serial.size(); ++i)
        ASSERT_EQ(serial[i], par[i]) << "query " << i;  // bit-identical
    }
  }
}

TEST(ModelSnapshot, MonolithicFactorIsOptional) {
  // Production sharded serving skips the whole-system factor; the sharded
  // path still answers and the monolithic path refuses loudly.
  const ServeCase c = make_case(16, 16, 24, 101);
  ReductionOptions opts;
  opts.num_blocks = 4;
  const ReductionArtifacts art =
      reduce_network_artifacts(c.net, c.ports, opts);
  ServingOptions with, without;
  without.build_monolithic_factor = false;
  const auto full = ModelSnapshot::build(art, with);
  const auto lean = ModelSnapshot::build(art, without);
  EXPECT_TRUE(full->has_monolithic_factor());
  EXPECT_FALSE(lean->has_monolithic_factor());

  const auto batch = mixed_batch(kept_originals(*art.model), 100, 19);
  const auto want = QueryFrontEnd::answer_on(*full, batch);
  const auto got = QueryFrontEnd::answer_on(*lean, batch);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(want[i], got[i]) << "query " << i;  // sharded path unaffected
  EXPECT_THROW((void)QueryFrontEnd::answer_on(
                   *lean, batch, {nullptr, RouteMode::kMonolithic}),
               std::logic_error);
}

TEST(QueryFrontEnd, InvalidQueriesAnswerNaN) {
  const ServeCase c = make_case(16, 16, 24, 83);
  ReductionOptions opts;
  opts.num_blocks = 4;
  const ReductionArtifacts art =
      reduce_network_artifacts(c.net, c.ports, opts);
  const auto snap = ModelSnapshot::build(art);

  index_t eliminated = -1;
  for (std::size_t v = 0; v < art.model->node_map.size(); ++v)
    if (art.model->node_map[v] < 0) {
      eliminated = static_cast<index_t>(v);
      break;
    }
  ASSERT_GE(eliminated, 0);
  const index_t valid = kept_originals(*art.model).front();

  const std::vector<PortQuery> batch{
      {QueryKind::kResistance, eliminated, valid},
      {QueryKind::kResponse, valid, eliminated},
      {QueryKind::kResistance, -5, valid},
      {QueryKind::kResistance, valid, valid},
  };
  BatchStats stats;
  const auto out = QueryFrontEnd::answer_on(
      *snap, batch, {nullptr, RouteMode::kSharded, &stats});
  EXPECT_TRUE(std::isnan(out[0]));
  EXPECT_TRUE(std::isnan(out[1]));
  EXPECT_TRUE(std::isnan(out[2]));
  EXPECT_EQ(out[3], 0.0);  // same node: zero resistance
  EXPECT_EQ(stats.invalid, 3u);
  EXPECT_EQ(stats.queries, 4u);
}

TEST(QueryFrontEnd, LocalApproxRoutesThroughBlockEngines) {
  const ServeCase c = make_case(24, 24, 64, 89);
  ReductionOptions opts;
  opts.num_blocks = 8;
  const ReductionArtifacts art =
      reduce_network_artifacts(c.net, c.ports, opts);
  const auto snap = ModelSnapshot::build(art);
  const auto batch = mixed_batch(kept_originals(*art.model), 600, 7);

  BatchStats stats;
  const auto out = QueryFrontEnd::answer_on(
      *snap, batch, {nullptr, RouteMode::kLocalApprox, &stats});
  EXPECT_GT(stats.engine_answered, 0u);  // the fast path actually engaged
  EXPECT_GT(stats.cross_block, 0u);      // and the fallback did too
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out[i])) << "query " << i;
    if (batch[i].kind == QueryKind::kResistance) {
      EXPECT_GE(out[i], 0.0) << "query " << i;
    }
  }
}

TEST(ModelStore, PublishPinsInFlightSnapshots) {
  const ServeCase c = make_case(20, 20, 48, 91);
  ReductionOptions opts;
  opts.num_blocks = 8;
  ModelStore store;
  QueryFrontEnd frontend(&store);
  const auto batch_probe = mixed_batch({0}, 0, 0);
  EXPECT_THROW((void)frontend.answer(batch_probe), std::runtime_error);

  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  EXPECT_EQ(store.publish_count(), 1u);
  const SnapshotPtr pinned = store.acquire();
  ASSERT_TRUE(pinned);
  EXPECT_EQ(pinned->version(), 0u);

  const auto batch = mixed_batch(kept_originals(reducer.model()), 200, 11);
  const auto before = QueryFrontEnd::answer_on(*pinned, batch);

  const GridModification mod =
      random_modification(reducer.structure().num_blocks, 0.25, 1.5, 13);
  const ConductanceNetwork modified =
      apply_modification(c.net, reducer.structure(), mod);
  reducer.update(modified, mod.dirty_blocks);
  EXPECT_EQ(store.publish_count(), 2u);
  EXPECT_GT(reducer.publish_seconds(), 0.0);

  // The pinned snapshot is immutable: identical answers after the publish.
  const auto after = QueryFrontEnd::answer_on(*pinned, batch);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    ASSERT_EQ(before[i], after[i]) << "query " << i;

  // New batches see the new version.
  BatchStats stats;
  (void)frontend.answer(batch, nullptr, RouteMode::kSharded, &stats);
  EXPECT_EQ(stats.snapshot_version, 1u);
}

TEST(ModelStore, VersionAndAgeProbesDisambiguateEmptyStore) {
  // current_version() is optional: version 0 (IncrementalReducer's first
  // revision) is a legitimate published state, distinguishable from an
  // empty store; the publish log surfaces per-version ages.
  const ServeCase c = make_case(14, 14, 20, 103);
  ReductionOptions opts;
  opts.num_blocks = 4;
  ModelStore store;
  EXPECT_FALSE(store.has_published());
  EXPECT_FALSE(store.current_version().has_value());
  EXPECT_FALSE(store.current_age_seconds().has_value());
  EXPECT_FALSE(store.version_age_seconds(0).has_value());

  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  EXPECT_TRUE(store.has_published());
  ASSERT_TRUE(store.current_version().has_value());
  EXPECT_EQ(*store.current_version(), 0u);  // serving v0, store not empty
  ASSERT_TRUE(store.current_age_seconds().has_value());
  EXPECT_GE(*store.current_age_seconds(), 0.0);
  EXPECT_TRUE(store.version_age_seconds(0).has_value());
  EXPECT_FALSE(store.version_age_seconds(7).has_value());  // never published

  const GridModification mod =
      random_modification(reducer.structure().num_blocks, 0.25, 1.4, 107);
  const ConductanceNetwork modified =
      apply_modification(c.net, reducer.structure(), mod);
  reducer.update(modified, mod.dirty_blocks);
  ASSERT_TRUE(store.current_version().has_value());
  EXPECT_EQ(*store.current_version(), 1u);
  // Both versions remain in the bounded publish log; the older one is at
  // least as old as the current one.
  const auto age0 = store.version_age_seconds(0);
  const auto age1 = store.version_age_seconds(1);
  ASSERT_TRUE(age0.has_value());
  ASSERT_TRUE(age1.has_value());
  EXPECT_GE(*age0, *age1);
  EXPECT_GE(*age1, 0.0);
}

TEST(ModelStore, ZeroCopyPublishAliasesTheReducersModel) {
  // The zero-copy tentpole (DESIGN.md §4.1): a publish hands the snapshot
  // the reducer's frozen model version by shared_ptr — no model bytes are
  // copied, the snapshot's model *is* the reducer's — and an update builds
  // the next version into a fresh allocation, leaving pinned snapshots
  // untouched.
  const ServeCase c = make_case(16, 16, 24, 109);
  ReductionOptions opts;
  opts.num_blocks = 4;
  ModelStore store;
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);

  const SnapshotPtr s0 = store.acquire();
  EXPECT_EQ(&s0->model(), &reducer.model());
  EXPECT_EQ(s0->shared_model().get(), reducer.shared_model().get());
  EXPECT_EQ(s0->model_bytes_copied(), 0u);
  EXPECT_GT(model_footprint_bytes(s0->model()), 0u);

  const auto batch = mixed_batch(kept_originals(reducer.model()), 150, 113);
  const auto before = QueryFrontEnd::answer_on(*s0, batch);
  const ModelPtr pinned_model = s0->shared_model();

  const GridModification mod =
      random_modification(reducer.structure().num_blocks, 0.5, 1.3, 127);
  const ConductanceNetwork modified =
      apply_modification(c.net, reducer.structure(), mod);
  reducer.update(modified, mod.dirty_blocks);

  // The new publish aliases the *new* version; the old version lives on
  // for the pinned snapshot, bit-for-bit.
  const SnapshotPtr s1 = store.acquire();
  EXPECT_EQ(&s1->model(), &reducer.model());
  EXPECT_EQ(s1->model_bytes_copied(), 0u);
  EXPECT_NE(s1->shared_model().get(), s0->shared_model().get());
  EXPECT_EQ(s0->shared_model().get(), pinned_model.get());
  const auto after = QueryFrontEnd::answer_on(*s0, batch);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    ASSERT_EQ(before[i], after[i]) << "query " << i;
}

// The acceptance test for concurrent serving (runs under TSan in CI):
// reader threads answer batches through the ModelStore while the main
// thread runs IncrementalReducer updates that publish new snapshots. Every
// batch must be answered entirely against the snapshot it pinned — the
// answers of version v are precomputed from a deterministic twin reducer,
// so any torn read or cross-version mix shows up as a bitwise mismatch.
TEST(Serving, ConcurrentPublishWhileQuerying) {
  const ServeCase c = make_case(20, 20, 48, 97);
  ReductionOptions opts;
  opts.num_blocks = 8;
  opts.parallel.num_threads = 2;
  constexpr int kUpdates = 3;
  constexpr int kReaders = 4;
  constexpr int kBatchesPerReader = 12;

  // Twin pass: replay the exact update sequence on an unattached reducer
  // and record each version's serial answers (everything is deterministic,
  // so the serving reducer publishes bit-identical snapshots).
  std::vector<PortQuery> batch;
  std::map<std::uint64_t, std::vector<real_t>> reference;
  ModStream stream;
  {
    IncrementalReducer twin(c.net, c.ports, opts);
    batch = mixed_batch(kept_originals(twin.model()), 64, 17);
    reference[0] = QueryFrontEnd::answer_on(
        *ModelSnapshot::build(twin.blocks(), twin.model()), batch);
    stream = make_mod_stream(c.net, twin.structure(), kUpdates, 0.25, 1.4,
                             100);
    for (int u = 1; u <= kUpdates; ++u) {
      twin.update(stream.nets[static_cast<std::size_t>(u - 1)],
                  stream.mods[static_cast<std::size_t>(u - 1)].dirty_blocks);
      reference[static_cast<std::uint64_t>(u)] = QueryFrontEnd::answer_on(
          *ModelSnapshot::build(twin.blocks(), twin.model()), batch);
    }
  }

  ModelStore store;
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  const QueryFrontEnd frontend(&store);

  std::atomic<int> mismatches{0};
  std::atomic<std::uint64_t> versions_seen{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r)
    readers.emplace_back([&] {
      for (int i = 0; i < kBatchesPerReader; ++i) {
        BatchStats stats;
        const auto got =
            frontend.answer(batch, nullptr, RouteMode::kSharded, &stats);
        versions_seen |= std::uint64_t{1} << stats.snapshot_version;
        const auto& want = reference.at(stats.snapshot_version);
        for (std::size_t j = 0; j < want.size(); ++j)
          if (got[j] != want[j]) {
            ++mismatches;
            break;
          }
      }
    });

  for (int u = 1; u <= kUpdates; ++u)
    reducer.update(stream.nets[static_cast<std::size_t>(u - 1)],
                   stream.mods[static_cast<std::size_t>(u - 1)].dirty_blocks);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(store.publish_count(),
            static_cast<std::uint64_t>(kUpdates) + 1);
  EXPECT_NE(versions_seen.load(), 0u);
}

// The registry series (er_serve_*, er_query_* — DESIGN.md §6) must agree
// with the legacy per-batch BatchStats view: same events, two windows
// (per-call vs process-lifetime aggregate). Any drift means one of the
// two bookkeeping paths missed an event.
TEST(QueryFrontEnd, RegistryAggregatesMatchBatchStats) {
  const ServeCase c = make_case(20, 20, 48, 77);
  ReductionOptions opts;
  opts.num_blocks = 6;
  const ReductionArtifacts art =
      reduce_network_artifacts(c.net, c.ports, opts);
  ModelStore store;
  store.publish(ModelSnapshot::build(art));

  obs::MetricsRegistry reg;
  const QueryFrontEnd frontend(&store, &reg);
  const auto kept = kept_originals(*art.model);
  BatchStats s1, s2, s3;
  (void)frontend.answer(mixed_batch(kept, 150, 5), nullptr,
                        RouteMode::kSharded, &s1);
  (void)frontend.answer(mixed_batch(kept, 250, 6), nullptr,
                        RouteMode::kSharded, &s2);
  (void)frontend.answer(mixed_batch(kept, 100, 7), nullptr,
                        RouteMode::kMonolithic, &s3);

  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto counter = [&snap](const char* name, const char* mode) {
    const obs::MetricSnapshot* m =
        snap.find(name, {{"mode", mode}});
    return m ? m->counter : std::uint64_t{0};
  };
  // Sharded series aggregate exactly the two sharded batches...
  EXPECT_EQ(counter("er_serve_batches_total", "sharded"), 2u);
  EXPECT_EQ(counter("er_serve_queries_total", "sharded"),
            s1.queries + s2.queries);
  EXPECT_EQ(counter("er_serve_invalid_queries_total", "sharded"),
            s1.invalid + s2.invalid);
  EXPECT_EQ(counter("er_serve_same_block_queries_total", "sharded"),
            s1.same_block + s2.same_block);
  EXPECT_EQ(counter("er_serve_cross_block_queries_total", "sharded"),
            s1.cross_block + s2.cross_block);
  // ...and the monolithic batch lands only in its own labeled series.
  EXPECT_EQ(counter("er_serve_batches_total", "monolithic"), 1u);
  EXPECT_EQ(counter("er_serve_queries_total", "monolithic"), s3.queries);

  // Every query records exactly one latency sample; every batch exactly
  // one batch-duration sample whose total tracks BatchStats::seconds.
  const obs::MetricSnapshot* lat =
      snap.find("er_query_latency_seconds", {{"mode", "sharded"}});
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->histogram.count, s1.queries + s2.queries);
  const obs::MetricSnapshot* batch_h =
      snap.find("er_query_batch_seconds", {{"mode", "sharded"}});
  ASSERT_NE(batch_h, nullptr);
  EXPECT_EQ(batch_h->histogram.count, 2u);
  EXPECT_NEAR(batch_h->histogram.sum, s1.seconds + s2.seconds,
              0.5 * (s1.seconds + s2.seconds) + 1e-6);

  // The store instrumented with its own registry reports its publishes.
  obs::MetricsRegistry store_reg;
  ModelStore counted(&store_reg);
  counted.publish(ModelSnapshot::build(art));
  const obs::MetricsSnapshot store_snap = store_reg.snapshot();
  ASSERT_NE(store_snap.find("er_store_publishes_total"), nullptr);
  EXPECT_EQ(store_snap.find("er_store_publishes_total")->counter,
            counted.publish_count());
  EXPECT_EQ(store_snap.find("er_store_current_version")->gauge,
            static_cast<std::int64_t>(counted.current_version().value()));
}

}  // namespace
}  // namespace er
