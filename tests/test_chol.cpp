// Tests for chol: complete factorization vs dense reference, solve accuracy,
// incomplete Cholesky (droptol behaviour, M-matrix robustness, shift
// fallback), triangular solves, factor invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "chol/cholesky.hpp"
#include "chol/ichol.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "sparse/dense.hpp"
#include "util/rng.hpp"

namespace er {
namespace {

CscMatrix random_sdd(index_t n, std::size_t extra_edges, std::uint64_t seed) {
  const Graph g = erdos_renyi(n, extra_edges, WeightKind::kUniform, seed);
  return grounded_laplacian(g);
}

/// Max |P A P^T - L L^T| entry.
real_t factor_residual(const CscMatrix& a, const CholFactor& f) {
  const CscMatrix ap = a.permute_symmetric(f.perm);
  const CscMatrix l = f.to_csc();
  const auto ld = l.to_dense();
  const index_t n = a.cols();
  real_t worst = 0.0;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      real_t acc = 0.0;
      for (index_t k = 0; k < n; ++k)
        acc += ld[static_cast<std::size_t>(k) * n + i] *
               ld[static_cast<std::size_t>(k) * n + j];
      worst = std::max(worst, std::abs(acc - ap.at(i, j)));
    }
  return worst;
}

TEST(Cholesky, FactorsSmallSddMatrix) {
  const CscMatrix a = random_sdd(25, 60, 1);
  for (auto ord : {Ordering::kNatural, Ordering::kRcm, Ordering::kMinDeg}) {
    const CholFactor f = cholesky(a, ord);
    EXPECT_TRUE(f.check_invariants());
    EXPECT_LT(factor_residual(a, f), 1e-10);
  }
}

TEST(Cholesky, MatchesDenseFactorNaturalOrder) {
  const CscMatrix a = random_sdd(15, 40, 2);
  const CholFactor f = cholesky(a, identity_permutation(a.cols()));
  DenseMatrix d(a.rows(), a.cols(), a.to_dense());
  ASSERT_TRUE(d.cholesky_in_place());
  const CscMatrix l = f.to_csc();
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = j; i < a.rows(); ++i)
      EXPECT_NEAR(l.at(i, j), d(i, j), 1e-10);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const CscMatrix a = random_sdd(80, 220, 3);
  Rng rng(4);
  std::vector<real_t> x_true(static_cast<std::size_t>(a.cols()));
  for (auto& v : x_true) v = rng.uniform(-2, 2);
  const auto b = a.multiply(x_true);
  const CholFactor f = cholesky(a, Ordering::kMinDeg);
  const auto x = f.solve(b);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Cholesky, ThrowsOnIndefinite) {
  TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, -1.0);
  const CscMatrix a = CscMatrix::from_triplets(t);
  EXPECT_THROW(cholesky(a, Ordering::kNatural), std::runtime_error);
}

TEST(Cholesky, ThrowsOnBadPermutation) {
  const CscMatrix a = random_sdd(10, 20, 5);
  std::vector<index_t> bad{0, 0, 1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW(cholesky(a, bad), std::invalid_argument);
}

TEST(Cholesky, TriangularSolvesInvertEachOther) {
  const CscMatrix a = random_sdd(50, 140, 6);
  const CholFactor f = cholesky(a, Ordering::kMinDeg);
  Rng rng(7);
  std::vector<real_t> x(static_cast<std::size_t>(a.cols()));
  for (auto& v : x) v = rng.uniform(-1, 1);
  // L (L^{-1} x) == x via forward solve then multiply by L.
  std::vector<real_t> y = x;
  f.forward_solve(y);
  const CscMatrix l = f.to_csc();
  const auto ly = l.multiply(y);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(ly[i], x[i], 1e-10);
  // Same for backward with L^T.
  std::vector<real_t> z = x;
  f.backward_solve(z);
  std::vector<real_t> ltz;
  l.multiply_transpose(z, ltz);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(ltz[i], x[i], 1e-10);
}

TEST(Cholesky, LaplacianFactorSignStructure) {
  // For SDD M-matrices the factor has positive diagonal and nonpositive
  // off-diagonals ([19]; the property Lemma 1 builds on).
  const Graph g = grid_2d(8, 8, WeightKind::kUniform, 8);
  const CscMatrix lg = grounded_laplacian(g);
  const CholFactor f = cholesky(lg, Ordering::kMinDeg);
  for (index_t j = 0; j < f.n; ++j) {
    const offset_t b = f.col_ptr[static_cast<std::size_t>(j)];
    const offset_t e = f.col_ptr[static_cast<std::size_t>(j) + 1];
    EXPECT_GT(f.values[static_cast<std::size_t>(b)], 0.0);
    for (offset_t k = b + 1; k < e; ++k)
      EXPECT_LE(f.values[static_cast<std::size_t>(k)], 1e-14);
  }
}

TEST(Ichol, ZeroDroptolEqualsCompleteFactor) {
  const CscMatrix a = random_sdd(40, 110, 9);
  const auto perm = compute_ordering(a, Ordering::kMinDeg);
  const CholFactor full = cholesky(a, perm);
  IcholOptions opts;
  opts.droptol = 0.0;
  const CholFactor inc = ichol(a, perm, opts);
  ASSERT_EQ(full.nnz(), inc.nnz());
  const auto lf = full.to_csc().to_dense();
  const auto li = inc.to_csc().to_dense();
  for (std::size_t i = 0; i < lf.size(); ++i) EXPECT_NEAR(lf[i], li[i], 1e-10);
}

TEST(Ichol, DroppingReducesFill) {
  const Graph g = grid_2d(20, 20, WeightKind::kUniform, 10);
  const CscMatrix lg = grounded_laplacian(g);
  const auto perm = compute_ordering(lg, Ordering::kMinDeg);
  IcholOptions loose, tight;
  loose.droptol = 1e-1;
  tight.droptol = 0.0;
  const CholFactor lf = ichol(lg, perm, loose);
  const CholFactor tf = ichol(lg, perm, tight);
  EXPECT_LT(lf.nnz(), tf.nnz());
}

TEST(Ichol, PreconditionerQualityImprovesWithSmallerDroptol) {
  // Residual of M^{-1}A applied to a vector should shrink as droptol -> 0.
  const CscMatrix a = random_sdd(100, 280, 11);
  const auto perm = compute_ordering(a, Ordering::kMinDeg);
  Rng rng(12);
  std::vector<real_t> b(static_cast<std::size_t>(a.cols()));
  for (auto& v : b) v = rng.uniform(-1, 1);

  real_t prev_err = 1e30;
  for (real_t droptol : {1e-1, 1e-2, 1e-4, 0.0}) {
    IcholOptions opts;
    opts.droptol = droptol;
    const CholFactor f = ichol(a, perm, opts);
    const auto x = f.solve(b);
    const auto ax = a.multiply(x);
    real_t err = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) err += std::abs(ax[i] - b[i]);
    EXPECT_LT(err, prev_err + 1e-12);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-8);  // droptol 0 is the complete factor -> exact
}

TEST(Ichol, MMatrixNeverNeedsShift) {
  // SDD M-matrices (grounded Laplacians) factor without breakdown at any
  // droptol; validate invariants across a droptol sweep.
  const Graph g = barabasi_albert(150, 3, WeightKind::kUniform, 13);
  const CscMatrix lg = grounded_laplacian(g);
  const auto perm = compute_ordering(lg, Ordering::kMinDeg);
  for (real_t droptol : {0.0, 1e-4, 1e-3, 1e-2, 1e-1}) {
    IcholOptions opts;
    opts.droptol = droptol;
    const CholFactor f = ichol(lg, perm, opts);
    EXPECT_TRUE(f.check_invariants());
  }
}

TEST(Ichol, FactorSignStructureOnLaplacian) {
  const Graph g = grid_2d(10, 10, WeightKind::kLogUniform, 14);
  const CscMatrix lg = grounded_laplacian(g);
  IcholOptions opts;
  opts.droptol = 1e-3;
  const CholFactor f = ichol(lg, Ordering::kMinDeg, opts);
  for (index_t j = 0; j < f.n; ++j) {
    const offset_t b = f.col_ptr[static_cast<std::size_t>(j)];
    const offset_t e = f.col_ptr[static_cast<std::size_t>(j) + 1];
    EXPECT_GT(f.values[static_cast<std::size_t>(b)], 0.0);
    for (offset_t k = b + 1; k < e; ++k)
      EXPECT_LE(f.values[static_cast<std::size_t>(k)], 1e-14);
  }
}

TEST(Ichol, RejectsNegativeDroptol) {
  const CscMatrix a = random_sdd(10, 20, 15);
  IcholOptions opts;
  opts.droptol = -1.0;
  EXPECT_THROW(ichol(a, Ordering::kNatural, opts), std::invalid_argument);
}

class CholOrderingSweep : public ::testing::TestWithParam<Ordering> {};

TEST_P(CholOrderingSweep, SolveAccuracyAcrossGraphFamilies) {
  const Ordering ord = GetParam();
  const std::vector<Graph> graphs = {
      grid_2d(9, 7, WeightKind::kUniform, 21),
      grid_3d(4, 4, 4, WeightKind::kUniform, 22),
      barabasi_albert(90, 2, WeightKind::kUniform, 23),
      watts_strogatz(80, 3, 0.2, WeightKind::kUniform, 24),
  };
  for (const auto& g : graphs) {
    const CscMatrix lg = grounded_laplacian(g);
    Rng rng(25);
    std::vector<real_t> x_true(static_cast<std::size_t>(lg.cols()));
    for (auto& v : x_true) v = rng.uniform(-1, 1);
    const auto b = lg.multiply(x_true);
    const CholFactor f = cholesky(lg, ord);
    const auto x = f.solve(b);
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_NEAR(x[i], x_true[i], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, CholOrderingSweep,
                         ::testing::Values(Ordering::kNatural, Ordering::kRcm,
                                           Ordering::kMinDeg));

}  // namespace
}  // namespace er
