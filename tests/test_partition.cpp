// Tests for partition: validity, balance, cut quality on structured graphs,
// determinism, degenerate cases.
#include <gtest/gtest.h>

#include <set>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "partition/partition.hpp"

namespace er {
namespace {

PartitionOptions make_opts(index_t k, std::uint64_t seed = 1) {
  PartitionOptions o;
  o.num_parts = k;
  o.seed = seed;
  return o;
}

TEST(Partition, AssignsEveryNodeAValidPart) {
  const Graph g = grid_2d(20, 20);
  const PartitionResult r = partition_graph(g, make_opts(8));
  ASSERT_EQ(r.part.size(), static_cast<std::size_t>(g.num_nodes()));
  for (index_t p : r.part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 8);
  }
}

TEST(Partition, UsesAllParts) {
  const Graph g = grid_2d(24, 24);
  const PartitionResult r = partition_graph(g, make_opts(6));
  std::set<index_t> used(r.part.begin(), r.part.end());
  EXPECT_EQ(used.size(), 6u);
}

TEST(Partition, BalanceWithinTolerance) {
  const Graph g = grid_2d(32, 32);
  const PartitionResult r = partition_graph(g, make_opts(8));
  // Allow some slack beyond the optimizer's cap for the round-trip through
  // coarsening granularity.
  EXPECT_LT(r.balance(g), 1.5);
}

TEST(Partition, CutFarBelowTotalOnMesh) {
  // A k-way partition of a mesh should cut a small fraction of the edges
  // (a random assignment cuts ~(1 - 1/k) of them).
  const Graph g = grid_2d(30, 30);
  const PartitionResult r = partition_graph(g, make_opts(4));
  EXPECT_LT(r.cut_edges(g), g.num_edges() / 4);
}

TEST(Partition, SinglePartIsTrivial) {
  const Graph g = grid_2d(10, 10);
  const PartitionResult r = partition_graph(g, make_opts(1));
  for (index_t p : r.part) EXPECT_EQ(p, 0);
  EXPECT_EQ(r.cut_edges(g), 0u);
}

TEST(Partition, MorePartsThanNodes) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const PartitionResult r = partition_graph(g, make_opts(5));
  for (index_t p : r.part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 5);
  }
}

TEST(Partition, RejectsZeroParts) {
  const Graph g = grid_2d(4, 4);
  EXPECT_THROW(partition_graph(g, make_opts(0)), std::invalid_argument);
}

TEST(Partition, DeterministicForSameSeed) {
  const Graph g = barabasi_albert(400, 3, WeightKind::kUniform, 3);
  const PartitionResult a = partition_graph(g, make_opts(4, 7));
  const PartitionResult b = partition_graph(g, make_opts(4, 7));
  EXPECT_EQ(a.part, b.part);
}

TEST(Partition, WorksOnHeavyTailedGraphs) {
  const Graph g = barabasi_albert(600, 4, WeightKind::kUniform, 5);
  const PartitionResult r = partition_graph(g, make_opts(6));
  std::set<index_t> used(r.part.begin(), r.part.end());
  EXPECT_GE(used.size(), 4u);  // hubs make perfect balance hard; most parts used
  EXPECT_LT(r.balance(g), 2.0);
}

TEST(Partition, WorksOnDisconnectedGraphs) {
  Graph g(40);
  for (index_t i = 0; i < 19; ++i) g.add_edge(i, i + 1);
  for (index_t i = 20; i < 39; ++i) g.add_edge(i, i + 1);
  const PartitionResult r = partition_graph(g, make_opts(2));
  for (index_t p : r.part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 2);
  }
}

class PartitionSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(PartitionSweep, MeshCutScalesWithK) {
  const index_t k = GetParam();
  const Graph g = grid_2d(24, 24);
  const PartitionResult r = partition_graph(g, make_opts(k));
  std::set<index_t> used(r.part.begin(), r.part.end());
  EXPECT_GE(used.size(), static_cast<std::size_t>(k) - 1);
  EXPECT_LT(r.cut_edges(g), g.num_edges() / 2);
}

INSTANTIATE_TEST_SUITE_P(Ks, PartitionSweep, ::testing::Values(2, 3, 4, 8, 16));

}  // namespace
}  // namespace er
