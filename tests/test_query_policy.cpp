// Per-query QueryPolicy tests (DESIGN.md §4.3). The pinned contracts:
//
//   (a) hedged queries answer bitwise-identically to a serial two-backend
//       twin (each leg evaluated un-hedged, winner picked with the pure
//       selection rule in serve/query_policy.hpp) at 1/2/4/8 threads
//       (runs under TSan in CI),
//   (b) the result cache keys on the accuracy tier: a fast-tier cached
//       answer never serves an exact-tier probe,
//   (c) deadline-expired queries answer NaN with QueryStatus::kDeadlineMiss
//       without blocking the rest of the batch — expiry is a pure function
//       of (policy.deadline_us, AnswerContext::queue_wait_us), never of a
//       clock read,
//   (d) old-version (v1) wire frames decode with every policy defaulted
//       and answer exactly as before policies existed,
//   (e) backend preferences resolve as documented: kMonolithic degrades to
//       sharded without the whole-system factor, kAuto diverts reduced
//       tiers to cheap resident engines, and the admission queue
//       dispatches deadline-urgent items first.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "net/admission.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "pg/incremental.hpp"
#include "serve/model_store.hpp"
#include "serve/query_frontend.hpp"
#include "serve/query_policy.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot.hpp"
#include "serve_test_util.hpp"

namespace er {
namespace {

/// Mixed batch with hedged fast-tier policies on every resistance query
/// (the response queries keep the default policy, so the batch mixes
/// policied and default slots like real traffic would).
std::vector<PortQuery> hedged_batch(const std::vector<index_t>& kept,
                                    std::size_t count, std::uint64_t seed) {
  std::vector<PortQuery> batch = mixed_batch(kept, count, seed);
  for (PortQuery& query : batch)
    if (query.kind == QueryKind::kResistance) {
      query.policy.accuracy_tier = AccuracyTier::kFast;
      query.policy.hedge = true;
    }
  return batch;
}

// ---------------------------------------------------------------------------
// (a) hedged == serial two-backend twin, bitwise, at any thread count.
// ---------------------------------------------------------------------------

TEST(QueryPolicy, HedgedMatchesSerialTwoBackendTwinAcrossThreadCounts) {
  const ServeCase c = make_case(24, 24, 64, 401);
  ReductionOptions opts;
  opts.num_blocks = 8;
  const ReductionArtifacts art =
      reduce_network_artifacts(c.net, c.ports, opts);
  const auto snap = ModelSnapshot::build(art);
  const auto kept = kept_originals(*art.model);
  const auto batch = hedged_batch(kept, 400, 11);

  // Serial twin: evaluate each leg through its own un-hedged batch, then
  // select with the pure rule. Ineligible hedged queries collapse to the
  // same exact answer on both legs, so the expectation covers every slot.
  std::vector<PortQuery> engine_leg = batch, exact_leg = batch;
  for (PortQuery& query : engine_leg) {
    query.policy.hedge = false;
    query.policy.backend_pref = BackendPref::kLocalApprox;
  }
  for (PortQuery& query : exact_leg) {
    query.policy.hedge = false;
    query.policy.backend_pref = BackendPref::kSharded;
  }
  obs::MetricsRegistry twin_reg;
  const auto engine_answers =
      QueryFrontEnd::answer_on(*snap, engine_leg,
                               {nullptr, RouteMode::kSharded, nullptr,
                                &twin_reg});
  const auto exact_answers =
      QueryFrontEnd::answer_on(*snap, exact_leg,
                               {nullptr, RouteMode::kSharded, nullptr,
                                &twin_reg});

  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    obs::MetricsRegistry reg;
    std::optional<ThreadPool> pool;
    if (threads > 1) pool.emplace(threads, &reg);
    BatchStats stats;
    const auto answers = QueryFrontEnd::answer_on(
        *snap, batch,
        {pool ? &*pool : nullptr, RouteMode::kSharded, &stats, &reg});
    ASSERT_EQ(answers.size(), batch.size());
    EXPECT_GT(stats.hedged, 0u);  // hedging actually engaged
    // Fast-tier hedges always select the engine leg when it ran (the
    // selection rule prefers any reduced-tier engine value).
    EXPECT_EQ(stats.hedge_won_engine, stats.hedged);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch[i].policy.hedge) continue;
      const real_t want =
          hedge_prefers_engine(batch[i].policy.accuracy_tier,
                               engine_answers[i])
              ? engine_answers[i]
              : exact_answers[i];
      const bool both_nan = std::isnan(answers[i]) && std::isnan(want);
      ASSERT_TRUE(answers[i] == want || both_nan) << "query " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// (b) cache entries are keyed by accuracy tier.
// ---------------------------------------------------------------------------

TEST(QueryPolicy, FastTierCacheEntriesNeverServeExactTierProbes) {
  const ServeCase c = make_case(20, 20, 48, 409);
  ReductionOptions opts;
  opts.num_blocks = 6;
  obs::MetricsRegistry reg;
  ModelStore store(&reg);
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  const auto cache =
      std::make_shared<ResultCache>(ResultCacheOptions{}, &reg);
  store.attach_cache(cache);
  const QueryFrontEnd frontend(&store, &reg);

  // Distinct consecutive kept-node pairs: every key is inserted at most
  // once per tier, so hit/miss counts are exact (no intra-batch repeats).
  const auto kept = kept_originals(reducer.model());
  std::vector<PortQuery> fast;
  for (std::size_t i = 0; i + 1 < kept.size() && fast.size() < 120; i += 2) {
    PortQuery query;
    query.kind =
        i % 4 == 0 ? QueryKind::kResistance : QueryKind::kResponse;
    query.p = kept[i];
    query.q = kept[i + 1];
    query.policy.accuracy_tier = AccuracyTier::kFast;
    fast.push_back(query);
  }
  ASSERT_GT(fast.size(), 10u);
  std::vector<PortQuery> exact = fast;
  for (PortQuery& query : exact)
    query.policy.accuracy_tier = AccuracyTier::kExact;

  // Warm the fast tier, then confirm it hits itself.
  BatchStats warm, fast_again;
  (void)frontend.answer(fast, {nullptr, RouteMode::kSharded, &warm});
  EXPECT_EQ(warm.cache_hits, 0u);
  EXPECT_GT(warm.cache_misses, 0u);
  (void)frontend.answer(fast, {nullptr, RouteMode::kSharded, &fast_again});
  EXPECT_EQ(fast_again.cache_misses, 0u);
  EXPECT_EQ(fast_again.cache_hits, warm.cache_misses);

  // The exact-tier probe of the same (kind, p, q) keys must miss through:
  // a reduced-tier answer can never serve an exact-tier query.
  BatchStats exact_probe;
  const auto exact_answers =
      frontend.answer(exact, {nullptr, RouteMode::kSharded, &exact_probe});
  EXPECT_EQ(exact_probe.cache_hits, 0u);
  EXPECT_GT(exact_probe.cache_misses, 0u);

  // And the tier-keyed entries coexist: both tiers now hit fully.
  BatchStats exact_again;
  const auto exact_cached =
      frontend.answer(exact, {nullptr, RouteMode::kSharded, &exact_again});
  EXPECT_EQ(exact_again.cache_misses, 0u);
  for (std::size_t i = 0; i < exact_answers.size(); ++i) {
    const bool both_nan =
        std::isnan(exact_answers[i]) && std::isnan(exact_cached[i]);
    ASSERT_TRUE(exact_answers[i] == exact_cached[i] || both_nan)
        << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// (c) deadline expiry: pure, per-query, non-blocking.
// ---------------------------------------------------------------------------

TEST(QueryPolicy, ExpiredDeadlinesMissWithoutBlockingTheBatch) {
  const ServeCase c = make_case(18, 18, 40, 419);
  ReductionOptions opts;
  opts.num_blocks = 6;
  const ReductionArtifacts art =
      reduce_network_artifacts(c.net, c.ports, opts);
  const auto snap = ModelSnapshot::build(art);
  const auto kept = kept_originals(*art.model);

  const auto plain = mixed_batch(kept, 60, 17);
  std::vector<PortQuery> batch = plain;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i % 3 == 0) batch[i].policy.deadline_us = 10;        // expires
    if (i % 3 == 1) batch[i].policy.deadline_us = 1'000'000; // never does
  }

  obs::MetricsRegistry reg;
  const auto reference = QueryFrontEnd::answer_on(
      *snap, plain, {nullptr, RouteMode::kSharded, nullptr, &reg});

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::optional<ThreadPool> pool;
    if (threads > 1) pool.emplace(threads, &reg);
    BatchStats stats;
    std::vector<QueryStatus> statuses;
    AnswerContext ctx;
    ctx.pool = pool ? &*pool : nullptr;
    ctx.mode = RouteMode::kSharded;
    ctx.stats = &stats;
    ctx.registry = &reg;
    ctx.queue_wait_us = 50;  // injected, not measured: 10 <= 50 expires
    ctx.statuses = &statuses;
    const auto answers = QueryFrontEnd::answer_on(*snap, batch, ctx);
    ASSERT_EQ(statuses.size(), batch.size());
    std::size_t misses = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (i % 3 == 0) {
        EXPECT_EQ(statuses[i], QueryStatus::kDeadlineMiss) << "query " << i;
        EXPECT_TRUE(std::isnan(answers[i])) << "query " << i;
        ++misses;
      } else {
        // The rest of the batch answers exactly as the deadline-free twin.
        const bool both_nan =
            std::isnan(answers[i]) && std::isnan(reference[i]);
        ASSERT_TRUE(answers[i] == reference[i] || both_nan)
            << "query " << i;
        EXPECT_NE(statuses[i], QueryStatus::kDeadlineMiss) << "query " << i;
      }
    }
    EXPECT_EQ(stats.deadline_miss, misses);
  }

  // With no queue wait, nothing expires (deadline 10us > wait 0).
  BatchStats relaxed;
  AnswerContext relaxed_ctx;
  relaxed_ctx.mode = RouteMode::kSharded;
  relaxed_ctx.stats = &relaxed;
  relaxed_ctx.registry = &reg;
  (void)QueryFrontEnd::answer_on(*snap, batch, relaxed_ctx);
  EXPECT_EQ(relaxed.deadline_miss, 0u);
}

// ---------------------------------------------------------------------------
// (d) v1 wire frames decode with default policies and answer as before.
// ---------------------------------------------------------------------------

TEST(QueryPolicy, OldVersionWireFramesAnswerWithDefaultPolicy) {
  net::QueryBatchRequest req;
  req.route = RouteMode::kSharded;
  req.queries = {{QueryKind::kResistance, 3, 9, {}},
                 {QueryKind::kResponse, 1, 4, {}}};
  // The sender sets non-default policies; a v1 encoding must drop them.
  for (PortQuery& query : req.queries) {
    query.policy.deadline_us = 77;
    query.policy.accuracy_tier = AccuracyTier::kFast;
    query.policy.hedge = true;
  }

  const auto v1_payload =
      net::encode_query_batch(req, net::kMinProtocolVersion);
  const auto v1_frame =
      net::encode_frame(net::Opcode::kErBatch, 42, v1_payload,
                        net::kMinProtocolVersion);
  net::FrameBuffer fb;
  fb.append(v1_frame.data(), v1_frame.size());
  net::Frame frame;
  ASSERT_EQ(fb.next(&frame), net::DecodeStatus::kOk);
  EXPECT_EQ(frame.version, net::kMinProtocolVersion);

  net::QueryBatchRequest decoded;
  ASSERT_TRUE(net::decode_query_batch(frame.payload, &decoded,
                                      frame.version));
  ASSERT_EQ(decoded.queries.size(), req.queries.size());
  for (std::size_t i = 0; i < decoded.queries.size(); ++i) {
    EXPECT_EQ(decoded.queries[i].p, req.queries[i].p);
    EXPECT_EQ(decoded.queries[i].q, req.queries[i].q);
    EXPECT_TRUE(is_default(decoded.queries[i].policy)) << "query " << i;
  }

  // A v2 round-trip preserves the policies verbatim.
  const auto v2_payload = net::encode_query_batch(req);
  net::QueryBatchRequest v2_decoded;
  ASSERT_TRUE(net::decode_query_batch(v2_payload, &v2_decoded));
  for (std::size_t i = 0; i < v2_decoded.queries.size(); ++i) {
    const QueryPolicy& pol = v2_decoded.queries[i].policy;
    EXPECT_EQ(pol.deadline_us, 77u);
    EXPECT_EQ(pol.accuracy_tier, AccuracyTier::kFast);
    EXPECT_TRUE(pol.hedge);
  }

  // Default-policy batches take the exact pre-policy serving path, so a
  // v1 client's answers are bitwise those of the policy-free library call.
  const ServeCase c = make_case(16, 16, 24, 421);
  ReductionOptions opts;
  opts.num_blocks = 4;
  const ReductionArtifacts art =
      reduce_network_artifacts(c.net, c.ports, opts);
  const auto snap = ModelSnapshot::build(art);
  const auto kept = kept_originals(*art.model);
  const auto batch = mixed_batch(kept, 80, 23);
  std::vector<PortQuery> wire_twin = batch;  // what a v1 decode yields
  for (PortQuery& query : wire_twin) query.policy = QueryPolicy{};
  const auto want = QueryFrontEnd::answer_on(*snap, batch);
  const auto got = QueryFrontEnd::answer_on(*snap, wire_twin);
  for (std::size_t i = 0; i < want.size(); ++i) {
    const bool both_nan = std::isnan(want[i]) && std::isnan(got[i]);
    ASSERT_TRUE(want[i] == got[i] || both_nan) << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// (e) backend preference resolution + deadline-urgent admission.
// ---------------------------------------------------------------------------

TEST(QueryPolicy, MonolithicPreferenceDegradesWithoutTheFactor) {
  const ServeCase c = make_case(16, 16, 24, 431);
  ReductionOptions opts;
  opts.num_blocks = 4;
  const ReductionArtifacts art =
      reduce_network_artifacts(c.net, c.ports, opts);
  ServingOptions with, without;
  without.build_monolithic_factor = false;
  const auto full = ModelSnapshot::build(art, with);
  const auto lean = ModelSnapshot::build(art, without);

  const auto kept = kept_originals(*art.model);
  std::vector<PortQuery> batch = mixed_batch(kept, 80, 29);
  for (PortQuery& query : batch)
    query.policy.backend_pref = BackendPref::kMonolithic;

  // With the factor: per-query kMonolithic matches the batch-level route.
  const auto mono_batch = QueryFrontEnd::answer_on(
      *full, mixed_batch(kept, 80, 29), {nullptr, RouteMode::kMonolithic});
  const auto per_query = QueryFrontEnd::answer_on(*full, batch);
  for (std::size_t i = 0; i < per_query.size(); ++i) {
    const bool both_nan =
        std::isnan(per_query[i]) && std::isnan(mono_batch[i]);
    ASSERT_TRUE(per_query[i] == mono_batch[i] || both_nan) << "query " << i;
  }

  // Without it: the per-query preference degrades to sharded (a
  // batch-level kMonolithic still throws — pinned in test_serving.cpp).
  const auto sharded = QueryFrontEnd::answer_on(
      *lean, mixed_batch(kept, 80, 29), {nullptr, RouteMode::kSharded});
  const auto degraded = QueryFrontEnd::answer_on(*lean, batch);
  for (std::size_t i = 0; i < degraded.size(); ++i) {
    const bool both_nan =
        std::isnan(degraded[i]) && std::isnan(sharded[i]);
    ASSERT_TRUE(degraded[i] == sharded[i] || both_nan) << "query " << i;
  }
}

TEST(QueryPolicy, AutoDivertsReducedTiersToCheapEngines) {
  const ServeCase c = make_case(20, 20, 48, 433);
  ReductionOptions opts;
  opts.num_blocks = 6;
  const ReductionArtifacts art =
      reduce_network_artifacts(c.net, c.ports, opts);
  const auto snap = ModelSnapshot::build(art);
  const auto kept = kept_originals(*art.model);

  // kAuto + kApprox routes engine-eligible queries exactly like an
  // explicit kLocalApprox preference (the resident engines advertise
  // cost hints below kAutoEngineCostCeiling).
  std::vector<PortQuery> auto_batch = mixed_batch(kept, 200, 31);
  for (PortQuery& query : auto_batch)
    query.policy.accuracy_tier = AccuracyTier::kApprox;
  std::vector<PortQuery> engine_batch = auto_batch;
  for (PortQuery& query : engine_batch)
    query.policy.backend_pref = BackendPref::kLocalApprox;

  BatchStats auto_stats;
  const auto auto_answers = QueryFrontEnd::answer_on(
      *snap, auto_batch, {nullptr, RouteMode::kSharded, &auto_stats});
  const auto engine_answers =
      QueryFrontEnd::answer_on(*snap, engine_batch);
  EXPECT_GT(auto_stats.engine_answered, 0u);
  for (std::size_t i = 0; i < auto_answers.size(); ++i) {
    const bool both_nan =
        std::isnan(auto_answers[i]) && std::isnan(engine_answers[i]);
    ASSERT_TRUE(auto_answers[i] == engine_answers[i] || both_nan)
        << "query " << i;
  }

  // kAuto + kExact keeps the batch route untouched — bitwise the
  // pre-policy sharded answers.
  std::vector<PortQuery> exact_batch = mixed_batch(kept, 200, 31);
  for (PortQuery& query : exact_batch)
    query.policy.deadline_us = 1'000'000;  // policied, but exact tier
  const auto exact_answers = QueryFrontEnd::answer_on(*snap, exact_batch);
  const auto plain_answers =
      QueryFrontEnd::answer_on(*snap, mixed_batch(kept, 200, 31));
  for (std::size_t i = 0; i < exact_answers.size(); ++i) {
    const bool both_nan =
        std::isnan(exact_answers[i]) && std::isnan(plain_answers[i]);
    ASSERT_TRUE(exact_answers[i] == plain_answers[i] || both_nan)
        << "query " << i;
  }
}

TEST(QueryPolicy, AdmissionQueueDispatchesUrgentItemsFirst) {
  net::AdmissionQueue<int> queue(3);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_TRUE(queue.try_push(3, /*urgent=*/true));
  // Both levels draw on one capacity bound.
  EXPECT_FALSE(queue.try_push(4));
  EXPECT_FALSE(queue.try_push(5, /*urgent=*/true));
  EXPECT_EQ(queue.depth(), 3u);

  // Urgent first, admission order within a level.
  EXPECT_EQ(queue.pop().value(), 3);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_TRUE(queue.try_push(6, /*urgent=*/true));
  EXPECT_EQ(queue.pop().value(), 6);
  EXPECT_EQ(queue.pop().value(), 2);

  queue.close();
  EXPECT_FALSE(queue.pop().has_value());
}

}  // namespace
}  // namespace er
