// Tests for graph: graph type, Laplacian/incidence assembly, components,
// generators (structure + connectivity + determinism).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/laplacian.hpp"
#include "sparse/dense.hpp"

namespace er {
namespace {

TEST(Graph, AddEdgeValidation) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), std::invalid_argument);  // self-loop
  EXPECT_THROW(g.add_edge(0, 3, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);  // zero weight
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
  g.add_edge(0, 1, 2.0);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, AdjacencyIsConsistent) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(0, 3, 4.0);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 2);
  const auto& ptr = g.adjacency_ptr();
  const auto& nbr = g.neighbors();
  // Every adjacency slot mirrors an edge endpoint.
  std::size_t total = 0;
  for (index_t u = 0; u < 4; ++u)
    total += static_cast<std::size_t>(ptr[static_cast<std::size_t>(u) + 1] -
                                      ptr[static_cast<std::size_t>(u)]);
  EXPECT_EQ(total, 2 * g.num_edges());
  // Node 0 neighbours are {1, 3}.
  std::set<index_t> n0(nbr.begin() + ptr[0], nbr.begin() + ptr[1]);
  EXPECT_EQ(n0, (std::set<index_t>{1, 3}));
}

TEST(Graph, WeightedDegrees) {
  Graph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  const auto deg = g.weighted_degrees();
  EXPECT_DOUBLE_EQ(deg[0], 1.5);
  EXPECT_DOUBLE_EQ(deg[1], 4.0);
  EXPECT_DOUBLE_EQ(deg[2], 2.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 4.0);
}

TEST(Graph, CoalesceParallelEdges) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 2.0);  // parallel, reversed orientation
  g.add_edge(1, 2, 3.0);
  const Graph c = g.coalesce_parallel_edges();
  EXPECT_EQ(c.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(c.total_weight(), 6.0);
}

TEST(Laplacian, RowSumsAreZero) {
  const Graph g = grid_2d(5, 4, WeightKind::kUniform, 3);
  const CscMatrix l = laplacian(g);
  const std::vector<real_t> ones(static_cast<std::size_t>(g.num_nodes()), 1.0);
  const auto y = l.multiply(ones);
  for (real_t v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Laplacian, MatchesIncidenceForm) {
  // L == B^T W B (paper Eq. (2)).
  const Graph g = grid_2d(4, 3, WeightKind::kUniform, 5);
  const CscMatrix l = laplacian(g);
  const CscMatrix b = incidence(g);
  const CscMatrix w = edge_weight_matrix(g);
  // Compute B^T W B row by row through dense vectors (small graph).
  const index_t n = g.num_nodes();
  for (index_t j = 0; j < n; ++j) {
    std::vector<real_t> ej(static_cast<std::size_t>(n), 0.0);
    ej[static_cast<std::size_t>(j)] = 1.0;
    const auto be = b.multiply(ej);
    const auto wbe = w.multiply(be);
    std::vector<real_t> col;
    b.multiply_transpose(wbe, col);
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(col[static_cast<std::size_t>(i)], l.at(i, j), 1e-12);
  }
}

TEST(Laplacian, IsSymmetricPositiveSemidefinite) {
  const Graph g = barabasi_albert(40, 3, WeightKind::kUniform, 7);
  const CscMatrix l = laplacian(g);
  EXPECT_TRUE(l.is_symmetric(1e-14));
  // x^T L x >= 0 for random x.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<real_t> x(static_cast<std::size_t>(g.num_nodes()));
    for (auto& v : x) v = rng.uniform(-1, 1);
    const auto lx = l.multiply(x);
    EXPECT_GE(dot(x, lx), -1e-10);
  }
}

TEST(GroundedLaplacian, IsPositiveDefinite) {
  const Graph g = grid_2d(4, 4, WeightKind::kUnit, 1);
  const CscMatrix lg = grounded_laplacian(g);
  DenseMatrix d(g.num_nodes(), g.num_nodes(), lg.to_dense());
  EXPECT_TRUE(d.cholesky_in_place());
}

TEST(GroundedLaplacian, OneGroundPerComponent) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);  // two components
  std::vector<index_t> grounds;
  const CscMatrix lg = grounded_laplacian(g, 1.0, &grounds);
  EXPECT_EQ(grounds.size(), 2u);
  const CscMatrix l = laplacian(g);
  // Difference is exactly the two diagonal bumps.
  const CscMatrix diff = lg.add(l, -1.0);
  EXPECT_EQ(diff.drop_small(1e-15, false).nnz(), 2);
}

TEST(Components, LabelsPartitionTheGraph) {
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  // 5, 6 isolated
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 4);
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[5], c.label[6]);
}

TEST(Components, BfsLevelsAreShortestHops) {
  const Graph g = grid_2d(5, 1, WeightKind::kUnit, 1);  // path of 5 nodes
  const BfsTree t = bfs(g, 0);
  for (index_t v = 0; v < 5; ++v)
    EXPECT_EQ(t.level[static_cast<std::size_t>(v)], v);
  EXPECT_EQ(t.parent[0], -1);
  EXPECT_EQ(t.parent[3], 2);
}

TEST(Generators, Grid2dStructure) {
  const Graph g = grid_2d(7, 5);
  EXPECT_EQ(g.num_nodes(), 35);
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(6 * 5 + 7 * 4));
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Grid3dStructure) {
  const Graph g = grid_3d(3, 4, 5);
  EXPECT_EQ(g.num_nodes(), 60);
  EXPECT_EQ(g.num_edges(),
            static_cast<std::size_t>(2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4));
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, BarabasiAlbertDegreesAndConnectivity) {
  const Graph g = barabasi_albert(500, 3, WeightKind::kUnit, 9);
  EXPECT_EQ(g.num_nodes(), 500);
  EXPECT_TRUE(is_connected(g));
  // Heavy tail: max degree far above the attachment parameter.
  index_t dmax = 0;
  for (index_t v = 0; v < 500; ++v) dmax = std::max(dmax, g.degree(v));
  EXPECT_GT(dmax, 20);
}

TEST(Generators, RmatIsConnectedAndSized) {
  const Graph g = rmat(10, 4000, 0.57, 0.19, 0.19, WeightKind::kUnit, 13);
  EXPECT_EQ(g.num_nodes(), 1024);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(g.num_edges(), 3500u);
}

TEST(Generators, WattsStrogatzBasics) {
  const Graph g = watts_strogatz(300, 4, 0.1, WeightKind::kUnit, 15);
  EXPECT_EQ(g.num_nodes(), 300);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomGeometricConnected) {
  const Graph g = random_geometric(400, 0.08, WeightKind::kUnit, 17);
  EXPECT_EQ(g.num_nodes(), 400);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, MultilayerMeshConnected) {
  const Graph g = multilayer_mesh(16, 16, 3, WeightKind::kLogUniform, 19);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GT(g.num_nodes(), 16 * 16);  // extra layers add nodes
}

TEST(Generators, ErdosRenyiConnectedAfterPatching) {
  const Graph g = erdos_renyi(200, 300, WeightKind::kUnit, 21);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, DeterministicForSameSeed) {
  const Graph a = barabasi_albert(100, 2, WeightKind::kUniform, 33);
  const Graph b = barabasi_albert(100, 2, WeightKind::kUniform, 33);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edges()[e].u, b.edges()[e].u);
    EXPECT_EQ(a.edges()[e].v, b.edges()[e].v);
    EXPECT_DOUBLE_EQ(a.edges()[e].weight, b.edges()[e].weight);
  }
}

TEST(Generators, PositiveWeightsAlways) {
  for (auto kind :
       {WeightKind::kUnit, WeightKind::kUniform, WeightKind::kLogUniform}) {
    const Graph g = grid_2d(6, 6, kind, 23);
    for (const auto& e : g.edges()) EXPECT_GT(e.weight, 0.0);
  }
}

TEST(Generators, EnsureConnectedIdempotentOnConnected) {
  Graph g = grid_2d(3, 3);
  const std::size_t m = g.num_edges();
  ensure_connected(g);
  EXPECT_EQ(g.num_edges(), m);
}

}  // namespace
}  // namespace er
