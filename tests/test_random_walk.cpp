// Tests for the random-walk (commute-time) ER engine — the paper's
// related-work family [2][3] — plus the commute-time utilities.
#include <gtest/gtest.h>

#include "effres/centrality.hpp"
#include "effres/exact.hpp"
#include "effres/random_walk.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_pool.hpp"

namespace er {
namespace {

TEST(RandomWalk, TwoNodeGraphIsExactInExpectation) {
  // Single unit edge: every walk takes exactly 1 step each way, so the
  // estimate is exact with zero variance: C = 2, W = 1, R = 1.
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  RandomWalkOptions opts;
  opts.walks = 10;
  const RandomWalkEffRes engine(g, opts);
  EXPECT_DOUBLE_EQ(engine.resistance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(engine.resistance(0, 0), 0.0);
}

TEST(RandomWalk, ConvergesOnSmallUnweightedGraphs) {
  const Graph g = grid_2d(4, 4, WeightKind::kUnit, 1);
  const ExactEffRes exact(g);
  RandomWalkOptions opts;
  opts.walks = 4000;
  opts.seed = 2;
  const RandomWalkEffRes walk(g, opts);
  for (const auto& [p, q] :
       std::vector<std::pair<index_t, index_t>>{{0, 1}, {0, 15}, {5, 10}}) {
    const real_t re = exact.resistance(p, q);
    EXPECT_NEAR(walk.resistance(p, q), re, 0.12 * re + 0.02);
  }
}

TEST(RandomWalk, HighVarianceOnWeightedGraphs) {
  // The paper's stated reason for excluding [2][3]: weighted graphs.
  // Document the limitation as a (loose) accuracy check — the estimator is
  // still unbiased, just noisy; we only require the right order of
  // magnitude at a modest sample count.
  const Graph g = grid_2d(4, 4, WeightKind::kLogUniform, 3);
  const ExactEffRes exact(g);
  RandomWalkOptions opts;
  opts.walks = 1500;
  opts.seed = 4;
  const RandomWalkEffRes walk(g, opts);
  const real_t re = exact.resistance(0, 15);
  const real_t rw = walk.resistance(0, 15);
  EXPECT_GT(rw, 0.3 * re);
  EXPECT_LT(rw, 3.0 * re);
}

TEST(RandomWalk, BatchesAreThreadCountIndependentAndCallsStateless) {
  // Thread-safety contract parity with the other engines: per-query
  // mix_seed(seed, query_index) streams mean a batch chunks across a pool
  // bit-identically at any thread count, repeated single queries return
  // the same sample (no shared RNG state advances), and the single-query
  // path is exactly batch slot 0's stream.
  const Graph g = grid_2d(5, 5, WeightKind::kUnit, 8);
  RandomWalkOptions opts;
  opts.walks = 60;
  opts.seed = 9;
  const RandomWalkEffRes walk(g, opts);

  std::vector<ResistanceQuery> queries = all_edge_queries(g);
  queries.push_back(queries.front());  // duplicate pair: independent stream
  const auto serial = walk.resistances(queries);
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const auto par = walk.resistances(queries, &pool);
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      ASSERT_EQ(serial[i], par[i]) << "query " << i;
  }

  EXPECT_EQ(walk.resistance(queries[0].first, queries[0].second), serial[0]);
  EXPECT_EQ(walk.resistance(0, 1), walk.resistance(0, 1));
  // The duplicated pair drew from a different stream than slot 0 (almost
  // surely a different sample at this walk count — equality would mean the
  // streams are not independent).
  EXPECT_NE(serial.back(), serial.front());
}

TEST(RandomWalk, ValidatesInput) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW(RandomWalkEffRes(g, {}), std::invalid_argument);

  Graph c(2);
  c.add_edge(0, 1);
  RandomWalkOptions zero;
  zero.walks = 0;
  EXPECT_THROW(RandomWalkEffRes(c, zero), std::invalid_argument);
  const RandomWalkEffRes ok(c, {});
  EXPECT_THROW((void)ok.resistance(0, 5), std::out_of_range);
}

TEST(CommuteTime, MatchesDefinitionOnPath) {
  // Path 0-1-2 unit weights: R(0,2)=2, W=2 -> C = 2*2*2 = 8.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const ExactEffRes engine(g);
  EXPECT_NEAR(commute_time(g, engine, 0, 2), 8.0, 1e-10);
}

TEST(CommuteTime, SymmetricAndScalesWithWeight) {
  const Graph g = barabasi_albert(60, 2, WeightKind::kUniform, 5);
  const ExactEffRes engine(g);
  EXPECT_NEAR(commute_time(g, engine, 3, 40),
              commute_time(g, engine, 40, 3), 1e-10);
}

TEST(KirchhoffIndex, PositiveAndBoundedByWireResistances) {
  const Graph g = grid_2d(6, 6, WeightKind::kUniform, 6);
  const ExactEffRes engine(g);
  const real_t k = edge_kirchhoff_index(g, engine);
  EXPECT_GT(k, 0.0);
  real_t wire_sum = 0.0;
  for (const auto& e : g.edges()) wire_sum += 1.0 / e.weight;
  EXPECT_LE(k, wire_sum);  // each R(e) <= 1/w_e
}

}  // namespace
}  // namespace er
