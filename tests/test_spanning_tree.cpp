// Tests for Wilson's uniform spanning tree sampler and the matrix-tree
// counter, including the Monte-Carlo cross-validation of effective
// resistances: Pr[e in UST] = w_e * R(e).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "effres/exact.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"

namespace er {
namespace {

/// Verify a set of edge ids forms a spanning tree of g.
bool is_spanning_tree(const Graph& g, const std::vector<index_t>& edges) {
  if (edges.size() != static_cast<std::size_t>(g.num_nodes()) - 1) return false;
  Graph t(g.num_nodes());
  std::set<index_t> seen;
  for (index_t e : edges) {
    if (!seen.insert(e).second) return false;  // duplicate edge
    const Edge& ed = g.edges()[static_cast<std::size_t>(e)];
    t.add_edge(ed.u, ed.v, 1.0);
  }
  return is_connected(t);
}

TEST(Wilson, ProducesSpanningTrees) {
  const Graph g = erdos_renyi(40, 100, WeightKind::kUniform, 1);
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial)
    EXPECT_TRUE(is_spanning_tree(g, sample_uniform_spanning_tree(g, rng)));
}

TEST(Wilson, TreeOfTreeIsItself) {
  // On a tree, the only spanning tree is the graph itself.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(3, 4);
  g.add_edge(3, 5);
  Rng rng(3);
  const auto t = sample_uniform_spanning_tree(g, rng);
  std::set<index_t> ids(t.begin(), t.end());
  EXPECT_EQ(ids.size(), 5u);
}

TEST(Wilson, ThrowsOnDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  Rng rng(4);
  EXPECT_THROW(sample_uniform_spanning_tree(g, rng), std::invalid_argument);
}

TEST(MatrixTree, CountsKnownGraphs) {
  // Cycle C_n has n spanning trees; K_4 has 16 (Cayley: n^{n-2}).
  Graph c5(5);
  for (index_t i = 0; i < 5; ++i) c5.add_edge(i, (i + 1) % 5);
  EXPECT_NEAR(count_spanning_trees(c5), 5.0, 1e-9);

  Graph k4(4);
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = i + 1; j < 4; ++j) k4.add_edge(i, j);
  EXPECT_NEAR(count_spanning_trees(k4), 16.0, 1e-8);
}

TEST(MatrixTree, WeightedVersion) {
  // Two parallel paths 0-1 with weights a and b: trees = {a}, {b};
  // weighted count = a + b.
  Graph g(2);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 1, 3.0);
  EXPECT_NEAR(count_spanning_trees(g), 5.0, 1e-10);
}

TEST(Wilson, FrequenciesMatchEffectiveResistances) {
  // The core cross-validation: UST edge frequencies converge to
  // w_e * R(e). This checks ER values through a completely independent
  // stochastic process (no shared linear algebra).
  const Graph g = erdos_renyi(25, 60, WeightKind::kUniform, 5);
  const ExactEffRes engine(g);
  const std::size_t samples = 20000;
  const auto freq = estimate_spanning_edge_probabilities(g, samples, 6);
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edges()[e];
    const real_t expect = ed.weight * engine.resistance(ed.u, ed.v);
    // Monte-Carlo tolerance ~ 4 standard errors.
    const real_t sigma = std::sqrt(
        std::max<real_t>(expect * (1 - expect), real_t{0}) /
        static_cast<real_t>(samples));
    EXPECT_NEAR(freq[e], expect, 4 * sigma + 5e-3) << "edge " << e;
  }
}

TEST(Wilson, FrequenciesSumToNMinusOne) {
  const Graph g = watts_strogatz(50, 3, 0.2, WeightKind::kUnit, 7);
  const auto freq = estimate_spanning_edge_probabilities(g, 500, 8);
  const real_t total = std::accumulate(freq.begin(), freq.end(), real_t{0});
  EXPECT_NEAR(total, 49.0, 1e-9);  // every tree has exactly n-1 edges
}

TEST(Wilson, WeightBiasVisible) {
  // Triangle with one heavy edge: the heavy edge appears in more trees.
  Graph g(3);
  g.add_edge(0, 1, 10.0);  // heavy
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  const auto freq = estimate_spanning_edge_probabilities(g, 30000, 9);
  // Trees: {01,12}, {01,20}, {12,20} with weights 10, 10, 1 -> total 21.
  EXPECT_NEAR(freq[0], 20.0 / 21.0, 0.02);
  EXPECT_NEAR(freq[1], 11.0 / 21.0, 0.02);
  EXPECT_NEAR(freq[2], 11.0 / 21.0, 0.02);
}

}  // namespace
}  // namespace er
