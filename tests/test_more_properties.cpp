// Additional cross-cutting property and edge-case tests: closed forms on
// special graphs, degenerate inputs, determinism, and behavioural corners
// not covered by the per-module suites.
#include <gtest/gtest.h>

#include <cmath>

#include "chol/cholesky.hpp"
#include "chol/ichol.hpp"
#include "effres/approx_chol.hpp"
#include "effres/exact.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "pg/analysis.hpp"
#include "pg/generator.hpp"
#include "reduction/schur.hpp"
#include "reduction/sparsify.hpp"
#include "util/rng.hpp"

namespace er {
namespace {

// ----------------------------------------------------------- closed forms

TEST(ClosedForms, StarGraphLeafToLeaf) {
  // Unit star with hub 0: R(leaf, leaf') = 2, R(hub, leaf) = 1.
  const index_t n = 8;
  Graph g(n);
  for (index_t i = 1; i < n; ++i) g.add_edge(0, i, 1.0);
  const ExactEffRes engine(g);
  EXPECT_NEAR(engine.resistance(0, 3), 1.0, 1e-12);
  EXPECT_NEAR(engine.resistance(2, 5), 2.0, 1e-12);
}

TEST(ClosedForms, WheatstoneBridgeBalanced) {
  // Balanced Wheatstone bridge: the cross edge carries no current, so the
  // resistance is independent of its weight.
  auto bridge = [](real_t cross) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 3, 1.0);
    g.add_edge(0, 2, 1.0);
    g.add_edge(2, 3, 1.0);
    g.add_edge(1, 2, cross);
    const ExactEffRes e(g);
    return e.resistance(0, 3);
  };
  EXPECT_NEAR(bridge(0.001), bridge(1000.0), 1e-9);
  EXPECT_NEAR(bridge(1.0), 1.0, 1e-10);  // two parallel 2-ohm paths
}

TEST(ClosedForms, LadderNetworkSeriesParallel) {
  // 2-rung ladder: manual series/parallel calculation.
  //   0 -1- 1
  //   |     |
  //   2 -1- 3     all unit weights, plus rails 0-2, 1-3.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 3, 1.0);
  const ExactEffRes e(g);
  // R(0,1): edge 1 ohm in parallel with path 0-2-3-1 (3 ohm) = 0.75.
  EXPECT_NEAR(e.resistance(0, 1), 0.75, 1e-12);
}

TEST(ClosedForms, Alg3OnWeightedPath) {
  Graph g(6);
  const real_t w[5] = {2.0, 0.5, 4.0, 1.0, 0.25};
  for (index_t i = 0; i < 5; ++i) g.add_edge(i, i + 1, w[i]);
  ApproxCholOptions opts;
  opts.complete_factorization = true;  // trees have no fill: exact
  opts.epsilon = 0.0;
  const ApproxCholEffRes engine(g, opts);
  real_t expect = 0.0;
  for (index_t k = 0; k < 5; ++k) {
    expect += 1.0 / w[k];
    EXPECT_NEAR(engine.resistance(0, k + 1), expect, 1e-12);
  }
}

// --------------------------------------------------------- degenerate in

TEST(Degenerate, SingleEdgeGraphEverywhere) {
  Graph g(2);
  g.add_edge(0, 1, 4.0);
  const ExactEffRes exact(g);
  const ApproxCholEffRes approx(g, {});
  EXPECT_NEAR(exact.resistance(0, 1), 0.25, 1e-12);
  EXPECT_NEAR(approx.resistance(0, 1), 0.25, 1e-9);
}

TEST(Degenerate, CholeskyOnOneByOne) {
  TripletMatrix t(1, 1);
  t.add(0, 0, 9.0);
  const CscMatrix a = CscMatrix::from_triplets(t);
  const CholFactor f = cholesky(a, Ordering::kNatural);
  EXPECT_DOUBLE_EQ(f.diag(0), 3.0);
  const auto x = f.solve({18.0});
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(Degenerate, IcholOnDiagonalMatrix) {
  TripletMatrix t(4, 4);
  for (index_t i = 0; i < 4; ++i) t.add(i, i, static_cast<real_t>(i + 1));
  const CholFactor f =
      ichol(CscMatrix::from_triplets(t), Ordering::kNatural, {});
  for (index_t i = 0; i < 4; ++i)
    EXPECT_NEAR(f.diag(i), std::sqrt(static_cast<real_t>(i + 1)), 1e-14);
}

TEST(Degenerate, SparsifyGraphWithNoEdges) {
  const Graph g(5);
  const Graph s = sparsify_by_effective_resistance(g, {}, {});
  EXPECT_EQ(s.num_nodes(), 5);
  EXPECT_EQ(s.num_edges(), 0u);
}

TEST(Degenerate, SchurKeepSingleNode) {
  const CscMatrix a = grounded_laplacian(grid_2d(3, 3));
  std::vector<index_t> keep{4}, elim;
  for (index_t v = 0; v < 9; ++v)
    if (v != 4) elim.push_back(v);
  const SchurResult s = schur_complement(a, keep, elim);
  EXPECT_EQ(s.matrix.rows(), 1);
  EXPECT_GT(s.matrix.at(0, 0), 0.0);
}

TEST(Degenerate, GeneratorRejectsBadArgs) {
  EXPECT_THROW(grid_2d(0, 5), std::invalid_argument);
  EXPECT_THROW(grid_3d(2, 0, 2), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(3, 5), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(4, 2, 0.1), std::invalid_argument);
  EXPECT_THROW(ibmpg_like_preset(9, 1.0), std::invalid_argument);
  PgGeneratorOptions bad;
  bad.nx = 1;
  EXPECT_THROW(generate_power_grid(bad), std::invalid_argument);
}

// ----------------------------------------------------------- determinism

TEST(Determinism, IcholIsDeterministic) {
  const CscMatrix a =
      grounded_laplacian(multilayer_mesh(12, 12, 2, WeightKind::kLogUniform, 1));
  const CholFactor f1 = ichol(a, Ordering::kMinDeg, {});
  const CholFactor f2 = ichol(a, Ordering::kMinDeg, {});
  ASSERT_EQ(f1.nnz(), f2.nnz());
  for (std::size_t k = 0; k < f1.values.size(); ++k)
    EXPECT_DOUBLE_EQ(f1.values[k], f2.values[k]);
}

TEST(Determinism, MinDegIsDeterministic) {
  const CscMatrix a = grounded_laplacian(erdos_renyi(200, 600, WeightKind::kUnit, 2));
  EXPECT_EQ(mindeg_order(a), mindeg_order(a));
}

// -------------------------------------------------------------- pg extras

TEST(PgExtras, NoLoadsMeansNoDrops) {
  PgGeneratorOptions o;
  o.nx = 8;
  o.ny = 8;
  o.layers = 2;
  o.load_density = 0.0;  // generator clamps to >= 1 load; remove after
  PowerGrid pg = generate_power_grid(o);
  pg.loads.clear();
  const DcSolution sol = solve_dc(pg.to_network(), pg.load_vector(0.0));
  for (real_t d : sol.drops) EXPECT_NEAR(d, 0.0, 1e-12);
}

TEST(PgExtras, DropScalesLinearlyWithLoad) {
  PgGeneratorOptions o;
  o.nx = 10;
  o.ny = 10;
  o.layers = 2;
  o.seed = 3;
  PowerGrid pg = generate_power_grid(o);
  const ConductanceNetwork net = pg.to_network();
  const DcSolution s1 = solve_dc(net, pg.load_vector(0.0));
  auto j2 = pg.load_vector(0.0);
  for (real_t& v : j2) v *= 3.0;
  const DcSolution s3 = solve_dc(net, j2);
  for (std::size_t i = 0; i < s1.drops.size(); ++i)
    EXPECT_NEAR(s3.drops[i], 3.0 * s1.drops[i], 1e-10);
}

TEST(PgExtras, TransientWithZeroCapsEqualsPerStepDc) {
  PgGeneratorOptions o;
  o.nx = 8;
  o.ny = 8;
  o.layers = 2;
  o.seed = 4;
  PowerGrid pg = generate_power_grid(o);
  for (auto& l : pg.loads) l.pulse = 0.0;  // constant loads
  const ConductanceNetwork net = pg.to_network();
  const std::vector<real_t> zero_caps(
      static_cast<std::size_t>(pg.num_nodes), 0.0);
  TransientOptions topts;
  topts.step = 1e-10;
  topts.steps = 3;
  const index_t probe = pg.loads.front().node;
  const TransientResult res =
      run_transient(net, zero_caps, pg.loads, topts, {probe});
  const DcSolution dc = solve_dc(net, pg.load_vector(0.0));
  for (real_t v : res.series[0])
    EXPECT_NEAR(v, dc.drops[static_cast<std::size_t>(probe)], 1e-10);
}

TEST(PgExtras, PortCountMatchesPadsPlusLoads) {
  PgGeneratorOptions o;
  o.nx = 12;
  o.ny = 12;
  o.layers = 2;
  o.seed = 5;
  const PowerGrid pg = generate_power_grid(o);
  std::size_t distinct = pg.port_nodes().size();
  EXPECT_LE(distinct, pg.pads.size() + pg.loads.size());
  EXPECT_GT(distinct, 0u);
}

// -------------------------------------------------------- ER engine misc

TEST(EngineMisc, NamesAreStable) {
  const Graph g = grid_2d(3, 3);
  EXPECT_EQ(ExactEffRes(g).name(), "exact");
  EXPECT_EQ(ApproxCholEffRes(g, {}).name(), "approx-chol");
}

TEST(EngineMisc, DisconnectedComponentsStillAnswerWithinComponent) {
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 2.0);
  g.add_edge(4, 5, 2.0);
  const ExactEffRes engine(g);  // grounding adds one bump per component
  EXPECT_NEAR(engine.resistance(0, 2), 2.0, 1e-10);
  EXPECT_NEAR(engine.resistance(3, 5), 1.0, 1e-10);
}

TEST(EngineMisc, ResistanceScalesInverselyWithWeights) {
  // Scaling all weights by c scales all resistances by 1/c.
  Graph a = grid_2d(6, 6, WeightKind::kUniform, 7);
  Graph b(a.num_nodes());
  for (const auto& e : a.edges()) b.add_edge(e.u, e.v, 5.0 * e.weight);
  const ExactEffRes ea(a), eb(b);
  Rng rng(8);
  for (int t = 0; t < 20; ++t) {
    const index_t p = rng.uniform_int(36);
    index_t q = rng.uniform_int(36);
    if (p == q) q = (q + 1) % 36;
    EXPECT_NEAR(eb.resistance(p, q), ea.resistance(p, q) / 5.0, 1e-10);
  }
}

}  // namespace
}  // namespace er
