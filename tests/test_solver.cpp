// Tests for solver: CG/PCG convergence, preconditioner correctness,
// iteration-count ordering (IC < Jacobi < identity on hard problems).
#include <gtest/gtest.h>

#include "chol/ichol.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "solver/pcg.hpp"
#include "sparse/dense.hpp"
#include "util/rng.hpp"

namespace er {
namespace {

struct Problem {
  CscMatrix a;
  std::vector<real_t> b;
  std::vector<real_t> x_true;
};

Problem make_problem(const Graph& g, std::uint64_t seed) {
  Problem p{grounded_laplacian(g), {}, {}};
  Rng rng(seed);
  p.x_true.assign(static_cast<std::size_t>(p.a.cols()), 0.0);
  for (auto& v : p.x_true) v = rng.uniform(-1, 1);
  p.b = p.a.multiply(p.x_true);
  return p;
}

TEST(Pcg, PlainCgSolvesSmallSystem) {
  const Problem p = make_problem(grid_2d(10, 10, WeightKind::kUnit, 1), 2);
  const PcgResult r = pcg_solve(p.a, p.b, identity_preconditioner());
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < p.x_true.size(); ++i)
    EXPECT_NEAR(r.x[i], p.x_true[i], 1e-6);
}

TEST(Pcg, JacobiHandlesBadlyScaledWeights) {
  const Problem p =
      make_problem(grid_2d(12, 12, WeightKind::kLogUniform, 3), 4);
  const PcgResult r = pcg_solve(p.a, p.b, jacobi_preconditioner(p.a));
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < p.x_true.size(); ++i)
    EXPECT_NEAR(r.x[i], p.x_true[i], 1e-6);
}

TEST(Pcg, IcholPreconditionerConverges) {
  const Problem p =
      make_problem(barabasi_albert(300, 3, WeightKind::kUniform, 5), 6);
  IcholOptions opts;
  opts.droptol = 1e-2;
  const CholFactor f = ichol(p.a, Ordering::kMinDeg, opts);
  const PcgResult r = pcg_solve(p.a, p.b, ichol_preconditioner(f));
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < p.x_true.size(); ++i)
    EXPECT_NEAR(r.x[i], p.x_true[i], 1e-6);
}

TEST(Pcg, IcholBeatsJacobiBeatsIdentityInIterations) {
  const Problem p =
      make_problem(grid_2d(30, 30, WeightKind::kLogUniform, 7), 8);
  PcgOptions opts;
  opts.max_iterations = 5000;

  const PcgResult plain = pcg_solve(p.a, p.b, identity_preconditioner(), opts);
  const PcgResult jac = pcg_solve(p.a, p.b, jacobi_preconditioner(p.a), opts);
  IcholOptions ic;
  ic.droptol = 1e-3;
  const CholFactor f = ichol(p.a, Ordering::kMinDeg, ic);
  const PcgResult icg = pcg_solve(p.a, p.b, ichol_preconditioner(f), opts);

  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(jac.converged);
  ASSERT_TRUE(icg.converged);
  EXPECT_LE(icg.iterations, jac.iterations);
  EXPECT_LE(jac.iterations, plain.iterations + 5);
}

TEST(Pcg, ZeroRhsGivesZeroSolution) {
  const Problem p = make_problem(grid_2d(5, 5, WeightKind::kUnit, 9), 10);
  const std::vector<real_t> zero(p.b.size(), 0.0);
  const PcgResult r = pcg_solve(p.a, zero, identity_preconditioner());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  for (real_t v : r.x) EXPECT_EQ(v, 0.0);
}

TEST(Pcg, ReportsNonConvergenceWhenStarved) {
  const Problem p =
      make_problem(grid_2d(40, 40, WeightKind::kLogUniform, 11), 12);
  PcgOptions opts;
  opts.max_iterations = 2;
  opts.rel_tolerance = 1e-14;
  const PcgResult r = pcg_solve(p.a, p.b, identity_preconditioner(), opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 2);
  EXPECT_GT(r.relative_residual, 0.0);
}

TEST(Pcg, SizeMismatchThrows) {
  const Problem p = make_problem(grid_2d(4, 4, WeightKind::kUnit, 13), 14);
  std::vector<real_t> bad(3, 1.0);
  EXPECT_THROW(pcg_solve(p.a, bad, identity_preconditioner()),
               std::invalid_argument);
}

TEST(Pcg, JacobiRejectsNonPositiveDiagonal) {
  TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, 0.0);
  const CscMatrix a = CscMatrix::from_triplets(t);
  EXPECT_THROW(jacobi_preconditioner(a), std::invalid_argument);
}

class PcgGraphSweep : public ::testing::TestWithParam<int> {};

TEST_P(PcgGraphSweep, ConvergesOnAllFamilies) {
  const int which = GetParam();
  Graph g = which == 0   ? grid_2d(15, 15, WeightKind::kUniform, 20)
            : which == 1 ? grid_3d(6, 6, 6, WeightKind::kUniform, 21)
            : which == 2 ? barabasi_albert(250, 3, WeightKind::kUniform, 22)
            : which == 3 ? random_geometric(250, 0.12, WeightKind::kUnit, 23)
                         : multilayer_mesh(12, 12, 3, WeightKind::kLogUniform, 24);
  const Problem p = make_problem(g, 25);
  IcholOptions ic;
  ic.droptol = 1e-3;
  const CholFactor f = ichol(p.a, Ordering::kMinDeg, ic);
  const PcgResult r = pcg_solve(p.a, p.b, ichol_preconditioner(f));
  ASSERT_TRUE(r.converged) << "family " << which;
  for (std::size_t i = 0; i < p.x_true.size(); ++i)
    EXPECT_NEAR(r.x[i], p.x_true[i], 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Families, PcgGraphSweep, ::testing::Range(0, 5));

}  // namespace
}  // namespace er
