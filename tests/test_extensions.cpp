// Tests for the extension modules: approximate-inverse preconditioning,
// profile/statistics helpers, spanning-edge centrality utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "approxinv/preconditioner.hpp"
#include "approxinv/stats.hpp"
#include "chol/cholesky.hpp"
#include "chol/ichol.hpp"
#include "effres/centrality.hpp"
#include "effres/exact.hpp"
#include "effres/approx_chol.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "solver/pcg.hpp"
#include "util/rng.hpp"

namespace er {
namespace {

TEST(ApproxInvPreconditioner, ExactInverseWhenNoTruncation) {
  // With a complete factor and eps = 0, Z^T Z == A^{-1} exactly.
  const Graph g = grid_2d(7, 7, WeightKind::kUniform, 3);
  const CscMatrix a = grounded_laplacian(g);
  const CholFactor f = cholesky(a, Ordering::kMinDeg);
  ApproxInverseOptions zopts;
  zopts.epsilon = 0.0;
  const ApproxInverse z = ApproxInverse::build(f, zopts);
  const ApproxInversePreconditioner m(z);

  Rng rng(4);
  std::vector<real_t> x_true(static_cast<std::size_t>(a.cols()));
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  const auto b = a.multiply(x_true);
  std::vector<real_t> x;
  m.apply(b, x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(ApproxInvPreconditioner, AcceleratesPcg) {
  const Graph g = grid_2d(40, 40, WeightKind::kLogUniform, 5);
  const CscMatrix a = grounded_laplacian(g);
  IcholOptions ic;
  const CholFactor f = ichol(a, Ordering::kMinDeg, ic);
  const ApproxInverse z = ApproxInverse::build(f, {1e-3});
  const ApproxInversePreconditioner m(z);

  Rng rng(6);
  std::vector<real_t> b(static_cast<std::size_t>(a.cols()));
  for (auto& v : b) v = rng.uniform(-1, 1);

  PcgOptions opts;
  opts.max_iterations = 3000;
  const PcgResult plain = pcg_solve(a, b, identity_preconditioner(), opts);
  const PcgResult zprec = pcg_solve(
      a, b,
      [&m](const std::vector<real_t>& r, std::vector<real_t>& out) {
        m.apply(r, out);
      },
      opts);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(zprec.converged);
  EXPECT_LT(zprec.iterations, plain.iterations / 3);
}

TEST(ApproxInvPreconditioner, SizeMismatchThrows) {
  const Graph g = grid_2d(4, 4, WeightKind::kUnit, 7);
  const CholFactor f = cholesky(grounded_laplacian(g), Ordering::kMinDeg);
  const ApproxInverse z = ApproxInverse::build(f);
  const ApproxInversePreconditioner m(z);
  std::vector<real_t> bad(3, 1.0), out;
  EXPECT_THROW(m.apply(bad, out), std::invalid_argument);
}

TEST(Profiles, ApproxInverseProfileConsistent) {
  const Graph g = barabasi_albert(500, 3, WeightKind::kUnit, 8);
  const CholFactor f = ichol(grounded_laplacian(g), Ordering::kMinDeg, {});
  const ApproxInverse z = ApproxInverse::build(f);
  const ApproxInverseProfile p = profile_approx_inverse(z);
  EXPECT_EQ(p.total_nnz, z.nnz());
  EXPECT_GT(p.mean_column_nnz, 0.0);
  EXPECT_GE(p.max_column_nnz, 1);
  offset_t hist_total = 0;
  for (offset_t c : p.column_size_histogram) hist_total += c;
  EXPECT_EQ(hist_total, static_cast<offset_t>(g.num_nodes()));
  EXPECT_NEAR(p.mean_column_nnz,
              static_cast<double>(p.total_nnz) / g.num_nodes(), 1e-12);
}

TEST(Profiles, DepthProfileConsistent) {
  const Graph g = grid_2d(15, 15, WeightKind::kUniform, 9);
  const CholFactor f = cholesky(grounded_laplacian(g), Ordering::kMinDeg);
  const DepthProfile p = profile_depths(f);
  EXPECT_GT(p.max_depth, 0);
  EXPECT_GT(p.mean_depth, 0.0);
  EXPECT_LE(p.mean_depth, static_cast<double>(p.max_depth));
  offset_t total = 0;
  for (offset_t c : p.histogram) total += c;
  EXPECT_EQ(total, static_cast<offset_t>(g.num_nodes()));
}

TEST(Centrality, BridgeHasFullCentrality) {
  // Two triangles joined by a single bridge: the bridge is in every
  // spanning tree => centrality exactly 1.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  g.add_edge(2, 3);  // bridge
  const ExactEffRes engine(g);
  const auto c = spanning_edge_centralities(g, engine);
  EXPECT_NEAR(c[6], 1.0, 1e-10);
  // Triangle edges each appear in 2 of 3 tree choices per triangle.
  for (int e = 0; e < 6; ++e) EXPECT_NEAR(c[static_cast<std::size_t>(e)], 2.0 / 3.0, 1e-10);
}

TEST(Centrality, TopKOrdering) {
  const std::vector<real_t> c{0.1, 0.9, 0.5, 0.7};
  const auto top = top_k_central_edges(c, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1);
  EXPECT_EQ(top[1], 3);
  EXPECT_EQ(top_k_central_edges(c, 10).size(), 4u);
}

TEST(Centrality, FosterSumMatchesTheory) {
  const Graph g = watts_strogatz(120, 3, 0.2, WeightKind::kUniform, 10);
  const ExactEffRes engine(g);
  EXPECT_NEAR(foster_sum(g, engine), 119.0, 1e-7);
}

TEST(Centrality, Alg3ApproximatesExactCentralities) {
  const Graph g = grid_2d(15, 15, WeightKind::kUniform, 11);
  const ExactEffRes exact(g);
  const ApproxCholEffRes approx(g, {});
  const auto ce = spanning_edge_centralities(g, exact);
  const auto ca = spanning_edge_centralities(g, approx);
  double worst = 0.0;
  for (std::size_t e = 0; e < ce.size(); ++e)
    worst = std::max(worst, std::abs(ca[e] - ce[e]) / ce[e]);
  EXPECT_LT(worst, 0.05);
}

}  // namespace
}  // namespace er
