// Cross-module integration tests and global mathematical invariants:
// Foster's theorem, ICT row-sum preservation under compensation,
// end-to-end Table-I-style and Table-II-style mini-flows, netlist file
// round trip through the filesystem.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "chol/cholesky.hpp"
#include "chol/ichol.hpp"
#include "effres/approx_chol.hpp"
#include "effres/error_metrics.hpp"
#include "effres/exact.hpp"
#include "effres/random_projection.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "pg/analysis.hpp"
#include "pg/generator.hpp"
#include "pg/incremental.hpp"
#include "pg/netlist.hpp"
#include "sparse/dense.hpp"
#include "util/stats.hpp"

namespace er {
namespace {

// ---------------------------------------------------------------- Foster --

TEST(Foster, SumOfEdgeLeverageEqualsNMinusOne) {
  // Foster's theorem: sum over edges of w_e * R(e) = n - #components.
  const Graph g = random_geometric(300, 0.12, WeightKind::kUnit, 3);
  const ExactEffRes engine(g);
  real_t acc = 0.0;
  for (const auto& e : g.edges())
    acc += e.weight * engine.resistance(e.u, e.v);
  EXPECT_NEAR(acc, static_cast<real_t>(g.num_nodes() - 1), 1e-6);
}

TEST(Foster, HoldsOnWeightedGraphs) {
  const Graph g = barabasi_albert(150, 3, WeightKind::kLogUniform, 5);
  const ExactEffRes engine(g);
  real_t acc = 0.0;
  for (const auto& e : g.edges())
    acc += e.weight * engine.resistance(e.u, e.v);
  EXPECT_NEAR(acc, static_cast<real_t>(g.num_nodes() - 1), 1e-6);
}

TEST(Foster, ApproxCholTracksTheInvariant) {
  // Alg. 3 at paper settings keeps Foster's sum within ~ a few percent —
  // a global accuracy check across every edge simultaneously.
  const Graph g = grid_2d(25, 25, WeightKind::kUniform, 7);
  const ApproxCholEffRes engine(g, {});
  real_t acc = 0.0;
  for (const auto& e : g.edges())
    acc += e.weight * engine.resistance(e.u, e.v);
  const auto expect = static_cast<real_t>(g.num_nodes() - 1);
  EXPECT_NEAR(acc, expect, 0.05 * expect);
}

// ------------------------------------------------- ICT compensation ------

TEST(IctCompensation, PreservesRowSums) {
  // With diagonal compensation, L L^T is the system matrix of a subgraph
  // with the same shunts: row sums (= shunt pattern) must match A's.
  const Graph g = grid_2d(14, 14, WeightKind::kLogUniform, 9);
  const CscMatrix a = grounded_laplacian(g);
  IcholOptions opts;
  opts.droptol = 1e-2;  // aggressive dropping to exercise compensation
  const CholFactor f = ichol(a, Ordering::kMinDeg, opts);

  // Row sums of L L^T via y = L (L^T 1).
  const index_t n = a.cols();
  std::vector<real_t> ones(static_cast<std::size_t>(n), 1.0);
  const CscMatrix l = f.to_csc();
  std::vector<real_t> lt1;
  l.multiply_transpose(ones, lt1);
  const auto llt1 = l.multiply(lt1);

  const auto a1 = a.permute_symmetric(f.perm).multiply(ones);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(llt1[static_cast<std::size_t>(i)],
                a1[static_cast<std::size_t>(i)], 1e-9)
        << "row " << i;
}

TEST(IctCompensation, WithoutItRowSumsGrow) {
  // Sanity for the ablation claim: uncompensated ICT inflates row sums
  // (spurious ground leakage).
  const Graph g = grid_2d(14, 14, WeightKind::kLogUniform, 9);
  const CscMatrix a = grounded_laplacian(g);
  IcholOptions opts;
  opts.droptol = 1e-2;
  opts.diagonal_compensation = false;
  const CholFactor f = ichol(a, Ordering::kMinDeg, opts);

  const index_t n = a.cols();
  std::vector<real_t> ones(static_cast<std::size_t>(n), 1.0);
  const CscMatrix l = f.to_csc();
  std::vector<real_t> lt1;
  l.multiply_transpose(ones, lt1);
  const auto llt1 = l.multiply(lt1);
  const auto a1 = a.permute_symmetric(f.perm).multiply(ones);

  real_t total_excess = 0.0;
  for (index_t i = 0; i < n; ++i)
    total_excess += llt1[static_cast<std::size_t>(i)] -
                    a1[static_cast<std::size_t>(i)];
  EXPECT_GT(total_excess, 1e-3);
}

TEST(IctCompensation, LongRangeAccuracyBenefits) {
  // The compensated factor must be substantially more accurate for far
  // pairs than the uncompensated one (the failure mode it exists for).
  const Graph g = grid_2d(30, 30, WeightKind::kUniform, 11);
  const ExactEffRes exact(g);

  auto worst_far_error = [&](bool compensated) {
    ApproxCholOptions opts;  // droptol 1e-3
    // Route through the engine by building a custom factor path: the engine
    // always compensates, so do the comparison at the ichol level.
    IcholOptions ic;
    ic.droptol = 1e-3;
    ic.diagonal_compensation = compensated;
    const CscMatrix lg = grounded_laplacian(g);
    const CholFactor f = ichol(lg, Ordering::kMinDeg, ic);
    const ApproxInverse z = ApproxInverse::build(f, {1e-3});
    real_t worst = 0.0;
    for (index_t k = 0; k < 10; ++k) {
      const index_t p = k * 7 % g.num_nodes();
      const index_t q = g.num_nodes() - 1 - (k * 13 % 100);
      if (p == q) continue;
      const index_t pp = f.inv_perm[static_cast<std::size_t>(p)];
      const index_t qq = f.inv_perm[static_cast<std::size_t>(q)];
      const real_t approx = z.column_distance_squared(pp, qq);
      worst = std::max(worst, relative_error(approx, exact.resistance(p, q)));
    }
    return worst;
  };

  EXPECT_LT(worst_far_error(true), worst_far_error(false));
}

// --------------------------------------------------- Table-I mini flow ---

TEST(Integration, TableOneMiniFlow) {
  // The full Table-I comparison on one small graph: Alg. 3 must beat the
  // baseline on accuracy at these settings, and both must be sane.
  const Graph g = multilayer_mesh(30, 30, 3, WeightKind::kLogUniform, 13);
  const ExactEffRes exact(g);

  const ApproxCholEffRes alg3(g, {});
  RandomProjectionOptions rp_opts;
  rp_opts.auto_scale = 12.0;
  const RandomProjectionEffRes rp(g, rp_opts);

  const ErrorReport e3 = measure_edge_errors(g, alg3, exact, 400);
  const ErrorReport erp = measure_edge_errors(g, rp, exact, 400);

  EXPECT_LT(e3.average_relative, 0.01);
  EXPECT_LT(e3.average_relative, erp.average_relative);
  EXPECT_GT(alg3.stats().max_depth, 0);
  EXPECT_GT(alg3.stats().nnz_ratio(g.num_nodes()), 0.0);
  EXPECT_GT(rp.stats().nnz_ratio(g.num_nodes()),
            alg3.stats().nnz_ratio(g.num_nodes()));
}

// -------------------------------------------------- Table-II mini flow ---

TEST(Integration, TableTwoMiniFlow) {
  PgGeneratorOptions gopts;
  gopts.nx = 24;
  gopts.ny = 24;
  gopts.layers = 2;
  gopts.seed = 15;
  const PowerGrid pg = generate_power_grid(gopts);
  const ConductanceNetwork net = pg.to_network();
  const auto j = pg.load_vector(0.0);
  const DcSolution full = solve_dc(net, j);

  for (ErBackend backend : {ErBackend::kExact, ErBackend::kApproxChol}) {
    ReductionOptions ropts;
    ropts.backend = backend;
    ropts.num_blocks = 4;
    ropts.sparsify_quality = 5.0;
    ropts.merge_threshold = 0.02;
    const ReducedModel m = reduce_network(net, pg.port_mask(), ropts);
    EXPECT_LT(m.stats.reduced_nodes, pg.num_nodes);
    const DcSolution red = solve_dc(m.network, map_injections(m, j));
    const SolutionError err = compare_dc(full.drops, red, m, pg.port_nodes());
    EXPECT_LT(err.rel, 0.06) << to_string(backend);
  }
}

TEST(Integration, IncrementalFlowEndToEnd) {
  PgGeneratorOptions gopts;
  gopts.nx = 24;
  gopts.ny = 24;
  gopts.layers = 2;
  gopts.seed = 17;
  const PowerGrid pg = generate_power_grid(gopts);
  const ConductanceNetwork net = pg.to_network();

  ReductionOptions ropts;
  ropts.num_blocks = 6;
  IncrementalReducer reducer(net, pg.port_mask(), ropts);
  const GridModification mod =
      random_modification(reducer.structure().num_blocks, 0.2, 1.25, 19);
  const ConductanceNetwork modified =
      apply_modification(net, reducer.structure(), mod);
  const ReducedModel& m = reducer.update(modified, mod.dirty_blocks);

  const auto j = pg.load_vector(0.0);
  const DcSolution full = solve_dc(modified, j);
  const DcSolution red = solve_dc(m.network, map_injections(m, j));
  const SolutionError err = compare_dc(full.drops, red, m, pg.port_nodes());
  EXPECT_LT(err.rel, 0.06);
}

// ------------------------------------------------------- file round trip -

TEST(Integration, NetlistFileRoundTrip) {
  PgGeneratorOptions gopts;
  gopts.nx = 10;
  gopts.ny = 10;
  gopts.layers = 2;
  gopts.seed = 21;
  const PowerGrid pg = generate_power_grid(gopts);
  const std::string path = "test_roundtrip_grid.sp";
  write_netlist_file(pg, path);
  const PowerGrid back = read_netlist_file(path);
  std::remove(path.c_str());

  ASSERT_EQ(back.num_nodes, pg.num_nodes);
  // Same DC solution through the round trip.
  const DcSolution a = solve_dc(pg.to_network(), pg.load_vector(0.0));
  const DcSolution b = solve_dc(back.to_network(), back.load_vector(0.0));
  for (std::size_t i = 0; i < a.drops.size(); ++i)
    EXPECT_NEAR(a.drops[i], b.drops[i], 1e-12);
}

// ------------------------------------------------ determinism & rebuild --

TEST(Integration, Alg3FullyDeterministic) {
  const Graph g = multilayer_mesh(20, 20, 2, WeightKind::kLogUniform, 23);
  const ApproxCholEffRes a(g, {});
  const ApproxCholEffRes b(g, {});
  for (const auto& e : g.edges())
    EXPECT_DOUBLE_EQ(a.resistance(e.u, e.v), b.resistance(e.u, e.v));
}

TEST(Integration, ReductionDeterministicForSeed) {
  PgGeneratorOptions gopts;
  gopts.nx = 16;
  gopts.ny = 16;
  gopts.seed = 25;
  const PowerGrid pg = generate_power_grid(gopts);
  const ConductanceNetwork net = pg.to_network();
  ReductionOptions ropts;
  ropts.num_blocks = 4;
  const ReducedModel a = reduce_network(net, pg.port_mask(), ropts);
  const ReducedModel b = reduce_network(net, pg.port_mask(), ropts);
  ASSERT_EQ(a.network.graph.num_edges(), b.network.graph.num_edges());
  for (std::size_t e = 0; e < a.network.graph.num_edges(); ++e)
    EXPECT_DOUBLE_EQ(a.network.graph.edges()[e].weight,
                     b.network.graph.edges()[e].weight);
}

}  // namespace
}  // namespace er
