// Tests for effres: closed-form effective resistances (path, cycle,
// complete graph, series/parallel), agreement between engines, metric
// axioms, Rayleigh monotonicity, error-measurement harness.
#include <gtest/gtest.h>

#include <cmath>

#include "effres/approx_chol.hpp"
#include "effres/engine.hpp"
#include "effres/error_metrics.hpp"
#include "effres/exact.hpp"
#include "effres/random_projection.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "sparse/dense.hpp"

namespace er {
namespace {

/// Reference ER via the Laplacian pseudo-inverse (paper Eq. (3)).
real_t pinv_resistance(const Graph& g, index_t p, index_t q) {
  const CscMatrix l = laplacian(g);
  DenseMatrix d(g.num_nodes(), g.num_nodes(), l.to_dense());
  const DenseMatrix li = d.symmetric_pseudo_inverse();
  return li(p, p) + li(q, q) - 2 * li(p, q);
}

TEST(ExactEffRes, PathGraphSumsResistances) {
  // Path with conductances w: R(0, k) = sum 1/w_i.
  Graph g(5);
  const real_t w[4] = {1.0, 2.0, 4.0, 0.5};
  real_t expect = 0.0;
  for (index_t i = 0; i < 4; ++i) g.add_edge(i, i + 1, w[i]);
  const ExactEffRes engine(g);
  for (index_t k = 1; k < 5; ++k) {
    expect += 1.0 / w[k - 1];
    EXPECT_NEAR(engine.resistance(0, k), expect, 1e-12);
  }
}

TEST(ExactEffRes, CompleteGraphUnitWeights) {
  // K_n with unit weights: R(p,q) = 2/n for all pairs.
  const index_t n = 7;
  Graph g(n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) g.add_edge(i, j, 1.0);
  const ExactEffRes engine(g);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j)
      EXPECT_NEAR(engine.resistance(i, j), 2.0 / n, 1e-12);
}

TEST(ExactEffRes, CycleIsParallelPaths) {
  // Cycle of n unit resistors: R across k hops = k(n-k)/n.
  const index_t n = 9;
  Graph g(n);
  for (index_t i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n, 1.0);
  const ExactEffRes engine(g);
  for (index_t k = 1; k < n; ++k)
    EXPECT_NEAR(engine.resistance(0, k),
                static_cast<real_t>(k) * (n - k) / n, 1e-12);
}

TEST(ExactEffRes, ParallelEdgesAddConductance) {
  Graph g(2);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 1, 3.0);
  const ExactEffRes engine(g);
  EXPECT_NEAR(engine.resistance(0, 1), 1.0 / 5.0, 1e-12);
}

TEST(ExactEffRes, MatchesPseudoInverseOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = erdos_renyi(24, 60, WeightKind::kUniform, seed);
    const ExactEffRes engine(g);
    Rng rng(seed + 100);
    for (int t = 0; t < 10; ++t) {
      const index_t p = rng.uniform_int(24);
      index_t q = rng.uniform_int(24);
      if (p == q) q = (q + 1) % 24;
      EXPECT_NEAR(engine.resistance(p, q), pinv_resistance(g, p, q), 1e-8);
    }
  }
}

TEST(ExactEffRes, SelfResistanceIsZeroAndSymmetric) {
  const Graph g = grid_2d(6, 6, WeightKind::kUniform, 4);
  const ExactEffRes engine(g);
  EXPECT_EQ(engine.resistance(3, 3), 0.0);
  for (int t = 0; t < 10; ++t)
    EXPECT_NEAR(engine.resistance(2, 30), engine.resistance(30, 2), 1e-12);
}

TEST(ExactEffRes, GroundConductanceDoesNotMatter) {
  // The §II-A grounding trick is exact for balanced injections: ER must be
  // independent of the ground conductance. Verify via two engines built on
  // differently-grounded Laplacians (via laplacian_with_shunts + cholesky).
  const Graph g = watts_strogatz(40, 3, 0.2, WeightKind::kUniform, 5);
  const ExactEffRes a(g);
  // Compare against pseudo-inverse reference (independent of grounding).
  EXPECT_NEAR(a.resistance(0, 17), pinv_resistance(g, 0, 17), 1e-8);
  EXPECT_NEAR(a.resistance(5, 23), pinv_resistance(g, 5, 23), 1e-8);
}

TEST(ExactEffRes, TriangleInequality) {
  // Effective resistance is a metric.
  const Graph g = barabasi_albert(60, 2, WeightKind::kUniform, 6);
  const ExactEffRes engine(g);
  Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    const index_t p = rng.uniform_int(60);
    const index_t q = rng.uniform_int(60);
    const index_t r = rng.uniform_int(60);
    EXPECT_LE(engine.resistance(p, q),
              engine.resistance(p, r) + engine.resistance(r, q) + 1e-10);
  }
}

TEST(ExactEffRes, RayleighMonotonicity) {
  // Adding an edge can only decrease effective resistances.
  Graph g = grid_2d(5, 5, WeightKind::kUnit, 8);
  const ExactEffRes before(g);
  const real_t r_before = before.resistance(0, 24);
  g.add_edge(0, 24, 0.5);
  const ExactEffRes after(g);
  const real_t r_after = after.resistance(0, 24);
  EXPECT_LT(r_after, r_before);
  // And with the shortcut in parallel: R_new <= 1/w_shortcut.
  EXPECT_LE(r_after, 1.0 / 0.5 + 1e-12);
}

TEST(ExactEffRes, EdgeResistanceBelowWireResistance) {
  // For any edge (u,v,w): R(u,v) <= 1/w (the rest of the graph in parallel).
  const Graph g = random_geometric(120, 0.15, WeightKind::kUnit, 9);
  const ExactEffRes engine(g);
  for (std::size_t e = 0; e < std::min<std::size_t>(g.num_edges(), 100); ++e) {
    const auto& ed = g.edges()[e];
    EXPECT_LE(engine.resistance(ed.u, ed.v), 1.0 / ed.weight + 1e-10);
  }
}

TEST(ApproxChol, AccurateOnCompleteFactorization) {
  // With a complete factor and tiny epsilon, Alg. 3 is near-exact.
  const Graph g = grid_2d(8, 8, WeightKind::kUniform, 10);
  ApproxCholOptions opts;
  opts.complete_factorization = true;
  opts.epsilon = 1e-8;
  const ApproxCholEffRes approx(g, opts);
  const ExactEffRes exact(g);
  for (const auto& e : g.edges())
    EXPECT_NEAR(approx.resistance(e.u, e.v), exact.resistance(e.u, e.v),
                1e-5);
}

TEST(ApproxChol, PaperSettingsGiveSmallErrors) {
  // droptol = 1e-3, epsilon = 1e-3 (paper's Table I configuration).
  const Graph g = grid_2d(20, 20, WeightKind::kUniform, 11);
  const ApproxCholEffRes approx(g, {});
  const ExactEffRes exact(g);
  const ErrorReport rep = measure_edge_errors(g, approx, exact, 300);
  EXPECT_LT(rep.average_relative, 0.02);
  // Max error is dominated by a few ICT-dropped fill-ins at this small
  // scale; the paper's Em at these settings is also an order above Ea.
  EXPECT_LT(rep.max_relative, 0.30);
}

TEST(ApproxChol, StatsArePopulated) {
  const Graph g = barabasi_albert(200, 3, WeightKind::kUniform, 12);
  const ApproxCholEffRes approx(g, {});
  const auto& s = approx.stats();
  EXPECT_GT(s.factor_nnz, 0);
  EXPECT_GT(s.inverse_nnz, 0);
  EXPECT_GT(s.max_depth, 0);
  EXPECT_GT(s.nnz_ratio(g.num_nodes()), 0.0);
}

TEST(ApproxChol, ErrorDecreasesWithEpsilon) {
  const Graph g = grid_2d(15, 15, WeightKind::kUniform, 13);
  const ExactEffRes exact(g);
  double prev = 1e9;
  for (real_t eps : {3e-2, 3e-3, 3e-4}) {
    ApproxCholOptions opts;
    opts.epsilon = eps;
    opts.droptol = 0.0;  // isolate the epsilon effect
    const ApproxCholEffRes approx(g, opts);
    const ErrorReport rep = measure_edge_errors(g, approx, exact, 200);
    EXPECT_LE(rep.average_relative, prev + 1e-9);
    prev = rep.average_relative;
  }
  EXPECT_LT(prev, 1e-3);
}

TEST(RandomProjection, ConvergesToExactWithManyDimensions) {
  const Graph g = grid_2d(10, 10, WeightKind::kUnit, 14);
  const ExactEffRes exact(g);
  RandomProjectionOptions opts;
  opts.dimensions = 4000;  // large k -> small JL distortion
  const RandomProjectionEffRes approx(g, opts);
  const ErrorReport rep = measure_edge_errors(g, approx, exact, 100);
  EXPECT_LT(rep.average_relative, 0.05);
}

TEST(RandomProjection, DefaultDimensionsScaleWithLogN) {
  const Graph g = barabasi_albert(256, 2, WeightKind::kUnit, 15);
  RandomProjectionOptions opts;
  opts.auto_scale = 8.0;
  const RandomProjectionEffRes approx(g, opts);
  EXPECT_EQ(approx.stats().dimensions, 64);  // 8 * log2(256)
  EXPECT_EQ(approx.stats().projection_nnz,
            static_cast<offset_t>(64) * 256);
}

TEST(RandomProjection, LessAccurateThanApproxCholAtPaperSettings) {
  // The paper's central accuracy claim (Table I): Alg. 3 errors are one to
  // two orders below the random-projection baseline.
  const Graph g = grid_2d(18, 18, WeightKind::kUniform, 16);
  const ExactEffRes exact(g);
  const ApproxCholEffRes alg3(g, {});
  RandomProjectionOptions rp_opts;
  rp_opts.auto_scale = 16.0;
  const RandomProjectionEffRes rp(g, rp_opts);
  const ErrorReport e3 = measure_edge_errors(g, alg3, exact, 200);
  const ErrorReport erp = measure_edge_errors(g, rp, exact, 200);
  EXPECT_LT(e3.average_relative, erp.average_relative);
}

TEST(Engine, BatchMatchesScalarQueries) {
  const Graph g = grid_2d(7, 7, WeightKind::kUniform, 17);
  const ExactEffRes engine(g);
  const auto queries = all_edge_queries(g);
  const auto batch = engine.resistances(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    EXPECT_DOUBLE_EQ(batch[i],
                     engine.resistance(queries[i].first, queries[i].second));
}

TEST(ErrorMetrics, ZeroForIdenticalEngines) {
  const Graph g = grid_2d(6, 6, WeightKind::kUniform, 18);
  const ExactEffRes engine(g);
  const ErrorReport rep = measure_edge_errors(g, engine, engine, 50);
  EXPECT_EQ(rep.average_relative, 0.0);
  EXPECT_EQ(rep.max_relative, 0.0);
  EXPECT_GT(rep.samples, 0u);
}

TEST(ErrorMetrics, DetectsKnownBias) {
  // An engine reporting 2x the true value has exactly 100% relative error.
  class Doubler final : public EffResEngine {
   public:
    explicit Doubler(const Graph& g) : inner_(g) {}
    [[nodiscard]] real_t resistance(index_t p, index_t q) const override {
      return 2.0 * inner_.resistance(p, q);
    }
    [[nodiscard]] std::string name() const override { return "doubler"; }

   private:
    ExactEffRes inner_;
  };
  const Graph g = grid_2d(5, 5, WeightKind::kUnit, 19);
  const ExactEffRes exact(g);
  const Doubler doubler(g);
  const ErrorReport rep = measure_edge_errors(g, doubler, exact, 30);
  EXPECT_NEAR(rep.average_relative, 1.0, 1e-12);
  EXPECT_NEAR(rep.max_relative, 1.0, 1e-12);
}

class ApproxCholFamilies : public ::testing::TestWithParam<int> {};

TEST_P(ApproxCholFamilies, SmallErrorAcrossGraphFamilies) {
  const int which = GetParam();
  Graph g = which == 0   ? grid_2d(14, 14, WeightKind::kUniform, 30)
            : which == 1 ? grid_3d(6, 6, 5, WeightKind::kUniform, 31)
            : which == 2 ? barabasi_albert(220, 3, WeightKind::kUniform, 32)
            : which == 3 ? watts_strogatz(200, 3, 0.1, WeightKind::kUniform, 33)
                         : multilayer_mesh(12, 12, 3, WeightKind::kLogUniform, 34);
  const ApproxCholEffRes approx(g, {});
  const ExactEffRes exact(g);
  const ErrorReport rep = measure_edge_errors(g, approx, exact, 200);
  EXPECT_LT(rep.average_relative, 0.05) << "family " << which;
}

INSTANTIATE_TEST_SUITE_P(Families, ApproxCholFamilies, ::testing::Range(0, 5));

}  // namespace
}  // namespace er
