// Tests for the observability layer (src/obs/, DESIGN.md §6): lock-free
// counters/gauges/histograms, bucket-boundary and quantile semantics
// (against the exact sorted-vector oracle in util/stats.hpp), registry
// get-or-create identity, snapshot merge, Prometheus golden output, trace
// spans and the bounded trace ring. The concurrent cases are the TSan
// targets: recording and snapshotting race by design and must stay clean.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace er::obs {
namespace {

TEST(ObsCounter, AddAndWraparound) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Documented modulo-2^64 wraparound: never UB, never a trap.
  c.add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(c.value(), 41u);
}

TEST(ObsGauge, SetAddMaxWith) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.max_with(5);
  EXPECT_EQ(g.value(), 5);
  g.max_with(2);  // monotone: lower values never win
  EXPECT_EQ(g.value(), 5);
}

TEST(ObsHistogram, BucketBoundarySemantics) {
  // Bucket i covers (bounds[i-1], bounds[i]]: a sample exactly on a bound
  // lands in that bound's bucket (Prometheus "le" semantics).
  Histogram h({1.0, 2.0, 4.0});
  h.record(1.0);   // bucket 0
  h.record(0.5);   // bucket 0
  h.record(1.5);   // bucket 1
  h.record(4.0);   // bucket 2
  h.record(4.001); // overflow
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 1.0 + 0.5 + 1.5 + 4.0 + 4.001);
  EXPECT_DOUBLE_EQ(s.max, 4.001);
}

TEST(ObsHistogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(ObsHistogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.snapshot().quantile(0.5), 0.0);
  EXPECT_EQ(h.snapshot().quantile(0.99), 0.0);
  EXPECT_EQ(h.snapshot().mean(), 0.0);
}

TEST(ObsHistogram, QuantileMatchesSortedOracleWithinBucketError) {
  // Deterministic skewed sample set over the default power-of-two latency
  // buckets; the documented bound is <= 2x relative error against the
  // exact sorted-vector quantile.
  Histogram h;
  std::vector<double> samples;
  std::uint64_t x = 0x243f6a8885a308d3ULL;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    // Log-uniform-ish latencies from ~1us to ~1s.
    const int k = static_cast<int>((x >> 33) % 20);
    const double frac =
        static_cast<double>((x >> 11) & 0x3fffff) / 4194304.0;
    const double v = 1e-6 * (1 << k) * (1.0 + frac);
    samples.push_back(v);
    h.record(v);
  }
  const HistogramSnapshot s = h.snapshot();
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = er::quantile(samples, q);
    const double approx = s.quantile(q);
    ASSERT_GT(exact, 0.0);
    EXPECT_GE(approx, exact / 2.0) << "q=" << q;
    EXPECT_LE(approx, exact * 2.0) << "q=" << q;
  }
}

TEST(ObsHistogram, OverflowQuantileReportsObservedMax) {
  Histogram h({1.0});
  h.record(100.0);
  h.record(250.0);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.99), 250.0);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 250.0);
}

TEST(ObsRegistry, GetOrCreateIdentityAndLabelDistinction) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total");
  Counter& b = reg.counter("x_total");
  EXPECT_EQ(&a, &b);
  // Label order is irrelevant; label *content* distinguishes series.
  Counter& l1 = reg.counter("y_total", {{"a", "1"}, {"b", "2"}});
  Counter& l2 = reg.counter("y_total", {{"b", "2"}, {"a", "1"}});
  Counter& l3 = reg.counter("y_total", {{"a", "other"}});
  EXPECT_EQ(&l1, &l2);
  EXPECT_NE(&l1, &l3);
  // Histograms: bounds of a re-request are ignored, instance is shared.
  Histogram& h1 = reg.histogram("z_seconds", {}, "", {1.0, 2.0});
  Histogram& h2 = reg.histogram("z_seconds", {}, "", {5.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(ObsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("m");
  EXPECT_THROW(reg.gauge("m"), std::logic_error);
  EXPECT_THROW(reg.histogram("m"), std::logic_error);
  reg.gauge("g");
  EXPECT_THROW(reg.counter("g"), std::logic_error);
}

TEST(ObsRegistry, SnapshotFindAndMerge) {
  MetricsRegistry a, b;
  a.counter("c_total").add(3);
  b.counter("c_total").add(4);
  a.gauge("g").set(10);
  b.gauge("g").set(7);  // merge keeps the high-water maximum
  a.histogram("h_seconds", {}, "", {1.0, 2.0}).record(0.5);
  b.histogram("h_seconds", {}, "", {1.0, 2.0}).record(1.5);
  b.counter("only_b_total", {{"k", "v"}}).add(9);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  ASSERT_NE(merged.find("c_total"), nullptr);
  EXPECT_EQ(merged.find("c_total")->counter, 7u);
  EXPECT_EQ(merged.find("g")->gauge, 10);
  const MetricSnapshot* h = merged.find("h_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->histogram.count, 2u);
  EXPECT_EQ(h->histogram.buckets[0], 1u);
  EXPECT_EQ(h->histogram.buckets[1], 1u);
  const MetricSnapshot* ob = merged.find("only_b_total", {{"k", "v"}});
  ASSERT_NE(ob, nullptr);
  EXPECT_EQ(ob->counter, 9u);
  // Merge preserved (name, labels) ordering for deterministic exports.
  for (std::size_t i = 1; i < merged.entries.size(); ++i)
    EXPECT_LT(merged.entries[i - 1].name + "|",
              merged.entries[i].name + "|");
}

TEST(ObsExport, PrometheusGolden) {
  MetricsRegistry reg;
  reg.counter("t_count_total", {{"mode", "x"}}, "Things counted").add(3);
  reg.gauge("t_depth").set(-2);
  Histogram& h = reg.histogram("t_lat_seconds", {}, "Latency", {1.0, 2.0});
  h.record(0.5);
  h.record(2.0);
  h.record(3.0);
  const std::string got = to_prometheus(reg.snapshot());
  const std::string want =
      "# HELP t_count_total Things counted\n"
      "# TYPE t_count_total counter\n"
      "t_count_total{mode=\"x\"} 3\n"
      "# TYPE t_depth gauge\n"
      "t_depth -2\n"
      "# HELP t_lat_seconds Latency\n"
      "# TYPE t_lat_seconds histogram\n"
      "t_lat_seconds_bucket{le=\"1\"} 1\n"
      "t_lat_seconds_bucket{le=\"2\"} 2\n"
      "t_lat_seconds_bucket{le=\"+Inf\"} 3\n"
      "t_lat_seconds_sum 5.5\n"
      "t_lat_seconds_count 3\n";
  EXPECT_EQ(got, want);
}

TEST(ObsExport, BenchJsonCarriesPercentiles) {
  MetricsRegistry reg;
  reg.histogram("q_seconds", {{"mode", "sharded"}}).record(1e-4);
  reg.counter("n_total").add(2);
  const std::string json = to_bench_json(reg.snapshot());
  EXPECT_NE(json.find("\"q_seconds{mode=sharded}_p50\""), std::string::npos);
  EXPECT_NE(json.find("\"q_seconds{mode=sharded}_count\": 1"),
            std::string::npos);
  EXPECT_NE(json.find("\"n_total\": 2"), std::string::npos);
}

// The TSan target: concurrent recording into one histogram while another
// thread keeps snapshotting. The final tallies must be exact, and every
// mid-flight snapshot must satisfy count == sum(buckets) (the exporter
// invariant the snapshot clamp guarantees).
TEST(ObsConcurrency, HistogramRecordAndSnapshotRace) {
  for (const int threads : {1, 2, 4, 8}) {
    MetricsRegistry reg;
    Histogram& h = reg.histogram("race_seconds");
    constexpr int kPerThread = 4000;
    std::atomic<bool> done{false};
    std::thread snapshotter([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const HistogramSnapshot s = h.snapshot();
        std::uint64_t total = 0;
        for (const std::uint64_t b : s.buckets) total += b;
        ASSERT_EQ(s.count, total);
      }
    });
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t)
      workers.emplace_back([&h, t] {
        // Exact-power-of-two sample values: every partial sum is an
        // integer multiple of 2^-20 well below 2^53, so double summation
        // is exact in any interleaving and the final sum check is an
        // equality, not a tolerance.
        const double v = std::ldexp(1.0, (t % 8) - 20);
        for (int i = 0; i < kPerThread; ++i) h.record(v);
      });
    for (auto& w : workers) w.join();
    done.store(true, std::memory_order_relaxed);
    snapshotter.join();

    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, static_cast<std::uint64_t>(threads) * kPerThread);
    double want_sum = 0.0;
    for (int t = 0; t < threads; ++t)
      want_sum += kPerThread * std::ldexp(1.0, (t % 8) - 20);
    EXPECT_DOUBLE_EQ(s.sum, want_sum);
  }
}

TEST(ObsConcurrency, CountersAndGaugesAreExactUnderContention) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits_total");
  Gauge& g = reg.gauge("depth");
  Gauge& hw = reg.gauge("high_water");
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        c.add(1);
        g.add(1);
        g.add(-1);
        hw.max_with(t * kOps + i);
      }
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(hw.value(), (kThreads - 1) * kOps + kOps - 1);
}

// Registration itself races: get-or-create from many threads must hand
// every caller the same instance and count every add exactly once.
TEST(ObsConcurrency, ConcurrentRegistration) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&reg] {
      for (int i = 0; i < kOps; ++i)
        reg.counter("shared_total", {{"k", "v"}}).add(1);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("shared_total", {{"k", "v"}}).value(),
            static_cast<std::uint64_t>(kThreads) * kOps);
}

TEST(ObsTrace, SpansFeedStageHistogramAndBoundedRing) {
  Histogram& stage = stage_histogram("obs_test_stage");
  const std::uint64_t before = stage.count();
  TraceRing::global().set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    OBS_SPAN("obs_test_stage", i);
  }
  EXPECT_EQ(stage.count(), before + 10);
  const std::vector<SpanRecord> recent = TraceRing::global().recent();
  ASSERT_EQ(recent.size(), 4u);  // bounded: oldest spans dropped
  // Oldest-first retention of the *last* four spans.
  for (std::size_t i = 0; i < recent.size(); ++i) {
    EXPECT_STREQ(recent[i].stage, "obs_test_stage");
    EXPECT_EQ(recent[i].id, static_cast<std::int64_t>(6 + i));
    EXPECT_GE(recent[i].duration_seconds, 0.0);
  }
  TraceRing::global().set_capacity(0);  // restore the default-off state
  EXPECT_TRUE(TraceRing::global().recent().empty());
}

TEST(ObsTrace, DisabledRingRetainsNothing) {
  TraceRing::global().set_capacity(0);
  const Histogram& stage = stage_histogram("obs_test_stage2");
  {
    OBS_SPAN("obs_test_stage2");
  }
  EXPECT_TRUE(TraceRing::global().recent().empty());
  // The aggregate histogram still records even with the ring off.
  EXPECT_EQ(stage.count(), 1u);
}

}  // namespace
}  // namespace er::obs
