// Async incremental re-reduction tests (DESIGN.md §4.1). Three contracts:
//
//   (a) streaming concurrent modification batches against concurrent query
//       batches keeps every pinned version internally bit-consistent (all
//       answers of a version identical however often it is queried),
//   (b) a dirty-only snapshot rebuild (ModelSnapshot::rebuild /
//       IncrementalReducer's incremental publish) is bitwise identical to
//       a full rebuild of the same model, at 1/2/4/8 threads,
//   (c) coalesced batches converge to the same final model as applying the
//       same modifications sequentially.
//
// The concurrent tests run under TSan in CI (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "pg/incremental.hpp"
#include "reduction/pipeline.hpp"
#include "serve/async_updater.hpp"
#include "serve/model_store.hpp"
#include "serve/query_frontend.hpp"
#include "serve/snapshot.hpp"
#include "serve_test_util.hpp"

namespace er {
namespace {

// bind_reducer / make_mod_stream come from serve_test_util.hpp (shared
// with test_serving.cpp and test_result_cache.cpp).

// ---------------------------------------------------------------------------
// (b) dirty-only rebuild == full rebuild, bitwise, across thread counts.
// ---------------------------------------------------------------------------

TEST(ModelSnapshotRebuild, DirtyOnlyMatchesFullRebuildBitwise) {
  const ServeCase c = make_case(22, 22, 56, 211);
  ReductionOptions opts;
  opts.num_blocks = 8;
  const auto batch_nodes = [&] {
    IncrementalReducer probe(c.net, c.ports, opts);
    return kept_originals(probe.model());
  }();
  const auto batch = mixed_batch(batch_nodes, 300, 23);

  std::vector<std::vector<real_t>> per_thread_answers;
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ReductionOptions topts = opts;
    topts.parallel.num_threads = threads;
    IncrementalReducer reducer(c.net, c.ports, topts);
    ThreadPool pool(threads);
    ThreadPool* p = threads > 1 ? &pool : nullptr;

    auto prev = ModelSnapshot::build(reducer.blocks(), reducer.model(), {},
                                     p, reducer.revision());
    EXPECT_EQ(prev->reused_blocks(), 0);
    EXPECT_EQ(prev->rebuilt_blocks(), prev->num_blocks());

    ConductanceNetwork current = c.net;
    std::vector<real_t> final_answers;
    for (int u = 1; u <= 3; ++u) {
      const GridModification mod = random_modification(
          reducer.structure().num_blocks, 0.25, 1.3,
          static_cast<std::uint64_t>(300 + u));
      current = apply_modification(current, reducer.structure(), mod);
      reducer.update(current, mod.dirty_blocks);

      const auto full = ModelSnapshot::build(
          reducer.blocks(), reducer.model(), {}, p, reducer.revision());
      const auto incr = ModelSnapshot::rebuild(
          *prev, reducer.blocks(), reducer.model(), mod.dirty_blocks, p,
          reducer.revision());
      ASSERT_GT(incr->reused_blocks(), 0);
      EXPECT_EQ(incr->reused_blocks() + incr->rebuilt_blocks(),
                incr->num_blocks());
      EXPECT_EQ(full->num_boundary_nodes(), incr->num_boundary_nodes());

      // Bitwise equality on both exact routes (the monolithic factor is
      // rebuilt either way; the sharded one mixes reused + fresh factors).
      for (RouteMode mode : {RouteMode::kSharded, RouteMode::kMonolithic}) {
        const auto want = QueryFrontEnd::answer_on(*full, batch, {p, mode});
        const auto got = QueryFrontEnd::answer_on(*incr, batch, {p, mode});
        ASSERT_EQ(want.size(), got.size());
        for (std::size_t i = 0; i < want.size(); ++i)
          ASSERT_EQ(want[i], got[i])
              << to_string(mode) << " query " << i << " update " << u;
      }
      prev = incr;
      if (u == 3) final_answers = QueryFrontEnd::answer_on(*prev, batch);
    }
    per_thread_answers.push_back(std::move(final_answers));
  }
  // The whole chain is also thread-count independent.
  for (std::size_t t = 1; t < per_thread_answers.size(); ++t) {
    ASSERT_EQ(per_thread_answers[0].size(), per_thread_answers[t].size());
    for (std::size_t i = 0; i < per_thread_answers[0].size(); ++i)
      ASSERT_EQ(per_thread_answers[0][i], per_thread_answers[t][i])
          << "thread sweep " << t << " query " << i;
  }
}

TEST(ModelSnapshotRebuild, IncrementalPublishMatchesFullPublish) {
  // The store-attached reducer publishes dirty-only rebuilds; a twin with
  // incremental_publish disabled must publish bitwise-identical snapshots.
  const ServeCase c = make_case(20, 20, 48, 223);
  ReductionOptions opts;
  opts.num_blocks = 8;
  ModelStore store_incr, store_full;
  IncrementalReducer incr(c.net, c.ports, opts);
  IncrementalReducer full(c.net, c.ports, opts);
  ServingOptions sopts;
  ServingOptions full_opts;
  full_opts.incremental_publish = false;
  incr.attach_store(&store_incr, sopts);
  full.attach_store(&store_full, full_opts);

  const auto batch = mixed_batch(kept_originals(incr.model()), 200, 31);
  const ModStream stream =
      make_mod_stream(c.net, incr.structure(), 3, 0.2, 1.4, 500);
  for (std::size_t u = 0; u < stream.nets.size(); ++u) {
    incr.update(stream.nets[u], stream.mods[u].dirty_blocks);
    full.update(stream.nets[u], stream.mods[u].dirty_blocks);

    const SnapshotPtr si = store_incr.acquire();
    const SnapshotPtr sf = store_full.acquire();
    EXPECT_EQ(si->version(), sf->version());
    EXPECT_GT(si->reused_blocks(), 0);
    EXPECT_EQ(sf->reused_blocks(), 0);
    const auto want = QueryFrontEnd::answer_on(*sf, batch);
    const auto got = QueryFrontEnd::answer_on(*si, batch);
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(want[i], got[i]) << "update " << u << " query " << i;
  }
}

// ---------------------------------------------------------------------------
// (c) coalesced batches converge to the sequential result.
// ---------------------------------------------------------------------------

TEST(AsyncUpdater, CoalescedBatchesConvergeToSequentialModel) {
  const ServeCase c = make_case(18, 18, 40, 227);
  ReductionOptions opts;
  opts.num_blocks = 6;
  ModelStore store;
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  IncrementalReducer twin(c.net, c.ports, opts);

  AsyncUpdater updater(bind_reducer(reducer));
  updater.pause();  // force every submission into one coalesced batch

  constexpr int kMods = 4;
  const ModStream stream =
      make_mod_stream(c.net, twin.structure(), kMods, 0.3, 1.2, 700);
  for (int u = 0; u < kMods; ++u) {
    const auto& net = stream.nets[static_cast<std::size_t>(u)];
    const auto& dirty = stream.mods[static_cast<std::size_t>(u)].dirty_blocks;
    updater.submit(net, dirty);
    twin.update(net, dirty);  // sequential reference
  }
  {
    const AsyncUpdater::Stats s = updater.stats();
    EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kMods));
    EXPECT_EQ(s.pending, static_cast<std::uint64_t>(kMods));
    EXPECT_EQ(s.coalesced, static_cast<std::uint64_t>(kMods - 1));
    EXPECT_EQ(s.batches, 0u);
  }
  updater.flush();
  const AsyncUpdater::Stats s = updater.stats();
  EXPECT_EQ(s.batches, 1u);  // one coalesced update applied everything
  EXPECT_EQ(s.applied, static_cast<std::uint64_t>(kMods));
  EXPECT_EQ(s.pending, 0u);
  EXPECT_GT(s.last_publish_latency_seconds, 0.0);
  EXPECT_EQ(store.publish_count(), 2u);  // attach + one coalesced publish

  // The coalesced model equals the sequential one bit-for-bit — per block
  // (the §4.1 invariant copy-on-write sharing rests on) and as a whole —
  // and the published snapshot answers match a full build of the twin's.
  ASSERT_EQ(reducer.blocks().size(), twin.blocks().size());
  for (std::size_t b = 0; b < twin.blocks().size(); ++b)
    EXPECT_TRUE(blocks_identical(reducer.blocks()[b], twin.blocks()[b]))
        << "block " << b;
  EXPECT_TRUE(models_identical(reducer.model(), twin.model()));
  const auto batch = mixed_batch(kept_originals(twin.model()), 200, 41);
  const SnapshotPtr published = store.acquire();
  EXPECT_EQ(updater.mods_reflected(published->version()),
            static_cast<std::uint64_t>(kMods));
  const auto want = QueryFrontEnd::answer_on(
      *ModelSnapshot::build(twin.blocks(), twin.model()), batch);
  const auto got = QueryFrontEnd::answer_on(*published, batch);
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(want[i], got[i]) << "query " << i;
}

TEST(AsyncUpdater, FlushDrainAndErrorContracts) {
  const ServeCase c = make_case(12, 12, 16, 229);
  ReductionOptions opts;
  opts.num_blocks = 4;
  ModelStore store;
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);

  {
    // flush() with nothing submitted returns immediately; drain() makes
    // further submissions throw.
    AsyncUpdater updater(bind_reducer(reducer));
    updater.flush();
    EXPECT_EQ(updater.stats().batches, 0u);
    // flush on an idle updater still implies resume: a subsequent submit
    // is applied without an explicit resume().
    updater.pause();
    updater.flush();
    updater.submit(c.net, {0});
    updater.flush();
    EXPECT_EQ(updater.stats().batches, 1u);
    updater.drain();
    EXPECT_THROW(updater.submit(c.net, {0}), std::logic_error);
  }
  {
    // A worker exception (bad block id) latches: flush rethrows, and so
    // does every later submit/flush; the lost batch lands in Stats::failed
    // so submitted = applied + failed + pending stays exact.
    AsyncUpdater updater(bind_reducer(reducer));
    updater.submit(c.net, {reducer.structure().num_blocks + 7});
    EXPECT_THROW(updater.flush(), std::out_of_range);
    EXPECT_THROW(updater.submit(c.net, {0}), std::out_of_range);
    EXPECT_THROW(updater.flush(), std::out_of_range);
    const AsyncUpdater::Stats s = updater.stats();
    EXPECT_EQ(s.submitted, 1u);
    EXPECT_EQ(s.failed, 1u);
    EXPECT_EQ(s.applied, 0u);
    EXPECT_EQ(s.pending, 0u);
  }
}

TEST(ModelSnapshotRebuild, FailedUpdateDisarmsDirtyOnlyRebuild) {
  // A throwing update() must not leave the previous published snapshot
  // armed as a dirty-only reuse source: the next successful publish falls
  // back to a full build (reused_blocks == 0) and stays correct.
  const ServeCase c = make_case(16, 16, 24, 239);
  ReductionOptions opts;
  opts.num_blocks = 4;
  ModelStore store;
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);

  EXPECT_THROW(reducer.update(c.net, {reducer.structure().num_blocks + 1}),
               std::out_of_range);

  const GridModification mod =
      random_modification(reducer.structure().num_blocks, 0.5, 1.3, 251);
  const ConductanceNetwork modified =
      apply_modification(c.net, reducer.structure(), mod);
  reducer.update(modified, mod.dirty_blocks);
  const SnapshotPtr snap = store.acquire();
  EXPECT_EQ(snap->reused_blocks(), 0);  // full-build fallback
  // The failed update also disarmed the copy-on-write stitch: the
  // recovery update re-stitched the model from the block cache alone.
  EXPECT_EQ(reducer.model().stats.stitch_reused_blocks, 0);

  // And the fallback publish re-arms reuse: the next update is dirty-only
  // again (snapshot artifacts and model node slices) and still bitwise
  // equal to a from-scratch build.
  const GridModification mod2 =
      random_modification(reducer.structure().num_blocks, 0.25, 1.1, 257);
  const ConductanceNetwork modified2 =
      apply_modification(modified, reducer.structure(), mod2);
  reducer.update(modified2, mod2.dirty_blocks);
  const SnapshotPtr snap2 = store.acquire();
  EXPECT_GT(snap2->reused_blocks(), 0);
  EXPECT_GT(reducer.model().stats.stitch_reused_blocks, 0);
  const auto batch = mixed_batch(kept_originals(reducer.model()), 150, 61);
  const auto want = QueryFrontEnd::answer_on(
      *ModelSnapshot::build(reducer.blocks(), reducer.model()), batch);
  const auto got = QueryFrontEnd::answer_on(*snap2, batch);
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(want[i], got[i]) << "query " << i;
}

TEST(AsyncUpdater, FlushOverridesConcurrentPause) {
  // flush() must terminate even when pause() races it: the flush predicate
  // re-clears the pause on every wake, so a concurrently-paused updater
  // can't strand the pending batch and hang the flush (or the destructor).
  const ServeCase c = make_case(14, 14, 20, 241);
  ReductionOptions opts;
  opts.num_blocks = 4;
  ModelStore store;
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  AsyncUpdater updater(bind_reducer(reducer));

  const ModStream stream =
      make_mod_stream(c.net, reducer.structure(), 3, 0.5, 1.1, 800);
  for (std::size_t u = 0; u < stream.nets.size(); ++u)
    updater.submit(stream.nets[u], stream.mods[u].dirty_blocks);
  std::thread flusher([&] { updater.flush(); });
  // Hammer pause() while the flush waits; the flush must still finish.
  for (int i = 0; i < 50; ++i) {
    updater.pause();
    std::this_thread::yield();
  }
  flusher.join();
  const AsyncUpdater::Stats s = updater.stats();
  EXPECT_EQ(s.applied, 3u);
  EXPECT_EQ(s.pending, 0u);
  EXPECT_FALSE(s.update_in_flight);
}

// ---------------------------------------------------------------------------
// Zero-copy publishes: the snapshot aliases the reducer's frozen model
// (DESIGN.md §4.1) and the shared path is bitwise equal to the deep-copy
// path at any thread count.
// ---------------------------------------------------------------------------

TEST(ModelSnapshotRebuild, ZeroCopyMatchesDeepCopyPublishBitwise) {
  const ServeCase c = make_case(20, 20, 48, 269);
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ReductionOptions opts;
    opts.num_blocks = 8;
    opts.parallel.num_threads = threads;
    ModelStore store_shared, store_deep;
    IncrementalReducer shared_r(c.net, c.ports, opts);
    IncrementalReducer deep_r(c.net, c.ports, opts);
    ServingOptions so_shared;  // share_model = true (the default)
    ServingOptions so_deep;
    so_deep.share_model = false;
    shared_r.attach_store(&store_shared, so_shared);
    deep_r.attach_store(&store_deep, so_deep);

    // The shared publish copies zero model bytes and aliases the reducer's
    // version; the deep-copy publish owns a private copy of the same size
    // as the model footprint.
    EXPECT_EQ(store_shared.acquire()->model_bytes_copied(), 0u);
    EXPECT_EQ(store_shared.acquire()->shared_model().get(),
              shared_r.shared_model().get());
    EXPECT_EQ(store_deep.acquire()->model_bytes_copied(),
              model_footprint_bytes(deep_r.model()));
    EXPECT_NE(store_deep.acquire()->shared_model().get(),
              deep_r.shared_model().get());

    const auto batch = mixed_batch(kept_originals(shared_r.model()), 200, 71);
    const ModStream stream =
        make_mod_stream(c.net, shared_r.structure(), 3, 0.25, 1.3, 600);
    for (std::size_t u = 0; u < stream.nets.size(); ++u) {
      shared_r.update(stream.nets[u], stream.mods[u].dirty_blocks);
      deep_r.update(stream.nets[u], stream.mods[u].dirty_blocks);

      const SnapshotPtr ss = store_shared.acquire();
      const SnapshotPtr sd = store_deep.acquire();
      EXPECT_EQ(ss->model_bytes_copied(), 0u);
      EXPECT_GT(sd->model_bytes_copied(), 0u);
      EXPECT_LT(ss->bytes_materialized(), sd->bytes_materialized());
      const auto want = QueryFrontEnd::answer_on(*sd, batch);
      const auto got = QueryFrontEnd::answer_on(*ss, batch);
      ASSERT_EQ(want.size(), got.size());
      for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(want[i], got[i]) << "update " << u << " query " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Bounded staleness back-pressure (Options::max_staleness_mods).
// ---------------------------------------------------------------------------

TEST(AsyncUpdater, MaxStalenessBlocksSubmitUntilWorkerCatchesUp) {
  const ServeCase c = make_case(12, 12, 16, 263);
  ReductionOptions opts;
  opts.num_blocks = 4;
  ModelStore store;
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  AsyncUpdater::Options uo;
  uo.max_staleness_mods = 2;
  AsyncUpdater updater(bind_reducer(reducer), uo);

  // Fill the staleness budget while the worker is gated.
  updater.pause();
  EXPECT_TRUE(updater.submit(c.net, {0}));
  EXPECT_TRUE(updater.submit(c.net, {1}));

  // The third submit must block: accepting it would put the edit stream 3
  // modifications ahead of the store.
  std::atomic<bool> accepted{false};
  std::thread blocked([&] {
    EXPECT_TRUE(updater.submit(c.net, {2}));
    accepted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(accepted.load());
  {
    const AsyncUpdater::Stats s = updater.stats();
    EXPECT_EQ(s.submitted, 2u);
    EXPECT_EQ(s.blocked_submits, 1u);
    EXPECT_EQ(s.max_observed_staleness_mods, 2u);
  }

  // Resuming lets the worker drain the coalesced batch; the blocked submit
  // unblocks as soon as the store has caught up.
  updater.resume();
  blocked.join();
  EXPECT_TRUE(accepted.load());
  updater.flush();
  const AsyncUpdater::Stats s = updater.stats();
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.applied, 3u);
  EXPECT_EQ(s.pending, 0u);
  EXPECT_EQ(s.blocked_submits, 1u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_GT(s.total_blocked_seconds, 0.0);
  EXPECT_LE(s.max_observed_staleness_mods, uo.max_staleness_mods);
}

TEST(AsyncUpdater, MaxStalenessFailFastRejectsAtTheBound) {
  const ServeCase c = make_case(12, 12, 16, 267);
  ReductionOptions opts;
  opts.num_blocks = 4;
  ModelStore store;
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  AsyncUpdater::Options uo;
  uo.max_staleness_mods = 2;
  uo.fail_fast = true;
  AsyncUpdater updater(bind_reducer(reducer), uo);

  updater.pause();
  EXPECT_TRUE(updater.submit(c.net, {0}));
  EXPECT_TRUE(updater.submit(c.net, {1}));
  // At the bound: the edit is turned away, never accepted.
  EXPECT_FALSE(updater.submit(c.net, {2}));
  EXPECT_FALSE(updater.submit(c.net, {3}));
  {
    const AsyncUpdater::Stats s = updater.stats();
    EXPECT_EQ(s.submitted, 2u);
    EXPECT_EQ(s.pending, 2u);
    EXPECT_EQ(s.rejected, 2u);
    EXPECT_EQ(s.blocked_submits, 0u);
  }

  updater.flush();  // implies resume; applies the two accepted mods
  {
    const AsyncUpdater::Stats s = updater.stats();
    EXPECT_EQ(s.applied, 2u);
    EXPECT_EQ(s.rejected, 2u);
  }
  // Budget freed: the next submit is accepted again.
  EXPECT_TRUE(updater.submit(c.net, {2}));
  updater.flush();
  EXPECT_EQ(updater.stats().applied, 3u);
}

// ---------------------------------------------------------------------------
// mods_reflected across the version-log prune boundary, and flush() after
// a latched worker error.
// ---------------------------------------------------------------------------

TEST(AsyncUpdater, ModsReflectedSurvivesVersionLogPrune) {
  // Trivial model source: versions advance by 2 per batch (gaps exercise
  // the partition_point floor semantics). version_log_cap = 8 makes the
  // prune reachable in 20 batches; flush() per submit pins one batch per
  // modification (no coalescing).
  AsyncUpdater::Options uo;
  uo.version_log_cap = 8;
  std::uint64_t version = 0;
  AsyncUpdater updater(
      [&version](const ConductanceNetwork&,
                 const std::vector<index_t>&) { return version += 2; },
      uo);
  const ConductanceNetwork empty_net;
  constexpr std::uint64_t kBatches = 20;
  for (std::uint64_t i = 1; i <= kBatches; ++i) {
    updater.submit(empty_net, {});
    updater.flush();
  }
  ASSERT_EQ(updater.stats().batches, kBatches);

  // Prune trace with cap 8 (fold the older half each time the log reaches
  // 9 entries): prunes after batches 9, 13 and 17 leave the retained log
  // at versions 26..40 (cumulative mods 13..20) and the prune marker at
  // (version 24, 12 mods) — the newest dropped entry.
  EXPECT_EQ(updater.mods_reflected(40), kBatches);       // newest
  EXPECT_EQ(updater.mods_reflected(41), kBatches);       // beyond newest
  EXPECT_EQ(updater.mods_reflected(26), 13u);            // oldest retained
  EXPECT_EQ(updater.mods_reflected(27), 13u);            // gap floors down
  EXPECT_EQ(updater.mods_reflected(24), 12u);            // exact boundary
  EXPECT_EQ(updater.mods_reflected(25), 12u);            // marker half
  // Older than the marker: conservative lower bound 0, never an
  // over-statement.
  EXPECT_EQ(updater.mods_reflected(23), 0u);
  EXPECT_EQ(updater.mods_reflected(2), 0u);
  EXPECT_EQ(updater.mods_reflected(0), 0u);
  // Monotone in the version, across the whole pruned + retained range.
  std::uint64_t prev = 0;
  for (std::uint64_t v = 0; v <= 44; ++v) {
    const std::uint64_t r = updater.mods_reflected(v);
    EXPECT_GE(r, prev) << "version " << v;
    prev = r;
  }
}

TEST(AsyncUpdater, FlushAfterLatchedErrorKeepsRethrowing) {
  AsyncUpdater updater([](const ConductanceNetwork&,
                          const std::vector<index_t>&) -> std::uint64_t {
    throw std::runtime_error("worker boom");
  });
  const ConductanceNetwork empty_net;
  updater.submit(empty_net, {});
  // The error latches: every flush observes it, not just the first, and
  // drain() surfaces it too (while still retiring the worker).
  EXPECT_THROW(updater.flush(), std::runtime_error);
  EXPECT_THROW(updater.flush(), std::runtime_error);
  EXPECT_THROW(updater.drain(), std::runtime_error);
  const AsyncUpdater::Stats s = updater.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.applied, 0u);
  EXPECT_EQ(s.pending, 0u);
  // The destructor swallows the latched error (no terminate).
}

// ---------------------------------------------------------------------------
// (a) concurrent modification stream vs. concurrent query stream (TSan).
// ---------------------------------------------------------------------------

TEST(AsyncUpdater, ConcurrentStreamsKeepPinnedVersionsBitConsistent) {
  const ServeCase c = make_case(20, 20, 48, 233);
  ReductionOptions opts;
  opts.num_blocks = 8;
  opts.parallel.num_threads = 2;
  ModelStore store;
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);
  const QueryFrontEnd frontend(&store);
  const auto batch = mixed_batch(kept_originals(reducer.model()), 48, 53);

  // Pre-compute the modification stream (reducer.structure() must not be
  // read while the worker updates).
  constexpr int kMods = 5;
  const ModStream stream =
      make_mod_stream(c.net, reducer.structure(), kMods, 0.25, 1.25, 900);
  const auto& nets = stream.nets;
  const auto& mods = stream.mods;

  AsyncUpdater updater(bind_reducer(reducer));
  std::atomic<int> mismatches{0};
  std::atomic<std::uint64_t> submitted_at_pin_violations{0};
  std::mutex ref_mutex;
  std::map<std::uint64_t, std::vector<real_t>> first_seen;

  constexpr int kReaders = 3;
  constexpr int kBatchesPerReader = 10;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r)
    readers.emplace_back([&] {
      for (int i = 0; i < kBatchesPerReader; ++i) {
        const std::uint64_t submitted_before = updater.stats().submitted;
        BatchStats stats;
        const auto got =
            frontend.answer(batch, nullptr, RouteMode::kSharded, &stats);
        // Internal bit-consistency: every batch answered at version v must
        // equal the first batch answered at v.
        {
          std::lock_guard<std::mutex> lock(ref_mutex);
          auto [it, inserted] =
              first_seen.emplace(stats.snapshot_version, got);
          if (!inserted && it->second != got) ++mismatches;
        }
        // Staleness sanity: a pinned version never reflects more
        // modifications than were submitted before the pin... but the
        // worker may publish *between* the stats() read and the acquire,
        // so compare against the post-answer submitted count instead.
        const std::uint64_t reflected =
            updater.mods_reflected(stats.snapshot_version);
        const std::uint64_t submitted_after = updater.stats().submitted;
        if (reflected > submitted_after || submitted_before > submitted_after)
          ++submitted_at_pin_violations;
      }
    });

  for (int u = 0; u < kMods; ++u)
    updater.submit(nets[static_cast<std::size_t>(u)],
                   mods[static_cast<std::size_t>(u)].dirty_blocks);
  updater.flush();
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(submitted_at_pin_violations.load(), 0u);
  const AsyncUpdater::Stats s = updater.stats();
  EXPECT_EQ(s.applied, static_cast<std::uint64_t>(kMods));
  EXPECT_GE(s.batches, 1u);
  EXPECT_LE(s.batches, static_cast<std::uint64_t>(kMods));
  EXPECT_EQ(s.batches + s.coalesced, s.applied);

  // After the stream settles, the final model equals a sequential replay,
  // and the published snapshot is bitwise a full rebuild of it.
  IncrementalReducer twin(c.net, c.ports, opts);
  for (int u = 0; u < kMods; ++u)
    twin.update(nets[static_cast<std::size_t>(u)],
                mods[static_cast<std::size_t>(u)].dirty_blocks);
  EXPECT_TRUE(models_identical(reducer.model(), twin.model()));
  const SnapshotPtr published = store.acquire();
  const auto want = QueryFrontEnd::answer_on(
      *ModelSnapshot::build(twin.blocks(), twin.model()), batch);
  const auto got = QueryFrontEnd::answer_on(*published, batch);
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(want[i], got[i]) << "query " << i;
}

// Stats is a thin view over the updater's registry (er_updater_* —
// DESIGN.md §6): both must report the same stream. Also pins the
// registry-scoping contract — per-instance private registries by default,
// an explicit shared registry on request.
TEST(AsyncUpdater, RegistryIsTheStatsSourceOfTruth) {
  const ServeCase c = make_case(16, 16, 24, 331);
  ReductionOptions opts;
  opts.num_blocks = 4;
  ModelStore store;
  IncrementalReducer reducer(c.net, c.ports, opts);
  reducer.attach_store(&store);

  {
    AsyncUpdater updater(bind_reducer(reducer));
    updater.pause();  // coalesce all three mods into one batch
    const ModStream stream =
        make_mod_stream(c.net, reducer.structure(), 3, 0.3, 1.2, 900);
    for (std::size_t u = 0; u < stream.nets.size(); ++u)
      updater.submit(stream.nets[u], stream.mods[u].dirty_blocks);
    updater.flush();

    const AsyncUpdater::Stats s = updater.stats();
    const obs::MetricsSnapshot snap = updater.metrics().snapshot();
    const auto counter = [&snap](const char* name) {
      const obs::MetricSnapshot* m = snap.find(name);
      return m ? m->counter : ~std::uint64_t{0};
    };
    EXPECT_EQ(counter("er_updater_mods_submitted_total"), s.submitted);
    EXPECT_EQ(counter("er_updater_mods_applied_total"), s.applied);
    EXPECT_EQ(counter("er_updater_batches_total"), s.batches);
    EXPECT_EQ(counter("er_updater_mods_coalesced_total"), s.coalesced);
    EXPECT_EQ(counter("er_updater_mods_failed_total"), s.failed);
    EXPECT_EQ(counter("er_updater_blocked_submits_total"),
              s.blocked_submits);
    EXPECT_EQ(counter("er_updater_mods_rejected_total"), s.rejected);

    const obs::MetricSnapshot* lat =
        snap.find("er_updater_publish_latency_seconds");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->histogram.count, s.batches);
    EXPECT_DOUBLE_EQ(lat->histogram.sum, s.total_publish_latency_seconds);
    EXPECT_DOUBLE_EQ(lat->histogram.max, s.max_publish_latency_seconds);

    EXPECT_EQ(snap.find("er_updater_staleness_mods")->gauge, 0);  // flushed
    EXPECT_EQ(static_cast<std::uint64_t>(
                  snap.find("er_updater_staleness_mods_high_water")->gauge),
              s.max_observed_staleness_mods);

    // Default scoping: a second updater gets its *own* registry with a
    // clean slate — concurrent pipelines never merge by accident.
    AsyncUpdater other(bind_reducer(reducer));
    EXPECT_NE(&updater.metrics(), &other.metrics());
    EXPECT_EQ(other.metrics()
                  .snapshot()
                  .find("er_updater_mods_submitted_total")
                  ->counter,
              0u);
  }

  // Opt-in aggregation: an explicit registry receives the series instead
  // of a private one.
  obs::MetricsRegistry shared;
  {
    AsyncUpdater::Options o;
    o.registry = &shared;
    AsyncUpdater updater(bind_reducer(reducer), o);
    EXPECT_EQ(&updater.metrics(), &shared);
    updater.submit(c.net, {0});
    updater.flush();
  }
  EXPECT_EQ(
      shared.snapshot().find("er_updater_mods_submitted_total")->counter,
      1u);
  EXPECT_EQ(shared.snapshot().find("er_updater_batches_total")->counter, 1u);
}

}  // namespace
}  // namespace er
