// Tests for sparse: COO assembly, CSC kernels vs dense references,
// permutation/extraction, dense Cholesky/pseudo-inverse, sparse vectors.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csc.hpp"
#include "sparse/dense.hpp"
#include "sparse/sparse_vector.hpp"
#include "util/rng.hpp"

namespace er {
namespace {

CscMatrix random_sparse(index_t rows, index_t cols, std::size_t nnz,
                        std::uint64_t seed) {
  Rng rng(seed);
  TripletMatrix t(rows, cols);
  for (std::size_t k = 0; k < nnz; ++k)
    t.add(rng.uniform_int(rows), rng.uniform_int(cols), rng.uniform(-1, 1));
  return CscMatrix::from_triplets(t);
}

/// Random SPD matrix: A = G G^T + n*I with dense G.
DenseMatrix random_spd(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix g(n, n);
  for (index_t c = 0; c < n; ++c)
    for (index_t r = 0; r < n; ++r) g(r, c) = rng.uniform(-1, 1);
  DenseMatrix a = g.multiply(g.transpose());
  for (index_t i = 0; i < n; ++i) a(i, i) += n;
  return a;
}

TEST(Triplets, DuplicatesAreSummed) {
  TripletMatrix t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(2, 1, 5.0);
  const CscMatrix a = CscMatrix::from_triplets(t);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(Triplets, OutOfRangeThrows) {
  TripletMatrix t(2, 2);
  EXPECT_THROW(t.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(t.add(0, -1, 1.0), std::out_of_range);
}

TEST(Triplets, ConductanceStamp) {
  TripletMatrix t(3, 3);
  t.stamp_conductance(0, 2, 4.0);
  const CscMatrix a = CscMatrix::from_triplets(t);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), -4.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), -4.0);
  // Conductance stamps keep the matrix singular-Laplacian-like: row sums 0.
  const auto ones = std::vector<real_t>(3, 1.0);
  const auto y = a.multiply(ones);
  for (real_t v : y) EXPECT_NEAR(v, 0.0, 1e-15);
}

TEST(Csc, InvariantsHoldOnRandomMatrices) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CscMatrix a = random_sparse(20, 15, 100, seed);
    EXPECT_TRUE(a.check_invariants());
  }
}

TEST(Csc, MultiplyMatchesDense) {
  const CscMatrix a = random_sparse(13, 9, 50, 3);
  const auto d = a.to_dense();
  Rng rng(4);
  std::vector<real_t> x(9);
  for (auto& v : x) v = rng.uniform(-2, 2);
  const auto y = a.multiply(x);
  for (index_t r = 0; r < 13; ++r) {
    real_t want = 0.0;
    for (index_t c = 0; c < 9; ++c)
      want += d[static_cast<std::size_t>(c) * 13 + r] * x[static_cast<std::size_t>(c)];
    EXPECT_NEAR(y[static_cast<std::size_t>(r)], want, 1e-12);
  }
}

TEST(Csc, MultiplyTransposeMatchesTransposedMultiply) {
  const CscMatrix a = random_sparse(11, 7, 40, 5);
  const CscMatrix at = a.transpose();
  Rng rng(6);
  std::vector<real_t> x(11);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<real_t> y1, y2;
  a.multiply_transpose(x, y1);
  at.multiply(x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Csc, TransposeTwiceIsIdentity) {
  const CscMatrix a = random_sparse(8, 12, 35, 7);
  const CscMatrix att = a.transpose().transpose();
  EXPECT_EQ(att.rows(), a.rows());
  EXPECT_EQ(att.cols(), a.cols());
  const auto d1 = a.to_dense(), d2 = att.to_dense();
  for (std::size_t i = 0; i < d1.size(); ++i) EXPECT_DOUBLE_EQ(d1[i], d2[i]);
}

TEST(Csc, IdentityActsAsIdentity) {
  const CscMatrix eye = CscMatrix::identity(6);
  std::vector<real_t> x{1, 2, 3, 4, 5, 6};
  const auto y = eye.multiply(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Csc, PermuteSymmetricPreservesValuesUnderMapping) {
  // Symmetric random matrix.
  TripletMatrix t(5, 5);
  Rng rng(8);
  for (int k = 0; k < 10; ++k) {
    const index_t i = rng.uniform_int(5), j = rng.uniform_int(5);
    const real_t v = rng.uniform(-1, 1);
    t.add_symmetric(i, j, v);
  }
  const CscMatrix a = CscMatrix::from_triplets(t);
  const std::vector<index_t> perm{3, 1, 4, 0, 2};  // new -> old
  const CscMatrix b = a.permute_symmetric(perm);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 5; ++j)
      EXPECT_NEAR(b.at(i, j),
                  a.at(perm[static_cast<std::size_t>(i)],
                       perm[static_cast<std::size_t>(j)]),
                  1e-14);
}

TEST(Csc, ExtractSubmatrix) {
  const CscMatrix a = random_sparse(6, 6, 25, 9);
  const std::vector<index_t> rows{1, 3, 5};
  const std::vector<index_t> cols{0, 2};
  const CscMatrix s = a.extract(rows, cols);
  EXPECT_EQ(s.rows(), 3);
  EXPECT_EQ(s.cols(), 2);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 2; ++j)
      EXPECT_DOUBLE_EQ(s.at(i, j), a.at(rows[static_cast<std::size_t>(i)],
                                        cols[static_cast<std::size_t>(j)]));
}

TEST(Csc, LowerTriangle) {
  const CscMatrix a = random_sparse(7, 7, 30, 10);
  const CscMatrix l = a.lower_triangle(true);
  const CscMatrix ls = a.lower_triangle(false);
  for (index_t c = 0; c < 7; ++c)
    for (index_t r = 0; r < 7; ++r) {
      if (r >= c)
        EXPECT_DOUBLE_EQ(l.at(r, c), a.at(r, c));
      else
        EXPECT_DOUBLE_EQ(l.at(r, c), 0.0);
      if (r > c)
        EXPECT_DOUBLE_EQ(ls.at(r, c), a.at(r, c));
      else
        EXPECT_DOUBLE_EQ(ls.at(r, c), 0.0);
    }
}

TEST(Csc, AddAndSubtract) {
  const CscMatrix a = random_sparse(5, 5, 15, 11);
  const CscMatrix b = random_sparse(5, 5, 15, 12);
  const CscMatrix c = a.add(b, -2.0);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 5; ++j)
      EXPECT_NEAR(c.at(i, j), a.at(i, j) - 2.0 * b.at(i, j), 1e-14);
}

TEST(Csc, IsSymmetricDetects) {
  TripletMatrix t(4, 4);
  t.add_symmetric(0, 1, 2.0);
  t.add_symmetric(2, 3, -1.0);
  t.add(1, 1, 5.0);
  const CscMatrix sym = CscMatrix::from_triplets(t);
  EXPECT_TRUE(sym.is_symmetric(1e-15));

  TripletMatrix t2(4, 4);
  t2.add(0, 1, 2.0);
  const CscMatrix asym = CscMatrix::from_triplets(t2);
  EXPECT_FALSE(asym.is_symmetric(1e-15));
}

TEST(Csc, DropSmallKeepsDiagonal) {
  TripletMatrix t(3, 3);
  t.add(0, 0, 1e-8);
  t.add(1, 0, 0.5);
  t.add(2, 0, 1e-9);
  const CscMatrix a = CscMatrix::from_triplets(t);
  const CscMatrix d = a.drop_small(1e-6, true);
  EXPECT_DOUBLE_EQ(d.at(0, 0), 1e-8);   // diagonal kept
  EXPECT_DOUBLE_EQ(d.at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(d.at(2, 0), 0.0);    // dropped
}

TEST(Csc, FromDenseRoundTrip) {
  const CscMatrix a = random_sparse(9, 4, 20, 13);
  const CscMatrix b = CscMatrix::from_dense(9, 4, a.to_dense());
  const auto d1 = a.to_dense(), d2 = b.to_dense();
  for (std::size_t i = 0; i < d1.size(); ++i) EXPECT_DOUBLE_EQ(d1[i], d2[i]);
}

TEST(Dense, CholeskySolveMatchesGeneralSolve) {
  const index_t n = 12;
  const DenseMatrix a = random_spd(n, 14);
  Rng rng(15);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1, 1);

  DenseMatrix f = a;
  ASSERT_TRUE(f.cholesky_in_place());
  std::vector<real_t> x1 = b;
  f.cholesky_solve(x1);

  std::vector<real_t> x2 = b;
  ASSERT_TRUE(DenseMatrix::solve_general(a, x2));
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x1[static_cast<std::size_t>(i)], x2[static_cast<std::size_t>(i)],
                1e-9);
}

TEST(Dense, CholeskyFailsOnIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_FALSE(a.cholesky_in_place());
}

TEST(Dense, SpdInverseTimesMatrixIsIdentity) {
  const index_t n = 8;
  const DenseMatrix a = random_spd(n, 16);
  const DenseMatrix inv = a.spd_inverse();
  const DenseMatrix prod = a.multiply(inv);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-8);
}

TEST(Dense, PseudoInverseOfSingularLaplacian) {
  // Laplacian of a triangle graph with unit weights.
  DenseMatrix l(3, 3);
  for (index_t i = 0; i < 3; ++i) l(i, i) = 2.0;
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j)
      if (i != j) l(i, j) = -1.0;
  const DenseMatrix p = l.symmetric_pseudo_inverse();
  // L * L+ * L == L (Moore-Penrose property 1).
  const DenseMatrix llpl = l.multiply(p).multiply(l);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j) EXPECT_NEAR(llpl(i, j), l(i, j), 1e-8);
  // Effective resistance across any edge of a unit triangle is 2/3.
  const real_t r01 = p(0, 0) + p(1, 1) - 2 * p(0, 1);
  EXPECT_NEAR(r01, 2.0 / 3.0, 1e-9);
}

TEST(SparseVector, NormsAndLookup) {
  SparseVector v;
  v.idx = {1, 4, 7};
  v.val = {1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(v.norm1(), 6.0);
  EXPECT_DOUBLE_EQ(v.norm2_squared(), 14.0);
  EXPECT_DOUBLE_EQ(v.at(4), -2.0);
  EXPECT_DOUBLE_EQ(v.at(5), 0.0);
}

TEST(SparseVector, DistanceSquaredMatchesDense) {
  SparseVector a, b;
  a.idx = {0, 2, 5};
  a.val = {1.0, 2.0, 3.0};
  b.idx = {2, 3, 5};
  b.val = {1.0, -1.0, 3.0};
  // dense: a = [1,0,2,0,0,3], b = [0,0,1,-1,0,3]
  // diff = [1,0,1,1,0,0] -> 3
  EXPECT_DOUBLE_EQ(distance_squared(a, b), 3.0);
  EXPECT_DOUBLE_EQ(distance_1norm(a, b), 3.0);
}

TEST(SparseVector, AddScaled) {
  SparseVector a, b;
  a.idx = {0, 3};
  a.val = {1.0, 2.0};
  b.idx = {1, 3};
  b.val = {4.0, -1.0};
  const SparseVector c = add_scaled(a, 2.0, b);
  EXPECT_DOUBLE_EQ(c.at(0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(1), 8.0);
  EXPECT_DOUBLE_EQ(c.at(3), 0.0);
}

TEST(VectorOps, DotNormAxpy) {
  std::vector<real_t> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm1(a), 6.0);
  EXPECT_DOUBLE_EQ(norm2(a), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(norm_inf(b), 6.0);
  axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
}

}  // namespace
}  // namespace er
