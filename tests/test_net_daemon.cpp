// In-process daemon integration tests (DESIGN.md §8): a real Server over
// loopback TCP, driven by LoopbackClient threads, answered through a full
// ServingStack. Pins the tentpole contracts:
//   * wire answers are bitwise-equal to direct QueryFrontEnd calls on the
//     same pinned snapshot versions, at 1/2/4/8 concurrent client threads
//     while a modification feed churns publishes (runs under TSan in CI);
//   * graceful shutdown drains every admitted request — exactly one
//     response each, none lost, none duplicated;
//   * admission overflow and mod-feed back-pressure answer kRetryLater,
//     and er_net_rejected_total matches the client-observed rejections;
//   * malformed frames get clean errors and never take the daemon down;
//   * GET /metrics serves the er_net_* families over HTTP.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/stack.hpp"
#include "obs/metrics.hpp"
#include "serve_test_util.hpp"

namespace er {
namespace {

using net::LoopbackClient;
using net::Opcode;
using net::Server;
using net::ServerOptions;
using net::ServingStack;
using net::StackOptions;
using net::WireModification;

constexpr char kHost[] = "127.0.0.1";

StackOptions test_stack_options() {
  StackOptions opts;
  opts.reduction.num_blocks = 12;
  opts.reduction.sparsify_quality = 1.0;
  return opts;
}

/// One in-process daemon: its own registry, stack, and server, plus the
/// fixture grid it serves.
struct Daemon {
  explicit Daemon(ServerOptions server_opts, StackOptions stack_opts,
                  bool with_mod_feed = true)
      : fixture(make_case(20, 20, 12, 5)),
        stack(fixture.net, fixture.ports, stack_opts, &registry) {
    server_opts.registry = &registry;
    server = std::make_unique<Server>(&stack.store(), server_opts,
                                      with_mod_feed ? stack.mod_fn()
                                                    : Server::ModFn{});
    EXPECT_TRUE(server->start());
  }
  ~Daemon() { server->stop(); }

  obs::MetricsRegistry registry;
  ServeCase fixture;
  ServingStack stack;
  std::unique_ptr<Server> server;
};

std::unique_ptr<Daemon> make_daemon(int dispatchers = 2,
                                    std::size_t capacity = 64) {
  ServerOptions opts;
  opts.dispatcher_threads = dispatchers;
  opts.query_threads = 2;
  opts.admission_capacity = capacity;
  return std::make_unique<Daemon>(opts, test_stack_options());
}

void expect_bitwise_equal(const std::vector<real_t>& got,
                          const std::vector<real_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        want.size() * sizeof(real_t)),
            0);
}

TEST(NetDaemon, AnswersMatchDirectCalls) {
  auto d = make_daemon();
  const auto kept = kept_originals(d->stack.reducer().model());
  const auto batch = mixed_batch(kept, 16, 33);

  BatchStats direct_stats;
  const std::vector<real_t> direct = d->stack.frontend().answer(
      batch, nullptr, RouteMode::kSharded, &direct_stats);

  LoopbackClient client(kHost, d->server->port());
  const auto result = client.query(batch, RouteMode::kSharded);
  EXPECT_FALSE(result.retry_later);
  EXPECT_EQ(result.snapshot_version, direct_stats.snapshot_version);
  expect_bitwise_equal(result.answers, direct);

  // The monolithic route answers over the same wire too.
  const std::vector<real_t> direct_mono =
      d->stack.frontend().answer(batch, nullptr, RouteMode::kMonolithic);
  const auto mono = client.query(batch, RouteMode::kMonolithic);
  expect_bitwise_equal(mono.answers, direct_mono);
}

TEST(NetDaemon, PortResponseOpcodeForcesResponseKind) {
  auto d = make_daemon();
  const auto kept = kept_originals(d->stack.reducer().model());
  auto batch = mixed_batch(kept, 10, 34);
  for (PortQuery& q : batch) q.kind = QueryKind::kResistance;

  auto forced = batch;
  for (PortQuery& q : forced) q.kind = QueryKind::kResponse;
  const std::vector<real_t> direct =
      d->stack.frontend().answer(forced, nullptr, RouteMode::kSharded);

  LoopbackClient client(kHost, d->server->port());
  const auto result =
      client.query(batch, RouteMode::kSharded, Opcode::kPortResponse);
  expect_bitwise_equal(result.answers, direct);
}

TEST(NetDaemon, StatsReplySanity) {
  auto d = make_daemon();
  LoopbackClient client(kHost, d->server->port());
  const auto kept = kept_originals(d->stack.reducer().model());
  (void)client.query(mixed_batch(kept, 4, 35));

  const net::StatsReply s = client.stats();
  EXPECT_TRUE(s.has_version);
  EXPECT_GE(s.publishes, 1u);  // the initial attach publish
  EXPECT_EQ(s.connections_accepted, 1u);
  EXPECT_EQ(s.requests_admitted, 1u);
  EXPECT_EQ(s.retry_later_sent, 0u);
  EXPECT_FALSE(s.draining);
}

TEST(NetDaemon, UnknownOpcodeKeepsConnection) {
  auto d = make_daemon();
  LoopbackClient client(kHost, d->server->port());
  const std::uint64_t id = client.send(static_cast<Opcode>(55), {});
  const net::Frame reply = client.recv_frame();
  EXPECT_EQ(reply.request_id, id);
  ASSERT_EQ(static_cast<Opcode>(reply.opcode), Opcode::kError);
  net::ErrorReply err;
  ASSERT_TRUE(net::decode_error(reply.payload, &err));
  EXPECT_EQ(err.code, net::ErrorCode::kUnknownOpcode);

  // The stream is still framed: a real request on the same connection.
  const auto kept = kept_originals(d->stack.reducer().model());
  const auto result = client.query(mixed_batch(kept, 4, 36));
  EXPECT_EQ(result.answers.size(), 4u);
}

TEST(NetDaemon, NoModelAndNoModFeedAnswerTypedErrors) {
  // A server over an empty store, without a modification sink.
  obs::MetricsRegistry registry;
  ModelStore store(&registry);
  ServerOptions opts;
  opts.registry = &registry;
  opts.enable_http = false;
  Server server(&store, opts);
  ASSERT_TRUE(server.start());

  LoopbackClient client(kHost, server.port());
  std::vector<PortQuery> batch(1);
  EXPECT_THROW((void)client.query(batch), std::runtime_error);  // kNoModel

  WireModification mod;
  mod.dirty_blocks = {0};
  EXPECT_THROW((void)client.submit_mod(mod),
               std::runtime_error);  // kModFeedDisabled
  server.stop();
}

// The tentpole determinism contract: N client threads hammer the daemon
// while a feed churns modifications through the incremental-update
// pipeline. Every wire answer carries the snapshot version it was
// answered on; after the run, each recorded answer must be bitwise-equal
// to a direct (no-network) evaluation of the same batch on a reference
// pipeline advanced to the same number of reflected modifications.
TEST(NetDaemon, ConcurrentClientsBitwiseEqualUnderChurn) {
  constexpr int kMods = 5;
  constexpr int kQueriesPerClient = 6;
  const StackOptions stack_opts = test_stack_options();

  // Reference answers ref[m]: the fixed batch evaluated after mods 0..m-1
  // (sequential, synchronous — no coalescing, no concurrency).
  const ServeCase fixture = make_case(20, 20, 12, 5);
  std::vector<std::vector<real_t>> ref;
  ModStream stream;
  std::vector<PortQuery> batch;
  {
    obs::MetricsRegistry ref_registry;
    ModelStore ref_store(&ref_registry);
    IncrementalReducer ref_reducer(fixture.net, fixture.ports,
                                   stack_opts.reduction);
    ref_reducer.attach_store(&ref_store, stack_opts.serving);
    QueryFrontEnd ref_frontend(&ref_store, &ref_registry);
    batch = mixed_batch(kept_originals(ref_reducer.model()), 12, 44);
    stream = make_mod_stream(fixture.net, ref_reducer.structure(), kMods,
                             0.25, 1.2, 77);
    ref.push_back(ref_frontend.answer(batch));
    for (int u = 0; u < kMods; ++u) {
      ref_reducer.update(stream.nets[static_cast<std::size_t>(u)],
                         stream.mods[static_cast<std::size_t>(u)].dirty_blocks);
      ref.push_back(ref_frontend.answer(batch));
    }
  }

  for (const int clients : {1, 2, 4, 8}) {
    SCOPED_TRACE("clients=" + std::to_string(clients));
    auto d = make_daemon();

    struct Record {
      std::uint64_t version;
      std::vector<real_t> answers;
    };
    std::vector<std::vector<Record>> records(
        static_cast<std::size_t>(clients));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        LoopbackClient client(kHost, d->server->port());
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const auto result = client.query(batch, RouteMode::kSharded);
          ASSERT_FALSE(result.retry_later);
          records[static_cast<std::size_t>(c)].push_back(
              {result.snapshot_version, result.answers});
        }
      });
    }

    // The churn feed, interleaved with the query traffic. Back-pressure
    // (kRetryLater) is legal here — resubmit until accepted, preserving
    // the cumulative order.
    LoopbackClient feeder(kHost, d->server->port());
    for (int u = 0; u < kMods; ++u) {
      WireModification mod;
      mod.dirty_blocks = stream.mods[static_cast<std::size_t>(u)].dirty_blocks;
      mod.resistance_scale =
          stream.mods[static_cast<std::size_t>(u)].resistance_scale;
      while (feeder.submit_mod(mod) == LoopbackClient::ModOutcome::kRetryLater)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    for (std::thread& t : threads) t.join();
    d->stack.flush();  // converges mods_reflected bookkeeping

    for (const auto& client_records : records) {
      ASSERT_EQ(client_records.size(),
                static_cast<std::size_t>(kQueriesPerClient));
      for (const Record& r : client_records) {
        const std::uint64_t m = d->stack.updater().mods_reflected(r.version);
        ASSERT_LE(m, static_cast<std::uint64_t>(kMods));
        SCOPED_TRACE("version=" + std::to_string(r.version) +
                     " mods_reflected=" + std::to_string(m));
        expect_bitwise_equal(r.answers, ref[static_cast<std::size_t>(m)]);
      }
    }
    // Every accepted modification ended up applied (none lost to the
    // drain) and the final model reflects the whole stream.
    EXPECT_EQ(d->stack.mods_accepted(), static_cast<std::uint64_t>(kMods));
    const auto last = d->stack.store().current_version();
    ASSERT_TRUE(last.has_value());
    EXPECT_EQ(d->stack.updater().mods_reflected(*last),
              static_cast<std::uint64_t>(kMods));
  }
}

TEST(NetDaemon, GracefulShutdownDrainsAdmittedRequests) {
  constexpr int kPipelined = 4;
  auto d = make_daemon(/*dispatchers=*/2, /*capacity=*/16);
  const auto kept = kept_originals(d->stack.reducer().model());
  const auto batch = mixed_batch(kept, 8, 55);
  const std::vector<real_t> direct =
      d->stack.frontend().answer(batch, nullptr, RouteMode::kSharded);

  LoopbackClient client(kHost, d->server->port());
  // Gate the dispatchers, pipeline a burst, then stop() mid-batch: the
  // drain must answer every admitted request exactly once.
  d->server->pause_dispatch();
  std::vector<std::uint64_t> ids;
  const auto payload = net::encode_query_batch({RouteMode::kSharded, batch});
  for (int i = 0; i < kPipelined; ++i)
    ids.push_back(client.send(Opcode::kErBatch, payload));
  // All admitted (well under capacity) before the drain starts.
  while (client.stats().queue_depth <
         static_cast<std::uint32_t>(kPipelined))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::thread stopper([&] { d->server->stop(); });
  std::vector<bool> answered(ids.size(), false);
  for (int i = 0; i < kPipelined; ++i) {
    const net::Frame reply = client.recv_frame();
    ASSERT_EQ(static_cast<Opcode>(reply.opcode), Opcode::kAnswer);
    auto it = std::find(ids.begin(), ids.end(), reply.request_id);
    ASSERT_NE(it, ids.end());
    const auto idx = static_cast<std::size_t>(it - ids.begin());
    EXPECT_FALSE(answered[idx]) << "duplicate response";
    answered[idx] = true;
    net::AnswerReply ans;
    ASSERT_TRUE(net::decode_answer(reply.payload, &ans));
    expect_bitwise_equal(ans.answers, direct);
  }
  stopper.join();
  // After the drain the server hangs up — no further frames, no garbage.
  EXPECT_THROW((void)client.recv_frame(2000), std::runtime_error);
}

TEST(NetDaemon, AdmissionOverflowAnswersRetryLater) {
  constexpr std::size_t kCapacity = 2;
  constexpr int kBurst = 5;
  auto d = make_daemon(/*dispatchers=*/1, kCapacity);
  const auto kept = kept_originals(d->stack.reducer().model());
  const auto batch = mixed_batch(kept, 6, 66);

  LoopbackClient client(kHost, d->server->port());
  d->server->pause_dispatch();
  const auto payload = net::encode_query_batch({RouteMode::kSharded, batch});
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kBurst; ++i)
    ids.push_back(client.send(Opcode::kErBatch, payload));

  // With dispatch gated, exactly kCapacity requests are admitted; the
  // overflow answers kRetryLater immediately, in request order.
  int retries = 0, answers = 0;
  for (int i = 0; i < kBurst - static_cast<int>(kCapacity); ++i) {
    const net::Frame reply = client.recv_frame();
    ASSERT_EQ(static_cast<Opcode>(reply.opcode), Opcode::kRetryLater);
    EXPECT_EQ(reply.request_id, ids[kCapacity + static_cast<std::size_t>(i)]);
    ++retries;
  }
  d->server->resume_dispatch();
  for (std::size_t i = 0; i < kCapacity; ++i) {
    const net::Frame reply = client.recv_frame();
    ASSERT_EQ(static_cast<Opcode>(reply.opcode), Opcode::kAnswer);
    EXPECT_EQ(reply.request_id, ids[i]);
    ++answers;
  }
  EXPECT_EQ(retries, kBurst - static_cast<int>(kCapacity));
  EXPECT_EQ(answers, static_cast<int>(kCapacity));

  // The counter invariant: er_net_rejected_total == client-observed
  // kRetryLater frames, by construction of send_retry_later.
  EXPECT_EQ(client.stats().retry_later_sent,
            static_cast<std::uint64_t>(retries));
  const auto snap = d->registry.snapshot();
  const auto* rejected = snap.find("er_net_rejected_total");
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->counter, static_cast<std::uint64_t>(retries));
}

TEST(NetDaemon, ModFeedBackPressureAnswersRetryLater) {
  StackOptions stack_opts = test_stack_options();
  stack_opts.staleness_bound = 1;
  stack_opts.fail_fast = true;
  ServerOptions server_opts;
  server_opts.dispatcher_threads = 1;
  auto d = std::make_unique<Daemon>(server_opts, stack_opts);

  LoopbackClient client(kHost, d->server->port());
  WireModification mod;
  mod.resistance_scale = 1.1;

  // Hold the update worker: the first modification coalesces into the
  // pending slot (staleness 1 <= bound), the second trips fail_fast.
  d->stack.updater().pause();
  mod.dirty_blocks = {0};
  EXPECT_EQ(client.submit_mod(mod), LoopbackClient::ModOutcome::kAccepted);
  mod.dirty_blocks = {1};
  EXPECT_EQ(client.submit_mod(mod), LoopbackClient::ModOutcome::kRetryLater);
  EXPECT_EQ(client.stats().retry_later_sent, 1u);

  // flush() implies resume; the rejected edit goes through on resubmit.
  d->stack.flush();
  EXPECT_EQ(client.submit_mod(mod), LoopbackClient::ModOutcome::kAccepted);
  d->stack.flush();
  EXPECT_EQ(client.stats().mods_applied, 2u);
  EXPECT_EQ(d->stack.mods_accepted(), 2u);
}

TEST(NetDaemon, OutOfRangeBlockIdAnswersBadPayload) {
  auto d = make_daemon();
  LoopbackClient client(kHost, d->server->port());
  WireModification mod;
  mod.dirty_blocks = {100000};  // far beyond structure().num_blocks
  try {
    (void)client.submit_mod(mod);
    FAIL() << "expected a server error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
  // Semantic rejection is per-request: the connection still serves.
  const auto kept = kept_originals(d->stack.reducer().model());
  EXPECT_EQ(client.query(mixed_batch(kept, 4, 67)).answers.size(), 4u);
}

TEST(NetDaemon, MalformedFramesRejectedAndServerSurvives) {
  auto d = make_daemon();
  const auto kept = kept_originals(d->stack.reducer().model());

  {  // Not this protocol at all: bad magic closes the connection.
    LoopbackClient bad(kHost, d->server->port());
    const char garbage[] = "GET /metrics HTTP/1.0\r\n\r\n";
    bad.send_raw(garbage, sizeof(garbage) - 1);
    const net::Frame reply = bad.recv_frame();
    ASSERT_EQ(static_cast<Opcode>(reply.opcode), Opcode::kError);
    net::ErrorReply err;
    ASSERT_TRUE(net::decode_error(reply.payload, &err));
    EXPECT_EQ(err.code, net::ErrorCode::kBadFrame);
    EXPECT_THROW((void)bad.recv_frame(2000), std::runtime_error);  // hangup
  }
  {  // Corrupted payload fails the CRC; connection closed.
    LoopbackClient bad(kHost, d->server->port());
    auto wire = net::encode_frame(Opcode::kErBatch, 7,
                                  net::encode_query_batch(
                                      {RouteMode::kSharded,
                                       mixed_batch(kept, 4, 68)}));
    wire[net::kHeaderBytes + 2] ^= 0x40;
    bad.send_raw(wire.data(), wire.size());
    const net::Frame reply = bad.recv_frame();
    ASSERT_EQ(static_cast<Opcode>(reply.opcode), Opcode::kError);
    EXPECT_THROW((void)bad.recv_frame(2000), std::runtime_error);
  }
  {  // Oversized declared length is rejected from the header alone.
    LoopbackClient bad(kHost, d->server->port());
    auto wire = net::encode_frame(Opcode::kErBatch, 8, {});
    const std::uint32_t huge = net::kMaxPayloadBytes + 1;
    for (int i = 0; i < 4; ++i)
      wire[16 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(huge >> (8 * i));
    bad.send_raw(wire.data(), net::kHeaderBytes);
    const net::Frame reply = bad.recv_frame();
    ASSERT_EQ(static_cast<Opcode>(reply.opcode), Opcode::kError);
    EXPECT_THROW((void)bad.recv_frame(2000), std::runtime_error);
  }
  {  // A well-framed but empty batch: per-request error, connection kept.
    LoopbackClient client(kHost, d->server->port());
    std::vector<std::uint8_t> payload;
    payload.push_back(0);                       // route kSharded
    for (int i = 0; i < 4; ++i) payload.push_back(0);  // count = 0
    const std::uint64_t id = client.send(Opcode::kErBatch, payload);
    const net::Frame reply = client.recv_frame();
    EXPECT_EQ(reply.request_id, id);
    ASSERT_EQ(static_cast<Opcode>(reply.opcode), Opcode::kError);
    net::ErrorReply err;
    ASSERT_TRUE(net::decode_error(reply.payload, &err));
    EXPECT_EQ(err.code, net::ErrorCode::kBadPayload);
    EXPECT_EQ(client.query(mixed_batch(kept, 4, 69)).answers.size(), 4u);
  }

  // Through all of it the daemon keeps serving fresh connections, and the
  // framing violations were counted.
  LoopbackClient survivor(kHost, d->server->port());
  EXPECT_EQ(survivor.query(mixed_batch(kept, 4, 70)).answers.size(), 4u);
  EXPECT_GE(survivor.stats().bad_frames, 3u);
}

TEST(NetDaemon, SlowLorisPartialWritesStillAnswered) {
  auto d = make_daemon();
  const auto kept = kept_originals(d->stack.reducer().model());
  const auto batch = mixed_batch(kept, 6, 71);
  const std::vector<real_t> direct =
      d->stack.frontend().answer(batch, nullptr, RouteMode::kSharded);

  LoopbackClient client(kHost, d->server->port());
  const auto wire = net::encode_frame(
      Opcode::kErBatch, 42,
      net::encode_query_batch({RouteMode::kSharded, batch}));
  for (std::size_t off = 0; off < wire.size(); off += 3) {
    const std::size_t n = std::min<std::size_t>(3, wire.size() - off);
    client.send_raw(wire.data() + off, n);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const net::Frame reply = client.recv_frame();
  EXPECT_EQ(reply.request_id, 42u);
  ASSERT_EQ(static_cast<Opcode>(reply.opcode), Opcode::kAnswer);
  net::AnswerReply ans;
  ASSERT_TRUE(net::decode_answer(reply.payload, &ans));
  expect_bitwise_equal(ans.answers, direct);
}

TEST(NetDaemon, ConnectionCapRefusesExtraClients) {
  ServerOptions opts;
  opts.max_connections = 1;
  auto d = std::make_unique<Daemon>(opts, test_stack_options());
  const auto kept = kept_originals(d->stack.reducer().model());

  LoopbackClient first(kHost, d->server->port());
  (void)first.query(mixed_batch(kept, 4, 72));  // session is registered

  // The second connection is refused by hangup: connect succeeds, the
  // first read sees EOF.
  LoopbackClient second(kHost, d->server->port());
  EXPECT_THROW((void)second.query(mixed_batch(kept, 4, 73)),
               std::runtime_error);
  EXPECT_EQ(first.stats().connections_rejected, 1u);
  EXPECT_EQ(first.stats().connections_accepted, 1u);
}

TEST(NetDaemon, HttpMetricsEndpoint) {
  auto d = make_daemon();
  LoopbackClient client(kHost, d->server->port());
  const auto kept = kept_originals(d->stack.reducer().model());
  (void)client.query(mixed_batch(kept, 4, 74));  // some traffic to export

  auto http_get = [&](const std::string& path) {
    net::Fd fd = net::connect_tcp(kHost, d->server->http_port());
    EXPECT_TRUE(fd.valid());
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    EXPECT_TRUE(net::send_all(fd.get(), request.data(), request.size()));
    std::string response;
    char chunk[4096];
    for (;;) {
      const long n = net::recv_some(fd.get(), chunk, sizeof(chunk), 5000);
      if (n <= 0) break;
      response.append(chunk, static_cast<std::size_t>(n));
    }
    return response;
  };

  const std::string metrics = http_get("/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("er_net_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("er_net_active_connections"), std::string::npos);
  EXPECT_NE(metrics.find("er_net_request_latency_seconds_bucket"),
            std::string::npos);

  EXPECT_NE(http_get("/nope").find("404"), std::string::npos);
}

}  // namespace
}  // namespace er
