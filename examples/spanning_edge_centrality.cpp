// Graph-data-mining example: spanning edge centrality.
//
// The spanning edge centrality of edge e equals w_e * R(e) — the
// probability that e appears in a uniformly random spanning tree. This is
// the workload of the paper's baseline reference [1] (WWW'15). Alg. 3 makes
// it cheap on large graphs: here we rank every edge of a social-network
// style graph and print the most and least central ones.
//
//   ./examples/spanning_edge_centrality
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "effres/approx_chol.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace er;

  const Graph g = barabasi_albert(20000, 3, WeightKind::kUnit, 11);
  std::printf("social-like graph: %d nodes, %zu edges\n", g.num_nodes(),
              g.num_edges());

  Timer t;
  const ApproxCholEffRes engine(g, {});
  std::vector<real_t> centrality(g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edges()[e];
    centrality[e] = ed.weight * engine.resistance(ed.u, ed.v);
  }
  std::printf("all-edge centralities computed in %.2fs (Alg. 3)\n\n",
              t.seconds());

  // Sanity: centralities are leverage scores in [0, 1] and sum to ~n-1.
  const double total =
      std::accumulate(centrality.begin(), centrality.end(), 0.0);
  std::printf("sum of centralities = %.1f (theory: n-1 = %d)\n\n", total,
              g.num_nodes() - 1);

  std::vector<std::size_t> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return centrality[a] > centrality[b];
  });

  TablePrinter top({"rank", "edge", "centrality", "deg(u)", "deg(v)"});
  for (int r = 0; r < 5; ++r) {
    const Edge& ed = g.edges()[order[static_cast<std::size_t>(r)]];
    top.add_row({std::to_string(r + 1),
                 std::to_string(ed.u) + "-" + std::to_string(ed.v),
                 TablePrinter::fmt(centrality[order[static_cast<std::size_t>(r)]], 4),
                 std::to_string(g.degree(ed.u)), std::to_string(g.degree(ed.v))});
  }
  std::printf("most central edges (bridge-like, near leverage 1):\n");
  top.print();

  TablePrinter bottom({"rank", "edge", "centrality", "deg(u)", "deg(v)"});
  for (int r = 0; r < 5; ++r) {
    const std::size_t idx = order[g.num_edges() - 1 - static_cast<std::size_t>(r)];
    const Edge& ed = g.edges()[idx];
    bottom.add_row({std::to_string(static_cast<int>(g.num_edges()) - r),
                    std::to_string(ed.u) + "-" + std::to_string(ed.v),
                    TablePrinter::fmt(centrality[idx], 4),
                    std::to_string(g.degree(ed.u)),
                    std::to_string(g.degree(ed.v))});
  }
  std::printf("\nleast central edges (dense neighbourhoods):\n");
  bottom.print();
  return 0;
}
