// Spectral graph sparsification example (Spielman–Srivastava [4] with
// Alg. 3 effective resistances).
//
// Sparsifies a dense-ish graph by effective-resistance sampling and checks
// how well the sparsifier preserves (a) Laplacian quadratic forms on random
// vectors and (b) effective resistances between probe pairs.
//
//   ./examples/graph_sparsification
#include <cstdio>

#include "effres/approx_chol.hpp"
#include "effres/exact.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "reduction/sparsify.hpp"
#include "sparse/dense.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace er;

  // A dense small-world graph: many redundant edges, prime sparsification
  // target.
  const Graph g = watts_strogatz(4000, 8, 0.2, WeightKind::kUniform, 5);
  std::printf("input: %d nodes, %zu edges (avg degree %.1f)\n", g.num_nodes(),
              g.num_edges(),
              2.0 * static_cast<double>(g.num_edges()) / g.num_nodes());

  // Leverage scores through Alg. 3.
  const ApproxCholEffRes engine(g, {});
  std::vector<real_t> edge_er;
  edge_er.reserve(g.num_edges());
  for (const auto& e : g.edges())
    edge_er.push_back(engine.resistance(e.u, e.v));

  TablePrinter table({"quality q", "edges kept", "ratio", "quad-form err",
                      "ER err (probes)"});
  Rng rng(9);
  const CscMatrix lg = laplacian(g);
  const ExactEffRes exact_before(g);

  for (real_t quality : {0.5, 1.0, 2.0, 4.0}) {
    SparsifyOptions opts;
    opts.quality = quality;
    const Graph h = sparsify_by_effective_resistance(g, edge_er, opts);
    const CscMatrix lh = laplacian(h);

    // Quadratic-form distortion on random vectors.
    double worst = 0.0;
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<real_t> x(static_cast<std::size_t>(g.num_nodes()));
      for (auto& v : x) v = rng.uniform(-1, 1);
      const double qg = dot(x, lg.multiply(x));
      const double qh = dot(x, lh.multiply(x));
      worst = std::max(worst, std::abs(qh / qg - 1.0));
    }

    // ER distortion on probe pairs.
    const ExactEffRes exact_after(h);
    double er_err = 0.0;
    for (int trial = 0; trial < 20; ++trial) {
      const index_t p = rng.uniform_int(g.num_nodes());
      index_t q = rng.uniform_int(g.num_nodes());
      if (q == p) q = (q + 1) % g.num_nodes();
      const real_t r0 = exact_before.resistance(p, q);
      const real_t r1 = exact_after.resistance(p, q);
      er_err = std::max(er_err, static_cast<double>(std::abs(r1 / r0 - 1.0)));
    }

    table.add_row({TablePrinter::fmt(quality, 1),
                   std::to_string(h.num_edges()),
                   TablePrinter::fmt(static_cast<double>(h.num_edges()) /
                                         static_cast<double>(g.num_edges()),
                                     2),
                   TablePrinter::fmt(worst, 3), TablePrinter::fmt(er_err, 3)});
  }

  std::printf("\nsparsification quality sweep "
              "(still connected, distortion shrinks as q grows):\n\n");
  table.print();
  return 0;
}
