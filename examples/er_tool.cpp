// er_tool — command-line effective-resistance calculator.
//
// Usage:
//   er_tool <edge-list-file> [p q]...
//   er_tool --demo
//
// The edge-list file has one "u v [weight]" triple per line (0-based node
// ids, '#' comments). With node pairs given, prints R(p,q) for each pair;
// without, prints the five highest spanning-edge-centrality edges.
// --demo runs on a built-in example graph.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "effres/approx_chol.hpp"
#include "effres/centrality.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"

namespace {

er::Graph read_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<std::tuple<er::index_t, er::index_t, er::real_t>> edges;
  er::index_t max_node = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    long long u = 0, v = 0;
    double w = 1.0;
    if (!(ls >> u >> v)) continue;
    ls >> w;
    edges.emplace_back(static_cast<er::index_t>(u),
                       static_cast<er::index_t>(v),
                       static_cast<er::real_t>(w));
    max_node = std::max(max_node,
                        static_cast<er::index_t>(std::max(u, v)));
  }
  er::Graph g(max_node + 1);
  for (const auto& [u, v, w] : edges)
    if (u != v) g.add_edge(u, v, w);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace er;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <edge-list> [p q]... | --demo\n", argv[0]);
    return 1;
  }

  Graph g = std::string(argv[1]) == "--demo"
                ? grid_2d(32, 32, WeightKind::kUniform, 1)
                : read_edge_list(argv[1]);
  if (!is_connected(g))
    std::fprintf(stderr,
                 "note: graph is disconnected; resistances across "
                 "components are not defined\n");

  std::printf("graph: %d nodes, %zu edges\n", g.num_nodes(), g.num_edges());
  const ApproxCholEffRes engine(g, {});
  std::printf("index built: nnz(Z)=%lld, dpt=%d, %.3fs\n",
              static_cast<long long>(engine.stats().inverse_nnz),
              engine.stats().max_depth,
              engine.stats().factor_seconds + engine.stats().inverse_seconds);

  if (argc > 2 && std::string(argv[1]) != "--demo") {
    for (int a = 2; a + 1 < argc; a += 2) {
      const auto p = static_cast<index_t>(std::atoll(argv[a]));
      const auto q = static_cast<index_t>(std::atoll(argv[a + 1]));
      std::printf("R(%d, %d) = %.9g\n", p, q, engine.resistance(p, q));
    }
    return 0;
  }

  const auto centrality = spanning_edge_centralities(g, engine);
  const auto top = top_k_central_edges(centrality, 5);
  std::printf("\ntop spanning-edge-centrality edges:\n");
  for (index_t e : top) {
    const Edge& ed = g.edges()[static_cast<std::size_t>(e)];
    std::printf("  %d - %d  (w=%.3g, centrality=%.4f)\n", ed.u, ed.v,
                ed.weight, centrality[static_cast<std::size_t>(e)]);
  }
  return 0;
}
