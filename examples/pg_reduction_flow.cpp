// Power-grid reduction flow (Alg. 1 end to end):
// generate an IBM-like grid, write/read it as a SPICE-subset netlist,
// reduce it with all three effective-resistance backends, and compare the
// DC solutions at the ports.
//
//   ./examples/pg_reduction_flow
#include <cstdio>

#include "pg/analysis.hpp"
#include "pg/generator.hpp"
#include "pg/netlist.hpp"
#include "util/table.hpp"

int main() {
  using namespace er;

  PgGeneratorOptions gopts;
  gopts.nx = 48;
  gopts.ny = 48;
  gopts.layers = 3;
  gopts.pads_per_side = 3;
  gopts.seed = 3;
  const PowerGrid pg = generate_power_grid(gopts);

  // Netlist round trip — the same files work with external SPICE tooling.
  write_netlist_file(pg, "example_grid.sp");
  const PowerGrid loaded = read_netlist_file("example_grid.sp");
  std::printf("grid: %d nodes, %zu resistors, %zu pads, %zu loads "
              "(netlist round-trip ok: %s)\n\n",
              pg.num_nodes, pg.resistors.size(), pg.pads.size(),
              pg.loads.size(),
              loaded.num_nodes == pg.num_nodes ? "yes" : "NO");

  const ConductanceNetwork net = pg.to_network();
  const auto j = pg.load_vector(0.0);
  const DcSolution full = solve_dc(net, j);
  double max_drop = 0.0;
  for (real_t d : full.drops) max_drop = std::max(max_drop, std::abs(d));
  std::printf("full-grid DC: worst IR drop %.2f mV (factor %.3fs)\n\n",
              max_drop * 1e3, full.factor_seconds);

  TablePrinter table({"ER backend", "nodes", "edges", "T_red (s)",
                      "port err (mV)", "rel (%)"});
  for (ErBackend backend : {ErBackend::kExact, ErBackend::kRandomProjection,
                            ErBackend::kApproxChol}) {
    ReductionOptions ropts;
    ropts.backend = backend;
    ropts.sparsify_quality = 4.0;
    ropts.merge_threshold = 0.02;
    const ReducedModel m = reduce_network(net, pg.port_mask(), ropts);
    const DcSolution red = solve_dc(m.network, map_injections(m, j));
    const SolutionError err = compare_dc(full.drops, red, m, pg.port_nodes());
    table.add_row({to_string(backend), std::to_string(m.stats.reduced_nodes),
                   std::to_string(m.stats.reduced_edges),
                   TablePrinter::fmt(m.stats.total_seconds, 3),
                   TablePrinter::fmt(err.err_volts * 1e3, 3),
                   TablePrinter::fmt(err.rel * 1e2, 2)});
  }
  table.print();

  std::printf("\nAlg. 3 reduces as accurately as exact effective "
              "resistances, at a fraction of the reduction time.\n");
  return 0;
}
