// Transient power-grid simulation on original vs reduced model, writing
// waveforms to CSV (the Fig. 1 workflow as a library example).
//
//   ./examples/transient_waveforms
#include <algorithm>
#include <cstdio>

#include "pg/analysis.hpp"
#include "pg/generator.hpp"
#include "util/table.hpp"

int main() {
  using namespace er;

  PgGeneratorOptions gopts;
  gopts.nx = 40;
  gopts.ny = 40;
  gopts.layers = 2;
  gopts.seed = 21;
  const PowerGrid pg = generate_power_grid(gopts);
  const ConductanceNetwork net = pg.to_network();

  // Probe the worst-DC-drop load node.
  const DcSolution dc = solve_dc(net, pg.load_vector(0.0));
  index_t probe = pg.loads.front().node;
  for (const auto& l : pg.loads)
    if (dc.drops[static_cast<std::size_t>(l.node)] >
        dc.drops[static_cast<std::size_t>(probe)])
      probe = l.node;

  TransientOptions topts;
  topts.step = 1e-11;
  topts.steps = 500;

  const TransientResult full =
      run_transient(net, pg.capacitance_vector(), pg.loads, topts, {probe});

  ReductionOptions ropts;  // Alg. 3 defaults
  const ReducedModel m = reduce_network(net, pg.port_mask(), ropts);
  const TransientResult red = run_transient(
      m.network, map_capacitances(m, pg.capacitance_vector()),
      map_loads(m, pg.loads), topts,
      {m.node_map[static_cast<std::size_t>(probe)]});

  CsvWriter csv("transient_waveforms.csv",
                {"time_ns", "v_original", "v_reduced"});
  double max_err = 0.0;
  for (int k = 0; k < topts.steps; ++k) {
    const double vo = pg.vdd - full.series[0][static_cast<std::size_t>(k)];
    const double vr = pg.vdd - red.series[0][static_cast<std::size_t>(k)];
    csv.add_row({(k + 1) * topts.step * 1e9, vo, vr});
    max_err = std::max(max_err, std::abs(vo - vr));
  }

  std::printf("grid %d nodes -> reduced %d nodes\n", pg.num_nodes,
              m.stats.reduced_nodes);
  std::printf("transient: %d steps of %.0f ps; original %.2fs, reduced %.2fs\n",
              topts.steps, topts.step * 1e12, full.total_seconds(),
              red.total_seconds());
  std::printf("max waveform deviation at probe node %d: %.3f mV\n", probe,
              max_err * 1e3);
  std::printf("waveforms written to transient_waveforms.csv\n");
  return 0;
}
