// Quickstart: build a small weighted graph, compute effective resistances
// three ways (exact, Alg. 3, random projection), and print them side by
// side.
//
//   ./examples/quickstart
#include <cstdio>

#include "effres/approx_chol.hpp"
#include "effres/exact.hpp"
#include "effres/random_projection.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace er;

  // A 2D resistor mesh with mildly random conductances.
  const Graph g = grid_2d(40, 40, WeightKind::kUniform, 7);
  std::printf("graph: %d nodes, %zu edges\n\n", g.num_nodes(), g.num_edges());

  // Exact engine: complete sparse Cholesky on the grounded Laplacian.
  const ExactEffRes exact(g);

  // The paper's Alg. 3: incomplete Cholesky (droptol 1e-3) + sparse
  // approximate inverse (epsilon 1e-3).
  const ApproxCholEffRes alg3(g, {});
  std::printf("Alg. 3 stats: nnz(L)=%lld nnz(Z)=%lld dpt=%d "
              "nnz(Z)/(n log n)=%.2f\n\n",
              static_cast<long long>(alg3.stats().factor_nnz),
              static_cast<long long>(alg3.stats().inverse_nnz),
              alg3.stats().max_depth,
              alg3.stats().nnz_ratio(g.num_nodes()));

  // The WWW'15 random-projection baseline.
  RandomProjectionOptions rp_opts;
  rp_opts.auto_scale = 12.0;
  const RandomProjectionEffRes rp(g, rp_opts);

  TablePrinter table({"pair", "exact", "Alg. 3", "rand-proj"});
  const std::pair<index_t, index_t> pairs[] = {
      {0, 1},        // adjacent corner edge
      {0, 39},       // along one side
      {0, 1599},     // corner to corner
      {820, 821},    // central edge
      {400, 1200},   // mid-range
  };
  for (const auto& [p, q] : pairs)
    table.add_row({std::to_string(p) + "-" + std::to_string(q),
                   TablePrinter::fmt(exact.resistance(p, q), 6),
                   TablePrinter::fmt(alg3.resistance(p, q), 6),
                   TablePrinter::fmt(rp.resistance(p, q), 6)});
  table.print();

  std::printf("\nAlg. 3 tracks the exact values at ~1e-3 relative error;\n");
  std::printf("the JL baseline fluctuates at a few percent.\n");
  return 0;
}
