#!/usr/bin/env python3
"""Validate a Prometheus text-exposition dump from bench_serving --metrics.

CI runs this on the metrics dump of the churn smoke run so a rename or a
broken exporter in src/obs/ fails the pipeline instead of a downstream
scrape. Checks:

  * the serving-stack metric families are present (query/publish latency
    histograms, staleness + queue-depth gauges, publish counter, trace
    spans),
  * every histogram's cumulative buckets are monotone non-decreasing and
    end in a "+Inf" bucket that equals <family>_count,
  * every family carries a # TYPE line matching how it is used.

usage: check_metrics_export.py METRICS.prom [core|net]

The optional profile picks the required-family set: "core" (default) is
the serving-stack surface every bench dump carries; "net" adds the
`er_net_*` daemon families (bench_serving --loopback / er_served dumps).
"""
import re
import sys

# (family, expected type). The span family is labeled per stage; one stage
# from each half of the pipeline is pinned so partial instrumentation
# can't pass.
REQUIRED = [
    ("er_query_latency_seconds", "histogram"),
    ("er_query_batch_seconds", "histogram"),
    ("er_updater_publish_latency_seconds", "histogram"),
    ("er_updater_staleness_mods", "gauge"),
    ("er_updater_staleness_mods_high_water", "gauge"),
    ("er_updater_mods_submitted_total", "counter"),
    ("er_pool_queue_depth", "gauge"),
    ("er_pool_task_queue_wait_seconds", "histogram"),
    ("er_pool_task_run_seconds", "histogram"),
    ("er_store_publishes_total", "counter"),
    ("er_reducer_publish_seconds", "histogram"),
    ("er_span_seconds", "histogram"),
    # Result cache (serve/result_cache.hpp): families register eagerly at
    # cache construction, so they export even before the first lookup.
    ("er_cache_hits_total", "counter"),
    ("er_cache_misses_total", "counter"),
    ("er_cache_evictions_total", "counter"),
    ("er_cache_invalidations_total", "counter"),
    ("er_cache_entries", "gauge"),
    ("er_cache_bytes", "gauge"),
    ("er_cache_hit_latency_seconds", "histogram"),
    # Per-query policy layer (serve/query_frontend.cpp, PR 10): families
    # resolve on every answered batch — all tiers and hedge winners
    # register eagerly, so they export even for default-policy traffic.
    ("er_policy_served_total", "counter"),
    ("er_policy_latency_seconds", "histogram"),
    ("er_policy_hedges_total", "counter"),
    ("er_policy_deadline_miss_total", "counter"),
]
# The daemon surface (src/net/server.cpp): families register eagerly at
# Server construction, so even an idle daemon's dump must carry them all.
REQUIRED_NET = [
    ("er_net_connections_accepted_total", "counter"),
    ("er_net_connections_rejected_total", "counter"),
    ("er_net_requests_total", "counter"),
    ("er_net_rejected_total", "counter"),
    ("er_net_mods_applied_total", "counter"),
    ("er_net_bad_frames_total", "counter"),
    ("er_net_active_connections", "gauge"),
    ("er_net_queue_depth", "gauge"),
    ("er_net_request_latency_seconds", "histogram"),
]
PROFILES = {"core": REQUIRED, "net": REQUIRED + REQUIRED_NET}
REQUIRED_SPAN_STAGES = {"reduce", "stitch", "publish"}

SAMPLE_RE = re.compile(
    r'^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$')


def parse_labels(text):
    if not text:
        return {}
    out = {}
    for part in text.split(","):
        key, _, value = part.partition("=")
        out[key.strip()] = value.strip().strip('"')
    return out


def main() -> int:
    if len(sys.argv) not in (2, 3) or \
            (len(sys.argv) == 3 and sys.argv[2] not in PROFILES):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    required = PROFILES[sys.argv[2] if len(sys.argv) == 3 else "core"]
    types = {}
    # samples: (name, frozen labels) -> float value, in file order per key.
    samples = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line or line.startswith("# HELP"):
                continue
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split(None, 3)
                types[name] = kind
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                print(f"{path}:{lineno}: unparseable sample line: {line!r}",
                      file=sys.stderr)
                return 1
            value = float("nan") if m.group("value") == "null" else float(
                m.group("value"))
            samples.append((m.group("name"),
                            parse_labels(m.group("labels")), value))

    ok = True
    names = {name for name, _, _ in samples}

    for family, kind in required:
        if types.get(family) != kind:
            print(f"{path}: family {family!r} missing or not typed "
                  f"{kind!r} (got {types.get(family)!r})", file=sys.stderr)
            ok = False
            continue
        expected = {family} if kind != "histogram" else {
            family + "_bucket", family + "_sum", family + "_count"}
        missing = expected - names
        if missing:
            print(f"{path}: family {family!r} lacks samples {sorted(missing)}",
                  file=sys.stderr)
            ok = False

    span_stages = {labels.get("stage")
                   for name, labels, _ in samples
                   if name == "er_span_seconds_count"}
    missing_stages = REQUIRED_SPAN_STAGES - span_stages
    if missing_stages:
        print(f"{path}: er_span_seconds lacks stages "
              f"{sorted(missing_stages)} (has {sorted(span_stages)})",
              file=sys.stderr)
        ok = False

    # Histogram sanity: per (family, non-le labels), buckets are cumulative
    # (monotone in file order), finish with le="+Inf", and +Inf == _count.
    buckets = {}   # (family, labels-key) -> [(le, value)...]
    counts = {}    # (family, labels-key) -> count value
    for name, labels, value in samples:
        if name.endswith("_bucket"):
            key_labels = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"))
            buckets.setdefault((name[:-7], key_labels), []).append(
                (labels.get("le"), value))
        elif name.endswith("_count"):
            key_labels = tuple(sorted(labels.items()))
            counts[(name[:-6], key_labels)] = value
    for (family, key_labels), series in buckets.items():
        values = [v for _, v in series]
        if any(b > a for a, b in zip(values[1:], values)):
            print(f"{path}: {family}{dict(key_labels)} buckets are not "
                  f"cumulative", file=sys.stderr)
            ok = False
        if series[-1][0] != "+Inf":
            print(f"{path}: {family}{dict(key_labels)} does not end in a "
                  f"+Inf bucket", file=sys.stderr)
            ok = False
        elif counts.get((family, key_labels)) != series[-1][1]:
            print(f"{path}: {family}{dict(key_labels)} +Inf bucket "
                  f"{series[-1][1]} != count "
                  f"{counts.get((family, key_labels))}", file=sys.stderr)
            ok = False

    if ok:
        print(f"{path}: {len(samples)} samples, "
              f"{len(types)} families OK")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
