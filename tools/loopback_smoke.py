#!/usr/bin/env python3
"""Smoke-test the serving daemon end to end: start er_served on ephemeral
loopback ports, scrape its /metrics endpoint, then SIGTERM it and assert a
clean drain plus a valid final metrics dump.

CI runs this after the build so a daemon that binds but can't serve its
lifecycle (startup contract line, Prometheus endpoint, graceful drain,
final dump) fails the pipeline. The scrape is validated twice: a few
er_net_* lines are pinned here, and the final dump goes through
check_metrics_export.py with the "net" profile.

usage: loopback_smoke.py path/to/er_served [--timeout SECONDS]
"""
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

TOOLS = Path(__file__).resolve().parent

# Contract line printed by tools/er_served.cpp once the listeners are up.
LISTEN_RE = re.compile(
    r"er_served listening on 127\.0\.0\.1:(\d+) \(metrics :(\d+)\)")

# A scrape of a warmed-up daemon must carry these (server registers every
# er_net_* family eagerly; --warmup drives traffic through the lazy
# er_query_* families).
SCRAPE_MUST_CONTAIN = [
    "# TYPE er_net_requests_total counter",
    "# TYPE er_net_active_connections gauge",
    "# TYPE er_net_request_latency_seconds histogram",
    "er_net_requests_total{opcode=\"er_batch\"}",
    "er_query_latency_seconds_count",
]


def fail(msg):
    print(f"loopback_smoke: FAIL: {msg}", file=sys.stderr)
    return 1


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    binary = Path(sys.argv[1])
    timeout = 60.0
    if len(sys.argv) >= 4 and sys.argv[2] == "--timeout":
        timeout = float(sys.argv[3])
    if not binary.is_file():
        return fail(f"daemon binary {binary} not found (build er_served "
                    "first)")

    with tempfile.TemporaryDirectory(prefix="er_smoke_") as tmp:
        final_prom = Path(tmp) / "final.prom"
        proc = subprocess.Popen(
            [str(binary), "--nx", "16", "--ny", "16", "--ports", "8",
             "--blocks", "4", "--warmup", "4",
             "--final-metrics", str(final_prom)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            deadline = time.monotonic() + timeout
            ports = None
            for line in proc.stdout:
                m = LISTEN_RE.search(line)
                if m:
                    ports = (int(m.group(1)), int(m.group(2)))
                    break
                if time.monotonic() > deadline:
                    break
            if ports is None:
                proc.kill()
                return fail("daemon never printed the listening contract "
                            "line")
            _, metrics_port = ports

            scrape = urllib.request.urlopen(
                f"http://127.0.0.1:{metrics_port}/metrics",
                timeout=timeout).read().decode()
            missing = [s for s in SCRAPE_MUST_CONTAIN if s not in scrape]
            if missing:
                proc.kill()
                return fail(f"/metrics scrape lacks {missing}")
            try:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{metrics_port}/nope",
                    timeout=timeout)
                proc.kill()
                return fail("GET /nope did not 404")
            except urllib.error.HTTPError as e:
                if e.code != 404:
                    proc.kill()
                    return fail(f"GET /nope returned {e.code}, wanted 404")

            proc.send_signal(signal.SIGTERM)
            try:
                rc = proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                return fail("daemon did not drain within the timeout "
                            "after SIGTERM")
            tail = proc.stdout.read()
            if rc != 0:
                return fail(f"daemon exited {rc} after SIGTERM:\n{tail}")
            if "drained, bye" not in tail:
                return fail(f"drain epilogue missing from output:\n{tail}")
            if not final_prom.is_file():
                return fail("--final-metrics dump was not written")

            check = subprocess.run(
                [sys.executable, str(TOOLS / "check_metrics_export.py"),
                 str(final_prom), "net"],
                capture_output=True, text=True)
            if check.returncode != 0:
                return fail("final metrics dump failed "
                            f"check_metrics_export.py:\n{check.stdout}"
                            f"{check.stderr}")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    print("loopback_smoke: start -> scrape -> SIGTERM drain -> final "
          "dump OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
