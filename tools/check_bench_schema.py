#!/usr/bin/env python3
"""Validate a BENCH_serving.json file against the documented schema.

CI runs this after the churn smoke invocation so a schema change in
bench_serving breaks the pipeline instead of downstream readers of the
JSON trajectories (bench/README.md documents every field).

usage: check_bench_schema.py BENCH_serving.json
       {churn|standard|zipf|loopback|policy-mix}
"""
import json
import sys

COMMON_FIELDS = {
    "bench", "case", "mode", "threads", "queries",
    "reduced_nodes", "boundary_nodes", "blocks",
    # Registry-derived per-query latency percentiles (PR 6).
    "query_latency_p50_us", "query_latency_p95_us", "query_latency_p99_us",
}

# Fields every row of the given mode must carry (bench/README.md).
MODE_FIELDS = {
    "churn": COMMON_FIELDS | {
        "mods_submitted", "update_batches", "mods_coalesced",
        "publish_latency_mean_seconds", "publish_latency_max_seconds",
        # Registry-derived publish-latency percentiles (PR 6).
        "publish_latency_p50_ms", "publish_latency_p95_ms",
        "publish_latency_p99_ms",
        "staleness_mean_mods", "staleness_max_mods",
        "staleness_mean_versions", "staleness_max_versions",
        "queries_per_second", "churn_wall_seconds",
        "reused_block_fraction", "incremental_publish_seconds",
        "full_snapshot_build_seconds",
        # Zero-copy publish accounting (PR 5).
        "publish_model_bytes_copied", "publish_bytes_materialized",
        "model_footprint_bytes",
        # Bounded-staleness back-pressure (PR 5).
        "staleness_bound_mods", "blocked_submits", "rejected_submits",
        "max_observed_staleness_mods",
        "identical",
    },
    "standard": COMMON_FIELDS | {
        "snapshot_build_seconds", "wall_seconds", "queries_per_second",
        "speedup", "identical", "cross_block_queries", "engine_answered",
        "max_rel_vs_monolithic",
    },
    # Result-cache scenario (--churn --zipf S, PR 8).
    "zipf": COMMON_FIELDS | {
        "zipf_s", "pool_pairs", "mods_submitted",
        "cache_hit_rate", "cache_hits", "cache_misses", "cache_entries",
        "cache_evictions", "cache_invalidations",
        "queries_per_second", "queries_per_second_uncached",
        "identical",
    },
    # Network serving scenario (--loopback, PR 9): end-to-end QPS and
    # client-observed request latency through the net/ daemon core.
    "loopback": COMMON_FIELDS | {
        "clients", "queries_per_second",
        "request_latency_p50_us", "request_latency_p95_us",
        "request_latency_p99_us",
        "requests_total", "retry_later_responses",
        "mods_submitted", "mods_applied",
        "identical",
    },
    # Per-query QueryPolicy scenario (--policy-mix, PR 10): tier mix,
    # hedged racing, and deadline accounting, plus per-tier latency
    # percentiles from the er_policy_latency_seconds{tier=...} histograms.
    "policy-mix": COMMON_FIELDS | {
        "queries_per_second",
        "served_exact", "served_approx", "served_fast",
        "hedged_queries", "hedge_win_fraction_engine",
        "deadline_misses", "queue_wait_us_injected",
        "policy_latency_exact_p50_us", "policy_latency_exact_p95_us",
        "policy_latency_exact_p99_us",
        "policy_latency_approx_p50_us", "policy_latency_approx_p95_us",
        "policy_latency_approx_p99_us",
        "policy_latency_fast_p50_us", "policy_latency_fast_p95_us",
        "policy_latency_fast_p99_us",
        "identical",
    },
}


def main() -> int:
    if len(sys.argv) != 3 or sys.argv[2] not in MODE_FIELDS:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path, mode = sys.argv[1], sys.argv[2]
    required = MODE_FIELDS[mode]
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    if not isinstance(rows, list) or not rows:
        print(f"{path}: expected a non-empty JSON array", file=sys.stderr)
        return 1
    ok = True
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            print(f"{path}[{i}]: expected an object, got {type(row).__name__}",
                  file=sys.stderr)
            ok = False
            continue
        missing = required - row.keys()
        if missing:
            print(f"{path}[{i}]: missing fields {sorted(missing)}",
                  file=sys.stderr)
            ok = False
        if mode in ("churn", "zipf", "loopback", "policy-mix") \
                and row.get("identical") is not True:
            print(f"{path}[{i}]: {mode} row not bit-identical",
                  file=sys.stderr)
            ok = False
        if mode == "loopback" \
                and row.get("mods_applied") != row.get("mods_submitted"):
            print(f"{path}[{i}]: loopback mod feed applied "
                  f"{row.get('mods_applied')} of "
                  f"{row.get('mods_submitted')} submitted mods",
                  file=sys.stderr)
            ok = False
        if mode == "zipf" and row.get("zipf_s", 0) >= 1.0 \
                and row.get("cache_hit_rate", 0) < 0.5:
            print(f"{path}[{i}]: cache hit rate "
                  f"{row.get('cache_hit_rate')} below the 0.5 floor at "
                  f"zipf_s {row.get('zipf_s')}", file=sys.stderr)
            ok = False
        if mode == "policy-mix":
            frac = row.get("hedge_win_fraction_engine")
            if not isinstance(frac, (int, float)) or not 0.0 <= frac <= 1.0:
                print(f"{path}[{i}]: hedge_win_fraction_engine {frac!r} "
                      "outside [0, 1]", file=sys.stderr)
                ok = False
            served = sum(row.get(k, 0) for k in
                         ("served_exact", "served_approx", "served_fast"))
            expected = row.get("queries", 0) - row.get("deadline_misses", 0)
            if served != expected:
                print(f"{path}[{i}]: per-tier served counts sum to {served}, "
                      f"expected queries - deadline_misses = {expected}",
                      file=sys.stderr)
                ok = False
        if mode == "churn" and row.get("publish_model_bytes_copied") != 0:
            print(f"{path}[{i}]: zero-copy publish copied model bytes "
                  f"({row.get('publish_model_bytes_copied')})",
                  file=sys.stderr)
            ok = False
    if ok:
        print(f"{path}: {len(rows)} rows OK ({mode} schema)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
