#!/usr/bin/env python3
"""clang-tidy wrapper: run the repo .clang-tidy over src/ with a result
cache keyed on what actually determines a TU's diagnostics.

Why not bare run-clang-tidy: (a) a content-hash cache — CI restores the
cache directory across runs, so an unchanged TU costs a hash instead of a
re-analysis (the cache key folds in the clang-tidy version, the
.clang-tidy config, the TU's compile command, the TU bytes, and the
bytes of every src/ header, so any change that could alter diagnostics
invalidates); (b) deterministic file ordering and a summary that names
each finding TU; (c) exit 1 iff any TU produced diagnostics, which is
what a CI gate wants.

usage: run_clang_tidy.py [--build-dir build] [--jobs N] [--fix]
                         [--cache-dir .tidy-cache] [--clang-tidy BIN]
                         [files ...]
Files default to every src/*.cpp in the compile database. Exit 0 = clean,
1 = findings, 2 = setup error (no binary / no database).
"""
from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def find_clang_tidy(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-tidy", "clang-tidy-19", "clang-tidy-18",
                 "clang-tidy-17", "clang-tidy-16", "clang-tidy-15",
                 "clang-tidy-14"):
        if shutil.which(name):
            return name
    return None


def headers_digest() -> str:
    """One digest over every src/ header: any header edit invalidates the
    whole cache (coarse but safe — diagnostics can come from headers)."""
    h = hashlib.sha256()
    for p in sorted(ROOT.glob("src/**/*.hpp")):
        h.update(p.as_posix().encode())
        h.update(p.read_bytes())
    return h.hexdigest()


def tu_key(tidy_version: str, config: str, salt: str, entry: dict) -> str:
    h = hashlib.sha256()
    for part in (tidy_version, config, salt, entry["command"]):
        h.update(part.encode())
    h.update(Path(entry["file"]).read_bytes())
    return h.hexdigest()


def run_one(tidy: str, build_dir: Path, path: str, fix: bool) -> tuple:
    cmd = [tidy, "-p", str(build_dir), "--quiet"]
    if fix:
        cmd.append("--fix")
    cmd.append(path)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # clang-tidy exits nonzero on warnings-as-errors; treat any stdout
    # diagnostic block or nonzero exit as a finding.
    noise_free = "\n".join(
        line for line in proc.stdout.splitlines()
        if line.strip() and "warnings generated" not in line)
    return proc.returncode, noise_free, proc.stderr


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--build-dir", type=Path, default=ROOT / "build",
                    help="directory holding compile_commands.json")
    ap.add_argument("--jobs", type=int,
                    default=max(1, (os.cpu_count() or 2) - 1))
    ap.add_argument("--fix", action="store_true",
                    help="apply suggested fixes (disables the cache)")
    ap.add_argument("--cache-dir", type=Path,
                    default=ROOT / ".tidy-cache")
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary (default: first found on PATH)")
    ap.add_argument("files", nargs="*",
                    help="TUs to check (default: all src/*.cpp in the db)")
    args = ap.parse_args(argv)

    tidy = find_clang_tidy(args.clang_tidy)
    if not tidy:
        print("run_clang_tidy: no clang-tidy binary on PATH "
              "(apt-get install clang-tidy)", file=sys.stderr)
        return 2
    db_path = args.build_dir / "compile_commands.json"
    if not db_path.exists():
        print(f"run_clang_tidy: {db_path} not found — configure first "
              "(CMAKE_EXPORT_COMPILE_COMMANDS is ON by default)",
              file=sys.stderr)
        return 2

    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    src_prefix = (ROOT / "src").as_posix() + "/"
    entries = {e["file"]: e for e in db
               if e["file"].startswith(src_prefix)}
    if args.files:
        wanted = {str((ROOT / f).resolve()) if not os.path.isabs(f) else f
                  for f in args.files}
        entries = {f: e for f, e in entries.items() if f in wanted}
        missing = wanted - entries.keys()
        if missing:
            print(f"run_clang_tidy: not in compile database: "
                  f"{sorted(missing)}", file=sys.stderr)
            return 2
    files = sorted(entries)
    if not files:
        print("run_clang_tidy: no src/ TUs in the compile database",
              file=sys.stderr)
        return 2

    tidy_version = subprocess.run(
        [tidy, "--version"], capture_output=True, text=True).stdout.strip()
    config = (ROOT / ".clang-tidy").read_text(encoding="utf-8")
    salt = headers_digest()

    cache_path = args.cache_dir / "cache.json"
    cache = {}
    if not args.fix and cache_path.exists():
        try:
            with open(cache_path, encoding="utf-8") as f:
                cache = json.load(f)
        except (OSError, json.JSONDecodeError):
            cache = {}

    keys = {f: tu_key(tidy_version, config, salt, entries[f])
            for f in files}
    to_run = [f for f in files
              if args.fix or keys[f] not in cache]
    results = {f: cache[keys[f]] for f in files if f not in to_run}
    cached_n = len(results)

    if to_run:
        with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
            futs = {pool.submit(run_one, tidy, args.build_dir, f,
                                args.fix): f for f in to_run}
            for fut in concurrent.futures.as_completed(futs):
                f = futs[fut]
                code, out, errtext = fut.result()
                if "Error while processing" in errtext or \
                        "error: " in errtext and code != 0 and not out:
                    # Analysis itself failed (bad compile command, crash):
                    # setup error, never cached.
                    print(f"--- {os.path.relpath(f, ROOT)}: clang-tidy "
                          f"failed\n{errtext}", file=sys.stderr)
                    return 2
                results[f] = {"code": code, "out": out}

    dirty = []
    for f in files:
        r = results[f]
        if r["code"] != 0 or r["out"]:
            dirty.append(f)
            print(f"--- {os.path.relpath(f, ROOT)}")
            if r["out"]:
                print(r["out"])

    if not args.fix:
        # Only clean results are worth keeping? No: keep everything —
        # re-runs on an unchanged dirty TU should also skip the analysis
        # and just replay the diagnostics.
        args.cache_dir.mkdir(parents=True, exist_ok=True)
        fresh = {keys[f]: results[f] for f in files}
        with open(cache_path, "w", encoding="utf-8") as f:
            json.dump(fresh, f)

    status = "FAILED" if dirty else "OK"
    print(f"run_clang_tidy: {len(files)} TUs ({cached_n} cached, "
          f"{len(to_run)} analyzed), {len(dirty)} with findings — {status}")
    return 1 if dirty else 0


if __name__ == "__main__":
    sys.exit(main())
