#!/usr/bin/env python3
"""Unified entry point for the repo's scripted CI checks.

One command — `python3 tools/ci_checks.py --all` — runs every check that
applies, so CI jobs and local pre-push runs can't drift apart by each
wiring up a different subset. Individual checks stay standalone scripts
with their own CLIs (this wrapper shells out to them); pass check names
to run a subset.

Checks:
  determinism-lint           tools/lint_determinism.py over src/
  determinism-lint-selftest  the lint's own fixture unit tests
  workspace-clean            `git status --porcelain` is empty
  bench-schema               tools/check_bench_schema.py (needs
                             --bench-json and --bench-mode)
  metrics-export             tools/check_metrics_export.py (needs
                             --metrics)

With --all, artifact-dependent checks (bench-schema, metrics-export) are
skipped with a note when their input path was not given; naming a check
explicitly makes its inputs required. Exit 0 = all ran checks passed,
1 = at least one failed, 2 = usage error.
"""
import argparse
import subprocess
import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
ROOT = TOOLS.parent

CHECKS = ["determinism-lint", "determinism-lint-selftest",
          "workspace-clean", "bench-schema", "metrics-export"]


def build_command(name, args):
    """-> (argv, skip_reason). argv None + reason when inputs are absent;
    raises SystemExit(2) when an explicitly requested check lacks them."""
    if name == "determinism-lint":
        return ([sys.executable, str(TOOLS / "lint_determinism.py"),
                 "--root", str(ROOT)], None)
    if name == "determinism-lint-selftest":
        return ([sys.executable, str(TOOLS / "test_lint_determinism.py")],
                None)
    if name == "workspace-clean":
        return (["git", "-C", str(ROOT), "status", "--porcelain"], None)
    if name == "bench-schema":
        if not args.bench_json:
            if args.explicit:
                sys.exit("ci_checks: bench-schema needs --bench-json "
                         "and --bench-mode")
            return (None, "no --bench-json given")
        return ([sys.executable, str(TOOLS / "check_bench_schema.py"),
                 args.bench_json, args.bench_mode], None)
    if name == "metrics-export":
        if not args.metrics:
            if args.explicit:
                sys.exit("ci_checks: metrics-export needs --metrics")
            return (None, "no --metrics given")
        return ([sys.executable, str(TOOLS / "check_metrics_export.py"),
                 args.metrics], None)
    raise AssertionError(name)


def run_check(name, args):
    argv, skip_reason = build_command(name, args)
    if argv is None:
        print(f"  SKIP {name}: {skip_reason}")
        return None
    proc = subprocess.run(argv, capture_output=True, text=True)
    failed = proc.returncode != 0
    if name == "workspace-clean" and proc.stdout.strip():
        # porcelain output means a dirty tree even though git exits 0.
        failed = True
    print(f"  {'FAIL' if failed else 'PASS'} {name}")
    if failed:
        for stream in (proc.stdout, proc.stderr):
            if stream.strip():
                sys.stderr.write(stream if stream.endswith("\n")
                                 else stream + "\n")
    return not failed


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="run the repo's scripted CI checks")
    ap.add_argument("checks", nargs="*", metavar="check",
                    help=f"checks to run: {', '.join(CHECKS)} "
                         "(default with --all: every applicable one)")
    ap.add_argument("--all", action="store_true",
                    help="run every check whose inputs are available")
    ap.add_argument("--bench-json", help="BENCH_serving.json path "
                    "(bench-schema)")
    ap.add_argument("--bench-mode", choices=["churn", "standard", "zipf"],
                    default="churn", help="schema mode for bench-schema")
    ap.add_argument("--metrics", help="METRICS.prom path (metrics-export)")
    args = ap.parse_args(argv)

    if args.all and args.checks:
        ap.error("give either --all or explicit check names, not both")
    if not args.all and not args.checks:
        ap.error("nothing to do: pass --all or check names")
    unknown = [c for c in args.checks if c not in CHECKS]
    if unknown:
        ap.error(f"unknown check(s) {unknown}; choose from {CHECKS}")
    args.explicit = bool(args.checks)
    selected = args.checks or CHECKS

    print(f"ci_checks: running {len(selected)} check(s)")
    results = {name: run_check(name, args) for name in selected}
    failed = [n for n, ok in results.items() if ok is False]
    ran = sum(1 for ok in results.values() if ok is not None)
    skipped = len(selected) - ran
    verdict = "FAILED" if failed else "OK"
    print(f"ci_checks: {ran} ran, {skipped} skipped, "
          f"{len(failed)} failed — {verdict}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
