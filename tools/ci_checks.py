#!/usr/bin/env python3
"""Unified entry point for the repo's scripted CI checks.

One command — `python3 tools/ci_checks.py --all` — runs every check that
applies, so CI jobs and local pre-push runs can't drift apart by each
wiring up a different subset. Individual checks stay standalone scripts
with their own CLIs (this wrapper shells out to them); pass check names
to run a subset.

Checks:
  determinism-lint           tools/lint_determinism.py over src/
  determinism-lint-selftest  the lint's own fixture unit tests
  workspace-clean            `git status --porcelain` is empty
  bench-schema               tools/check_bench_schema.py; repeat
                             --bench-json PATH --bench-mode MODE pairs to
                             validate several trajectory files in one run
  metrics-export             tools/check_metrics_export.py; repeat
                             --metrics PATH[:PROFILE] (profile core|net,
                             default core)
  loopback-smoke             tools/loopback_smoke.py against the daemon
                             binary given via --er-served

With --all, artifact-dependent checks (bench-schema, metrics-export,
loopback-smoke) are skipped with a note when their input path was not
given; naming a check explicitly makes its inputs required. Exit 0 = all
ran checks passed, 1 = at least one failed, 2 = usage error.
"""
import argparse
import subprocess
import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
ROOT = TOOLS.parent

CHECKS = ["determinism-lint", "determinism-lint-selftest",
          "workspace-clean", "bench-schema", "metrics-export",
          "loopback-smoke"]

BENCH_MODES = ["churn", "standard", "zipf", "loopback", "policy-mix"]
METRICS_PROFILES = ["core", "net"]


def parse_metrics_spec(spec):
    """'PATH' or 'PATH:PROFILE' -> (path, profile)."""
    path, sep, profile = spec.rpartition(":")
    if sep and profile in METRICS_PROFILES:
        return path, profile
    return spec, "core"


def build_commands(name, args):
    """-> (list of argv, skip_reason). Empty list + reason when inputs are
    absent; raises SystemExit(2) when an explicitly requested check lacks
    them."""
    if name == "determinism-lint":
        return ([[sys.executable, str(TOOLS / "lint_determinism.py"),
                  "--root", str(ROOT)]], None)
    if name == "determinism-lint-selftest":
        return ([[sys.executable, str(TOOLS / "test_lint_determinism.py")]],
                None)
    if name == "workspace-clean":
        return ([["git", "-C", str(ROOT), "status", "--porcelain"]], None)
    if name == "bench-schema":
        if not args.bench_json:
            if args.explicit:
                sys.exit("ci_checks: bench-schema needs --bench-json "
                         "and --bench-mode")
            return ([], "no --bench-json given")
        modes = args.bench_mode or ["churn"] * len(args.bench_json)
        if len(modes) != len(args.bench_json):
            sys.exit(f"ci_checks: {len(args.bench_json)} --bench-json but "
                     f"{len(modes)} --bench-mode; give one mode per file")
        return ([[sys.executable, str(TOOLS / "check_bench_schema.py"),
                  path, mode]
                 for path, mode in zip(args.bench_json, modes)], None)
    if name == "metrics-export":
        if not args.metrics:
            if args.explicit:
                sys.exit("ci_checks: metrics-export needs --metrics")
            return ([], "no --metrics given")
        return ([[sys.executable, str(TOOLS / "check_metrics_export.py")]
                 + list(parse_metrics_spec(spec))
                 for spec in args.metrics], None)
    if name == "loopback-smoke":
        if not args.er_served:
            if args.explicit:
                sys.exit("ci_checks: loopback-smoke needs --er-served")
            return ([], "no --er-served given")
        return ([[sys.executable, str(TOOLS / "loopback_smoke.py"),
                  args.er_served]], None)
    raise AssertionError(name)


def run_check(name, args):
    argvs, skip_reason = build_commands(name, args)
    if not argvs:
        print(f"  SKIP {name}: {skip_reason}")
        return None
    check_ok = True
    for argv in argvs:
        proc = subprocess.run(argv, capture_output=True, text=True)
        failed = proc.returncode != 0
        if name == "workspace-clean" and proc.stdout.strip():
            # porcelain output means a dirty tree even though git exits 0.
            failed = True
        if failed:
            check_ok = False
            for stream in (proc.stdout, proc.stderr):
                if stream.strip():
                    sys.stderr.write(stream if stream.endswith("\n")
                                     else stream + "\n")
    print(f"  {'PASS' if check_ok else 'FAIL'} {name}"
          + (f" ({len(argvs)} artifacts)" if len(argvs) > 1 else ""))
    return check_ok


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="run the repo's scripted CI checks")
    ap.add_argument("checks", nargs="*", metavar="check",
                    help=f"checks to run: {', '.join(CHECKS)} "
                         "(default with --all: every applicable one)")
    ap.add_argument("--all", action="store_true",
                    help="run every check whose inputs are available")
    ap.add_argument("--bench-json", action="append",
                    help="BENCH_serving.json path (bench-schema); "
                    "repeatable, paired positionally with --bench-mode")
    ap.add_argument("--bench-mode", action="append", choices=BENCH_MODES,
                    help="schema mode for the corresponding --bench-json "
                    "(default churn)")
    ap.add_argument("--metrics", action="append",
                    help="METRICS.prom path, optionally PATH:net for the "
                    "daemon-family profile (metrics-export); repeatable")
    ap.add_argument("--er-served", help="er_served binary path "
                    "(loopback-smoke)")
    args = ap.parse_args(argv)

    if args.all and args.checks:
        ap.error("give either --all or explicit check names, not both")
    if not args.all and not args.checks:
        ap.error("nothing to do: pass --all or check names")
    unknown = [c for c in args.checks if c not in CHECKS]
    if unknown:
        ap.error(f"unknown check(s) {unknown}; choose from {CHECKS}")
    args.explicit = bool(args.checks)
    selected = args.checks or CHECKS

    print(f"ci_checks: running {len(selected)} check(s)")
    results = {name: run_check(name, args) for name in selected}
    failed = [n for n, ok in results.items() if ok is False]
    ran = sum(1 for ok in results.values() if ok is not None)
    skipped = len(selected) - ran
    verdict = "FAILED" if failed else "OK"
    print(f"ci_checks: {ran} ran, {skipped} skipped, "
          f"{len(failed)} failed — {verdict}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
