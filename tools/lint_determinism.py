#!/usr/bin/env python3
"""Determinism lint: mechanically enforce the repo's determinism contract.

DESIGN.md §3 requires reduced models to be bit-identical at any thread
count and across runs. That only holds if (a) every random choice flows
from the caller's seed through util/rng (Rng + mix_seed per-stream
derivation), (b) no wall-clock read feeds model-affecting code, and
(c) no hidden mutable global state orders itself differently between
runs. This lint encodes those three rules over `src/`:

  banned-rng      std::rand/srand, std::random_device, std::mt19937 (and
                  friends), std::default_random_engine anywhere outside
                  src/util/rng.* — seeded or not, their implementations
                  are unspecified across platforms; time()-seeding is
                  caught by the same rule.
  wall-clock      <chrono> clocks, util/timer.hpp, ::time/gettimeofday/
                  clock() in model-affecting code. Whole-directory
                  whitelist: src/obs/ (observability never feeds back
                  into computation — DESIGN.md §6). Everything else
                  needs an allowlist entry with a reason (e.g. the
                  serving layer's age/staleness probes).
  static-mutable  function-local or namespace-scope `static` /
                  `thread_local` variables that are not const/constexpr:
                  hidden shared state whose initialization and update
                  order is scheduling-dependent. Registered exceptions
                  (singletons in obs/, per-thread scratch buffers) live
                  in the allowlist.

bench/ and tests/ are out of scope by design: harnesses time things and
may use ad-hoc randomness.

The allowlist is machine-readable JSON (tools/determinism_allowlist.json):
  { "<rule>": [ {"file": "src/...", "contains": "<substring>"|null,
                 "reason": "<why this is deterministic/harmless>"} ] }
An entry matches a finding when the file matches and, if "contains" is
given, the offending line contains that substring. Unused allowlist
entries are reported as errors too, so the list cannot rot.

usage: lint_determinism.py [--root DIR] [--allowlist FILE] [file ...]
Exit 0 = clean, 1 = findings, 2 = usage/config error.
"""
from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# (rule, regex, message). Patterns run on comment/string-stripped lines.
RULES = [
    ("banned-rng", re.compile(
        r"\b(?:std::)?(?:rand|srand|random_device|mt19937(?:_64)?|"
        r"default_random_engine|minstd_rand0?|ranlux\w+|knuth_b)\b"),
     "platform-dependent RNG; use util/rng.hpp Rng seeded via "
     "mix_seed(seed, stream)"),
    ("wall-clock", re.compile(
        r"std::chrono|steady_clock|system_clock|high_resolution_clock|"
        r'#\s*include\s*(?:<chrono>|"util/timer\.hpp")|\bgettimeofday\b|'
        r"\b(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)\s*\)|"
        r"\b(?:std::)?clock\s*\(\s*\)"),
     "wall-clock read in model-affecting code; clocks may only feed "
     "observability (src/obs/) or allowlisted probes"),
]

STATIC_RULE = "static-mutable"
STATIC_MSG = ("mutable static/thread_local state; hidden shared state "
              "breaks run-to-run determinism unless registered in the "
              "allowlist with a reason")

# Files the banned-rng rule does not apply to: the one sanctioned RNG
# implementation site.
RNG_HOME = ("src/util/rng.hpp", "src/util/rng.cpp")

# Directories the wall-clock rule skips wholesale: observability never
# feeds back into computation (DESIGN.md §6 rule 2).
WALL_CLOCK_FREE_DIRS = ("src/obs/",)

STRING_OR_COMMENT = re.compile(
    r'"(?:\\.|[^"\\])*"'      # string literals
    r"|'(?:\\.|[^'\\])*'"     # char literals
    r"|//[^\n]*"              # line comments
    r"|/\*.*?\*/", re.S)      # block comments (joined source)

# A static/thread_local *variable* declaration: the declarator is not
# immediately a function (no '(' before any '=' / ';'), and the decl-
# specifiers contain no const/constexpr. Runs per physical line after
# string/comment stripping — crude but effective for this codebase's
# style (declarations are single-line).
DECL_RE = re.compile(
    r"^\s*(?:inline\s+)?(?:static\s+thread_local|thread_local\s+static|"
    r"static|thread_local)\s+(?P<rest>.*)$")


def strip_comments_and_strings(text: str) -> str:
    """Blank out strings/comments, preserving line structure."""
    def repl(m: re.Match) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))
    return STRING_OR_COMMENT.sub(repl, text)


def is_mutable_static_decl(line: str) -> bool:
    m = DECL_RE.match(line)
    if not m:
        return False
    rest = m.group("rest")
    if re.match(r"(?:const\b|constexpr\b|const\s|constexpr\s)", rest):
        return False
    # `static_assert(...)` / casts never match DECL_RE (no space), but a
    # member-function declaration or definition does: detect a '('
    # belonging to the declarator before any initializer.
    eq = rest.find("=")
    brace = rest.find("{")
    paren = rest.find("(")
    if paren != -1 and (eq == -1 or paren < eq):
        # Function declaration/definition (e.g. `static Foo& global();`)
        # unless the paren opens an initializer like `int x(3);` — those
        # don't occur for statics in this codebase, and ctor-paren
        # initializers of class-type statics are exactly the singleton
        # pattern we want to flag... but `static Foo f(args);` keeps the
        # identifier directly before '('; functions do too. Treat
        # `Type name(...)` with a capitalized/type-ish tail as a function
        # to stay conservative: real mutable statics in this repo use
        # `= ` or `;` forms.
        return False
    if brace != -1 and (eq == -1 or brace < eq):
        # Aggregate-init statics `static T x{...};` are declarations of
        # mutable state.
        return True
    return True


def load_allowlist(path: Path) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: unreadable allowlist: {e}", file=sys.stderr)
        raise SystemExit(2)
    for rule, entries in data.items():
        if not isinstance(entries, list):
            print(f"{path}: rule {rule!r} must map to a list",
                  file=sys.stderr)
            raise SystemExit(2)
        for e in entries:
            if "file" not in e or "reason" not in e or not e["reason"]:
                print(f"{path}: entry {e} needs 'file' and a non-empty "
                      f"'reason'", file=sys.stderr)
                raise SystemExit(2)
    return data


def allowed(allowlist: dict, rule: str, rel: str, line: str,
            used: set) -> bool:
    for i, e in enumerate(allowlist.get(rule, [])):
        if e["file"] != rel:
            continue
        if e.get("contains") and e["contains"] not in line:
            continue
        used.add((rule, i))
        return True
    return False


def lint_file(path: Path, rel: str, allowlist: dict, used: set) -> list:
    findings = []
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        return [(rel, 0, "io", f"unreadable source file: {e}")]
    stripped = strip_comments_and_strings(text)
    lines = stripped.split("\n")
    raw_lines = text.split("\n")
    for lineno, (line, raw) in enumerate(zip(lines, raw_lines), 1):
        # Include directives carry their path in a string literal the
        # stripper blanks; match those against the raw line instead.
        if re.match(r"\s*#\s*include\b", raw):
            line = raw
        for rule, pattern, msg in RULES:
            if rule == "banned-rng" and rel in RNG_HOME:
                continue
            if rule == "wall-clock" and rel.startswith(
                    WALL_CLOCK_FREE_DIRS):
                continue
            if not pattern.search(line):
                continue
            if allowed(allowlist, rule, rel, raw, used):
                continue
            findings.append((rel, lineno, rule, f"{msg}\n    {raw.strip()}"))
        if is_mutable_static_decl(line):
            if not allowed(allowlist, STATIC_RULE, rel, raw, used):
                findings.append(
                    (rel, lineno, STATIC_RULE,
                     f"{STATIC_MSG}\n    {raw.strip()}"))
    return findings


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="Determinism lint over src/ (see module docstring).")
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repo root (default: the tools/ parent)")
    ap.add_argument("--allowlist", type=Path, default=None,
                    help="allowlist JSON (default: "
                    "tools/determinism_allowlist.json under --root)")
    ap.add_argument("files", nargs="*", type=Path,
                    help="specific files to lint (default: all of src/); "
                    "paths are interpreted relative to --root")
    args = ap.parse_args(argv)

    root = args.root.resolve()
    allowlist_path = args.allowlist or root / "tools" / \
        "determinism_allowlist.json"
    allowlist = load_allowlist(allowlist_path)

    if args.files:
        targets = [(root / f if not f.is_absolute() else f) for f in
                   args.files]
    else:
        targets = sorted((root / "src").rglob("*.hpp")) + \
            sorted((root / "src").rglob("*.cpp"))
        if not targets:
            print(f"{root}/src: no sources found", file=sys.stderr)
            return 2

    used: set = set()
    findings = []
    for path in targets:
        rel = path.resolve().relative_to(root).as_posix()
        findings.extend(lint_file(path, rel, allowlist, used))

    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}", file=sys.stderr)

    # Stale allowlist entries are errors too — but only on full-tree runs
    # (a single-file invocation legitimately leaves most entries unused).
    stale = []
    if not args.files:
        for rule, entries in allowlist.items():
            for i, e in enumerate(entries):
                if (rule, i) not in used:
                    stale.append((rule, e))
        for rule, e in stale:
            print(f"{allowlist_path.name}: stale [{rule}] entry for "
                  f"{e['file']!r} ({e.get('contains')!r}) — no finding "
                  f"matches it; remove it", file=sys.stderr)

    if findings or stale:
        print(f"determinism lint: {len(findings)} finding(s), "
              f"{len(stale)} stale allowlist entr(y/ies)", file=sys.stderr)
        return 1
    print(f"determinism lint: {len(targets)} files clean "
          f"({sum(len(v) for v in allowlist.values())} registered "
          f"exceptions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
