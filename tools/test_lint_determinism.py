#!/usr/bin/env python3
"""Unit tests for tools/lint_determinism.py, run as a ctest.

Fixture files under tests/lint_fixtures/ pin the lint's behavior: seeded
vs unseeded/time-seeded RNG, chrono in a hot path vs an allowlisted
stats-only timer, mutable vs const statics. Also checks that the real
tree is clean and that stale allowlist entries fail a full-tree run.
"""
import contextlib
import io
import json
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
ROOT = TOOLS.parent
FIXTURES = ROOT / "tests" / "lint_fixtures"
sys.path.insert(0, str(TOOLS))

import lint_determinism as lint  # noqa: E402


def run_lint(argv):
    """main(argv) -> (exit_code, stderr_text)."""
    err = io.StringIO()
    with contextlib.redirect_stderr(err), \
            contextlib.redirect_stdout(io.StringIO()):
        code = lint.main(argv)
    return code, err.getvalue()


def lint_fixture(name, allowlist=None):
    argv = [str(FIXTURES / name)]
    if allowlist:
        argv = ["--allowlist", str(allowlist)] + argv
    return run_lint(argv)


class BadFixtures(unittest.TestCase):
    def assert_flags(self, name, rule, times=None):
        code, err = lint_fixture(name)
        self.assertEqual(code, 1, f"{name} should fail\n{err}")
        self.assertIn(f"[{rule}]", err)
        if times is not None:
            self.assertEqual(err.count(f"[{rule}]"), times, err)

    def test_unseeded_mt19937(self):
        self.assert_flags("bad_unseeded_mt19937.cpp", "banned-rng", 1)

    def test_time_seeded_rng(self):
        self.assert_flags("bad_time_seeded_rng.cpp", "banned-rng", 2)
        _, err = lint_fixture("bad_time_seeded_rng.cpp")
        self.assertIn("[wall-clock]", err)  # time(nullptr)

    def test_random_device(self):
        self.assert_flags("bad_random_device.cpp", "banned-rng", 1)

    def test_chrono_hot_path(self):
        # The include line plus both steady_clock reads.
        self.assert_flags("bad_chrono_hot_path.cpp", "wall-clock", 3)

    def test_static_local(self):
        # static int counter, thread_local vector, static double{...}.
        self.assert_flags("bad_static_local.cpp", "static-mutable", 3)


class GoodFixtures(unittest.TestCase):
    def test_seeded_rng_clean(self):
        code, err = lint_fixture("good_seeded_rng.cpp")
        self.assertEqual(code, 0, err)

    def test_const_static_clean(self):
        code, err = lint_fixture("good_const_static.cpp")
        self.assertEqual(code, 0, err)

    def test_chrono_needs_allowlist(self):
        code, err = lint_fixture("good_chrono_allowlisted.cpp")
        self.assertEqual(code, 1, "chrono fixture must fail WITHOUT its "
                         "allowlist entry\n" + err)
        code, err = lint_fixture("good_chrono_allowlisted.cpp",
                                 allowlist=FIXTURES /
                                 "fixture_allowlist.json")
        self.assertEqual(code, 0, err)


class RealTree(unittest.TestCase):
    def test_src_is_clean(self):
        code, err = run_lint([])
        self.assertEqual(code, 0, "src/ must lint clean:\n" + err)


class Allowlist(unittest.TestCase):
    def test_stale_entry_fails_full_run(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "src").mkdir()
            (root / "src" / "clean.cpp").write_text("int x() { return 1; }\n")
            allow = root / "allow.json"
            allow.write_text(json.dumps({"banned-rng": [
                {"file": "src/gone.cpp", "reason": "obsolete"}]}))
            code, err = run_lint(["--root", str(root),
                                  "--allowlist", str(allow)])
            self.assertEqual(code, 1, err)
            self.assertIn("stale", err)

    def test_entry_without_reason_rejected(self):
        with tempfile.TemporaryDirectory() as tmp:
            allow = Path(tmp) / "allow.json"
            allow.write_text(json.dumps({"banned-rng": [
                {"file": "src/x.cpp", "reason": ""}]}))
            with self.assertRaises(SystemExit) as ctx:
                with contextlib.redirect_stderr(io.StringIO()):
                    lint.load_allowlist(allow)
            self.assertEqual(ctx.exception.code, 2)


class StaticDeclHeuristic(unittest.TestCase):
    def test_classifier(self):
        flagged = [
            "  static int counter = 0;",
            "  static thread_local std::vector<real_t> work;",
            "  static MetricsRegistry* g = new MetricsRegistry();",
            "thread_local bool t_on_worker = false;",
            "static double acc{0.0};",
        ]
        clean = [
            "  static const int k = 3;",
            "  static constexpr std::size_t kCap = 256;",
            "  static std::string fmt(double v, int precision = 3);",
            "  static bool on_worker_thread();",
            "  static int twice(int v) { return 2 * v; }",
            "  int not_static = 4;",
            "  return static_cast<int>(x);",
        ]
        for line in flagged:
            self.assertTrue(lint.is_mutable_static_decl(line), line)
        for line in clean:
            self.assertFalse(lint.is_mutable_static_decl(line), line)

    def test_stripper_preserves_lines(self):
        src = 'int a; // std::mt19937\nconst char* s = "std::rand";\n'
        out = lint.strip_comments_and_strings(src)
        self.assertEqual(out.count("\n"), src.count("\n"))
        self.assertNotIn("mt19937", out)
        self.assertNotIn("rand", out)


if __name__ == "__main__":
    unittest.main()
