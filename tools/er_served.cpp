// er_served: the standalone serving daemon (DESIGN.md §8).
//
// Builds a synthetic power-grid case (an nx-by-ny uniform grid with random
// ports, the same construction the serving tests use), reduces it, and
// serves ER queries over the net/protocol.hpp TCP protocol on 127.0.0.1,
// with a streamed-modification feed into the incremental-update pipeline
// and a Prometheus /metrics endpoint. SIGTERM/SIGINT run the graceful
// drain: stop accepting, flush in-flight batches, dump final metrics.
//
// Quick start (docs/serving_guide.md has the full tour):
//   er_served --port 7421 --metrics-port 7422 --warmup 8
//   curl -s http://127.0.0.1:7422/metrics | grep er_net_
//   kill -TERM <pid>    # graceful drain + final metrics dump

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/stack.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void handle_stop(int) { g_stop = 1; }

struct Flags {
  int port = 0;          // 0 = ephemeral (printed at startup)
  int metrics_port = 0;  // 0 = ephemeral
  er::index_t nx = 48;
  er::index_t ny = 48;
  er::index_t ports = 24;
  er::index_t blocks = 16;
  int threads = 2;      // query compute pool + reducer pool
  int dispatchers = 2;  // query dispatcher threads
  std::size_t queue_cap = 64;
  std::size_t max_conn = 64;
  std::uint64_t staleness = 6;
  std::uint64_t seed = 7;
  int warmup = 0;  // self-issued queries before serving (warms er_query_*)
  bool no_cache = false;
  std::string final_metrics;  // Prometheus dump path written at drain
};

void usage() {
  std::cout
      << "er_served [--port N] [--metrics-port N] [--nx N] [--ny N]\n"
         "          [--ports N] [--blocks N] [--threads N]\n"
         "          [--dispatchers N] [--queue-cap N] [--max-conn N]\n"
         "          [--staleness N] [--seed N] [--warmup N] [--no-cache]\n"
         "          [--final-metrics PATH]\n";
}

bool parse_flags(int argc, char** argv, Flags* flags) {
  auto next_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) return nullptr;
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg == "--no-cache") {
      flags->no_cache = true;
    } else if ((value = next_value(&i)) == nullptr) {
      std::cerr << "er_served: " << arg << " needs a value\n";
      return false;
    } else if (arg == "--port") {
      flags->port = std::atoi(value);
    } else if (arg == "--metrics-port") {
      flags->metrics_port = std::atoi(value);
    } else if (arg == "--nx") {
      flags->nx = std::atoi(value);
    } else if (arg == "--ny") {
      flags->ny = std::atoi(value);
    } else if (arg == "--ports") {
      flags->ports = std::atoi(value);
    } else if (arg == "--blocks") {
      flags->blocks = std::atoi(value);
    } else if (arg == "--threads") {
      flags->threads = std::atoi(value);
    } else if (arg == "--dispatchers") {
      flags->dispatchers = std::atoi(value);
    } else if (arg == "--queue-cap") {
      flags->queue_cap = static_cast<std::size_t>(std::atoll(value));
    } else if (arg == "--max-conn") {
      flags->max_conn = static_cast<std::size_t>(std::atoll(value));
    } else if (arg == "--staleness") {
      flags->staleness = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--seed") {
      flags->seed = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--warmup") {
      flags->warmup = std::atoi(value);
    } else if (arg == "--final-metrics") {
      flags->final_metrics = value;
    } else {
      std::cerr << "er_served: unknown flag " << arg << "\n";
      usage();
      return false;
    }
  }
  return true;
}

struct GridCase {
  er::ConductanceNetwork net;
  std::vector<char> ports;
};

// The serving test suite's grid construction (tests/serve_test_util.hpp):
// uniform nx-by-ny grid, random ports, pad shunts on the first four so the
// stitched system is SPD.
GridCase make_grid(const Flags& flags) {
  GridCase c;
  c.net.graph =
      er::grid_2d(flags.nx, flags.ny, er::WeightKind::kUniform, flags.seed);
  const er::index_t n = flags.nx * flags.ny;
  c.net.shunts.assign(static_cast<std::size_t>(n), 0.0);
  c.ports.assign(static_cast<std::size_t>(n), 0);
  er::Rng rng(flags.seed + 1);
  er::index_t placed = 0;
  while (placed < flags.ports) {
    const er::index_t v = rng.uniform_int(n);
    if (c.ports[static_cast<std::size_t>(v)]) continue;
    c.ports[static_cast<std::size_t>(v)] = 1;
    if (placed < 4) c.net.shunts[static_cast<std::size_t>(v)] = 50.0;
    ++placed;
  }
  return c;
}

// Self-issued traffic through a real loopback connection: primes the
// lazily-registered er_query_* families so a /metrics scrape right after
// startup sees the full export surface, and smoke-checks the wire path.
void run_warmup(const er::net::Server& server, er::net::ServingStack& stack,
                int batches, std::uint64_t seed) {
  std::vector<er::index_t> kept;
  const er::ReducedModel& model = stack.reducer().model();
  for (std::size_t v = 0; v < model.node_map.size(); ++v)
    if (model.node_map[v] >= 0) kept.push_back(static_cast<er::index_t>(v));
  if (kept.size() < 2) return;

  er::net::LoopbackClient client("127.0.0.1", server.port());
  er::Rng rng(seed + 99);
  const auto n = static_cast<er::index_t>(kept.size());
  for (int b = 0; b < batches; ++b) {
    std::vector<er::PortQuery> batch;
    for (int i = 0; i < 8; ++i) {
      er::PortQuery query;
      query.kind = i % 2 == 0 ? er::QueryKind::kResistance
                              : er::QueryKind::kResponse;
      query.p = kept[static_cast<std::size_t>(rng.uniform_int(n))];
      query.q = kept[static_cast<std::size_t>(rng.uniform_int(n))];
      batch.push_back(query);
    }
    const auto route = b % 2 == 0 ? er::RouteMode::kSharded
                                  : er::RouteMode::kMonolithic;
    (void)client.query(batch, route,
                       b % 3 == 0 ? er::net::Opcode::kPortResponse
                                  : er::net::Opcode::kErBatch);
  }
  er::net::WireModification mod;
  mod.dirty_blocks = {0};
  mod.resistance_scale = 1.05;
  (void)client.submit_mod(mod);
  (void)client.stats();
  stack.flush();
}

void dump_metrics(const std::string& path) {
  const er::obs::MetricsSnapshot snap =
      er::obs::registry_or_global(nullptr).snapshot();
  std::ofstream out(path);
  out << er::obs::to_prometheus(snap);
  std::cout << "er_served: final metrics written to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse_flags(argc, argv, &flags)) return 2;

  const GridCase grid = make_grid(flags);

  er::net::StackOptions stack_opts;
  stack_opts.reduction.num_blocks = flags.blocks;
  stack_opts.reduction.sparsify_quality = 1.0;
  stack_opts.reduction.parallel.num_threads = flags.threads;
  stack_opts.attach_cache = !flags.no_cache;
  stack_opts.staleness_bound = flags.staleness;
  stack_opts.fail_fast = true;
  // All metrics land in the global registry (one unified /metrics surface).
  er::net::ServingStack stack(grid.net, grid.ports, stack_opts, nullptr);

  er::net::ServerOptions server_opts;
  server_opts.port = flags.port;
  server_opts.http_port = flags.metrics_port;
  server_opts.dispatcher_threads = flags.dispatchers;
  server_opts.query_threads = flags.threads;
  server_opts.admission_capacity = flags.queue_cap;
  server_opts.max_connections = flags.max_conn;
  er::net::Server server(&stack.store(), server_opts, stack.mod_fn());
  if (!server.start()) {
    std::cerr << "er_served: could not bind 127.0.0.1:" << flags.port
              << " / :" << flags.metrics_port << "\n";
    return 1;
  }

  if (flags.warmup > 0) run_warmup(server, stack, flags.warmup, flags.seed);

  // The startup line is a contract: tools/loopback_smoke.py and operators
  // parse the bound ports from it (ephemeral ports are the default).
  std::cout << "er_served listening on 127.0.0.1:" << server.port()
            << " (metrics :" << server.http_port() << ")" << std::endl;

  std::signal(SIGTERM, handle_stop);
  std::signal(SIGINT, handle_stop);
  while (!g_stop) {
    struct timespec ts;
    ts.tv_sec = 0;
    ts.tv_nsec = 50 * 1000 * 1000;
    nanosleep(&ts, nullptr);
  }

  std::cout << "er_served: draining...\n";
  server.stop();    // no new work; every admitted request answered
  stack.flush();    // every accepted modification published
  if (!flags.final_metrics.empty()) dump_metrics(flags.final_metrics);
  std::cout << "er_served: drained, bye\n";
  return 0;
}
