// Reverse Cuthill-McKee bandwidth-reducing ordering.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace er {

/// RCM ordering of a symmetric matrix's adjacency structure.
/// Returns perm with perm[new] = old. Starts each component from a
/// pseudo-peripheral node found by repeated BFS.
std::vector<index_t> rcm_order(const CscMatrix& a);

}  // namespace er
