#include "order/mindeg.hpp"

#include <algorithm>
#include <stdexcept>

#include "order/rcm.hpp"

namespace er {

namespace {

/// Degree-bucket structure: doubly-linked lists per degree value.
class DegreeBuckets {
 public:
  explicit DegreeBuckets(index_t n)
      : head_(static_cast<std::size_t>(n) + 1, -1),
        next_(static_cast<std::size_t>(n), -1),
        prev_(static_cast<std::size_t>(n), -1),
        deg_(static_cast<std::size_t>(n), 0),
        min_deg_(0) {}

  void insert(index_t v, index_t d) {
    deg_[static_cast<std::size_t>(v)] = d;
    next_[static_cast<std::size_t>(v)] = head_[static_cast<std::size_t>(d)];
    prev_[static_cast<std::size_t>(v)] = -1;
    if (head_[static_cast<std::size_t>(d)] >= 0)
      prev_[static_cast<std::size_t>(head_[static_cast<std::size_t>(d)])] = v;
    head_[static_cast<std::size_t>(d)] = v;
    min_deg_ = std::min(min_deg_, d);
  }

  void remove(index_t v) {
    const index_t d = deg_[static_cast<std::size_t>(v)];
    const index_t nx = next_[static_cast<std::size_t>(v)];
    const index_t pv = prev_[static_cast<std::size_t>(v)];
    if (pv >= 0)
      next_[static_cast<std::size_t>(pv)] = nx;
    else
      head_[static_cast<std::size_t>(d)] = nx;
    if (nx >= 0) prev_[static_cast<std::size_t>(nx)] = pv;
  }

  void update(index_t v, index_t d) {
    remove(v);
    insert(v, d);
  }

  /// Pop a vertex of minimum degree; -1 when empty.
  index_t pop_min() {
    while (min_deg_ < static_cast<index_t>(head_.size()) &&
           head_[static_cast<std::size_t>(min_deg_)] < 0)
      ++min_deg_;
    if (min_deg_ >= static_cast<index_t>(head_.size())) return -1;
    const index_t v = head_[static_cast<std::size_t>(min_deg_)];
    remove(v);
    return v;
  }

 private:
  std::vector<index_t> head_;
  std::vector<index_t> next_;
  std::vector<index_t> prev_;
  std::vector<index_t> deg_;
  index_t min_deg_;
};

}  // namespace

std::vector<index_t> mindeg_order(const CscMatrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("mindeg_order: not square");
  const index_t n = a.cols();
  if (n == 0) return {};

  // Variable adjacency (off-diagonal pattern) and element lists.
  std::vector<std::vector<index_t>> adj(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> elems(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> bound(static_cast<std::size_t>(n));
  std::vector<char> alive_var(static_cast<std::size_t>(n), 1);
  std::vector<char> alive_elem(static_cast<std::size_t>(n), 0);

  const auto& cp = a.col_ptr();
  const auto& ri = a.row_ind();
  for (index_t c = 0; c < n; ++c) {
    auto& list = adj[static_cast<std::size_t>(c)];
    list.reserve(static_cast<std::size_t>(cp[static_cast<std::size_t>(c) + 1] -
                                          cp[static_cast<std::size_t>(c)]));
    for (offset_t p = cp[static_cast<std::size_t>(c)];
         p < cp[static_cast<std::size_t>(c) + 1]; ++p) {
      const index_t r = ri[static_cast<std::size_t>(p)];
      if (r != c) list.push_back(r);
    }
  }

  DegreeBuckets buckets(n);
  for (index_t v = 0; v < n; ++v)
    buckets.insert(v, static_cast<index_t>(adj[static_cast<std::size_t>(v)].size()));

  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);   // variable marks
  std::vector<index_t> emark(static_cast<std::size_t>(n), -1);  // element marks
  std::vector<index_t> ew(static_cast<std::size_t>(n), 0);      // |Le \ Lp| counters
  std::vector<index_t> lp;                                      // pivot boundary

  std::vector<index_t> perm;
  perm.reserve(static_cast<std::size_t>(n));

  auto clean_bound = [&](index_t e) {
    auto& b = bound[static_cast<std::size_t>(e)];
    std::size_t w = 0;
    for (index_t v : b)
      if (alive_var[static_cast<std::size_t>(v)]) b[w++] = v;
    b.resize(w);
  };

  for (index_t step = 0; step < n; ++step) {
    const index_t p = buckets.pop_min();
    if (p < 0) throw std::logic_error("mindeg_order: buckets exhausted early");
    alive_var[static_cast<std::size_t>(p)] = 0;
    perm.push_back(p);

    // Build Lp = alive neighbours of p through variables and elements.
    const index_t stamp = step;
    lp.clear();
    mark[static_cast<std::size_t>(p)] = stamp;
    for (index_t v : adj[static_cast<std::size_t>(p)]) {
      if (alive_var[static_cast<std::size_t>(v)] &&
          mark[static_cast<std::size_t>(v)] != stamp) {
        mark[static_cast<std::size_t>(v)] = stamp;
        lp.push_back(v);
      }
    }
    for (index_t e : elems[static_cast<std::size_t>(p)]) {
      if (!alive_elem[static_cast<std::size_t>(e)]) continue;
      for (index_t v : bound[static_cast<std::size_t>(e)]) {
        if (alive_var[static_cast<std::size_t>(v)] &&
            mark[static_cast<std::size_t>(v)] != stamp) {
          mark[static_cast<std::size_t>(v)] = stamp;
          lp.push_back(v);
        }
      }
      // e is absorbed into the new element p.
      alive_elem[static_cast<std::size_t>(e)] = 0;
      bound[static_cast<std::size_t>(e)].clear();
      bound[static_cast<std::size_t>(e)].shrink_to_fit();
    }
    adj[static_cast<std::size_t>(p)].clear();
    adj[static_cast<std::size_t>(p)].shrink_to_fit();
    elems[static_cast<std::size_t>(p)].clear();
    elems[static_cast<std::size_t>(p)].shrink_to_fit();

    if (lp.empty()) continue;  // isolated variable

    alive_elem[static_cast<std::size_t>(p)] = 1;
    bound[static_cast<std::size_t>(p)] = lp;

    // AMD external-degree counters: w[e] = |Le \ Lp| for elements adjacent
    // to Lp members.
    for (index_t i : lp) {
      for (index_t e : elems[static_cast<std::size_t>(i)]) {
        if (!alive_elem[static_cast<std::size_t>(e)] || e == p) continue;
        if (emark[static_cast<std::size_t>(e)] != stamp) {
          emark[static_cast<std::size_t>(e)] = stamp;
          clean_bound(e);
          ew[static_cast<std::size_t>(e)] =
              static_cast<index_t>(bound[static_cast<std::size_t>(e)].size());
        }
        --ew[static_cast<std::size_t>(e)];
      }
    }

    const auto lp_size = static_cast<index_t>(lp.size());
    for (index_t i : lp) {
      // Prune adj[i]: drop dead vars and anything inside Lp (now reached
      // through element p).
      auto& ai = adj[static_cast<std::size_t>(i)];
      std::size_t w = 0;
      for (index_t v : ai) {
        if (alive_var[static_cast<std::size_t>(v)] &&
            mark[static_cast<std::size_t>(v)] != stamp)
          ai[w++] = v;
      }
      ai.resize(w);

      // Prune elems[i] and append p.
      auto& ei = elems[static_cast<std::size_t>(i)];
      std::size_t we = 0;
      index_t elem_deg = 0;
      for (index_t e : ei) {
        if (alive_elem[static_cast<std::size_t>(e)] && e != p) {
          ei[we++] = e;
          elem_deg += std::max<index_t>(ew[static_cast<std::size_t>(e)], 0);
        }
      }
      ei.resize(we);
      ei.push_back(p);

      index_t d = static_cast<index_t>(ai.size()) + (lp_size - 1) + elem_deg;
      d = std::min<index_t>(d, n - step - 1);
      d = std::max<index_t>(d, 0);
      buckets.update(i, d);
    }
  }
  return perm;
}

std::vector<index_t> compute_ordering(const CscMatrix& a, Ordering kind) {
  switch (kind) {
    case Ordering::kNatural:
      return identity_permutation(a.cols());
    case Ordering::kRcm:
      return rcm_order(a);
    case Ordering::kMinDeg:
      return mindeg_order(a);
  }
  return identity_permutation(a.cols());
}

std::vector<index_t> identity_permutation(index_t n) {
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  return perm;
}

bool is_permutation(const std::vector<index_t>& perm) {
  const auto n = static_cast<index_t>(perm.size());
  std::vector<char> seen(perm.size(), 0);
  for (index_t v : perm) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = 1;
  }
  return true;
}

std::vector<index_t> invert_permutation(const std::vector<index_t>& perm) {
  std::vector<index_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  return inv;
}

}  // namespace er
