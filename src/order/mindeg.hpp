// Quotient-graph minimum-degree ordering with AMD-style approximate
// external degrees (Amestoy, Davis, Duff). This is the library's
// fill-reducing ordering — the role METIS/AMD plays in the paper's setup.
//
// Differences from reference AMD: no supervariable (indistinguishable-node)
// compression and no aggressive element absorption; quality is within a
// small factor on the mesh/social graphs used here, which is all the
// downstream algorithms need (they only consume the resulting permutation).
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace er {

/// Minimum-degree ordering of a symmetric matrix pattern.
/// Returns perm with perm[new] = old.
std::vector<index_t> mindeg_order(const CscMatrix& a);

/// Ordering strategies understood by the factorization layer.
enum class Ordering {
  kNatural,  // identity
  kRcm,      // reverse Cuthill-McKee
  kMinDeg,   // quotient-graph minimum degree (default)
};

/// Dispatch helper: compute the permutation for the given strategy.
std::vector<index_t> compute_ordering(const CscMatrix& a, Ordering kind);

/// Identity permutation of size n.
std::vector<index_t> identity_permutation(index_t n);

/// Validate that perm is a permutation of [0, n).
bool is_permutation(const std::vector<index_t>& perm);

/// inverse[perm[i]] = i.
std::vector<index_t> invert_permutation(const std::vector<index_t>& perm);

}  // namespace er
