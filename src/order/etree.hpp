// Elimination tree and related symbolic analysis (Davis, "Direct Methods
// for Sparse Linear Systems", ch. 4).
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace er {

/// Elimination tree of a symmetric matrix (full symmetric CSC input; only
/// the upper-triangular entries are inspected). parent[root] == -1.
std::vector<index_t> etree(const CscMatrix& a);

/// Postorder of a forest given by parent[]; returns a permutation
/// (new -> old is NOT this; post[k] = k-th node in postorder).
std::vector<index_t> postorder(const std::vector<index_t>& parent);

/// Height of each node in the forest (leaves have height 0); the maximum is
/// a lower bound proxy for dependency depth.
std::vector<index_t> tree_heights(const std::vector<index_t>& parent);

}  // namespace er
