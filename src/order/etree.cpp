#include "order/etree.hpp"

#include <stdexcept>

namespace er {

std::vector<index_t> etree(const CscMatrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("etree: not square");
  const index_t n = a.cols();
  std::vector<index_t> parent(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n), -1);

  const auto& cp = a.col_ptr();
  const auto& ri = a.row_ind();

  for (index_t k = 0; k < n; ++k) {
    for (offset_t p = cp[static_cast<std::size_t>(k)];
         p < cp[static_cast<std::size_t>(k) + 1]; ++p) {
      index_t i = ri[static_cast<std::size_t>(p)];
      // Traverse from i up to the root of its current subtree, compressing
      // paths onto k.
      while (i != -1 && i < k) {
        const index_t next = ancestor[static_cast<std::size_t>(i)];
        ancestor[static_cast<std::size_t>(i)] = k;
        if (next == -1) parent[static_cast<std::size_t>(i)] = k;
        i = next;
      }
    }
  }
  return parent;
}

std::vector<index_t> postorder(const std::vector<index_t>& parent) {
  const auto n = static_cast<index_t>(parent.size());
  // Build child lists (reverse order so traversal visits small first).
  std::vector<index_t> head(static_cast<std::size_t>(n), -1);
  std::vector<index_t> next(static_cast<std::size_t>(n), -1);
  for (index_t v = n; v-- > 0;) {
    const index_t p = parent[static_cast<std::size_t>(v)];
    if (p >= 0) {
      next[static_cast<std::size_t>(v)] = head[static_cast<std::size_t>(p)];
      head[static_cast<std::size_t>(p)] = v;
    }
  }

  std::vector<index_t> post;
  post.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> stack;
  for (index_t root = 0; root < n; ++root) {
    if (parent[static_cast<std::size_t>(root)] != -1) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const index_t v = stack.back();
      const index_t child = head[static_cast<std::size_t>(v)];
      if (child == -1) {
        stack.pop_back();
        post.push_back(v);
      } else {
        head[static_cast<std::size_t>(v)] = next[static_cast<std::size_t>(child)];
        stack.push_back(child);
      }
    }
  }
  return post;
}

std::vector<index_t> tree_heights(const std::vector<index_t>& parent) {
  const auto n = static_cast<index_t>(parent.size());
  std::vector<index_t> height(static_cast<std::size_t>(n), 0);
  // Nodes are numbered so that parent > child in an etree; a forward sweep
  // propagates heights in one pass.
  for (index_t v = 0; v < n; ++v) {
    const index_t p = parent[static_cast<std::size_t>(v)];
    if (p >= 0)
      height[static_cast<std::size_t>(p)] =
          std::max(height[static_cast<std::size_t>(p)],
                   static_cast<index_t>(height[static_cast<std::size_t>(v)] + 1));
  }
  return height;
}

}  // namespace er
