#include "order/rcm.hpp"

#include <algorithm>
#include <stdexcept>

namespace er {

namespace {

/// BFS from `start` over the matrix pattern; returns nodes level by level
/// and the index of a node in the last level (candidate peripheral node).
struct BfsResult {
  std::vector<index_t> order;
  index_t last_node = -1;
  index_t levels = 0;
};

BfsResult pattern_bfs(const CscMatrix& a, index_t start,
                      std::vector<index_t>& mark, index_t stamp,
                      bool sort_by_degree, const std::vector<index_t>& degree) {
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_ind();
  BfsResult res;
  res.order.push_back(start);
  mark[static_cast<std::size_t>(start)] = stamp;
  std::size_t level_begin = 0;
  std::vector<index_t> frontier;
  while (level_begin < res.order.size()) {
    const std::size_t level_end = res.order.size();
    frontier.clear();
    for (std::size_t q = level_begin; q < level_end; ++q) {
      const index_t u = res.order[q];
      for (offset_t p = cp[static_cast<std::size_t>(u)];
           p < cp[static_cast<std::size_t>(u) + 1]; ++p) {
        const index_t v = ri[static_cast<std::size_t>(p)];
        if (v == u || mark[static_cast<std::size_t>(v)] == stamp) continue;
        mark[static_cast<std::size_t>(v)] = stamp;
        frontier.push_back(v);
      }
    }
    if (sort_by_degree)
      std::sort(frontier.begin(), frontier.end(),
                [&](index_t x, index_t y) {
                  return degree[static_cast<std::size_t>(x)] <
                         degree[static_cast<std::size_t>(y)];
                });
    for (index_t v : frontier) res.order.push_back(v);
    level_begin = level_end;
    if (!frontier.empty()) ++res.levels;
  }
  res.last_node = res.order.back();
  return res;
}

}  // namespace

std::vector<index_t> rcm_order(const CscMatrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("rcm_order: not square");
  const index_t n = a.cols();
  std::vector<index_t> degree(static_cast<std::size_t>(n));
  for (index_t c = 0; c < n; ++c)
    degree[static_cast<std::size_t>(c)] = static_cast<index_t>(
        a.col_ptr()[static_cast<std::size_t>(c) + 1] -
        a.col_ptr()[static_cast<std::size_t>(c)]);

  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  std::vector<index_t> visited(static_cast<std::size_t>(n), 0);
  std::vector<index_t> perm;
  perm.reserve(static_cast<std::size_t>(n));

  index_t stamp = 0;
  for (index_t s = 0; s < n; ++s) {
    if (visited[static_cast<std::size_t>(s)]) continue;

    // Find a pseudo-peripheral start: BFS twice from the component seed.
    BfsResult b1 = pattern_bfs(a, s, mark, ++stamp, false, degree);
    BfsResult b2 = pattern_bfs(a, b1.last_node, mark, ++stamp, false, degree);
    const index_t start = b2.levels > b1.levels ? b1.last_node : s;

    BfsResult cm = pattern_bfs(a, start, mark, ++stamp, true, degree);
    for (index_t v : cm.order) {
      visited[static_cast<std::size_t>(v)] = 1;
      perm.push_back(v);
    }
  }
  // Reverse for RCM.
  std::reverse(perm.begin(), perm.end());
  return perm;
}

}  // namespace er
