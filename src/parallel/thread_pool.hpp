// Fixed-size thread pool and a blocking parallel_for, the concurrency
// substrate for block-parallel reduction (Alg. 1 steps 2-4 are independent
// per block) and chunked effective-resistance batch queries.
//
// Design rules (see DESIGN.md §3 "Concurrency model"):
//   * Determinism is owned by the callers: every parallel site derives its
//     RNG stream as mix_seed(seed, stream_id), so results are bit-identical
//     at any thread count, including 1.
//   * parallel_for called from inside a pool worker runs the body inline
//     (serially). This makes nested parallelism — reduce_block on a worker
//     issuing a batched ER query — deadlock-free by construction.
//   * Tasks may throw; the first exception is rethrown on the calling
//     thread after all chunks finish.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace er {

namespace obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

/// Threading knob carried by ReductionOptions (and bench flags).
struct ParallelOptions {
  /// 0 = auto (hardware concurrency), 1 = serial, n = exactly n threads.
  int num_threads = 1;
};

/// Map the ParallelOptions convention onto an actual thread count (>= 1).
int resolve_num_threads(int requested);

/// Fixed-size pool of worker threads draining a FIFO task queue.
/// submit() is thread-safe, including from inside a worker task.
///
/// Observability (DESIGN.md §6): every pool reports a queue-depth gauge
/// (`er_pool_queue_depth`), a worker-count gauge (`er_pool_threads`),
/// per-task queue-wait and run-time histograms
/// (`er_pool_task_queue_wait_seconds` / `er_pool_task_run_seconds` — the
/// queue-wait vs compute split of anything fanned across the pool), and a
/// busy-time counter (`er_pool_busy_us_total`; utilization =
/// busy_us / threads / elapsed). The cost is three steady_clock reads
/// per *task* (tasks are chunk-granular), nothing per iteration.
class ThreadPool {
 public:
  /// Spawns resolve_num_threads(num_threads) workers immediately.
  /// Metrics go to `registry` (null = the process-wide global registry);
  /// pools sharing a registry aggregate into the same series.
  explicit ThreadPool(int num_threads = 0,
                      obs::MetricsRegistry* registry = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Enqueue a task; the future resolves when it finishes and rethrows any
  /// exception the task raised. Never blocks (safe to call from a worker).
  std::future<void> submit(std::function<void()> task) ER_EXCLUDES(mutex_);

  /// True when the calling thread is a worker of *any* ThreadPool. Used by
  /// parallel_for to fall back to inline execution for nested parallelism.
  static bool on_worker_thread();

 private:
  /// A queued task plus its enqueue instant (the queue-wait anchor).
  struct QueuedTask {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;  // main-thread only (ctor/dtor)
  util::Mutex mutex_;
  std::queue<QueuedTask> queue_ ER_GUARDED_BY(mutex_);
  std::condition_variable cv_;
  bool stop_ ER_GUARDED_BY(mutex_) = false;
  // Registry-backed instrumentation (pointers cached at construction;
  // recording is lock-free).
  obs::Counter* tasks_total_;
  obs::Counter* busy_us_total_;
  obs::Gauge* queue_depth_;
  obs::Gauge* threads_gauge_;
  obs::Histogram* queue_wait_hist_;
  obs::Histogram* run_hist_;
};

/// Split [begin, end) into chunks of at least `grain` iterations and run
/// `body(chunk_begin, chunk_end)` across the pool, blocking until all chunks
/// complete. Runs inline (one chunk, calling thread) when `pool` is null,
/// has one thread, the range is within one grain, or the caller already is
/// a pool worker. The first exception thrown by any chunk is rethrown here
/// after all chunks have finished.
void parallel_for(ThreadPool* pool, index_t begin, index_t end, index_t grain,
                  const std::function<void(index_t, index_t)>& body);

}  // namespace er
