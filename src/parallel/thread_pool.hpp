// Fixed-size thread pool and a blocking parallel_for, the concurrency
// substrate for block-parallel reduction (Alg. 1 steps 2-4 are independent
// per block) and chunked effective-resistance batch queries.
//
// Design rules (see DESIGN.md §3 "Concurrency model"):
//   * Determinism is owned by the callers: every parallel site derives its
//     RNG stream as mix_seed(seed, stream_id), so results are bit-identical
//     at any thread count, including 1.
//   * parallel_for called from inside a pool worker runs the body inline
//     (serially). This makes nested parallelism — reduce_block on a worker
//     issuing a batched ER query — deadlock-free by construction.
//   * Tasks may throw; the first exception is rethrown on the calling
//     thread after all chunks finish.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/types.hpp"

namespace er {

/// Threading knob carried by ReductionOptions (and bench flags).
struct ParallelOptions {
  /// 0 = auto (hardware concurrency), 1 = serial, n = exactly n threads.
  int num_threads = 1;
};

/// Map the ParallelOptions convention onto an actual thread count (>= 1).
int resolve_num_threads(int requested);

/// Fixed-size pool of worker threads draining a FIFO task queue.
/// submit() is thread-safe, including from inside a worker task.
class ThreadPool {
 public:
  /// Spawns resolve_num_threads(num_threads) workers immediately.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Enqueue a task; the future resolves when it finishes and rethrows any
  /// exception the task raised. Never blocks (safe to call from a worker).
  std::future<void> submit(std::function<void()> task);

  /// True when the calling thread is a worker of *any* ThreadPool. Used by
  /// parallel_for to fall back to inline execution for nested parallelism.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Split [begin, end) into chunks of at least `grain` iterations and run
/// `body(chunk_begin, chunk_end)` across the pool, blocking until all chunks
/// complete. Runs inline (one chunk, calling thread) when `pool` is null,
/// has one thread, the range is within one grain, or the caller already is
/// a pool worker. The first exception thrown by any chunk is rethrown here
/// after all chunks have finished.
void parallel_for(ThreadPool* pool, index_t begin, index_t end, index_t grain,
                  const std::function<void(index_t, index_t)>& body);

}  // namespace er
