#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace er {

namespace {
thread_local bool t_on_worker = false;

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

int resolve_num_threads(int requested) {
  if (requested < 0)
    throw std::invalid_argument("resolve_num_threads: negative thread count");
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads, obs::MetricsRegistry* registry) {
  obs::MetricsRegistry& reg = obs::registry_or_global(registry);
  tasks_total_ = &reg.counter("er_pool_tasks_total", {},
                              "Tasks submitted to the thread pool");
  busy_us_total_ =
      &reg.counter("er_pool_busy_us_total", {},
                   "Microseconds workers spent running tasks (utilization = "
                   "busy_us / threads / elapsed)");
  queue_depth_ = &reg.gauge("er_pool_queue_depth", {},
                            "Tasks enqueued but not yet started");
  threads_gauge_ = &reg.gauge("er_pool_threads", {}, "Live worker threads");
  queue_wait_hist_ =
      &reg.histogram("er_pool_task_queue_wait_seconds", {},
                     "Submit-to-start wait per task (queue pressure)");
  run_hist_ = &reg.histogram("er_pool_task_run_seconds", {},
                             "Wall-clock run time per task (compute side "
                             "of the queue-wait/compute split)");
  const int n = resolve_num_threads(num_threads);
  threads_gauge_->add(n);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(&mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  threads_gauge_->add(-static_cast<std::int64_t>(workers_.size()));
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  QueuedTask queued{std::packaged_task<void()>(std::move(task)),
                    std::chrono::steady_clock::now()};
  std::future<void> fut = queued.task.get_future();
  {
    util::MutexLock lock(&mutex_);
    if (stop_)
      throw std::runtime_error("ThreadPool::submit: pool is shutting down");
    queue_.push(std::move(queued));
  }
  tasks_total_->add(1);
  queue_depth_->add(1);
  cv_.notify_one();
  return fut;
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    QueuedTask queued;
    {
      util::UniqueLock lock(&mutex_);
      // Explicit wait loop (not cv_.wait(lock, pred)): the guarded fields
      // are read in this annotated scope, where the analysis can see the
      // lock is held, instead of inside an unannotated lambda.
      while (!stop_ && queue_.empty()) cv_.wait(lock.native());
      if (queue_.empty()) return;  // stop_ set and queue drained
      queued = std::move(queue_.front());
      queue_.pop();
    }
    const auto start = std::chrono::steady_clock::now();
    queue_depth_->add(-1);
    queue_wait_hist_->record(seconds_between(queued.enqueued, start));
    queued.task();  // exceptions land in the task's future
    const auto end = std::chrono::steady_clock::now();
    const double run = seconds_between(start, end);
    run_hist_->record(run);
    busy_us_total_->add(static_cast<std::uint64_t>(std::llround(run * 1e6)));
  }
}

void parallel_for(ThreadPool* pool, index_t begin, index_t end, index_t grain,
                  const std::function<void(index_t, index_t)>& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const index_t n = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || n <= grain ||
      ThreadPool::on_worker_thread()) {
    body(begin, end);
    return;
  }

  // Cap chunk count at a small multiple of the worker count: enough slack
  // for load balancing without swamping the queue.
  const index_t by_grain = (n + grain - 1) / grain;
  const index_t max_chunks =
      static_cast<index_t>(pool->num_threads()) * 4;
  const index_t chunks = std::min(by_grain, std::max<index_t>(1, max_chunks));
  const index_t step = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(chunks));
  for (index_t lo = begin; lo < end; lo += step) {
    const index_t hi = std::min<index_t>(lo + step, end);
    futures.push_back(pool->submit([&body, lo, hi] { body(lo, hi); }));
  }

  // Wait for every chunk before rethrowing, so no task can outlive the
  // caller's stack frame.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace er
