// Sorted sparse vector — the storage unit for columns of the approximate
// inverse Z̃ and for all effective-resistance query arithmetic.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace er {

/// Immutable-ish sparse vector with entries sorted by index.
struct SparseVector {
  std::vector<index_t> idx;   // strictly increasing
  std::vector<real_t> val;    // parallel to idx

  [[nodiscard]] std::size_t nnz() const { return idx.size(); }

  /// Sum of |v| over entries.
  [[nodiscard]] real_t norm1() const;

  /// Euclidean norm squared.
  [[nodiscard]] real_t norm2_squared() const;

  /// O(log nnz) lookup, 0 when absent.
  [[nodiscard]] real_t at(index_t i) const;

  /// Scatter into a dense vector of the given length.
  [[nodiscard]] std::vector<real_t> to_dense(index_t n) const;
};

/// ||a - b||_2^2 via a merge over the sorted index sets.
/// This is the per-query kernel of Alg. 3: R(p,q) ≈ ||z̃_p - z̃_q||².
real_t distance_squared(const SparseVector& a, const SparseVector& b);

/// ||a - b||_1 via merge.
real_t distance_1norm(const SparseVector& a, const SparseVector& b);

/// c = a + alpha * b.
SparseVector add_scaled(const SparseVector& a, real_t alpha,
                        const SparseVector& b);

}  // namespace er
