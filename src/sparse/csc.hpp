// Compressed sparse column (CSC) matrix — the workhorse format.
//
// Invariants maintained by every constructor/factory:
//   * col_ptr has size cols()+1, is non-decreasing, col_ptr[0] == 0;
//   * row indices within each column are strictly increasing;
//   * no explicit zeros are required, but they are permitted.
#pragma once

#include <string>
#include <vector>

#include "sparse/coo.hpp"
#include "util/types.hpp"

namespace er {

class CscMatrix {
 public:
  CscMatrix() = default;

  /// Empty matrix of the given shape (no nonzeros).
  CscMatrix(index_t rows, index_t cols);

  /// Raw constructor; validates the CSC invariants in debug builds.
  CscMatrix(index_t rows, index_t cols, std::vector<offset_t> col_ptr,
            std::vector<index_t> row_ind, std::vector<real_t> values);

  /// Compress a triplet matrix; duplicate entries are summed.
  static CscMatrix from_triplets(const TripletMatrix& t);

  /// Identity matrix of order n.
  static CscMatrix identity(index_t n);

  /// Build from a dense column-major buffer, dropping entries with
  /// |a_ij| <= tol (tol = 0 keeps exact nonzeros only).
  static CscMatrix from_dense(index_t rows, index_t cols,
                              const std::vector<real_t>& colmajor,
                              real_t tol = 0.0);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] offset_t nnz() const { return col_ptr_.empty() ? 0 : col_ptr_.back(); }

  [[nodiscard]] const std::vector<offset_t>& col_ptr() const { return col_ptr_; }
  [[nodiscard]] const std::vector<index_t>& row_ind() const { return row_ind_; }
  [[nodiscard]] const std::vector<real_t>& values() const { return values_; }
  std::vector<real_t>& values() { return values_; }

  /// O(log nnz(col)) random access; returns 0 when the entry is absent.
  [[nodiscard]] real_t at(index_t row, index_t col) const;

  /// y = A x (dense vectors).
  void multiply(const std::vector<real_t>& x, std::vector<real_t>& y) const;
  [[nodiscard]] std::vector<real_t> multiply(const std::vector<real_t>& x) const;

  /// y += alpha * A x.
  void gaxpy(const std::vector<real_t>& x, real_t alpha,
             std::vector<real_t>& y) const;

  /// y = A^T x without forming the transpose.
  void multiply_transpose(const std::vector<real_t>& x,
                          std::vector<real_t>& y) const;

  [[nodiscard]] CscMatrix transpose() const;

  /// Symmetric permutation B = P A P^T where row/col i of B is
  /// row/col perm[i] of A (perm maps new index -> old index).
  /// A must be symmetric for the result to be meaningful.
  [[nodiscard]] CscMatrix permute_symmetric(const std::vector<index_t>& perm) const;

  /// Extract the submatrix A(rows_sel, cols_sel). Selections map
  /// new index -> old index and must contain valid unique indices.
  [[nodiscard]] CscMatrix extract(const std::vector<index_t>& rows_sel,
                                  const std::vector<index_t>& cols_sel) const;

  /// Strictly lower / lower-including-diagonal triangle.
  [[nodiscard]] CscMatrix lower_triangle(bool include_diagonal) const;

  /// Main diagonal as a dense vector (length min(rows, cols)).
  [[nodiscard]] std::vector<real_t> diagonal() const;

  /// C = A + alpha * B (shapes must match).
  [[nodiscard]] CscMatrix add(const CscMatrix& other, real_t alpha = 1.0) const;

  /// Exact structural+numerical symmetry test within tolerance.
  [[nodiscard]] bool is_symmetric(real_t tol = 0.0) const;

  /// Dense column-major copy (tests/small problems only).
  [[nodiscard]] std::vector<real_t> to_dense() const;

  /// Drop entries with |a_ij| <= tol; keeps the diagonal if keep_diagonal.
  [[nodiscard]] CscMatrix drop_small(real_t tol, bool keep_diagonal) const;

  /// Frobenius norm.
  [[nodiscard]] real_t frobenius_norm() const;

  /// max |a_ij|.
  [[nodiscard]] real_t max_abs() const;

  /// Verify the CSC invariants (sorted unique row indices, valid pointers).
  [[nodiscard]] bool check_invariants() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<offset_t> col_ptr_{0};
  std::vector<index_t> row_ind_;
  std::vector<real_t> values_;
};

}  // namespace er
