#include "sparse/coo.hpp"

#include <stdexcept>

namespace er {

void TripletMatrix::add(index_t row, index_t col, real_t value) {
  if (row < 0 || row >= rows_ || col < 0 || col >= cols_)
    throw std::out_of_range("TripletMatrix::add: index out of range");
  entries_.push_back({row, col, value});
}

void TripletMatrix::add_symmetric(index_t r, index_t c, real_t value) {
  add(r, c, value);
  if (r != c) add(c, r, value);
}

void TripletMatrix::stamp_conductance(index_t a, index_t b, real_t g) {
  add(a, a, g);
  add(b, b, g);
  add(a, b, -g);
  add(b, a, -g);
}

}  // namespace er
