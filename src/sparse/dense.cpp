#include "sparse/dense.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace er {

std::vector<real_t> DenseMatrix::multiply(const std::vector<real_t>& x) const {
  if (x.size() != static_cast<std::size_t>(cols_))
    throw std::invalid_argument("DenseMatrix::multiply: size mismatch");
  std::vector<real_t> y(static_cast<std::size_t>(rows_), 0.0);
  for (index_t c = 0; c < cols_; ++c) {
    const real_t xc = x[static_cast<std::size_t>(c)];
    if (xc == 0.0) continue;
    for (index_t r = 0; r < rows_; ++r)
      y[static_cast<std::size_t>(r)] += (*this)(r, c) * xc;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  if (cols_ != other.rows_)
    throw std::invalid_argument("DenseMatrix::multiply: shape mismatch");
  DenseMatrix out(rows_, other.cols_);
  for (index_t j = 0; j < other.cols_; ++j)
    for (index_t k = 0; k < cols_; ++k) {
      const real_t b = other(k, j);
      if (b == 0.0) continue;
      for (index_t i = 0; i < rows_; ++i) out(i, j) += (*this)(i, k) * b;
    }
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (index_t c = 0; c < cols_; ++c)
    for (index_t r = 0; r < rows_; ++r) out(c, r) = (*this)(r, c);
  return out;
}

bool DenseMatrix::cholesky_in_place() {
  if (rows_ != cols_) return false;
  const index_t n = rows_;
  for (index_t j = 0; j < n; ++j) {
    real_t d = (*this)(j, j);
    for (index_t k = 0; k < j; ++k) d -= (*this)(j, k) * (*this)(j, k);
    if (d <= 0.0) return false;
    const real_t ljj = std::sqrt(d);
    (*this)(j, j) = ljj;
    for (index_t i = j + 1; i < n; ++i) {
      real_t s = (*this)(i, j);
      for (index_t k = 0; k < j; ++k) s -= (*this)(i, k) * (*this)(j, k);
      (*this)(i, j) = s / ljj;
    }
    for (index_t i = 0; i < j; ++i) (*this)(i, j) = 0.0;  // zero upper
  }
  return true;
}

void DenseMatrix::cholesky_solve(std::vector<real_t>& b) const {
  const index_t n = rows_;
  if (b.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("cholesky_solve: size mismatch");
  // Forward solve L y = b.
  for (index_t j = 0; j < n; ++j) {
    b[static_cast<std::size_t>(j)] /= (*this)(j, j);
    const real_t yj = b[static_cast<std::size_t>(j)];
    for (index_t i = j + 1; i < n; ++i)
      b[static_cast<std::size_t>(i)] -= (*this)(i, j) * yj;
  }
  // Backward solve L^T x = y.
  for (index_t j = n; j-- > 0;) {
    real_t s = b[static_cast<std::size_t>(j)];
    for (index_t i = j + 1; i < n; ++i)
      s -= (*this)(i, j) * b[static_cast<std::size_t>(i)];
    b[static_cast<std::size_t>(j)] = s / (*this)(j, j);
  }
}

DenseMatrix DenseMatrix::spd_inverse() const {
  DenseMatrix f = *this;
  if (!f.cholesky_in_place())
    throw std::runtime_error("spd_inverse: matrix is not SPD");
  DenseMatrix inv(rows_, rows_);
  std::vector<real_t> e(static_cast<std::size_t>(rows_), 0.0);
  for (index_t c = 0; c < rows_; ++c) {
    std::fill(e.begin(), e.end(), 0.0);
    e[static_cast<std::size_t>(c)] = 1.0;
    f.cholesky_solve(e);
    for (index_t r = 0; r < rows_; ++r) inv(r, c) = e[static_cast<std::size_t>(r)];
  }
  return inv;
}

bool DenseMatrix::solve_general(DenseMatrix a, std::vector<real_t>& b) {
  const index_t n = a.rows();
  if (a.cols() != n || b.size() != static_cast<std::size_t>(n)) return false;
  std::vector<index_t> piv(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) piv[static_cast<std::size_t>(i)] = i;

  for (index_t k = 0; k < n; ++k) {
    // Partial pivot.
    index_t p = k;
    real_t best = std::abs(a(k, k));
    for (index_t i = k + 1; i < n; ++i) {
      const real_t v = std::abs(a(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best < 1e-300) return false;
    if (p != k) {
      for (index_t c = 0; c < n; ++c) std::swap(a(k, c), a(p, c));
      std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(p)]);
    }
    const real_t pivot = a(k, k);
    for (index_t i = k + 1; i < n; ++i) {
      const real_t f = a(i, k) / pivot;
      if (f == 0.0) continue;
      for (index_t c = k; c < n; ++c) a(i, c) -= f * a(k, c);
      b[static_cast<std::size_t>(i)] -= f * b[static_cast<std::size_t>(k)];
    }
  }
  for (index_t k = n; k-- > 0;) {
    real_t s = b[static_cast<std::size_t>(k)];
    for (index_t c = k + 1; c < n; ++c)
      s -= a(k, c) * b[static_cast<std::size_t>(c)];
    b[static_cast<std::size_t>(k)] = s / a(k, k);
  }
  return true;
}

DenseMatrix DenseMatrix::symmetric_pseudo_inverse(real_t tol) const {
  if (rows_ != cols_)
    throw std::invalid_argument("symmetric_pseudo_inverse: not square");
  const index_t n = rows_;
  // Cyclic Jacobi eigenvalue iteration: A = V diag(w) V^T.
  DenseMatrix a = *this;
  DenseMatrix v(n, n);
  for (index_t i = 0; i < n; ++i) v(i, i) = 1.0;

  const int max_sweeps = 100;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    real_t off = 0.0;
    for (index_t p = 0; p < n; ++p)
      for (index_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    if (off < 1e-24) break;
    for (index_t p = 0; p < n; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const real_t apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const real_t theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const real_t t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const real_t c = 1.0 / std::sqrt(t * t + 1.0);
        const real_t s = t * c;
        for (index_t i = 0; i < n; ++i) {
          const real_t aip = a(i, p), aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (index_t i = 0; i < n; ++i) {
          const real_t api = a(p, i), aqi = a(q, i);
          a(p, i) = c * api - s * aqi;
          a(q, i) = s * api + c * aqi;
        }
        for (index_t i = 0; i < n; ++i) {
          const real_t vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Scale for rank decisions relative to the largest eigenvalue.
  real_t max_eig = 0.0;
  for (index_t i = 0; i < n; ++i) max_eig = std::max(max_eig, std::abs(a(i, i)));
  const real_t cut = tol * std::max(max_eig, real_t{1.0});

  DenseMatrix pinv(n, n);
  for (index_t k = 0; k < n; ++k) {
    const real_t w = a(k, k);
    if (std::abs(w) <= cut) continue;
    const real_t wi = 1.0 / w;
    for (index_t i = 0; i < n; ++i) {
      const real_t vik = v(i, k) * wi;
      if (vik == 0.0) continue;
      for (index_t j = 0; j < n; ++j) pinv(i, j) += vik * v(j, k);
    }
  }
  return pinv;
}

real_t dot(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  real_t acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

real_t norm2(const std::vector<real_t>& a) { return std::sqrt(dot(a, a)); }

real_t norm1(const std::vector<real_t>& a) {
  real_t acc = 0.0;
  for (real_t v : a) acc += std::abs(v);
  return acc;
}

real_t norm_inf(const std::vector<real_t>& a) {
  real_t acc = 0.0;
  for (real_t v : a) acc = std::max(acc, std::abs(v));
  return acc;
}

void axpy(real_t alpha, const std::vector<real_t>& x, std::vector<real_t>& y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(real_t alpha, std::vector<real_t>& x) {
  for (real_t& v : x) v *= alpha;
}

}  // namespace er
