#include "sparse/sparse_vector.hpp"

#include <algorithm>
#include <cmath>

namespace er {

real_t SparseVector::norm1() const {
  real_t acc = 0.0;
  for (real_t v : val) acc += std::abs(v);
  return acc;
}

real_t SparseVector::norm2_squared() const {
  real_t acc = 0.0;
  for (real_t v : val) acc += v * v;
  return acc;
}

real_t SparseVector::at(index_t i) const {
  const auto it = std::lower_bound(idx.begin(), idx.end(), i);
  if (it == idx.end() || *it != i) return 0.0;
  return val[static_cast<std::size_t>(it - idx.begin())];
}

std::vector<real_t> SparseVector::to_dense(index_t n) const {
  std::vector<real_t> d(static_cast<std::size_t>(n), 0.0);
  for (std::size_t k = 0; k < idx.size(); ++k)
    d[static_cast<std::size_t>(idx[k])] = val[k];
  return d;
}

real_t distance_squared(const SparseVector& a, const SparseVector& b) {
  real_t acc = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.idx.size() && j < b.idx.size()) {
    if (a.idx[i] < b.idx[j]) {
      acc += a.val[i] * a.val[i];
      ++i;
    } else if (b.idx[j] < a.idx[i]) {
      acc += b.val[j] * b.val[j];
      ++j;
    } else {
      const real_t d = a.val[i] - b.val[j];
      acc += d * d;
      ++i;
      ++j;
    }
  }
  for (; i < a.idx.size(); ++i) acc += a.val[i] * a.val[i];
  for (; j < b.idx.size(); ++j) acc += b.val[j] * b.val[j];
  return acc;
}

real_t distance_1norm(const SparseVector& a, const SparseVector& b) {
  real_t acc = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.idx.size() && j < b.idx.size()) {
    if (a.idx[i] < b.idx[j]) {
      acc += std::abs(a.val[i]);
      ++i;
    } else if (b.idx[j] < a.idx[i]) {
      acc += std::abs(b.val[j]);
      ++j;
    } else {
      acc += std::abs(a.val[i] - b.val[j]);
      ++i;
      ++j;
    }
  }
  for (; i < a.idx.size(); ++i) acc += std::abs(a.val[i]);
  for (; j < b.idx.size(); ++j) acc += std::abs(b.val[j]);
  return acc;
}

SparseVector add_scaled(const SparseVector& a, real_t alpha,
                        const SparseVector& b) {
  SparseVector c;
  c.idx.reserve(a.nnz() + b.nnz());
  c.val.reserve(a.nnz() + b.nnz());
  std::size_t i = 0, j = 0;
  while (i < a.idx.size() && j < b.idx.size()) {
    if (a.idx[i] < b.idx[j]) {
      c.idx.push_back(a.idx[i]);
      c.val.push_back(a.val[i]);
      ++i;
    } else if (b.idx[j] < a.idx[i]) {
      c.idx.push_back(b.idx[j]);
      c.val.push_back(alpha * b.val[j]);
      ++j;
    } else {
      c.idx.push_back(a.idx[i]);
      c.val.push_back(a.val[i] + alpha * b.val[j]);
      ++i;
      ++j;
    }
  }
  for (; i < a.idx.size(); ++i) {
    c.idx.push_back(a.idx[i]);
    c.val.push_back(a.val[i]);
  }
  for (; j < b.idx.size(); ++j) {
    c.idx.push_back(b.idx[j]);
    c.val.push_back(alpha * b.val[j]);
  }
  return c;
}

}  // namespace er
