#include "sparse/csc.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace er {

CscMatrix::CscMatrix(index_t rows, index_t cols)
    : rows_(rows), cols_(cols), col_ptr_(static_cast<std::size_t>(cols) + 1, 0) {}

CscMatrix::CscMatrix(index_t rows, index_t cols, std::vector<offset_t> col_ptr,
                     std::vector<index_t> row_ind, std::vector<real_t> values)
    : rows_(rows),
      cols_(cols),
      col_ptr_(std::move(col_ptr)),
      row_ind_(std::move(row_ind)),
      values_(std::move(values)) {
  assert(check_invariants());
}

CscMatrix CscMatrix::from_triplets(const TripletMatrix& t) {
  const index_t rows = t.rows();
  const index_t cols = t.cols();
  const auto& entries = t.entries();

  // Count entries per column.
  std::vector<offset_t> col_ptr(static_cast<std::size_t>(cols) + 1, 0);
  for (const auto& e : entries) ++col_ptr[static_cast<std::size_t>(e.col) + 1];
  for (index_t c = 0; c < cols; ++c)
    col_ptr[static_cast<std::size_t>(c) + 1] += col_ptr[static_cast<std::size_t>(c)];

  // Scatter into place.
  std::vector<offset_t> next(col_ptr.begin(), col_ptr.end() - 1);
  std::vector<index_t> row_ind(entries.size());
  std::vector<real_t> values(entries.size());
  for (const auto& e : entries) {
    const offset_t pos = next[static_cast<std::size_t>(e.col)]++;
    row_ind[static_cast<std::size_t>(pos)] = e.row;
    values[static_cast<std::size_t>(pos)] = e.value;
  }

  // Sort each column by row index and sum duplicates in place.
  std::vector<offset_t> new_col_ptr(static_cast<std::size_t>(cols) + 1, 0);
  std::vector<std::pair<index_t, real_t>> scratch;
  offset_t write = 0;
  for (index_t c = 0; c < cols; ++c) {
    const offset_t begin = col_ptr[static_cast<std::size_t>(c)];
    const offset_t end = col_ptr[static_cast<std::size_t>(c) + 1];
    scratch.clear();
    scratch.reserve(static_cast<std::size_t>(end - begin));
    for (offset_t k = begin; k < end; ++k)
      scratch.emplace_back(row_ind[static_cast<std::size_t>(k)],
                           values[static_cast<std::size_t>(k)]);
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const offset_t col_start = write;
    for (const auto& [r, v] : scratch) {
      if (write > col_start && row_ind[static_cast<std::size_t>(write - 1)] == r) {
        values[static_cast<std::size_t>(write - 1)] += v;
      } else {
        row_ind[static_cast<std::size_t>(write)] = r;
        values[static_cast<std::size_t>(write)] = v;
        ++write;
      }
    }
    new_col_ptr[static_cast<std::size_t>(c) + 1] = write;
  }
  row_ind.resize(static_cast<std::size_t>(write));
  values.resize(static_cast<std::size_t>(write));

  return CscMatrix(rows, cols, std::move(new_col_ptr), std::move(row_ind),
                   std::move(values));
}

CscMatrix CscMatrix::identity(index_t n) {
  std::vector<offset_t> col_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> row_ind(static_cast<std::size_t>(n));
  std::vector<real_t> values(static_cast<std::size_t>(n), 1.0);
  for (index_t i = 0; i <= n; ++i) col_ptr[static_cast<std::size_t>(i)] = i;
  for (index_t i = 0; i < n; ++i) row_ind[static_cast<std::size_t>(i)] = i;
  return CscMatrix(n, n, std::move(col_ptr), std::move(row_ind),
                   std::move(values));
}

CscMatrix CscMatrix::from_dense(index_t rows, index_t cols,
                                const std::vector<real_t>& colmajor,
                                real_t tol) {
  if (colmajor.size() != static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols))
    throw std::invalid_argument("from_dense: buffer size mismatch");
  std::vector<offset_t> col_ptr(static_cast<std::size_t>(cols) + 1, 0);
  std::vector<index_t> row_ind;
  std::vector<real_t> values;
  for (index_t c = 0; c < cols; ++c) {
    for (index_t r = 0; r < rows; ++r) {
      const real_t v = colmajor[static_cast<std::size_t>(c) * rows + r];
      if (std::abs(v) > tol) {
        row_ind.push_back(r);
        values.push_back(v);
      }
    }
    col_ptr[static_cast<std::size_t>(c) + 1] =
        static_cast<offset_t>(row_ind.size());
  }
  return CscMatrix(rows, cols, std::move(col_ptr), std::move(row_ind),
                   std::move(values));
}

real_t CscMatrix::at(index_t row, index_t col) const {
  if (row < 0 || row >= rows_ || col < 0 || col >= cols_)
    throw std::out_of_range("CscMatrix::at: index out of range");
  const auto begin = row_ind_.begin() + static_cast<std::ptrdiff_t>(
                                            col_ptr_[static_cast<std::size_t>(col)]);
  const auto end = row_ind_.begin() + static_cast<std::ptrdiff_t>(
                                          col_ptr_[static_cast<std::size_t>(col) + 1]);
  const auto it = std::lower_bound(begin, end, row);
  if (it == end || *it != row) return 0.0;
  return values_[static_cast<std::size_t>(it - row_ind_.begin())];
}

void CscMatrix::multiply(const std::vector<real_t>& x,
                         std::vector<real_t>& y) const {
  y.assign(static_cast<std::size_t>(rows_), 0.0);
  gaxpy(x, 1.0, y);
}

std::vector<real_t> CscMatrix::multiply(const std::vector<real_t>& x) const {
  std::vector<real_t> y;
  multiply(x, y);
  return y;
}

void CscMatrix::gaxpy(const std::vector<real_t>& x, real_t alpha,
                      std::vector<real_t>& y) const {
  if (x.size() != static_cast<std::size_t>(cols_) ||
      y.size() != static_cast<std::size_t>(rows_))
    throw std::invalid_argument("CscMatrix::gaxpy: size mismatch");
  for (index_t c = 0; c < cols_; ++c) {
    const real_t xc = alpha * x[static_cast<std::size_t>(c)];
    if (xc == 0.0) continue;
    for (offset_t k = col_ptr_[static_cast<std::size_t>(c)];
         k < col_ptr_[static_cast<std::size_t>(c) + 1]; ++k)
      y[static_cast<std::size_t>(row_ind_[static_cast<std::size_t>(k)])] +=
          values_[static_cast<std::size_t>(k)] * xc;
  }
}

void CscMatrix::multiply_transpose(const std::vector<real_t>& x,
                                   std::vector<real_t>& y) const {
  if (x.size() != static_cast<std::size_t>(rows_))
    throw std::invalid_argument("multiply_transpose: size mismatch");
  y.assign(static_cast<std::size_t>(cols_), 0.0);
  for (index_t c = 0; c < cols_; ++c) {
    real_t acc = 0.0;
    for (offset_t k = col_ptr_[static_cast<std::size_t>(c)];
         k < col_ptr_[static_cast<std::size_t>(c) + 1]; ++k)
      acc += values_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(row_ind_[static_cast<std::size_t>(k)])];
    y[static_cast<std::size_t>(c)] = acc;
  }
}

CscMatrix CscMatrix::transpose() const {
  std::vector<offset_t> col_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<index_t> row_ind(static_cast<std::size_t>(nnz()));
  std::vector<real_t> values(static_cast<std::size_t>(nnz()));

  // Count entries per row of A == per column of A^T.
  for (offset_t k = 0; k < nnz(); ++k)
    ++col_ptr[static_cast<std::size_t>(row_ind_[static_cast<std::size_t>(k)]) + 1];
  for (index_t r = 0; r < rows_; ++r)
    col_ptr[static_cast<std::size_t>(r) + 1] += col_ptr[static_cast<std::size_t>(r)];

  std::vector<offset_t> next(col_ptr.begin(), col_ptr.end() - 1);
  for (index_t c = 0; c < cols_; ++c) {
    for (offset_t k = col_ptr_[static_cast<std::size_t>(c)];
         k < col_ptr_[static_cast<std::size_t>(c) + 1]; ++k) {
      const index_t r = row_ind_[static_cast<std::size_t>(k)];
      const offset_t pos = next[static_cast<std::size_t>(r)]++;
      row_ind[static_cast<std::size_t>(pos)] = c;
      values[static_cast<std::size_t>(pos)] = values_[static_cast<std::size_t>(k)];
    }
  }
  // Columns of the transpose are sorted automatically because we sweep
  // columns of A in increasing order.
  return CscMatrix(cols_, rows_, std::move(col_ptr), std::move(row_ind),
                   std::move(values));
}

CscMatrix CscMatrix::permute_symmetric(const std::vector<index_t>& perm) const {
  if (rows_ != cols_ || perm.size() != static_cast<std::size_t>(cols_))
    throw std::invalid_argument("permute_symmetric: shape/permutation mismatch");
  // inv_perm maps old index -> new index.
  std::vector<index_t> inv(static_cast<std::size_t>(cols_));
  for (index_t i = 0; i < cols_; ++i) {
    const index_t old = perm[static_cast<std::size_t>(i)];
    if (old < 0 || old >= cols_)
      throw std::invalid_argument("permute_symmetric: invalid permutation");
    inv[static_cast<std::size_t>(old)] = i;
  }

  TripletMatrix t(rows_, cols_);
  t.reserve(static_cast<std::size_t>(nnz()));
  for (index_t c = 0; c < cols_; ++c) {
    const index_t nc = inv[static_cast<std::size_t>(c)];
    for (offset_t k = col_ptr_[static_cast<std::size_t>(c)];
         k < col_ptr_[static_cast<std::size_t>(c) + 1]; ++k) {
      const index_t nr =
          inv[static_cast<std::size_t>(row_ind_[static_cast<std::size_t>(k)])];
      t.add(nr, nc, values_[static_cast<std::size_t>(k)]);
    }
  }
  return from_triplets(t);
}

CscMatrix CscMatrix::extract(const std::vector<index_t>& rows_sel,
                             const std::vector<index_t>& cols_sel) const {
  // Map old row -> new row (or -1 if not selected).
  std::vector<index_t> row_map(static_cast<std::size_t>(rows_), -1);
  for (std::size_t i = 0; i < rows_sel.size(); ++i) {
    const index_t old = rows_sel[i];
    if (old < 0 || old >= rows_)
      throw std::out_of_range("extract: row selection out of range");
    row_map[static_cast<std::size_t>(old)] = static_cast<index_t>(i);
  }

  TripletMatrix t(static_cast<index_t>(rows_sel.size()),
                  static_cast<index_t>(cols_sel.size()));
  for (std::size_t j = 0; j < cols_sel.size(); ++j) {
    const index_t c = cols_sel[j];
    if (c < 0 || c >= cols_)
      throw std::out_of_range("extract: column selection out of range");
    for (offset_t k = col_ptr_[static_cast<std::size_t>(c)];
         k < col_ptr_[static_cast<std::size_t>(c) + 1]; ++k) {
      const index_t nr =
          row_map[static_cast<std::size_t>(row_ind_[static_cast<std::size_t>(k)])];
      if (nr >= 0)
        t.add(nr, static_cast<index_t>(j), values_[static_cast<std::size_t>(k)]);
    }
  }
  return from_triplets(t);
}

CscMatrix CscMatrix::lower_triangle(bool include_diagonal) const {
  std::vector<offset_t> col_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  std::vector<index_t> row_ind;
  std::vector<real_t> values;
  row_ind.reserve(static_cast<std::size_t>(nnz()) / 2 + 1);
  values.reserve(static_cast<std::size_t>(nnz()) / 2 + 1);
  for (index_t c = 0; c < cols_; ++c) {
    for (offset_t k = col_ptr_[static_cast<std::size_t>(c)];
         k < col_ptr_[static_cast<std::size_t>(c) + 1]; ++k) {
      const index_t r = row_ind_[static_cast<std::size_t>(k)];
      if (r > c || (include_diagonal && r == c)) {
        row_ind.push_back(r);
        values.push_back(values_[static_cast<std::size_t>(k)]);
      }
    }
    col_ptr[static_cast<std::size_t>(c) + 1] =
        static_cast<offset_t>(row_ind.size());
  }
  return CscMatrix(rows_, cols_, std::move(col_ptr), std::move(row_ind),
                   std::move(values));
}

std::vector<real_t> CscMatrix::diagonal() const {
  const index_t n = std::min(rows_, cols_);
  std::vector<real_t> d(static_cast<std::size_t>(n), 0.0);
  for (index_t c = 0; c < n; ++c) d[static_cast<std::size_t>(c)] = at(c, c);
  return d;
}

CscMatrix CscMatrix::add(const CscMatrix& other, real_t alpha) const {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("CscMatrix::add: shape mismatch");
  std::vector<offset_t> col_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  std::vector<index_t> row_ind;
  std::vector<real_t> values;
  row_ind.reserve(static_cast<std::size_t>(nnz() + other.nnz()));
  values.reserve(static_cast<std::size_t>(nnz() + other.nnz()));
  for (index_t c = 0; c < cols_; ++c) {
    offset_t ka = col_ptr_[static_cast<std::size_t>(c)];
    const offset_t ea = col_ptr_[static_cast<std::size_t>(c) + 1];
    offset_t kb = other.col_ptr_[static_cast<std::size_t>(c)];
    const offset_t eb = other.col_ptr_[static_cast<std::size_t>(c) + 1];
    // Merge two sorted runs.
    while (ka < ea || kb < eb) {
      index_t ra = ka < ea ? row_ind_[static_cast<std::size_t>(ka)] : rows_;
      index_t rb = kb < eb ? other.row_ind_[static_cast<std::size_t>(kb)] : rows_;
      if (ra < rb) {
        row_ind.push_back(ra);
        values.push_back(values_[static_cast<std::size_t>(ka++)]);
      } else if (rb < ra) {
        row_ind.push_back(rb);
        values.push_back(alpha * other.values_[static_cast<std::size_t>(kb++)]);
      } else {
        row_ind.push_back(ra);
        values.push_back(values_[static_cast<std::size_t>(ka++)] +
                         alpha * other.values_[static_cast<std::size_t>(kb++)]);
      }
    }
    col_ptr[static_cast<std::size_t>(c) + 1] =
        static_cast<offset_t>(row_ind.size());
  }
  return CscMatrix(rows_, cols_, std::move(col_ptr), std::move(row_ind),
                   std::move(values));
}

bool CscMatrix::is_symmetric(real_t tol) const {
  if (rows_ != cols_) return false;
  const CscMatrix t = transpose();
  if (t.nnz() != nnz()) {
    // Structure can still match numerically if explicit zeros differ; fall
    // through to the value comparison on the union.
  }
  const CscMatrix diff = add(t, -1.0);
  return diff.max_abs() <= tol;
}

std::vector<real_t> CscMatrix::to_dense() const {
  std::vector<real_t> d(static_cast<std::size_t>(rows_) *
                            static_cast<std::size_t>(cols_),
                        0.0);
  for (index_t c = 0; c < cols_; ++c)
    for (offset_t k = col_ptr_[static_cast<std::size_t>(c)];
         k < col_ptr_[static_cast<std::size_t>(c) + 1]; ++k)
      d[static_cast<std::size_t>(c) * rows_ +
        row_ind_[static_cast<std::size_t>(k)]] +=
          values_[static_cast<std::size_t>(k)];
  return d;
}

CscMatrix CscMatrix::drop_small(real_t tol, bool keep_diagonal) const {
  std::vector<offset_t> col_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  std::vector<index_t> row_ind;
  std::vector<real_t> values;
  for (index_t c = 0; c < cols_; ++c) {
    for (offset_t k = col_ptr_[static_cast<std::size_t>(c)];
         k < col_ptr_[static_cast<std::size_t>(c) + 1]; ++k) {
      const index_t r = row_ind_[static_cast<std::size_t>(k)];
      const real_t v = values_[static_cast<std::size_t>(k)];
      if (std::abs(v) > tol || (keep_diagonal && r == c)) {
        row_ind.push_back(r);
        values.push_back(v);
      }
    }
    col_ptr[static_cast<std::size_t>(c) + 1] =
        static_cast<offset_t>(row_ind.size());
  }
  return CscMatrix(rows_, cols_, std::move(col_ptr), std::move(row_ind),
                   std::move(values));
}

real_t CscMatrix::frobenius_norm() const {
  real_t acc = 0.0;
  for (real_t v : values_) acc += v * v;
  return std::sqrt(acc);
}

real_t CscMatrix::max_abs() const {
  real_t m = 0.0;
  for (real_t v : values_) m = std::max(m, std::abs(v));
  return m;
}

bool CscMatrix::check_invariants() const {
  if (col_ptr_.size() != static_cast<std::size_t>(cols_) + 1) return false;
  if (col_ptr_.front() != 0) return false;
  if (col_ptr_.back() != static_cast<offset_t>(row_ind_.size())) return false;
  if (row_ind_.size() != values_.size()) return false;
  for (index_t c = 0; c < cols_; ++c) {
    if (col_ptr_[static_cast<std::size_t>(c)] >
        col_ptr_[static_cast<std::size_t>(c) + 1])
      return false;
    for (offset_t k = col_ptr_[static_cast<std::size_t>(c)];
         k < col_ptr_[static_cast<std::size_t>(c) + 1]; ++k) {
      const index_t r = row_ind_[static_cast<std::size_t>(k)];
      if (r < 0 || r >= rows_) return false;
      if (k > col_ptr_[static_cast<std::size_t>(c)] &&
          row_ind_[static_cast<std::size_t>(k - 1)] >= r)
        return false;
    }
  }
  return true;
}

}  // namespace er
