// Dense reference kernels.
//
// These are deliberately simple O(n^3)/O(n^2) routines used to cross-check
// the sparse implementations in tests and to handle tiny dense blocks inside
// the reduction pipeline. They are not performance-critical.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace er {

/// Column-major dense matrix with minimal linear-algebra support.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0) {}
  DenseMatrix(index_t rows, index_t cols, std::vector<real_t> colmajor)
      : rows_(rows), cols_(cols), data_(std::move(colmajor)) {}

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }

  real_t& operator()(index_t r, index_t c) {
    return data_[static_cast<std::size_t>(c) * rows_ + r];
  }
  real_t operator()(index_t r, index_t c) const {
    return data_[static_cast<std::size_t>(c) * rows_ + r];
  }

  [[nodiscard]] const std::vector<real_t>& data() const { return data_; }
  std::vector<real_t>& data() { return data_; }

  [[nodiscard]] std::vector<real_t> multiply(const std::vector<real_t>& x) const;
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;
  [[nodiscard]] DenseMatrix transpose() const;

  /// In-place Cholesky A = L L^T; returns false if a pivot is <= 0.
  /// On success the lower triangle holds L (upper is zeroed).
  bool cholesky_in_place();

  /// Solve L y = b then L^T x = y using the factor stored by
  /// cholesky_in_place(). b is overwritten with the solution.
  void cholesky_solve(std::vector<real_t>& b) const;

  /// Dense symmetric inverse via Cholesky; throws if not SPD.
  [[nodiscard]] DenseMatrix spd_inverse() const;

  /// Gaussian elimination solve with partial pivoting (general square A).
  /// Returns false if the matrix is numerically singular.
  static bool solve_general(DenseMatrix a, std::vector<real_t>& b);

  /// Moore-Penrose pseudo-inverse of a symmetric matrix via Jacobi
  /// eigenvalue decomposition; eigenvalues below tol are treated as zero.
  /// Used to test effective resistances against the textbook definition.
  [[nodiscard]] DenseMatrix symmetric_pseudo_inverse(real_t tol = 1e-10) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<real_t> data_;
};

/// Dense vector helpers shared by solvers and tests.
real_t dot(const std::vector<real_t>& a, const std::vector<real_t>& b);
real_t norm2(const std::vector<real_t>& a);
real_t norm1(const std::vector<real_t>& a);
real_t norm_inf(const std::vector<real_t>& a);
void axpy(real_t alpha, const std::vector<real_t>& x, std::vector<real_t>& y);
void scale(real_t alpha, std::vector<real_t>& x);

}  // namespace er
