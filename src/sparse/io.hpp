// Matrix Market (.mtx) reader/writer for sparse matrices.
//
// Supports the coordinate format with real values, "general" and
// "symmetric" symmetry groups — enough to load the UF/SuiteSparse
// collection matrices the paper's Table I draws from, when available.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csc.hpp"

namespace er {

/// Parse a Matrix Market stream. Symmetric files are expanded to full
/// storage. Throws std::runtime_error on malformed input.
CscMatrix read_matrix_market(std::istream& in);
CscMatrix read_matrix_market_file(const std::string& path);

/// Write in coordinate/real/general format (1-based indices, as per spec).
void write_matrix_market(const CscMatrix& a, std::ostream& out);
void write_matrix_market_file(const CscMatrix& a, const std::string& path);

}  // namespace er
