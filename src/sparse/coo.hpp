// Triplet (COO) builder for sparse matrices.
//
// The usual assembly path is: stamp entries into a TripletMatrix (duplicates
// allowed; they sum), then compress to CSC with CscMatrix::from_triplets.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace er {

/// A single (row, col, value) entry.
struct Triplet {
  index_t row = 0;
  index_t col = 0;
  real_t value = 0.0;
};

/// Unordered triplet collection. Duplicate (row, col) entries are summed on
/// compression, which makes finite-element/MNA-style stamping trivial.
class TripletMatrix {
 public:
  TripletMatrix() = default;
  TripletMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {}

  void reserve(std::size_t nnz) { entries_.reserve(nnz); }

  /// Add a single entry; (row, col) must lie inside the declared shape.
  void add(index_t row, index_t col, real_t value);

  /// Add value at (r, c) and (c, r). Convenience for symmetric stamping.
  void add_symmetric(index_t r, index_t c, real_t value);

  /// Stamp a 2x2 conductance block: +g on diagonals, -g off-diagonal.
  /// This is the standard MNA stamp for a resistor/edge between a and b.
  void stamp_conductance(index_t a, index_t b, real_t g);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return entries_.size(); }
  [[nodiscard]] const std::vector<Triplet>& entries() const { return entries_; }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace er
