#include "sparse/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace er {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

CscMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("matrix market: empty input");

  // Header: %%MatrixMarket matrix coordinate real general|symmetric
  std::istringstream hdr(line);
  std::string banner, object, format, field, symmetry;
  hdr >> banner >> object >> format >> field >> symmetry;
  if (lower(banner) != "%%matrixmarket" || lower(object) != "matrix")
    throw std::runtime_error("matrix market: bad banner");
  if (lower(format) != "coordinate")
    throw std::runtime_error("matrix market: only coordinate format supported");
  const std::string f = lower(field);
  if (f != "real" && f != "integer" && f != "pattern")
    throw std::runtime_error("matrix market: unsupported field " + field);
  const std::string sym = lower(symmetry);
  if (sym != "general" && sym != "symmetric")
    throw std::runtime_error("matrix market: unsupported symmetry " + symmetry);
  const bool symmetric = sym == "symmetric";
  const bool pattern = f == "pattern";

  // Skip comments, read size line.
  long long rows = 0, cols = 0, nnz = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    if (!(ls >> rows >> cols >> nnz))
      throw std::runtime_error("matrix market: bad size line");
    break;
  }
  if (rows <= 0 || cols <= 0 || nnz < 0)
    throw std::runtime_error("matrix market: invalid dimensions");

  TripletMatrix t(static_cast<index_t>(rows), static_cast<index_t>(cols));
  t.reserve(static_cast<std::size_t>(symmetric ? 2 * nnz : nnz));
  long long seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(ls >> r >> c)) throw std::runtime_error("matrix market: bad entry");
    if (!pattern && !(ls >> v))
      throw std::runtime_error("matrix market: missing value");
    if (r < 1 || r > rows || c < 1 || c > cols)
      throw std::runtime_error("matrix market: index out of range");
    t.add(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1),
          static_cast<real_t>(v));
    if (symmetric && r != c)
      t.add(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1),
            static_cast<real_t>(v));
    ++seen;
  }
  if (seen != nnz)
    throw std::runtime_error("matrix market: fewer entries than declared");
  return CscMatrix::from_triplets(t);
}

CscMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(const CscMatrix& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_ind();
  const auto& vv = a.values();
  for (index_t c = 0; c < a.cols(); ++c)
    for (offset_t k = cp[static_cast<std::size_t>(c)];
         k < cp[static_cast<std::size_t>(c) + 1]; ++k)
      out << ri[static_cast<std::size_t>(k)] + 1 << ' ' << c + 1 << ' '
          << vv[static_cast<std::size_t>(k)] << '\n';
}

void write_matrix_market_file(const CscMatrix& a, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  write_matrix_market(a, out);
}

}  // namespace er
