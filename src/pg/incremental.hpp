/// \file
/// DC incremental analysis (paper Table II lower half).
///
/// Design iterations modify a small fraction of the grid (the paper models
/// this as 10% of partition blocks changing). The reduction-based flow
/// caches per-block reductions; after a modification only the dirty blocks
/// are re-reduced and the model re-stitched, making the incremental
/// reduction cost ~10% of a full reduction. With a ModelStore attached,
/// every re-stitch also publishes an immutable serving snapshot as a
/// dirty-only rebuild — clean blocks share the previous snapshot's factors
/// and resident engines (DESIGN.md §4, §4.1). To run updates off the
/// serving threads, drive the reducer through serve/AsyncUpdater
/// (docs/serving_guide.md).
#pragma once

#include <memory>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "pg/power_grid.hpp"
#include "reduction/pipeline.hpp"
#include "serve/model_store.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace er {

/// A grid modification: resistances of all segments whose *both* endpoints
/// lie in a modified block are scaled by `resistance_scale`.
struct GridModification {
  std::vector<index_t> dirty_blocks;  ///< blocks whose segments change
  real_t resistance_scale = 1.2;      ///< R multiplier inside dirty blocks
};

/// Pick `fraction` of the blocks uniformly at random (at least one).
/// Selection is per-block (each block's priority is hash(seed, block)), so
/// the chosen set is reproducible independent of block enumeration order.
GridModification random_modification(index_t num_blocks, real_t fraction,
                                     real_t resistance_scale,
                                     std::uint64_t seed);

/// Apply the modification to a network under a fixed block structure.
ConductanceNetwork apply_modification(const ConductanceNetwork& net,
                                      const BlockStructure& structure,
                                      const GridModification& mod);

/// Caches the block structure and per-block reductions of a grid so that a
/// modification triggers work only on dirty blocks.
///
/// Observability (DESIGN.md §6): the reducer records into the *global*
/// registry — `er_reducer_publish_seconds` per publish, the copy-on-write
/// reuse counters `er_stitch_blocks_total` / `er_stitch_blocks_reused_total`
/// per update — and emits `partition` / `reduce` / `publish` trace spans
/// (plus the per-block spans of reduce_block). Reducers are long-lived and
/// one-per-grid, so global aggregation is the useful view; none of it feeds
/// back into the model bytes (the §3 determinism contract).
class IncrementalReducer {
 public:
  /// Runs the full initial reduction of `net` and primes the per-block
  /// cache; `initial_seconds()` reports its cost.
  IncrementalReducer(const ConductanceNetwork& net,
                     const std::vector<char>& is_port,
                     const ReductionOptions& opts);

  /// The current stitched model version (the full initial reduction until
  /// the first update).
  const ReducedModel& model() const { return *model_; }
  /// Shared handle of the current model version. Every version is frozen
  /// at the end of the constructor/update() that built it and never
  /// mutated afterwards — update() builds the *next* version copy-on-write
  /// into a fresh allocation (stitch_blocks_update) — so snapshots and any
  /// other holder alias it safely for as long as they keep the pointer
  /// (the zero-copy publish of DESIGN.md §4.1).
  ModelPtr shared_model() const { return model_; }
  const BlockStructure& structure() const { return structure_; }
  /// Cached per-block reductions (the serving snapshot inputs).
  const std::vector<BlockReduced>& blocks() const { return blocks_; }

  /// Re-reduce only the dirty blocks against the modified network and
  /// re-stitch. Returns the updated model; update_seconds() reports the
  /// incremental reduction time (the paper's incremental T_red).
  ///
  /// When a ModelStore is attached, the updated model is published to it as
  /// a fresh immutable snapshot *after* the stitch completes — in-flight
  /// query batches keep answering against the snapshot they pinned, and
  /// only batches started after the publish see the new model (the publish
  /// protocol of DESIGN.md §4). The published snapshot is a *dirty-only
  /// rebuild* (ModelSnapshot::rebuild): clean blocks share the previous
  /// snapshot's factors and resident engines, and only the dirty blocks
  /// plus the interface-Schur boundary factor are refactored — bit-identical
  /// to a full rebuild (DESIGN.md §4.1; disable via
  /// ServingOptions::incremental_publish).
  ///
  /// Thread-safety: external synchronization per reducer, like every other
  /// method — AsyncUpdater is the supported way to run update() off the
  /// caller's thread while queries keep hitting the store (DESIGN.md §4.1).
  const ReducedModel& update(const ConductanceNetwork& modified,
                             const std::vector<index_t>& dirty_blocks);

  /// Serve this reducer's models through `store` (see DESIGN.md §4): the
  /// current model is published immediately under the current revision
  /// number (0 for a freshly constructed reducer; each update() bumps the
  /// revision whether or not a store is attached, so a version number is
  /// never reused for a different model), and every subsequent update()
  /// publishes the next revision. `store` must outlive the reducer (or a
  /// detach_store() call). Snapshot build time is reported by
  /// publish_seconds() and is *not* counted into update_seconds(), keeping
  /// the paper's incremental T_red comparable.
  void attach_store(ModelStore* store, const ServingOptions& opts = {});
  /// Stop publishing (and drop the cached last-published snapshot a future
  /// re-attach would otherwise rebuild against).
  void detach_store() {
    store_ = nullptr;
    last_published_.reset();
  }

  /// Model revision counter: 0 after construction, +1 per update(). The
  /// version number of the snapshot a publish at this state would carry.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  [[nodiscard]] double initial_seconds() const { return initial_seconds_; }
  [[nodiscard]] double update_seconds() const { return update_seconds_; }
  /// Snapshot build + publish time of the most recent publish (0 if no
  /// store is attached).
  [[nodiscard]] double publish_seconds() const { return publish_seconds_; }

  // Publish-cost accounting of the most recent publish (0 until one
  // happens): how many model bytes the snapshot deep-copied — 0 on the
  // default zero-copy path, model_footprint_bytes(model()) with
  // ServingOptions::share_model = false — and how many bytes of serving
  // state it materialized in total (rebuilt block artifacts + global
  // factors + any model copy; see ModelSnapshot::bytes_materialized).
  [[nodiscard]] std::size_t publish_model_bytes_copied() const {
    return publish_model_bytes_copied_;
  }
  [[nodiscard]] std::size_t publish_bytes_materialized() const {
    return publish_bytes_materialized_;
  }

 private:
  /// Build + publish the snapshot of the current model. `dirty` (the
  /// deduplicated dirty set of the update that triggered the publish)
  /// selects the dirty-only rebuild path; null forces a full build (initial
  /// attach, or incremental_publish disabled).
  void publish_current(const std::vector<index_t>* dirty);

  std::vector<char> is_port_;
  ReductionOptions opts_;
  /// Kept across updates so repeated incremental re-reductions reuse the
  /// same workers (created only when opts.parallel asks for > 1 thread).
  std::unique_ptr<ThreadPool> pool_;
  /// Freeze `next` as the new current model version (warming the graph's
  /// lazy CSR cache first so concurrent readers of the shared version never
  /// race on it).
  void set_model(ReducedModel&& next);

  BlockStructure structure_;
  std::vector<BlockReduced> blocks_;
  /// Current model version, shared with (aliased by) published snapshots.
  ModelPtr model_;
  /// Whether model_ was stitched from the current blocks_ state — false
  /// inside update()'s mutation window, so a *failed* update disarms the
  /// copy-on-write stitch of the next one (blocks_ may be partially
  /// rewritten; the recovery update full-stitches from blocks_ alone).
  bool model_matches_blocks_ = true;
  ModelStore* store_ = nullptr;
  ServingOptions serving_opts_;
  /// Most recent published snapshot — the artifact-reuse source of the next
  /// dirty-only rebuild (null when nothing was published yet).
  SnapshotPtr last_published_;
  std::uint64_t revision_ = 0;
  double initial_seconds_ = 0.0;
  double update_seconds_ = 0.0;
  double publish_seconds_ = 0.0;
  std::size_t publish_model_bytes_copied_ = 0;
  std::size_t publish_bytes_materialized_ = 0;
};

}  // namespace er
