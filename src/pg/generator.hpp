// Synthetic IBM-benchmark-style power-grid generator.
//
// The paper's Table II evaluates on the IBM power grid benchmarks
// (ibmpg2..6 and their transient variants), which are multi-layer
// mesh-structured RC grids with pads on the top layer and current loads on
// the bottom. Those netlists are not redistributable, so this generator
// reproduces the topology class (see DESIGN.md §2): stacked 2D meshes with
// progressively coarser pitch and lower sheet resistance, vias between
// layers, perimeter pads on the top layer, randomly-placed pulsed loads on
// the bottom layer, and a capacitance at every node.
#pragma once

#include "pg/power_grid.hpp"
#include "util/types.hpp"

namespace er {

struct PgGeneratorOptions {
  index_t nx = 32;              // bottom-layer mesh width
  index_t ny = 32;              // bottom-layer mesh height
  index_t layers = 3;           // metal layers (>= 1)
  real_t segment_resistance = 1.0;   // bottom-layer segment R (ohms)
  real_t via_resistance = 0.5;       // inter-layer via R
  real_t layer_resistance_scale = 0.4;  // R multiplier per layer going up
  real_t pad_conductance = 1e2;  // pad series conductance (to Vdd)
  index_t pads_per_side = 4;     // pads along each top-layer edge
  real_t load_density = 0.10;    // fraction of bottom nodes carrying loads
  real_t load_dc = 5e-4;         // amps per load
  real_t load_pulse = 1e-3;      // pulse amplitude
  real_t load_period = 2e-9;     // seconds
  real_t node_capacitance = 1e-15;  // farads at every node
  real_t vdd = 1.8;
  std::uint64_t seed = 1;
};

/// Generate a synthetic multi-layer power grid.
PowerGrid generate_power_grid(const PgGeneratorOptions& opts);

/// Convenience presets roughly tracking the relative sizes of ibmpg2..6
/// (scaled to laptop budgets; see EXPERIMENTS.md for the mapping).
PgGeneratorOptions ibmpg_like_preset(int index /* 2..6 */, real_t size_scale);

}  // namespace er
