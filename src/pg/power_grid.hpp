// Power-grid circuit model (single net, voltage-drop formulation).
//
// A grid consists of resistive segments, node capacitances to ground,
// current loads (DC + periodic pulse), and pads connecting nodes to the
// supply through a small series conductance. Working in voltage *drops*
// d = Vdd - v turns the pad attachments into ground shunts and yields the
// SPD system (L + diag(g_pad)) d = I_load — exactly the SDD form the rest
// of the library consumes.
#pragma once

#include <vector>

#include "reduction/network.hpp"
#include "util/types.hpp"

namespace er {

struct Resistor {
  index_t a = 0;
  index_t b = 0;
  real_t resistance = 1.0;  // ohms, > 0
};

struct Capacitor {
  index_t node = 0;
  real_t capacitance = 0.0;  // farads, to ground
};

/// Current load: i(t) = dc + (pulse while fmod(t, period) < duty*period).
struct CurrentLoad {
  index_t node = 0;
  real_t dc = 0.0;
  real_t pulse = 0.0;
  real_t period = 1e-9;
  real_t duty = 0.5;

  [[nodiscard]] real_t current_at(real_t time) const;
};

struct Pad {
  index_t node = 0;
  real_t conductance = 1e3;  // series conductance to the supply
};

struct PowerGrid {
  index_t num_nodes = 0;
  real_t vdd = 1.8;
  std::vector<Resistor> resistors;
  std::vector<Capacitor> capacitors;
  std::vector<CurrentLoad> loads;
  std::vector<Pad> pads;

  /// Conductance network of the drop formulation: edges 1/R, pad shunts.
  [[nodiscard]] ConductanceNetwork to_network() const;

  /// Ports = pad nodes and load nodes (paper §II-A definition).
  [[nodiscard]] std::vector<char> port_mask() const;
  [[nodiscard]] std::vector<index_t> port_nodes() const;

  /// Injection vector J(t) (current draw per node) at a given time.
  [[nodiscard]] std::vector<real_t> load_vector(real_t time) const;

  /// Dense per-node capacitance vector.
  [[nodiscard]] std::vector<real_t> capacitance_vector() const;

  /// Structural sanity (indices in range, positive R/C/G).
  [[nodiscard]] bool validate() const;
};

}  // namespace er
