// DC and transient analysis of power grids, on both the original network
// and reduced models (paper Table II workloads).
//
// Everything is expressed in voltage drops d = Vdd - v, so the system is
// G d = J with G SPD. Transient uses fixed-step backward Euler with a single
// factorization, matching the paper's setup ("1000 fixed-size time steps...
// performing just once matrix factorization").
#pragma once

#include <vector>

#include "pg/power_grid.hpp"
#include "reduction/pipeline.hpp"
#include "util/types.hpp"

namespace er {

struct DcSolution {
  std::vector<real_t> drops;  // per node of the analyzed network
  double factor_seconds = 0.0;
  double solve_seconds = 0.0;
};

/// Solve G d = injections on a conductance network.
DcSolution solve_dc(const ConductanceNetwork& net,
                    const std::vector<real_t>& injections);

/// Map a full-grid injection vector onto a reduced model (entries of
/// eliminated nodes must be zero — loads are ports and always survive).
std::vector<real_t> map_injections(const ReducedModel& model,
                                   const std::vector<real_t>& full);

/// Map node capacitances onto a reduced model. Kept nodes add their cap at
/// their reduced id; eliminated interior caps are redistributed equally
/// over their block's kept nodes (standard realizable-reduction practice;
/// see DESIGN.md).
std::vector<real_t> map_capacitances(const ReducedModel& model,
                                     const std::vector<real_t>& full);

struct TransientOptions {
  real_t step = 2e-11;  // seconds
  int steps = 1000;     // paper: 1000 fixed-size steps
};

struct TransientResult {
  /// Per probe: drop waveform across steps (probe ids are in the analyzed
  /// network's index space).
  std::vector<std::vector<real_t>> series;
  double factor_seconds = 0.0;
  double solve_seconds = 0.0;
  [[nodiscard]] double total_seconds() const {
    return factor_seconds + solve_seconds;
  }
};

/// Backward-Euler transient on a network. `loads` are (node-in-network,
/// waveform) pairs; `caps` is per node of the network.
TransientResult run_transient(const ConductanceNetwork& net,
                              const std::vector<real_t>& caps,
                              const std::vector<CurrentLoad>& loads,
                              const TransientOptions& opts,
                              const std::vector<index_t>& probes);

/// Loads of a power grid re-indexed onto a reduced model.
std::vector<CurrentLoad> map_loads(const ReducedModel& model,
                                   const std::vector<CurrentLoad>& loads);

/// Error metrics of the paper's Table II: Err = mean absolute difference
/// (volts) over the given original-space port nodes (and steps, for
/// transient); Rel = Err / max reference drop.
struct SolutionError {
  double err_volts = 0.0;
  double rel = 0.0;
};

SolutionError compare_dc(const std::vector<real_t>& reference_drops,
                         const DcSolution& reduced_solution,
                         const ReducedModel& model,
                         const std::vector<index_t>& port_nodes);

SolutionError compare_transient(const TransientResult& reference,
                                const TransientResult& reduced,
                                double reference_max_drop);

}  // namespace er
