#include "pg/incremental.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace er {

GridModification random_modification(index_t num_blocks, real_t fraction,
                                     real_t resistance_scale,
                                     std::uint64_t seed) {
  if (num_blocks <= 0)
    throw std::invalid_argument("random_modification: no blocks");
  GridModification mod;
  mod.resistance_scale = resistance_scale;
  const auto want = std::min<index_t>(
      num_blocks,
      std::max<index_t>(
          1, static_cast<index_t>(fraction * static_cast<real_t>(num_blocks))));
  // Give every block an independent hashed priority and take the `want`
  // smallest: a uniform without-replacement draw whose outcome per block
  // depends only on (seed, block), never on enumeration order.
  std::vector<std::pair<std::uint64_t, index_t>> keyed;
  keyed.reserve(static_cast<std::size_t>(num_blocks));
  for (index_t b = 0; b < num_blocks; ++b)
    keyed.emplace_back(mix_seed(seed, static_cast<std::uint64_t>(b)), b);
  std::nth_element(keyed.begin(), keyed.begin() + (want - 1), keyed.end());
  mod.dirty_blocks.reserve(static_cast<std::size_t>(want));
  for (index_t i = 0; i < want; ++i)
    mod.dirty_blocks.push_back(keyed[static_cast<std::size_t>(i)].second);
  std::sort(mod.dirty_blocks.begin(), mod.dirty_blocks.end());
  return mod;
}

ConductanceNetwork apply_modification(const ConductanceNetwork& net,
                                      const BlockStructure& structure,
                                      const GridModification& mod) {
  std::vector<char> dirty(static_cast<std::size_t>(structure.num_blocks), 0);
  for (index_t b : mod.dirty_blocks) dirty[static_cast<std::size_t>(b)] = 1;

  ConductanceNetwork out;
  out.shunts = net.shunts;
  Graph g(net.graph.num_nodes());
  g.reserve_edges(net.graph.num_edges());
  // Scaling R by s scales conductance by 1/s.
  const real_t wscale = 1.0 / mod.resistance_scale;
  for (const auto& e : net.graph.edges()) {
    const index_t bu = structure.block_of[static_cast<std::size_t>(e.u)];
    const index_t bv = structure.block_of[static_cast<std::size_t>(e.v)];
    const bool in_dirty = bu == bv && dirty[static_cast<std::size_t>(bu)];
    g.add_edge(e.u, e.v, in_dirty ? e.weight * wscale : e.weight);
  }
  out.graph = std::move(g);
  return out;
}

IncrementalReducer::IncrementalReducer(const ConductanceNetwork& net,
                                       const std::vector<char>& is_port,
                                       const ReductionOptions& opts)
    : is_port_(is_port), opts_(opts) {
  Timer t;
  if (resolve_num_threads(opts_.parallel.num_threads) > 1)
    pool_ = std::make_unique<ThreadPool>(opts_.parallel.num_threads);
  Timer phase;
  {
    OBS_SPAN("partition");
    structure_ = build_block_structure(net, is_port_, opts_, pool_.get());
  }
  const double partition_seconds = phase.seconds();
  phase.reset();
  blocks_.assign(static_cast<std::size_t>(structure_.num_blocks), {});
  {
    OBS_SPAN("reduce");
    parallel_for(pool_.get(), 0, structure_.num_blocks, 1,
                 [&](index_t lo, index_t hi) {
                   for (index_t b = lo; b < hi; ++b)
                     blocks_[static_cast<std::size_t>(b)] = reduce_block(
                         net, is_port_, structure_, b, opts_, pool_.get());
                 });
  }
  const double reduce_seconds = phase.seconds();
  ReducedModel stitched = stitch_blocks(net, structure_, blocks_, pool_.get());
  initial_seconds_ = t.seconds();
  stitched.stats.partition_seconds = partition_seconds;
  stitched.stats.reduce_seconds = reduce_seconds;
  stitched.stats.total_seconds = initial_seconds_;
  set_model(std::move(stitched));
}

void IncrementalReducer::set_model(ReducedModel&& next) {
  // Freeze the version: once behind the shared handle it is never written
  // again (the next update builds a fresh allocation), so snapshots alias
  // it. Warm the graph's lazy CSR cache first — building it later would
  // mutate `mutable` state under concurrent readers.
  (void)next.network.graph.adjacency_ptr();
  model_ = std::make_shared<const ReducedModel>(std::move(next));
}

const ReducedModel& IncrementalReducer::update(
    const ConductanceNetwork& modified,
    const std::vector<index_t>& dirty_blocks) {
  Timer t;
  // Disarm the snapshot-reuse source while the caches mutate: if anything
  // below throws after blocks_ was partially rewritten and the caller
  // recovers with another update, the next publish must not dirty-only
  // rebuild against a snapshot predating the failed update (it would
  // alias artifacts of blocks that update already rewrote). Restored once
  // the mutations succeed, just in time for this update's publish.
  SnapshotPtr reuse_source = std::move(last_published_);
  // Same disarm dance for the copy-on-write stitch source: if this update
  // throws after blocks_ was partially rewritten and the caller recovers
  // with another update, the model must be re-stitched from blocks_ alone —
  // carrying slices over from a version that predates the failed rewrite
  // would mix stale node slices with fresh edge slices.
  const bool can_cow_stitch = model_matches_blocks_;
  model_matches_blocks_ = false;
  Timer phase;
  {
    // The structure refresh is the update's partition stage (same span
    // name, so the aggregate covers both the initial build and updates).
    OBS_SPAN("partition");
    // Refresh cached block-internal edge weights from the modified network.
    BlockStructure st = structure_;
    for (auto& edges : st.block_edges) edges.clear();
    st.cut_edges.clear();
    for (const auto& e : modified.graph.edges()) {
      const index_t bu = st.block_of[static_cast<std::size_t>(e.u)];
      const index_t bv = st.block_of[static_cast<std::size_t>(e.v)];
      if (bu == bv)
        st.block_edges[static_cast<std::size_t>(bu)].push_back(e);
      else
        st.cut_edges.push_back(e);
    }
    structure_ = std::move(st);
  }
  const double structure_seconds = phase.seconds();

  for (index_t b : dirty_blocks)
    if (b < 0 || b >= structure_.num_blocks)
      throw std::out_of_range("IncrementalReducer::update: bad block id");
  // Deduplicate so two tasks can never write the same blocks_ slot.
  std::vector<index_t> dirty = dirty_blocks;
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  // Only the dirty blocks are re-reduced; their slots are disjoint, so the
  // update parallelizes exactly like the initial reduction.
  phase.reset();
  {
    OBS_SPAN("reduce");
    parallel_for(pool_.get(), 0, static_cast<index_t>(dirty.size()), 1,
                 [&](index_t lo, index_t hi) {
                   for (index_t i = lo; i < hi; ++i) {
                     const index_t b = dirty[static_cast<std::size_t>(i)];
                     blocks_[static_cast<std::size_t>(b)] =
                         reduce_block(modified, is_port_, structure_, b,
                                      opts_, pool_.get());
                   }
                 });
  }
  const double reduce_seconds = phase.seconds();
  // Build the *next* model version copy-on-write: the current version stays
  // frozen (published snapshots alias it), clean blocks' node-side slices
  // carry over, and only the dirty slices are rewritten
  // (stitch_blocks_update falls back to a full stitch if the layout moved).
  ReducedModel next =
      model_ && can_cow_stitch
          ? stitch_blocks_update(modified, structure_, blocks_, *model_,
                                 dirty, pool_.get())
          : stitch_blocks(modified, structure_, blocks_, pool_.get());
  update_seconds_ = t.seconds();
  // Reused-block fraction of the copy-on-write stitch (DESIGN.md §6):
  // reused / total over the process lifetime. A full-stitch fallback
  // contributes 0 reused, so the ratio degrades visibly when layouts keep
  // moving. Updates are ms-scale, so the get-or-create lookup is noise.
  {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.counter("er_stitch_blocks_total", {},
                "Blocks stitched by incremental updates")
        .add(static_cast<std::uint64_t>(structure_.num_blocks));
    reg.counter("er_stitch_blocks_reused_total", {},
                "Blocks whose node slices the copy-on-write stitch carried "
                "over unchanged")
        .add(static_cast<std::uint64_t>(next.stats.stitch_reused_blocks));
  }
  // The structure refresh plays the partition stage's role in an update.
  next.stats.partition_seconds = structure_seconds;
  next.stats.reduce_seconds = reduce_seconds;
  next.stats.total_seconds = update_seconds_;
  set_model(std::move(next));
  model_matches_blocks_ = true;
  // Counted unconditionally so a model revision never reuses a version
  // number, even across detach_store / attach_store cycles.
  ++revision_;
  last_published_ = std::move(reuse_source);
  if (store_) publish_current(&dirty);
  return *model_;
}

void IncrementalReducer::attach_store(ModelStore* store,
                                      const ServingOptions& opts) {
  if (!store)
    throw std::invalid_argument("IncrementalReducer::attach_store: null store");
  store_ = store;
  serving_opts_ = opts;
  publish_current(nullptr);
}

void IncrementalReducer::publish_current(const std::vector<index_t>* dirty) {
  Timer t;
  OBS_SPAN("publish");
  // The snapshot is built completely off to the side and only then swapped
  // in, so queries racing with this publish never observe a half-built
  // model (DESIGN.md §4 publish protocol). An update publish is a
  // dirty-only rebuild: clean blocks alias the previous snapshot's
  // artifacts, so only the dirty blocks and the boundary (plus optional
  // monolithic) factors are recomputed — bit-identical to the full build
  // (DESIGN.md §4.1).
  SnapshotPtr snap;
  try {
    // share_model (default) hands the snapshot the frozen version's shared
    // handle — zero model bytes copied; the opt-out passes the model by
    // reference so the snapshot deep-copies it (A/B cost measurement).
    if (dirty && last_published_ && serving_opts_.incremental_publish) {
      if (serving_opts_.share_model)
        snap = ModelSnapshot::rebuild(*last_published_, blocks_, model_,
                                      *dirty, pool_.get(), revision_);
      else
        snap = ModelSnapshot::rebuild(*last_published_, blocks_, *model_,
                                      *dirty, pool_.get(), revision_);
    } else {
      if (serving_opts_.share_model)
        snap = ModelSnapshot::build(blocks_, model_, serving_opts_,
                                    pool_.get(), revision_);
      else
        snap = ModelSnapshot::build(blocks_, *model_, serving_opts_,
                                    pool_.get(), revision_);
    }
    store_->publish(snap);
  } catch (...) {
    // A failed build/publish leaves last_published_ behind the reducer's
    // state: a later dirty-only rebuild against it would alias artifacts
    // of blocks dirtied by the unpublished updates. Drop it so the next
    // publish falls back to a full build.
    last_published_.reset();
    throw;
  }
  publish_model_bytes_copied_ = snap->model_bytes_copied();
  publish_bytes_materialized_ = snap->bytes_materialized();
  last_published_ = std::move(snap);
  publish_seconds_ = t.seconds();
  // Snapshot build+publish latency: the reducer-side half of the
  // publish-latency picture (the updater's er_updater_publish_latency_
  // seconds measures submit-to-publish, which adds queueing).
  obs::MetricsRegistry::global()
      .histogram("er_reducer_publish_seconds", {},
                 "Snapshot build + store publish per publish_current()")
      .record(publish_seconds_);
}

}  // namespace er
