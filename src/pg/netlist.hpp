// SPICE-subset netlist reader/writer for power grids.
//
// Grammar (one element per line, case-insensitive leading letter):
//   * comment                      (also lines starting with '#')
//   Rname nodeA nodeB value        resistor (ohms)
//   Cname node 0 value             capacitor to ground (farads)
//   Iname node 0 dc [pulse period duty]   current load (amps)
//   Vname node 0 vdd [conductance] pad: supply attachment
//   .end                           terminator (optional)
// Nodes are non-negative integers; node 0 in C/I/V lines denotes ground.
#pragma once

#include <iosfwd>
#include <string>

#include "pg/power_grid.hpp"

namespace er {

/// Parse a netlist from a stream; throws std::runtime_error with a line
/// number on malformed input.
PowerGrid read_netlist(std::istream& in);

/// Parse a netlist file.
PowerGrid read_netlist_file(const std::string& path);

/// Serialize a power grid as a netlist.
void write_netlist(const PowerGrid& pg, std::ostream& out);
void write_netlist_file(const PowerGrid& pg, const std::string& path);

}  // namespace er
