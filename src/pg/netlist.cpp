#include "pg/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace er {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("netlist line " + std::to_string(line_no) + ": " +
                           why);
}

}  // namespace

PowerGrid read_netlist(std::istream& in) {
  PowerGrid pg;
  index_t max_node = -1;
  std::string line;
  std::size_t line_no = 0;

  auto track = [&max_node](index_t v) { max_node = std::max(max_node, v); };

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string head;
    ls >> head;
    if (head.empty() || head[0] == '*' || head[0] == '#') continue;
    const char kind = static_cast<char>(
        std::tolower(static_cast<unsigned char>(head[0])));
    if (head == ".end" || head == ".END") break;
    if (head[0] == '.') continue;  // other directives ignored

    switch (kind) {
      case 'r': {
        long long a = 0, b = 0;
        double value = 0.0;
        if (!(ls >> a >> b >> value)) fail(line_no, "malformed resistor");
        if (a == b) fail(line_no, "resistor endpoints equal");
        if (value <= 0.0) fail(line_no, "resistance must be positive");
        pg.resistors.push_back({static_cast<index_t>(a),
                                static_cast<index_t>(b),
                                static_cast<real_t>(value)});
        track(static_cast<index_t>(a));
        track(static_cast<index_t>(b));
        break;
      }
      case 'c': {
        long long node = 0, gnd = 0;
        double value = 0.0;
        if (!(ls >> node >> gnd >> value)) fail(line_no, "malformed capacitor");
        if (gnd != 0) fail(line_no, "capacitors must connect to ground (0)");
        if (value < 0.0) fail(line_no, "capacitance must be nonnegative");
        pg.capacitors.push_back(
            {static_cast<index_t>(node), static_cast<real_t>(value)});
        track(static_cast<index_t>(node));
        break;
      }
      case 'i': {
        long long node = 0, gnd = 0;
        double dc = 0.0;
        if (!(ls >> node >> gnd >> dc)) fail(line_no, "malformed load");
        if (gnd != 0) fail(line_no, "loads must connect to ground (0)");
        CurrentLoad load;
        load.node = static_cast<index_t>(node);
        load.dc = static_cast<real_t>(dc);
        double pulse = 0.0, period = 0.0, duty = 0.0;
        if (ls >> pulse >> period >> duty) {
          load.pulse = static_cast<real_t>(pulse);
          load.period = static_cast<real_t>(period);
          load.duty = static_cast<real_t>(duty);
        }
        pg.loads.push_back(load);
        track(load.node);
        break;
      }
      case 'v': {
        long long node = 0, gnd = 0;
        double vdd = 0.0;
        if (!(ls >> node >> gnd >> vdd)) fail(line_no, "malformed pad");
        if (gnd != 0) fail(line_no, "pads must reference ground (0)");
        Pad pad;
        pad.node = static_cast<index_t>(node);
        double conductance = 0.0;
        if (ls >> conductance) {
          if (conductance <= 0.0) fail(line_no, "pad conductance must be > 0");
          pad.conductance = static_cast<real_t>(conductance);
        }
        pg.vdd = static_cast<real_t>(vdd);
        pg.pads.push_back(pad);
        track(pad.node);
        break;
      }
      default:
        fail(line_no, "unknown element '" + head + "'");
    }
  }
  pg.num_nodes = max_node + 1;
  if (!pg.validate())
    throw std::runtime_error("netlist: resulting grid failed validation");
  return pg;
}

PowerGrid read_netlist_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open netlist: " + path);
  return read_netlist(in);
}

void write_netlist(const PowerGrid& pg, std::ostream& out) {
  out.precision(17);  // lossless double round trip
  out << "* power grid netlist: " << pg.num_nodes << " nodes, "
      << pg.resistors.size() << " resistors\n";
  std::size_t k = 0;
  for (const auto& r : pg.resistors)
    out << 'R' << k++ << ' ' << r.a << ' ' << r.b << ' ' << r.resistance
        << '\n';
  k = 0;
  for (const auto& c : pg.capacitors)
    out << 'C' << k++ << ' ' << c.node << " 0 " << c.capacitance << '\n';
  k = 0;
  for (const auto& l : pg.loads)
    out << 'I' << k++ << ' ' << l.node << " 0 " << l.dc << ' ' << l.pulse
        << ' ' << l.period << ' ' << l.duty << '\n';
  k = 0;
  for (const auto& p : pg.pads)
    out << 'V' << k++ << ' ' << p.node << " 0 " << pg.vdd << ' '
        << p.conductance << '\n';
  out << ".end\n";
}

void write_netlist_file(const PowerGrid& pg, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write netlist: " + path);
  write_netlist(pg, out);
}

}  // namespace er
