#include "pg/power_grid.hpp"

#include <cmath>

namespace er {

real_t CurrentLoad::current_at(real_t time) const {
  real_t i = dc;
  if (pulse != 0.0 && period > 0.0) {
    const real_t phase = time - std::floor(time / period) * period;
    if (phase < duty * period) i += pulse;
  }
  return i;
}

ConductanceNetwork PowerGrid::to_network() const {
  ConductanceNetwork net;
  net.graph = Graph(num_nodes);
  net.graph.reserve_edges(resistors.size());
  for (const auto& r : resistors)
    net.graph.add_edge(r.a, r.b, 1.0 / r.resistance);
  net.shunts.assign(static_cast<std::size_t>(num_nodes), 0.0);
  for (const auto& p : pads)
    net.shunts[static_cast<std::size_t>(p.node)] += p.conductance;
  return net;
}

std::vector<char> PowerGrid::port_mask() const {
  std::vector<char> mask(static_cast<std::size_t>(num_nodes), 0);
  for (const auto& p : pads) mask[static_cast<std::size_t>(p.node)] = 1;
  for (const auto& l : loads) mask[static_cast<std::size_t>(l.node)] = 1;
  return mask;
}

std::vector<index_t> PowerGrid::port_nodes() const {
  const auto mask = port_mask();
  std::vector<index_t> nodes;
  for (index_t v = 0; v < num_nodes; ++v)
    if (mask[static_cast<std::size_t>(v)]) nodes.push_back(v);
  return nodes;
}

std::vector<real_t> PowerGrid::load_vector(real_t time) const {
  std::vector<real_t> j(static_cast<std::size_t>(num_nodes), 0.0);
  for (const auto& l : loads)
    j[static_cast<std::size_t>(l.node)] += l.current_at(time);
  return j;
}

std::vector<real_t> PowerGrid::capacitance_vector() const {
  std::vector<real_t> c(static_cast<std::size_t>(num_nodes), 0.0);
  for (const auto& cap : capacitors)
    c[static_cast<std::size_t>(cap.node)] += cap.capacitance;
  return c;
}

bool PowerGrid::validate() const {
  auto in_range = [this](index_t v) { return v >= 0 && v < num_nodes; };
  for (const auto& r : resistors)
    if (!in_range(r.a) || !in_range(r.b) || r.a == r.b || !(r.resistance > 0.0))
      return false;
  for (const auto& c : capacitors)
    if (!in_range(c.node) || c.capacitance < 0.0) return false;
  for (const auto& l : loads)
    if (!in_range(l.node)) return false;
  for (const auto& p : pads)
    if (!in_range(p.node) || !(p.conductance > 0.0)) return false;
  return !pads.empty();
}

}  // namespace er
