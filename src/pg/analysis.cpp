#include "pg/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "chol/cholesky.hpp"
#include "util/timer.hpp"

namespace er {

DcSolution solve_dc(const ConductanceNetwork& net,
                    const std::vector<real_t>& injections) {
  DcSolution sol;
  Timer t;
  const CscMatrix g = net.system_matrix();
  const CholFactor f = cholesky(g, Ordering::kMinDeg);
  sol.factor_seconds = t.seconds();
  t.reset();
  sol.drops = f.solve(injections);
  sol.solve_seconds = t.seconds();
  return sol;
}

std::vector<real_t> map_injections(const ReducedModel& model,
                                   const std::vector<real_t>& full) {
  std::vector<real_t> out(
      static_cast<std::size_t>(model.network.num_nodes()), 0.0);
  for (std::size_t v = 0; v < full.size(); ++v) {
    if (full[v] == 0.0) continue;
    const index_t gid = model.node_map[v];
    if (gid < 0)
      throw std::invalid_argument(
          "map_injections: nonzero injection at an eliminated node");
    out[static_cast<std::size_t>(gid)] += full[v];
  }
  return out;
}

std::vector<real_t> map_capacitances(const ReducedModel& model,
                                     const std::vector<real_t>& full) {
  std::vector<real_t> out(
      static_cast<std::size_t>(model.network.num_nodes()), 0.0);
  for (std::size_t v = 0; v < full.size(); ++v) {
    const real_t c = full[v];
    if (c == 0.0) continue;
    const index_t gid = model.node_map[v];
    if (gid >= 0) {
      out[static_cast<std::size_t>(gid)] += c;
      continue;
    }
    // Interior node: spread over the kept nodes of its block.
    const index_t b = model.block_of[v];
    const auto& kept = model.block_kept[static_cast<std::size_t>(b)];
    if (kept.empty()) continue;  // floating block (no ports): cap dropped
    const real_t share = c / static_cast<real_t>(kept.size());
    for (index_t gid2 : kept) out[static_cast<std::size_t>(gid2)] += share;
  }
  return out;
}

TransientResult run_transient(const ConductanceNetwork& net,
                              const std::vector<real_t>& caps,
                              const std::vector<CurrentLoad>& loads,
                              const TransientOptions& opts,
                              const std::vector<index_t>& probes) {
  const index_t n = net.num_nodes();
  if (caps.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("run_transient: caps size mismatch");
  if (!(opts.step > 0.0) || opts.steps <= 0)
    throw std::invalid_argument("run_transient: bad step configuration");

  TransientResult res;
  Timer t;

  // System matrix G + C/h (C diagonal).
  CscMatrix g = net.system_matrix();
  {
    // Add C/h onto the diagonal via triplets to keep the CSC invariants.
    TripletMatrix diag(n, n);
    for (index_t v = 0; v < n; ++v)
      if (caps[static_cast<std::size_t>(v)] != 0.0)
        diag.add(v, v, caps[static_cast<std::size_t>(v)] / opts.step);
    g = g.add(CscMatrix::from_triplets(diag));
  }
  const CholFactor f = cholesky(g, Ordering::kMinDeg);
  res.factor_seconds = t.seconds();

  t.reset();
  std::vector<real_t> d(static_cast<std::size_t>(n), 0.0);  // start at rest
  std::vector<real_t> rhs(static_cast<std::size_t>(n));
  res.series.assign(probes.size(), {});
  for (auto& s : res.series) s.reserve(static_cast<std::size_t>(opts.steps));

  for (int k = 1; k <= opts.steps; ++k) {
    const real_t time = static_cast<real_t>(k) * opts.step;
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (const auto& load : loads)
      rhs[static_cast<std::size_t>(load.node)] += load.current_at(time);
    for (index_t v = 0; v < n; ++v)
      rhs[static_cast<std::size_t>(v)] +=
          caps[static_cast<std::size_t>(v)] / opts.step *
          d[static_cast<std::size_t>(v)];
    d = f.solve(rhs);
    for (std::size_t p = 0; p < probes.size(); ++p)
      res.series[p].push_back(d[static_cast<std::size_t>(probes[p])]);
  }
  res.solve_seconds = t.seconds();
  return res;
}

std::vector<CurrentLoad> map_loads(const ReducedModel& model,
                                   const std::vector<CurrentLoad>& loads) {
  std::vector<CurrentLoad> out;
  out.reserve(loads.size());
  for (const auto& l : loads) {
    const index_t gid = model.node_map[static_cast<std::size_t>(l.node)];
    if (gid < 0)
      throw std::invalid_argument("map_loads: load node was eliminated");
    CurrentLoad m = l;
    m.node = gid;
    out.push_back(m);
  }
  return out;
}

SolutionError compare_dc(const std::vector<real_t>& reference_drops,
                         const DcSolution& reduced_solution,
                         const ReducedModel& model,
                         const std::vector<index_t>& port_nodes) {
  SolutionError e;
  if (port_nodes.empty()) return e;
  double max_drop = 0.0;
  for (real_t v : reference_drops) max_drop = std::max(max_drop, std::abs(v));
  double acc = 0.0;
  for (index_t p : port_nodes) {
    const index_t gid = model.node_map[static_cast<std::size_t>(p)];
    if (gid < 0)
      throw std::invalid_argument("compare_dc: port was eliminated");
    acc += std::abs(reference_drops[static_cast<std::size_t>(p)] -
                    reduced_solution.drops[static_cast<std::size_t>(gid)]);
  }
  e.err_volts = acc / static_cast<double>(port_nodes.size());
  e.rel = max_drop > 0.0 ? e.err_volts / max_drop : 0.0;
  return e;
}

SolutionError compare_transient(const TransientResult& reference,
                                const TransientResult& reduced,
                                double reference_max_drop) {
  SolutionError e;
  if (reference.series.empty() ||
      reference.series.size() != reduced.series.size())
    throw std::invalid_argument("compare_transient: probe sets differ");
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t p = 0; p < reference.series.size(); ++p) {
    const auto& a = reference.series[p];
    const auto& b = reduced.series[p];
    if (a.size() != b.size())
      throw std::invalid_argument("compare_transient: step counts differ");
    for (std::size_t k = 0; k < a.size(); ++k) {
      acc += std::abs(a[k] - b[k]);
      ++count;
    }
  }
  e.err_volts = count ? acc / static_cast<double>(count) : 0.0;
  e.rel = reference_max_drop > 0.0 ? e.err_volts / reference_max_drop : 0.0;
  return e;
}

}  // namespace er
