#include "pg/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace er {

PowerGrid generate_power_grid(const PgGeneratorOptions& opts) {
  if (opts.nx < 2 || opts.ny < 2 || opts.layers < 1)
    throw std::invalid_argument("generate_power_grid: grid too small");
  Rng rng(opts.seed);

  // Layer l has pitch 2^l over the bottom mesh; compute per-layer shapes.
  std::vector<index_t> lnx(static_cast<std::size_t>(opts.layers));
  std::vector<index_t> lny(static_cast<std::size_t>(opts.layers));
  std::vector<index_t> base(static_cast<std::size_t>(opts.layers));
  index_t total = 0;
  for (index_t l = 0; l < opts.layers; ++l) {
    const index_t pitch = index_t{1} << l;
    lnx[static_cast<std::size_t>(l)] = std::max<index_t>((opts.nx + pitch - 1) / pitch, 2);
    lny[static_cast<std::size_t>(l)] = std::max<index_t>((opts.ny + pitch - 1) / pitch, 2);
    base[static_cast<std::size_t>(l)] = total;
    total += lnx[static_cast<std::size_t>(l)] * lny[static_cast<std::size_t>(l)];
  }

  PowerGrid pg;
  pg.num_nodes = total;
  pg.vdd = opts.vdd;
  auto id = [&](index_t l, index_t x, index_t y) {
    return base[static_cast<std::size_t>(l)] +
           y * lnx[static_cast<std::size_t>(l)] + x;
  };

  // Meshes and vias. Upper layers are thicker metal: lower resistance.
  for (index_t l = 0; l < opts.layers; ++l) {
    const real_t r_layer =
        opts.segment_resistance *
        std::pow(opts.layer_resistance_scale, static_cast<real_t>(l));
    const index_t w = lnx[static_cast<std::size_t>(l)];
    const index_t h = lny[static_cast<std::size_t>(l)];
    for (index_t y = 0; y < h; ++y)
      for (index_t x = 0; x < w; ++x) {
        // +-20% process variation on each segment.
        if (x + 1 < w)
          pg.resistors.push_back(
              {id(l, x, y), id(l, x + 1, y), r_layer * rng.uniform(0.8, 1.2)});
        if (y + 1 < h)
          pg.resistors.push_back(
              {id(l, x, y), id(l, x, y + 1), r_layer * rng.uniform(0.8, 1.2)});
      }
    if (l + 1 < opts.layers) {
      const index_t uw = lnx[static_cast<std::size_t>(l) + 1];
      const index_t uh = lny[static_cast<std::size_t>(l) + 1];
      for (index_t y = 0; y < uh; ++y)
        for (index_t x = 0; x < uw; ++x) {
          const index_t fx = std::min<index_t>(2 * x, w - 1);
          const index_t fy = std::min<index_t>(2 * y, h - 1);
          pg.resistors.push_back({id(l, fx, fy), id(l + 1, x, y),
                                  opts.via_resistance * rng.uniform(0.8, 1.2)});
        }
    }
  }

  // Pads: evenly spaced along the top-layer perimeter.
  {
    const index_t top = opts.layers - 1;
    const index_t w = lnx[static_cast<std::size_t>(top)];
    const index_t h = lny[static_cast<std::size_t>(top)];
    const index_t k = std::max<index_t>(opts.pads_per_side, 1);
    for (index_t s = 0; s < k; ++s) {
      const index_t x = static_cast<index_t>(
          (static_cast<double>(s) + 0.5) * w / k);
      const index_t y = static_cast<index_t>(
          (static_cast<double>(s) + 0.5) * h / k);
      pg.pads.push_back({id(top, std::min(x, w - 1), 0), opts.pad_conductance});
      pg.pads.push_back(
          {id(top, std::min(x, w - 1), h - 1), opts.pad_conductance});
      pg.pads.push_back({id(top, 0, std::min(y, h - 1)), opts.pad_conductance});
      pg.pads.push_back(
          {id(top, w - 1, std::min(y, h - 1)), opts.pad_conductance});
    }
  }

  // Loads: random bottom-layer nodes with staggered pulse phases (modeled
  // as different duty cycles around 0.5).
  {
    const index_t bottom_nodes = lnx[0] * lny[0];
    const auto want = static_cast<index_t>(
        std::max(1.0, opts.load_density * static_cast<double>(bottom_nodes)));
    std::vector<char> used(static_cast<std::size_t>(bottom_nodes), 0);
    index_t placed = 0;
    while (placed < want) {
      const index_t v = rng.uniform_int(bottom_nodes);
      if (used[static_cast<std::size_t>(v)]) continue;
      used[static_cast<std::size_t>(v)] = 1;
      CurrentLoad load;
      load.node = v;  // bottom layer has base 0
      load.dc = opts.load_dc * rng.uniform(0.5, 1.5);
      load.pulse = opts.load_pulse * rng.uniform(0.5, 1.5);
      load.period = opts.load_period * rng.uniform(0.8, 1.25);
      load.duty = rng.uniform(0.3, 0.7);
      pg.loads.push_back(load);
      ++placed;
    }
  }

  // Capacitance at every node (larger on the bottom layer).
  for (index_t l = 0; l < opts.layers; ++l) {
    const real_t c = opts.node_capacitance * (l == 0 ? 2.0 : 1.0);
    const index_t count =
        lnx[static_cast<std::size_t>(l)] * lny[static_cast<std::size_t>(l)];
    for (index_t v = 0; v < count; ++v)
      pg.capacitors.push_back(
          {base[static_cast<std::size_t>(l)] + v, c * rng.uniform(0.8, 1.2)});
  }

  return pg;
}

PgGeneratorOptions ibmpg_like_preset(int index, real_t size_scale) {
  PgGeneratorOptions o;
  // Relative sizes follow ibmpg2 (~0.13M) .. ibmpg6 (~1.7M), scaled.
  index_t side = 64;
  switch (index) {
    case 2: side = 64; o.layers = 3; break;
    case 3: side = 160; o.layers = 3; break;
    case 4: side = 170; o.layers = 3; break;
    case 5: side = 180; o.layers = 4; break;
    case 6: side = 224; o.layers = 4; break;
    default:
      throw std::invalid_argument("ibmpg_like_preset: index must be 2..6");
  }
  side = std::max<index_t>(static_cast<index_t>(side * size_scale), 8);
  o.nx = side;
  o.ny = side;
  o.pads_per_side = std::max<index_t>(2, side / 16);
  o.load_density = 0.10;
  o.seed = static_cast<std::uint64_t>(1000 + index);
  return o;
}

}  // namespace er
