#include "chol/factor.hpp"

#include <algorithm>
#include <stdexcept>

#include "order/mindeg.hpp"

namespace er {

void CholFactor::forward_solve(std::vector<real_t>& x) const {
  if (x.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("forward_solve: size mismatch");
  for (index_t j = 0; j < n; ++j) {
    const offset_t begin = col_ptr[static_cast<std::size_t>(j)];
    const offset_t end = col_ptr[static_cast<std::size_t>(j) + 1];
    const real_t xj = x[static_cast<std::size_t>(j)] /
                      values[static_cast<std::size_t>(begin)];
    x[static_cast<std::size_t>(j)] = xj;
    if (xj == 0.0) continue;
    for (offset_t p = begin + 1; p < end; ++p)
      x[static_cast<std::size_t>(row_ind[static_cast<std::size_t>(p)])] -=
          values[static_cast<std::size_t>(p)] * xj;
  }
}

void CholFactor::backward_solve(std::vector<real_t>& x) const {
  if (x.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("backward_solve: size mismatch");
  for (index_t j = n; j-- > 0;) {
    const offset_t begin = col_ptr[static_cast<std::size_t>(j)];
    const offset_t end = col_ptr[static_cast<std::size_t>(j) + 1];
    real_t s = x[static_cast<std::size_t>(j)];
    for (offset_t p = begin + 1; p < end; ++p)
      s -= values[static_cast<std::size_t>(p)] *
           x[static_cast<std::size_t>(row_ind[static_cast<std::size_t>(p)])];
    x[static_cast<std::size_t>(j)] = s / values[static_cast<std::size_t>(begin)];
  }
}

void CholFactor::solve_permuted(std::vector<real_t>& x) const {
  forward_solve(x);
  backward_solve(x);
}

std::vector<real_t> CholFactor::solve(const std::vector<real_t>& b) const {
  if (b.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("CholFactor::solve: size mismatch");
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] =
        b[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
  solve_permuted(x);
  std::vector<real_t> out(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    out[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
        x[static_cast<std::size_t>(i)];
  return out;
}

CscMatrix CholFactor::to_csc() const {
  TripletMatrix t(n, n);
  t.reserve(static_cast<std::size_t>(nnz()));
  for (index_t j = 0; j < n; ++j)
    for (offset_t p = col_ptr[static_cast<std::size_t>(j)];
         p < col_ptr[static_cast<std::size_t>(j) + 1]; ++p)
      t.add(row_ind[static_cast<std::size_t>(p)], j,
            values[static_cast<std::size_t>(p)]);
  return CscMatrix::from_triplets(t);
}

bool CholFactor::check_invariants() const {
  if (col_ptr.size() != static_cast<std::size_t>(n) + 1) return false;
  if (!is_permutation(perm) || !is_permutation(inv_perm)) return false;
  if (perm.size() != static_cast<std::size_t>(n)) return false;
  for (index_t j = 0; j < n; ++j) {
    const offset_t begin = col_ptr[static_cast<std::size_t>(j)];
    const offset_t end = col_ptr[static_cast<std::size_t>(j) + 1];
    if (begin >= end) return false;  // at least the diagonal
    if (row_ind[static_cast<std::size_t>(begin)] != j) return false;
    if (values[static_cast<std::size_t>(begin)] <= 0.0) return false;
    for (offset_t p = begin + 1; p < end; ++p) {
      if (row_ind[static_cast<std::size_t>(p)] <= j) return false;
      if (p > begin + 1 &&
          row_ind[static_cast<std::size_t>(p - 1)] >=
              row_ind[static_cast<std::size_t>(p)])
        return false;
    }
  }
  return true;
}

}  // namespace er
