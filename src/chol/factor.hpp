// Cholesky factor container shared by the complete and incomplete
// factorizations, plus triangular solves.
//
// Storage layout: CSC with the *diagonal entry first* in every column,
// followed by the off-diagonal rows in increasing order. This is the layout
// the up-looking factorization produces naturally and the layout Alg. 2
// (approximate inverse) consumes directly.
//
// The factor lives in *permuted* space: it factors P A P^T where
// perm[new] = old. Callers either work in permuted coordinates
// (approximate-inverse columns) or use solve(), which applies the
// permutations on the way in and out.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace er {

struct CholFactor {
  index_t n = 0;
  std::vector<offset_t> col_ptr;  // size n+1
  std::vector<index_t> row_ind;   // diagonal first per column
  std::vector<real_t> values;
  std::vector<index_t> perm;      // new -> old
  std::vector<index_t> inv_perm;  // old -> new

  [[nodiscard]] offset_t nnz() const {
    return col_ptr.empty() ? 0 : col_ptr.back();
  }

  /// L(j, j); columns store the diagonal first.
  [[nodiscard]] real_t diag(index_t j) const {
    return values[static_cast<std::size_t>(col_ptr[static_cast<std::size_t>(j)])];
  }

  /// x := L^{-1} x (permuted space).
  void forward_solve(std::vector<real_t>& x) const;

  /// x := L^{-T} x (permuted space).
  void backward_solve(std::vector<real_t>& x) const;

  /// x := (L L^T)^{-1} x (permuted space).
  void solve_permuted(std::vector<real_t>& x) const;

  /// Solve A x = b in original coordinates (applies perm / inv_perm).
  [[nodiscard]] std::vector<real_t> solve(const std::vector<real_t>& b) const;

  /// Approximate resident size in bytes (CSC arrays + permutations) — the
  /// unit of the serving layer's per-publish build-cost accounting.
  [[nodiscard]] std::size_t footprint_bytes() const {
    return col_ptr.size() * sizeof(offset_t) +
           row_ind.size() * sizeof(index_t) + values.size() * sizeof(real_t) +
           (perm.size() + inv_perm.size()) * sizeof(index_t);
  }

  /// Row-sorted CSC copy of L (tests and diagnostics).
  [[nodiscard]] CscMatrix to_csc() const;

  /// Verify structural invariants (diag-first layout, sorted tails, perm).
  [[nodiscard]] bool check_invariants() const;
};

}  // namespace er
