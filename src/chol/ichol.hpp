// Incomplete Cholesky factorization with threshold dropping — ICT(τ).
//
// The paper (§III-C) replaces the complete Cholesky factorization with an
// incomplete one on large graphs: "fill-ins with very small absolute values
// are dropped, which corresponds to setting branches with large resistances
// to open" and perturbs effective resistances only mildly.
//
// Dropping rule: a candidate subdiagonal value w_i of column j (which is an
// intermediate-elimination branch of conductance |w_i| between nodes i and
// j) is dropped iff |w_i| < droptol * s, where s is the median off-diagonal
// magnitude of A — a robust global conductance scale. This matches the
// paper's "absolute value" semantics: only branches whose resistance is
// ~1/droptol above the typical branch are opened. (A per-column relative
// rule, as in MATLAB's ichol, is catastrophically aggressive on hub columns
// of power-law graphs: its threshold grows with the hub degree and opens
// *low*-resistance branches.) The diagonal is always kept; droptol == 0
// yields the complete factor.
//
// Breakdown handling: Laplacian-like SDD M-matrices cannot break down under
// this rule (dropping off-diagonals with compensation keeps the matrix a
// subgraph Laplacian, and a pivot floor guards degenerate columns), but for
// general SPD inputs a global diagonal shift A + alpha*diag(A) is applied
// and doubled until the factorization succeeds.
#pragma once

#include <vector>

#include "chol/factor.hpp"
#include "order/mindeg.hpp"
#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace er {

struct IcholOptions {
  real_t droptol = 1e-3;       // paper's Table I setting
  real_t initial_shift = 1e-3; // first diagonal shift on breakdown
  int max_shift_retries = 20;
  /// Diagonal compensation ("open branch" semantics, §III-C): dropping a
  /// fill-in w_ij also removes its contribution from both diagonals, so the
  /// incomplete factor is exactly the factor of a *subgraph* Laplacian
  /// rather than one with spurious conductances to ground. Without this,
  /// long-range effective resistances are systematically underestimated.
  bool diagonal_compensation = true;
  /// Pivot floor (fraction of the uncompensated pivot) guarding against
  /// breakdown when compensation removes almost all of a pivot.
  real_t compensation_pivot_floor = 0.05;
};

/// Incomplete factor of P A P^T with the given permutation (new -> old).
CholFactor ichol(const CscMatrix& a, const std::vector<index_t>& perm,
                 const IcholOptions& opts = {});

/// Convenience overload computing the ordering internally.
CholFactor ichol(const CscMatrix& a, Ordering ordering = Ordering::kMinDeg,
                 const IcholOptions& opts = {});

}  // namespace er
