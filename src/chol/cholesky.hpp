// Complete sparse Cholesky factorization (up-looking, CSparse-style).
#pragma once

#include <vector>

#include "chol/factor.hpp"
#include "order/mindeg.hpp"
#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace er {

/// Factor P A P^T = L L^T for a symmetric positive definite A.
/// `perm` maps new -> old; throws std::runtime_error if A is not SPD.
CholFactor cholesky(const CscMatrix& a, const std::vector<index_t>& perm);

/// Convenience overload that computes the ordering first.
CholFactor cholesky(const CscMatrix& a, Ordering ordering = Ordering::kMinDeg);

}  // namespace er
