#include "chol/ichol.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace er {

namespace {

/// One left-looking ICT attempt on the permuted matrix. Returns false on
/// pivot breakdown (caller shifts and retries).
bool ict_attempt(const CscMatrix& ap, const IcholOptions& opts, real_t shift,
                 real_t global_scale, CholFactor& f) {
  const index_t n = ap.cols();
  const auto& cp = ap.col_ptr();
  const auto& ri = ap.row_ind();
  const auto& vv = ap.values();

  // Absolute dropping threshold: droptol relative to the typical branch
  // conductance of the whole graph (see header comment).
  const real_t keep_threshold = opts.droptol * global_scale;

  // Columns of L built incrementally; compressed at the end.
  std::vector<std::vector<index_t>> lrow(static_cast<std::size_t>(n));
  std::vector<std::vector<real_t>> lval(static_cast<std::size_t>(n));

  // Left-looking traversal state: for column k already factored,
  // cursor[k] points at the next off-diagonal entry with row >= current j;
  // link[k] chains columns whose cursor row equals the current column.
  std::vector<offset_t> cursor(static_cast<std::size_t>(n), 0);
  std::vector<index_t> link_head(static_cast<std::size_t>(n), -1);
  std::vector<index_t> link_next(static_cast<std::size_t>(n), -1);

  // Dense scatter workspace.
  std::vector<real_t> w(static_cast<std::size_t>(n), 0.0);
  std::vector<index_t> pattern;
  std::vector<char> keep_flags;
  std::vector<index_t> touched(static_cast<std::size_t>(n), -1);
  // Deferred diagonal corrections from dropped branches (compensation).
  std::vector<real_t> diag_corr(static_cast<std::size_t>(n), 0.0);

  auto attach = [&](index_t k, index_t row) {
    link_next[static_cast<std::size_t>(k)] = link_head[static_cast<std::size_t>(row)];
    link_head[static_cast<std::size_t>(row)] = k;
  };

  for (index_t j = 0; j < n; ++j) {
    pattern.clear();
    real_t dj = 0.0;

    // Scatter A(j:n, j); apply the diagonal shift.
    for (offset_t p = cp[static_cast<std::size_t>(j)];
         p < cp[static_cast<std::size_t>(j) + 1]; ++p) {
      const index_t i = ri[static_cast<std::size_t>(p)];
      if (i < j) continue;
      const real_t v = vv[static_cast<std::size_t>(p)];
      if (i == j) {
        dj = v * (1.0 + shift);
        continue;
      }
      if (touched[static_cast<std::size_t>(i)] != j) {
        touched[static_cast<std::size_t>(i)] = j;
        w[static_cast<std::size_t>(i)] = 0.0;
        pattern.push_back(i);
      }
      w[static_cast<std::size_t>(i)] += v;
    }

    // Apply updates from all columns k < j with L(j,k) != 0.
    index_t k = link_head[static_cast<std::size_t>(j)];
    link_head[static_cast<std::size_t>(j)] = -1;
    while (k != -1) {
      const index_t knext = link_next[static_cast<std::size_t>(k)];
      const auto& rk = lrow[static_cast<std::size_t>(k)];
      const auto& vk = lval[static_cast<std::size_t>(k)];
      const auto cur = static_cast<std::size_t>(cursor[static_cast<std::size_t>(k)]);
      const real_t ljk = vk[cur];

      dj -= ljk * ljk;
      for (std::size_t p = cur + 1; p < rk.size(); ++p) {
        const index_t i = rk[p];
        if (touched[static_cast<std::size_t>(i)] != j) {
          touched[static_cast<std::size_t>(i)] = j;
          w[static_cast<std::size_t>(i)] = 0.0;
          pattern.push_back(i);
        }
        w[static_cast<std::size_t>(i)] -= vk[p] * ljk;
      }

      // Advance k's cursor to its next off-diagonal row and re-attach.
      if (cur + 1 < rk.size()) {
        cursor[static_cast<std::size_t>(k)] = static_cast<offset_t>(cur + 1);
        attach(k, rk[cur + 1]);
      }
      k = knext;
    }

    if (opts.diagonal_compensation)
      dj += diag_corr[static_cast<std::size_t>(j)];
    if (dj <= 0.0) return false;  // breakdown: caller shifts & retries

    // Threshold dropping (absolute; see header). With compensation, a
    // dropped subdiagonal value w_i (an intermediate-graph branch of
    // conductance -w_i between i and j) is removed from *both* diagonals:
    // from d_j now and from node i's future pivot. A pivot floor keeps
    // extreme columns factorable; entries whose compensation would sink the
    // pivot below the floor are kept instead.
    auto& rj = lrow[static_cast<std::size_t>(j)];
    auto& vj = lval[static_cast<std::size_t>(j)];
    std::sort(pattern.begin(), pattern.end());
    const real_t pivot_floor = opts.compensation_pivot_floor * dj;

    // First pass: decide drops and apply compensation to d_j.
    keep_flags.assign(pattern.size(), 1);
    for (std::size_t pi = 0; pi < pattern.size(); ++pi) {
      const index_t i = pattern[pi];
      const real_t v = w[static_cast<std::size_t>(i)];
      const bool small = std::abs(v) < keep_threshold || v == 0.0;
      if (!small) continue;
      if (opts.diagonal_compensation && v != 0.0) {
        // Opening the branch subtracts (-v) from both endpoints' diagonals;
        // for M-matrix columns v < 0, so dj + v < dj.
        if (dj + v <= pivot_floor) continue;  // keep instead of dropping
        dj += v;
        diag_corr[static_cast<std::size_t>(i)] += v;
      }
      keep_flags[pi] = 0;
    }

    if (dj <= 0.0) return false;
    const real_t ljj = std::sqrt(dj);
    rj.push_back(j);  // diagonal first
    vj.push_back(ljj);
    for (std::size_t pi = 0; pi < pattern.size(); ++pi) {
      if (!keep_flags[pi]) continue;
      const index_t i = pattern[pi];
      const real_t v = w[static_cast<std::size_t>(i)];
      if (v == 0.0) continue;
      rj.push_back(i);
      vj.push_back(v / ljj);
    }
    if (rj.size() > 1) attach(j, rj[1]);
    cursor[static_cast<std::size_t>(j)] = 1;  // first off-diagonal slot
  }

  // Compress into the factor.
  f.col_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  offset_t nnz = 0;
  for (index_t j = 0; j < n; ++j)
    nnz += static_cast<offset_t>(lrow[static_cast<std::size_t>(j)].size());
  f.row_ind.resize(static_cast<std::size_t>(nnz));
  f.values.resize(static_cast<std::size_t>(nnz));
  offset_t pos = 0;
  for (index_t j = 0; j < n; ++j) {
    const auto& rj = lrow[static_cast<std::size_t>(j)];
    const auto& vj = lval[static_cast<std::size_t>(j)];
    for (std::size_t p = 0; p < rj.size(); ++p) {
      f.row_ind[static_cast<std::size_t>(pos)] = rj[p];
      f.values[static_cast<std::size_t>(pos)] = vj[p];
      ++pos;
    }
    f.col_ptr[static_cast<std::size_t>(j) + 1] = pos;
  }
  return true;
}

}  // namespace

CholFactor ichol(const CscMatrix& a, const std::vector<index_t>& perm,
                 const IcholOptions& opts) {
  if (a.rows() != a.cols()) throw std::invalid_argument("ichol: not square");
  const index_t n = a.cols();
  if (perm.size() != static_cast<std::size_t>(n) || !is_permutation(perm))
    throw std::invalid_argument("ichol: invalid permutation");
  if (opts.droptol < 0.0)
    throw std::invalid_argument("ichol: droptol must be >= 0");

  const CscMatrix ap = a.permute_symmetric(perm);

  // Global conductance scale: median |off-diagonal| of A. Robust to hub
  // columns and to overall unit changes.
  real_t global_scale = 1.0;
  {
    std::vector<real_t> mags;
    mags.reserve(static_cast<std::size_t>(ap.nnz()));
    const auto& cp = ap.col_ptr();
    const auto& ri = ap.row_ind();
    const auto& vv = ap.values();
    for (index_t c = 0; c < n; ++c)
      for (offset_t p = cp[static_cast<std::size_t>(c)];
           p < cp[static_cast<std::size_t>(c) + 1]; ++p)
        if (ri[static_cast<std::size_t>(p)] > c &&
            vv[static_cast<std::size_t>(p)] != 0.0)
          mags.push_back(std::abs(vv[static_cast<std::size_t>(p)]));
    if (!mags.empty()) {
      auto mid = mags.begin() + static_cast<std::ptrdiff_t>(mags.size() / 2);
      std::nth_element(mags.begin(), mid, mags.end());
      global_scale = *mid;
    }
  }

  CholFactor f;
  f.n = n;
  f.perm = perm;
  f.inv_perm = invert_permutation(perm);

  real_t shift = 0.0;
  for (int attempt = 0; attempt <= opts.max_shift_retries; ++attempt) {
    if (ict_attempt(ap, opts, shift, global_scale, f)) return f;
    shift = shift == 0.0 ? opts.initial_shift : 2.0 * shift;
  }
  throw std::runtime_error("ichol: breakdown persisted after max shifts");
}

CholFactor ichol(const CscMatrix& a, Ordering ordering,
                 const IcholOptions& opts) {
  return ichol(a, compute_ordering(a, ordering), opts);
}

}  // namespace er
