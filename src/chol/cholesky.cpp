#include "chol/cholesky.hpp"

#include <cmath>
#include <stdexcept>

#include "order/etree.hpp"

namespace er {

namespace {

/// Compute the nonzero pattern of row k of L: the etree reach of the
/// upper-triangular entries of column k. Pattern is returned in
/// s[top .. n-1] in topological order (CSparse cs_ereach).
index_t ereach(const CscMatrix& a, index_t k,
               const std::vector<index_t>& parent, std::vector<index_t>& s,
               std::vector<index_t>& w) {
  const index_t n = a.cols();
  index_t top = n;
  w[static_cast<std::size_t>(k)] = k;  // mark k itself
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_ind();
  for (offset_t p = cp[static_cast<std::size_t>(k)];
       p < cp[static_cast<std::size_t>(k) + 1]; ++p) {
    index_t i = ri[static_cast<std::size_t>(p)];
    if (i >= k) continue;  // upper entries only
    index_t len = 0;
    // Walk up the etree until hitting a marked node.
    while (w[static_cast<std::size_t>(i)] != k) {
      s[static_cast<std::size_t>(len++)] = i;
      w[static_cast<std::size_t>(i)] = k;
      i = parent[static_cast<std::size_t>(i)];
    }
    // Push the path onto the output stack (reversed => topological).
    while (len > 0) s[static_cast<std::size_t>(--top)] = s[static_cast<std::size_t>(--len)];
  }
  return top;
}

}  // namespace

CholFactor cholesky(const CscMatrix& a, const std::vector<index_t>& perm) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: not square");
  const index_t n = a.cols();
  if (perm.size() != static_cast<std::size_t>(n) || !is_permutation(perm))
    throw std::invalid_argument("cholesky: invalid permutation");

  const CscMatrix ap = a.permute_symmetric(perm);
  const std::vector<index_t> parent = etree(ap);

  // --- Symbolic pass: column counts of L via per-row ereach. ---
  std::vector<index_t> s(static_cast<std::size_t>(n));
  std::vector<index_t> w(static_cast<std::size_t>(n), -1);
  std::vector<offset_t> count(static_cast<std::size_t>(n), 1);  // diagonals
  for (index_t k = 0; k < n; ++k) {
    const index_t top = ereach(ap, k, parent, s, w);
    for (index_t t = top; t < n; ++t)
      ++count[static_cast<std::size_t>(s[static_cast<std::size_t>(t)])];
  }

  CholFactor f;
  f.n = n;
  f.perm = perm;
  f.inv_perm = invert_permutation(perm);
  f.col_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j)
    f.col_ptr[static_cast<std::size_t>(j) + 1] =
        f.col_ptr[static_cast<std::size_t>(j)] + count[static_cast<std::size_t>(j)];
  const offset_t lnz = f.col_ptr.back();
  f.row_ind.assign(static_cast<std::size_t>(lnz), 0);
  f.values.assign(static_cast<std::size_t>(lnz), 0.0);

  // --- Numeric pass (up-looking): compute row k of L for k = 0..n-1. ---
  std::fill(w.begin(), w.end(), -1);
  std::vector<offset_t> next(f.col_ptr.begin(), f.col_ptr.end() - 1);
  std::vector<real_t> x(static_cast<std::size_t>(n), 0.0);

  const auto& cp = ap.col_ptr();
  const auto& ri = ap.row_ind();
  const auto& vv = ap.values();

  for (index_t k = 0; k < n; ++k) {
    const index_t top = ereach(ap, k, parent, s, w);

    // Scatter the upper part of column k of A into x; d = A(k,k).
    real_t d = 0.0;
    for (offset_t p = cp[static_cast<std::size_t>(k)];
         p < cp[static_cast<std::size_t>(k) + 1]; ++p) {
      const index_t i = ri[static_cast<std::size_t>(p)];
      if (i < k)
        x[static_cast<std::size_t>(i)] = vv[static_cast<std::size_t>(p)];
      else if (i == k)
        d = vv[static_cast<std::size_t>(p)];
    }

    // Sparse triangular solve along the pattern (topological order).
    for (index_t t = top; t < n; ++t) {
      const index_t j = s[static_cast<std::size_t>(t)];
      const offset_t jb = f.col_ptr[static_cast<std::size_t>(j)];
      const real_t lkj =
          x[static_cast<std::size_t>(j)] / f.values[static_cast<std::size_t>(jb)];
      x[static_cast<std::size_t>(j)] = 0.0;
      for (offset_t p = jb + 1; p < next[static_cast<std::size_t>(j)]; ++p)
        x[static_cast<std::size_t>(f.row_ind[static_cast<std::size_t>(p)])] -=
            f.values[static_cast<std::size_t>(p)] * lkj;
      d -= lkj * lkj;
      const offset_t pos = next[static_cast<std::size_t>(j)]++;
      f.row_ind[static_cast<std::size_t>(pos)] = k;
      f.values[static_cast<std::size_t>(pos)] = lkj;
    }

    if (d <= 0.0)
      throw std::runtime_error("cholesky: matrix is not positive definite");
    const offset_t pos = next[static_cast<std::size_t>(k)]++;
    f.row_ind[static_cast<std::size_t>(pos)] = k;  // diagonal first
    f.values[static_cast<std::size_t>(pos)] = std::sqrt(d);
  }
  return f;
}

CholFactor cholesky(const CscMatrix& a, Ordering ordering) {
  return cholesky(a, compute_ordering(a, ordering));
}

}  // namespace er
