/// \file
/// Version-keyed ER result cache with dirty-block invalidation
/// (DESIGN.md §4.2).
///
/// A sharded, lock-striped map from (scope, path, kind, accuracy tier,
/// node-pair) to the cached answer, sitting between QueryFrontEnd and the
/// snapshot's answer paths. A *scope* is an opaque epoch id resolved per
/// snapshot version:
///
///   * every version gets a fresh *exact scope* covering its sharded and
///     monolithic answers (they touch the interface-Schur boundary factor
///     S, global state rebuilt by every publish, so they are never valid
///     across versions — but stay valid for as long as the version itself
///     is pinned);
///   * every (version, block) gets a *block scope* covering the block's
///     resident-engine answers. On publish the hook compares the previous
///     and next snapshot's BlockArtifact pointers: an aliased (clean)
///     block *carries* its scope — all of its entries keep hitting under
///     the new version at zero cost — while a rebuilt (dirty) block gets a
///     fresh scope, making its old entries unreachable. A full build
///     aliases nothing, so every block scope turns over and the whole
///     engine-side cache drops (the full-stitch fallback contract).
///
/// Correctness does not depend on the invalidation protocol: snapshots are
/// immutable and every cacheable answer is a pure per-query function of
/// (scope state, kind, node pair), so a resolvable scope can only ever
/// yield the bitwise-identical answer the compute path would produce. The
/// protocol only decides *warmth*; an unresolvable version (never
/// registered, or past ResultCacheOptions::version_cap) simply misses
/// through. Unreachable entries are swept eagerly at publish so the
/// capacity isn't squatted by dead versions
/// (`er_cache_invalidations_total`).
///
/// Thread-safety: all methods are safe for any number of concurrent
/// callers. Point operations lock one stripe; the publish hook locks the
/// scope table and then each stripe in turn (never nested).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "serve/query_frontend.hpp"
#include "serve/snapshot.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace er {

namespace obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

/// Sharded LRU answer cache. Construct from ServingOptions::cache and
/// attach to the deployment's ModelStore (which invokes on_publish);
/// QueryFrontEnd::answer picks it up from the store automatically.
///
/// Observability (DESIGN.md §6): `er_cache_{hits,misses,evictions,
/// invalidations}_total` counters, `er_cache_entries` / `er_cache_bytes`
/// gauges, and the `er_cache_hit_latency_seconds` histogram, all
/// registered at construction so the families export even before traffic.
class ResultCache {
 public:
  /// Which answer path produced (and may re-serve) an entry. Distinct
  /// paths cache under distinct keys even for the same pair: sharded and
  /// monolithic answers differ in roundoff, and engine answers are
  /// approximate.
  enum class Path : std::uint8_t {
    kExact = 0,       ///< sharded domain-decomposition answers
    kMonolithic = 1,  ///< whole-system-factor answers
    kEngine = 2,      ///< block-local resident-engine answers
  };

  /// Scope resolution of one registered version: immutable once published
  /// from on_publish, so readers share it lock-free via shared_ptr.
  struct ScopeView {
    std::uint64_t exact_scope = 0;
    std::vector<std::uint64_t> block_scopes;  ///< block -> scope id
  };
  using ScopeViewPtr = std::shared_ptr<const ScopeView>;

  /// Metrics go to `registry` (null = the process-wide global registry).
  explicit ResultCache(const ResultCacheOptions& opts = {},
                       obs::MetricsRegistry* registry = nullptr);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  [[nodiscard]] const ResultCacheOptions& options() const { return opts_; }

  /// Publish hook (ModelStore calls this after every snapshot swap, and
  /// once at attach_cache for the already-current snapshot with
  /// previous = null). Registers `next`'s scopes — carrying the scope of
  /// every block whose artifact pointer `next` shares with `previous` —
  /// ages versions past ResultCacheOptions::version_cap out of the scope
  /// table, and sweeps entries of dead scopes.
  ///
  /// Hooks of *racing* publishes may run in either order; the worst case
  /// is a missed carry (fresh scopes, cold cache), never a stale hit,
  /// because a carry needs pointer identity against the registered
  /// previous snapshot.
  void on_publish(const ModelSnapshot* previous, const ModelSnapshot& next)
      ER_EXCLUDES(scope_mutex_);

  /// Scope resolution for a snapshot version; null when the version was
  /// never registered or has aged out (callers then skip the cache for
  /// the batch). Resolve once per batch — the view is immutable.
  [[nodiscard]] ScopeViewPtr scopes_for(std::uint64_t version) const
      ER_EXCLUDES(scope_mutex_);

  /// Probe for a cached answer; a hit refreshes the entry's LRU position
  /// and records the hit-latency sample. Returns false on miss. `tier` is
  /// part of the key (serve/query_policy.hpp): entries inserted under a
  /// reduced tier can never serve an exact-tier probe, and vice versa.
  bool lookup(std::uint64_t scope, Path path, QueryKind kind,
              AccuracyTier tier, index_t p, index_t q, real_t* out);

  /// Store an answer under the scope, evicting per-shard LRU tails past
  /// the capacity bound. Inserting an existing key refreshes its value
  /// (idempotent: answers are deterministic per key).
  void insert(std::uint64_t scope, Path path, QueryKind kind,
              AccuracyTier tier, index_t p, index_t q, real_t value);

  // Whole-cache probes (tests / introspection; the registry carries the
  // same figures as er_cache_* series).
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;
  [[nodiscard]] std::uint64_t invalidations() const;

  /// Resident-byte estimate per entry (map node + LRU node + bookkeeping);
  /// er_cache_bytes = entries * kEntryBytes.
  static constexpr std::size_t kEntryBytes = 96;

 private:
  struct Key {
    std::uint64_t scope = 0;
    std::uint32_t tag = 0;  ///< (tier << 3) | (path << 1) | kind
    index_t p = 0;
    index_t q = 0;
    bool operator==(const Key& o) const {
      return scope == o.scope && tag == o.tag && p == o.p && q == o.q;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    real_t value = 0.0;
  };
  /// One lock stripe: an LRU list (front = most recent) plus the index
  /// into it. Sized so hot shards don't false-share their mutexes.
  struct Shard {
    mutable util::Mutex mutex;
    std::list<Entry> lru ER_GUARDED_BY(mutex);
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map
        ER_GUARDED_BY(mutex);
  };

  static std::uint32_t make_tag(Path path, QueryKind kind,
                                AccuracyTier tier) {
    return (static_cast<std::uint32_t>(tier) << 3) |
           (static_cast<std::uint32_t>(path) << 1) |
           static_cast<std::uint32_t>(kind);
  }
  Shard& shard_for(const Key& key);
  /// Drop every entry whose scope is not in `live` (sorted); counts into
  /// er_cache_invalidations_total.
  void sweep_dead_scopes(const std::vector<std::uint64_t>& live);

  const ResultCacheOptions opts_;
  std::size_t shard_cap_entries_ = 0;  ///< per-shard entry bound
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable util::Mutex scope_mutex_;
  /// Monotone scope id source — ids are never reused, so a swept scope
  /// can never resurrect (unlike raw artifact pointers, which the
  /// allocator may recycle).
  std::uint64_t next_scope_ ER_GUARDED_BY(scope_mutex_) = 1;
  /// (version, scopes) of the most recent registrations, oldest first,
  /// bounded by ResultCacheOptions::version_cap.
  std::vector<std::pair<std::uint64_t, ScopeViewPtr>> versions_
      ER_GUARDED_BY(scope_mutex_);

  obs::Counter* hits_total_;
  obs::Counter* misses_total_;
  obs::Counter* evictions_total_;
  obs::Counter* invalidations_total_;
  obs::Gauge* entries_gauge_;
  obs::Gauge* bytes_gauge_;
  obs::Histogram* hit_latency_;
};

using ResultCachePtr = std::shared_ptr<ResultCache>;

}  // namespace er
