/// \file
/// Immutable serving snapshot of a reduced model (DESIGN.md §4, §4.1).
///
/// A ModelSnapshot is built once from the reduction pipeline's artifacts
/// and then never mutated: every member is resident, read-only state
/// shared by any number of concurrent query threads. The sharded query
/// path is exact two-level domain decomposition on the stitched reduced
/// system G = L(reduced graph) + diag(shunts):
///
///   * per block: the Cholesky factor of its interior sub-system A_II and
///     the interior<->boundary coupling entries A_IB,
///   * globally: the Cholesky factor of the stitched boundary system
///     S = A_BB - sum_b A_BI (A_II)^-1 A_IB (interface Schur complement),
///   * plus a monolithic factor of the whole of G (the single-model
///     reference path) and an optional per-block EffResEngine for the
///     approximate block-local fast path.
///
/// A query touches only the owning block(s) of its endpoints and S, never
/// another block's factors.
///
/// The per-block state lives in BlockArtifact objects expressed entirely
/// in *block-local* indices and held through shared_ptr: successive
/// snapshots of an incrementally-updated model share the artifacts of
/// clean blocks (copy-on-write — see ModelSnapshot::rebuild and
/// DESIGN.md §4.1), so a publish after a k-block update refactors only
/// the k dirty blocks and the boundary system. The stitched model itself
/// follows the same rule: the snapshot aliases the producer's frozen
/// ModelPtr version (zero-copy publish) rather than owning a copy —
/// model_bytes_copied() is 0 on that path.
#pragma once

#include <memory>
#include <vector>

#include "chol/factor.hpp"
#include "effres/engine.hpp"
#include "reduction/pipeline.hpp"
#include "util/types.hpp"

namespace er {

class ThreadPool;

/// Knobs of the serving-layer ResultCache (serve/result_cache.hpp), the
/// sharded (version, block, node-pair)-keyed answer cache in front of the
/// query paths. Embedded in ServingOptions so one struct configures a
/// serving deployment end to end; nothing constructs a cache implicitly —
/// a deployment opts in by building a ResultCache from these knobs and
/// attaching it to its ModelStore (ModelStore::attach_cache).
struct ResultCacheOptions {
  // Per-route-mode enables: a batch consults/fills the cache only when its
  // RouteMode's flag is set. All answer paths are cache-safe (per-query
  // pure functions of the snapshot — DESIGN.md §4.2); the per-mode knobs
  // exist for A/B measurement and to shed cache memory on modes a
  // deployment never repeats queries on.
  bool cache_sharded = true;      ///< RouteMode::kSharded batches
  bool cache_monolithic = true;   ///< RouteMode::kMonolithic batches
  bool cache_local_approx = true; ///< RouteMode::kLocalApprox batches
  /// Lock stripes (rounded up to a power of two). More stripes = less
  /// contention between concurrent query chunks; each stripe owns an
  /// independent LRU list.
  std::size_t shards = 16;
  /// Whole-cache entry bound, split evenly across shards (per-shard LRU).
  std::size_t max_entries = std::size_t{1} << 18;
  /// Whole-cache resident-byte bound (entries are fixed-cost, so this is
  /// an alternative expression of max_entries; the tighter bound wins).
  std::size_t max_bytes = std::size_t{32} << 20;
  /// How many published versions stay resolvable at once. A snapshot
  /// pinned past the cap (or never registered) misses through and
  /// recomputes — never a wrong answer (DESIGN.md §4.2).
  std::size_t version_cap = 8;
};

/// Knobs for ModelSnapshot::build.
struct ServingOptions {
  /// Build a resident per-block EffResEngine (block-local approximate ER
  /// fast path; see QueryFrontEnd RouteMode::kLocalApprox).
  bool build_block_engines = true;
  /// Also factor the whole stitched system (RouteMode::kMonolithic — the
  /// single-model reference the sharded path is validated against).
  /// Production sharded serving can turn this off to roughly halve the
  /// snapshot build cost and resident memory; kMonolithic queries on such
  /// a snapshot throw. The monolithic factor is global state and is rebuilt
  /// by every publish, so churn-heavy serving should disable it.
  bool build_monolithic_factor = true;
  /// With a ModelStore attached, IncrementalReducer publishes updates as
  /// dirty-only snapshot rebuilds (ModelSnapshot::rebuild: clean blocks
  /// share the previous snapshot's artifacts). Disable to force a full
  /// rebuild per publish — the answers are bit-identical either way
  /// (DESIGN.md §4.1 determinism argument); this knob exists for A/B
  /// timing and as an escape hatch.
  bool incremental_publish = true;
  /// With a ModelStore attached, IncrementalReducer hands each snapshot the
  /// stitched model through shared ownership (ModelPtr): the snapshot
  /// aliases the reducer's frozen model version and a publish copies zero
  /// model bytes (DESIGN.md §4.1). Disable to force the legacy deep-copy
  /// publish (the snapshot owns a private model copy) — answers are
  /// bit-identical either way; the knob exists for A/B cost measurement.
  bool share_model = true;
  /// Backend of the per-block engines (kApproxChol or kExact; a
  /// kRandomProjection request falls back to kApproxChol, whose build cost
  /// profile fits resident serving state better than k PCG solves).
  ErBackend engine_backend = ErBackend::kApproxChol;
  /// Alg. 3 parameters of the per-block engines.
  real_t engine_droptol = 1e-3;
  real_t engine_epsilon = 1e-3;
  /// Result-cache configuration (serve/result_cache.hpp). Only consulted
  /// by the deployment code that constructs the cache — ModelSnapshot
  /// itself never touches it.
  ResultCacheOptions cache;
};

/// Resident serving state of one partition block, expressed entirely in
/// block-local indices so it never references another block or a global
/// (snapshot-wide) numbering. This is what makes the artifact *shareable*:
/// a block untouched by an incremental update contributes bit-identical
/// local state to the next snapshot, so ModelSnapshot::rebuild aliases the
/// previous snapshot's shared_ptr instead of refactoring (DESIGN.md §4.1).
///
/// Index conventions: a *local id* is the block's merged node id (position
/// m in ReducedModel::block_kept[b]); an *interior slot* indexes
/// interior_locals; a *boundary slot* indexes boundary_locals.
struct BlockArtifact {
  /// A_IB entry: interior node (interior slot) coupled to one of the
  /// block's own boundary nodes (boundary slot) by an edge of weight
  /// `weight` (the matrix entry is -weight).
  struct Coupling {
    index_t interior = 0;  ///< interior slot of the interior endpoint
    index_t boundary = 0;  ///< boundary slot of the boundary endpoint
    real_t weight = 0.0;   ///< edge conductance
  };
  /// One triplet of this block's interface-Schur correction
  /// -A_BI (A_II)^-1 A_IB, in boundary slots.
  struct Correction {
    index_t row = 0;     ///< boundary slot (row)
    index_t col = 0;     ///< boundary slot (column)
    real_t value = 0.0;  ///< correction value (added into S)
  };
  /// Intra-block edge between two of the block's boundary nodes — part of
  /// A_BB, assembled into S by the snapshot.
  struct BoundaryEdge {
    index_t u = 0;       ///< boundary slot of one endpoint
    index_t v = 0;       ///< boundary slot of the other endpoint
    real_t weight = 0.0; ///< edge conductance
  };

  std::vector<index_t> interior_locals;  ///< interior slot -> local id
  std::vector<index_t> boundary_locals;  ///< boundary slot -> local id
  /// Local id -> weighted degree over the block's *own* edges (cut-edge
  /// weights are global state and are added by the snapshot's S assembly).
  std::vector<real_t> intra_wdeg;
  CholFactor factor;  ///< Cholesky of A_II (n == 0 if no interior)
  std::vector<Coupling> couplings;
  std::vector<Correction> corrections;
  std::vector<BoundaryEdge> boundary_edges;
  std::unique_ptr<EffResEngine> engine;  ///< block-local ER (may be null)
};

/// Read-only serving state for one published model version. Every method is
/// const and thread-safe; per-query scratch lives in a caller-owned
/// Workspace so concurrent callers never share mutable state.
class ModelSnapshot {
 public:
  /// Per-caller scratch for the solve paths. Reuse one instance across the
  /// queries of a chunk; never share one across threads.
  struct Workspace {
    std::vector<real_t> boundary_rhs;     ///< |boundary| right-hand side
    std::vector<real_t> block_rhs;        ///< interior rhs of the active block
    std::vector<real_t> block_solution;   ///< most recent block solve result
    std::vector<real_t> mono_rhs;         ///< monolithic-path rhs
  };

  /// Build a snapshot that *aliases* a frozen stitched model version
  /// (`blocks` indexed like model->block_kept): the zero-copy path — no
  /// model bytes are copied, the snapshot just pins `model`. The model must
  /// never be mutated after this call (the pipeline's ModelPtr producers
  /// guarantee that by construction). `pool` (optional) parallelizes the
  /// per-block factor/engine construction; the snapshot contents are
  /// identical at any thread count (per-block slot writes, S assembled
  /// serially in block order). Throws std::runtime_error if the stitched
  /// system is not SPD (a connected component without any shunt).
  static std::shared_ptr<const ModelSnapshot> build(
      const std::vector<BlockReduced>& blocks, ModelPtr model,
      const ServingOptions& opts = {}, ThreadPool* pool = nullptr,
      std::uint64_t version = 0);

  /// Deep-copy overload: the snapshot owns a private copy of `model`
  /// (model_bytes_copied() reports its size). Kept for callers whose model
  /// is a mutable local — the shared-ownership overload above is the
  /// serving path.
  static std::shared_ptr<const ModelSnapshot> build(
      const std::vector<BlockReduced>& blocks, const ReducedModel& model,
      const ServingOptions& opts = {}, ThreadPool* pool = nullptr,
      std::uint64_t version = 0);

  /// Convenience overload over the whole artifacts bundle (aliases
  /// artifacts.model — zero-copy).
  static std::shared_ptr<const ModelSnapshot> build(
      const ReductionArtifacts& artifacts, const ServingOptions& opts = {},
      ThreadPool* pool = nullptr, std::uint64_t version = 0);

  /// Dirty-only rebuild: construct the snapshot of the updated model while
  /// *reusing* (aliasing) the previous snapshot's BlockArtifact of every
  /// block not listed in `dirty_blocks` — only the dirty blocks and the
  /// interface-Schur boundary factor (plus the monolithic factor, when
  /// enabled) are refactored. Serving options are inherited from
  /// `previous` so the shared artifacts stay homogeneous.
  ///
  /// Caller contract (same as IncrementalReducer::update): `blocks`/`model`
  /// must differ from the inputs of `previous` only in the listed dirty
  /// blocks. The result is then bit-identical to a full build(blocks,
  /// model, ...) — see DESIGN.md §4.1 for the argument. A block whose
  /// interior/boundary classification changed is rebuilt even when not
  /// listed dirty (defensive; classification of clean blocks is invariant
  /// under the update contract).
  static std::shared_ptr<const ModelSnapshot> rebuild(
      const ModelSnapshot& previous, const std::vector<BlockReduced>& blocks,
      ModelPtr model, const std::vector<index_t>& dirty_blocks,
      ThreadPool* pool = nullptr, std::uint64_t version = 0);

  /// Deep-copy rebuild overload (see the build deep-copy overload).
  static std::shared_ptr<const ModelSnapshot> rebuild(
      const ModelSnapshot& previous, const std::vector<BlockReduced>& blocks,
      const ReducedModel& model, const std::vector<index_t>& dirty_blocks,
      ThreadPool* pool = nullptr, std::uint64_t version = 0);

  /// The stitched model the answers refer to.
  [[nodiscard]] const ReducedModel& model() const { return *model_; }

  /// Shared handle of the stitched model — the same object the producer
  /// froze when this snapshot was built zero-copy (&*shared_model() ==
  /// &model()); holding it pins the model version beyond the snapshot.
  [[nodiscard]] ModelPtr shared_model() const { return model_; }

  /// Publisher-assigned version (IncrementalReducer: its revision count).
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// The options this snapshot was built with (rebuild inherits them).
  [[nodiscard]] const ServingOptions& options() const { return opts_; }

  [[nodiscard]] index_t num_blocks() const {
    return static_cast<index_t>(blocks_.size());
  }
  /// Reduced nodes incident to an inter-block edge (size of S).
  [[nodiscard]] index_t num_boundary_nodes() const {
    return static_cast<index_t>(boundary_nodes_.size());
  }
  [[nodiscard]] double build_seconds() const { return build_seconds_; }

  /// Blocks whose artifact was aliased from the previous snapshot (always 0
  /// for a full build).
  [[nodiscard]] index_t reused_blocks() const { return reused_blocks_; }
  /// Blocks whose artifact was (re)factored by this build.
  [[nodiscard]] index_t rebuilt_blocks() const {
    return num_blocks() - reused_blocks_;
  }

  // Publish-cost accounting (DESIGN.md §4.1): what this build materialized
  // vs. aliased. The churn bench reports these per publish.

  /// Bytes of stitched-model state this snapshot deep-copied: 0 on the
  /// shared-ownership (zero-copy) path, model_footprint_bytes(model()) on
  /// the deep-copy path.
  [[nodiscard]] std::size_t model_bytes_copied() const {
    return model_bytes_copied_;
  }
  /// Bytes of new serving state this build created: rebuilt BlockArtifacts
  /// (aliased ones count 0) + the boundary factor + the monolithic factor
  /// when enabled + any model copy. This is the per-publish cost that
  /// scales with the dirty set once the model is shared. Resident engines
  /// are opaque (no footprint API) and excluded.
  [[nodiscard]] std::size_t bytes_materialized() const {
    return bytes_materialized_;
  }

  /// Original node id -> reduced id, or -1 if the node was eliminated (or
  /// out of range).
  [[nodiscard]] index_t reduced_id(index_t original) const;

  /// Partition block owning a reduced node.
  [[nodiscard]] index_t block_of_reduced(index_t reduced) const {
    return block_of_reduced_[static_cast<std::size_t>(reduced)];
  }
  /// True when the reduced node is part of the stitched boundary system.
  [[nodiscard]] bool is_boundary(index_t reduced) const {
    return boundary_index_[static_cast<std::size_t>(reduced)] >= 0;
  }

  /// Resident block-local ER engine, or null when the block has none
  /// (engines disabled, or the block is empty / edgeless).
  [[nodiscard]] const EffResEngine* block_engine(index_t block) const {
    return blocks_[static_cast<std::size_t>(block)].artifact->engine.get();
  }
  /// Reduced id -> local node id inside its block's engine graph.
  [[nodiscard]] index_t block_local_id(index_t reduced) const {
    return block_local_[static_cast<std::size_t>(reduced)];
  }

  /// Identity of a block's resident artifact — the copy-on-write unit.
  /// Two snapshots returning the same pointer for block b share that
  /// block's *entire* local state (interior factor, couplings, resident
  /// engine, local numbering), which is what lets the ResultCache's
  /// publish hook carry clean-block entries across versions by pointer
  /// comparison (DESIGN.md §4.2). Valid only while the snapshot is alive.
  [[nodiscard]] const BlockArtifact* block_artifact(index_t block) const {
    return blocks_[static_cast<std::size_t>(block)].artifact.get();
  }

  // Sharded (domain-decomposition) query path — reduced node ids.

  /// Port response Z(p, q) = e_q^T G^{-1} e_p: voltage-drop response at q
  /// to a unit current injected at p.
  [[nodiscard]] real_t response(index_t p, index_t q, Workspace& ws) const;
  /// Effective resistance (e_p - e_q)^T G^{-1} (e_p - e_q) of the stitched
  /// system (shunts included — the pad-grounded impedance, not the
  /// shunt-free graph ER).
  [[nodiscard]] real_t resistance(index_t p, index_t q, Workspace& ws) const;

  // Monolithic reference path (one factor of the whole stitched system).
  // Throws std::logic_error when the snapshot was built with
  // ServingOptions::build_monolithic_factor = false.

  [[nodiscard]] bool has_monolithic_factor() const {
    return has_monolithic_factor_;
  }
  [[nodiscard]] real_t response_monolithic(index_t p, index_t q,
                                           Workspace& ws) const;
  [[nodiscard]] real_t resistance_monolithic(index_t p, index_t q,
                                             Workspace& ws) const;

 private:
  ModelSnapshot() = default;

  /// Per-snapshot view of one block: the (possibly shared) local artifact
  /// plus this snapshot's translation of the block's boundary slots into
  /// global boundary indices (cheap integer state, rebuilt per snapshot).
  struct BlockSystem {
    std::shared_ptr<const BlockArtifact> artifact;
    std::vector<index_t> boundary_global;  ///< boundary slot -> global idx
  };

  /// Shared implementation of build/rebuild: `previous`/`clean` select
  /// artifact reuse (both null for a full build; clean[b] != 0 marks a
  /// block whose previous artifact may be aliased). `model_bytes_copied`
  /// records how the model handle was produced (0 = aliased).
  static std::shared_ptr<const ModelSnapshot> build_impl(
      const std::vector<BlockReduced>& blocks, ModelPtr model,
      const ServingOptions& opts, ThreadPool* pool, std::uint64_t version,
      const ModelSnapshot* previous, const std::vector<char>* clean,
      std::size_t model_bytes_copied);

  /// Solve G x = rhs (rhs has nrhs sparse entries) and write x at the
  /// `ntargets` target reduced nodes. The domain-decomposition driver
  /// behind response/resistance.
  void solve_sparse(const index_t* rhs_nodes, const real_t* rhs_values,
                    int nrhs, const index_t* targets, real_t* out,
                    int ntargets, Workspace& ws) const;

  ModelPtr model_;
  std::uint64_t version_ = 0;
  ServingOptions opts_;
  double build_seconds_ = 0.0;
  index_t reused_blocks_ = 0;
  std::size_t model_bytes_copied_ = 0;
  std::size_t bytes_materialized_ = 0;

  std::vector<index_t> block_of_reduced_;  // reduced -> block
  std::vector<index_t> boundary_index_;    // reduced -> boundary idx or -1
  std::vector<index_t> interior_index_;    // reduced -> interior idx or -1
  std::vector<index_t> block_local_;       // reduced -> engine-local id
  std::vector<index_t> boundary_nodes_;    // boundary idx -> reduced id
  std::vector<BlockSystem> blocks_;
  CholFactor boundary_factor_;  // S (n == 0 when there is no boundary)
  CholFactor global_factor_;    // monolithic factor of G
  bool has_monolithic_factor_ = false;
};

}  // namespace er
