/// \file
/// Immutable serving snapshot of a reduced model (DESIGN.md §4).
///
/// A ModelSnapshot is built once from the reduction pipeline's artifacts
/// and then never mutated: every member is resident, read-only state
/// shared by any number of concurrent query threads. The sharded query
/// path is exact two-level domain decomposition on the stitched reduced
/// system G = L(reduced graph) + diag(shunts):
///
///   * per block: the Cholesky factor of its interior sub-system A_II and
///     the interior<->boundary coupling entries A_IB,
///   * globally: the Cholesky factor of the stitched boundary system
///     S = A_BB - sum_b A_BI (A_II)^-1 A_IB (interface Schur complement),
///   * plus a monolithic factor of the whole of G (the single-model
///     reference path) and an optional per-block EffResEngine for the
///     approximate block-local fast path.
///
/// A query touches only the owning block(s) of its endpoints and S, never
/// another block's factors.
#pragma once

#include <memory>
#include <vector>

#include "chol/factor.hpp"
#include "effres/engine.hpp"
#include "reduction/pipeline.hpp"
#include "util/types.hpp"

namespace er {

class ThreadPool;

/// Knobs for ModelSnapshot::build.
struct ServingOptions {
  /// Build a resident per-block EffResEngine (block-local approximate ER
  /// fast path; see QueryFrontEnd RouteMode::kLocalApprox).
  bool build_block_engines = true;
  /// Also factor the whole stitched system (RouteMode::kMonolithic — the
  /// single-model reference the sharded path is validated against).
  /// Production sharded serving can turn this off to roughly halve the
  /// snapshot build cost and resident memory; kMonolithic queries on such
  /// a snapshot throw.
  bool build_monolithic_factor = true;
  /// Backend of the per-block engines (kApproxChol or kExact; a
  /// kRandomProjection request falls back to kApproxChol, whose build cost
  /// profile fits resident serving state better than k PCG solves).
  ErBackend engine_backend = ErBackend::kApproxChol;
  /// Alg. 3 parameters of the per-block engines.
  real_t engine_droptol = 1e-3;
  real_t engine_epsilon = 1e-3;
};

/// Read-only serving state for one published model version. Every method is
/// const and thread-safe; per-query scratch lives in a caller-owned
/// Workspace so concurrent callers never share mutable state.
class ModelSnapshot {
 public:
  /// Per-caller scratch for the solve paths. Reuse one instance across the
  /// queries of a chunk; never share one across threads.
  struct Workspace {
    std::vector<real_t> boundary_rhs;     ///< |boundary| right-hand side
    std::vector<real_t> block_rhs;        ///< interior rhs of the active block
    std::vector<real_t> block_solution;   ///< most recent block solve result
    std::vector<real_t> mono_rhs;         ///< monolithic-path rhs
  };

  /// Build a snapshot from the per-block reductions and the stitched model
  /// (`blocks` indexed like model.block_kept). `pool` (optional)
  /// parallelizes the per-block factor/engine construction; the snapshot
  /// contents are identical at any thread count (per-block slot writes, S
  /// assembled serially in block order). Throws std::runtime_error if the
  /// stitched system is not SPD (a connected component without any shunt).
  static std::shared_ptr<const ModelSnapshot> build(
      const std::vector<BlockReduced>& blocks, const ReducedModel& model,
      const ServingOptions& opts = {}, ThreadPool* pool = nullptr,
      std::uint64_t version = 0);

  /// Convenience overload over the whole artifacts bundle.
  static std::shared_ptr<const ModelSnapshot> build(
      const ReductionArtifacts& artifacts, const ServingOptions& opts = {},
      ThreadPool* pool = nullptr, std::uint64_t version = 0);

  /// The stitched model the answers refer to.
  [[nodiscard]] const ReducedModel& model() const { return model_; }

  /// Publisher-assigned version (IncrementalReducer: its revision count).
  [[nodiscard]] std::uint64_t version() const { return version_; }

  [[nodiscard]] index_t num_blocks() const {
    return static_cast<index_t>(blocks_.size());
  }
  /// Reduced nodes incident to an inter-block edge (size of S).
  [[nodiscard]] index_t num_boundary_nodes() const {
    return static_cast<index_t>(boundary_nodes_.size());
  }
  [[nodiscard]] double build_seconds() const { return build_seconds_; }

  /// Original node id -> reduced id, or -1 if the node was eliminated (or
  /// out of range).
  [[nodiscard]] index_t reduced_id(index_t original) const;

  /// Partition block owning a reduced node.
  [[nodiscard]] index_t block_of_reduced(index_t reduced) const {
    return block_of_reduced_[static_cast<std::size_t>(reduced)];
  }
  /// True when the reduced node is part of the stitched boundary system.
  [[nodiscard]] bool is_boundary(index_t reduced) const {
    return boundary_index_[static_cast<std::size_t>(reduced)] >= 0;
  }

  /// Resident block-local ER engine, or null when the block has none
  /// (engines disabled, or the block is empty / edgeless).
  [[nodiscard]] const EffResEngine* block_engine(index_t block) const {
    return blocks_[static_cast<std::size_t>(block)].engine.get();
  }
  /// Reduced id -> local node id inside its block's engine graph.
  [[nodiscard]] index_t block_local_id(index_t reduced) const {
    return block_local_[static_cast<std::size_t>(reduced)];
  }

  // Sharded (domain-decomposition) query path — reduced node ids.

  /// Port response Z(p, q) = e_q^T G^{-1} e_p: voltage-drop response at q
  /// to a unit current injected at p.
  [[nodiscard]] real_t response(index_t p, index_t q, Workspace& ws) const;
  /// Effective resistance (e_p - e_q)^T G^{-1} (e_p - e_q) of the stitched
  /// system (shunts included — the pad-grounded impedance, not the
  /// shunt-free graph ER).
  [[nodiscard]] real_t resistance(index_t p, index_t q, Workspace& ws) const;

  // Monolithic reference path (one factor of the whole stitched system).
  // Throws std::logic_error when the snapshot was built with
  // ServingOptions::build_monolithic_factor = false.

  [[nodiscard]] bool has_monolithic_factor() const {
    return has_monolithic_factor_;
  }
  [[nodiscard]] real_t response_monolithic(index_t p, index_t q,
                                           Workspace& ws) const;
  [[nodiscard]] real_t resistance_monolithic(index_t p, index_t q,
                                             Workspace& ws) const;

 private:
  ModelSnapshot() = default;

  /// A_IB entry: interior node (block-local index) coupled to a boundary
  /// node (global boundary index) by an edge of weight `weight` (the matrix
  /// entry is -weight).
  struct Coupling {
    index_t interior = 0;
    index_t boundary = 0;
    real_t weight = 0.0;
  };

  /// Resident per-block state.
  struct BlockSystem {
    std::vector<index_t> interior;  ///< interior local id -> reduced id
    CholFactor factor;              ///< Cholesky of A_II (n == 0 if none)
    std::vector<Coupling> couplings;
    std::unique_ptr<EffResEngine> engine;  ///< block-local ER (may be null)
  };

  /// Solve G x = rhs (rhs has nrhs sparse entries) and write x at the
  /// `ntargets` target reduced nodes. The domain-decomposition driver
  /// behind response/resistance.
  void solve_sparse(const index_t* rhs_nodes, const real_t* rhs_values,
                    int nrhs, const index_t* targets, real_t* out,
                    int ntargets, Workspace& ws) const;

  ReducedModel model_;
  std::uint64_t version_ = 0;
  double build_seconds_ = 0.0;

  std::vector<index_t> block_of_reduced_;  // reduced -> block
  std::vector<index_t> boundary_index_;    // reduced -> boundary idx or -1
  std::vector<index_t> interior_index_;    // reduced -> interior idx or -1
  std::vector<index_t> block_local_;       // reduced -> engine-local id
  std::vector<index_t> boundary_nodes_;    // boundary idx -> reduced id
  std::vector<BlockSystem> blocks_;
  CholFactor boundary_factor_;  // S (n == 0 when there is no boundary)
  CholFactor global_factor_;    // monolithic factor of G
  bool has_monolithic_factor_ = false;
};

}  // namespace er
