#include "serve/snapshot.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "chol/cholesky.hpp"
#include "effres/approx_chol.hpp"
#include "effres/exact.hpp"
#include "parallel/thread_pool.hpp"
#include "sparse/coo.hpp"
#include "util/timer.hpp"

namespace er {

namespace {

std::unique_ptr<EffResEngine> make_block_engine(const Graph& g,
                                                const ServingOptions& opts) {
  if (g.num_nodes() < 2 || g.num_edges() == 0) return nullptr;
  // A block whose local system resists factorization (e.g. pathological
  // weights) must not take the whole snapshot down: the exact sharded path
  // still serves its queries, so the fast path just stays unavailable.
  try {
    if (opts.engine_backend == ErBackend::kExact)
      return std::make_unique<ExactEffRes>(g);
    ApproxCholOptions ac;
    ac.droptol = opts.engine_droptol;
    ac.epsilon = opts.engine_epsilon;
    return std::make_unique<ApproxCholEffRes>(g, ac);
  } catch (const std::exception&) {
    return nullptr;
  }
}

/// Factor one block into its local artifact. Pure function of the block's
/// own reduction output and its local interior/boundary classification —
/// never of global (snapshot-wide) numbering — so the result is
/// bit-identical however the surrounding blocks changed, which is what
/// lets ModelSnapshot::rebuild alias artifacts of clean blocks.
std::shared_ptr<const BlockArtifact> build_block_artifact(
    const BlockReduced& blk, std::vector<index_t> interior_locals,
    std::vector<index_t> boundary_locals, const ServingOptions& opts) {
  auto art = std::make_shared<BlockArtifact>();
  art->interior_locals = std::move(interior_locals);
  art->boundary_locals = std::move(boundary_locals);
  const index_t nloc = blk.merged_count;
  const auto ni = static_cast<index_t>(art->interior_locals.size());

  // local id -> interior / boundary slot.
  std::vector<index_t> islot(static_cast<std::size_t>(nloc), -1);
  std::vector<index_t> bslot(static_cast<std::size_t>(nloc), -1);
  for (std::size_t s = 0; s < art->interior_locals.size(); ++s)
    islot[static_cast<std::size_t>(art->interior_locals[s])] =
        static_cast<index_t>(s);
  for (std::size_t s = 0; s < art->boundary_locals.size(); ++s)
    bslot[static_cast<std::size_t>(art->boundary_locals[s])] =
        static_cast<index_t>(s);

  art->intra_wdeg.assign(static_cast<std::size_t>(nloc), 0.0);
  for (const Edge& e : blk.sparse_graph.edges()) {
    art->intra_wdeg[static_cast<std::size_t>(e.u)] += e.weight;
    art->intra_wdeg[static_cast<std::size_t>(e.v)] += e.weight;
  }

  if (opts.build_block_engines)
    art->engine = make_block_engine(blk.sparse_graph, opts);

  // Classify the block's edges: interior-interior entries go into A_II,
  // interior-boundary edges become A_IB couplings, boundary-boundary edges
  // are A_BB entries the snapshot assembles into S.
  TripletMatrix t(ni, ni);
  for (index_t l = 0; l < ni; ++l) {
    const index_t g = art->interior_locals[static_cast<std::size_t>(l)];
    t.add(l, l,
          art->intra_wdeg[static_cast<std::size_t>(g)] +
              blk.shunts[static_cast<std::size_t>(g)]);
  }
  for (const Edge& e : blk.sparse_graph.edges()) {
    const index_t iu = islot[static_cast<std::size_t>(e.u)];
    const index_t iv = islot[static_cast<std::size_t>(e.v)];
    if (iu >= 0 && iv >= 0) {
      t.add_symmetric(iu, iv, -e.weight);
    } else if (iu >= 0) {
      art->couplings.push_back({iu, bslot[static_cast<std::size_t>(e.v)],
                                e.weight});
    } else if (iv >= 0) {
      art->couplings.push_back({iv, bslot[static_cast<std::size_t>(e.u)],
                                e.weight});
    } else {
      art->boundary_edges.push_back({bslot[static_cast<std::size_t>(e.u)],
                                     bslot[static_cast<std::size_t>(e.v)],
                                     e.weight});
    }
  }
  if (ni == 0) return art;
  art->factor = cholesky(CscMatrix::from_triplets(t));

  // This block's contribution to the interface Schur complement:
  // -A_BI (A_II)^-1 A_IB over the boundary slots it couples to. The
  // couplings are bucketed by boundary slot once, so assembling the
  // |coupled| x |coupled| correction touches each coupling entry once per
  // column/row instead of rescanning the whole list.
  std::vector<index_t> coupled;
  for (const BlockArtifact::Coupling& c : art->couplings)
    coupled.push_back(c.boundary);
  std::sort(coupled.begin(), coupled.end());
  coupled.erase(std::unique(coupled.begin(), coupled.end()), coupled.end());
  std::vector<std::vector<std::pair<index_t, real_t>>> by_boundary(
      coupled.size());
  for (const BlockArtifact::Coupling& c : art->couplings) {
    const auto lj = static_cast<std::size_t>(
        std::lower_bound(coupled.begin(), coupled.end(), c.boundary) -
        coupled.begin());
    by_boundary[lj].emplace_back(c.interior, c.weight);
  }
  std::vector<real_t> col(static_cast<std::size_t>(ni), 0.0);
  for (std::size_t lj = 0; lj < coupled.size(); ++lj) {
    std::fill(col.begin(), col.end(), 0.0);
    for (const auto& [i, w] : by_boundary[lj])
      col[static_cast<std::size_t>(i)] -= w;
    const std::vector<real_t> y = art->factor.solve(col);
    for (std::size_t lk = 0; lk < coupled.size(); ++lk) {
      real_t val = 0.0;
      for (const auto& [i, w] : by_boundary[lk])
        val += w * y[static_cast<std::size_t>(i)];
      if (val != 0.0)
        art->corrections.push_back({coupled[lk], coupled[lj], val});
    }
  }
  return art;
}

/// Validated clean-block mask of a dirty-only rebuild: clean[b] == 0 for
/// the listed dirty blocks. Shared by both rebuild overloads so the two
/// publish paths cannot diverge on dirty-set validation.
std::vector<char> clean_mask(index_t nb,
                             const std::vector<index_t>& dirty_blocks) {
  std::vector<char> clean(static_cast<std::size_t>(nb), 1);
  for (index_t b : dirty_blocks) {
    if (b < 0 || b >= nb)
      throw std::out_of_range("ModelSnapshot::rebuild: bad block id");
    clean[static_cast<std::size_t>(b)] = 0;
  }
  return clean;
}

/// Approximate resident bytes of one block's serving state (factor + the
/// coupling/correction/classification arrays). Engines are opaque and
/// excluded — see ModelSnapshot::bytes_materialized().
std::size_t artifact_footprint_bytes(const BlockArtifact& a) {
  return (a.interior_locals.size() + a.boundary_locals.size()) *
             sizeof(index_t) +
         a.intra_wdeg.size() * sizeof(real_t) + a.factor.footprint_bytes() +
         a.couplings.size() * sizeof(BlockArtifact::Coupling) +
         a.corrections.size() * sizeof(BlockArtifact::Correction) +
         a.boundary_edges.size() * sizeof(BlockArtifact::BoundaryEdge);
}

}  // namespace

std::shared_ptr<const ModelSnapshot> ModelSnapshot::build(
    const ReductionArtifacts& artifacts, const ServingOptions& opts,
    ThreadPool* pool, std::uint64_t version) {
  return build(artifacts.blocks, artifacts.model, opts, pool, version);
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::build(
    const std::vector<BlockReduced>& reduced_blocks, ModelPtr input_model,
    const ServingOptions& opts, ThreadPool* pool, std::uint64_t version) {
  if (!input_model)
    throw std::invalid_argument("ModelSnapshot::build: null model");
  return build_impl(reduced_blocks, std::move(input_model), opts, pool,
                    version, nullptr, nullptr, /*model_bytes_copied=*/0);
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::build(
    const std::vector<BlockReduced>& reduced_blocks,
    const ReducedModel& input_model, const ServingOptions& opts,
    ThreadPool* pool, std::uint64_t version) {
  // Deep-copy path: freeze a private copy so the caller may keep mutating
  // its model. The copy is the O(nodes + edges) per-publish cost the
  // shared-ownership overload exists to avoid.
  return build_impl(reduced_blocks,
                    std::make_shared<const ReducedModel>(input_model), opts,
                    pool, version, nullptr, nullptr,
                    model_footprint_bytes(input_model));
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::rebuild(
    const ModelSnapshot& previous,
    const std::vector<BlockReduced>& reduced_blocks, ModelPtr input_model,
    const std::vector<index_t>& dirty_blocks, ThreadPool* pool,
    std::uint64_t version) {
  if (!input_model)
    throw std::invalid_argument("ModelSnapshot::rebuild: null model");
  const auto nb = static_cast<index_t>(input_model->block_kept.size());
  const std::vector<char> clean = clean_mask(nb, dirty_blocks);
  // A previous snapshot with a different block count cannot seed a reuse
  // (the partition changed under us); fall back to a full build.
  const ModelSnapshot* prev =
      previous.num_blocks() == nb ? &previous : nullptr;
  return build_impl(reduced_blocks, std::move(input_model),
                    previous.options(), pool, version, prev,
                    prev ? &clean : nullptr, /*model_bytes_copied=*/0);
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::rebuild(
    const ModelSnapshot& previous,
    const std::vector<BlockReduced>& reduced_blocks,
    const ReducedModel& input_model,
    const std::vector<index_t>& dirty_blocks, ThreadPool* pool,
    std::uint64_t version) {
  auto copy = std::make_shared<const ReducedModel>(input_model);
  const auto nb = static_cast<index_t>(copy->block_kept.size());
  const std::vector<char> clean = clean_mask(nb, dirty_blocks);
  const ModelSnapshot* prev =
      previous.num_blocks() == nb ? &previous : nullptr;
  return build_impl(reduced_blocks, std::move(copy), previous.options(),
                    pool, version, prev, prev ? &clean : nullptr,
                    model_footprint_bytes(input_model));
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::build_impl(
    const std::vector<BlockReduced>& reduced_blocks, ModelPtr input_model,
    const ServingOptions& opts, ThreadPool* pool, std::uint64_t version,
    const ModelSnapshot* previous, const std::vector<char>* clean,
    std::size_t model_bytes_copied) {
  Timer timer;
  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  // Alias the frozen model version: the producer (reduce_network_artifacts
  // / IncrementalReducer) builds each version into a fresh allocation and
  // never mutates it afterwards, so the snapshot pins it instead of
  // copying O(nodes + edges) state per publish (DESIGN.md §4.1). The
  // deep-copy overloads pass a private copy here and account for it in
  // model_bytes_copied.
  snap->model_ = std::move(input_model);
  snap->version_ = version;
  snap->opts_ = opts;
  snap->model_bytes_copied_ = model_bytes_copied;
  const ReducedModel& model = *snap->model_;
  const Graph& rg = model.network.graph;
  const index_t n = rg.num_nodes();
  const auto nb_blocks = static_cast<index_t>(model.block_kept.size());

  // Reduced node -> owning block and engine-local id (block_kept[b][m] is
  // the reduced id of the block's m-th merged node, matching the node ids
  // of BlockReduced::sparse_graph).
  snap->block_of_reduced_.assign(static_cast<std::size_t>(n), -1);
  snap->block_local_.assign(static_cast<std::size_t>(n), -1);
  for (index_t b = 0; b < nb_blocks; ++b) {
    const auto& kept = model.block_kept[static_cast<std::size_t>(b)];
    for (std::size_t m = 0; m < kept.size(); ++m) {
      snap->block_of_reduced_[static_cast<std::size_t>(kept[m])] = b;
      snap->block_local_[static_cast<std::size_t>(kept[m])] =
          static_cast<index_t>(m);
    }
  }

  // Boundary = reduced nodes incident to an inter-block edge; everything
  // else is interior to its block. Cut (inter-block) edges are collected
  // here: their weights are global state that feeds the S diagonal and
  // off-diagonals below, never a block artifact.
  std::vector<char> boundary_flag(static_cast<std::size_t>(n), 0);
  std::vector<Edge> cut_edges;
  for (const Edge& e : rg.edges()) {
    if (snap->block_of_reduced_[static_cast<std::size_t>(e.u)] !=
        snap->block_of_reduced_[static_cast<std::size_t>(e.v)]) {
      boundary_flag[static_cast<std::size_t>(e.u)] = 1;
      boundary_flag[static_cast<std::size_t>(e.v)] = 1;
      cut_edges.push_back(e);
    }
  }
  snap->boundary_index_.assign(static_cast<std::size_t>(n), -1);
  snap->interior_index_.assign(static_cast<std::size_t>(n), -1);
  for (index_t v = 0; v < n; ++v)
    if (boundary_flag[static_cast<std::size_t>(v)]) {
      snap->boundary_index_[static_cast<std::size_t>(v)] =
          static_cast<index_t>(snap->boundary_nodes_.size());
      snap->boundary_nodes_.push_back(v);
    }

  // Per-block local classification (interior/boundary slots in ascending
  // local-id order — the same order global reduced ids follow inside a
  // block, so slot enumeration is stable across snapshots).
  std::vector<std::vector<index_t>> interior_locals(
      static_cast<std::size_t>(nb_blocks));
  std::vector<std::vector<index_t>> boundary_locals(
      static_cast<std::size_t>(nb_blocks));
  for (index_t b = 0; b < nb_blocks; ++b) {
    const auto& kept = model.block_kept[static_cast<std::size_t>(b)];
    for (std::size_t m = 0; m < kept.size(); ++m) {
      if (boundary_flag[static_cast<std::size_t>(kept[m])])
        boundary_locals[static_cast<std::size_t>(b)].push_back(
            static_cast<index_t>(m));
      else
        interior_locals[static_cast<std::size_t>(b)].push_back(
            static_cast<index_t>(m));
    }
  }

  // Per-block artifacts: reuse (alias) the previous snapshot's artifact
  // for clean blocks whose classification is unchanged, build the rest in
  // parallel into disjoint slots — identical at any thread count. The
  // classification check is defensive: under the rebuild contract a clean
  // block's interior/boundary split cannot change (its kept set and its
  // incident cut edges are untouched), so a mismatch means the caller's
  // dirty set was wrong and the block is refactored from scratch.
  snap->blocks_.resize(static_cast<std::size_t>(nb_blocks));
  std::vector<char> aliased(static_cast<std::size_t>(nb_blocks), 0);
  index_t reused = 0;
  for (index_t b = 0; b < nb_blocks; ++b) {
    if (!previous || !clean || !(*clean)[static_cast<std::size_t>(b)])
      continue;
    const auto& prev_art =
        previous->blocks_[static_cast<std::size_t>(b)].artifact;
    if (prev_art &&
        prev_art->interior_locals ==
            interior_locals[static_cast<std::size_t>(b)] &&
        prev_art->boundary_locals ==
            boundary_locals[static_cast<std::size_t>(b)]) {
      snap->blocks_[static_cast<std::size_t>(b)].artifact = prev_art;
      aliased[static_cast<std::size_t>(b)] = 1;
      ++reused;
    }
  }
  snap->reused_blocks_ = reused;
  parallel_for(pool, 0, nb_blocks, 1, [&](index_t lo, index_t hi) {
    for (index_t b = lo; b < hi; ++b) {
      BlockSystem& bs = snap->blocks_[static_cast<std::size_t>(b)];
      if (!bs.artifact)
        bs.artifact = build_block_artifact(
            reduced_blocks[static_cast<std::size_t>(b)],
            std::move(interior_locals[static_cast<std::size_t>(b)]),
            std::move(boundary_locals[static_cast<std::size_t>(b)]), opts);
    }
  });

  // Per-snapshot translation tables: interior slots into the global
  // interior index map, boundary slots into global boundary indices.
  for (index_t b = 0; b < nb_blocks; ++b) {
    BlockSystem& bs = snap->blocks_[static_cast<std::size_t>(b)];
    const auto& kept = model.block_kept[static_cast<std::size_t>(b)];
    for (std::size_t s = 0; s < bs.artifact->interior_locals.size(); ++s)
      snap->interior_index_[static_cast<std::size_t>(
          kept[static_cast<std::size_t>(
              bs.artifact->interior_locals[s])])] = static_cast<index_t>(s);
    bs.boundary_global.reserve(bs.artifact->boundary_locals.size());
    for (const index_t l : bs.artifact->boundary_locals)
      bs.boundary_global.push_back(
          snap->boundary_index_[static_cast<std::size_t>(
              kept[static_cast<std::size_t>(l)])]);
  }

  // Stitched boundary system S = A_BB + per-block corrections, assembled
  // serially in fixed order: diagonals in boundary order (intra-block
  // weighted degree + shunt, then cut-edge weights in model edge order),
  // per-block boundary edges and corrections in (block, artifact) order,
  // cut-edge off-diagonals in model edge order.
  const auto nbd = static_cast<index_t>(snap->boundary_nodes_.size());
  if (nbd > 0) {
    std::vector<real_t> cut_wdeg(static_cast<std::size_t>(nbd), 0.0);
    for (const Edge& e : cut_edges) {
      cut_wdeg[static_cast<std::size_t>(
          snap->boundary_index_[static_cast<std::size_t>(e.u)])] += e.weight;
      cut_wdeg[static_cast<std::size_t>(
          snap->boundary_index_[static_cast<std::size_t>(e.v)])] += e.weight;
    }
    TripletMatrix s(nbd, nbd);
    for (index_t j = 0; j < nbd; ++j) {
      const index_t g = snap->boundary_nodes_[static_cast<std::size_t>(j)];
      const BlockSystem& bs = snap->blocks_[static_cast<std::size_t>(
          snap->block_of_reduced_[static_cast<std::size_t>(g)])];
      s.add(j, j,
            bs.artifact->intra_wdeg[static_cast<std::size_t>(
                snap->block_local_[static_cast<std::size_t>(g)])] +
                model.network.shunts[static_cast<std::size_t>(g)] +
                cut_wdeg[static_cast<std::size_t>(j)]);
    }
    for (const BlockSystem& bs : snap->blocks_)
      for (const BlockArtifact::BoundaryEdge& e :
           bs.artifact->boundary_edges)
        s.add_symmetric(bs.boundary_global[static_cast<std::size_t>(e.u)],
                        bs.boundary_global[static_cast<std::size_t>(e.v)],
                        -e.weight);
    for (const Edge& e : cut_edges)
      s.add_symmetric(snap->boundary_index_[static_cast<std::size_t>(e.u)],
                      snap->boundary_index_[static_cast<std::size_t>(e.v)],
                      -e.weight);
    for (const BlockSystem& bs : snap->blocks_)
      for (const BlockArtifact::Correction& c : bs.artifact->corrections)
        s.add(bs.boundary_global[static_cast<std::size_t>(c.row)],
              bs.boundary_global[static_cast<std::size_t>(c.col)], c.value);
    snap->boundary_factor_ = cholesky(CscMatrix::from_triplets(s));
  }

  if (opts.build_monolithic_factor) {
    snap->global_factor_ = cholesky(model.network.system_matrix());
    snap->has_monolithic_factor_ = true;
  }

  // Publish-cost accounting: everything this build created, as opposed to
  // aliased from the model or the previous snapshot. With a shared model
  // and a dirty-only rebuild this scales with the dirty set (plus the
  // always-global boundary / optional monolithic factors).
  std::size_t materialized = model_bytes_copied;
  for (index_t b = 0; b < nb_blocks; ++b)
    if (!aliased[static_cast<std::size_t>(b)])
      materialized += artifact_footprint_bytes(
          *snap->blocks_[static_cast<std::size_t>(b)].artifact);
  materialized += snap->boundary_factor_.footprint_bytes();
  if (snap->has_monolithic_factor_)
    materialized += snap->global_factor_.footprint_bytes();
  snap->bytes_materialized_ = materialized;

  snap->build_seconds_ = timer.seconds();
  return snap;
}

index_t ModelSnapshot::reduced_id(index_t original) const {
  if (original < 0 ||
      static_cast<std::size_t>(original) >= model_->node_map.size())
    return -1;
  return model_->node_map[static_cast<std::size_t>(original)];
}

void ModelSnapshot::solve_sparse(const index_t* rhs_nodes,
                                 const real_t* rhs_values, int nrhs,
                                 const index_t* targets, real_t* out,
                                 int ntargets, Workspace& ws) const {
  const auto nbd = static_cast<index_t>(boundary_nodes_.size());
  ws.boundary_rhs.assign(static_cast<std::size_t>(nbd), 0.0);

  // Forward pass: boundary rhs entries land directly; interior entries are
  // condensed through their block, rhs_B -= A_BI (A_II)^-1 rhs_I (a
  // coupling entry A[j,i] is -weight, hence the += below).
  for (int r = 0; r < nrhs; ++r) {
    const index_t g = rhs_nodes[r];
    const index_t bidx = boundary_index_[static_cast<std::size_t>(g)];
    if (bidx >= 0) ws.boundary_rhs[static_cast<std::size_t>(bidx)] += rhs_values[r];
  }
  for (int r = 0; r < nrhs; ++r) {
    const index_t g = rhs_nodes[r];
    if (boundary_index_[static_cast<std::size_t>(g)] >= 0) continue;
    // Skip if this block was already condensed for an earlier rhs entry.
    const index_t b = block_of_reduced_[static_cast<std::size_t>(g)];
    bool done = false;
    for (int r2 = 0; r2 < r; ++r2)
      done = done ||
             (boundary_index_[static_cast<std::size_t>(rhs_nodes[r2])] < 0 &&
              block_of_reduced_[static_cast<std::size_t>(rhs_nodes[r2])] == b);
    if (done) continue;
    const BlockSystem& bs = blocks_[static_cast<std::size_t>(b)];
    ws.block_rhs.assign(bs.artifact->interior_locals.size(), 0.0);
    for (int r2 = r; r2 < nrhs; ++r2) {
      const index_t g2 = rhs_nodes[r2];
      if (boundary_index_[static_cast<std::size_t>(g2)] < 0 &&
          block_of_reduced_[static_cast<std::size_t>(g2)] == b)
        ws.block_rhs[static_cast<std::size_t>(
            interior_index_[static_cast<std::size_t>(g2)])] += rhs_values[r2];
    }
    const std::vector<real_t> t = bs.artifact->factor.solve(ws.block_rhs);
    for (const BlockArtifact::Coupling& c : bs.artifact->couplings)
      ws.boundary_rhs[static_cast<std::size_t>(
          bs.boundary_global[static_cast<std::size_t>(c.boundary)])] +=
          c.weight * t[static_cast<std::size_t>(c.interior)];
  }

  // Global boundary solve S x_B = rhs_B.
  std::vector<real_t> bx;
  if (nbd > 0) bx = boundary_factor_.solve(ws.boundary_rhs);

  // Back-substitution: boundary targets read x_B; interior targets solve
  // their block once, x_I = (A_II)^-1 (rhs_I - A_IB x_B). The most recent
  // block solution is kept so consecutive targets in one block (the
  // resistance query's (p, q) pair) share a single solve.
  index_t solved_block = -1;
  for (int t = 0; t < ntargets; ++t) {
    const index_t g = targets[t];
    const index_t bidx = boundary_index_[static_cast<std::size_t>(g)];
    if (bidx >= 0) {
      out[t] = bx[static_cast<std::size_t>(bidx)];
      continue;
    }
    const index_t b = block_of_reduced_[static_cast<std::size_t>(g)];
    if (b != solved_block) {
      const BlockSystem& bs = blocks_[static_cast<std::size_t>(b)];
      ws.block_rhs.assign(bs.artifact->interior_locals.size(), 0.0);
      for (int r = 0; r < nrhs; ++r) {
        const index_t g2 = rhs_nodes[r];
        if (boundary_index_[static_cast<std::size_t>(g2)] < 0 &&
            block_of_reduced_[static_cast<std::size_t>(g2)] == b)
          ws.block_rhs[static_cast<std::size_t>(
              interior_index_[static_cast<std::size_t>(g2)])] += rhs_values[r];
      }
      for (const BlockArtifact::Coupling& c : bs.artifact->couplings)
        ws.block_rhs[static_cast<std::size_t>(c.interior)] +=
            c.weight * bx[static_cast<std::size_t>(bs.boundary_global[
                static_cast<std::size_t>(c.boundary)])];
      ws.block_solution = bs.artifact->factor.solve(ws.block_rhs);
      solved_block = b;
    }
    out[t] = ws.block_solution[static_cast<std::size_t>(
        interior_index_[static_cast<std::size_t>(g)])];
  }
}

real_t ModelSnapshot::response(index_t p, index_t q, Workspace& ws) const {
  const real_t one = 1.0;
  real_t out = 0.0;
  solve_sparse(&p, &one, 1, &q, &out, 1, ws);
  return out;
}

real_t ModelSnapshot::resistance(index_t p, index_t q, Workspace& ws) const {
  if (p == q) return 0.0;
  const index_t rhs_nodes[2] = {p, q};
  const real_t rhs_values[2] = {1.0, -1.0};
  real_t out[2] = {0.0, 0.0};
  solve_sparse(rhs_nodes, rhs_values, 2, rhs_nodes, out, 2, ws);
  return out[0] - out[1];
}

real_t ModelSnapshot::response_monolithic(index_t p, index_t q,
                                          Workspace& ws) const {
  if (!has_monolithic_factor())
    throw std::logic_error(
        "ModelSnapshot: built without the monolithic factor");
  ws.mono_rhs.assign(static_cast<std::size_t>(global_factor_.n), 0.0);
  const index_t pp = global_factor_.inv_perm[static_cast<std::size_t>(p)];
  const index_t qq = global_factor_.inv_perm[static_cast<std::size_t>(q)];
  ws.mono_rhs[static_cast<std::size_t>(pp)] = 1.0;
  global_factor_.solve_permuted(ws.mono_rhs);
  return ws.mono_rhs[static_cast<std::size_t>(qq)];
}

real_t ModelSnapshot::resistance_monolithic(index_t p, index_t q,
                                            Workspace& ws) const {
  if (!has_monolithic_factor())
    throw std::logic_error(
        "ModelSnapshot: built without the monolithic factor");
  if (p == q) return 0.0;
  ws.mono_rhs.assign(static_cast<std::size_t>(global_factor_.n), 0.0);
  const index_t pp = global_factor_.inv_perm[static_cast<std::size_t>(p)];
  const index_t qq = global_factor_.inv_perm[static_cast<std::size_t>(q)];
  ws.mono_rhs[static_cast<std::size_t>(pp)] = 1.0;
  ws.mono_rhs[static_cast<std::size_t>(qq)] = -1.0;
  global_factor_.solve_permuted(ws.mono_rhs);
  return ws.mono_rhs[static_cast<std::size_t>(pp)] -
         ws.mono_rhs[static_cast<std::size_t>(qq)];
}

}  // namespace er
