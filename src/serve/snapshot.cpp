#include "serve/snapshot.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "chol/cholesky.hpp"
#include "effres/approx_chol.hpp"
#include "effres/exact.hpp"
#include "parallel/thread_pool.hpp"
#include "sparse/coo.hpp"
#include "util/timer.hpp"

namespace er {

namespace {

std::unique_ptr<EffResEngine> make_block_engine(const Graph& g,
                                                const ServingOptions& opts) {
  if (g.num_nodes() < 2 || g.num_edges() == 0) return nullptr;
  // A block whose local system resists factorization (e.g. pathological
  // weights) must not take the whole snapshot down: the exact sharded path
  // still serves its queries, so the fast path just stays unavailable.
  try {
    if (opts.engine_backend == ErBackend::kExact)
      return std::make_unique<ExactEffRes>(g);
    ApproxCholOptions ac;
    ac.droptol = opts.engine_droptol;
    ac.epsilon = opts.engine_epsilon;
    return std::make_unique<ApproxCholEffRes>(g, ac);
  } catch (const std::exception&) {
    return nullptr;
  }
}

}  // namespace

std::shared_ptr<const ModelSnapshot> ModelSnapshot::build(
    const ReductionArtifacts& artifacts, const ServingOptions& opts,
    ThreadPool* pool, std::uint64_t version) {
  return build(artifacts.blocks, artifacts.model, opts, pool, version);
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::build(
    const std::vector<BlockReduced>& reduced_blocks, const ReducedModel& input_model,
    const ServingOptions& opts, ThreadPool* pool, std::uint64_t version) {
  Timer timer;
  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot());
  snap->model_ = input_model;
  snap->version_ = version;
  const ReducedModel& model = snap->model_;
  const Graph& rg = model.network.graph;
  const index_t n = rg.num_nodes();
  const auto nb_blocks = static_cast<index_t>(model.block_kept.size());

  // Reduced node -> owning block and engine-local id (block_kept[b][m] is
  // the reduced id of the block's m-th merged node, matching the node ids
  // of BlockReduced::sparse_graph).
  snap->block_of_reduced_.assign(static_cast<std::size_t>(n), -1);
  snap->block_local_.assign(static_cast<std::size_t>(n), -1);
  for (index_t b = 0; b < nb_blocks; ++b) {
    const auto& kept = model.block_kept[static_cast<std::size_t>(b)];
    for (std::size_t m = 0; m < kept.size(); ++m) {
      snap->block_of_reduced_[static_cast<std::size_t>(kept[m])] = b;
      snap->block_local_[static_cast<std::size_t>(kept[m])] =
          static_cast<index_t>(m);
    }
  }

  // Boundary = reduced nodes incident to an inter-block edge; everything
  // else is interior to its block. Weighted degrees feed the Laplacian
  // diagonals of the principal sub-systems below.
  std::vector<char> boundary_flag(static_cast<std::size_t>(n), 0);
  std::vector<real_t> wdeg(static_cast<std::size_t>(n), 0.0);
  for (const Edge& e : rg.edges()) {
    wdeg[static_cast<std::size_t>(e.u)] += e.weight;
    wdeg[static_cast<std::size_t>(e.v)] += e.weight;
    if (snap->block_of_reduced_[static_cast<std::size_t>(e.u)] !=
        snap->block_of_reduced_[static_cast<std::size_t>(e.v)]) {
      boundary_flag[static_cast<std::size_t>(e.u)] = 1;
      boundary_flag[static_cast<std::size_t>(e.v)] = 1;
    }
  }
  snap->boundary_index_.assign(static_cast<std::size_t>(n), -1);
  snap->interior_index_.assign(static_cast<std::size_t>(n), -1);
  for (index_t v = 0; v < n; ++v)
    if (boundary_flag[static_cast<std::size_t>(v)]) {
      snap->boundary_index_[static_cast<std::size_t>(v)] =
          static_cast<index_t>(snap->boundary_nodes_.size());
      snap->boundary_nodes_.push_back(v);
    }

  snap->blocks_.resize(static_cast<std::size_t>(nb_blocks));
  for (index_t b = 0; b < nb_blocks; ++b) {
    BlockSystem& bs = snap->blocks_[static_cast<std::size_t>(b)];
    for (index_t g : model.block_kept[static_cast<std::size_t>(b)])
      if (!boundary_flag[static_cast<std::size_t>(g)]) {
        snap->interior_index_[static_cast<std::size_t>(g)] =
            static_cast<index_t>(bs.interior.size());
        bs.interior.push_back(g);
      }
  }

  // Bucket intra-block edges per block (cut edges go straight to S).
  std::vector<std::vector<Edge>> block_edges(
      static_cast<std::size_t>(nb_blocks));
  std::vector<Edge> boundary_edges;  // both endpoints boundary (any blocks)
  for (const Edge& e : rg.edges()) {
    const bool bu = boundary_flag[static_cast<std::size_t>(e.u)] != 0;
    const bool bv = boundary_flag[static_cast<std::size_t>(e.v)] != 0;
    if (bu && bv) {
      boundary_edges.push_back(e);
      continue;
    }
    block_edges[static_cast<std::size_t>(
                    snap->block_of_reduced_[static_cast<std::size_t>(e.u)])]
        .push_back(e);
  }

  // Per-block systems build independently into their own slots (factor,
  // couplings, Schur-correction triplets, engine), so the construction can
  // fan out across the pool and still be identical at any thread count —
  // the boundary system is assembled serially in block order below.
  std::vector<std::vector<Triplet>> corrections(
      static_cast<std::size_t>(nb_blocks));
  parallel_for(pool, 0, nb_blocks, 1, [&](index_t lo, index_t hi) {
    for (index_t b = lo; b < hi; ++b) {
      BlockSystem& bs = snap->blocks_[static_cast<std::size_t>(b)];
      const auto ni = static_cast<index_t>(bs.interior.size());
      if (opts.build_block_engines)
        bs.engine = make_block_engine(
            reduced_blocks[static_cast<std::size_t>(b)].sparse_graph, opts);
      if (ni == 0) continue;

      // A_II: principal submatrix of G on the block's interior nodes. The
      // diagonal carries the node's full weighted degree (edges to boundary
      // neighbors included) plus its shunt; interior-interior edges add the
      // off-diagonals; interior-boundary edges become A_IB couplings.
      TripletMatrix t(ni, ni);
      for (index_t l = 0; l < ni; ++l) {
        const index_t g = bs.interior[static_cast<std::size_t>(l)];
        t.add(l, l,
              wdeg[static_cast<std::size_t>(g)] +
                  model.network.shunts[static_cast<std::size_t>(g)]);
      }
      for (const Edge& e : block_edges[static_cast<std::size_t>(b)]) {
        const index_t iu = snap->interior_index_[static_cast<std::size_t>(e.u)];
        const index_t iv = snap->interior_index_[static_cast<std::size_t>(e.v)];
        if (iu >= 0 && iv >= 0) {
          t.add_symmetric(iu, iv, -e.weight);
        } else if (iu >= 0) {
          bs.couplings.push_back(
              {iu, snap->boundary_index_[static_cast<std::size_t>(e.v)],
               e.weight});
        } else {
          bs.couplings.push_back(
              {iv, snap->boundary_index_[static_cast<std::size_t>(e.u)],
               e.weight});
        }
      }
      bs.factor = cholesky(CscMatrix::from_triplets(t));

      // This block's contribution to the interface Schur complement:
      // -A_BI (A_II)^-1 A_IB over the boundary nodes it couples to. The
      // couplings are bucketed by boundary column once, so assembling the
      // |coupled| x |coupled| correction touches each coupling entry once
      // per column/row instead of rescanning the whole list.
      std::vector<index_t> coupled;
      for (const Coupling& c : bs.couplings) coupled.push_back(c.boundary);
      std::sort(coupled.begin(), coupled.end());
      coupled.erase(std::unique(coupled.begin(), coupled.end()),
                    coupled.end());
      std::vector<std::vector<std::pair<index_t, real_t>>> by_boundary(
          coupled.size());
      for (const Coupling& c : bs.couplings) {
        const auto lj = static_cast<std::size_t>(
            std::lower_bound(coupled.begin(), coupled.end(), c.boundary) -
            coupled.begin());
        by_boundary[lj].emplace_back(c.interior, c.weight);
      }
      std::vector<real_t> col(static_cast<std::size_t>(ni), 0.0);
      for (std::size_t lj = 0; lj < coupled.size(); ++lj) {
        std::fill(col.begin(), col.end(), 0.0);
        for (const auto& [i, w] : by_boundary[lj])
          col[static_cast<std::size_t>(i)] -= w;
        const std::vector<real_t> y = bs.factor.solve(col);
        for (std::size_t lk = 0; lk < coupled.size(); ++lk) {
          real_t val = 0.0;
          for (const auto& [i, w] : by_boundary[lk])
            val += w * y[static_cast<std::size_t>(i)];
          if (val != 0.0)
            corrections[static_cast<std::size_t>(b)].push_back(
                {coupled[lk], coupled[lj], val});
        }
      }
    }
  });

  // Stitched boundary system S = A_BB + per-block corrections, assembled
  // serially in fixed (boundary, block) order.
  const auto nbd = static_cast<index_t>(snap->boundary_nodes_.size());
  if (nbd > 0) {
    TripletMatrix s(nbd, nbd);
    for (index_t j = 0; j < nbd; ++j) {
      const index_t g = snap->boundary_nodes_[static_cast<std::size_t>(j)];
      s.add(j, j,
            wdeg[static_cast<std::size_t>(g)] +
                model.network.shunts[static_cast<std::size_t>(g)]);
    }
    for (const Edge& e : boundary_edges)
      s.add_symmetric(snap->boundary_index_[static_cast<std::size_t>(e.u)],
                      snap->boundary_index_[static_cast<std::size_t>(e.v)],
                      -e.weight);
    for (const auto& block_corr : corrections)
      for (const Triplet& c : block_corr) s.add(c.row, c.col, c.value);
    snap->boundary_factor_ = cholesky(CscMatrix::from_triplets(s));
  }

  if (opts.build_monolithic_factor) {
    snap->global_factor_ = cholesky(model.network.system_matrix());
    snap->has_monolithic_factor_ = true;
  }
  snap->build_seconds_ = timer.seconds();
  return snap;
}

index_t ModelSnapshot::reduced_id(index_t original) const {
  if (original < 0 ||
      static_cast<std::size_t>(original) >= model_.node_map.size())
    return -1;
  return model_.node_map[static_cast<std::size_t>(original)];
}

void ModelSnapshot::solve_sparse(const index_t* rhs_nodes,
                                 const real_t* rhs_values, int nrhs,
                                 const index_t* targets, real_t* out,
                                 int ntargets, Workspace& ws) const {
  const auto nbd = static_cast<index_t>(boundary_nodes_.size());
  ws.boundary_rhs.assign(static_cast<std::size_t>(nbd), 0.0);

  // Forward pass: boundary rhs entries land directly; interior entries are
  // condensed through their block, rhs_B -= A_BI (A_II)^-1 rhs_I (a
  // coupling entry A[j,i] is -weight, hence the += below).
  for (int r = 0; r < nrhs; ++r) {
    const index_t g = rhs_nodes[r];
    const index_t bidx = boundary_index_[static_cast<std::size_t>(g)];
    if (bidx >= 0) ws.boundary_rhs[static_cast<std::size_t>(bidx)] += rhs_values[r];
  }
  for (int r = 0; r < nrhs; ++r) {
    const index_t g = rhs_nodes[r];
    if (boundary_index_[static_cast<std::size_t>(g)] >= 0) continue;
    // Skip if this block was already condensed for an earlier rhs entry.
    const index_t b = block_of_reduced_[static_cast<std::size_t>(g)];
    bool done = false;
    for (int r2 = 0; r2 < r; ++r2)
      done = done ||
             (boundary_index_[static_cast<std::size_t>(rhs_nodes[r2])] < 0 &&
              block_of_reduced_[static_cast<std::size_t>(rhs_nodes[r2])] == b);
    if (done) continue;
    const BlockSystem& bs = blocks_[static_cast<std::size_t>(b)];
    ws.block_rhs.assign(bs.interior.size(), 0.0);
    for (int r2 = r; r2 < nrhs; ++r2) {
      const index_t g2 = rhs_nodes[r2];
      if (boundary_index_[static_cast<std::size_t>(g2)] < 0 &&
          block_of_reduced_[static_cast<std::size_t>(g2)] == b)
        ws.block_rhs[static_cast<std::size_t>(
            interior_index_[static_cast<std::size_t>(g2)])] += rhs_values[r2];
    }
    const std::vector<real_t> t = bs.factor.solve(ws.block_rhs);
    for (const Coupling& c : bs.couplings)
      ws.boundary_rhs[static_cast<std::size_t>(c.boundary)] +=
          c.weight * t[static_cast<std::size_t>(c.interior)];
  }

  // Global boundary solve S x_B = rhs_B.
  std::vector<real_t> bx;
  if (nbd > 0) bx = boundary_factor_.solve(ws.boundary_rhs);

  // Back-substitution: boundary targets read x_B; interior targets solve
  // their block once, x_I = (A_II)^-1 (rhs_I - A_IB x_B). The most recent
  // block solution is kept so consecutive targets in one block (the
  // resistance query's (p, q) pair) share a single solve.
  index_t solved_block = -1;
  for (int t = 0; t < ntargets; ++t) {
    const index_t g = targets[t];
    const index_t bidx = boundary_index_[static_cast<std::size_t>(g)];
    if (bidx >= 0) {
      out[t] = bx[static_cast<std::size_t>(bidx)];
      continue;
    }
    const index_t b = block_of_reduced_[static_cast<std::size_t>(g)];
    if (b != solved_block) {
      const BlockSystem& bs = blocks_[static_cast<std::size_t>(b)];
      ws.block_rhs.assign(bs.interior.size(), 0.0);
      for (int r = 0; r < nrhs; ++r) {
        const index_t g2 = rhs_nodes[r];
        if (boundary_index_[static_cast<std::size_t>(g2)] < 0 &&
            block_of_reduced_[static_cast<std::size_t>(g2)] == b)
          ws.block_rhs[static_cast<std::size_t>(
              interior_index_[static_cast<std::size_t>(g2)])] += rhs_values[r];
      }
      for (const Coupling& c : bs.couplings)
        ws.block_rhs[static_cast<std::size_t>(c.interior)] +=
            c.weight * bx[static_cast<std::size_t>(c.boundary)];
      ws.block_solution = bs.factor.solve(ws.block_rhs);
      solved_block = b;
    }
    out[t] = ws.block_solution[static_cast<std::size_t>(
        interior_index_[static_cast<std::size_t>(g)])];
  }
}

real_t ModelSnapshot::response(index_t p, index_t q, Workspace& ws) const {
  const real_t one = 1.0;
  real_t out = 0.0;
  solve_sparse(&p, &one, 1, &q, &out, 1, ws);
  return out;
}

real_t ModelSnapshot::resistance(index_t p, index_t q, Workspace& ws) const {
  if (p == q) return 0.0;
  const index_t rhs_nodes[2] = {p, q};
  const real_t rhs_values[2] = {1.0, -1.0};
  real_t out[2] = {0.0, 0.0};
  solve_sparse(rhs_nodes, rhs_values, 2, rhs_nodes, out, 2, ws);
  return out[0] - out[1];
}

real_t ModelSnapshot::response_monolithic(index_t p, index_t q,
                                          Workspace& ws) const {
  if (!has_monolithic_factor())
    throw std::logic_error(
        "ModelSnapshot: built without the monolithic factor");
  ws.mono_rhs.assign(static_cast<std::size_t>(global_factor_.n), 0.0);
  const index_t pp = global_factor_.inv_perm[static_cast<std::size_t>(p)];
  const index_t qq = global_factor_.inv_perm[static_cast<std::size_t>(q)];
  ws.mono_rhs[static_cast<std::size_t>(pp)] = 1.0;
  global_factor_.solve_permuted(ws.mono_rhs);
  return ws.mono_rhs[static_cast<std::size_t>(qq)];
}

real_t ModelSnapshot::resistance_monolithic(index_t p, index_t q,
                                            Workspace& ws) const {
  if (!has_monolithic_factor())
    throw std::logic_error(
        "ModelSnapshot: built without the monolithic factor");
  if (p == q) return 0.0;
  ws.mono_rhs.assign(static_cast<std::size_t>(global_factor_.n), 0.0);
  const index_t pp = global_factor_.inv_perm[static_cast<std::size_t>(p)];
  const index_t qq = global_factor_.inv_perm[static_cast<std::size_t>(q)];
  ws.mono_rhs[static_cast<std::size_t>(pp)] = 1.0;
  ws.mono_rhs[static_cast<std::size_t>(qq)] = -1.0;
  global_factor_.solve_permuted(ws.mono_rhs);
  return ws.mono_rhs[static_cast<std::size_t>(pp)] -
         ws.mono_rhs[static_cast<std::size_t>(qq)];
}

}  // namespace er
