#include "serve/model_store.hpp"

#include <stdexcept>
#include <utility>

namespace er {

void ModelStore::publish(SnapshotPtr snapshot) {
  if (!snapshot)
    throw std::invalid_argument("ModelStore::publish: null snapshot");
  // Swap under the lock, destroy outside it: if this publish drops the last
  // reference to the displaced snapshot, its (large) teardown must not
  // stall concurrent acquire() calls — the critical section stays a
  // pointer swap.
  SnapshotPtr displaced;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    displaced = std::move(current_);
    current_ = std::move(snapshot);
    ++publish_count_;
  }
}

SnapshotPtr ModelStore::acquire() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::uint64_t ModelStore::publish_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return publish_count_;
}

std::uint64_t ModelStore::current_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_ ? current_->version() : 0;
}

}  // namespace er
