#include "serve/model_store.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "serve/result_cache.hpp"

namespace er {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ModelStore::ModelStore(obs::MetricsRegistry* registry) {
  obs::MetricsRegistry& reg = obs::registry_or_global(registry);
  publishes_total_ = &reg.counter("er_store_publishes_total", {},
                                  "Snapshots published to the store");
  current_version_gauge_ =
      &reg.gauge("er_store_current_version", {},
                 "Version of the currently-published snapshot");
}

void ModelStore::publish(SnapshotPtr snapshot) {
  if (!snapshot)
    throw std::invalid_argument("ModelStore::publish: null snapshot");
  const auto now = std::chrono::steady_clock::now();
  const auto version = snapshot->version();
  // Swap under the lock, destroy outside it: if this publish drops the last
  // reference to the displaced snapshot, its (large) teardown must not
  // stall concurrent acquire() calls — the critical section stays a
  // pointer swap plus O(1) log bookkeeping. The cache hook also runs
  // outside the lock (it sweeps every cache stripe): racing publishes may
  // then invoke hooks out of order, which at worst misses a carry (cold
  // cache), never yields a stale hit — see ResultCache::on_publish.
  SnapshotPtr displaced;
  std::shared_ptr<ResultCache> cache;
  {
    util::MutexLock lock(&mutex_);
    publish_log_.emplace_back(version, now);
    if (publish_log_.size() > kPublishLogCap) publish_log_.pop_front();
    displaced = std::move(current_);
    current_ = snapshot;
    ++publish_count_;
    cache = cache_;
  }
  publishes_total_->add(1);
  current_version_gauge_->set(static_cast<std::int64_t>(version));
  if (cache) cache->on_publish(displaced.get(), *snapshot);
}

void ModelStore::attach_cache(std::shared_ptr<ResultCache> cache) {
  SnapshotPtr current;
  {
    util::MutexLock lock(&mutex_);
    cache_ = cache;
    current = current_;
  }
  // Register the already-published snapshot so its version resolves;
  // nothing can carry into it (the cache has no scopes for its ancestry).
  if (cache && current) cache->on_publish(nullptr, *current);
}

std::shared_ptr<ResultCache> ModelStore::cache() const {
  util::MutexLock lock(&mutex_);
  return cache_;
}

SnapshotPtr ModelStore::acquire() const {
  util::MutexLock lock(&mutex_);
  return current_;
}

std::uint64_t ModelStore::publish_count() const {
  util::MutexLock lock(&mutex_);
  return publish_count_;
}

bool ModelStore::has_published() const {
  // Pure convenience name over the optional probe (one lock, in there).
  return current_version().has_value();
}

std::optional<std::uint64_t> ModelStore::current_version() const {
  util::MutexLock lock(&mutex_);
  if (!current_) return std::nullopt;
  return current_->version();
}

std::optional<double> ModelStore::current_age_seconds() const {
  util::MutexLock lock(&mutex_);
  if (!current_ || publish_log_.empty()) return std::nullopt;
  return seconds_since(publish_log_.back().second);
}

std::optional<double> ModelStore::version_age_seconds(
    std::uint64_t version) const {
  util::MutexLock lock(&mutex_);
  // Newest-first so a republished version reports its latest instant.
  for (auto it = publish_log_.rbegin(); it != publish_log_.rend(); ++it)
    if (it->first == version) return seconds_since(it->second);
  return std::nullopt;
}

}  // namespace er
