#include "serve/async_updater.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace er {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

AsyncUpdater::AsyncUpdater(UpdateFn apply)
    : AsyncUpdater(std::move(apply), Options{}) {}

AsyncUpdater::AsyncUpdater(UpdateFn apply, Options options)
    : apply_(std::move(apply)), options_(options) {
  if (!apply_)
    throw std::invalid_argument("AsyncUpdater: null update function");
  if (options_.version_log_cap < 2)
    throw std::invalid_argument(
        "AsyncUpdater: version_log_cap must be >= 2");
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncUpdater::~AsyncUpdater() {
  try {
    drain();
  } catch (...) {
    // drain() rethrows a latched worker error; the destructor only needs
    // the join, which drain() completed before throwing.
  }
}

bool AsyncUpdater::submit(ConductanceNetwork network,
                          std::vector<index_t> dirty_blocks) {
  std::sort(dirty_blocks.begin(), dirty_blocks.end());
  dirty_blocks.erase(std::unique(dirty_blocks.begin(), dirty_blocks.end()),
                     dirty_blocks.end());
  std::unique_lock<std::mutex> lock(mutex_);
  if (error_) std::rethrow_exception(error_);
  if (stop_)
    throw std::logic_error("AsyncUpdater::submit: updater was drained");
  // Back-pressure: accepting this modification must not leave more than
  // max_staleness_mods accepted-but-unpublished (the store would trail the
  // edit stream beyond the bound). Fail fast or wait for the worker —
  // cv_idle_ is notified at every batch completion — depending on policy.
  if (options_.max_staleness_mods > 0 &&
      unpublished_mods_locked() + 1 > options_.max_staleness_mods) {
    if (options_.fail_fast) {
      ++stats_.rejected;
      return false;
    }
    ++stats_.blocked_submits;
    const auto t0 = std::chrono::steady_clock::now();
    cv_idle_.wait(lock, [this] {
      return error_ != nullptr || stop_ ||
             unpublished_mods_locked() + 1 <= options_.max_staleness_mods;
    });
    stats_.total_blocked_seconds += seconds_since(t0);
    if (error_) std::rethrow_exception(error_);
    if (stop_)
      throw std::logic_error("AsyncUpdater::submit: updater was drained");
  }
  ++stats_.submitted;
  stats_.max_observed_staleness_mods =
      std::max(stats_.max_observed_staleness_mods, unpublished_mods_locked());
  if (pending_) {
    // Coalesce: the newer network is the more recent cumulative state, so
    // it replaces the pending one; the dirty sets union; the latency
    // anchor stays the oldest merged modification.
    pending_->network = std::move(network);
    std::vector<index_t> merged;
    merged.reserve(pending_->dirty_blocks.size() + dirty_blocks.size());
    std::set_union(pending_->dirty_blocks.begin(),
                   pending_->dirty_blocks.end(), dirty_blocks.begin(),
                   dirty_blocks.end(), std::back_inserter(merged));
    pending_->dirty_blocks = std::move(merged);
    ++pending_->mods;
    ++stats_.coalesced;
  } else {
    pending_.emplace();
    pending_->network = std::move(network);
    pending_->dirty_blocks = std::move(dirty_blocks);
    pending_->oldest = std::chrono::steady_clock::now();
    pending_->mods = 1;
  }
  cv_worker_.notify_one();
  return true;
}

void AsyncUpdater::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  // flush implies resume: the predicate clears paused_ on every
  // evaluation — including the initial one on an idle updater and every
  // wake (pause() notifies cv_idle_ precisely so this re-evaluation
  // happens) — so a racing pause can neither strand the pending batch nor
  // leave the updater paused after flush returns.
  cv_idle_.wait(lock, [this] {
    if (paused_) {
      paused_ = false;
      cv_worker_.notify_one();
    }
    return error_ != nullptr || (!pending_ && !in_flight_);
  });
  if (error_) std::rethrow_exception(error_);
}

void AsyncUpdater::drain() {
  std::exception_ptr err;
  try {
    flush();
  } catch (...) {
    err = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_worker_.notify_one();
  // call_once serializes concurrent drains (e.g. an explicit drain racing
  // the destructor's): exactly one caller joins, the rest block until the
  // join completes — keeping drain() idempotent and thread-safe.
  std::call_once(join_once_, [this] { worker_.join(); });
  if (err) std::rethrow_exception(err);
}

void AsyncUpdater::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
  // Wake flush()/drain() waiters so they can override the pause (their
  // wait predicate re-clears paused_) instead of hanging on a batch the
  // worker will no longer pick up.
  cv_idle_.notify_all();
}

void AsyncUpdater::resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = false;
  cv_worker_.notify_one();
}

AsyncUpdater::Stats AsyncUpdater::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.pending = pending_ ? pending_->mods : 0;
  s.update_in_flight = in_flight_;
  return s;
}

std::uint64_t AsyncUpdater::mods_reflected(std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Versions are strictly increasing in publish order: binary-search the
  // newest batch published at or before `version`, falling back to the
  // prune marker for versions older than the retention window.
  const auto it = std::partition_point(
      version_log_.begin(), version_log_.end(),
      [version](const std::pair<std::uint64_t, std::uint64_t>& e) {
        return e.first <= version;
      });
  if (it != version_log_.begin()) return std::prev(it)->second;
  if (pruned_ && version >= pruned_->first) return pruned_->second;
  return 0;
}

void AsyncUpdater::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_worker_.wait(lock, [this] {
      return stop_ || (pending_.has_value() && !paused_);
    });
    if (!pending_ || paused_) {
      // Only reachable with stop_ set: a paused drain was abandoned (the
      // destructor path after a flush error) — nothing runnable remains.
      if (stop_) return;
      continue;
    }
    PendingBatch batch = std::move(*pending_);
    pending_.reset();
    in_flight_ = true;
    lock.unlock();

    std::uint64_t version = 0;
    std::exception_ptr err;
    try {
      version = apply_(batch.network, batch.dirty_blocks);
    } catch (...) {
      err = std::current_exception();
    }
    const double latency = seconds_since(batch.oldest);

    lock.lock();
    in_flight_ = false;
    if (err) {
      // Latch the error and stop: the model source's state after a failed
      // update is suspect, so no further batches are applied. submit() and
      // flush() surface the error to the caller; the batch's modifications
      // land in Stats::failed so the accounting invariant stays exact.
      error_ = err;
      stop_ = true;
      stats_.failed += batch.mods;
      cv_idle_.notify_all();
      return;
    }
    stats_.applied += batch.mods;
    ++stats_.batches;
    stats_.last_publish_latency_seconds = latency;
    stats_.max_publish_latency_seconds =
        std::max(stats_.max_publish_latency_seconds, latency);
    stats_.total_publish_latency_seconds += latency;
    version_log_.emplace_back(version, stats_.applied);
    // Bound the log: fold the older half into the prune marker once it
    // outgrows the cap (Options::version_log_cap batches of retention —
    // the default is far beyond any realistically pinned snapshot's age).
    if (version_log_.size() > options_.version_log_cap) {
      const auto half =
          static_cast<std::ptrdiff_t>(version_log_.size() / 2);
      pruned_ = version_log_[static_cast<std::size_t>(half - 1)];
      version_log_.erase(version_log_.begin(),
                         version_log_.begin() + half);
    }
    cv_idle_.notify_all();
    if (stop_ && !pending_) return;
  }
}

}  // namespace er
