#include "serve/async_updater.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace er {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

AsyncUpdater::AsyncUpdater(UpdateFn apply)
    : AsyncUpdater(std::move(apply), Options{}) {}

AsyncUpdater::AsyncUpdater(UpdateFn apply, Options options)
    : apply_(std::move(apply)), options_(options) {
  if (!apply_)
    throw std::invalid_argument("AsyncUpdater: null update function");
  if (options_.version_log_cap < 2)
    throw std::invalid_argument(
        "AsyncUpdater: version_log_cap must be >= 2");
  if (options_.registry) {
    registry_ = options_.registry;
  } else {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  obs::MetricsRegistry& reg = *registry_;
  submitted_ = &reg.counter("er_updater_mods_submitted_total", {},
                            "Modifications accepted by submit()");
  applied_ = &reg.counter("er_updater_mods_applied_total", {},
                          "Modifications folded into finished updates");
  batches_ = &reg.counter("er_updater_batches_total", {},
                          "Worker update+publish cycles");
  coalesced_ =
      &reg.counter("er_updater_mods_coalesced_total", {},
                   "Modifications merged into an already-pending batch");
  failed_ = &reg.counter("er_updater_mods_failed_total", {},
                         "Modifications lost to a batch whose update threw");
  blocked_submits_ =
      &reg.counter("er_updater_blocked_submits_total", {},
                   "submit() calls that waited at the staleness bound");
  rejected_ =
      &reg.counter("er_updater_mods_rejected_total", {},
                   "Modifications turned away by fail_fast at the bound");
  staleness_mods_ =
      &reg.gauge("er_updater_staleness_mods", {},
                 "Accepted-but-unpublished modifications right now");
  staleness_high_water_ =
      &reg.gauge("er_updater_staleness_mods_high_water", {},
                 "Largest staleness ever observed at a submit");
  publish_latency_hist_ = &reg.histogram(
      "er_updater_publish_latency_seconds", {},
      "Submit-to-publish latency of the oldest modification per batch");
  blocked_wait_hist_ =
      &reg.histogram("er_updater_blocked_wait_seconds", {},
                     "Per-blocked-submit wait at the staleness bound");
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncUpdater::~AsyncUpdater() {
  try {
    drain();
  } catch (...) {
    // drain() rethrows a latched worker error; the destructor only needs
    // the join, which drain() completed before throwing.
  }
}

bool AsyncUpdater::submit(ConductanceNetwork network,
                          std::vector<index_t> dirty_blocks) {
  std::sort(dirty_blocks.begin(), dirty_blocks.end());
  dirty_blocks.erase(std::unique(dirty_blocks.begin(), dirty_blocks.end()),
                     dirty_blocks.end());
  util::UniqueLock lock(&mutex_);
  if (error_) std::rethrow_exception(error_);
  if (stop_)
    throw std::logic_error("AsyncUpdater::submit: updater was drained");
  // Back-pressure: accepting this modification must not leave more than
  // max_staleness_mods accepted-but-unpublished (the store would trail the
  // edit stream beyond the bound). Fail fast or wait for the worker —
  // cv_idle_ is notified at every batch completion — depending on policy.
  if (options_.max_staleness_mods > 0 &&
      unpublished_mods_locked() + 1 > options_.max_staleness_mods) {
    if (options_.fail_fast) {
      rejected_->add(1);
      return false;
    }
    blocked_submits_->add(1);
    const auto t0 = std::chrono::steady_clock::now();
    // Explicit wait loop so the guarded reads sit in this annotated scope
    // (a cv wait predicate lambda is analyzed lock-less).
    while (error_ == nullptr && !stop_ &&
           unpublished_mods_locked() + 1 > options_.max_staleness_mods)
      cv_idle_.wait(lock.native());
    blocked_wait_hist_->record(seconds_since(t0));
    if (error_) std::rethrow_exception(error_);
    if (stop_)
      throw std::logic_error("AsyncUpdater::submit: updater was drained");
  }
  submitted_->add(1);
  const auto unpublished = unpublished_mods_locked();
  staleness_mods_->set(static_cast<std::int64_t>(unpublished));
  staleness_high_water_->max_with(static_cast<std::int64_t>(unpublished));
  if (pending_) {
    // Coalesce: the newer network is the more recent cumulative state, so
    // it replaces the pending one; the dirty sets union; the latency
    // anchor stays the oldest merged modification.
    pending_->network = std::move(network);
    std::vector<index_t> merged;
    merged.reserve(pending_->dirty_blocks.size() + dirty_blocks.size());
    std::set_union(pending_->dirty_blocks.begin(),
                   pending_->dirty_blocks.end(), dirty_blocks.begin(),
                   dirty_blocks.end(), std::back_inserter(merged));
    pending_->dirty_blocks = std::move(merged);
    ++pending_->mods;
    coalesced_->add(1);
  } else {
    pending_.emplace();
    pending_->network = std::move(network);
    pending_->dirty_blocks = std::move(dirty_blocks);
    pending_->oldest = std::chrono::steady_clock::now();
    pending_->mods = 1;
  }
  cv_worker_.notify_one();
  return true;
}

void AsyncUpdater::flush() {
  util::UniqueLock lock(&mutex_);
  // flush implies resume: the predicate clears paused_ on every
  // evaluation — including the initial one on an idle updater and every
  // wake (pause() notifies cv_idle_ precisely so this re-evaluation
  // happens) — so a racing pause can neither strand the pending batch nor
  // leave the updater paused after flush returns. Written as an explicit
  // wait loop (predicate checked before each wait and on each wake, same
  // as cv.wait(lock, pred)) so the guarded accesses are in this annotated
  // scope.
  for (;;) {
    if (paused_) {
      paused_ = false;
      cv_worker_.notify_one();
    }
    if (error_ != nullptr || (!pending_ && !in_flight_)) break;
    cv_idle_.wait(lock.native());
  }
  if (error_) std::rethrow_exception(error_);
}

void AsyncUpdater::drain() {
  std::exception_ptr err;
  try {
    flush();
  } catch (...) {
    err = std::current_exception();
  }
  {
    util::MutexLock lock(&mutex_);
    stop_ = true;
  }
  cv_worker_.notify_one();
  // call_once serializes concurrent drains (e.g. an explicit drain racing
  // the destructor's): exactly one caller joins, the rest block until the
  // join completes — keeping drain() idempotent and thread-safe.
  std::call_once(join_once_, [this] { worker_.join(); });
  if (err) std::rethrow_exception(err);
}

void AsyncUpdater::pause() {
  util::MutexLock lock(&mutex_);
  paused_ = true;
  // Wake flush()/drain() waiters so they can override the pause (their
  // wait predicate re-clears paused_) instead of hanging on a batch the
  // worker will no longer pick up.
  cv_idle_.notify_all();
}

void AsyncUpdater::resume() {
  util::MutexLock lock(&mutex_);
  paused_ = false;
  cv_worker_.notify_one();
}

std::uint64_t AsyncUpdater::unpublished_mods_locked() const {
  return submitted_->value() - applied_->value() - failed_->value();
}

AsyncUpdater::Stats AsyncUpdater::stats() const {
  util::MutexLock lock(&mutex_);
  // Materialize the view from the registry series. Consistency comes from
  // mutex_: every mutation of these series happens with it held.
  Stats s;
  s.submitted = submitted_->value();
  s.applied = applied_->value();
  s.batches = batches_->value();
  s.coalesced = coalesced_->value();
  s.failed = failed_->value();
  s.pending = pending_ ? pending_->mods : 0;
  s.update_in_flight = in_flight_;
  s.last_publish_latency_seconds = last_publish_latency_seconds_;
  s.max_publish_latency_seconds = publish_latency_hist_->max_value();
  s.total_publish_latency_seconds = publish_latency_hist_->sum();
  s.blocked_submits = blocked_submits_->value();
  s.total_blocked_seconds = blocked_wait_hist_->sum();
  s.rejected = rejected_->value();
  s.max_observed_staleness_mods =
      static_cast<std::uint64_t>(staleness_high_water_->value());
  return s;
}

std::uint64_t AsyncUpdater::mods_reflected(std::uint64_t version) const {
  util::MutexLock lock(&mutex_);
  // Versions are strictly increasing in publish order: binary-search the
  // newest batch published at or before `version`, falling back to the
  // prune marker for versions older than the retention window.
  const auto it = std::partition_point(
      version_log_.begin(), version_log_.end(),
      [version](const std::pair<std::uint64_t, std::uint64_t>& e) {
        return e.first <= version;
      });
  if (it != version_log_.begin()) return std::prev(it)->second;
  if (pruned_ && version >= pruned_->first) return pruned_->second;
  return 0;
}

void AsyncUpdater::worker_loop() {
  util::UniqueLock lock(&mutex_);
  for (;;) {
    // Explicit wait loop (see submit()): wake when stopped or a batch is
    // runnable (pending and not paused).
    while (!stop_ && (!pending_.has_value() || paused_))
      cv_worker_.wait(lock.native());
    if (!pending_ || paused_) {
      // Only reachable with stop_ set: a paused drain was abandoned (the
      // destructor path after a flush error) — nothing runnable remains.
      if (stop_) return;
      continue;
    }
    PendingBatch batch = std::move(*pending_);
    pending_.reset();
    in_flight_ = true;
    lock.unlock();

    std::uint64_t version = 0;
    std::exception_ptr err;
    try {
      version = apply_(batch.network, batch.dirty_blocks);
    } catch (...) {
      err = std::current_exception();
    }
    const double latency = seconds_since(batch.oldest);

    lock.lock();
    in_flight_ = false;
    if (err) {
      // Latch the error and stop: the model source's state after a failed
      // update is suspect, so no further batches are applied. submit() and
      // flush() surface the error to the caller; the batch's modifications
      // land in Stats::failed so the accounting invariant stays exact.
      error_ = err;
      stop_ = true;
      failed_->add(batch.mods);
      staleness_mods_->set(
          static_cast<std::int64_t>(unpublished_mods_locked()));
      cv_idle_.notify_all();
      return;
    }
    applied_->add(batch.mods);
    batches_->add(1);
    last_publish_latency_seconds_ = latency;
    publish_latency_hist_->record(latency);
    staleness_mods_->set(static_cast<std::int64_t>(unpublished_mods_locked()));
    version_log_.emplace_back(version, applied_->value());
    // Bound the log: fold the older half into the prune marker once it
    // outgrows the cap (Options::version_log_cap batches of retention —
    // the default is far beyond any realistically pinned snapshot's age).
    if (version_log_.size() > options_.version_log_cap) {
      const auto half =
          static_cast<std::ptrdiff_t>(version_log_.size() / 2);
      pruned_ = version_log_[static_cast<std::size_t>(half - 1)];
      version_log_.erase(version_log_.begin(),
                         version_log_.begin() + half);
    }
    cv_idle_.notify_all();
    if (stop_ && !pending_) return;
  }
}

}  // namespace er
