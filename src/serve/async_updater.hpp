/// \file
/// Background incremental-update service (DESIGN.md §4.1).
///
/// AsyncUpdater decouples the *publisher* side of the serving pipeline
/// from the threads that produce modifications: submit() enqueues a
/// modification batch and returns immediately, while a dedicated worker
/// thread applies batches through a caller-supplied update function
/// (typically IncrementalReducer::update with a ModelStore attached, whose
/// per-block solves still fan out over the reducer's shared ThreadPool).
/// Queries never wait on updates: they keep answering against the
/// currently-published snapshot, and each publish only affects later
/// acquires (the §4 publish protocol).
///
/// Coalescing: the queue is a single pending slot. A batch submitted while
/// an update is in flight (or while the updater is paused) merges into the
/// pending slot — the newest network state replaces the older one and the
/// dirty sets union — so the worker always applies the most recent state
/// in one update instead of replaying a backlog. This bounds the *batch*
/// backlog under churn: the store is at most one update behind the last
/// submitted state once the worker catches up.
///
/// Bounded staleness (back-pressure): coalescing alone does not stop the
/// edit stream from racing arbitrarily many *modifications* ahead of the
/// store (a pending slot absorbs any number of them). Options::
/// max_staleness_mods caps how many submitted-but-unpublished
/// modifications may exist: once the store trails by that many, submit()
/// either blocks until the worker catches up (default) or fails fast
/// (Options::fail_fast), returning false without accepting the edit.
///
/// Layering: this lives in `serve/` and deliberately knows nothing about
/// `pg/` — the update function closes over whatever model source the
/// caller uses (see docs/serving_guide.md for the IncrementalReducer
/// wiring).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "reduction/network.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace er {

namespace obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

/// Runs modification batches on a dedicated background thread against a
/// caller-supplied update function. All public methods are thread-safe.
class AsyncUpdater {
 public:
  /// Applies one coalesced batch: re-reduce against `network` (the full
  /// modified state, *not* a delta) treating `dirty_blocks` as changed,
  /// and publish the result. Returns the published model version (for
  /// IncrementalReducer: its revision()). Runs on the worker thread; it
  /// must not touch the updater (deadlock) and must not race with other
  /// users of the underlying model source.
  using UpdateFn = std::function<std::uint64_t(
      const ConductanceNetwork& network,
      const std::vector<index_t>& dirty_blocks)>;

  /// Construction-time knobs.
  struct Options {
    /// Back-pressure bound: the maximum number of accepted-but-unpublished
    /// modifications (pending slot + the batch in flight). 0 = unbounded
    /// (the pre-existing behavior). With a bound of N, a submit() that
    /// would leave the store more than N modifications behind blocks until
    /// the worker catches up — or is rejected when fail_fast is set.
    /// Caveat: with the worker paused, a blocking submit() waits until
    /// resume()/flush() lifts the gate.
    std::uint64_t max_staleness_mods = 0;
    /// At the bound, submit() returns false immediately instead of
    /// blocking (the caller decides whether to drop, retry, or slow the
    /// edit source). Rejected modifications are counted in
    /// Stats::rejected and are *not* part of Stats::submitted.
    bool fail_fast = false;
    /// Retention of the mods_reflected() version log, in batches. The
    /// default is far beyond any realistically pinned snapshot's age;
    /// tests shrink it to exercise the prune boundary.
    std::size_t version_log_cap = 256;
    /// Metrics destination (`er_updater_*` series — DESIGN.md §6). Null
    /// (the default) gives the updater a *private* per-instance registry,
    /// reachable via metrics(): updaters are created per serving pipeline
    /// (benches and tests build many, sometimes concurrently), so their
    /// counters must not silently merge in the global registry. Pass an
    /// explicit registry to aggregate — but note the Stats view then
    /// reports the combined stream of every updater sharing it.
    obs::MetricsRegistry* registry = nullptr;
  };

  /// Counters and latency figures of the update stream so far. Snapshot
  /// semantics: one stats() call is internally consistent (built under the
  /// updater's lock). This is a *view* materialized from the updater's
  /// registry series (`er_updater_*` — DESIGN.md §6) plus the derived
  /// pending/in-flight state; there is no parallel bookkeeping.
  struct Stats {
    std::uint64_t submitted = 0;  ///< modifications handed to submit()
    std::uint64_t applied = 0;    ///< modifications folded into finished updates
    std::uint64_t batches = 0;    ///< worker update+publish cycles
    /// Modifications that merged into an already-pending batch instead of
    /// opening a new one. Accounting invariant: submitted = applied +
    /// failed + pending + (modifications of the batch currently in
    /// flight, counted in neither) — so submitted = applied + failed +
    /// pending whenever update_in_flight is false.
    std::uint64_t coalesced = 0;
    /// Modifications lost to a batch whose update threw (the latched-error
    /// state; at most one batch ever fails because the worker stops).
    std::uint64_t failed = 0;
    /// Modifications waiting in the slot (derived from the slot itself by
    /// stats(); never stored).
    std::uint64_t pending = 0;
    bool update_in_flight = false;  ///< worker currently inside UpdateFn
    /// Submit-to-publish latency of the *oldest* modification in the most
    /// recent batch (what a just-submitted change waits before queries can
    /// see it).
    double last_publish_latency_seconds = 0.0;
    double max_publish_latency_seconds = 0.0;
    /// Sum of per-batch publish latencies (mean = total / batches).
    double total_publish_latency_seconds = 0.0;
    // Back-pressure figures (all 0 while Options::max_staleness_mods = 0).
    /// submit() calls that reached the staleness bound and had to wait.
    std::uint64_t blocked_submits = 0;
    /// Time submitters spent blocked at the bound, summed.
    double total_blocked_seconds = 0.0;
    /// Modifications turned away by fail_fast at the bound (disjoint from
    /// `submitted` — a rejected modification was never accepted).
    std::uint64_t rejected = 0;
    /// Largest accepted-but-unpublished modification count ever observed
    /// at a submit (the high-water mark the bound clips; tracked even
    /// when unbounded).
    std::uint64_t max_observed_staleness_mods = 0;
  };

  /// Starts the worker thread. `apply` outlives the updater's last batch
  /// (i.e. the updater must be destroyed/drained before the model source).
  explicit AsyncUpdater(UpdateFn apply);
  /// As above, with explicit knobs (two overloads rather than a default
  /// argument because a nested aggregate's member initializers are not
  /// usable as a default inside its enclosing class).
  AsyncUpdater(UpdateFn apply, Options options);

  /// Drains (applies every pending modification) and stops the worker.
  /// Worker errors are swallowed here; call drain() explicitly to observe
  /// them.
  ~AsyncUpdater();

  AsyncUpdater(const AsyncUpdater&) = delete;
  AsyncUpdater& operator=(const AsyncUpdater&) = delete;

  /// Enqueue one modification: `network` is the full modified state and
  /// `dirty_blocks` the blocks it changed *relative to the previously
  /// submitted state* (the same contract as IncrementalReducer::update —
  /// submissions describe a cumulative edit stream). If a batch is already
  /// pending the modification coalesces into it. Returns true when the
  /// modification was accepted. With Options::max_staleness_mods set,
  /// accepting it may first block until the store catches up — or, with
  /// fail_fast, the call returns false immediately (the modification was
  /// NOT taken; the caller still owns the edit). Unbounded updaters always
  /// return true without waiting. Throws std::logic_error after drain();
  /// rethrows the worker's error if a previous batch failed (including
  /// while blocked at the bound).
  bool submit(ConductanceNetwork network, std::vector<index_t> dirty_blocks)
      ER_EXCLUDES(mutex_);

  /// Block until every modification submitted so far has been applied and
  /// published. Implies resume(): a paused updater is resumed and stays
  /// resumed after the flush returns (re-pause explicitly if the gate
  /// should persist). Rethrows the worker's error if an update threw; the
  /// error stays latched, so later calls throw again.
  void flush() ER_EXCLUDES(mutex_);

  /// flush(), then stop the worker permanently (submit() afterwards
  /// throws). Called by the destructor; idempotent.
  void drain() ER_EXCLUDES(mutex_);

  /// Hold back the worker: submissions keep coalescing into the pending
  /// slot but nothing is applied until resume() — or flush()/drain(),
  /// which imply resume (including when pause() races an in-progress
  /// flush: the flush wins and the updater ends up resumed). Lets tests
  /// make coalescing deterministic and operators gate publishes around
  /// maintenance windows.
  void pause() ER_EXCLUDES(mutex_);
  void resume() ER_EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const ER_EXCLUDES(mutex_);

  /// The registry this updater records into: the private per-instance one
  /// unless Options::registry pointed elsewhere. Export with
  /// obs::to_prometheus(metrics().snapshot()) or fold into a run-level
  /// MetricsSnapshot via merge().
  [[nodiscard]] obs::MetricsRegistry& metrics() const { return *registry_; }

  /// How many submitted modifications are reflected in the snapshot with
  /// the given version (monotone in `version`): the staleness of a pinned
  /// batch is stats().submitted at pin time minus mods_reflected(pinned
  /// version). Versions published before this updater existed (e.g. the
  /// initial attach_store publish) report 0.
  ///
  /// Conservative lower bound: a version published by a batch whose
  /// bookkeeping has not landed yet (the instants between the publish
  /// inside the update function and the worker re-acquiring the lock, or a
  /// version older than the bounded log's retention window) reports the
  /// previous batch's count, so staleness derived from it can transiently
  /// over-state but never under-state. It converges as soon as the batch
  /// completes.
  [[nodiscard]] std::uint64_t mods_reflected(std::uint64_t version) const
      ER_EXCLUDES(mutex_);

 private:
  /// The single-slot queue entry: the newest submitted state plus the
  /// union of the dirty sets and the enqueue time of the *oldest* merged
  /// modification (the latency anchor).
  struct PendingBatch {
    ConductanceNetwork network;
    std::vector<index_t> dirty_blocks;
    std::chrono::steady_clock::time_point oldest;
    std::uint64_t mods = 0;
  };

  void worker_loop();

  /// Accepted-but-unpublished modifications (pending + in flight), under
  /// the lock — the quantity Options::max_staleness_mods bounds. Reads the
  /// registry counters; every mutation of them happens under mutex_, so
  /// the difference is exact here.
  [[nodiscard]] std::uint64_t unpublished_mods_locked() const
      ER_REQUIRES(mutex_);

  UpdateFn apply_;
  Options options_;
  mutable util::Mutex mutex_;
  std::condition_variable cv_worker_;  // wakes the worker
  std::condition_variable cv_idle_;    // wakes flush()/drain() waiters
  std::optional<PendingBatch> pending_ ER_GUARDED_BY(mutex_);
  bool paused_ ER_GUARDED_BY(mutex_) = false;
  bool stop_ ER_GUARDED_BY(mutex_) = false;
  bool in_flight_ ER_GUARDED_BY(mutex_) = false;
  std::exception_ptr error_ ER_GUARDED_BY(mutex_);
  /// Backing store when Options::registry is null (declared before the
  /// metric handles that point into it).
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;  ///< resolved, never null
  // Registry-backed series (pointers cached at construction). All
  // mutations happen with mutex_ held, which is what makes stats() and
  // the back-pressure arithmetic exact; the registry itself would permit
  // lock-free recording.
  obs::Counter* submitted_ = nullptr;
  obs::Counter* applied_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* coalesced_ = nullptr;
  obs::Counter* failed_ = nullptr;
  obs::Counter* blocked_submits_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Gauge* staleness_mods_ = nullptr;
  obs::Gauge* staleness_high_water_ = nullptr;
  obs::Histogram* publish_latency_hist_ = nullptr;
  obs::Histogram* blocked_wait_hist_ = nullptr;
  /// Latest batch's latency — kept as a plain member because a histogram
  /// aggregates and cannot answer "most recent sample".
  double last_publish_latency_seconds_ ER_GUARDED_BY(mutex_) = 0.0;
  /// (published version, cumulative modifications applied through it) per
  /// batch, in publish order (strictly increasing versions) — the
  /// mods_reflected() lookup table. Bounded: when it outgrows
  /// Options::version_log_cap the older half folds into pruned_ (the
  /// newest dropped entry), so memory stays O(1) over a long-lived update
  /// stream and lookups for versions older than the retention window
  /// degrade to the pruned marker.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> version_log_
      ER_GUARDED_BY(mutex_);
  std::optional<std::pair<std::uint64_t, std::uint64_t>> pruned_
      ER_GUARDED_BY(mutex_);
  std::once_flag join_once_;  // serializes the worker join across drains
  std::thread worker_;
};

}  // namespace er
