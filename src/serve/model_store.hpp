/// \file
/// Read-mostly store of the currently-published ModelSnapshot
/// (DESIGN.md §4).
///
/// Publish protocol: a writer (IncrementalReducer, or any pipeline driver)
/// builds a complete immutable snapshot *off to the side*, then swaps it
/// in with publish(). Readers acquire() a shared_ptr and keep answering
/// against their pinned snapshot for as long as they hold it — a publish
/// never invalidates in-flight queries, it only changes what the *next*
/// acquire returns. Old snapshots are freed by shared_ptr refcounting once
/// the last reader drops them; with copy-on-write rebuilds (DESIGN.md
/// §4.1) successive snapshots share their clean blocks' artifacts, so a
/// displaced snapshot's teardown releases only the per-version state no
/// newer snapshot aliases.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "serve/snapshot.hpp"

namespace er {

using SnapshotPtr = std::shared_ptr<const ModelSnapshot>;

/// Thread-safe holder of the current snapshot. All methods may be called
/// concurrently from any thread; the store never blocks on query work (the
/// critical section is a pointer swap).
class ModelStore {
 public:
  /// Atomically replace the current snapshot. Null snapshots are rejected.
  void publish(SnapshotPtr snapshot);

  /// The currently-published snapshot (null before the first publish).
  /// The returned pointer pins the snapshot: it stays valid and immutable
  /// however many publishes happen afterwards.
  [[nodiscard]] SnapshotPtr acquire() const;

  /// Number of publish() calls so far.
  [[nodiscard]] std::uint64_t publish_count() const;

  /// Version of the currently-published snapshot — the cheap monitoring
  /// probe for staleness: a reader that pinned version v runs
  /// current_version() - v model versions behind. Note 0 is ambiguous on
  /// its own: it is returned both before the first publish and while the
  /// initial model is current (IncrementalReducer revisions start at 0);
  /// use publish_count() to distinguish an empty store.
  [[nodiscard]] std::uint64_t current_version() const;

 private:
  mutable std::mutex mutex_;
  SnapshotPtr current_;
  std::uint64_t publish_count_ = 0;
};

}  // namespace er
