/// \file
/// Read-mostly store of the currently-published ModelSnapshot
/// (DESIGN.md §4).
///
/// Publish protocol: a writer (IncrementalReducer, or any pipeline driver)
/// builds a complete immutable snapshot *off to the side*, then swaps it
/// in with publish(). Readers acquire() a shared_ptr and keep answering
/// against their pinned snapshot for as long as they hold it — a publish
/// never invalidates in-flight queries, it only changes what the *next*
/// acquire returns. Old snapshots are freed by shared_ptr refcounting once
/// the last reader drops them; with copy-on-write rebuilds (DESIGN.md
/// §4.1) successive snapshots share their clean blocks' artifacts and the
/// stitched model itself, so a displaced snapshot's teardown releases only
/// the per-version state no newer snapshot aliases.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "serve/snapshot.hpp"
#include "util/thread_annotations.hpp"

namespace er {

namespace obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace obs

class ResultCache;

using SnapshotPtr = std::shared_ptr<const ModelSnapshot>;

/// Thread-safe holder of the current snapshot. All methods may be called
/// concurrently from any thread; the store never blocks on query work (the
/// critical section is a pointer swap plus O(1) bookkeeping).
///
/// Observability (DESIGN.md §6): each publish bumps
/// `er_store_publishes_total` and sets the `er_store_current_version`
/// gauge, so an exporter sees version progress without polling the probe
/// methods.
class ModelStore {
 public:
  /// Metrics go to `registry` (null = the process-wide global registry).
  explicit ModelStore(obs::MetricsRegistry* registry = nullptr);
  /// Atomically replace the current snapshot. Null snapshots are rejected.
  /// The publish instant is recorded per version (bounded log) for the
  /// age probes below.
  void publish(SnapshotPtr snapshot) ER_EXCLUDES(mutex_);

  /// The currently-published snapshot (null before the first publish).
  /// The returned pointer pins the snapshot: it stays valid and immutable
  /// however many publishes happen afterwards.
  [[nodiscard]] SnapshotPtr acquire() const ER_EXCLUDES(mutex_);

  /// Number of publish() calls so far.
  [[nodiscard]] std::uint64_t publish_count() const ER_EXCLUDES(mutex_);

  /// True once anything was published. The cheap guard in front of the
  /// probes below for writers that must distinguish "no model yet" from
  /// "serving version 0".
  [[nodiscard]] bool has_published() const ER_EXCLUDES(mutex_);

  /// Version of the currently-published snapshot, or nullopt before the
  /// first publish — the cheap monitoring probe for staleness: a reader
  /// that pinned version v runs *current_version() - v model versions
  /// behind. (The optional removes the old 0-ambiguity: version 0 is a
  /// legitimate published state — IncrementalReducer revisions start at
  /// 0 — and is now distinguishable from an empty store.)
  [[nodiscard]] std::optional<std::uint64_t> current_version() const
      ER_EXCLUDES(mutex_);

  /// Seconds since the current snapshot was published, or nullopt before
  /// the first publish — "how long since queries last saw fresh state".
  [[nodiscard]] std::optional<double> current_age_seconds() const
      ER_EXCLUDES(mutex_);

  /// Seconds since the given version was published, while it remains in
  /// the bounded publish log (the most recent kPublishLogCap publishes);
  /// nullopt when the version was never published here or has aged out.
  /// Lets a reader translate a pinned snapshot's version into wall-clock
  /// staleness without touching the updater.
  [[nodiscard]] std::optional<double> version_age_seconds(
      std::uint64_t version) const ER_EXCLUDES(mutex_);

  /// Attach a result cache (serve/result_cache.hpp): the already-current
  /// snapshot (if any) is registered immediately, and every subsequent
  /// publish() invokes the cache's carry/invalidate hook with the
  /// displaced and new snapshots. Works for *any* publisher — the
  /// IncrementalReducer / AsyncUpdater path publishes through here, so it
  /// needs no wiring of its own. Pass null to detach.
  void attach_cache(std::shared_ptr<ResultCache> cache) ER_EXCLUDES(mutex_);

  /// The attached cache (null when none). QueryFrontEnd::answer resolves
  /// this once per batch.
  [[nodiscard]] std::shared_ptr<ResultCache> cache() const
      ER_EXCLUDES(mutex_);

 private:
  /// Publish-instant retention: far beyond any realistically pinned
  /// snapshot's age, still O(1) memory over a long-lived store.
  static constexpr std::size_t kPublishLogCap = 256;

  mutable util::Mutex mutex_;
  SnapshotPtr current_ ER_GUARDED_BY(mutex_);
  std::shared_ptr<ResultCache> cache_ ER_GUARDED_BY(mutex_);
  std::uint64_t publish_count_ ER_GUARDED_BY(mutex_) = 0;
  obs::Counter* publishes_total_;  ///< registry-backed, set at construction
  obs::Gauge* current_version_gauge_;
  /// (version, publish instant) per publish, newest last; bounded by
  /// kPublishLogCap. Versions need not be monotone for generic writers —
  /// lookups scan newest-first so a republished version reports its most
  /// recent instant.
  std::deque<std::pair<std::uint64_t, std::chrono::steady_clock::time_point>>
      publish_log_ ER_GUARDED_BY(mutex_);
};

}  // namespace er
