/// \file
/// Concurrent query front-end over a ModelStore (DESIGN.md §4).
///
/// Accepts batches of port-response / effective-resistance queries in
/// *original* node ids, pins the store's current snapshot once per batch,
/// routes each query to the owning block(s) through the snapshot's
/// node->block map, and fans the batch out across a ThreadPool. Answers
/// land in per-query slots, so a batch is bit-identical at any thread
/// count.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/model_store.hpp"
#include "serve/query_policy.hpp"
#include "util/types.hpp"

namespace er {

class ResultCache;
class ThreadPool;

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// What a PortQuery asks for.
enum class QueryKind {
  kResponse,    ///< Z(p, q) = e_q^T G^{-1} e_p (transfer impedance)
  kResistance,  ///< (e_p - e_q)^T G^{-1} (e_p - e_q)
};

const char* to_string(QueryKind kind);

/// One query against the published model, in original (pre-reduction) node
/// ids. Nodes that were eliminated by the reduction answer NaN. The
/// per-query policy defaults to "no policy" — serve/query_policy.hpp —
/// under which the batch behaves exactly as before policies existed.
struct PortQuery {
  QueryKind kind = QueryKind::kResistance;
  index_t p = 0;
  index_t q = 0;
  QueryPolicy policy;
};

/// Which evaluation path answers the batch.
enum class RouteMode {
  /// Exact two-level domain decomposition: per-block interior factors plus
  /// the stitched boundary system. The default serving path.
  kSharded,
  /// One factor of the whole stitched system — the "single-model" reference
  /// the sharded path is validated against.
  kMonolithic,
  /// Same-block kResistance queries go to the resident block-local ER
  /// engine (approximate: the block is served in isolation from the rest of
  /// the grid). Everything else falls back to kSharded.
  kLocalApprox,
};

const char* to_string(RouteMode m);

/// Per-batch diagnostics, filled by answer()/answer_on() for the one
/// batch that produced them. The same figures are simultaneously streamed
/// into the metrics registry as cumulative counters and latency
/// histograms per route mode (`er_serve_*{mode=...}`,
/// `er_query_latency_seconds{mode=...}`, `er_query_batch_seconds{mode=
/// ...}` — DESIGN.md §6), so BatchStats stays the per-call view while the
/// registry carries the process-lifetime aggregates.
struct BatchStats {
  std::size_t queries = 0;
  std::size_t invalid = 0;          ///< unmapped / out-of-range endpoints
  std::size_t same_block = 0;       ///< both endpoints owned by one block
  std::size_t cross_block = 0;      ///< endpoints in different blocks
  std::size_t engine_answered = 0;  ///< *computed* by a block-local engine
  /// Result-cache figures (serve/result_cache.hpp), zero when no cache was
  /// consulted. hits + misses counts every cache probe of the batch;
  /// invalid queries are never probed or cached.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Policy figures (serve/query_policy.hpp), zero for all-default
  /// batches. A hedged query evaluates both legs; hedge_won_engine counts
  /// the ones whose block-engine leg's answer was selected.
  std::size_t deadline_miss = 0;    ///< expired before evaluation (NaN)
  std::size_t hedged = 0;           ///< queries racing two backends
  std::size_t hedge_won_engine = 0; ///< hedges won by the block engine
  std::uint64_t snapshot_version = 0;
  double seconds = 0.0;
};

/// Per-batch evaluation parameters for answer()/answer_on() — the former
/// loose parameter list of the static answer_on, folded into one value so
/// policy-era inputs (queue wait, per-query statuses) have a place to
/// live. Members are ordered like the old positional parameters, so
/// existing call sites migrate by wrapping their arguments in braces.
struct AnswerContext {
  ThreadPool* pool = nullptr;
  /// Batch-default route; each query's QueryPolicy may override it.
  RouteMode mode = RouteMode::kSharded;
  BatchStats* stats = nullptr;
  /// Metrics sink (null = the process-wide global registry).
  obs::MetricsRegistry* registry = nullptr;
  /// Consulted per its ResultCacheOptions mode knobs; may be null.
  ResultCache* cache = nullptr;
  /// Queue wait already consumed before evaluation starts, in
  /// microseconds: the value per-query deadlines are compared against.
  /// An explicit input — the compute path never reads a clock — so the
  /// same (snapshot, batch, context) always yields the same answers.
  /// Direct callers default to 0 (no wait, nothing expires).
  std::uint64_t queue_wait_us = 0;
  /// Optional per-query outcome slots (resized to the batch); null skips.
  std::vector<QueryStatus>* statuses = nullptr;
};

/// Stateless batch evaluator bound to a ModelStore. Thread-safe: any number
/// of threads may call answer() concurrently; each batch pins the snapshot
/// current at its start and is unaffected by publishes that race with it.
class QueryFrontEnd {
 public:
  /// `store` must outlive the front-end. Metrics go to `registry`
  /// (null = the process-wide global registry).
  explicit QueryFrontEnd(const ModelStore* store,
                         obs::MetricsRegistry* registry = nullptr);

  /// Answer a batch against the currently-published snapshot. Throws
  /// std::runtime_error if nothing has been published yet. When the store
  /// carries an attached ResultCache whose per-mode knob is on, answers
  /// are served from / inserted into it (bit-identical either way —
  /// DESIGN.md §4.2).
  [[nodiscard]] std::vector<real_t> answer(const std::vector<PortQuery>& batch,
                                           ThreadPool* pool = nullptr,
                                           RouteMode mode = RouteMode::kSharded,
                                           BatchStats* stats = nullptr) const;

  /// Full-context overload: like the convenience form above but with every
  /// AnswerContext field available. ctx.registry/ctx.cache default (when
  /// null) to the front-end's registry and the store's attached cache.
  [[nodiscard]] std::vector<real_t> answer(const std::vector<PortQuery>& batch,
                                           const AnswerContext& ctx) const;

  /// Answer a batch against an explicitly pinned snapshot (tests, replay).
  /// ctx.registry null means the global registry; ctx.cache (may be null)
  /// is consulted per its ResultCacheOptions mode knobs.
  [[nodiscard]] static std::vector<real_t> answer_on(
      const ModelSnapshot& snapshot, const std::vector<PortQuery>& batch,
      const AnswerContext& ctx = {});

 private:
  const ModelStore* store_;
  obs::MetricsRegistry* registry_;  ///< resolved, never null
};

}  // namespace er
