/// \file
/// Per-query serving policy (DESIGN.md §4.3).
///
/// A QueryPolicy rides on every PortQuery and lets one batch mix
/// criticalities: each query names how accurate its answer must be
/// (AccuracyTier), which backend it prefers (BackendPref), how long it was
/// willing to wait (deadline_us), and whether the front-end should hedge
/// it across two backends. The default-constructed policy reproduces the
/// pre-policy behaviour of the batch's RouteMode exactly.
///
/// Determinism: nothing in this header reads a clock. Deadline expiry is a
/// pure function of (policy.deadline_us, AnswerContext::queue_wait_us) and
/// hedge selection a pure function of (tier, the two legs' values), so
/// answers stay bit-identical at any thread count (§4.3's argument).
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace er {

/// How accurate a query's answer must be.
enum class AccuracyTier : std::uint8_t {
  /// Full two-level (or monolithic) exact solve. The default.
  kExact = 0,
  /// A block-local engine answer is acceptable when one is resident and
  /// cheap (BackendPref::kAuto consults the engine's cost_hint()).
  kApprox = 1,
  /// Latency over accuracy: like kApprox, and the preferred hedge winner.
  kFast = 2,
};

/// Which backend a query wants, before tier/eligibility resolution.
enum class BackendPref : std::uint8_t {
  /// Resolve from the accuracy tier: kExact keeps the batch's RouteMode;
  /// kApprox/kFast take a resident block engine when the query is
  /// engine-eligible and the engine's cost_hint() is under
  /// kAutoEngineCostCeiling, else the batch RouteMode's exact flavour.
  kAuto = 0,
  kSharded = 1,     ///< force the exact sharded two-level path
  kMonolithic = 2,  ///< whole-system factor; sharded when not built
  kLocalApprox = 3, ///< block-local engine; exact fallback when ineligible
};

/// Per-query serving policy. The default value is the no-policy policy:
/// no deadline, exact tier, auto backend, no hedging — bit-identical to
/// the pre-policy front-end on every route mode.
struct QueryPolicy {
  /// Queueing budget in microseconds; 0 = none. A query whose deadline is
  /// <= the batch's AnswerContext::queue_wait_us reports kDeadlineMiss
  /// (answer NaN) without being evaluated — see §4.3 for why expiry is an
  /// explicit input rather than a clock read.
  std::uint32_t deadline_us = 0;
  AccuracyTier accuracy_tier = AccuracyTier::kExact;
  BackendPref backend_pref = BackendPref::kAuto;
  /// Race the block-local engine against the exact path (both legs are
  /// evaluated; a pure selection rule picks the winner). Only engages for
  /// engine-eligible queries.
  bool hedge = false;
};

/// True when `p` asks for anything beyond the default no-policy behaviour
/// (the front-end keeps the legacy fast path for all-default batches).
[[nodiscard]] constexpr bool is_default(const QueryPolicy& p) {
  return p.deadline_us == 0 && p.accuracy_tier == AccuracyTier::kExact &&
         p.backend_pref == BackendPref::kAuto && !p.hedge;
}

/// Per-query outcome reported through AnswerContext::statuses.
enum class QueryStatus : std::uint8_t {
  kOk = 0,
  kInvalid = 1,       ///< unmapped / eliminated endpoint (answer NaN)
  kDeadlineMiss = 2,  ///< deadline expired before evaluation (answer NaN)
};

/// BackendPref::kAuto routes an engine-eligible kApprox/kFast query to the
/// resident block engine only when the engine's cost_hint() is at or under
/// this ceiling — a dense-factor "exact" block engine is not a shortcut.
inline constexpr double kAutoEngineCostCeiling = 16.0;

/// Deterministic hedge selection: which leg's answer a hedged query takes,
/// as a pure function of (tier, the engine leg's value). kExact always
/// takes the exact leg; kApprox/kFast take the engine leg whenever it
/// produced a value (non-NaN), falling back to the exact leg. Exposed so
/// tests can run a serial twin through the identical rule.
[[nodiscard]] constexpr bool hedge_prefers_engine(AccuracyTier tier,
                                                  real_t engine_value) {
  // NaN != NaN: a NaN engine leg never wins.
  return tier != AccuracyTier::kExact && engine_value == engine_value;
}

const char* to_string(AccuracyTier tier);
const char* to_string(BackendPref pref);
const char* to_string(QueryStatus status);

}  // namespace er
