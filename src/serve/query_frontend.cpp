#include "serve/query_frontend.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/result_cache.hpp"
#include "util/timer.hpp"

namespace er {

namespace {

constexpr real_t kNaN = std::numeric_limits<real_t>::quiet_NaN();

/// Per-route-mode registry handles, resolved once per batch (registration
/// is get-or-create, so repeated batches hit the same series). Recording
/// through them is lock-free.
struct ServeMetrics {
  obs::Counter& batches;
  obs::Counter& queries;
  obs::Counter& invalid;
  obs::Counter& same_block;
  obs::Counter& cross_block;
  obs::Counter& engine_answered;
  obs::Histogram& query_latency;
  obs::Histogram& batch_seconds;
};

ServeMetrics serve_metrics(obs::MetricsRegistry& reg, RouteMode mode) {
  const obs::Labels labels{{"mode", to_string(mode)}};
  return ServeMetrics{
      reg.counter("er_serve_batches_total", labels,
                  "Query batches answered"),
      reg.counter("er_serve_queries_total", labels, "Queries answered"),
      reg.counter("er_serve_invalid_queries_total", labels,
                  "Queries with unmapped/eliminated endpoints (answer NaN)"),
      reg.counter("er_serve_same_block_queries_total", labels,
                  "Queries with both endpoints in one block"),
      reg.counter("er_serve_cross_block_queries_total", labels,
                  "Queries spanning two blocks"),
      reg.counter("er_serve_engine_answered_total", labels,
                  "Queries served by a resident block-local engine"),
      reg.histogram("er_query_latency_seconds", labels,
                    "Per-query wall-clock latency (compute only; queue "
                    "wait is er_pool_task_queue_wait_seconds)"),
      reg.histogram("er_query_batch_seconds", labels,
                    "Whole-batch wall-clock latency"),
  };
}

/// er_policy_* registry handles (DESIGN.md §4.3). Resolved once per batch
/// like ServeMetrics, so the families register — and therefore export —
/// even for batches where every query carries the default policy.
struct PolicyMetrics {
  obs::Counter* served[3];     ///< queries answered, by accuracy tier
  obs::Histogram* latency[3];  ///< per-query compute latency, by tier
  obs::Counter& hedges_engine;
  obs::Counter& hedges_exact;
  obs::Counter& deadline_miss;
};

PolicyMetrics policy_metrics(obs::MetricsRegistry& reg) {
  PolicyMetrics m{
      {nullptr, nullptr, nullptr},
      {nullptr, nullptr, nullptr},
      reg.counter("er_policy_hedges_total",
                  {{"winner", to_string(BackendPref::kLocalApprox)}},
                  "Hedged queries won, by backend"),
      reg.counter("er_policy_hedges_total",
                  {{"winner", to_string(BackendPref::kSharded)}},
                  "Hedged queries won, by backend"),
      reg.counter("er_policy_deadline_miss_total", {},
                  "Queries whose deadline expired before evaluation"),
  };
  for (int t = 0; t < 3; ++t) {
    const auto tier = static_cast<AccuracyTier>(t);
    const obs::Labels labels{{"tier", to_string(tier)}};
    m.served[t] = &reg.counter("er_policy_served_total", labels,
                               "Queries answered, by accuracy tier");
    m.latency[t] = &reg.histogram("er_policy_latency_seconds", labels,
                                  "Per-query compute latency, by tier");
  }
  return m;
}

int tier_index(const QueryPolicy& pol) {
  return std::min(static_cast<int>(pol.accuracy_tier), 2);
}

/// Evaluate one query on the exact paths (sharded or monolithic), given
/// its already-validated reduced endpoints. A pure per-query function of
/// (snapshot, kind, p, q) — the property that makes the answer cacheable.
real_t answer_exact(const ModelSnapshot& snap, QueryKind kind, index_t p,
                    index_t q, bool monolithic,
                    ModelSnapshot::Workspace& ws) {
  if (kind == QueryKind::kResponse)
    return monolithic ? snap.response_monolithic(p, q, ws)
                      : snap.response(p, q, ws);
  return monolithic ? snap.resistance_monolithic(p, q, ws)
                    : snap.resistance(p, q, ws);
}

/// Whether a ResultCache configured with `opts` serves batches of `mode`.
bool cache_serves_mode(const ResultCacheOptions& opts, RouteMode mode) {
  switch (mode) {
    case RouteMode::kSharded:
      return opts.cache_sharded;
    case RouteMode::kMonolithic:
      return opts.cache_monolithic;
    case RouteMode::kLocalApprox:
      return opts.cache_local_approx;
  }
  return false;
}

/// One query's resolved evaluation plan (serial pre-pass output).
struct QueryPlan {
  bool engine = false;      ///< evaluate the block-engine leg
  bool exact = false;       ///< evaluate the exact leg
  bool monolithic = false;  ///< exact leg uses the whole-system factor
  bool hedged = false;      ///< both legs run; selection picks the winner
};

/// Resolve one query's policy against the batch route. A pure function of
/// (policy, batch mode, engine eligibility, engine cost, factor
/// availability) — no clocks, no shared state — which is what keeps
/// policied batches bit-identical at any thread count (DESIGN.md §4.3).
QueryPlan resolve_policy(const QueryPolicy& pol, RouteMode batch_mode,
                         bool engine_eligible, double engine_cost,
                         bool has_monolithic) {
  RouteMode route = batch_mode;
  switch (pol.backend_pref) {
    case BackendPref::kAuto:
      // kExact keeps the batch route — the pre-policy semantics, including
      // kLocalApprox batches. Reduced tiers may divert to a resident block
      // engine when it advertises itself as cheap.
      if (pol.accuracy_tier != AccuracyTier::kExact && engine_eligible &&
          engine_cost <= kAutoEngineCostCeiling)
        route = RouteMode::kLocalApprox;
      break;
    case BackendPref::kSharded:
      route = RouteMode::kSharded;
      break;
    case BackendPref::kMonolithic:
      // Per-query preference degrades to sharded when the whole-system
      // factor was not built (a batch-level kMonolithic still throws).
      route = has_monolithic ? RouteMode::kMonolithic : RouteMode::kSharded;
      break;
    case BackendPref::kLocalApprox:
      route = RouteMode::kLocalApprox;
      break;
  }
  QueryPlan plan;
  plan.monolithic = route == RouteMode::kMonolithic;
  plan.engine = route == RouteMode::kLocalApprox && engine_eligible;
  plan.hedged = pol.hedge && engine_eligible;
  if (plan.hedged) {
    plan.engine = true;
    plan.exact = true;
  } else {
    plan.exact = !plan.engine;
  }
  return plan;
}

}  // namespace

const char* to_string(RouteMode m) {
  switch (m) {
    case RouteMode::kSharded:
      return "sharded";
    case RouteMode::kMonolithic:
      return "monolithic";
    case RouteMode::kLocalApprox:
      return "local-approx";
  }
  return "?";
}

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kResponse:
      return "response";
    case QueryKind::kResistance:
      return "resistance";
  }
  return "?";
}

const char* to_string(AccuracyTier tier) {
  switch (tier) {
    case AccuracyTier::kExact:
      return "exact";
    case AccuracyTier::kApprox:
      return "approx";
    case AccuracyTier::kFast:
      return "fast";
  }
  return "?";
}

const char* to_string(BackendPref pref) {
  switch (pref) {
    case BackendPref::kAuto:
      return "auto";
    case BackendPref::kSharded:
      return "sharded";
    case BackendPref::kMonolithic:
      return "monolithic";
    case BackendPref::kLocalApprox:
      return "local-approx";
  }
  return "?";
}

const char* to_string(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk:
      return "ok";
    case QueryStatus::kInvalid:
      return "invalid";
    case QueryStatus::kDeadlineMiss:
      return "deadline-miss";
  }
  return "?";
}

QueryFrontEnd::QueryFrontEnd(const ModelStore* store,
                             obs::MetricsRegistry* registry)
    : store_(store), registry_(&obs::registry_or_global(registry)) {
  if (!store_)
    throw std::invalid_argument("QueryFrontEnd: null ModelStore");
}

std::vector<real_t> QueryFrontEnd::answer(const std::vector<PortQuery>& batch,
                                          ThreadPool* pool, RouteMode mode,
                                          BatchStats* stats) const {
  AnswerContext ctx;
  ctx.pool = pool;
  ctx.mode = mode;
  ctx.stats = stats;
  return answer(batch, ctx);
}

std::vector<real_t> QueryFrontEnd::answer(const std::vector<PortQuery>& batch,
                                          const AnswerContext& ctx) const {
  // Pin the snapshot once: the whole batch is answered against one model
  // version, however many publishes race with it. The cache handle is
  // pinned the same way (shared ownership for the batch's duration).
  const SnapshotPtr snap = store_->acquire();
  if (!snap)
    throw std::runtime_error("QueryFrontEnd::answer: nothing published yet");
  const ResultCachePtr cache = store_->cache();
  AnswerContext resolved = ctx;
  if (!resolved.registry) resolved.registry = registry_;
  if (!resolved.cache) resolved.cache = cache.get();
  return answer_on(*snap, batch, resolved);
}

std::vector<real_t> QueryFrontEnd::answer_on(const ModelSnapshot& snap,
                                             const std::vector<PortQuery>& batch,
                                             const AnswerContext& ctx) {
  Timer timer;
  obs::MetricsRegistry& reg = obs::registry_or_global(ctx.registry);
  ServeMetrics metrics = serve_metrics(reg, ctx.mode);
  PolicyMetrics policy = policy_metrics(reg);
  const RouteMode mode = ctx.mode;
  ThreadPool* pool = ctx.pool;
  ResultCache* cache = ctx.cache;
  const auto n = static_cast<index_t>(batch.size());
  std::vector<real_t> out(batch.size(), 0.0);
  std::atomic<std::size_t> invalid{0}, same_block{0}, cross_block{0},
      engine_answered{0}, cache_hits{0}, cache_misses{0};

  // Resolve the snapshot version's cache scopes once per batch (the view
  // is immutable). An unresolvable version — cache detached, mode knob
  // off, or the version aged past the cache's version_cap — degrades to
  // the plain compute path; answers are bitwise identical either way
  // because every cached value is a pure per-query function of the
  // snapshot state its scope pins (DESIGN.md §4.2). Entries are keyed by
  // the requesting query's accuracy tier on top of (path, kind, p, q), so
  // a reduced-tier answer can never serve an exact-tier probe (§4.3).
  ResultCache::ScopeViewPtr scopes;
  if (cache && cache_serves_mode(cache->options(), mode))
    scopes = cache->scopes_for(snap.version());

  // A batch where every query carries the default policy takes the exact
  // pre-policy paths (no per-query plans, no selection pass).
  bool policied = false;
  for (const PortQuery& query : batch)
    if (!is_default(query.policy)) {
      policied = true;
      break;
    }
  if (ctx.statuses) ctx.statuses->assign(batch.size(), QueryStatus::kOk);

  // Per-query control state, filled by the serial pre-pass. Empty vectors
  // mean "everything default": pending empty = every query takes the
  // exact path with the batch-level monolithic flag, hedged_flags empty =
  // no hedges. Every per-query write below lands in its own slot, so the
  // fan-outs stay bit-deterministic at any thread count.
  std::vector<char> pending;       // 1 = query needs the exact leg
  std::vector<char> exact_mono;    // 1 = exact leg uses the monolithic factor
  std::vector<char> hedged_flags;  // 1 = both legs run, selection picks
  std::vector<real_t> hedge_engine, hedge_exact;  // per-leg answer slots
  std::size_t misses = 0;
  bool any_hedge = false;

  // Engine phase: serial pre-pass resolves each query's plan (deadline,
  // route, hedge), probes the block-scope cache, and buckets engine-leg
  // queries by owning block; the buckets then fan out across the pool —
  // every bucket writes disjoint slots. Runs for kLocalApprox batches (the
  // pre-policy fast path) and for any batch carrying explicit policies.
  if (mode == RouteMode::kLocalApprox || policied) {
    pending.assign(batch.size(), 0);
    if (policied) {
      exact_mono.assign(batch.size(),
                        mode == RouteMode::kMonolithic ? 1 : 0);
      hedged_flags.assign(batch.size(), 0);
    }
    const bool has_mono = snap.has_monolithic_factor();
    std::vector<std::vector<index_t>> bucket(
        static_cast<std::size_t>(snap.num_blocks()));
    for (index_t i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      const PortQuery& query = batch[ui];
      const QueryPolicy& pol = query.policy;
      if (pol.deadline_us > 0 &&
          static_cast<std::uint64_t>(pol.deadline_us) <= ctx.queue_wait_us) {
        // Expired before evaluation: answer NaN without computing or
        // probing the cache. Purely a function of (policy, queue_wait_us),
        // so the miss set is identical on every replay of the batch.
        Timer query_timer;
        out[ui] = kNaN;
        ++misses;
        if (ctx.statuses) (*ctx.statuses)[ui] = QueryStatus::kDeadlineMiss;
        metrics.query_latency.record(query_timer.seconds());
        continue;
      }
      const index_t p = snap.reduced_id(query.p);
      const index_t q = snap.reduced_id(query.q);
      const bool eligible = p >= 0 && q >= 0 &&
                            query.kind == QueryKind::kResistance &&
                            snap.block_of_reduced(p) ==
                                snap.block_of_reduced(q) &&
                            snap.block_engine(snap.block_of_reduced(p));
      QueryPlan plan;
      if (policied) {
        const double cost =
            eligible
                ? snap.block_engine(snap.block_of_reduced(p))->cost_hint()
                : 0.0;
        plan = resolve_policy(pol, mode, eligible, cost, has_mono);
        pending[ui] = plan.exact ? 1 : 0;
        exact_mono[ui] = plan.monolithic ? 1 : 0;
        hedged_flags[ui] = plan.hedged ? 1 : 0;
        if (plan.hedged && !any_hedge) {
          any_hedge = true;
          hedge_engine.assign(batch.size(), kNaN);
          hedge_exact.assign(batch.size(), kNaN);
        }
      } else {
        plan.engine = eligible;
        plan.exact = !eligible;
        pending[ui] = plan.exact ? 1 : 0;
      }
      if (!plan.engine) continue;
      const auto b = static_cast<std::size_t>(snap.block_of_reduced(p));
      if (scopes && b < scopes->block_scopes.size()) {
        Timer query_timer;
        real_t cached = 0.0;
        if (cache->lookup(scopes->block_scopes[b],
                          ResultCache::Path::kEngine, query.kind,
                          pol.accuracy_tier, query.p, query.q, &cached)) {
          (plan.hedged ? hedge_engine : out)[ui] = cached;
          metrics.query_latency.record(query_timer.seconds());
          if (policied)
            policy.latency[tier_index(pol)]->record(query_timer.seconds());
          ++cache_hits;
          ++same_block;
          continue;
        }
        ++cache_misses;
      }
      bucket[b].push_back(i);
    }
    parallel_for(pool, 0, snap.num_blocks(), 1, [&](index_t lo, index_t hi) {
      for (index_t b = lo; b < hi; ++b) {
        const auto& ids = bucket[static_cast<std::size_t>(b)];
        if (ids.empty()) continue;
        std::vector<ResistanceQuery> local;
        local.reserve(ids.size());
        for (index_t i : ids) {
          const PortQuery& query = batch[static_cast<std::size_t>(i)];
          local.emplace_back(
              snap.block_local_id(snap.reduced_id(query.p)),
              snap.block_local_id(snap.reduced_id(query.q)));
        }
        std::vector<real_t> answers(local.size(), 0.0);
        Timer bucket_timer;
        snap.block_engine(b)->resistances_into(local, answers);
        // The engine answers the bucket as one batched solve; attribute
        // the mean per-query share to each query's latency sample. Cache
        // hits shrinking the bucket cannot change the remaining answers:
        // every engine answers each (p, q) independently of its batch
        // neighbours (see effres/engine.hpp's per-slot contract; the
        // index-seeded RandomWalk engine is never a block engine).
        const double per_query =
            bucket_timer.seconds() / static_cast<double>(local.size());
        for (std::size_t j = 0; j < ids.size(); ++j) {
          const auto qi = static_cast<std::size_t>(ids[j]);
          const PortQuery& query = batch[qi];
          const bool hedge_leg =
              !hedged_flags.empty() && hedged_flags[qi] != 0;
          (hedge_leg ? hedge_engine : out)[qi] = answers[j];
          metrics.query_latency.record(per_query);
          if (policied)
            policy.latency[tier_index(query.policy)]->record(per_query);
          if (scopes &&
              b < static_cast<index_t>(scopes->block_scopes.size())) {
            cache->insert(
                scopes->block_scopes[static_cast<std::size_t>(b)],
                ResultCache::Path::kEngine, query.kind,
                query.policy.accuracy_tier, query.p, query.q, answers[j]);
          }
        }
        same_block += ids.size();
        engine_answered += ids.size();
      }
    });
  }

  // Exact paths, chunked across the pool with one workspace per chunk.
  // Fallback queries of a kLocalApprox batch cache under Path::kExact —
  // the same compute function a kSharded batch runs, so the two modes
  // legitimately share entries within a version. Hedged queries land in
  // their hedge_exact slot and skip the per-query latency sample (their
  // engine leg already recorded the query's one sample).
  const bool monolithic = mode == RouteMode::kMonolithic;
  parallel_for(pool, 0, n, kBatchQueryGrain, [&](index_t lo, index_t hi) {
    ModelSnapshot::Workspace ws;
    std::size_t inv = 0, same = 0, cross = 0, hits = 0, missed = 0;
    for (index_t i = lo; i < hi; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (!pending.empty() && !pending[ui]) continue;
      const PortQuery& query = batch[ui];
      const bool hedge_leg = !hedged_flags.empty() && hedged_flags[ui] != 0;
      Timer query_timer;
      const index_t p = snap.reduced_id(query.p);
      const index_t q = snap.reduced_id(query.q);
      if (p < 0 || q < 0) {
        // Invalid endpoints answer NaN and are never probed or cached —
        // they carry no compute worth saving. (Hedged queries are always
        // engine-eligible, hence never invalid.)
        ++inv;
        out[ui] = kNaN;
        if (ctx.statuses) (*ctx.statuses)[ui] = QueryStatus::kInvalid;
        metrics.query_latency.record(query_timer.seconds());
        continue;
      }
      if (!hedge_leg) {
        if (snap.block_of_reduced(p) == snap.block_of_reduced(q))
          ++same;
        else
          ++cross;
      }
      const bool q_mono =
          exact_mono.empty() ? monolithic : exact_mono[ui] != 0;
      const ResultCache::Path exact_path =
          q_mono ? ResultCache::Path::kMonolithic : ResultCache::Path::kExact;
      real_t value = 0.0;
      if (scopes && cache->lookup(scopes->exact_scope, exact_path,
                                  query.kind, query.policy.accuracy_tier,
                                  query.p, query.q, &value)) {
        ++hits;
      } else {
        value = answer_exact(snap, query.kind, p, q, q_mono, ws);
        if (scopes) {
          ++missed;
          cache->insert(scopes->exact_scope, exact_path, query.kind,
                        query.policy.accuracy_tier, query.p, query.q, value);
        }
      }
      (hedge_leg ? hedge_exact : out)[ui] = value;
      if (!hedge_leg) {
        metrics.query_latency.record(query_timer.seconds());
        if (policied)
          policy.latency[tier_index(query.policy)]->record(
              query_timer.seconds());
      }
    }
    invalid += inv;
    same_block += same;
    cross_block += cross;
    cache_hits += hits;
    cache_misses += missed;
  });

  // Selection + per-tier tallies (serial): for each hedged query pick the
  // winning leg with the pure rule in serve/query_policy.hpp — a function
  // of (tier, the legs' values) only, never of completion order — so the
  // selected answers are bitwise identical to a serial twin evaluating
  // both backends.
  std::size_t hedged_count = 0, hedge_engine_wins = 0;
  std::size_t served[3] = {0, 0, 0};
  if (policied) {
    for (index_t i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (ctx.statuses && (*ctx.statuses)[ui] != QueryStatus::kOk) continue;
      const PortQuery& query = batch[ui];
      if (!hedged_flags.empty() && hedged_flags[ui] != 0) {
        const bool engine_wins = hedge_prefers_engine(
            query.policy.accuracy_tier, hedge_engine[ui]);
        out[ui] = engine_wins ? hedge_engine[ui] : hedge_exact[ui];
        ++hedged_count;
        if (engine_wins) ++hedge_engine_wins;
      }
      if (out[ui] == out[ui])  // served = answered with a value (non-NaN)
        ++served[tier_index(query.policy)];
    }
  } else {
    served[0] = batch.size() - invalid.load() - misses;
  }

  const double batch_seconds = timer.seconds();
  metrics.batches.add(1);
  metrics.queries.add(batch.size());
  metrics.invalid.add(invalid.load());
  metrics.same_block.add(same_block.load());
  metrics.cross_block.add(cross_block.load());
  metrics.engine_answered.add(engine_answered.load());
  metrics.batch_seconds.record(batch_seconds);
  for (int t = 0; t < 3; ++t) policy.served[t]->add(served[t]);
  policy.deadline_miss.add(misses);
  policy.hedges_engine.add(hedge_engine_wins);
  policy.hedges_exact.add(hedged_count - hedge_engine_wins);
  if (ctx.stats) {
    BatchStats* stats = ctx.stats;
    stats->queries = batch.size();
    stats->invalid = invalid.load();
    stats->same_block = same_block.load();
    stats->cross_block = cross_block.load();
    stats->engine_answered = engine_answered.load();
    stats->cache_hits = cache_hits.load();
    stats->cache_misses = cache_misses.load();
    stats->deadline_miss = misses;
    stats->hedged = hedged_count;
    stats->hedge_won_engine = hedge_engine_wins;
    stats->snapshot_version = snap.version();
    stats->seconds = batch_seconds;
  }
  return out;
}

}  // namespace er
