#include "serve/query_frontend.hpp"

#include <atomic>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/result_cache.hpp"
#include "util/timer.hpp"

namespace er {

namespace {

constexpr real_t kNaN = std::numeric_limits<real_t>::quiet_NaN();

/// Per-route-mode registry handles, resolved once per batch (registration
/// is get-or-create, so repeated batches hit the same series). Recording
/// through them is lock-free.
struct ServeMetrics {
  obs::Counter& batches;
  obs::Counter& queries;
  obs::Counter& invalid;
  obs::Counter& same_block;
  obs::Counter& cross_block;
  obs::Counter& engine_answered;
  obs::Histogram& query_latency;
  obs::Histogram& batch_seconds;
};

ServeMetrics serve_metrics(obs::MetricsRegistry& reg, RouteMode mode) {
  const obs::Labels labels{{"mode", to_string(mode)}};
  return ServeMetrics{
      reg.counter("er_serve_batches_total", labels,
                  "Query batches answered"),
      reg.counter("er_serve_queries_total", labels, "Queries answered"),
      reg.counter("er_serve_invalid_queries_total", labels,
                  "Queries with unmapped/eliminated endpoints (answer NaN)"),
      reg.counter("er_serve_same_block_queries_total", labels,
                  "Queries with both endpoints in one block"),
      reg.counter("er_serve_cross_block_queries_total", labels,
                  "Queries spanning two blocks"),
      reg.counter("er_serve_engine_answered_total", labels,
                  "Queries served by a resident block-local engine"),
      reg.histogram("er_query_latency_seconds", labels,
                    "Per-query wall-clock latency (compute only; queue "
                    "wait is er_pool_task_queue_wait_seconds)"),
      reg.histogram("er_query_batch_seconds", labels,
                    "Whole-batch wall-clock latency"),
  };
}

/// Evaluate one query on the exact paths (sharded or monolithic), given
/// its already-validated reduced endpoints. A pure per-query function of
/// (snapshot, kind, p, q) — the property that makes the answer cacheable.
real_t answer_exact(const ModelSnapshot& snap, QueryKind kind, index_t p,
                    index_t q, bool monolithic,
                    ModelSnapshot::Workspace& ws) {
  if (kind == QueryKind::kResponse)
    return monolithic ? snap.response_monolithic(p, q, ws)
                      : snap.response(p, q, ws);
  return monolithic ? snap.resistance_monolithic(p, q, ws)
                    : snap.resistance(p, q, ws);
}

/// Whether a ResultCache configured with `opts` serves batches of `mode`.
bool cache_serves_mode(const ResultCacheOptions& opts, RouteMode mode) {
  switch (mode) {
    case RouteMode::kSharded:
      return opts.cache_sharded;
    case RouteMode::kMonolithic:
      return opts.cache_monolithic;
    case RouteMode::kLocalApprox:
      return opts.cache_local_approx;
  }
  return false;
}

}  // namespace

const char* to_string(RouteMode m) {
  switch (m) {
    case RouteMode::kSharded:
      return "sharded";
    case RouteMode::kMonolithic:
      return "monolithic";
    case RouteMode::kLocalApprox:
      return "local-approx";
  }
  return "?";
}

QueryFrontEnd::QueryFrontEnd(const ModelStore* store,
                             obs::MetricsRegistry* registry)
    : store_(store), registry_(&obs::registry_or_global(registry)) {
  if (!store_)
    throw std::invalid_argument("QueryFrontEnd: null ModelStore");
}

std::vector<real_t> QueryFrontEnd::answer(const std::vector<PortQuery>& batch,
                                          ThreadPool* pool, RouteMode mode,
                                          BatchStats* stats) const {
  // Pin the snapshot once: the whole batch is answered against one model
  // version, however many publishes race with it. The cache handle is
  // pinned the same way (shared ownership for the batch's duration).
  const SnapshotPtr snap = store_->acquire();
  if (!snap)
    throw std::runtime_error("QueryFrontEnd::answer: nothing published yet");
  const ResultCachePtr cache = store_->cache();
  return answer_on(*snap, batch, pool, mode, stats, registry_, cache.get());
}

std::vector<real_t> QueryFrontEnd::answer_on(const ModelSnapshot& snap,
                                             const std::vector<PortQuery>& batch,
                                             ThreadPool* pool, RouteMode mode,
                                             BatchStats* stats,
                                             obs::MetricsRegistry* registry,
                                             ResultCache* cache) {
  Timer timer;
  ServeMetrics metrics =
      serve_metrics(obs::registry_or_global(registry), mode);
  const auto n = static_cast<index_t>(batch.size());
  std::vector<real_t> out(batch.size(), 0.0);
  std::atomic<std::size_t> invalid{0}, same_block{0}, cross_block{0},
      engine_answered{0}, cache_hits{0}, cache_misses{0};

  // Resolve the snapshot version's cache scopes once per batch (the view
  // is immutable). An unresolvable version — cache detached, mode knob
  // off, or the version aged past the cache's version_cap — degrades to
  // the plain compute path; answers are bitwise identical either way
  // because every cached value is a pure per-query function of the
  // snapshot state its scope pins (DESIGN.md §4.2).
  ResultCache::ScopeViewPtr scopes;
  if (cache && cache_serves_mode(cache->options(), mode))
    scopes = cache->scopes_for(snap.version());

  // The block-local fast path routes same-block resistance queries to the
  // block's resident engine; everything else (responses, cross-block,
  // engineless blocks) takes the exact sharded path below.
  std::vector<char> pending;
  if (mode == RouteMode::kLocalApprox) {
    pending.assign(batch.size(), 0);
    // Bucket engine-eligible queries by owning block, then fan the blocks
    // out across the pool: every bucket writes disjoint out[] slots.
    // Cache probes happen here (serially, before the fan-out): an engine
    // entry is keyed by its block's scope — carried across publishes while
    // the block's artifact stays aliased — so a hit skips the bucket
    // entirely.
    std::vector<std::vector<index_t>> bucket(
        static_cast<std::size_t>(snap.num_blocks()));
    for (index_t i = 0; i < n; ++i) {
      const PortQuery& query = batch[static_cast<std::size_t>(i)];
      const index_t p = snap.reduced_id(query.p);
      const index_t q = snap.reduced_id(query.q);
      const bool eligible = p >= 0 && q >= 0 &&
                            query.kind == QueryKind::kResistance &&
                            snap.block_of_reduced(p) ==
                                snap.block_of_reduced(q) &&
                            snap.block_engine(snap.block_of_reduced(p));
      if (!eligible) {
        pending[static_cast<std::size_t>(i)] = 1;
        continue;
      }
      const auto b = static_cast<std::size_t>(snap.block_of_reduced(p));
      if (scopes && b < scopes->block_scopes.size()) {
        Timer query_timer;
        real_t cached = 0.0;
        if (cache->lookup(scopes->block_scopes[b],
                          ResultCache::Path::kEngine, query.kind, query.p,
                          query.q, &cached)) {
          out[static_cast<std::size_t>(i)] = cached;
          metrics.query_latency.record(query_timer.seconds());
          ++cache_hits;
          ++same_block;
          continue;
        }
        ++cache_misses;
      }
      bucket[b].push_back(i);
    }
    parallel_for(pool, 0, snap.num_blocks(), 1, [&](index_t lo, index_t hi) {
      for (index_t b = lo; b < hi; ++b) {
        const auto& ids = bucket[static_cast<std::size_t>(b)];
        if (ids.empty()) continue;
        std::vector<ResistanceQuery> local;
        local.reserve(ids.size());
        for (index_t i : ids) {
          const PortQuery& query = batch[static_cast<std::size_t>(i)];
          local.emplace_back(
              snap.block_local_id(snap.reduced_id(query.p)),
              snap.block_local_id(snap.reduced_id(query.q)));
        }
        std::vector<real_t> answers(local.size(), 0.0);
        Timer bucket_timer;
        snap.block_engine(b)->resistances_into(local, answers);
        // The engine answers the bucket as one batched solve; attribute
        // the mean per-query share to each query's latency sample. Cache
        // hits shrinking the bucket cannot change the remaining answers:
        // every engine answers each (p, q) independently of its batch
        // neighbours (see effres/engine.hpp's per-slot contract; the
        // index-seeded RandomWalk engine is never a block engine).
        const double per_query =
            bucket_timer.seconds() / static_cast<double>(local.size());
        for (std::size_t j = 0; j < ids.size(); ++j) {
          out[static_cast<std::size_t>(ids[j])] = answers[j];
          metrics.query_latency.record(per_query);
          if (scopes &&
              b < static_cast<index_t>(scopes->block_scopes.size())) {
            const PortQuery& query =
                batch[static_cast<std::size_t>(ids[j])];
            cache->insert(
                scopes->block_scopes[static_cast<std::size_t>(b)],
                ResultCache::Path::kEngine, query.kind, query.p, query.q,
                answers[j]);
          }
        }
        same_block += ids.size();
        engine_answered += ids.size();
      }
    });
  }

  // Exact paths, chunked across the pool with one workspace per chunk.
  // kLocalApprox fallback queries cache under Path::kExact — the same
  // compute function a kSharded batch runs, so the two modes legitimately
  // share entries within a version.
  const bool monolithic = mode == RouteMode::kMonolithic;
  const ResultCache::Path exact_path =
      monolithic ? ResultCache::Path::kMonolithic : ResultCache::Path::kExact;
  parallel_for(pool, 0, n, kBatchQueryGrain, [&](index_t lo, index_t hi) {
    ModelSnapshot::Workspace ws;
    std::size_t inv = 0, same = 0, cross = 0, hits = 0, missed = 0;
    for (index_t i = lo; i < hi; ++i) {
      if (!pending.empty() && !pending[static_cast<std::size_t>(i)]) continue;
      const PortQuery& query = batch[static_cast<std::size_t>(i)];
      Timer query_timer;
      const index_t p = snap.reduced_id(query.p);
      const index_t q = snap.reduced_id(query.q);
      if (p < 0 || q < 0) {
        // Invalid endpoints answer NaN and are never probed or cached —
        // they carry no compute worth saving.
        ++inv;
        out[static_cast<std::size_t>(i)] = kNaN;
        metrics.query_latency.record(query_timer.seconds());
        continue;
      }
      if (snap.block_of_reduced(p) == snap.block_of_reduced(q))
        ++same;
      else
        ++cross;
      real_t value = 0.0;
      if (scopes && cache->lookup(scopes->exact_scope, exact_path,
                                  query.kind, query.p, query.q, &value)) {
        ++hits;
      } else {
        value = answer_exact(snap, query.kind, p, q, monolithic, ws);
        if (scopes) {
          ++missed;
          cache->insert(scopes->exact_scope, exact_path, query.kind,
                        query.p, query.q, value);
        }
      }
      out[static_cast<std::size_t>(i)] = value;
      metrics.query_latency.record(query_timer.seconds());
    }
    invalid += inv;
    same_block += same;
    cross_block += cross;
    cache_hits += hits;
    cache_misses += missed;
  });

  const double batch_seconds = timer.seconds();
  metrics.batches.add(1);
  metrics.queries.add(batch.size());
  metrics.invalid.add(invalid.load());
  metrics.same_block.add(same_block.load());
  metrics.cross_block.add(cross_block.load());
  metrics.engine_answered.add(engine_answered.load());
  metrics.batch_seconds.record(batch_seconds);
  if (stats) {
    stats->queries = batch.size();
    stats->invalid = invalid.load();
    stats->same_block = same_block.load();
    stats->cross_block = cross_block.load();
    stats->engine_answered = engine_answered.load();
    stats->cache_hits = cache_hits.load();
    stats->cache_misses = cache_misses.load();
    stats->snapshot_version = snap.version();
    stats->seconds = batch_seconds;
  }
  return out;
}

}  // namespace er
