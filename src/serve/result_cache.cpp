#include "serve/result_cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace er {

namespace {

/// Smallest power of two >= v (v clamped into [1, 2^20]).
std::size_t pow2_at_least(std::size_t v) {
  v = std::max<std::size_t>(1, std::min<std::size_t>(v, std::size_t{1} << 20));
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::size_t ResultCache::KeyHash::operator()(const Key& k) const {
  // mix_seed is the repo's deterministic 64-bit mixer; fold every field so
  // stripes load-balance even when scopes are dense small integers.
  const std::uint64_t pq = (static_cast<std::uint64_t>(
                                static_cast<std::uint32_t>(k.p))
                            << 32) |
                           static_cast<std::uint32_t>(k.q);
  return static_cast<std::size_t>(
      mix_seed(k.scope ^ (std::uint64_t{k.tag} << 56), pq));
}

ResultCache::ResultCache(const ResultCacheOptions& opts,
                         obs::MetricsRegistry* registry)
    : opts_(opts) {
  const std::size_t nshards = pow2_at_least(opts_.shards);
  shards_.reserve(nshards);
  for (std::size_t s = 0; s < nshards; ++s)
    shards_.push_back(std::make_unique<Shard>());
  // The tighter of the entry and byte bounds, split across stripes. At
  // least one entry per shard so a tiny bound still caches something.
  const std::size_t cap = std::min(
      opts_.max_entries, std::max<std::size_t>(1, opts_.max_bytes) /
                             kEntryBytes);
  shard_cap_entries_ = std::max<std::size_t>(1, cap / nshards);

  obs::MetricsRegistry& reg = obs::registry_or_global(registry);
  hits_total_ = &reg.counter("er_cache_hits_total", {},
                             "Result-cache lookups answered from cache");
  misses_total_ = &reg.counter("er_cache_misses_total", {},
                               "Result-cache lookups that recomputed");
  evictions_total_ =
      &reg.counter("er_cache_evictions_total", {},
                   "Entries dropped by the per-shard LRU capacity bound");
  invalidations_total_ = &reg.counter(
      "er_cache_invalidations_total", {},
      "Entries dropped at publish (dirty-block or aged-out scopes)");
  entries_gauge_ =
      &reg.gauge("er_cache_entries", {}, "Resident result-cache entries");
  bytes_gauge_ = &reg.gauge("er_cache_bytes", {},
                            "Estimated resident result-cache bytes");
  hit_latency_ =
      &reg.histogram("er_cache_hit_latency_seconds", {},
                     "Wall-clock latency of lookups that hit");
}

ResultCache::Shard& ResultCache::shard_for(const Key& key) {
  // shards_.size() is a power of two; reuse the key hash's top bits so the
  // stripe choice and the in-shard bucket choice stay decorrelated.
  const std::size_t h = KeyHash{}(key);
  return *shards_[(h >> 17) & (shards_.size() - 1)];
}

void ResultCache::on_publish(const ModelSnapshot* previous,
                             const ModelSnapshot& next) {
  std::vector<std::uint64_t> live;
  {
    util::MutexLock lock(&scope_mutex_);
    const ScopeView* prev_view = nullptr;
    if (previous) {
      for (const auto& [version, view] : versions_)
        if (version == previous->version()) prev_view = view.get();
    }
    auto view = std::make_shared<ScopeView>();
    view->exact_scope = next_scope_++;
    const auto nb = static_cast<std::size_t>(next.num_blocks());
    view->block_scopes.resize(nb);
    for (std::size_t b = 0; b < nb; ++b) {
      // Pointer identity of the CoW artifact is the carry test: aliased
      // (clean) blocks keep their scope — every cached engine answer of
      // the block stays reachable under the new version — while rebuilt
      // (dirty) blocks scope fresh. Both snapshots are alive here, so
      // equal pointers can only mean genuinely shared state.
      const bool carried =
          prev_view && b < prev_view->block_scopes.size() &&
          previous->block_artifact(static_cast<index_t>(b)) ==
              next.block_artifact(static_cast<index_t>(b));
      view->block_scopes[b] =
          carried ? prev_view->block_scopes[b] : next_scope_++;
    }
    // Re-registering a version replaces it (generic writers may republish
    // a version number; newest registration wins, matching the store).
    versions_.erase(std::remove_if(versions_.begin(), versions_.end(),
                                   [&](const auto& entry) {
                                     return entry.first == next.version();
                                   }),
                    versions_.end());
    versions_.emplace_back(next.version(), std::move(view));
    const std::size_t cap = std::max<std::size_t>(1, opts_.version_cap);
    if (versions_.size() > cap)
      versions_.erase(versions_.begin(),
                      versions_.begin() +
                          static_cast<std::ptrdiff_t>(versions_.size() - cap));
    for (const auto& [version, v] : versions_) {
      live.push_back(v->exact_scope);
      live.insert(live.end(), v->block_scopes.begin(),
                  v->block_scopes.end());
    }
  }
  std::sort(live.begin(), live.end());
  live.erase(std::unique(live.begin(), live.end()), live.end());
  sweep_dead_scopes(live);
}

ResultCache::ScopeViewPtr ResultCache::scopes_for(
    std::uint64_t version) const {
  util::MutexLock lock(&scope_mutex_);
  // Newest-first: a republished version resolves to its latest scopes.
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it)
    if (it->first == version) return it->second;
  return nullptr;
}

bool ResultCache::lookup(std::uint64_t scope, Path path, QueryKind kind,
                         AccuracyTier tier, index_t p, index_t q,
                         real_t* out) {
  Timer timer;
  const Key key{scope, make_tag(path, kind, tier), p, q};
  Shard& shard = shard_for(key);
  bool hit = false;
  {
    util::MutexLock lock(&shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->value;
      hit = true;
    }
  }
  if (hit) {
    hits_total_->add(1);
    hit_latency_->record(timer.seconds());
    return true;
  }
  misses_total_->add(1);
  return false;
}

void ResultCache::insert(std::uint64_t scope, Path path, QueryKind kind,
                         AccuracyTier tier, index_t p, index_t q,
                         real_t value) {
  const Key key{scope, make_tag(path, kind, tier), p, q};
  Shard& shard = shard_for(key);
  std::size_t evicted = 0;
  bool inserted = false;
  {
    util::MutexLock lock(&shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Refresh: answers are deterministic per key, so the value can only
      // be the same — but racing inserts of the same key must stay benign.
      it->second->value = value;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, value});
      shard.map.emplace(key, shard.lru.begin());
      inserted = true;
      while (shard.map.size() > shard_cap_entries_) {
        shard.map.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++evicted;
      }
    }
  }
  if (evicted > 0) evictions_total_->add(evicted);
  const auto delta = static_cast<std::int64_t>(inserted ? 1 : 0) -
                     static_cast<std::int64_t>(evicted);
  if (delta != 0) {
    entries_gauge_->add(delta);
    bytes_gauge_->add(delta * static_cast<std::int64_t>(kEntryBytes));
  }
}

void ResultCache::sweep_dead_scopes(const std::vector<std::uint64_t>& live) {
  std::size_t dropped = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    util::MutexLock lock(&shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (std::binary_search(live.begin(), live.end(), it->key.scope)) {
        ++it;
        continue;
      }
      shard.map.erase(it->key);
      it = shard.lru.erase(it);
      ++dropped;
    }
  }
  if (dropped > 0) {
    invalidations_total_->add(dropped);
    entries_gauge_->add(-static_cast<std::int64_t>(dropped));
    bytes_gauge_->add(-static_cast<std::int64_t>(dropped * kEntryBytes));
  }
}

std::size_t ResultCache::entries() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    util::MutexLock lock(&shard_ptr->mutex);
    total += shard_ptr->map.size();
  }
  return total;
}

std::uint64_t ResultCache::hits() const { return hits_total_->value(); }
std::uint64_t ResultCache::misses() const { return misses_total_->value(); }
std::uint64_t ResultCache::evictions() const {
  return evictions_total_->value();
}
std::uint64_t ResultCache::invalidations() const {
  return invalidations_total_->value();
}

}  // namespace er
