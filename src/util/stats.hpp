// Streaming/summary statistics used by the error-measurement harnesses.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace er {

/// Accumulates scalar samples and reports summary statistics.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double m2_ = 0.0;   // Welford accumulator
  double mean_ = 0.0; // Welford running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample vector (copies and sorts; for reporting only).
double quantile(std::vector<double> samples, double q);

/// Relative error |approx - exact| / |exact| with a guard for exact == 0.
double relative_error(double approx, double exact);

}  // namespace er
