// Plain-text table and CSV writers for the benchmark harnesses.
//
// Each bench binary prints rows in the same layout as the paper's tables;
// TablePrinter handles column alignment, CsvWriter mirrors rows to a file so
// plots (e.g. Fig. 1 waveforms) can be regenerated.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace er {

/// Collects string rows and prints an aligned fixed-width table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render to stdout.
  void print() const;

  /// Render to an arbitrary stream.
  void print(std::ostream& os) const;

  /// Write rows (incl. header) as CSV.
  void write_csv(const std::string& path) const;

  static std::string fmt(double v, int precision = 3);
  static std::string fmt_sci(double v, int precision = 1);
  static std::string fmt_int(long long v);
  /// Scientific-style "1.3E5" shorthand used in the paper's size columns.
  static std::string fmt_size(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer for waveform/series output.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::initializer_list<std::string> cols);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void add_row(const std::vector<double>& values);
  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t cols_ = 0;
};

}  // namespace er
