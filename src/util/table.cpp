#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <stdexcept>

namespace er {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::print() const { print(std::cout); }

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c] + 2; ++pad) os << ' ';
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

void TablePrinter::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TablePrinter: cannot open " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*E", precision, v);
  return buf;
}

std::string TablePrinter::fmt_int(long long v) { return std::to_string(v); }

std::string TablePrinter::fmt_size(long long v) {
  if (v == 0) return "0";
  const double d = static_cast<double>(v);
  const int ex = static_cast<int>(std::floor(std::log10(std::abs(d))));
  const double mant = d / std::pow(10.0, ex);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1fE%d", mant, ex);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path,
                     std::initializer_list<std::string> cols)
    : out_(path), cols_(cols.size()) {
  if (!out_) return;
  bool first = true;
  for (const auto& c : cols) {
    if (!first) out_ << ',';
    out_ << c;
    first = false;
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::add_row(const std::vector<double>& values) {
  if (!out_) return;
  for (std::size_t c = 0; c < values.size(); ++c) {
    if (c) out_ << ',';
    out_ << values[c];
  }
  out_ << '\n';
}

}  // namespace er
