#include "util/rng.hpp"

#include <cassert>
#include <stdexcept>

namespace er {

void AliasSampler::build(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  if (n == 0) return;

  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasSampler: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("AliasSampler: all weights are zero");

  // Scaled probabilities; classic two-worklist (small/large) construction.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<index_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (scaled[i] < 1.0)
      small.push_back(static_cast<index_t>(i));
    else
      large.push_back(static_cast<index_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const index_t s = small.back();
    small.pop_back();
    const index_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0)
      small.push_back(l);
    else
      large.push_back(l);
  }
  // Remaining entries have probability 1 (up to roundoff).
  for (index_t l : large) {
    prob_[l] = 1.0;
    alias_[l] = l;
  }
  for (index_t s : small) {
    prob_[s] = 1.0;
    alias_[s] = s;
  }
}

index_t AliasSampler::sample(Rng& rng) const {
  assert(!prob_.empty());
  const auto i =
      static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(prob_.size())));
  return rng.uniform() < prob_[static_cast<std::size_t>(i)]
             ? i
             : alias_[static_cast<std::size_t>(i)];
}

}  // namespace er
