// Small deterministic PRNG utilities (SplitMix64 seeding + xoshiro256**).
//
// Benchmarks and tests must be reproducible across runs and platforms, so we
// avoid std::mt19937's unspecified distribution implementations and provide
// explicit uniform/normal/discrete sampling on top of a fixed-bit generator.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace er {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic per-stream seed derivation: hash(seed, stream). Every
/// block-indexed RNG site (per-block sparsification, per-block projection
/// engines, block sampling) seeds as mix_seed(seed, stream_id) so results
/// are independent of execution order and thread count.
inline std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  std::uint64_t h = splitmix64(s);
  h ^= splitmix64(s);
  return h;
}

/// xoshiro256** — fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x8a5cd789635d2dffULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
    has_gauss_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift rejection method for unbiased bounded ints.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  index_t uniform_int(index_t n) {
    return static_cast<index_t>(uniform_index(static_cast<std::uint64_t>(n)));
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * f;
    has_gauss_ = true;
    return u * f;
  }

  /// Rademacher ±1 with equal probability.
  double sign() { return (next_u64() & 1ULL) ? 1.0 : -1.0; }

  bool bernoulli(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool has_gauss_ = false;
  double cached_gauss_ = 0.0;
};

/// Alias-method sampler for repeated draws from a fixed discrete
/// distribution (used by effective-resistance edge sampling, RMAT, etc.).
/// Construction is O(n); each draw is O(1).
class AliasSampler {
 public:
  AliasSampler() = default;
  explicit AliasSampler(const std::vector<double>& weights) { build(weights); }

  void build(const std::vector<double>& weights);

  /// Draw an index in [0, size()) with probability proportional to weight.
  index_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return prob_.size(); }
  [[nodiscard]] bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<index_t> alias_;
};

}  // namespace er
