// Fundamental scalar and index types shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace er {

/// Row/column index type. 32-bit indices cover every laptop-scale instance
/// this library targets while halving index-array memory traffic.
using index_t = std::int32_t;

/// Offset type for column/row pointer arrays; 64-bit so that nnz counts can
/// exceed 2^31 without overflowing pointer arithmetic.
using offset_t = std::int64_t;

/// Floating-point scalar used throughout.
using real_t = double;

/// Minimal non-owning contiguous view (the project targets C++17, which has
/// no std::span). Only the operations the codebase needs.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] constexpr const T* data() const { return data_; }
  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  constexpr const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] constexpr const T* begin() const { return data_; }
  [[nodiscard]] constexpr const T* end() const { return data_ + size_; }

 private:
  const T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace er
