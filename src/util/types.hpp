// Fundamental scalar and index types shared by every module.
#pragma once

#include <cstdint>

namespace er {

/// Row/column index type. 32-bit indices cover every laptop-scale instance
/// this library targets while halving index-array memory traffic.
using index_t = std::int32_t;

/// Offset type for column/row pointer arrays; 64-bit so that nnz counts can
/// exceed 2^31 without overflowing pointer arithmetic.
using offset_t = std::int64_t;

/// Floating-point scalar used throughout.
using real_t = double;

}  // namespace er
