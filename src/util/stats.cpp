#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace er {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double relative_error(double approx, double exact) {
  const double denom = std::abs(exact);
  if (denom < 1e-300) return std::abs(approx - exact) < 1e-300 ? 0.0 : 1.0;
  return std::abs(approx - exact) / denom;
}

}  // namespace er
