/// \file
/// Clang thread-safety annotations (DESIGN.md §7): compile-time lock
/// checking for the five mutex-holding subsystems (parallel/ThreadPool,
/// serve/ModelStore, serve/AsyncUpdater, obs/MetricsRegistry,
/// obs/TraceRing).
///
/// The macros expand to Clang `-Wthread-safety` capability attributes
/// under Clang and to nothing elsewhere (GCC builds are unaffected). CI
/// builds the library with `clang++ -Wthread-safety
/// -Werror=thread-safety` (the `thread-safety` job; locally:
/// `-DER_THREAD_SAFETY=ON` with a Clang compiler), so a method that
/// touches an `ER_GUARDED_BY` field without holding its mutex — or calls
/// an `ER_REQUIRES` method without the capability — fails the build
/// instead of waiting for a TSan interleaving.
///
/// Conventions (see DESIGN.md §3/§4 for the lock contracts these encode):
///   * Every mutex is a `util::Mutex`; every field it protects is
///     declared `ER_GUARDED_BY(mutex_)` at the declaration site.
///   * Critical sections use `util::MutexLock` (lock_guard equivalent)
///     or `util::UniqueLock` (relockable; condition-variable waits go
///     through `UniqueLock::native()`).
///   * Private helpers that assume the lock is already held are
///     annotated `ER_REQUIRES(mutex_)` and named `*_locked` by repo
///     convention.
#pragma once

#include <mutex>

#if defined(__clang__)
#define ER_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define ER_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define ER_CAPABILITY(x) ER_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define ER_SCOPED_CAPABILITY ER_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define ER_GUARDED_BY(x) ER_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// As ER_GUARDED_BY, for the pointee of a pointer member.
#define ER_PT_GUARDED_BY(x) ER_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function acquires the capability (no argument: `this`).
#define ER_ACQUIRE(...) \
  ER_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function releases the capability (no argument: `this`).
#define ER_RELEASE(...) \
  ER_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the return value
/// meaning success.
#define ER_TRY_ACQUIRE(...) \
  ER_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability when invoking this function.
#define ER_REQUIRES(...) \
  ER_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention for
/// self-locking public methods).
#define ER_EXCLUDES(...) \
  ER_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define ER_RETURN_CAPABILITY(x) \
  ER_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch; every use needs an inline justification comment.
#define ER_NO_THREAD_SAFETY_ANALYSIS \
  ER_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace er::util {

/// std::mutex wrapper carrying the `capability` attribute so fields can
/// be `ER_GUARDED_BY` it. Zero overhead: all methods are inline
/// forwarders.
class ER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ER_ACQUIRE() { mu_.lock(); }
  void unlock() ER_RELEASE() { mu_.unlock(); }
  bool try_lock() ER_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for condition_variable interop (UniqueLock
  /// wraps it; prefer that over calling native() directly).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock, std::lock_guard equivalent (not relockable).
class ER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ER_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() ER_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Relockable scoped lock over std::unique_lock, for condition-variable
/// waits (`cv.wait(lk.native())`) and code that drops the lock
/// mid-function (`unlock()` / `lock()`). The analysis tracks the held
/// state through the annotated lock()/unlock() members; native() hands
/// the underlying std::unique_lock to condition_variable::wait, which
/// releases and reacquires internally — invisible to (and consistent
/// with) the analysis, since wait() is entered and exited with the lock
/// held.
class ER_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex* mu) ER_ACQUIRE(mu) : lk_(mu->native()) {}
  ~UniqueLock() ER_RELEASE() {}  // std::unique_lock unlocks iff held

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ER_ACQUIRE() { lk_.lock(); }
  void unlock() ER_RELEASE() { lk_.unlock(); }

  /// The wrapped lock, held, for condition_variable::wait.
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

}  // namespace er::util
