#include "net/server.hpp"

#include <cstring>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace er::net {

namespace {

constexpr std::size_t kRecvChunk = 64 * 1024;
/// Reader/accept poll granularity: how quickly threads observe drain.
constexpr int kPollMs = 100;
constexpr std::size_t kMaxHttpRequestBytes = 8192;

}  // namespace

Server::Server(const ModelStore* store, ServerOptions options, ModFn mod_fn)
    : store_(store),
      options_(std::move(options)),
      mod_fn_(std::move(mod_fn)),
      registry_(&obs::registry_or_global(options_.registry)),
      frontend_(store, options_.registry),
      queue_(options_.admission_capacity),
      mod_queue_(options_.admission_capacity) {
  // Eager registration of the whole er_net_* surface (DESIGN.md §8): a
  // /metrics scrape of a daemon that has served no traffic yet must still
  // export every family, so exporters and the CI metrics check never see
  // a partial schema.
  auto& r = *registry_;
  conns_accepted_ = &r.counter("er_net_connections_accepted_total", {},
                               "connections accepted by the daemon");
  conns_rejected_ = &r.counter(
      "er_net_connections_rejected_total", {},
      "connections refused at the max_connections cap");
  requests_port_response_ =
      &r.counter("er_net_requests_total", {{"opcode", "port_response"}},
                 "requests admitted per opcode");
  requests_er_batch_ = &r.counter("er_net_requests_total",
                                  {{"opcode", "er_batch"}},
                                  "requests admitted per opcode");
  requests_submit_mods_ = &r.counter("er_net_requests_total",
                                     {{"opcode", "submit_mods"}},
                                     "requests admitted per opcode");
  requests_stats_ = &r.counter("er_net_requests_total", {{"opcode", "stats"}},
                               "requests admitted per opcode");
  rejected_total_ = &r.counter(
      "er_net_rejected_total", {},
      "kRetryLater responses sent (admission overflow, mod back-pressure, "
      "shutdown)");
  mods_applied_ = &r.counter("er_net_mods_applied_total", {},
                             "modifications accepted by the mod sink");
  bad_frames_ = &r.counter("er_net_bad_frames_total", {},
                           "framing violations (connection closed)");
  active_connections_ =
      &r.gauge("er_net_active_connections", {}, "currently-open sessions");
  queue_depth_ = &r.gauge("er_net_queue_depth", {{"queue", "queries"}},
                          "admission-queue occupancy");
  mod_queue_depth_ = &r.gauge("er_net_queue_depth", {{"queue", "mods"}},
                              "admission-queue occupancy");
  const char* lat_help = "admission-to-response-written latency per opcode";
  latency_port_response_ = &r.histogram(
      "er_net_request_latency_seconds", {{"opcode", "port_response"}},
      lat_help);
  latency_er_batch_ = &r.histogram("er_net_request_latency_seconds",
                                   {{"opcode", "er_batch"}}, lat_help);
  latency_submit_mods_ = &r.histogram("er_net_request_latency_seconds",
                                      {{"opcode", "submit_mods"}}, lat_help);
  latency_stats_ = &r.histogram("er_net_request_latency_seconds",
                                {{"opcode", "stats"}}, lat_help);
}

Server::~Server() { stop(); }

obs::Histogram& Server::latency_histogram(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPortResponse: return *latency_port_response_;
    case Opcode::kErBatch: return *latency_er_batch_;
    case Opcode::kSubmitMods: return *latency_submit_mods_;
    default: return *latency_stats_;
  }
}

bool Server::start() {
  if (started_) return false;
  listen_fd_ = listen_tcp(options_.port, 128, &port_);
  if (!listen_fd_.valid()) return false;
  if (options_.enable_http) {
    http_fd_ = listen_tcp(options_.http_port, 16, &http_port_);
    if (!http_fd_.valid()) return false;
  }
  if (options_.query_threads > 1)
    pool_ = std::make_unique<ThreadPool>(options_.query_threads,
                                         options_.registry);
  const int dispatchers = options_.dispatcher_threads > 0
                              ? options_.dispatcher_threads
                              : 1;
  dispatchers_.reserve(static_cast<std::size_t>(dispatchers));
  for (int i = 0; i < dispatchers; ++i)
    dispatchers_.emplace_back([this] { dispatch_loop(&queue_); });
  if (mod_fn_)
    mod_dispatcher_ = std::thread([this] { dispatch_loop(&mod_queue_); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (options_.enable_http)
    http_thread_ = std::thread([this] { http_loop(); });
  started_ = true;
  return true;
}

void Server::stop() {
  if (!started_ || stop_ran_.exchange(true)) return;
  // 1. No new connections: flag the drain and let the accept/http poll
  //    loops observe it.
  draining_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. No new work: close the admission queues (also clears any test
  //    pause gate). Requests that race the drain answer kRetryLater.
  queue_.close();
  mod_queue_.close();
  // 3. Flush in-flight batches: dispatchers drain every admitted item —
  //    each gets exactly one response — then exit on the closed queue.
  for (std::thread& t : dispatchers_) t.join();
  dispatchers_.clear();
  if (mod_dispatcher_.joinable()) mod_dispatcher_.join();
  if (http_thread_.joinable()) http_thread_.join();
  // 4. Tear the sessions down and join their readers.
  {
    util::MutexLock lock(&sessions_mutex_);
    for (SessionSlot& slot : sessions_) {
      slot.session->closing.store(true, std::memory_order_relaxed);
      shutdown_fd(slot.session->fd.get());
    }
    for (SessionSlot& slot : sessions_)
      if (slot.reader.joinable()) slot.reader.join();
    sessions_.clear();
  }
  listen_fd_.reset();
  http_fd_.reset();
}

void Server::pause_dispatch() {
  queue_.pause();
  mod_queue_.pause();
}

void Server::resume_dispatch() {
  queue_.resume();
  mod_queue_.resume();
}

void Server::reap_finished_sessions_locked() {
  for (std::size_t i = 0; i < sessions_.size();) {
    if (sessions_[i].session->finished.load(std::memory_order_acquire)) {
      sessions_[i].reader.join();
      sessions_.erase(sessions_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void Server::accept_loop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    bool timed_out = false;
    Fd fd = accept_tcp(listen_fd_.get(), kPollMs, &timed_out);
    {
      util::MutexLock lock(&sessions_mutex_);
      reap_finished_sessions_locked();
    }
    if (!fd.valid()) continue;  // timeout or transient accept error
    if (static_cast<std::size_t>(active_connections_->value()) >=
        options_.max_connections) {
      conns_rejected_->add();
      continue;  // fd closes on scope exit: refuse by hangup
    }
    auto session = std::make_shared<Session>(std::move(fd));
    conns_accepted_->add();
    active_connections_->add(1);
    util::MutexLock lock(&sessions_mutex_);
    sessions_.push_back(
        {session, std::thread([this, session] { session_loop(session); })});
  }
}

void Server::session_loop(std::shared_ptr<Session> session) {
  std::vector<std::uint8_t> chunk(kRecvChunk);
  FrameBuffer frames;
  bool open = true;
  while (open && !session->closing.load(std::memory_order_relaxed)) {
    const long n =
        recv_some(session->fd.get(), chunk.data(), chunk.size(), kPollMs);
    if (n == -2) continue;  // poll timeout: recheck the close flag
    if (n <= 0) break;      // EOF or socket error
    frames.append(chunk.data(), static_cast<std::size_t>(n));
    Frame frame;
    for (;;) {
      const DecodeStatus st = frames.next(&frame);
      if (st == DecodeStatus::kNeedMore) break;
      if (st != DecodeStatus::kOk) {
        // Framing violation: the stream cannot be resynchronized. Report
        // (best effort; the request id is unknowable) and hang up.
        bad_frames_->add();
        send_error(session, 0, ErrorCode::kBadFrame, to_string(st));
        open = false;
        break;
      }
      if (!handle_frame(session, std::move(frame))) {
        open = false;
        break;
      }
    }
  }
  active_connections_->add(-1);
  session->finished.store(true, std::memory_order_release);
}

bool Server::handle_frame(const std::shared_ptr<Session>& session,
                          Frame frame) {
  const auto opcode = static_cast<Opcode>(frame.opcode);
  switch (opcode) {
    case Opcode::kStats: {
      Timer inline_timer;
      requests_stats_->add();
      send_frame(session, Opcode::kStatsReply, frame.request_id,
                 encode_stats(build_stats()));
      latency_stats_->record(inline_timer.seconds());
      return true;
    }
    case Opcode::kPortResponse:
    case Opcode::kErBatch: {
      WorkItem item;
      item.session = session;
      item.request_id = frame.request_id;
      item.opcode = opcode;
      if (!decode_query_batch(frame.payload, &item.query, frame.version)) {
        send_error(session, frame.request_id, ErrorCode::kBadPayload,
                   "malformed query batch");
        return true;  // per-request error; the stream is still framed
      }
      // PORT_RESPONSE is the single-kind convenience opcode: whatever the
      // client encoded, every query answers Z(p, q).
      if (opcode == Opcode::kPortResponse)
        for (PortQuery& q : item.query.queries) q.kind = QueryKind::kResponse;
      // Deadline-carrying batches dispatch from the queue's urgent level
      // (admission.hpp): their queueing budget is the scarce resource.
      bool urgent = false;
      for (const PortQuery& q : item.query.queries)
        if (q.policy.deadline_us > 0) {
          urgent = true;
          break;
        }
      if (!queue_.try_push(std::move(item), urgent)) {
        send_retry_later(session, frame.request_id);
        return true;
      }
      queue_depth_->set(static_cast<std::int64_t>(queue_.depth()));
      (opcode == Opcode::kPortResponse ? requests_port_response_
                                       : requests_er_batch_)
          ->add();
      return true;
    }
    case Opcode::kSubmitMods: {
      if (!mod_fn_) {
        send_error(session, frame.request_id, ErrorCode::kModFeedDisabled,
                   "no modification sink installed");
        return true;
      }
      WorkItem item;
      item.session = session;
      item.request_id = frame.request_id;
      item.opcode = opcode;
      if (!decode_modification(frame.payload, &item.mod)) {
        send_error(session, frame.request_id, ErrorCode::kBadPayload,
                   "malformed modification");
        return true;
      }
      if (!mod_queue_.try_push(std::move(item))) {
        send_retry_later(session, frame.request_id);
        return true;
      }
      mod_queue_depth_->set(static_cast<std::int64_t>(mod_queue_.depth()));
      requests_submit_mods_->add();
      return true;
    }
    default:
      send_error(session, frame.request_id, ErrorCode::kUnknownOpcode,
                 "opcode " + std::to_string(frame.opcode) +
                     " is not a request");
      return true;
  }
}

void Server::dispatch_loop(AdmissionQueue<WorkItem>* queue) {
  obs::Gauge* depth =
      queue == &mod_queue_ ? mod_queue_depth_ : queue_depth_;
  while (auto item = queue->pop()) {
    depth->set(static_cast<std::int64_t>(queue->depth()));
    if (item->opcode == Opcode::kSubmitMods)
      process_mod(*item);
    else
      process_query(*item);
    latency_histogram(item->opcode).record(item->admitted.seconds());
  }
}

void Server::process_query(WorkItem& item) {
  if (!store_->has_published()) {
    send_error(item.session, item.request_id, ErrorCode::kNoModel,
               "nothing published yet");
    return;
  }
  AnswerReply reply;
  try {
    BatchStats stats;
    AnswerContext ctx;
    ctx.pool = pool_.get();
    ctx.mode = item.query.route;
    ctx.stats = &stats;
    // The queue wait already consumed, handed to the front-end as the
    // explicit deadline input (serve/query_policy.hpp): expiry is decided
    // here at the daemon boundary, and the library below stays a pure
    // function of (snapshot, batch, context).
    ctx.queue_wait_us =
        static_cast<std::uint64_t>(item.admitted.seconds() * 1e6);
    reply.answers = frontend_.answer(item.query.queries, ctx);
    reply.snapshot_version = stats.snapshot_version;
  } catch (const std::exception& e) {
    send_error(item.session, item.request_id, ErrorCode::kInternal,
               e.what());
    return;
  }
  send_frame(item.session, Opcode::kAnswer, item.request_id,
             encode_answer(reply));
}

void Server::process_mod(WorkItem& item) {
  bool accepted = false;
  try {
    accepted = mod_fn_(item.mod);
  } catch (const std::invalid_argument& e) {
    send_error(item.session, item.request_id, ErrorCode::kBadPayload,
               e.what());
    return;
  } catch (const std::exception& e) {
    send_error(item.session, item.request_id, ErrorCode::kInternal,
               e.what());
    return;
  }
  if (!accepted) {
    // Mod-feed back-pressure (AsyncUpdater fail_fast at the staleness
    // bound) maps to the same kRetryLater / er_net_rejected_total path as
    // admission overflow.
    send_retry_later(item.session, item.request_id);
    return;
  }
  mods_applied_->add();
  send_frame(item.session, Opcode::kModAck, item.request_id, {});
}

StatsReply Server::build_stats() const {
  StatsReply s;
  const auto version = store_->current_version();
  s.has_version = version.has_value();
  s.snapshot_version = version.value_or(0);
  s.publishes = store_->publish_count();
  s.connections_accepted = conns_accepted_->value();
  s.connections_rejected = conns_rejected_->value();
  s.requests_admitted = requests_port_response_->value() +
                        requests_er_batch_->value() +
                        requests_submit_mods_->value();
  s.retry_later_sent = rejected_total_->value();
  s.mods_applied = mods_applied_->value();
  s.bad_frames = bad_frames_->value();
  s.queue_depth =
      static_cast<std::uint32_t>(queue_.depth() + mod_queue_.depth());
  s.draining = draining_.load(std::memory_order_relaxed);
  return s;
}

void Server::send_frame(const std::shared_ptr<Session>& session,
                        Opcode opcode, std::uint64_t request_id,
                        const std::vector<std::uint8_t>& payload) {
  if (session->closing.load(std::memory_order_relaxed)) return;
  const std::vector<std::uint8_t> wire =
      encode_frame(opcode, request_id, payload);
  util::MutexLock lock(&session->write_mutex);
  if (!send_all(session->fd.get(), wire.data(), wire.size())) {
    // Dead peer: poison the session so the reader exits at its next poll.
    session->closing.store(true, std::memory_order_relaxed);
    shutdown_fd(session->fd.get());
  }
}

void Server::send_error(const std::shared_ptr<Session>& session,
                        std::uint64_t request_id, ErrorCode code,
                        const std::string& message) {
  send_frame(session, Opcode::kError, request_id,
             encode_error({code, message}));
}

void Server::send_retry_later(const std::shared_ptr<Session>& session,
                              std::uint64_t request_id) {
  rejected_total_->add();
  send_frame(session, Opcode::kRetryLater, request_id, {});
}

// ------------------------------------------------------------------ HTTP

void Server::http_loop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    bool timed_out = false;
    Fd fd = accept_tcp(http_fd_.get(), kPollMs, &timed_out);
    if (fd.valid()) handle_http(std::move(fd));
  }
}

void Server::handle_http(Fd fd) {
  // Read until the end of the request head (we ignore everything but the
  // request line), bounded in bytes and time.
  std::string request;
  char chunk[1024];
  while (request.size() < kMaxHttpRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const long n = recv_some(fd.get(), chunk, sizeof(chunk), 2000);
    if (n <= 0) break;
    request.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);

  std::string status = "404 Not Found";
  std::string body = "not found\n";
  std::string content_type = "text/plain";
  if (line.rfind("GET /metrics ", 0) == 0 || line == "GET /metrics") {
    // The daemon's own registry, folded with the global one when they
    // differ (the reducer records globally — same convention as
    // bench_serving's --metrics dump).
    obs::MetricsSnapshot snap = registry_->snapshot();
    if (registry_ != &obs::MetricsRegistry::global())
      snap.merge(obs::MetricsRegistry::global().snapshot());
    status = "200 OK";
    body = obs::to_prometheus(snap);
    content_type = "text/plain; version=0.0.4";
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  (void)send_all(fd.get(), response.data(), response.size());
}

}  // namespace er::net
