#include "net/protocol.hpp"

#include <array>
#include <cmath>
#include <cstring>

namespace er::net {

namespace {

// ------------------------------------------------------------- primitives
// Explicit little-endian byte I/O: the wire format is host-order-free.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 binary64 expected");
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint16_t read_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Bounds-checked sequential payload reader. Every read_* returns false
/// instead of reading past the end; done() asserts exact consumption, so
/// a payload with trailing garbage fails decoding too.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool read_u8(std::uint8_t* v) {
    if (size_ - pos_ < 1) return false;
    *v = data_[pos_++];
    return true;
  }
  bool read_u32(std::uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    *v = net::read_u32(data_ + pos_);
    pos_ += 4;
    return true;
  }
  bool read_u64(std::uint64_t* v) {
    if (size_ - pos_ < 8) return false;
    *v = net::read_u64(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool read_i32(std::int32_t* v) {
    std::uint32_t u = 0;
    if (!read_u32(&u)) return false;
    std::memcpy(v, &u, sizeof(*v));
    return true;
  }
  bool read_f64(double* v) {
    std::uint64_t bits = 0;
    if (!read_u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool read_bytes(std::size_t n, std::string* out) {
    if (size_ - pos_ < n) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] bool done() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// CRC-32 lookup table, generated at compile time (reflected 0xEDB88320).
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

// Wire <-> enum maps (the wire bytes are part of the protocol, the enum
// ordinals are not).
bool route_from_wire(std::uint8_t v, RouteMode* out) {
  switch (v) {
    case 0: *out = RouteMode::kSharded; return true;
    case 1: *out = RouteMode::kMonolithic; return true;
    case 2: *out = RouteMode::kLocalApprox; return true;
    default: return false;
  }
}

std::uint8_t route_to_wire(RouteMode m) {
  switch (m) {
    case RouteMode::kSharded: return 0;
    case RouteMode::kMonolithic: return 1;
    case RouteMode::kLocalApprox: return 2;
  }
  return 0;
}

bool kind_from_wire(std::uint8_t v, QueryKind* out) {
  switch (v) {
    case 0: *out = QueryKind::kResponse; return true;
    case 1: *out = QueryKind::kResistance; return true;
    default: return false;
  }
}

std::uint8_t kind_to_wire(QueryKind k) {
  return k == QueryKind::kResponse ? 0 : 1;
}

// QueryPolicy enums travel by their fixed wire ordinal (which happens to
// match the enum ordinal today; the map keeps them decoupled).
bool tier_from_wire(std::uint8_t v, AccuracyTier* out) {
  switch (v) {
    case 0: *out = AccuracyTier::kExact; return true;
    case 1: *out = AccuracyTier::kApprox; return true;
    case 2: *out = AccuracyTier::kFast; return true;
    default: return false;
  }
}

std::uint8_t tier_to_wire(AccuracyTier t) {
  return static_cast<std::uint8_t>(t);
}

bool pref_from_wire(std::uint8_t v, BackendPref* out) {
  switch (v) {
    case 0: *out = BackendPref::kAuto; return true;
    case 1: *out = BackendPref::kSharded; return true;
    case 2: *out = BackendPref::kMonolithic; return true;
    case 3: *out = BackendPref::kLocalApprox; return true;
    default: return false;
  }
}

std::uint8_t pref_to_wire(BackendPref p) {
  return static_cast<std::uint8_t>(p);
}

}  // namespace

const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadCrc: return "bad-crc";
  }
  return "?";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = kCrcTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_frame(
    Opcode opcode, std::uint64_t request_id,
    const std::vector<std::uint8_t>& payload, std::uint16_t version) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  put_u32(out, kMagic);
  put_u16(out, version);
  put_u16(out, static_cast<std::uint16_t>(opcode));
  put_u64(out, request_id);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameBuffer::append(const std::uint8_t* data, std::size_t len) {
  buffer_.insert(buffer_.end(), data, data + len);
}

DecodeStatus FrameBuffer::next(Frame* out) {
  if (error_ != DecodeStatus::kOk) return error_;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kHeaderBytes) return DecodeStatus::kNeedMore;
  const std::uint8_t* h = buffer_.data() + consumed_;

  // Header validation happens before the payload is awaited: an attacker
  // cannot make the decoder buffer toward a bogus 4 GiB length.
  if (read_u32(h) != kMagic) return error_ = DecodeStatus::kBadMagic;
  const std::uint16_t version = read_u16(h + 4);
  if (version < kMinProtocolVersion || version > kProtocolVersion)
    return error_ = DecodeStatus::kBadVersion;
  const std::uint32_t payload_len = read_u32(h + 16);
  if (payload_len > kMaxPayloadBytes) return error_ = DecodeStatus::kBadLength;
  if (avail < kHeaderBytes + payload_len) return DecodeStatus::kNeedMore;

  const std::uint8_t* payload = h + kHeaderBytes;
  if (crc32(payload, payload_len) != read_u32(h + 20))
    return error_ = DecodeStatus::kBadCrc;

  out->opcode = read_u16(h + 6);
  out->version = version;
  out->request_id = read_u64(h + 8);
  out->payload.assign(payload, payload + payload_len);
  consumed_ += kHeaderBytes + payload_len;
  // Compact once the consumed prefix dominates, keeping the buffer O(one
  // partial frame) on long-lived connections.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return DecodeStatus::kOk;
}

// ---------------------------------------------------------------- payloads

std::vector<std::uint8_t> encode_query_batch(const QueryBatchRequest& req,
                                             std::uint16_t version) {
  const bool with_policy = version >= 2;
  std::vector<std::uint8_t> out;
  out.reserve(1 + 4 + req.queries.size() * (with_policy ? 16 : 9));
  out.push_back(route_to_wire(req.route));
  put_u32(out, static_cast<std::uint32_t>(req.queries.size()));
  for (const PortQuery& q : req.queries) {
    out.push_back(kind_to_wire(q.kind));
    std::uint32_t p = 0, qq = 0;
    std::memcpy(&p, &q.p, sizeof(p));
    std::memcpy(&qq, &q.q, sizeof(qq));
    put_u32(out, p);
    put_u32(out, qq);
    if (with_policy) {
      put_u32(out, q.policy.deadline_us);
      out.push_back(tier_to_wire(q.policy.accuracy_tier));
      out.push_back(pref_to_wire(q.policy.backend_pref));
      out.push_back(q.policy.hedge ? 1 : 0);
    }
  }
  return out;
}

bool decode_query_batch(const std::vector<std::uint8_t>& payload,
                        QueryBatchRequest* out, std::uint16_t version) {
  if (version < kMinProtocolVersion || version > kProtocolVersion)
    return false;
  const bool with_policy = version >= 2;
  Cursor c(payload.data(), payload.size());
  std::uint8_t route = 0;
  std::uint32_t count = 0;
  if (!c.read_u8(&route) || !route_from_wire(route, &out->route)) return false;
  if (!c.read_u32(&count) || count == 0 || count > kMaxBatchItems)
    return false;
  out->queries.clear();
  out->queries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint8_t kind = 0;
    PortQuery q;
    if (!c.read_u8(&kind) || !kind_from_wire(kind, &q.kind)) return false;
    if (!c.read_i32(&q.p) || !c.read_i32(&q.q)) return false;
    if (with_policy) {
      std::uint8_t tier = 0, pref = 0, hedge = 0;
      if (!c.read_u32(&q.policy.deadline_us)) return false;
      if (!c.read_u8(&tier) ||
          !tier_from_wire(tier, &q.policy.accuracy_tier))
        return false;
      if (!c.read_u8(&pref) ||
          !pref_from_wire(pref, &q.policy.backend_pref))
        return false;
      if (!c.read_u8(&hedge) || hedge > 1) return false;
      q.policy.hedge = hedge != 0;
    }
    out->queries.push_back(q);
  }
  return c.done();
}

std::vector<std::uint8_t> encode_modification(const WireModification& mod) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + mod.dirty_blocks.size() * 4 + 8);
  put_u32(out, static_cast<std::uint32_t>(mod.dirty_blocks.size()));
  for (index_t b : mod.dirty_blocks) {
    std::uint32_t u = 0;
    std::memcpy(&u, &b, sizeof(u));
    put_u32(out, u);
  }
  put_f64(out, mod.resistance_scale);
  return out;
}

bool decode_modification(const std::vector<std::uint8_t>& payload,
                         WireModification* out) {
  Cursor c(payload.data(), payload.size());
  std::uint32_t count = 0;
  if (!c.read_u32(&count) || count == 0 || count > kMaxBatchItems)
    return false;
  out->dirty_blocks.clear();
  out->dirty_blocks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::int32_t b = 0;
    if (!c.read_i32(&b)) return false;
    out->dirty_blocks.push_back(b);
  }
  if (!c.read_f64(&out->resistance_scale)) return false;
  // A non-finite or non-positive scale would poison every later model
  // version; reject it at the boundary.
  if (!std::isfinite(out->resistance_scale) || out->resistance_scale <= 0.0)
    return false;
  return c.done();
}

std::vector<std::uint8_t> encode_answer(const AnswerReply& reply) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + 4 + reply.answers.size() * 8);
  put_u64(out, reply.snapshot_version);
  put_u32(out, static_cast<std::uint32_t>(reply.answers.size()));
  for (real_t a : reply.answers) put_f64(out, a);
  return out;
}

bool decode_answer(const std::vector<std::uint8_t>& payload,
                   AnswerReply* out) {
  Cursor c(payload.data(), payload.size());
  std::uint32_t count = 0;
  if (!c.read_u64(&out->snapshot_version)) return false;
  if (!c.read_u32(&count) || count > kMaxBatchItems) return false;
  out->answers.clear();
  out->answers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    double a = 0.0;
    if (!c.read_f64(&a)) return false;
    out->answers.push_back(a);
  }
  return c.done();
}

std::vector<std::uint8_t> encode_stats(const StatsReply& reply) {
  std::vector<std::uint8_t> out;
  out.reserve(2 + 8 * 8 + 4);
  out.push_back(reply.has_version ? 1 : 0);
  put_u64(out, reply.snapshot_version);
  put_u64(out, reply.publishes);
  put_u64(out, reply.connections_accepted);
  put_u64(out, reply.connections_rejected);
  put_u64(out, reply.requests_admitted);
  put_u64(out, reply.retry_later_sent);
  put_u64(out, reply.mods_applied);
  put_u64(out, reply.bad_frames);
  put_u32(out, reply.queue_depth);
  out.push_back(reply.draining ? 1 : 0);
  return out;
}

bool decode_stats(const std::vector<std::uint8_t>& payload, StatsReply* out) {
  Cursor c(payload.data(), payload.size());
  std::uint8_t has_version = 0, draining = 0;
  if (!c.read_u8(&has_version) || has_version > 1) return false;
  out->has_version = has_version != 0;
  if (!c.read_u64(&out->snapshot_version)) return false;
  if (!c.read_u64(&out->publishes)) return false;
  if (!c.read_u64(&out->connections_accepted)) return false;
  if (!c.read_u64(&out->connections_rejected)) return false;
  if (!c.read_u64(&out->requests_admitted)) return false;
  if (!c.read_u64(&out->retry_later_sent)) return false;
  if (!c.read_u64(&out->mods_applied)) return false;
  if (!c.read_u64(&out->bad_frames)) return false;
  if (!c.read_u32(&out->queue_depth)) return false;
  if (!c.read_u8(&draining) || draining > 1) return false;
  out->draining = draining != 0;
  return c.done();
}

std::vector<std::uint8_t> encode_error(const ErrorReply& reply) {
  std::vector<std::uint8_t> out;
  std::string message = reply.message;
  if (message.size() > kMaxErrorBytes) message.resize(kMaxErrorBytes);
  out.reserve(8 + message.size());
  put_u32(out, static_cast<std::uint32_t>(reply.code));
  put_u32(out, static_cast<std::uint32_t>(message.size()));
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

bool decode_error(const std::vector<std::uint8_t>& payload, ErrorReply* out) {
  Cursor c(payload.data(), payload.size());
  std::uint32_t code = 0, len = 0;
  if (!c.read_u32(&code) || code < 1 ||
      code > static_cast<std::uint32_t>(ErrorCode::kInternal))
    return false;
  out->code = static_cast<ErrorCode>(code);
  if (!c.read_u32(&len) || len > kMaxErrorBytes) return false;
  if (!c.read_bytes(len, &out->message)) return false;
  return c.done();
}

}  // namespace er::net
