/// \file
/// Bounded admission queue of the serving daemon (DESIGN.md §8): the
/// back-pressure point between connection readers (producers) and
/// dispatcher threads (consumers).
///
/// Semantics:
///   * try_push never blocks: a full or closed queue rejects immediately,
///     and the session answers kRetryLater — admission control happens at
///     the socket boundary, not in front of the compute threads.
///   * Two levels share one capacity bound: items pushed urgent (the
///     server flags query batches carrying a policy deadline —
///     serve/query_policy.hpp) dispatch before every normal item, FIFO
///     within each level. A flood of urgent traffic therefore still
///     overflows into kRetryLater instead of starving the buffer, and a
///     deadline-free deployment behaves exactly as the old single queue.
///   * pop blocks until an item is available, the queue is both closed
///     and empty (returns nullopt — dispatcher exit), or while paused.
///     Pausing gates *consumption*, not admission: with dispatch paused,
///     pushes keep filling the bounded buffer and overflow deterministically
///     — which is exactly what the back-pressure tests pin down.
///   * close() wakes everything; remaining items are still drained by
///     pop() (the graceful-shutdown contract: every admitted request gets
///     exactly one response), and it clears the paused gate so a stop()
///     cannot deadlock behind a test's pause_dispatch().
#pragma once

#include <condition_variable>
#include <deque>
#include <optional>
#include <utility>

#include "util/thread_annotations.hpp"

namespace er::net {

template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admit one item; false when the queue is at capacity or closed.
  /// `urgent` selects the front dispatch level (deadline-aware requests);
  /// both levels draw on the same capacity.
  [[nodiscard]] bool try_push(T item, bool urgent = false)
      ER_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(&mutex_);
      if (closed_ || urgent_.size() + items_.size() >= capacity_)
        return false;
      (urgent ? urgent_ : items_).push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Next item — urgent level first, admission order within a level;
  /// nullopt once closed and drained.
  [[nodiscard]] std::optional<T> pop() ER_EXCLUDES(mutex_) {
    util::UniqueLock lock(&mutex_);
    while ((paused_ || (urgent_.empty() && items_.empty())) &&
           !(closed_ && urgent_.empty() && items_.empty()))
      cv_.wait(lock.native());
    std::deque<T>& level = urgent_.empty() ? items_ : urgent_;
    if (level.empty()) return std::nullopt;
    T item = std::move(level.front());
    level.pop_front();
    return item;
  }

  /// Stop admitting, wake all waiters, clear the paused gate. Items
  /// already admitted remain poppable (drain-before-exit).
  void close() ER_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(&mutex_);
      closed_ = true;
      paused_ = false;
    }
    cv_.notify_all();
  }

  /// Gate consumption (test hook; see class comment). No-op when closed.
  void pause() ER_EXCLUDES(mutex_) {
    util::MutexLock lock(&mutex_);
    if (!closed_) paused_ = true;
  }

  void resume() ER_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(&mutex_);
      paused_ = false;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const ER_EXCLUDES(mutex_) {
    util::MutexLock lock(&mutex_);
    return urgent_.size() + items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> urgent_ ER_GUARDED_BY(mutex_);  ///< dispatched first
  std::deque<T> items_ ER_GUARDED_BY(mutex_);
  bool closed_ ER_GUARDED_BY(mutex_) = false;
  bool paused_ ER_GUARDED_BY(mutex_) = false;
};

}  // namespace er::net
