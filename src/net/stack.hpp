/// \file
/// ServingStack: the daemon's composition layer (DESIGN.md §8). Owns the
/// whole serving pipeline behind one Server — ModelStore, an
/// IncrementalReducer primed on the initial grid, an optional ResultCache,
/// a QueryFrontEnd, and the AsyncUpdater that runs re-reductions off the
/// request path — and adapts the wire-level modification feed
/// (WireModification, block ids only) to the cumulative-network contract
/// of IncrementalReducer::update / AsyncUpdater::submit.
///
/// Mod-feed semantics: apply_mod() holds the stack's mod mutex, applies
/// the edit to the *cumulative* current network, and submits the result.
/// Only an accepted submit advances the cumulative state — a fail_fast
/// rejection (back-pressure; the server answers kRetryLater) leaves the
/// stack exactly as if the edit never arrived, so the client can resubmit
/// the same edit later and observe the same semantics. Out-of-range block
/// ids throw std::invalid_argument before any state changes (the server
/// answers kError/kBadPayload).
///
/// Destruction order: the updater member is declared last, so it drains
/// (worker joined, every accepted edit published) before the reducer and
/// store it closes over are torn down. Destroy the Server before the
/// stack — mod_fn() hands the server a callback into `this`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/protocol.hpp"
#include "pg/incremental.hpp"
#include "reduction/pipeline.hpp"
#include "serve/async_updater.hpp"
#include "serve/model_store.hpp"
#include "serve/query_frontend.hpp"
#include "serve/result_cache.hpp"
#include "serve/snapshot.hpp"
#include "util/thread_annotations.hpp"

namespace er::net {

struct StackOptions {
  ReductionOptions reduction;
  /// Snapshot build policy; callers that never route kMonolithic should
  /// clear build_monolithic_factor to skip the dense global factor.
  ServingOptions serving;
  /// Attach a ResultCache to the store (serving.cache holds its knobs).
  bool attach_cache = true;
  /// AsyncUpdater back-pressure bound: accepted-but-unpublished
  /// modifications before submits are refused (see fail_fast).
  std::uint64_t staleness_bound = 6;
  /// true: apply_mod() reports back-pressure as `false` (kRetryLater on
  /// the wire). false: apply_mod() blocks at the bound instead.
  bool fail_fast = true;
};

/// One grid's full serving pipeline, ready to hand to a Server:
/// `Server server(&stack.store(), sopts, stack.mod_fn());`.
class ServingStack {
 public:
  /// Reduces `grid_net` (ports per `is_port`), publishes the initial
  /// snapshot, and starts the update worker. `registry` receives the
  /// er_store_* / er_updater_* / er_query_* / er_cache_* series; null
  /// falls back to the global registry so a daemon exports one unified
  /// /metrics surface.
  ServingStack(const ConductanceNetwork& grid_net,
               const std::vector<char>& is_port, StackOptions options,
               obs::MetricsRegistry* registry = nullptr);
  ~ServingStack();

  ServingStack(const ServingStack&) = delete;
  ServingStack& operator=(const ServingStack&) = delete;

  /// Validate + apply one wire modification to the cumulative network and
  /// submit it for background re-reduction. Returns false on back-pressure
  /// (fail_fast at the staleness bound; no state changed). Throws
  /// std::invalid_argument on out-of-range block ids, and rethrows the
  /// update worker's latched error if a previous batch failed.
  bool apply_mod(const WireModification& mod) ER_EXCLUDES(mod_mutex_);

  /// The Server::ModFn adapter over apply_mod(). The returned callable
  /// references `this`; the Server using it must stop before the stack
  /// dies.
  [[nodiscard]] std::function<bool(const WireModification&)> mod_fn();

  /// Block until every accepted modification is published.
  void flush() { updater_.flush(); }

  [[nodiscard]] const ModelStore& store() const { return store_; }
  [[nodiscard]] ModelStore& store() { return store_; }
  [[nodiscard]] QueryFrontEnd& frontend() { return frontend_; }
  [[nodiscard]] const IncrementalReducer& reducer() const { return reducer_; }
  [[nodiscard]] const BlockStructure& structure() const { return structure_; }
  [[nodiscard]] AsyncUpdater& updater() { return updater_; }
  /// Cumulative modifications accepted through apply_mod() so far.
  [[nodiscard]] std::uint64_t mods_accepted() const;

 private:
  StackOptions options_;
  obs::MetricsRegistry* registry_;  ///< resolved, never null
  ModelStore store_;
  IncrementalReducer reducer_;
  /// Frozen at construction: modifications may not change the partition.
  BlockStructure structure_;
  std::shared_ptr<ResultCache> cache_;
  QueryFrontEnd frontend_;
  mutable util::Mutex mod_mutex_;
  /// The cumulative edited network (AsyncUpdater submissions carry full
  /// state, not deltas); advances only on accepted submits.
  ConductanceNetwork current_ ER_GUARDED_BY(mod_mutex_);
  std::uint64_t accepted_ ER_GUARDED_BY(mod_mutex_) = 0;
  /// Declared last: drains into reducer_/store_ before they die.
  AsyncUpdater updater_;
};

}  // namespace er::net
