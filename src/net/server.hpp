/// \file
/// The serving daemon's network core (DESIGN.md §8): a loopback TCP
/// listener speaking the net/protocol.hpp framing, per-connection reader
/// threads, a bounded admission queue feeding dispatcher threads in front
/// of QueryFrontEnd, an optional streamed-modification sink, and a plain
/// HTTP/1.0 `GET /metrics` endpoint serving the Prometheus export.
///
/// Request flow:
///   * kStats is answered inline on the reader thread (O(1), no compute).
///   * kPortResponse / kErBatch / kSubmitMods are admitted into bounded
///     queues; overflow answers kRetryLater immediately — the invariant
///     the back-pressure tests pin is that `er_net_rejected_total`
///     increments exactly once per kRetryLater frame sent, whatever the
///     rejection site (admission overflow, mod-feed back-pressure, or the
///     shutdown race).
///   * Modifications run on a dedicated single dispatcher so a feed's
///     frames commit in arrival order at any query-dispatcher count (the
///     cumulative-state contract of the mod sink needs total order).
///
/// Lifecycle (SIGTERM drain, DESIGN.md §8): stop() flips the draining
/// flag, joins the accept loop (no new connections), closes the admission
/// queues (no new work; requests arriving during the drain answer
/// kRetryLater), lets the dispatchers finish every *admitted* item — each
/// admitted request gets exactly one response, none are dropped or
/// duplicated — then shuts the sessions down and joins their readers.
///
/// Observability (`er_net_*`, DESIGN.md §6/§8): every family is
/// registered eagerly at construction, so a daemon scraped before its
/// first request still exports the full net surface.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/admission.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/model_store.hpp"
#include "serve/query_frontend.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace er::obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace er::obs

namespace er::net {

struct ServerOptions {
  int port = 0;       ///< request listener; 0 = ephemeral (see port())
  int http_port = 0;  ///< /metrics listener; 0 = ephemeral
  bool enable_http = true;
  /// Query dispatcher threads (modifications always get one dedicated
  /// dispatcher of their own when a mod sink is installed).
  int dispatcher_threads = 1;
  /// Threads of the shared per-batch compute pool handed to
  /// QueryFrontEnd::answer; <= 1 answers inline on the dispatcher.
  int query_threads = 0;
  std::size_t admission_capacity = 64;  ///< per queue (queries / mods)
  std::size_t max_connections = 64;
  /// Metrics destination (`er_net_*`; null = the global registry).
  obs::MetricsRegistry* registry = nullptr;
};

/// One accepted connection's shared state: the socket, a write lock so
/// dispatcher responses and inline reader responses never interleave
/// bytes, and the close flag. shared_ptr-held by the reader thread and by
/// every admitted WorkItem, so a response can always be written even if
/// the reader already exited.
struct Session {
  explicit Session(Fd f) : fd(std::move(f)) {}
  Fd fd;
  util::Mutex write_mutex;
  std::atomic<bool> closing{false};
  std::atomic<bool> finished{false};  ///< reader thread has exited
};

/// The daemon core. Construction wires metrics; start() binds the
/// listeners and spawns the threads; stop() runs the drain (idempotent,
/// also run by the destructor). `store` must outlive the server.
class Server {
 public:
  /// Modification sink: applies one wire modification to the serving
  /// pipeline. Returns false when back-pressured (the client sees
  /// kRetryLater and still owns the edit); throws std::invalid_argument
  /// on a semantically invalid modification (out-of-range block ids —
  /// answered kError/kBadPayload).
  using ModFn = std::function<bool(const WireModification&)>;

  Server(const ModelStore* store, ServerOptions options, ModFn mod_fn = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the listeners and spawn accept/dispatcher/http threads. False
  /// when a port could not be bound (the server stays stopped).
  [[nodiscard]] bool start();

  /// Graceful drain; see the file comment. Safe to call from any thread
  /// (including concurrently); returns once everything is joined.
  void stop();

  /// Bound request port (valid after start()).
  [[nodiscard]] int port() const { return port_; }
  /// Bound /metrics port (valid after start(); -1 when HTTP is disabled).
  [[nodiscard]] int http_port() const { return http_port_; }
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Test hooks: gate the dispatchers so admission overflow and drain
  /// behavior are deterministic. stop() clears the gate itself (via
  /// AdmissionQueue::close), so a paused server still shuts down.
  void pause_dispatch();
  void resume_dispatch();

 private:
  /// One admitted request: the session to answer on, the request
  /// identity, and the decoded payload (query_ or mod_ per opcode).
  struct WorkItem {
    std::shared_ptr<Session> session;
    std::uint64_t request_id = 0;
    Opcode opcode = Opcode::kErBatch;
    QueryBatchRequest query;
    WireModification mod;
    Timer admitted;  ///< admission -> response-written latency anchor
  };

  struct SessionSlot {
    std::shared_ptr<Session> session;
    std::thread reader;
  };

  void accept_loop();
  void session_loop(std::shared_ptr<Session> session);
  /// False = close the connection (framing violation or dead socket).
  bool handle_frame(const std::shared_ptr<Session>& session, Frame frame);
  void dispatch_loop(AdmissionQueue<WorkItem>* queue);
  void process_query(WorkItem& item);
  void process_mod(WorkItem& item);
  void http_loop();
  void handle_http(Fd fd);
  [[nodiscard]] StatsReply build_stats() const;

  void send_frame(const std::shared_ptr<Session>& session, Opcode opcode,
                  std::uint64_t request_id,
                  const std::vector<std::uint8_t>& payload);
  void send_error(const std::shared_ptr<Session>& session,
                  std::uint64_t request_id, ErrorCode code,
                  const std::string& message);
  /// kRetryLater + the er_net_rejected_total increment, fused so the
  /// counter-matches-responses invariant holds by construction.
  void send_retry_later(const std::shared_ptr<Session>& session,
                        std::uint64_t request_id);

  [[nodiscard]] obs::Histogram& latency_histogram(Opcode opcode);
  void reap_finished_sessions_locked() ER_REQUIRES(sessions_mutex_);

  const ModelStore* store_;
  ServerOptions options_;
  ModFn mod_fn_;
  obs::MetricsRegistry* registry_;  ///< resolved, never null
  QueryFrontEnd frontend_;
  std::unique_ptr<ThreadPool> pool_;

  Fd listen_fd_;
  Fd http_fd_;
  int port_ = -1;
  int http_port_ = -1;

  std::atomic<bool> draining_{false};
  bool started_ = false;
  std::atomic<bool> stop_ran_{false};

  AdmissionQueue<WorkItem> queue_;      ///< kPortResponse / kErBatch
  AdmissionQueue<WorkItem> mod_queue_;  ///< kSubmitMods (single consumer)

  std::thread accept_thread_;
  std::thread http_thread_;
  std::thread mod_dispatcher_;
  std::vector<std::thread> dispatchers_;

  mutable util::Mutex sessions_mutex_;
  std::vector<SessionSlot> sessions_ ER_GUARDED_BY(sessions_mutex_);

  // Registry-backed er_net_* series (pointers cached at construction).
  obs::Counter* conns_accepted_;
  obs::Counter* conns_rejected_;
  obs::Counter* requests_port_response_;
  obs::Counter* requests_er_batch_;
  obs::Counter* requests_submit_mods_;
  obs::Counter* requests_stats_;
  obs::Counter* rejected_total_;
  obs::Counter* mods_applied_;
  obs::Counter* bad_frames_;
  obs::Gauge* active_connections_;
  obs::Gauge* queue_depth_;
  obs::Gauge* mod_queue_depth_;
  obs::Histogram* latency_port_response_;
  obs::Histogram* latency_er_batch_;
  obs::Histogram* latency_submit_mods_;
  obs::Histogram* latency_stats_;
};

}  // namespace er::net
