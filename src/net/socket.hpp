/// \file
/// Thin POSIX TCP helpers for the serving daemon (DESIGN.md §8): an RAII
/// fd, loopback listeners/connections with ephemeral-port support, and
/// EINTR-safe full-buffer send / timeout-bounded receive. Everything binds
/// to 127.0.0.1 — the daemon is a loopback harness, not an internet-facing
/// server.
#pragma once

#include <cstddef>
#include <string>

namespace er::net {

/// RAII file descriptor (move-only; closes on destruction).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// Listen on 127.0.0.1:`port` (0 = ephemeral; the chosen port lands in
/// `*bound_port`). SO_REUSEADDR is set. Returns an invalid Fd on failure.
[[nodiscard]] Fd listen_tcp(int port, int backlog, int* bound_port);

/// Blocking connect to host:port with TCP_NODELAY. Invalid Fd on failure.
[[nodiscard]] Fd connect_tcp(const std::string& host, int port);

/// Accept with a poll() timeout so the accept loop can observe shutdown.
/// Returns an invalid Fd on timeout or error; `*timed_out` distinguishes
/// the two. The accepted socket gets TCP_NODELAY and a bounded send
/// timeout so one stuck reader cannot wedge a dispatcher forever.
[[nodiscard]] Fd accept_tcp(int listen_fd, int timeout_ms, bool* timed_out);

/// Write the whole buffer (EINTR/short-write safe, SIGPIPE suppressed).
/// False on any unrecoverable error (including the send timeout).
[[nodiscard]] bool send_all(int fd, const void* data, std::size_t len);

/// Read up to `cap` bytes with a poll() timeout. Returns the byte count,
/// 0 on orderly EOF, -1 on error, -2 on timeout.
[[nodiscard]] long recv_some(int fd, void* buf, std::size_t cap,
                             int timeout_ms);

/// shutdown(SHUT_RDWR): unblocks any reader/writer parked on the fd
/// without racing the descriptor's close.
void shutdown_fd(int fd);

}  // namespace er::net
