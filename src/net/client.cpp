#include "net/client.hpp"

#include <stdexcept>

namespace er::net {

LoopbackClient::LoopbackClient(const std::string& host, int port)
    : fd_(connect_tcp(host, port)) {
  if (!fd_.valid())
    throw std::runtime_error("LoopbackClient: connect to " + host + ":" +
                             std::to_string(port) + " failed");
}

std::uint64_t LoopbackClient::send(Opcode opcode,
                                   const std::vector<std::uint8_t>& payload) {
  const std::uint64_t id = next_request_id_++;
  const std::vector<std::uint8_t> wire = encode_frame(opcode, id, payload);
  if (!send_all(fd_.get(), wire.data(), wire.size()))
    throw std::runtime_error("LoopbackClient: send failed");
  return id;
}

void LoopbackClient::send_raw(const void* data, std::size_t len) {
  if (!send_all(fd_.get(), data, len))
    throw std::runtime_error("LoopbackClient: raw send failed");
}

Frame LoopbackClient::recv_frame(int timeout_ms) {
  Frame frame;
  for (;;) {
    const DecodeStatus st = frames_.next(&frame);
    if (st == DecodeStatus::kOk) return frame;
    if (st != DecodeStatus::kNeedMore)
      throw std::runtime_error(std::string("LoopbackClient: response "
                                           "framing violation: ") +
                               to_string(st));
    std::uint8_t chunk[16 * 1024];
    const long n = recv_some(fd_.get(), chunk, sizeof(chunk), timeout_ms);
    if (n == -2) throw std::runtime_error("LoopbackClient: receive timeout");
    if (n <= 0)
      throw std::runtime_error("LoopbackClient: connection closed by server");
    frames_.append(chunk, static_cast<std::size_t>(n));
  }
}

namespace {

/// Decode a kError payload into a thrown runtime_error (transport-level
/// contract: protocol errors surface as exceptions, not return codes).
[[noreturn]] void throw_error_reply(const Frame& frame) {
  ErrorReply err;
  if (!decode_error(frame.payload, &err))
    throw std::runtime_error("LoopbackClient: undecodable kError reply");
  throw std::runtime_error("LoopbackClient: server error " +
                           std::to_string(static_cast<unsigned>(err.code)) +
                           ": " + err.message);
}

}  // namespace

LoopbackClient::QueryResult LoopbackClient::query(
    const std::vector<PortQuery>& batch, RouteMode mode, Opcode opcode) {
  QueryBatchRequest req;
  req.route = mode;
  req.queries = batch;
  const std::uint64_t id = send(opcode, encode_query_batch(req));
  const Frame reply = recv_frame();
  if (reply.request_id != id)
    throw std::runtime_error("LoopbackClient: response id mismatch");
  QueryResult result;
  switch (static_cast<Opcode>(reply.opcode)) {
    case Opcode::kAnswer: {
      AnswerReply ans;
      if (!decode_answer(reply.payload, &ans))
        throw std::runtime_error("LoopbackClient: undecodable kAnswer");
      result.answers = std::move(ans.answers);
      result.snapshot_version = ans.snapshot_version;
      return result;
    }
    case Opcode::kRetryLater:
      result.retry_later = true;
      return result;
    case Opcode::kError:
      throw_error_reply(reply);
    default:
      throw std::runtime_error("LoopbackClient: unexpected reply opcode " +
                               std::to_string(reply.opcode));
  }
}

LoopbackClient::ModOutcome LoopbackClient::submit_mod(
    const WireModification& mod) {
  const std::uint64_t id = send(Opcode::kSubmitMods, encode_modification(mod));
  const Frame reply = recv_frame();
  if (reply.request_id != id)
    throw std::runtime_error("LoopbackClient: response id mismatch");
  switch (static_cast<Opcode>(reply.opcode)) {
    case Opcode::kModAck:
      return ModOutcome::kAccepted;
    case Opcode::kRetryLater:
      return ModOutcome::kRetryLater;
    case Opcode::kError:
      throw_error_reply(reply);
    default:
      throw std::runtime_error("LoopbackClient: unexpected reply opcode " +
                               std::to_string(reply.opcode));
  }
}

StatsReply LoopbackClient::stats() {
  const std::uint64_t id = send(Opcode::kStats, {});
  const Frame reply = recv_frame();
  if (reply.request_id != id)
    throw std::runtime_error("LoopbackClient: response id mismatch");
  if (static_cast<Opcode>(reply.opcode) == Opcode::kError)
    throw_error_reply(reply);
  StatsReply s;
  if (static_cast<Opcode>(reply.opcode) != Opcode::kStatsReply ||
      !decode_stats(reply.payload, &s))
    throw std::runtime_error("LoopbackClient: undecodable kStatsReply");
  return s;
}

}  // namespace er::net
