/// \file
/// Synchronous loopback client of the serving daemon (DESIGN.md §8),
/// shared by the integration tests, bench_serving --loopback, and
/// er_served --warmup. One connection per client; requests are
/// correlated by request id, so a client may also pipeline (send several
/// requests, then collect responses) via the low-level send()/recv_frame()
/// pair — the back-pressure tests drive admission overflow that way.
///
/// Error model: transport failures and kError responses throw
/// std::runtime_error; back-pressure (kRetryLater) is an expected outcome
/// and is reported in-band (QueryResult::retry_later / ModOutcome).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/query_frontend.hpp"
#include "util/types.hpp"

namespace er::net {

class LoopbackClient {
 public:
  /// Connects immediately; throws std::runtime_error on refusal.
  LoopbackClient(const std::string& host, int port);

  struct QueryResult {
    std::vector<real_t> answers;        ///< empty when retry_later
    std::uint64_t snapshot_version = 0;
    bool retry_later = false;
  };

  enum class ModOutcome { kAccepted, kRetryLater };

  /// Round-trip one query batch. `opcode` must be kErBatch (kinds as
  /// given) or kPortResponse (server forces every kind to kResponse).
  [[nodiscard]] QueryResult query(const std::vector<PortQuery>& batch,
                                  RouteMode mode = RouteMode::kSharded,
                                  Opcode opcode = Opcode::kErBatch);

  /// Round-trip one modification through the daemon's mod feed.
  [[nodiscard]] ModOutcome submit_mod(const WireModification& mod);

  [[nodiscard]] StatsReply stats();

  // ------------------------------------------------- pipelining plumbing
  /// Send one framed request; returns its request id.
  std::uint64_t send(Opcode opcode, const std::vector<std::uint8_t>& payload);
  /// Receive the next response frame (any request id). Throws on EOF,
  /// transport error, framing violation, or timeout.
  [[nodiscard]] Frame recv_frame(int timeout_ms = 30000);
  /// Push raw bytes down the socket, bypassing the framer — the
  /// malformed-frame and slow-loris tests speak through this.
  void send_raw(const void* data, std::size_t len);

  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  Fd fd_;
  FrameBuffer frames_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace er::net
