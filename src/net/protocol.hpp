/// \file
/// Wire protocol of the serving daemon (DESIGN.md §8): a length-prefixed
/// binary framing over TCP plus the payload codecs of every request and
/// response the daemon speaks.
///
/// Frame layout (all integers little-endian, independent of host order):
///
///   offset  size  field
///        0     4  magic        kMagic; the wire bytes read 'E','R','V','1'
///        4     2  version      kMinProtocolVersion..kProtocolVersion
///        6     2  opcode       Opcode
///        8     8  request_id   echoed verbatim in the response
///       16     4  payload_len  <= kMaxPayloadBytes
///       20     4  payload_crc  CRC-32 (reflected, poly 0xEDB88320) of the
///                              payload bytes only
///       24     …  payload
///
/// Versioning: the header version selects the payload dialect. Version 2
/// added the per-query QueryPolicy fields to QueryBatchRequest; version-1
/// frames from old clients still decode, with every policy defaulted —
/// the server answers them exactly as before policies existed. Responses
/// are version-independent (an AnswerReply reads the same either way).
///
/// Decoding is incremental and never over-reads: FrameBuffer::next()
/// validates magic/version/length from the 24-byte header *before*
/// waiting for the payload, so an adversarial "4 GiB follows" header is
/// rejected from the header alone. Framing errors (bad magic, version,
/// length, CRC) are sticky — the stream cannot be resynchronized, the
/// connection must be closed. Payload-level errors (a frame that parses
/// but whose payload is malformed) are per-request: the decoder returns
/// false, the server answers kError and keeps the connection.
///
/// Layering: this header knows serve/ types (PortQuery, RouteMode) but
/// nothing of pg/ — modifications travel as WireModification, which
/// src/net/stack.hpp translates into the pg-level GridModification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/query_frontend.hpp"
#include "util/types.hpp"

namespace er::net {

/// 'E','R','V','1' as the little-endian u32 the header carries.
inline constexpr std::uint32_t kMagic = 0x31565245u;
/// Current dialect (2: per-query QueryPolicy fields in query batches).
inline constexpr std::uint16_t kProtocolVersion = 2;
/// Oldest dialect still accepted; v1 query batches carry no policy bytes
/// and decode with default policies.
inline constexpr std::uint16_t kMinProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
/// Hard payload bound checked from the header alone (16 MiB — far above
/// any realistic batch, far below an allocation-of-death).
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 24;
/// Queries per batch / dirty blocks per modification bound.
inline constexpr std::uint32_t kMaxBatchItems = 1u << 20;
/// Error-message length bound (ErrorReply).
inline constexpr std::uint32_t kMaxErrorBytes = 4096;

/// Request and response opcodes. Responses have bit 7 set.
enum class Opcode : std::uint16_t {
  // Requests.
  kPortResponse = 1,  ///< QueryBatchRequest; every kind forced to kResponse
  kErBatch = 2,       ///< QueryBatchRequest, kinds as encoded
  kSubmitMods = 3,    ///< WireModification for the streamed mod feed
  kStats = 4,         ///< empty payload; answered inline with kStatsReply
  // Responses.
  kAnswer = 129,      ///< AnswerReply
  kModAck = 130,      ///< empty payload: the modification was accepted
  kStatsReply = 131,  ///< StatsReply
  kRetryLater = 132,  ///< empty payload: back-pressure, retry the request
  kError = 133,       ///< ErrorReply
};

/// Machine-readable error codes carried by kError frames.
enum class ErrorCode : std::uint32_t {
  kBadFrame = 1,        ///< framing violation (connection is closed)
  kBadPayload = 2,      ///< frame parsed, payload did not
  kUnknownOpcode = 3,   ///< opcode is not a request this server speaks
  kShuttingDown = 4,    ///< daemon is draining
  kNoModel = 5,         ///< nothing published yet
  kModFeedDisabled = 6, ///< server was built without a modification sink
  kInternal = 7,        ///< exception while answering
};

/// One decoded frame.
struct Frame {
  std::uint16_t opcode = 0;
  /// Header version the frame arrived with (kMinProtocolVersion..
  /// kProtocolVersion); payload decoders take it to pick the dialect.
  std::uint16_t version = kProtocolVersion;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

enum class DecodeStatus {
  kOk,         ///< a frame was produced
  kNeedMore,   ///< header/payload incomplete; append more bytes
  kBadMagic,   ///< sticky: stream is not speaking this protocol
  kBadVersion, ///< sticky: protocol version mismatch
  kBadLength,  ///< sticky: declared payload exceeds kMaxPayloadBytes
  kBadCrc,     ///< sticky: payload corrupted in flight
};

[[nodiscard]] const char* to_string(DecodeStatus s);

/// CRC-32 (reflected, polynomial 0xEDB88320, init/xorout 0xFFFFFFFF) —
/// the zlib/IEEE 802.3 variant.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

/// Encode one complete frame (header + payload) ready for send_all().
/// `version` stamps the header; pass kMinProtocolVersion together with a
/// v1-encoded payload to impersonate an old client (tests do).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    Opcode opcode, std::uint64_t request_id,
    const std::vector<std::uint8_t>& payload,
    std::uint16_t version = kProtocolVersion);

/// Incremental frame decoder: feed arbitrary byte slices (down to one byte
/// at a time — slow-loris clients cost buffering, not correctness), pull
/// complete frames out. Fatal statuses are sticky; kNeedMore/kOk are not.
class FrameBuffer {
 public:
  /// Append `len` raw bytes from the stream.
  void append(const std::uint8_t* data, std::size_t len);

  /// Decode the next frame into `*out` (valid only on kOk).
  DecodeStatus next(Frame* out);

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t pending_bytes() const {
    return buffer_.size() - consumed_;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  DecodeStatus error_ = DecodeStatus::kOk;  ///< sticky fatal status
};

// ---------------------------------------------------------------- payloads

/// kPortResponse / kErBatch payload: a routed query batch.
struct QueryBatchRequest {
  RouteMode route = RouteMode::kSharded;
  std::vector<PortQuery> queries;  ///< never empty on a decoded request
};

/// kSubmitMods payload — the net-level mirror of pg's GridModification
/// (src/net/ stays pg-free; ServingStack translates).
struct WireModification {
  std::vector<index_t> dirty_blocks;
  real_t resistance_scale = 1.2;
};

/// kAnswer payload: the batch's answers (bit-exact f64) plus the snapshot
/// version they were answered on.
struct AnswerReply {
  std::uint64_t snapshot_version = 0;
  std::vector<real_t> answers;
};

/// kStatsReply payload: the daemon's counters at the instant of the
/// request (all figures are since process start).
struct StatsReply {
  bool has_version = false;       ///< false before the first publish
  std::uint64_t snapshot_version = 0;
  std::uint64_t publishes = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t retry_later_sent = 0;
  std::uint64_t mods_applied = 0;
  std::uint64_t bad_frames = 0;
  std::uint32_t queue_depth = 0;
  bool draining = false;
};

/// kError payload.
struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

// Encoders always succeed (inputs are trusted, produced in-process);
// decoders return false on any malformed payload — wrong length, count
// out of [1, kMaxBatchItems], out-of-range enum byte, non-finite scale —
// without throwing and without reading past the payload.
//
// The query-batch codec is versioned: per query, v1 carries
// (kind u8, p i32, q i32) and v2 appends the QueryPolicy as
// (deadline_us u32, tier u8, pref u8, hedge u8). Encoding at v1 drops the
// policies (old servers would ignore them anyway); decoding a v1 payload
// yields default policies. Out-of-range version -> false.
[[nodiscard]] std::vector<std::uint8_t> encode_query_batch(
    const QueryBatchRequest& req, std::uint16_t version = kProtocolVersion);
[[nodiscard]] bool decode_query_batch(const std::vector<std::uint8_t>& payload,
                                      QueryBatchRequest* out,
                                      std::uint16_t version = kProtocolVersion);

[[nodiscard]] std::vector<std::uint8_t> encode_modification(
    const WireModification& mod);
[[nodiscard]] bool decode_modification(const std::vector<std::uint8_t>& payload,
                                       WireModification* out);

[[nodiscard]] std::vector<std::uint8_t> encode_answer(const AnswerReply& reply);
[[nodiscard]] bool decode_answer(const std::vector<std::uint8_t>& payload,
                                 AnswerReply* out);

[[nodiscard]] std::vector<std::uint8_t> encode_stats(const StatsReply& reply);
[[nodiscard]] bool decode_stats(const std::vector<std::uint8_t>& payload,
                                StatsReply* out);

[[nodiscard]] std::vector<std::uint8_t> encode_error(const ErrorReply& reply);
[[nodiscard]] bool decode_error(const std::vector<std::uint8_t>& payload,
                                ErrorReply* out);

}  // namespace er::net
