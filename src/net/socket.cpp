#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace er::net {

namespace {

/// Session-socket hygiene: no Nagle batching (frames are latency-bound)
/// and a bounded send timeout so a stalled peer cannot park send_all
/// forever during drain.
void tune_stream_socket(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = 5;
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Fd listen_tcp(int port, int backlog, int* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Fd();
  int one = 1;
  (void)setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return Fd();
  if (::listen(fd.get(), backlog) != 0) return Fd();
  if (bound_port) {
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&got), &len) != 0)
      return Fd();
    *bound_port = ntohs(got.sin_port);
  }
  return fd;
}

Fd connect_tcp(const std::string& host, int port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Fd();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return Fd();
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Fd();
  tune_stream_socket(fd.get());
  return fd;
}

Fd accept_tcp(int listen_fd, int timeout_ms, bool* timed_out) {
  if (timed_out) *timed_out = false;
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) {
    if (timed_out) *timed_out = true;
    return Fd();
  }
  if (rc < 0) return Fd();
  Fd fd(::accept(listen_fd, nullptr, nullptr));
  if (fd.valid()) tune_stream_socket(fd.get());
  return fd;
}

bool send_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

long recv_some(int fd, void* buf, std::size_t cap, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) return -2;
  if (rc < 0) return -1;
  ssize_t n;
  do {
    n = ::recv(fd, buf, cap, 0);
  } while (n < 0 && errno == EINTR);
  return n < 0 ? -1 : static_cast<long>(n);
}

void shutdown_fd(int fd) {
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
}

}  // namespace er::net
