#include "net/stack.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace er::net {

ServingStack::ServingStack(const ConductanceNetwork& grid_net,
                           const std::vector<char>& is_port,
                           StackOptions options,
                           obs::MetricsRegistry* registry)
    : options_(options),
      registry_(&obs::registry_or_global(registry)),
      store_(registry_),
      reducer_(grid_net, is_port, options_.reduction),
      structure_(reducer_.structure()),
      frontend_(&store_, registry_),
      current_(grid_net),
      updater_(
          [this](const ConductanceNetwork& network,
                 const std::vector<index_t>& dirty_blocks) {
            reducer_.update(network, dirty_blocks);
            return reducer_.revision();
          },
          AsyncUpdater::Options{options_.staleness_bound, options_.fail_fast,
                                /*version_log_cap=*/256, registry_}) {
  if (options_.attach_cache) {
    cache_ = std::make_shared<ResultCache>(options_.serving.cache, registry_);
    store_.attach_cache(cache_);
  }
  // Publishes the initial snapshot (version 0) — the updater's worker is
  // already running but idle, so no update can race this.
  reducer_.attach_store(&store_, options_.serving);
}

ServingStack::~ServingStack() {
  // Drain explicitly (the updater destructor would too, but doing it here
  // makes the ordering obvious): after this no worker touches reducer_.
  try {
    updater_.drain();
  } catch (...) {
    // A latched worker error surfaces through apply_mod()/flush() during
    // normal operation; teardown must not throw.
  }
}

bool ServingStack::apply_mod(const WireModification& mod) {
  GridModification grid_mod;
  grid_mod.dirty_blocks = mod.dirty_blocks;
  grid_mod.resistance_scale = mod.resistance_scale;
  for (const index_t block : grid_mod.dirty_blocks) {
    if (block < 0 || block >= structure_.num_blocks)
      throw std::invalid_argument("modification block id " +
                                  std::to_string(block) +
                                  " out of range (grid has " +
                                  std::to_string(structure_.num_blocks) +
                                  " blocks)");
  }
  util::MutexLock lock(&mod_mutex_);
  ConductanceNetwork next =
      apply_modification(current_, structure_, grid_mod);
  // submit() consumes a copy; `next` becomes the new cumulative state only
  // if the updater accepted the edit (back-pressure leaves us untouched).
  if (!updater_.submit(next, grid_mod.dirty_blocks)) return false;
  current_ = std::move(next);
  ++accepted_;
  return true;
}

std::function<bool(const WireModification&)> ServingStack::mod_fn() {
  return [this](const WireModification& mod) { return apply_mod(mod); };
}

std::uint64_t ServingStack::mods_accepted() const {
  util::MutexLock lock(&mod_mutex_);
  return accepted_;
}

}  // namespace er::net
