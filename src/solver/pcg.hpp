// Preconditioned conjugate gradient for SPD systems.
//
// The random-projection baseline [1] resolves O(log n) Laplacian systems;
// in the authors' setup this is the CMG solver, here it is PCG with an
// incomplete-Cholesky preconditioner (see DESIGN.md §2 substitutions).
#pragma once

#include <functional>
#include <vector>

#include "chol/factor.hpp"
#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace er {

struct PcgOptions {
  real_t rel_tolerance = 1e-10;  // on ||r|| / ||b||
  int max_iterations = 2000;
};

struct PcgResult {
  std::vector<real_t> x;
  int iterations = 0;
  real_t relative_residual = 0.0;
  bool converged = false;
};

/// Generic preconditioner application: z = M^{-1} r.
using Preconditioner =
    std::function<void(const std::vector<real_t>&, std::vector<real_t>&)>;

/// Identity preconditioner (plain CG).
Preconditioner identity_preconditioner();

/// Jacobi (diagonal) preconditioner for A.
Preconditioner jacobi_preconditioner(const CscMatrix& a);

/// Incomplete-Cholesky preconditioner wrapping an existing factor
/// (applies the factor's permutation internally).
Preconditioner ichol_preconditioner(const CholFactor& factor);

/// Solve A x = b with PCG.
PcgResult pcg_solve(const CscMatrix& a, const std::vector<real_t>& b,
                    const Preconditioner& precond, const PcgOptions& opts = {});

}  // namespace er
