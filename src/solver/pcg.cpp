#include "solver/pcg.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/dense.hpp"

namespace er {

Preconditioner identity_preconditioner() {
  return [](const std::vector<real_t>& r, std::vector<real_t>& z) { z = r; };
}

Preconditioner jacobi_preconditioner(const CscMatrix& a) {
  std::vector<real_t> inv_diag = a.diagonal();
  for (real_t& d : inv_diag) {
    if (d <= 0.0)
      throw std::invalid_argument("jacobi_preconditioner: non-positive diagonal");
    d = 1.0 / d;
  }
  return [inv_diag = std::move(inv_diag)](const std::vector<real_t>& r,
                                          std::vector<real_t>& z) {
    z.resize(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = inv_diag[i] * r[i];
  };
}

Preconditioner ichol_preconditioner(const CholFactor& factor) {
  return [&factor](const std::vector<real_t>& r, std::vector<real_t>& z) {
    z = factor.solve(r);
  };
}

PcgResult pcg_solve(const CscMatrix& a, const std::vector<real_t>& b,
                    const Preconditioner& precond, const PcgOptions& opts) {
  const auto n = static_cast<std::size_t>(a.rows());
  if (b.size() != n) throw std::invalid_argument("pcg_solve: size mismatch");

  PcgResult res;
  res.x.assign(n, 0.0);

  std::vector<real_t> r = b;  // r = b - A*0
  const real_t bnorm = norm2(b);
  if (bnorm == 0.0) {
    res.converged = true;
    return res;
  }

  std::vector<real_t> z(n), p(n), ap(n);
  precond(r, z);
  p = z;
  real_t rz = dot(r, z);

  for (int it = 0; it < opts.max_iterations; ++it) {
    a.multiply(p, ap);
    const real_t pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD / numeric trouble
    const real_t alpha = rz / pap;
    axpy(alpha, p, res.x);
    axpy(-alpha, ap, r);
    res.iterations = it + 1;
    res.relative_residual = norm2(r) / bnorm;
    if (res.relative_residual <= opts.rel_tolerance) {
      res.converged = true;
      return res;
    }
    precond(r, z);
    const real_t rz_new = dot(r, z);
    const real_t beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return res;
}

}  // namespace er
