#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

namespace er::obs {

namespace {

void atomic_add_double(std::atomic<double>& a, double d) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v && !a.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
}

}  // namespace

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the requested sample, 1-based: ceil(q * count), clamped so
  // q = 0 still names the first sample.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    if (i == bounds.size()) return max;  // overflow bucket
    // Interpolate by the rank's position inside this bucket. Latency
    // buckets start at 0 conceptually; a leading negative bound would
    // make `lo` that bound instead.
    const double lo = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
    const double hi = bounds[i];
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(in_bucket);
    return lo + (hi - lo) * frac;
  }
  return max;  // unreachable with consistent count/buckets
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: empty bucket bounds");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::record(double v) noexcept {
  // Bucket i covers (bounds[i-1], bounds[i]]: the first bound >= v, or
  // the overflow slot past the end.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
  atomic_max_double(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  // A record() racing the snapshot can bump count_ after the bucket
  // reads; clamp so count never understates the bucket totals (exporters
  // rely on count == sum of buckets).
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.buckets) bucket_total += b;
  s.count = bucket_total;
  return s;
}

std::vector<double> Histogram::latency_seconds_buckets() {
  std::vector<double> bounds;
  bounds.reserve(27);
  double b = 1e-6;
  for (int k = 0; k <= 26; ++k, b *= 2.0) bounds.push_back(b);
  return bounds;
}

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

const MetricSnapshot* MetricsSnapshot::find(const std::string& name,
                                            const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const MetricSnapshot& e : entries)
    if (e.name == name && e.labels == sorted) return &e;
  return nullptr;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const MetricSnapshot& o : other.entries) {
    auto it = std::find_if(entries.begin(), entries.end(),
                           [&o](const MetricSnapshot& e) {
                             return e.name == o.name && e.labels == o.labels;
                           });
    if (it == entries.end()) {
      // Insert keeping (name, labels) order so exports stay deterministic.
      auto pos = std::find_if(
          entries.begin(), entries.end(), [&o](const MetricSnapshot& e) {
            return std::tie(e.name, e.labels) > std::tie(o.name, o.labels);
          });
      entries.insert(pos, o);
      continue;
    }
    if (it->kind != o.kind) continue;  // mismatched kinds never merge
    switch (o.kind) {
      case MetricKind::kCounter:
        it->counter += o.counter;
        break;
      case MetricKind::kGauge:
        it->gauge = std::max(it->gauge, o.gauge);
        break;
      case MetricKind::kHistogram: {
        HistogramSnapshot& h = it->histogram;
        if (h.bounds != o.histogram.bounds) break;  // incompatible bounds
        for (std::size_t i = 0; i < h.buckets.size(); ++i)
          h.buckets[i] += o.histogram.buckets[i];
        h.count += o.histogram.count;
        h.sum += o.histogram.sum;
        h.max = std::max(h.max, o.histogram.max);
        break;
      }
    }
  }
}

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name,
                                               Labels& labels,
                                               MetricKind kind,
                                               const std::string& help) {
  std::sort(labels.begin(), labels.end());
  Entry& e = metrics_[Key{name, labels}];
  const bool fresh = !e.counter && !e.gauge && !e.histogram;
  if (!fresh && e.kind != kind)
    throw std::logic_error("MetricsRegistry: '" + name + "' already " +
                           "registered as " + to_string(e.kind) +
                           ", requested as " + to_string(kind));
  if (fresh) {
    e.kind = kind;
    e.help = help;
  }
  return e;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels,
                                  const std::string& help) {
  util::MutexLock lock(&mutex_);
  Entry& e = entry(name, labels, MetricKind::kCounter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels,
                              const std::string& help) {
  util::MutexLock lock(&mutex_);
  Entry& e = entry(name, labels, MetricKind::kGauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      const std::string& help,
                                      std::vector<double> bounds) {
  util::MutexLock lock(&mutex_);
  Entry& e = entry(name, labels, MetricKind::kHistogram, help);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  util::MutexLock lock(&mutex_);
  MetricsSnapshot s;
  s.entries.reserve(metrics_.size());
  for (const auto& [key, e] : metrics_) {
    MetricSnapshot m;
    m.name = key.first;
    m.labels = key.second;
    m.help = e.help;
    m.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        m.counter = e.counter->value();
        break;
      case MetricKind::kGauge:
        m.gauge = e.gauge->value();
        break;
      case MetricKind::kHistogram:
        m.histogram = e.histogram->snapshot();
        break;
    }
    s.entries.push_back(std::move(m));
  }
  return s;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* g = new MetricsRegistry();  // never destroyed:
  // worker threads and RAII spans may record during static teardown.
  return *g;
}

}  // namespace er::obs
