#include "obs/export.hpp"

#include <cmath>
#include <cstdio>

namespace er::obs {

namespace {

std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "null";  // keeps the JSON exporter valid
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Prometheus label escaping: backslash, double quote, newline.
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string label_block(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = "") {
  if (labels.empty() && !extra_key) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escaped(v) + "\"";
  }
  if (extra_key) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + escaped(extra_value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  const std::string* last_family = nullptr;
  for (const MetricSnapshot& m : snapshot.entries) {
    // Entries are sorted by name, so a family's HELP/TYPE header goes in
    // front of its first labeled series only.
    if (!last_family || *last_family != m.name) {
      if (!m.help.empty())
        out += "# HELP " + m.name + " " + m.help + "\n";
      out += "# TYPE " + m.name + " " + std::string(to_string(m.kind)) + "\n";
      last_family = &m.name;
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        out += m.name + label_block(m.labels) + " " +
               std::to_string(m.counter) + "\n";
        break;
      case MetricKind::kGauge:
        out += m.name + label_block(m.labels) + " " +
               std::to_string(m.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot& h = m.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += h.buckets[i];
          out += m.name + "_bucket" +
                 label_block(m.labels, "le", fmt_double(h.bounds[i])) + " " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += h.buckets.back();
        out += m.name + "_bucket" + label_block(m.labels, "le", "+Inf") +
               " " + std::to_string(cumulative) + "\n";
        out += m.name + "_sum" + label_block(m.labels) + " " +
               fmt_double(h.sum) + "\n";
        out += m.name + "_count" + label_block(m.labels) + " " +
               std::to_string(h.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_bench_json(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  auto emit = [&out, &first](const std::string& key,
                             const std::string& value) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + key + "\": " + value;
  };
  for (const MetricSnapshot& m : snapshot.entries) {
    std::string key = m.name;
    if (!m.labels.empty()) {
      key += "{";
      for (std::size_t i = 0; i < m.labels.size(); ++i) {
        if (i) key += ",";
        key += m.labels[i].first + "=" + m.labels[i].second;
      }
      key += "}";
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        emit(key, std::to_string(m.counter));
        break;
      case MetricKind::kGauge:
        emit(key, std::to_string(m.gauge));
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot& h = m.histogram;
        emit(key + "_count", std::to_string(h.count));
        emit(key + "_sum", fmt_double(h.sum));
        emit(key + "_max", fmt_double(h.max));
        emit(key + "_p50", fmt_double(h.quantile(0.50)));
        emit(key + "_p95", fmt_double(h.quantile(0.95)));
        emit(key + "_p99", fmt_double(h.quantile(0.99)));
        break;
      }
    }
  }
  out += "}";
  return out;
}

}  // namespace er::obs
