#include "obs/trace.hpp"

#include <functional>
#include <thread>

namespace er::obs {

namespace {

std::chrono::steady_clock::time_point span_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

void TraceRing::set_capacity(std::size_t n) {
  util::MutexLock lock(&mutex_);
  capacity_.store(n, std::memory_order_relaxed);
  while (spans_.size() > n) spans_.pop_front();
}

void TraceRing::push(const SpanRecord& span) {
  // One relaxed load keeps the disabled ring nearly free; the capacity is
  // re-checked under the lock so a concurrent shrink stays a bound.
  if (capacity_.load(std::memory_order_relaxed) == 0) return;
  util::MutexLock lock(&mutex_);
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return;
  spans_.push_back(span);
  while (spans_.size() > cap) spans_.pop_front();
}

std::vector<SpanRecord> TraceRing::recent() const {
  util::MutexLock lock(&mutex_);
  return {spans_.begin(), spans_.end()};
}

void TraceRing::clear() {
  util::MutexLock lock(&mutex_);
  spans_.clear();
}

TraceRing& TraceRing::global() {
  static TraceRing* g = new TraceRing();  // never destroyed: spans may
  // close during static teardown.
  return *g;
}

Histogram& stage_histogram(const char* stage) {
  return MetricsRegistry::global().histogram(
      "er_span_seconds", {{"stage", stage}},
      "Wall-clock duration of OBS_SPAN pipeline stages");
}

double span_epoch_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       span_epoch())
      .count();
}

SpanGuard::SpanGuard(const char* stage, std::int64_t id)
    : stage_(stage), id_(id) {
  (void)span_epoch();  // pin the epoch before the first span closes
  start_ = std::chrono::steady_clock::now();
}

SpanGuard::~SpanGuard() {
  const auto end = std::chrono::steady_clock::now();
  const double duration =
      std::chrono::duration<double>(end - start_).count();
  stage_histogram(stage_).record(duration);
  TraceRing& ring = TraceRing::global();
  if (ring.capacity() > 0) {
    SpanRecord r;
    r.stage = stage_;
    r.id = id_;
    r.start_seconds =
        std::chrono::duration<double>(start_ - span_epoch()).count();
    r.duration_seconds = duration;
    r.thread = static_cast<std::uint64_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    ring.push(r);
  }
}

}  // namespace er::obs
