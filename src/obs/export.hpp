/// \file
/// Exporters for MetricsSnapshot (DESIGN.md §6): Prometheus text
/// exposition format — the payload of the ROADMAP daemon's
/// `/metrics`-style endpoint, also dumped by `bench_serving --metrics` —
/// and the repo's BENCH-style flat JSON. Both are deterministic functions
/// of the snapshot (entries are already sorted by name and labels), so
/// exports golden-file cleanly.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace er::obs {

/// Prometheus text exposition format, version 0.0.4: `# HELP` / `# TYPE`
/// headers per family, counters/gauges as bare samples, histograms as
/// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// BENCH-style flat JSON object: one key per metric — labels folded into
/// the key as `name{k=v,...}` — with counters/gauges as numbers and
/// histograms expanded to `_count`, `_sum`, `_max`, `_p50`, `_p95`,
/// `_p99` keys, matching the flat-row convention of BENCH_*.json files.
[[nodiscard]] std::string to_bench_json(const MetricsSnapshot& snapshot);

}  // namespace er::obs
