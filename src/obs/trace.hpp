/// \file
/// Pipeline trace spans (DESIGN.md §6): `OBS_SPAN("stitch", block_id)`
/// opens an RAII span whose wall-clock duration feeds a per-stage
/// aggregate histogram in the global registry
/// (`er_span_seconds{stage="stitch"}`) and, when enabled, a bounded
/// in-memory ring of recent spans for post-hoc debugging.
///
/// Cost model: a span costs two steady_clock reads plus one registry
/// lookup (mutex + map find, ~100 ns) per construction — cheap against
/// the multi-microsecond-to-seconds stages it wraps (partition / reduce /
/// stitch / publish / per-block phases), but NOT for per-query
/// granularity; per-query latency is recorded by the serving layer
/// through cached Histogram handles instead (serve/query_frontend.cpp).
///
/// Compile-out: building with -DER_OBS_DISABLE_SPANS (CMake
/// -DER_OBS_SPANS=OFF) expands every OBS_SPAN to nothing. Spans only
/// *read* clocks — no computation consumes them — so reduced models are
/// bit-identical with spans on, off, or compiled out (the determinism
/// contract of DESIGN.md §3).
///
/// The ring is off by default (capacity 0, one relaxed atomic load per
/// span); `TraceRing::global().set_capacity(n)` turns it on for a debug
/// session.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace er::obs {

/// One finished span, as stored in the ring.
struct SpanRecord {
  const char* stage = "";        ///< static string passed to OBS_SPAN
  std::int64_t id = -1;          ///< optional caller id (block, version, …)
  double start_seconds = 0.0;    ///< offset from process span epoch
  double duration_seconds = 0.0; ///< wall-clock span length
  std::uint64_t thread = 0;      ///< hashed id of the recording thread
};

/// Bounded ring of the most recent spans. Disabled at capacity 0 (the
/// default): a disabled ring costs one relaxed load per span. Thread-safe.
class TraceRing {
 public:
  /// Resize the ring; 0 disables it and clears retained spans. Shrinking
  /// drops the oldest spans.
  void set_capacity(std::size_t n) ER_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  void push(const SpanRecord& span) ER_EXCLUDES(mutex_);
  /// Retained spans, oldest first.
  [[nodiscard]] std::vector<SpanRecord> recent() const ER_EXCLUDES(mutex_);
  void clear() ER_EXCLUDES(mutex_);

  /// The process-wide ring OBS_SPAN records into.
  static TraceRing& global();

 private:
  /// Atomic, not guarded: push() reads it lock-free as the fast-path
  /// disabled check, then re-reads under mutex_ so a concurrent shrink
  /// stays a bound (writes always happen under mutex_).
  std::atomic<std::size_t> capacity_{0};
  mutable util::Mutex mutex_;
  std::deque<SpanRecord> spans_ ER_GUARDED_BY(mutex_);
};

/// The per-stage aggregate histogram of the global registry
/// (`er_span_seconds{stage=<stage>}`). `stage` must be a static string.
Histogram& stage_histogram(const char* stage);

/// Seconds since the process span epoch (first use of the trace layer) —
/// the time base of SpanRecord::start_seconds.
double span_epoch_seconds();

/// RAII span: construction stamps the start, destruction records the
/// duration into the stage histogram and (if enabled) the global ring.
/// Use through OBS_SPAN rather than directly.
class SpanGuard {
 public:
  explicit SpanGuard(const char* stage, std::int64_t id = -1);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* stage_;
  std::int64_t id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace er::obs

// OBS_SPAN("stage") / OBS_SPAN("stage", id): open a span covering the rest
// of the enclosing block. The stage string must be a literal (it is stored
// by pointer). Compiled out entirely under ER_OBS_DISABLE_SPANS.
#if defined(ER_OBS_DISABLE_SPANS)
#define OBS_SPAN(...) ((void)0)
#else
#define ER_OBS_SPAN_CAT2(a, b) a##b
#define ER_OBS_SPAN_CAT(a, b) ER_OBS_SPAN_CAT2(a, b)
#define OBS_SPAN(...) \
  ::er::obs::SpanGuard ER_OBS_SPAN_CAT(obs_span_, __LINE__)(__VA_ARGS__)
#endif
