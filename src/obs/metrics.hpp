/// \file
/// Process-wide metrics registry (DESIGN.md §6): lock-free atomic
/// counters, gauges, and fixed-bucket latency histograms with
/// p50/p95/p99 extraction, named and labeled, exportable as Prometheus
/// text exposition or BENCH-style flat JSON (obs/export.hpp).
///
/// Design rules:
///   * Recording is wait-free: Counter::add / Gauge::set / Gauge::add are
///     single relaxed atomic RMWs; Histogram::record is a bucket search
///     over a small fixed bounds array plus three relaxed atomics (a CAS
///     loop for the double-valued sum/max, which converges in one
///     iteration without contention). Budget: ≤ ~20 ns per record on the
///     serving hot path.
///   * Registration (get-or-create by name+labels) takes a mutex and is
///     meant for construction time; hot paths cache the returned pointer,
///     which stays valid for the registry's lifetime.
///   * Snapshots are per-metric consistent: one snapshot() call reads each
///     atomic once, so every exported metric is a value that existed at
///     some instant during the call, but two metrics may be captured a few
///     nanoseconds apart. Cross-metric invariants (e.g. submitted =
///     applied + pending) are owned by the component that updates them
///     under its own lock, not by the registry.
///   * Observability never feeds back into computation: nothing in this
///     layer is read by the reduction or serving code paths, so model
///     bytes are bit-identical with metrics enabled, disabled, or compiled
///     out (the determinism contract of DESIGN.md §3).
///
/// Components default to the process-wide MetricsRegistry::global();
/// tests and benches that need isolated figures pass their own instance
/// (every instrumented constructor takes an optional registry).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace er::obs {

/// Metric labels, as (key, value) pairs. Registration sorts them by key,
/// so {{"a","1"},{"b","2"}} and {{"b","2"},{"a","1"}} name the same
/// metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event counter. Unsigned 64-bit with well-defined wraparound
/// (modulo 2^64) — at one increment per nanosecond that is ~584 years, so
/// exporters treat the value as effectively monotone.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value (queue depth, current version, high-water
/// marks via max_with).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  /// Monotone high-water update: value = max(value, v).
  void max_with(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed,
                          std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// One histogram's state at a snapshot instant, with quantile extraction.
struct HistogramSnapshot {
  /// Upper bucket bounds, strictly increasing; bucket i counts samples in
  /// (bounds[i-1], bounds[i]] (first bucket: (-inf, bounds[0]]); the
  /// final `buckets` entry is the overflow bucket (bounds.back(), +inf).
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;             ///< total samples
  double sum = 0.0;                    ///< sum of samples
  double max = 0.0;                    ///< largest sample (0 when empty)

  /// Approximate q-quantile (q in [0,1]) by locating the bucket holding
  /// the rank-ceil(q*count) sample and interpolating linearly inside it.
  /// The error is bounded by the width of that bucket; with the default
  /// power-of-two latency bounds the relative error is ≤ 2x. Returns 0
  /// for an empty histogram. Samples in the overflow bucket report the
  /// observed max.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Fixed-bucket histogram. record() is lock-free and never allocates;
/// bounds are fixed at construction.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing (throws
  /// std::invalid_argument otherwise). Defaults to
  /// latency_seconds_buckets().
  explicit Histogram(std::vector<double> bounds = latency_seconds_buckets());

  /// Record one sample. Wait-free apart from the double-valued sum/max
  /// CAS loops (one iteration when uncontended).
  void record(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max_value() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Default latency bounds: powers of two from 1 µs to ~67 s (1e-6 * 2^k,
  /// k = 0..26), in seconds. 27 bounds + overflow covers everything from a
  /// single triangular-solve query to a cold full reduction with ≤ 2x
  /// relative quantile error.
  static std::vector<double> latency_seconds_buckets();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// What kind of metric an entry holds.
enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricKind k);

/// One metric's identity + value at a snapshot instant.
struct MetricSnapshot {
  std::string name;
  Labels labels;  ///< sorted by key
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;   ///< kCounter
  std::int64_t gauge = 0;      ///< kGauge
  HistogramSnapshot histogram; ///< kHistogram
};

/// A registry's full state at one instant, sorted by (name, labels) so
/// exports are deterministic.
struct MetricsSnapshot {
  std::vector<MetricSnapshot> entries;

  /// Entry with the given name and (sorted or unsorted) labels, or null.
  [[nodiscard]] const MetricSnapshot* find(const std::string& name,
                                           const Labels& labels = {}) const;

  /// Fold `other` into this snapshot: counters and histograms (of equal
  /// bounds) add, gauges take the maximum (high-water semantics — the
  /// merge use case is accumulating per-iteration registries into one
  /// export, where "largest observed" is the meaningful combination),
  /// entries missing here are appended. Keeps (name, labels) order.
  void merge(const MetricsSnapshot& other);
};

/// Named, labeled metric store. Creation is mutex-guarded get-or-create;
/// the returned references are stable for the registry's lifetime and
/// record lock-free. Re-requesting an existing name with a different
/// metric kind throws std::logic_error; a histogram re-request ignores
/// the bounds argument and returns the existing instance.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, Labels labels = {},
                   const std::string& help = "") ER_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name, Labels labels = {},
               const std::string& help = "") ER_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name, Labels labels = {},
                       const std::string& help = "",
                       std::vector<double> bounds =
                           Histogram::latency_seconds_buckets())
      ER_EXCLUDES(mutex_);

  [[nodiscard]] MetricsSnapshot snapshot() const ER_EXCLUDES(mutex_);

  /// The process-wide default registry every instrumented component
  /// records into unless handed an explicit instance.
  static MetricsRegistry& global();

 private:
  struct Entry {
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, Labels>;

  Entry& entry(const std::string& name, Labels& labels, MetricKind kind,
               const std::string& help) ER_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::map<Key, Entry> metrics_ ER_GUARDED_BY(mutex_);
};

/// `registry` if non-null, else the global registry — the convention
/// every instrumented constructor uses for its optional registry
/// parameter.
inline MetricsRegistry& registry_or_global(MetricsRegistry* registry) {
  return registry ? *registry : MetricsRegistry::global();
}

}  // namespace er::obs
