// Incremental effective-resistance updates via the Sherman–Morrison
// identity. Adding an edge (a, b) of weight w to G updates every
// resistance in closed form:
//
//   R'(p,q) = R(p,q) − w · M(p,q)² / (1 + w · R(a,b)),
//   M(p,q) = (e_p − e_q)ᵀ L⁺ (e_a − e_b),
//
// so previewing a candidate edge costs ONE extra solve, after which any
// number of pair queries are O(1) dense reads. This is the "what would this
// new wire do to the grid" primitive used in incremental design loops.
#pragma once

#include <vector>

#include "effres/exact.hpp"
#include "util/types.hpp"

namespace er {

class EdgeUpdatePreview {
 public:
  /// Prepare the preview of adding edge (a, b) with weight w > 0 on top of
  /// the engine's graph. Performs one solve against the engine's factor.
  EdgeUpdatePreview(const ExactEffRes& base, index_t a, index_t b, real_t w);

  /// Resistance between p and q in the graph WITH the new edge.
  [[nodiscard]] real_t updated_resistance(index_t p, index_t q) const;

  /// The change R'(p,q) - R(p,q) (always <= 0, Rayleigh monotonicity).
  [[nodiscard]] real_t delta(index_t p, index_t q) const;

  [[nodiscard]] real_t new_edge_weight() const { return w_; }

 private:
  const ExactEffRes* base_;
  index_t a_;
  index_t b_;
  real_t w_;
  real_t r_ab_ = 0.0;              // R(a, b) before the update
  std::vector<real_t> potential_;  // L^{-1} (e_a - e_b), original node ids
};

}  // namespace er
