#include "effres/updates.hpp"

#include <stdexcept>

namespace er {

EdgeUpdatePreview::EdgeUpdatePreview(const ExactEffRes& base, index_t a,
                                     index_t b, real_t w)
    : base_(&base), a_(a), b_(b), w_(w) {
  if (!(w > 0.0))
    throw std::invalid_argument("EdgeUpdatePreview: weight must be positive");
  if (a == b)
    throw std::invalid_argument("EdgeUpdatePreview: self-loop");
  const CholFactor& f = base.factor();
  std::vector<real_t> rhs(static_cast<std::size_t>(f.n), 0.0);
  rhs[static_cast<std::size_t>(a)] = 1.0;
  rhs[static_cast<std::size_t>(b)] = -1.0;
  potential_ = f.solve(rhs);
  r_ab_ = potential_[static_cast<std::size_t>(a)] -
          potential_[static_cast<std::size_t>(b)];
}

real_t EdgeUpdatePreview::delta(index_t p, index_t q) const {
  if (p == q) return 0.0;
  const real_t m = potential_[static_cast<std::size_t>(p)] -
                   potential_[static_cast<std::size_t>(q)];
  return -w_ * m * m / (1.0 + w_ * r_ab_);
}

real_t EdgeUpdatePreview::updated_resistance(index_t p, index_t q) const {
  if (p == q) return 0.0;
  return base_->resistance(p, q) + delta(p, q);
}

}  // namespace er
