// Monte-Carlo effective resistances from random-walk commute times — the
// family of methods the paper cites as [2][3] and excludes from its
// comparison because they are practical only on unweighted graphs (the
// variance explodes under weight spread). Provided for completeness and as
// an algebra-free cross-check of the other engines:
//
//   C(p,q) = E[hit q from p] + E[hit p from q] = 2 W(G) R(p,q),
//
// with W(G) the total edge weight. Each query simulates `walks` round trips.
#pragma once

#include "effres/engine.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace er {

struct RandomWalkOptions {
  std::size_t walks = 200;           // round trips per query
  std::uint64_t seed = 31;
  /// Abort a single walk after this many steps (guards pathological
  /// weight distributions; aborted walks bias the estimate down).
  std::size_t max_steps_per_walk = 50'000'000;
};

class RandomWalkEffRes final : public EffResEngine {
 public:
  explicit RandomWalkEffRes(const Graph& g, const RandomWalkOptions& opts = {});

  /// NOT thread-safe, unlike every other engine: each query advances the
  /// shared rng_ stream (documented exception to the EffResEngine
  /// contract; this Monte-Carlo engine is a diagnostic, never resident
  /// serving state).
  [[nodiscard]] real_t resistance(index_t p, index_t q) const override;

  /// Serial override: queries advance the shared RNG stream, so chunking
  /// them across a pool would race (and change results with thread count).
  void resistances_into(const std::vector<ResistanceQuery>& queries,
                        std::vector<real_t>& out,
                        ThreadPool* pool = nullptr) const override;

  [[nodiscard]] std::string name() const override { return "random-walk"; }

 private:
  /// One walk from `from` until it hits `to`; returns the step count.
  std::size_t hitting_steps(index_t from, index_t to) const;

  const Graph* g_;
  RandomWalkOptions opts_;
  real_t total_weight_ = 0.0;
  mutable Rng rng_;
};

}  // namespace er
