// Monte-Carlo effective resistances from random-walk commute times — the
// family of methods the paper cites as [2][3] and excludes from its
// comparison because they are practical only on unweighted graphs (the
// variance explodes under weight spread). Provided for completeness and as
// an algebra-free cross-check of the other engines:
//
//   C(p,q) = E[hit q from p] + E[hit p from q] = 2 W(G) R(p,q),
//
// with W(G) the total edge weight. Each query simulates `walks` round trips.
#pragma once

#include "effres/engine.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace er {

struct RandomWalkOptions {
  std::size_t walks = 200;           // round trips per query
  std::uint64_t seed = 31;
  /// Abort a single walk after this many steps (guards pathological
  /// weight distributions; aborted walks bias the estimate down).
  std::size_t max_steps_per_walk = 50'000'000;
};

/// Thread-safe like every other engine (the former "sole exception" note
/// in engine.hpp is history): the engine holds no mutable query state.
/// Query i of a batch draws from its own Rng(mix_seed(seed, i)) stream —
/// the §3 per-index-stream discipline — so batched resistances_into
/// chunks across a pool and stays bit-identical at any thread count; the
/// single-query resistance(p, q) is defined as a batch of one (stream 0)
/// and therefore returns the same sample on every call.
class RandomWalkEffRes final : public EffResEngine {
 public:
  explicit RandomWalkEffRes(const Graph& g, const RandomWalkOptions& opts = {});

  /// Const and thread-safe; deterministic per (engine seed, p, q) — this
  /// is batch index 0's stream, so resistance(p, q) ==
  /// resistances({{p, q}})[0].
  [[nodiscard]] real_t resistance(index_t p, index_t q) const override;

  /// Batched override: query i samples from the independent
  /// mix_seed(seed, i) stream and writes only its own slot, so the batch
  /// parallelizes across `pool` and is identical at any thread count.
  void resistances_into(const std::vector<ResistanceQuery>& queries,
                        std::vector<real_t>& out,
                        ThreadPool* pool = nullptr) const override;

  [[nodiscard]] std::string name() const override { return "random-walk"; }

  /// Monte-Carlo round trips per query — orders of magnitude above the
  /// deterministic engines, and never an automatic routing target.
  [[nodiscard]] double cost_hint() const override { return 256.0; }

 private:
  /// One walk from `from` until it hits `to`; returns the step count.
  std::size_t hitting_steps(index_t from, index_t to, Rng& rng) const;

  /// The shared estimator body: `walks` round trips drawn from `rng`.
  real_t estimate(index_t p, index_t q, Rng& rng) const;

  const Graph* g_;
  RandomWalkOptions opts_;
  real_t total_weight_ = 0.0;
};

}  // namespace er
