#include "effres/engine.hpp"

namespace er {

std::vector<real_t> EffResEngine::resistances(
    const std::vector<ResistanceQuery>& queries) const {
  std::vector<real_t> out;
  out.reserve(queries.size());
  for (const auto& [p, q] : queries) out.push_back(resistance(p, q));
  return out;
}

std::vector<ResistanceQuery> all_edge_queries(const Graph& g) {
  std::vector<ResistanceQuery> qs;
  qs.reserve(g.num_edges());
  for (const auto& e : g.edges()) qs.emplace_back(e.u, e.v);
  return qs;
}

}  // namespace er
