#include "effres/engine.hpp"

#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace er {

void EffResEngine::resistances_into(const std::vector<ResistanceQuery>& queries,
                                    std::vector<real_t>& out,
                                    ThreadPool* pool) const {
  if (out.size() < queries.size())
    throw std::invalid_argument("resistances_into: output under-sized");
  parallel_for(pool, 0, static_cast<index_t>(queries.size()), kBatchQueryGrain,
               [&](index_t lo, index_t hi) {
                 for (index_t i = lo; i < hi; ++i) {
                   const auto& [p, q] = queries[static_cast<std::size_t>(i)];
                   out[static_cast<std::size_t>(i)] = resistance(p, q);
                 }
               });
}

std::vector<real_t> EffResEngine::resistances(
    const std::vector<ResistanceQuery>& queries, ThreadPool* pool) const {
  std::vector<real_t> out(queries.size(), 0.0);
  resistances_into(queries, out, pool);
  return out;
}

std::vector<ResistanceQuery> all_edge_queries(const Graph& g) {
  std::vector<ResistanceQuery> qs;
  qs.reserve(g.num_edges());
  for (const auto& e : g.edges()) qs.emplace_back(e.u, e.v);
  return qs;
}

}  // namespace er
