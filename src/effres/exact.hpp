// Exact effective resistances via a complete sparse Cholesky factorization
// of the grounded Laplacian (paper Eq. (3) with the §II-A grounding trick,
// which is exact for balanced injections e_p - e_q).
#pragma once

#include <memory>

#include "chol/factor.hpp"
#include "effres/engine.hpp"
#include "graph/graph.hpp"
#include "order/mindeg.hpp"

namespace er {

class ExactEffRes final : public EffResEngine {
 public:
  explicit ExactEffRes(const Graph& g, Ordering ordering = Ordering::kMinDeg);

  /// Thread-safe single query: the solve vector is a thread-local scratch,
  /// so concurrent callers never share state and serial query loops don't
  /// allocate per call.
  [[nodiscard]] real_t resistance(index_t p, index_t q) const override;

  /// Batch override: each chunk solves with its own workspace, so queries
  /// chunk across a pool without sharing any mutable state.
  void resistances_into(const std::vector<ResistanceQuery>& queries,
                        std::vector<real_t>& out,
                        ThreadPool* pool = nullptr) const override;

  [[nodiscard]] std::string name() const override { return "exact"; }

  /// Two full triangular solves per query against the complete factor —
  /// far above the kAuto ceiling, so auto-routed reduced-tier queries
  /// never treat an exact block engine as a shortcut.
  [[nodiscard]] double cost_hint() const override { return 64.0; }

  /// The underlying factor (e.g. for reuse as a solver).
  [[nodiscard]] const CholFactor& factor() const { return factor_; }

 private:
  real_t resistance_with(std::vector<real_t>& work, index_t p,
                         index_t q) const;

  index_t n_ = 0;
  CholFactor factor_;
};

}  // namespace er
