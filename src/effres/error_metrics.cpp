#include "effres/error_metrics.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace er {

ErrorReport measure_edge_errors(const Graph& g, const EffResEngine& approx,
                                const EffResEngine& exact,
                                std::size_t sample_count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ResistanceQuery> queries;
  const std::size_t m = g.num_edges();
  if (m == 0) return {};
  queries.reserve(std::min(sample_count, m));
  if (m <= sample_count) {
    queries = all_edge_queries(g);
  } else {
    for (std::size_t s = 0; s < sample_count; ++s) {
      const auto eid = static_cast<std::size_t>(rng.uniform_index(m));
      queries.emplace_back(g.edges()[eid].u, g.edges()[eid].v);
    }
  }
  return measure_errors(queries, approx, exact);
}

ErrorReport measure_errors(const std::vector<ResistanceQuery>& queries,
                           const EffResEngine& approx,
                           const EffResEngine& exact) {
  ErrorReport rep;
  RunningStats stats;
  for (const auto& [p, q] : queries) {
    const real_t re = exact.resistance(p, q);
    const real_t ra = approx.resistance(p, q);
    const double err = relative_error(ra, re);
    stats.add(err);
  }
  rep.average_relative = stats.mean();
  rep.max_relative = stats.max();
  rep.samples = stats.count();
  return rep;
}

}  // namespace er
