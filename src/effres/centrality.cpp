#include "effres/centrality.hpp"

#include <algorithm>
#include <numeric>

namespace er {

std::vector<real_t> spanning_edge_centralities(const Graph& g,
                                               const EffResEngine& engine) {
  std::vector<real_t> out;
  out.reserve(g.num_edges());
  for (const auto& e : g.edges())
    out.push_back(e.weight * engine.resistance(e.u, e.v));
  return out;
}

std::vector<index_t> top_k_central_edges(const std::vector<real_t>& centrality,
                                         index_t k) {
  std::vector<index_t> order(centrality.size());
  std::iota(order.begin(), order.end(), 0);
  const auto kk = std::min<std::size_t>(static_cast<std::size_t>(k),
                                        centrality.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(kk),
                    order.end(), [&](index_t a, index_t b) {
                      return centrality[static_cast<std::size_t>(a)] >
                             centrality[static_cast<std::size_t>(b)];
                    });
  order.resize(kk);
  return order;
}

real_t foster_sum(const Graph& g, const EffResEngine& engine) {
  real_t acc = 0.0;
  for (const auto& e : g.edges())
    acc += e.weight * engine.resistance(e.u, e.v);
  return acc;
}

real_t commute_time(const Graph& g, const EffResEngine& engine, index_t u,
                    index_t v) {
  return 2.0 * g.total_weight() * engine.resistance(u, v);
}

real_t edge_kirchhoff_index(const Graph& g, const EffResEngine& engine) {
  real_t acc = 0.0;
  for (const auto& e : g.edges()) acc += engine.resistance(e.u, e.v);
  return acc;
}

}  // namespace er
