// Spanning-edge centrality and batch helpers built on the ER engines —
// the graph-mining application of the baseline paper [1].
#pragma once

#include <vector>

#include "effres/engine.hpp"
#include "graph/graph.hpp"
#include "util/types.hpp"

namespace er {

/// Spanning edge centrality c(e) = w_e * R(e): the probability that edge e
/// belongs to a uniformly random spanning tree. Returned in edge order.
std::vector<real_t> spanning_edge_centralities(const Graph& g,
                                               const EffResEngine& engine);

/// Indices of the k edges with the largest centrality, descending.
std::vector<index_t> top_k_central_edges(const std::vector<real_t>& centrality,
                                         index_t k);

/// Foster-sum diagnostic: sum of centralities (theory: n - #components).
real_t foster_sum(const Graph& g, const EffResEngine& engine);

/// Commute time C(u,v) = 2 W(G) R(u,v): expected steps of a random walk
/// from u to v and back (Chandra et al. [17]).
real_t commute_time(const Graph& g, const EffResEngine& engine, index_t u,
                    index_t v);

/// Kirchhoff index (resistance distance sum) restricted to the edges —
/// a cheap global similarity statistic: sum over edges of R(e).
real_t edge_kirchhoff_index(const Graph& g, const EffResEngine& engine);

}  // namespace er
