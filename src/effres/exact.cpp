#include "effres/exact.hpp"

#include <stdexcept>

#include "chol/cholesky.hpp"
#include "graph/laplacian.hpp"

namespace er {

ExactEffRes::ExactEffRes(const Graph& g, Ordering ordering)
    : n_(g.num_nodes()) {
  const CscMatrix lg = grounded_laplacian(g);
  factor_ = cholesky(lg, ordering);
  work_.assign(static_cast<std::size_t>(n_), 0.0);
}

real_t ExactEffRes::resistance(index_t p, index_t q) const {
  if (p < 0 || p >= n_ || q < 0 || q >= n_)
    throw std::out_of_range("ExactEffRes::resistance: node out of range");
  if (p == q) return 0.0;
  // Solve (in permuted space) L L^T x = e_p - e_q, then R = x_p - x_q.
  std::fill(work_.begin(), work_.end(), 0.0);
  const index_t pp = factor_.inv_perm[static_cast<std::size_t>(p)];
  const index_t qq = factor_.inv_perm[static_cast<std::size_t>(q)];
  work_[static_cast<std::size_t>(pp)] = 1.0;
  work_[static_cast<std::size_t>(qq)] = -1.0;
  factor_.solve_permuted(work_);
  return work_[static_cast<std::size_t>(pp)] -
         work_[static_cast<std::size_t>(qq)];
}

}  // namespace er
