#include "effres/exact.hpp"

#include <stdexcept>

#include "chol/cholesky.hpp"
#include "graph/laplacian.hpp"
#include "parallel/thread_pool.hpp"

namespace er {

ExactEffRes::ExactEffRes(const Graph& g, Ordering ordering)
    : n_(g.num_nodes()) {
  const CscMatrix lg = grounded_laplacian(g);
  factor_ = cholesky(lg, ordering);
}

real_t ExactEffRes::resistance_with(std::vector<real_t>& work, index_t p,
                                    index_t q) const {
  if (p < 0 || p >= n_ || q < 0 || q >= n_)
    throw std::out_of_range("ExactEffRes::resistance: node out of range");
  if (p == q) return 0.0;
  // Solve (in permuted space) L L^T x = e_p - e_q, then R = x_p - x_q.
  std::fill(work.begin(), work.end(), 0.0);
  const index_t pp = factor_.inv_perm[static_cast<std::size_t>(p)];
  const index_t qq = factor_.inv_perm[static_cast<std::size_t>(q)];
  work[static_cast<std::size_t>(pp)] = 1.0;
  work[static_cast<std::size_t>(qq)] = -1.0;
  factor_.solve_permuted(work);
  return work[static_cast<std::size_t>(pp)] -
         work[static_cast<std::size_t>(qq)];
}

real_t ExactEffRes::resistance(index_t p, index_t q) const {
  // Thread-safe without per-call allocation: each thread reuses one scratch
  // vector across queries (resistance_with zero-fills it itself).
  static thread_local std::vector<real_t> work;
  work.resize(static_cast<std::size_t>(n_));
  return resistance_with(work, p, q);
}

void ExactEffRes::resistances_into(const std::vector<ResistanceQuery>& queries,
                                   std::vector<real_t>& out,
                                   ThreadPool* pool) const {
  if (out.size() < queries.size())
    throw std::invalid_argument("resistances_into: output under-sized");
  parallel_for(pool, 0, static_cast<index_t>(queries.size()), kBatchQueryGrain,
               [&](index_t lo, index_t hi) {
                 std::vector<real_t> work(static_cast<std::size_t>(n_), 0.0);
                 for (index_t i = lo; i < hi; ++i) {
                   const auto& [p, q] = queries[static_cast<std::size_t>(i)];
                   out[static_cast<std::size_t>(i)] = resistance_with(work, p, q);
                 }
               });
}

}  // namespace er
