// Algorithm 3 — effective resistances from the sparse approximate inverse
// of the (incomplete) Cholesky factor. This is the paper's headline method:
//
//   1. incomplete Cholesky on the grounded Laplacian (droptol),
//   2. Alg. 2 sparse approximate inverse Z̃ ≈ L^{-1} (epsilon),
//   3. per query (p, q): R(p,q) ≈ ||z̃_p - z̃_q||².
#pragma once

#include "approxinv/approx_inverse.hpp"
#include "chol/factor.hpp"
#include "chol/ichol.hpp"
#include "effres/engine.hpp"
#include "graph/graph.hpp"
#include "order/mindeg.hpp"

namespace er {

struct ApproxCholOptions {
  real_t droptol = 1e-3;   // incomplete-Cholesky drop tolerance (paper: 1e-3)
  real_t epsilon = 1e-3;   // Alg. 2 truncation budget        (paper: 1e-3)
  Ordering ordering = Ordering::kMinDeg;
  /// Use the complete factorization instead of ICT (small graphs / tests).
  bool complete_factorization = false;
};

/// Timing/size diagnostics mirroring the columns of the paper's Table I.
struct ApproxCholStats {
  double factor_seconds = 0.0;
  double inverse_seconds = 0.0;
  offset_t factor_nnz = 0;
  offset_t inverse_nnz = 0;
  index_t max_depth = 0;  // `dpt` column
  /// nnz(Z̃) / (n log2 n) — the paper's normalized size column.
  [[nodiscard]] double nnz_ratio(index_t n) const;
};

class ApproxCholEffRes final : public EffResEngine {
 public:
  explicit ApproxCholEffRes(const Graph& g, const ApproxCholOptions& opts = {});

  [[nodiscard]] real_t resistance(index_t p, index_t q) const override;
  [[nodiscard]] std::string name() const override { return "approx-chol"; }

  /// Sparse approximate-inverse row products — the cheapest query path of
  /// the three engines and the cost_hint() baseline (1.0).
  [[nodiscard]] double cost_hint() const override { return 1.0; }

  [[nodiscard]] const ApproxCholStats& stats() const { return stats_; }
  [[nodiscard]] const ApproxInverse& approximate_inverse() const { return z_; }
  [[nodiscard]] const CholFactor& factor() const { return factor_; }

 private:
  index_t n_ = 0;
  CholFactor factor_;
  ApproxInverse z_;
  ApproxCholStats stats_;
};

}  // namespace er
