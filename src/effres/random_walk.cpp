#include "effres/random_walk.hpp"

#include <stdexcept>

#include "graph/components.hpp"

namespace er {

RandomWalkEffRes::RandomWalkEffRes(const Graph& g,
                                   const RandomWalkOptions& opts)
    : g_(&g), opts_(opts), total_weight_(g.total_weight()), rng_(opts.seed) {
  if (!is_connected(g))
    throw std::invalid_argument("RandomWalkEffRes: graph must be connected");
  if (opts.walks == 0)
    throw std::invalid_argument("RandomWalkEffRes: walks must be > 0");
}

std::size_t RandomWalkEffRes::hitting_steps(index_t from, index_t to) const {
  const auto& ptr = g_->adjacency_ptr();
  const auto& nbr = g_->neighbors();
  const auto& wts = g_->adjacency_weights();

  index_t u = from;
  std::size_t steps = 0;
  while (u != to && steps < opts_.max_steps_per_walk) {
    const offset_t begin = ptr[static_cast<std::size_t>(u)];
    const offset_t end = ptr[static_cast<std::size_t>(u) + 1];
    // Weighted step: unweighted graphs take the O(1) uniform path.
    real_t total = 0.0;
    for (offset_t k = begin; k < end; ++k)
      total += wts[static_cast<std::size_t>(k)];
    real_t pick = rng_.uniform() * total;
    offset_t chosen = end - 1;
    for (offset_t k = begin; k < end; ++k) {
      pick -= wts[static_cast<std::size_t>(k)];
      if (pick <= 0.0) {
        chosen = k;
        break;
      }
    }
    u = nbr[static_cast<std::size_t>(chosen)];
    ++steps;
  }
  return steps;
}

real_t RandomWalkEffRes::resistance(index_t p, index_t q) const {
  if (p < 0 || p >= g_->num_nodes() || q < 0 || q >= g_->num_nodes())
    throw std::out_of_range("RandomWalkEffRes: node out of range");
  if (p == q) return 0.0;
  // Commute time estimate. On weighted graphs a "step" across edge e costs
  // the walk one unit regardless of weight; the identity
  // C(p,q) = 2 W R(p,q) holds with steps counted this way.
  std::size_t total_steps = 0;
  for (std::size_t w = 0; w < opts_.walks; ++w) {
    total_steps += hitting_steps(p, q);
    total_steps += hitting_steps(q, p);
  }
  const real_t commute =
      static_cast<real_t>(total_steps) / static_cast<real_t>(opts_.walks);
  return commute / (2.0 * total_weight_);
}

void RandomWalkEffRes::resistances_into(
    const std::vector<ResistanceQuery>& queries, std::vector<real_t>& out,
    ThreadPool* pool) const {
  // Deliberately serial: each query advances the shared rng_ stream.
  (void)pool;
  if (out.size() < queries.size())
    throw std::invalid_argument("resistances_into: output under-sized");
  for (std::size_t i = 0; i < queries.size(); ++i)
    out[i] = resistance(queries[i].first, queries[i].second);
}

}  // namespace er
