#include "effres/random_walk.hpp"

#include <stdexcept>

#include "graph/components.hpp"
#include "parallel/thread_pool.hpp"

namespace er {

RandomWalkEffRes::RandomWalkEffRes(const Graph& g,
                                   const RandomWalkOptions& opts)
    : g_(&g), opts_(opts), total_weight_(g.total_weight()) {
  if (!is_connected(g))
    throw std::invalid_argument("RandomWalkEffRes: graph must be connected");
  if (opts.walks == 0)
    throw std::invalid_argument("RandomWalkEffRes: walks must be > 0");
  // Force the lazy CSR adjacency now: hitting_steps reads it from
  // concurrent query threads, which must never race on the cache build.
  (void)g.adjacency_ptr();
}

std::size_t RandomWalkEffRes::hitting_steps(index_t from, index_t to,
                                            Rng& rng) const {
  const auto& ptr = g_->adjacency_ptr();
  const auto& nbr = g_->neighbors();
  const auto& wts = g_->adjacency_weights();

  index_t u = from;
  std::size_t steps = 0;
  while (u != to && steps < opts_.max_steps_per_walk) {
    const offset_t begin = ptr[static_cast<std::size_t>(u)];
    const offset_t end = ptr[static_cast<std::size_t>(u) + 1];
    // Weighted step: unweighted graphs take the O(1) uniform path.
    real_t total = 0.0;
    for (offset_t k = begin; k < end; ++k)
      total += wts[static_cast<std::size_t>(k)];
    real_t pick = rng.uniform() * total;
    offset_t chosen = end - 1;
    for (offset_t k = begin; k < end; ++k) {
      pick -= wts[static_cast<std::size_t>(k)];
      if (pick <= 0.0) {
        chosen = k;
        break;
      }
    }
    u = nbr[static_cast<std::size_t>(chosen)];
    ++steps;
  }
  return steps;
}

real_t RandomWalkEffRes::estimate(index_t p, index_t q, Rng& rng) const {
  if (p < 0 || p >= g_->num_nodes() || q < 0 || q >= g_->num_nodes())
    throw std::out_of_range("RandomWalkEffRes: node out of range");
  if (p == q) return 0.0;
  // Commute time estimate. On weighted graphs a "step" across edge e costs
  // the walk one unit regardless of weight; the identity
  // C(p,q) = 2 W R(p,q) holds with steps counted this way.
  std::size_t total_steps = 0;
  for (std::size_t w = 0; w < opts_.walks; ++w) {
    total_steps += hitting_steps(p, q, rng);
    total_steps += hitting_steps(q, p, rng);
  }
  const real_t commute =
      static_cast<real_t>(total_steps) / static_cast<real_t>(opts_.walks);
  return commute / (2.0 * total_weight_);
}

real_t RandomWalkEffRes::resistance(index_t p, index_t q) const {
  // A batch of one: stream index 0, so repeated calls (and batch slot 0)
  // reproduce the same sample — stateless, hence thread-safe.
  Rng rng(mix_seed(opts_.seed, 0));
  return estimate(p, q, rng);
}

void RandomWalkEffRes::resistances_into(
    const std::vector<ResistanceQuery>& queries, std::vector<real_t>& out,
    ThreadPool* pool) const {
  if (out.size() < queries.size())
    throw std::invalid_argument("resistances_into: output under-sized");
  // Per-query-index RNG streams (mix_seed(seed, i)) and per-slot writes:
  // the batch is identical at any thread count, and repeated pairs within
  // one batch still draw independent samples (what a Monte-Carlo averaging
  // caller wants). Grain 1, not kBatchQueryGrain: one query costs `walks`
  // full round trips — orders of magnitude more than the solves the shared
  // grain is tuned for — so even small batches should spread over the pool.
  parallel_for(pool, 0, static_cast<index_t>(queries.size()),
               /*grain=*/1, [&](index_t lo, index_t hi) {
                 for (index_t i = lo; i < hi; ++i) {
                   Rng rng(mix_seed(opts_.seed,
                                    static_cast<std::uint64_t>(i)));
                   out[static_cast<std::size_t>(i)] =
                       estimate(queries[static_cast<std::size_t>(i)].first,
                                queries[static_cast<std::size_t>(i)].second,
                                rng);
                 }
               });
}

}  // namespace er
