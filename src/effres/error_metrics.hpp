// Error-measurement protocol of the paper's Table I: sample 1000 random
// edges, compute exact effective resistances for them, and report the
// average (Ea) and maximum (Em) relative errors of an approximate engine.
#pragma once

#include "effres/engine.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace er {

struct ErrorReport {
  double average_relative = 0.0;  // Ea
  double max_relative = 0.0;      // Em
  std::size_t samples = 0;
};

/// Compare `approx` against `exact` on `sample_count` random edges of g.
ErrorReport measure_edge_errors(const Graph& g, const EffResEngine& approx,
                                const EffResEngine& exact,
                                std::size_t sample_count = 1000,
                                std::uint64_t seed = 7);

/// Compare on an explicit query list.
ErrorReport measure_errors(const std::vector<ResistanceQuery>& queries,
                           const EffResEngine& approx,
                           const EffResEngine& exact);

}  // namespace er
