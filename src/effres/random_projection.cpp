#include "effres/random_projection.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "chol/ichol.hpp"
#include "graph/laplacian.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace er {

double RandomProjectionStats::nnz_ratio(index_t n) const {
  if (n < 2) return 0.0;
  return static_cast<double>(projection_nnz) /
         (static_cast<double>(n) * std::log2(static_cast<double>(n)));
}

RandomProjectionEffRes::RandomProjectionEffRes(
    const Graph& g, const RandomProjectionOptions& opts)
    : n_(g.num_nodes()) {
  Timer timer;

  k_ = opts.dimensions > 0
           ? opts.dimensions
           : static_cast<index_t>(std::ceil(
                 opts.auto_scale *
                 std::log2(static_cast<double>(std::max<index_t>(n_, 2)))));

  const CscMatrix lg = grounded_laplacian(g);
  IcholOptions ic;
  ic.droptol = opts.ichol_droptol;
  const CholFactor precond_factor = ichol(lg, Ordering::kMinDeg, ic);
  const Preconditioner precond = ichol_preconditioner(precond_factor);

  PcgOptions pcg_opts;
  pcg_opts.rel_tolerance = opts.solver_tolerance;
  pcg_opts.max_iterations = opts.solver_max_iterations;

  embedding_.assign(static_cast<std::size_t>(k_) * static_cast<std::size_t>(n_),
                    0.0);
  const real_t inv_sqrt_k = 1.0 / std::sqrt(static_cast<real_t>(k_));

  ThreadPool* pool = opts.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr && resolve_num_threads(opts.parallel.num_threads) > 1) {
    owned_pool = std::make_unique<ThreadPool>(opts.parallel.num_threads);
    pool = owned_pool.get();
  }

  // Row r of Y solves L y = B^T W^{1/2} q_r, with q_r a ±1/sqrt(k) vector
  // over edges. The right-hand side is assembled edge by edge without
  // forming B explicitly. Each row draws q_r from its own stream
  // mix_seed(seed, r) and writes a disjoint stride-k slice of the
  // embedding, so the rows parallelize with a bit-identical result at any
  // thread count; per-row counters are folded serially below.
  std::vector<int> row_iterations(static_cast<std::size_t>(k_), 0);
  std::vector<char> row_nonconverged(static_cast<std::size_t>(k_), 0);
  parallel_for(pool, 0, k_, 1, [&](index_t lo, index_t hi) {
    std::vector<real_t> rhs(static_cast<std::size_t>(n_));
    for (index_t r = lo; r < hi; ++r) {
      Rng rng(mix_seed(opts.seed, static_cast<std::uint64_t>(r)));
      std::fill(rhs.begin(), rhs.end(), 0.0);
      for (const auto& e : g.edges()) {
        const real_t qe = rng.sign() * inv_sqrt_k * std::sqrt(e.weight);
        rhs[static_cast<std::size_t>(e.u)] += qe;
        rhs[static_cast<std::size_t>(e.v)] -= qe;
      }
      const PcgResult sol = pcg_solve(lg, rhs, precond, pcg_opts);
      row_iterations[static_cast<std::size_t>(r)] = sol.iterations;
      row_nonconverged[static_cast<std::size_t>(r)] = sol.converged ? 0 : 1;
      for (index_t v = 0; v < n_; ++v)
        embedding_[static_cast<std::size_t>(v) * k_ + r] =
            sol.x[static_cast<std::size_t>(v)];
    }
  });
  for (index_t r = 0; r < k_; ++r) {
    stats_.total_solver_iterations += row_iterations[static_cast<std::size_t>(r)];
    if (row_nonconverged[static_cast<std::size_t>(r)])
      ++stats_.nonconverged_rows;
  }

  stats_.dimensions = k_;
  stats_.build_seconds = timer.seconds();
  stats_.projection_nnz =
      static_cast<offset_t>(k_) * static_cast<offset_t>(n_);
}

real_t RandomProjectionEffRes::resistance(index_t p, index_t q) const {
  if (p < 0 || p >= n_ || q < 0 || q >= n_)
    throw std::out_of_range("RandomProjectionEffRes: node out of range");
  if (p == q) return 0.0;
  const real_t* cp = embedding_.data() + static_cast<std::size_t>(p) * k_;
  const real_t* cq = embedding_.data() + static_cast<std::size_t>(q) * k_;
  real_t acc = 0.0;
  for (index_t r = 0; r < k_; ++r) {
    const real_t d = cp[r] - cq[r];
    acc += d * d;
  }
  return acc;
}

}  // namespace er
