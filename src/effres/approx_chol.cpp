#include "effres/approx_chol.hpp"

#include <cmath>
#include <stdexcept>

#include "approxinv/depth.hpp"
#include "chol/cholesky.hpp"
#include "graph/laplacian.hpp"
#include "util/timer.hpp"

namespace er {

double ApproxCholStats::nnz_ratio(index_t n) const {
  if (n < 2) return 0.0;
  return static_cast<double>(inverse_nnz) /
         (static_cast<double>(n) * std::log2(static_cast<double>(n)));
}

ApproxCholEffRes::ApproxCholEffRes(const Graph& g,
                                   const ApproxCholOptions& opts)
    : n_(g.num_nodes()) {
  const CscMatrix lg = grounded_laplacian(g);

  Timer t;
  if (opts.complete_factorization) {
    factor_ = cholesky(lg, opts.ordering);
  } else {
    IcholOptions ic;
    ic.droptol = opts.droptol;
    factor_ = ichol(lg, opts.ordering, ic);
  }
  stats_.factor_seconds = t.seconds();
  stats_.factor_nnz = factor_.nnz();
  stats_.max_depth = max_filled_graph_depth(factor_);

  t.reset();
  ApproxInverseOptions zi;
  zi.epsilon = opts.epsilon;
  z_ = ApproxInverse::build(factor_, zi);
  stats_.inverse_seconds = t.seconds();
  stats_.inverse_nnz = z_.nnz();
}

real_t ApproxCholEffRes::resistance(index_t p, index_t q) const {
  if (p < 0 || p >= n_ || q < 0 || q >= n_)
    throw std::out_of_range("ApproxCholEffRes::resistance: node out of range");
  if (p == q) return 0.0;
  const index_t pp = factor_.inv_perm[static_cast<std::size_t>(p)];
  const index_t qq = factor_.inv_perm[static_cast<std::size_t>(q)];
  return z_.column_distance_squared(pp, qq);
}

}  // namespace er
