// Common interface for effective-resistance engines.
//
// Three implementations mirror the paper's evaluation:
//   * ExactEffRes          — direct solves on the grounded Laplacian (ground truth)
//   * ApproxCholEffRes     — the paper's Alg. 3 (ICT + approximate inverse)
//   * RandomProjectionEffRes — the WWW'15 baseline [1] (JL projection + PCG)
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace er {

/// A (p, q) node pair whose effective resistance is requested.
using ResistanceQuery = std::pair<index_t, index_t>;

class EffResEngine {
 public:
  virtual ~EffResEngine() = default;

  /// Effective resistance between nodes p and q (original node ids).
  [[nodiscard]] virtual real_t resistance(index_t p, index_t q) const = 0;

  /// Batch interface; default loops over resistance().
  [[nodiscard]] virtual std::vector<real_t> resistances(
      const std::vector<ResistanceQuery>& queries) const;

  /// Engine name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// All graph edges as queries (the paper's Qr = E workload).
std::vector<ResistanceQuery> all_edge_queries(const Graph& g);

}  // namespace er
