/// \file
/// Common interface for effective-resistance engines.
///
/// Three implementations mirror the paper's evaluation:
///   * ExactEffRes            — direct solves on the grounded Laplacian (ground truth)
///   * ApproxCholEffRes       — the paper's Alg. 3 (ICT + approximate inverse)
///   * RandomProjectionEffRes — the WWW'15 baseline [1] (JL projection + PCG)
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace er {

class ThreadPool;

/// A (p, q) node pair whose effective resistance is requested.
using ResistanceQuery = std::pair<index_t, index_t>;

/// Chunk size for batched queries: large enough to amortize dispatch,
/// small enough to load-balance uneven query costs. Shared by every
/// engine's batch path so the grain is tuned in one place.
inline constexpr index_t kBatchQueryGrain = 64;

/// Common interface of the three effective-resistance engines.
///
/// Thread-safety contract (DESIGN.md §3/§4): every query method is `const`
/// and safe to call from any number of threads concurrently — engines hold
/// no shared mutable query state, with no exceptions (the Monte-Carlo
/// RandomWalkEffRes draws each batched query from its own
/// mix_seed(seed, query_index) stream rather than a shared one). This is
/// what lets a serving snapshot keep one resident engine per block and
/// answer a query batch across a pool.
class EffResEngine {
 public:
  virtual ~EffResEngine() = default;

  /// Effective resistance between nodes p and q (original node ids).
  /// Const and thread-safe for every engine; engines that need a solve
  /// workspace allocate it per call (batch callers amortize it per chunk
  /// via resistances_into instead).
  [[nodiscard]] virtual real_t resistance(index_t p, index_t q) const = 0;

  /// Batch interface: chunk `queries` across `pool` (null = serial) and
  /// write answer i into `out[i]`. `out` must already have queries.size()
  /// slots; per-query slot writes make the result identical at any thread
  /// count. The default chunks over resistance(); engines with a per-query
  /// workspace override it to reuse one workspace per chunk.
  virtual void resistances_into(const std::vector<ResistanceQuery>& queries,
                                std::vector<real_t>& out,
                                ThreadPool* pool = nullptr) const;

  /// Allocating convenience wrapper around resistances_into.
  [[nodiscard]] std::vector<real_t> resistances(
      const std::vector<ResistanceQuery>& queries,
      ThreadPool* pool = nullptr) const;

  /// Engine name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Relative per-query cost of this engine against the cheapest
  /// practical engine (ApproxCholEffRes = 1.0). A dimensionless, static
  /// property of the engine *type* — never measured at runtime, so
  /// routing decisions that consult it stay deterministic. The serving
  /// front-end's BackendPref::kAuto resolution routes reduced-accuracy
  /// queries to a resident block engine only when its hint is at or under
  /// kAutoEngineCostCeiling (serve/query_policy.hpp).
  [[nodiscard]] virtual double cost_hint() const { return 1.0; }
};

/// All graph edges as queries (the paper's Qr = E workload).
std::vector<ResistanceQuery> all_edge_queries(const Graph& g);

}  // namespace er
