// Common interface for effective-resistance engines.
//
// Three implementations mirror the paper's evaluation:
//   * ExactEffRes          — direct solves on the grounded Laplacian (ground truth)
//   * ApproxCholEffRes     — the paper's Alg. 3 (ICT + approximate inverse)
//   * RandomProjectionEffRes — the WWW'15 baseline [1] (JL projection + PCG)
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace er {

class ThreadPool;

/// A (p, q) node pair whose effective resistance is requested.
using ResistanceQuery = std::pair<index_t, index_t>;

/// Chunk size for batched queries: large enough to amortize dispatch,
/// small enough to load-balance uneven query costs. Shared by every
/// engine's batch path so the grain is tuned in one place.
inline constexpr index_t kBatchQueryGrain = 64;

class EffResEngine {
 public:
  virtual ~EffResEngine() = default;

  /// Effective resistance between nodes p and q (original node ids).
  /// Thread safety is engine-specific (ExactEffRes keeps a serial-only
  /// workspace); concurrent callers must go through the batch interface.
  [[nodiscard]] virtual real_t resistance(index_t p, index_t q) const = 0;

  /// Batch interface. Queries are chunked across `pool` (null = serial);
  /// results are written into per-query slots, so the output is identical
  /// at any thread count. The default chunks over resistance(), which is
  /// safe for engines whose resistance() is stateless; engines with query
  /// workspaces override this with a per-chunk workspace.
  [[nodiscard]] virtual std::vector<real_t> resistances(
      const std::vector<ResistanceQuery>& queries,
      ThreadPool* pool = nullptr) const;

  /// Engine name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// All graph edges as queries (the paper's Qr = E workload).
std::vector<ResistanceQuery> all_edge_queries(const Graph& g);

}  // namespace er
