// Random-projection effective resistances — the WWW'15 baseline [1]
// (Mavroforakis, Garcia-Lebron, Koutis, Terzi), built on Spielman-Srivastava
// (paper Eq. (4)-(5)):
//
//   R(p,q) ≈ || Y e_p - Y e_q ||²  with  Y = Q W^{1/2} B L†,
//
// where Q is a k x m random ±1/sqrt(k) matrix. Each of the k rows costs one
// Laplacian solve; the authors use the CMG solver, this implementation uses
// PCG preconditioned with incomplete Cholesky (same role — see DESIGN.md §2).
#pragma once

#include <vector>

#include "chol/factor.hpp"
#include "effres/engine.hpp"
#include "graph/graph.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/pcg.hpp"

namespace er {

struct RandomProjectionOptions {
  /// Number of projection rows; 0 means auto: ceil(scale * log2(n)).
  index_t dimensions = 0;
  real_t auto_scale = 16.0;
  std::uint64_t seed = 12345;
  real_t solver_tolerance = 1e-8;
  int solver_max_iterations = 1000;
  real_t ichol_droptol = 1e-3;  // preconditioner quality
  /// Optional pool for the k per-row solves during construction (null =
  /// honor `parallel` below). Row r draws its projection vector from its
  /// own stream mix_seed(seed, r), so the embedding is bit-identical at
  /// any thread count (DESIGN.md §3). Callers already running on a pool
  /// worker (reduce_block) may pass the same pool: the row loop then runs
  /// inline, which is the intended nesting behavior.
  ThreadPool* pool = nullptr;
  /// When `pool` is null and this asks for > 1 thread, the constructor
  /// spins up its own pool for the duration of the build.
  ParallelOptions parallel;
};

struct RandomProjectionStats {
  index_t dimensions = 0;
  double build_seconds = 0.0;
  long total_solver_iterations = 0;
  /// Rows whose PCG solve hit max_iterations without reaching the residual
  /// tolerance. Nonzero means the embedding — and any accuracy numbers
  /// derived from it — rests on unconverged solves; bench tables flag it.
  index_t nonconverged_rows = 0;
  /// nnz of the dense k x n projected matrix, normalized by n log2 n —
  /// the paper's nnz(Q)/(n log n) column.
  offset_t projection_nnz = 0;
  [[nodiscard]] double nnz_ratio(index_t n) const;
};

class RandomProjectionEffRes final : public EffResEngine {
 public:
  RandomProjectionEffRes(const Graph& g,
                         const RandomProjectionOptions& opts = {});

  [[nodiscard]] real_t resistance(index_t p, index_t q) const override;
  [[nodiscard]] std::string name() const override { return "random-projection"; }

  /// One k-dimensional embedding-difference norm per query — a few times
  /// the approx-chol row product, still under the kAuto ceiling.
  [[nodiscard]] double cost_hint() const override { return 4.0; }

  [[nodiscard]] const RandomProjectionStats& stats() const { return stats_; }

 private:
  index_t n_ = 0;
  index_t k_ = 0;
  // Column-major k x n embedding: column p is the k-vector of node p.
  std::vector<real_t> embedding_;
  RandomProjectionStats stats_;
};

}  // namespace er
