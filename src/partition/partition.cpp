#include "partition/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace er {

namespace {

/// One level of the multilevel hierarchy.
struct Level {
  Graph graph;
  std::vector<real_t> node_weight;  // accumulated original node counts
  std::vector<index_t> map_to_coarse;  // fine node -> coarse node
};

/// Heavy-edge matching: visit nodes in random order, match each unmatched
/// node with its heaviest unmatched neighbour.
std::vector<index_t> heavy_edge_matching(const Graph& g, Rng& rng) {
  const index_t n = g.num_nodes();
  std::vector<index_t> match(static_cast<std::size_t>(n), -1);
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (index_t i = n; i-- > 1;)
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(rng.uniform_int(i + 1))]);

  const auto& ptr = g.adjacency_ptr();
  const auto& nbr = g.neighbors();
  const auto& wts = g.adjacency_weights();
  for (index_t u : order) {
    if (match[static_cast<std::size_t>(u)] != -1) continue;
    index_t best = -1;
    real_t best_w = -1.0;
    for (offset_t k = ptr[static_cast<std::size_t>(u)];
         k < ptr[static_cast<std::size_t>(u) + 1]; ++k) {
      const index_t v = nbr[static_cast<std::size_t>(k)];
      if (v == u || match[static_cast<std::size_t>(v)] != -1) continue;
      if (wts[static_cast<std::size_t>(k)] > best_w) {
        best_w = wts[static_cast<std::size_t>(k)];
        best = v;
      }
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(u)] = best;
      match[static_cast<std::size_t>(best)] = u;
    } else {
      match[static_cast<std::size_t>(u)] = u;  // stays single
    }
  }
  return match;
}

/// Contract matched pairs into a coarser level.
Level coarsen(const Graph& g, const std::vector<real_t>& node_weight,
              Rng& rng) {
  const index_t n = g.num_nodes();
  const auto match = heavy_edge_matching(g, rng);

  Level lvl;
  lvl.map_to_coarse.assign(static_cast<std::size_t>(n), -1);
  index_t coarse_n = 0;
  for (index_t u = 0; u < n; ++u) {
    if (lvl.map_to_coarse[static_cast<std::size_t>(u)] != -1) continue;
    const index_t v = match[static_cast<std::size_t>(u)];
    lvl.map_to_coarse[static_cast<std::size_t>(u)] = coarse_n;
    lvl.map_to_coarse[static_cast<std::size_t>(v)] = coarse_n;
    ++coarse_n;
  }

  lvl.node_weight.assign(static_cast<std::size_t>(coarse_n), 0.0);
  for (index_t u = 0; u < n; ++u)
    lvl.node_weight[static_cast<std::size_t>(
        lvl.map_to_coarse[static_cast<std::size_t>(u)])] +=
        node_weight[static_cast<std::size_t>(u)];

  Graph cg(coarse_n);
  cg.reserve_edges(g.num_edges());
  for (const auto& e : g.edges()) {
    const index_t cu = lvl.map_to_coarse[static_cast<std::size_t>(e.u)];
    const index_t cv = lvl.map_to_coarse[static_cast<std::size_t>(e.v)];
    if (cu != cv) cg.add_edge(cu, cv, e.weight);
  }
  lvl.graph = cg.coalesce_parallel_edges();
  return lvl;
}

/// Greedy region growing on the coarsest graph: grow each part by BFS from
/// an unassigned seed until the target weight is reached.
std::vector<index_t> initial_partition(const Graph& g,
                                       const std::vector<real_t>& node_weight,
                                       index_t k, Rng& rng) {
  const index_t n = g.num_nodes();
  std::vector<index_t> part(static_cast<std::size_t>(n), -1);
  real_t total = 0.0;
  for (real_t w : node_weight) total += w;
  const real_t target = total / static_cast<real_t>(k);

  const auto& ptr = g.adjacency_ptr();
  const auto& nbr = g.neighbors();

  std::vector<index_t> queue;
  index_t assigned = 0;
  for (index_t p = 0; p < k && assigned < n; ++p) {
    // Seed: random unassigned node.
    index_t seed = -1;
    for (int tries = 0; tries < 64 && seed < 0; ++tries) {
      const index_t cand = rng.uniform_int(n);
      if (part[static_cast<std::size_t>(cand)] == -1) seed = cand;
    }
    if (seed < 0) {
      for (index_t v = 0; v < n; ++v)
        if (part[static_cast<std::size_t>(v)] == -1) {
          seed = v;
          break;
        }
    }
    if (seed < 0) break;

    // Claim nodes when they are *popped*, not when pushed: on small-diameter
    // (heavy-tailed) graphs the BFS frontier can exceed the whole target, so
    // eager assignment would swallow most of the graph into one part.
    real_t grown = 0.0;
    queue.clear();
    queue.push_back(seed);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const index_t u = queue[head];
      if (part[static_cast<std::size_t>(u)] != -1) continue;
      part[static_cast<std::size_t>(u)] = p;
      grown += node_weight[static_cast<std::size_t>(u)];
      ++assigned;
      if (grown >= target && p + 1 < k) break;
      for (offset_t e = ptr[static_cast<std::size_t>(u)];
           e < ptr[static_cast<std::size_t>(u) + 1]; ++e) {
        const index_t v = nbr[static_cast<std::size_t>(e)];
        if (part[static_cast<std::size_t>(v)] == -1) queue.push_back(v);
      }
    }
  }
  // Any leftovers: attach to an adjacent part (or part 0).
  for (index_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] != -1) continue;
    index_t p = 0;
    for (offset_t e = ptr[static_cast<std::size_t>(v)];
         e < ptr[static_cast<std::size_t>(v) + 1]; ++e) {
      const index_t u = nbr[static_cast<std::size_t>(e)];
      if (part[static_cast<std::size_t>(u)] != -1) {
        p = part[static_cast<std::size_t>(u)];
        break;
      }
    }
    part[static_cast<std::size_t>(v)] = p;
  }
  return part;
}

/// Boundary refinement: greedy positive-gain moves under a balance cap.
void refine(const Graph& g, const std::vector<real_t>& node_weight, index_t k,
            real_t balance_factor, int passes, std::vector<index_t>& part) {
  const index_t n = g.num_nodes();
  const auto& ptr = g.adjacency_ptr();
  const auto& nbr = g.neighbors();
  const auto& wts = g.adjacency_weights();

  std::vector<real_t> part_weight(static_cast<std::size_t>(k), 0.0);
  real_t total = 0.0;
  for (index_t v = 0; v < n; ++v) {
    part_weight[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        node_weight[static_cast<std::size_t>(v)];
    total += node_weight[static_cast<std::size_t>(v)];
  }
  const real_t cap = balance_factor * total / static_cast<real_t>(k);

  std::vector<real_t> gain_to(static_cast<std::size_t>(k), 0.0);
  std::vector<index_t> touched;
  for (int pass = 0; pass < passes; ++pass) {
    bool moved_any = false;
    for (index_t v = 0; v < n; ++v) {
      const index_t from = part[static_cast<std::size_t>(v)];
      touched.clear();
      real_t internal = 0.0;
      for (offset_t e = ptr[static_cast<std::size_t>(v)];
           e < ptr[static_cast<std::size_t>(v) + 1]; ++e) {
        const index_t pu = part[static_cast<std::size_t>(
            nbr[static_cast<std::size_t>(e)])];
        const real_t w = wts[static_cast<std::size_t>(e)];
        if (pu == from) {
          internal += w;
        } else {
          if (gain_to[static_cast<std::size_t>(pu)] == 0.0) touched.push_back(pu);
          gain_to[static_cast<std::size_t>(pu)] += w;
        }
      }
      // Positive-gain moves always; when the source part is overloaded,
      // zero/negative-gain moves to a lighter part are allowed too, so
      // refinement doubles as rebalancing.
      const bool from_over =
          part_weight[static_cast<std::size_t>(from)] > cap;
      index_t best = -1;
      real_t best_gain = from_over ? -1e30 : 0.0;
      for (index_t p : touched) {
        const real_t gain = gain_to[static_cast<std::size_t>(p)] - internal;
        const bool fits = part_weight[static_cast<std::size_t>(p)] +
                              node_weight[static_cast<std::size_t>(v)] <=
                          cap;
        const bool lighter = part_weight[static_cast<std::size_t>(p)] <
                             part_weight[static_cast<std::size_t>(from)];
        if (gain > best_gain && (fits || (from_over && lighter))) {
          best_gain = gain;
          best = p;
        }
        gain_to[static_cast<std::size_t>(p)] = 0.0;
      }
      if (best >= 0) {
        part_weight[static_cast<std::size_t>(from)] -=
            node_weight[static_cast<std::size_t>(v)];
        part_weight[static_cast<std::size_t>(best)] +=
            node_weight[static_cast<std::size_t>(v)];
        part[static_cast<std::size_t>(v)] = best;
        moved_any = true;
      }
    }
    if (!moved_any) break;
  }
}

}  // namespace

real_t PartitionResult::cut_weight(const Graph& g) const {
  real_t acc = 0.0;
  for (const auto& e : g.edges())
    if (part[static_cast<std::size_t>(e.u)] !=
        part[static_cast<std::size_t>(e.v)])
      acc += e.weight;
  return acc;
}

std::size_t PartitionResult::cut_edges(const Graph& g) const {
  std::size_t acc = 0;
  for (const auto& e : g.edges())
    if (part[static_cast<std::size_t>(e.u)] !=
        part[static_cast<std::size_t>(e.v)])
      ++acc;
  return acc;
}

real_t PartitionResult::balance(const Graph& g) const {
  if (num_parts == 0) return 0.0;
  std::vector<index_t> count(static_cast<std::size_t>(num_parts), 0);
  for (index_t p : part) ++count[static_cast<std::size_t>(p)];
  const index_t target =
      (g.num_nodes() + num_parts - 1) / num_parts;  // ceil(n/k)
  index_t mx = 0;
  for (index_t c : count) mx = std::max(mx, c);
  return static_cast<real_t>(mx) / static_cast<real_t>(target);
}

PartitionResult partition_graph(const Graph& g, const PartitionOptions& opts) {
  if (opts.num_parts <= 0)
    throw std::invalid_argument("partition_graph: num_parts must be > 0");
  const index_t n = g.num_nodes();
  PartitionResult res;
  res.num_parts = opts.num_parts;
  if (opts.num_parts == 1 || n <= opts.num_parts) {
    // Trivial cases: all in one part, or one node per part round-robin.
    res.part.assign(static_cast<std::size_t>(n), 0);
    if (n <= opts.num_parts)
      for (index_t v = 0; v < n; ++v)
        res.part[static_cast<std::size_t>(v)] = v % opts.num_parts;
    return res;
  }

  Rng rng(opts.seed);

  // --- Coarsening phase. ---
  std::vector<Level> levels;
  {
    Level base;
    base.graph = g;
    base.node_weight.assign(static_cast<std::size_t>(n), 1.0);
    levels.push_back(std::move(base));
  }
  const index_t coarse_target = std::max<index_t>(
      opts.num_parts * opts.coarsen_target_per_part, 2 * opts.num_parts);
  while (levels.back().graph.num_nodes() > coarse_target) {
    Level next = coarsen(levels.back().graph, levels.back().node_weight, rng);
    // Stop if matching stalls (e.g. star graphs).
    if (next.graph.num_nodes() >
        static_cast<index_t>(0.95 * levels.back().graph.num_nodes()))
      break;
    levels.push_back(std::move(next));
  }

  // --- Initial partition on the coarsest level. ---
  std::vector<index_t> part = initial_partition(
      levels.back().graph, levels.back().node_weight, opts.num_parts, rng);
  refine(levels.back().graph, levels.back().node_weight, opts.num_parts,
         opts.balance_factor, opts.refinement_passes, part);

  // --- Uncoarsening with refinement. ---
  for (std::size_t lvl = levels.size(); lvl-- > 1;) {
    const Level& fine = levels[lvl - 1];
    const Level& coarse = levels[lvl];
    std::vector<index_t> fine_part(
        static_cast<std::size_t>(fine.graph.num_nodes()));
    for (index_t v = 0; v < fine.graph.num_nodes(); ++v)
      fine_part[static_cast<std::size_t>(v)] = part[static_cast<std::size_t>(
          coarse.map_to_coarse[static_cast<std::size_t>(v)])];
    part = std::move(fine_part);
    refine(fine.graph, fine.node_weight, opts.num_parts, opts.balance_factor,
           opts.refinement_passes, part);
  }

  res.part = std::move(part);
  return res;
}

}  // namespace er
