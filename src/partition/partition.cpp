#include "partition/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace er {

namespace {

// Chunk grains for the per-level parallel loops. Results never depend on
// the chunking: every parallel site writes per-index slots only.
constexpr index_t kEdgeGrain = 2048;
constexpr index_t kNodeGrain = 2048;

// Per-level RNG streams: matching draws on level ell come from
// mix_seed(seed ^ tag, ell), the initial partition from its own stream, so
// no draw depends on how many draws another level consumed.
constexpr std::uint64_t kMatchStreamTag = 0x70742d6d61ULL;  // "pt-ma"
constexpr std::uint64_t kInitStreamTag = 0x70742d696eULL;   // "pt-in"

/// One level of the multilevel hierarchy.
struct Level {
  Graph graph;
  std::vector<real_t> node_weight;  // accumulated original node counts
  std::vector<index_t> map_to_coarse;  // fine node -> coarse node
};

/// Heavy-edge matching: visit nodes in random order, match each unmatched
/// node with its heaviest unmatched neighbour.
std::vector<index_t> heavy_edge_matching(const Graph& g, Rng& rng) {
  const index_t n = g.num_nodes();
  std::vector<index_t> match(static_cast<std::size_t>(n), -1);
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (index_t i = n; i-- > 1;)
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(rng.uniform_int(i + 1))]);

  const auto& ptr = g.adjacency_ptr();
  const auto& nbr = g.neighbors();
  const auto& wts = g.adjacency_weights();
  for (index_t u : order) {
    if (match[static_cast<std::size_t>(u)] != -1) continue;
    index_t best = -1;
    real_t best_w = -1.0;
    for (offset_t k = ptr[static_cast<std::size_t>(u)];
         k < ptr[static_cast<std::size_t>(u) + 1]; ++k) {
      const index_t v = nbr[static_cast<std::size_t>(k)];
      if (v == u || match[static_cast<std::size_t>(v)] != -1) continue;
      if (wts[static_cast<std::size_t>(k)] > best_w) {
        best_w = wts[static_cast<std::size_t>(k)];
        best = v;
      }
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(u)] = best;
      match[static_cast<std::size_t>(best)] = u;
    } else {
      match[static_cast<std::size_t>(u)] = u;  // stays single
    }
  }
  return match;
}

/// Contract matched pairs into a coarser level. The matching (order-
/// dependent by design) stays serial; the heavy work — coarse-weight
/// accumulation and edge contraction + coalesce — chunks across `pool`
/// with per-index writes, so the level is identical at any thread count.
Level coarsen(const Graph& g, const std::vector<real_t>& node_weight,
              Rng& rng, ThreadPool* pool) {
  const index_t n = g.num_nodes();
  const auto match = heavy_edge_matching(g, rng);

  Level lvl;
  lvl.map_to_coarse.assign(static_cast<std::size_t>(n), -1);
  // members[c] = the (one or two) fine nodes contracted into c, first
  // member first: each coarse weight is summed over its own members in
  // that fixed order, independent of chunking.
  std::vector<std::pair<index_t, index_t>> members;
  members.reserve(static_cast<std::size_t>(n));
  for (index_t u = 0; u < n; ++u) {
    if (lvl.map_to_coarse[static_cast<std::size_t>(u)] != -1) continue;
    const index_t v = match[static_cast<std::size_t>(u)];
    const auto coarse_id = static_cast<index_t>(members.size());
    lvl.map_to_coarse[static_cast<std::size_t>(u)] = coarse_id;
    lvl.map_to_coarse[static_cast<std::size_t>(v)] = coarse_id;
    members.emplace_back(u, v);
  }
  const auto coarse_n = static_cast<index_t>(members.size());

  lvl.node_weight.assign(static_cast<std::size_t>(coarse_n), 0.0);
  parallel_for(pool, 0, coarse_n, kNodeGrain, [&](index_t lo, index_t hi) {
    for (index_t c = lo; c < hi; ++c) {
      const auto& [u, v] = members[static_cast<std::size_t>(c)];
      real_t w = node_weight[static_cast<std::size_t>(u)];
      if (v != u) w += node_weight[static_cast<std::size_t>(v)];
      lvl.node_weight[static_cast<std::size_t>(c)] = w;
    }
  });

  // Map every edge to coarse endpoints in parallel (cu == cv marks a
  // contracted self-loop), then compact in index order — fixed regardless
  // of chunking — and hand the result to the shared coalesce.
  const auto& edges = g.edges();
  std::vector<Edge> contracted(edges.size());
  parallel_for(pool, 0, static_cast<index_t>(edges.size()), kEdgeGrain,
               [&](index_t lo, index_t hi) {
                 for (index_t i = lo; i < hi; ++i) {
                   const Edge& e = edges[static_cast<std::size_t>(i)];
                   const index_t cu =
                       lvl.map_to_coarse[static_cast<std::size_t>(e.u)];
                   const index_t cv =
                       lvl.map_to_coarse[static_cast<std::size_t>(e.v)];
                   contracted[static_cast<std::size_t>(i)] = {cu, cv,
                                                              e.weight};
                 }
               });
  Graph cg(coarse_n);
  cg.reserve_edges(contracted.size());
  for (const auto& e : contracted)
    if (e.u != e.v) cg.add_edge(e.u, e.v, e.weight);
  lvl.graph = cg.coalesce_parallel_edges();
  return lvl;
}

/// Greedy region growing on the coarsest graph: grow each part by BFS from
/// an unassigned seed until the target weight is reached.
std::vector<index_t> initial_partition(const Graph& g,
                                       const std::vector<real_t>& node_weight,
                                       index_t k, Rng& rng) {
  const index_t n = g.num_nodes();
  std::vector<index_t> part(static_cast<std::size_t>(n), -1);
  real_t total = 0.0;
  for (real_t w : node_weight) total += w;
  const real_t target = total / static_cast<real_t>(k);

  const auto& ptr = g.adjacency_ptr();
  const auto& nbr = g.neighbors();

  std::vector<index_t> queue;
  index_t assigned = 0;
  for (index_t p = 0; p < k && assigned < n; ++p) {
    // Seed: random unassigned node.
    index_t seed = -1;
    for (int tries = 0; tries < 64 && seed < 0; ++tries) {
      const index_t cand = rng.uniform_int(n);
      if (part[static_cast<std::size_t>(cand)] == -1) seed = cand;
    }
    if (seed < 0) {
      for (index_t v = 0; v < n; ++v)
        if (part[static_cast<std::size_t>(v)] == -1) {
          seed = v;
          break;
        }
    }
    if (seed < 0) break;

    // Claim nodes when they are *popped*, not when pushed: on small-diameter
    // (heavy-tailed) graphs the BFS frontier can exceed the whole target, so
    // eager assignment would swallow most of the graph into one part.
    real_t grown = 0.0;
    queue.clear();
    queue.push_back(seed);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const index_t u = queue[head];
      if (part[static_cast<std::size_t>(u)] != -1) continue;
      part[static_cast<std::size_t>(u)] = p;
      grown += node_weight[static_cast<std::size_t>(u)];
      ++assigned;
      if (grown >= target && p + 1 < k) break;
      for (offset_t e = ptr[static_cast<std::size_t>(u)];
           e < ptr[static_cast<std::size_t>(u) + 1]; ++e) {
        const index_t v = nbr[static_cast<std::size_t>(e)];
        if (part[static_cast<std::size_t>(v)] == -1) queue.push_back(v);
      }
    }
  }
  // Any leftovers: attach to an adjacent part (or part 0).
  for (index_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] != -1) continue;
    index_t p = 0;
    for (offset_t e = ptr[static_cast<std::size_t>(v)];
         e < ptr[static_cast<std::size_t>(v) + 1]; ++e) {
      const index_t u = nbr[static_cast<std::size_t>(e)];
      if (part[static_cast<std::size_t>(u)] != -1) {
        p = part[static_cast<std::size_t>(u)];
        break;
      }
    }
    part[static_cast<std::size_t>(v)] = p;
  }
  return part;
}

/// Boundary refinement: greedy positive-gain moves under a balance cap.
/// Two-phase per pass: the boundary scan — the heavy gain-relevant sweep
/// over every node's adjacency — runs across `pool` against the partition
/// as it stands at pass start, then moves are applied serially in node
/// order with exact live gains. The candidate set is a pure per-node
/// function of the pass-start partition, so the refined partition is
/// identical at any thread count (an interior node that turns boundary
/// mid-pass is picked up by the next pass).
void refine(const Graph& g, const std::vector<real_t>& node_weight, index_t k,
            real_t balance_factor, int passes, std::vector<index_t>& part,
            ThreadPool* pool) {
  const index_t n = g.num_nodes();
  // Touching the adjacency here also forces the lazy CSR build before the
  // parallel scan (concurrent first-builds of the cache would race).
  const auto& ptr = g.adjacency_ptr();
  const auto& nbr = g.neighbors();
  const auto& wts = g.adjacency_weights();

  std::vector<real_t> part_weight(static_cast<std::size_t>(k), 0.0);
  real_t total = 0.0;
  for (index_t v = 0; v < n; ++v) {
    part_weight[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        node_weight[static_cast<std::size_t>(v)];
    total += node_weight[static_cast<std::size_t>(v)];
  }
  const real_t cap = balance_factor * total / static_cast<real_t>(k);

  std::vector<char> boundary(static_cast<std::size_t>(n), 0);
  std::vector<real_t> gain_to(static_cast<std::size_t>(k), 0.0);
  std::vector<index_t> touched;
  for (int pass = 0; pass < passes; ++pass) {
    // Phase 1 (parallel): flag nodes with a neighbor in another part.
    // Only such nodes can have a candidate move below.
    parallel_for(pool, 0, n, kNodeGrain, [&](index_t lo, index_t hi) {
      for (index_t v = lo; v < hi; ++v) {
        const index_t pv = part[static_cast<std::size_t>(v)];
        char flag = 0;
        for (offset_t e = ptr[static_cast<std::size_t>(v)];
             e < ptr[static_cast<std::size_t>(v) + 1]; ++e) {
          if (part[static_cast<std::size_t>(
                  nbr[static_cast<std::size_t>(e)])] != pv) {
            flag = 1;
            break;
          }
        }
        boundary[static_cast<std::size_t>(v)] = flag;
      }
    });

    // Phase 2 (serial): exact gains against the live partition, moves
    // applied in fixed node order.
    bool moved_any = false;
    for (index_t v = 0; v < n; ++v) {
      if (!boundary[static_cast<std::size_t>(v)]) continue;
      const index_t from = part[static_cast<std::size_t>(v)];
      touched.clear();
      real_t internal = 0.0;
      for (offset_t e = ptr[static_cast<std::size_t>(v)];
           e < ptr[static_cast<std::size_t>(v) + 1]; ++e) {
        const index_t pu = part[static_cast<std::size_t>(
            nbr[static_cast<std::size_t>(e)])];
        const real_t w = wts[static_cast<std::size_t>(e)];
        if (pu == from) {
          internal += w;
        } else {
          if (gain_to[static_cast<std::size_t>(pu)] == 0.0) touched.push_back(pu);
          gain_to[static_cast<std::size_t>(pu)] += w;
        }
      }
      // Positive-gain moves always; when the source part is overloaded,
      // zero/negative-gain moves to a lighter part are allowed too, so
      // refinement doubles as rebalancing.
      const bool from_over =
          part_weight[static_cast<std::size_t>(from)] > cap;
      index_t best = -1;
      real_t best_gain = from_over ? -1e30 : 0.0;
      for (index_t p : touched) {
        const real_t gain = gain_to[static_cast<std::size_t>(p)] - internal;
        const bool fits = part_weight[static_cast<std::size_t>(p)] +
                              node_weight[static_cast<std::size_t>(v)] <=
                          cap;
        const bool lighter = part_weight[static_cast<std::size_t>(p)] <
                             part_weight[static_cast<std::size_t>(from)];
        if (gain > best_gain && (fits || (from_over && lighter))) {
          best_gain = gain;
          best = p;
        }
        gain_to[static_cast<std::size_t>(p)] = 0.0;
      }
      if (best >= 0) {
        part_weight[static_cast<std::size_t>(from)] -=
            node_weight[static_cast<std::size_t>(v)];
        part_weight[static_cast<std::size_t>(best)] +=
            node_weight[static_cast<std::size_t>(v)];
        part[static_cast<std::size_t>(v)] = best;
        moved_any = true;
      }
    }
    if (!moved_any) break;
  }
}

}  // namespace

real_t PartitionResult::cut_weight(const Graph& g) const {
  real_t acc = 0.0;
  for (const auto& e : g.edges())
    if (part[static_cast<std::size_t>(e.u)] !=
        part[static_cast<std::size_t>(e.v)])
      acc += e.weight;
  return acc;
}

std::size_t PartitionResult::cut_edges(const Graph& g) const {
  std::size_t acc = 0;
  for (const auto& e : g.edges())
    if (part[static_cast<std::size_t>(e.u)] !=
        part[static_cast<std::size_t>(e.v)])
      ++acc;
  return acc;
}

real_t PartitionResult::balance(const Graph& g) const {
  if (num_parts == 0) return 0.0;
  std::vector<index_t> count(static_cast<std::size_t>(num_parts), 0);
  for (index_t p : part) ++count[static_cast<std::size_t>(p)];
  const index_t target =
      (g.num_nodes() + num_parts - 1) / num_parts;  // ceil(n/k)
  index_t mx = 0;
  for (index_t c : count) mx = std::max(mx, c);
  return static_cast<real_t>(mx) / static_cast<real_t>(target);
}

PartitionResult partition_graph(const Graph& g, const PartitionOptions& opts,
                                ThreadPool* pool) {
  if (opts.num_parts <= 0)
    throw std::invalid_argument("partition_graph: num_parts must be > 0");
  const index_t n = g.num_nodes();
  PartitionResult res;
  res.num_parts = opts.num_parts;
  if (opts.num_parts == 1 || n <= opts.num_parts) {
    // Trivial cases: all in one part, or one node per part round-robin.
    res.part.assign(static_cast<std::size_t>(n), 0);
    if (n <= opts.num_parts)
      for (index_t v = 0; v < n; ++v)
        res.part[static_cast<std::size_t>(v)] = v % opts.num_parts;
    return res;
  }

  // --- Coarsening phase. Each level's matching draws from its own
  // mix_seed stream, so a level's randomness never depends on how many
  // draws earlier levels consumed. ---
  std::vector<Level> levels;
  {
    Level base;
    base.graph = g;
    base.node_weight.assign(static_cast<std::size_t>(n), 1.0);
    levels.push_back(std::move(base));
  }
  const index_t coarse_target = std::max<index_t>(
      opts.num_parts * opts.coarsen_target_per_part, 2 * opts.num_parts);
  while (levels.back().graph.num_nodes() > coarse_target) {
    Rng level_rng(mix_seed(opts.seed ^ kMatchStreamTag,
                           static_cast<std::uint64_t>(levels.size() - 1)));
    Level next = coarsen(levels.back().graph, levels.back().node_weight,
                         level_rng, pool);
    // Stop if matching stalls (e.g. star graphs).
    if (next.graph.num_nodes() >
        static_cast<index_t>(0.95 * levels.back().graph.num_nodes()))
      break;
    levels.push_back(std::move(next));
  }

  // --- Initial partition on the coarsest level. ---
  Rng init_rng(mix_seed(opts.seed ^ kInitStreamTag, 0));
  std::vector<index_t> part =
      initial_partition(levels.back().graph, levels.back().node_weight,
                        opts.num_parts, init_rng);
  refine(levels.back().graph, levels.back().node_weight, opts.num_parts,
         opts.balance_factor, opts.refinement_passes, part, pool);

  // --- Uncoarsening with refinement. ---
  for (std::size_t lvl = levels.size(); lvl-- > 1;) {
    const Level& fine = levels[lvl - 1];
    const Level& coarse = levels[lvl];
    std::vector<index_t> fine_part(
        static_cast<std::size_t>(fine.graph.num_nodes()));
    for (index_t v = 0; v < fine.graph.num_nodes(); ++v)
      fine_part[static_cast<std::size_t>(v)] = part[static_cast<std::size_t>(
          coarse.map_to_coarse[static_cast<std::size_t>(v)])];
    part = std::move(fine_part);
    refine(fine.graph, fine.node_weight, opts.num_parts, opts.balance_factor,
           opts.refinement_passes, part, pool);
  }

  res.part = std::move(part);
  return res;
}

}  // namespace er
