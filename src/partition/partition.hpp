// Multilevel k-way graph partitioner — the role METIS plays in the paper's
// Alg. 1 (power-grid blocks). Heavy-edge-matching coarsening, greedy region
// growing for the initial partition, and boundary Fiduccia–Mattheyses-style
// refinement during uncoarsening.
//
// Quality target: balanced parts with a modest cut. Reduction accuracy in
// the downstream pipeline is dominated by the effective-resistance sampling,
// not by cut optimality, so this does not need METIS-level refinement.
//
// Concurrency (DESIGN.md §3): the heavy per-level work — edge contraction,
// coarse-weight accumulation, and the boundary scan that feeds refinement —
// chunks across an optional ThreadPool into per-index slots; the matching
// order, all moves, and every RNG draw (one mix_seed stream per level) stay
// serial, so the partition is bit-identical at any thread count.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "parallel/thread_pool.hpp"
#include "util/types.hpp"

namespace er {

struct PartitionOptions {
  index_t num_parts = 2;
  /// Allowed imbalance: max part weight <= balance_factor * (total/k).
  real_t balance_factor = 1.10;
  int refinement_passes = 4;
  /// Stop coarsening when the graph has at most this many nodes per part.
  index_t coarsen_target_per_part = 30;
  std::uint64_t seed = 1;
};

struct PartitionResult {
  index_t num_parts = 0;
  std::vector<index_t> part;  // node -> part id in [0, num_parts)

  /// Total weight of edges crossing parts.
  [[nodiscard]] real_t cut_weight(const Graph& g) const;
  /// Number of edges crossing parts.
  [[nodiscard]] std::size_t cut_edges(const Graph& g) const;
  /// max part node-count / ceil(n / k) — 1.0 is perfectly balanced.
  [[nodiscard]] real_t balance(const Graph& g) const;
};

/// Partition g into opts.num_parts parts. `pool` (optional) parallelizes
/// the per-level heavy work; the result is identical at any thread count.
PartitionResult partition_graph(const Graph& g, const PartitionOptions& opts,
                                ThreadPool* pool = nullptr);

}  // namespace er
