#include "reduction/schur.hpp"

#include <cmath>
#include <stdexcept>

#include "chol/cholesky.hpp"

namespace er {

SchurResult schur_complement(const CscMatrix& a,
                             const std::vector<index_t>& keep,
                             const std::vector<index_t>& elim,
                             real_t drop_tol) {
  const index_t n = a.cols();
  if (static_cast<index_t>(keep.size() + elim.size()) != n)
    throw std::invalid_argument("schur_complement: keep+elim must cover n");

  SchurResult out;
  out.keep = keep;
  const auto nk = static_cast<index_t>(keep.size());
  const auto ne = static_cast<index_t>(elim.size());
  if (ne == 0) {
    out.matrix = a.extract(keep, keep);
    return out;
  }

  const CscMatrix a_kk = a.extract(keep, keep);
  const CscMatrix a_ek = a.extract(elim, keep);  // ne x nk
  const CscMatrix a_ee = a.extract(elim, elim);

  const CholFactor f = cholesky(a_ee, Ordering::kMinDeg);

  // S column by column: s_j = a_kk(:,j) - a_ek^T * (a_ee^{-1} a_ek(:,j)).
  TripletMatrix t(nk, nk);
  std::vector<real_t> rhs(static_cast<std::size_t>(ne));
  std::vector<real_t> correction(static_cast<std::size_t>(nk));
  const auto& ek_cp = a_ek.col_ptr();
  const auto& ek_ri = a_ek.row_ind();
  const auto& ek_vv = a_ek.values();

  const auto& kk_cp = a_kk.col_ptr();
  const auto& kk_ri = a_kk.row_ind();
  const auto& kk_vv = a_kk.values();

  for (index_t j = 0; j < nk; ++j) {
    const offset_t cb = ek_cp[static_cast<std::size_t>(j)];
    const offset_t ce = ek_cp[static_cast<std::size_t>(j) + 1];
    // Columns of A_EK with no eliminated coupling need no correction.
    const bool coupled = cb < ce;
    const real_t diag_scale = std::max(std::abs(a_kk.at(j, j)), real_t{1.0});
    const real_t cut = drop_tol * diag_scale;

    if (coupled) {
      std::fill(rhs.begin(), rhs.end(), 0.0);
      for (offset_t k = cb; k < ce; ++k)
        rhs[static_cast<std::size_t>(ek_ri[static_cast<std::size_t>(k)])] =
            ek_vv[static_cast<std::size_t>(k)];
      const std::vector<real_t> y = f.solve(rhs);
      a_ek.multiply_transpose(y, correction);
      // s(:, j) = a_kk(:, j) - correction: scatter the sparse column into
      // the (negated) dense correction, then emit nonzeros.
      for (real_t& v : correction) v = -v;
      for (offset_t k = kk_cp[static_cast<std::size_t>(j)];
           k < kk_cp[static_cast<std::size_t>(j) + 1]; ++k)
        correction[static_cast<std::size_t>(
            kk_ri[static_cast<std::size_t>(k)])] +=
            kk_vv[static_cast<std::size_t>(k)];
      for (index_t i = 0; i < nk; ++i) {
        const real_t v = correction[static_cast<std::size_t>(i)];
        if (std::abs(v) > cut) t.add(i, j, v);
      }
    } else {
      for (offset_t k = kk_cp[static_cast<std::size_t>(j)];
           k < kk_cp[static_cast<std::size_t>(j) + 1]; ++k)
        t.add(kk_ri[static_cast<std::size_t>(k)], j,
              kk_vv[static_cast<std::size_t>(k)]);
    }
  }
  out.matrix = CscMatrix::from_triplets(t);
  return out;
}

}  // namespace er
