/// \file
/// Algorithm 1 — power grid reduction via effective-resistance-based graph
/// sparsification (the framework of [8], modified to preserve all ports):
///
///   1. partition the network into blocks,
///   2. per block, eliminate non-port interior nodes (Schur complement),
///   3. per block, compute effective resistances of the reduced edges
///      (exact / random-projection / Alg. 3 — the paper's Table II axis),
///   4. merge electrically-indistinguishable non-port nodes, then sparsify
///      by effective-resistance sampling,
///   5. stitch blocks and cut edges into the final reduced network.
///
/// The per-block step is exposed separately (reduce_block / stitch_blocks)
/// so DC *incremental* analysis can re-reduce only modified blocks and
/// reuse the cached reductions of untouched ones (paper §IV-B lower
/// table), and the full artifact bundle is exposed
/// (reduce_network_artifacts) so the serving layer can keep it resident
/// (DESIGN.md §4).
#pragma once

#include <memory>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "reduction/network.hpp"
#include "util/types.hpp"

namespace er {

/// Which engine computes effective resistances in step 3 (Table II columns).
enum class ErBackend {
  kExact,             // "w/ Acc. Eff. Res."
  kRandomProjection,  // "w/ App. Eff. Res. ([1])"
  kApproxChol,        // "w/ App. Eff. Res. (Alg. 3)" — the paper's method
};

const char* to_string(ErBackend b);

struct ReductionOptions {
  /// Number of partition blocks; 0 = auto (#ports / 50, the paper's rule).
  index_t num_blocks = 0;
  /// Effective-resistance engine for step 3.
  ErBackend backend = ErBackend::kApproxChol;
  /// Alg. 3 parameters (backend == kApproxChol).
  real_t droptol = 1e-3;
  real_t epsilon = 1e-3;
  /// Random-projection dimension scale (backend == kRandomProjection).
  real_t projection_scale = 16.0;
  /// Sampling quality for sparsification: q = quality * n log2 n per block.
  real_t sparsify_quality = 4.0;
  /// Node-merge threshold relative to mean edge ER (0 disables merging).
  real_t merge_threshold = 0.0;
  /// Root seed of every per-block/per-row RNG stream (DESIGN.md §3).
  std::uint64_t seed = 42;
  /// Threading for block reduction and batched ER queries. The reduced
  /// model is bit-identical at any thread count (per-block RNG streams are
  /// derived as mix_seed(seed, block); see DESIGN.md §3).
  ParallelOptions parallel;
};

struct ReductionStats {
  /// Wall-clock per pipeline stage. The stages are disjoint spans of the
  /// run, so each is <= total_seconds (and their sum is ~total_seconds).
  double partition_seconds = 0.0;  ///< step 1
  double reduce_seconds = 0.0;     ///< steps 2-4 across all blocks
  double stitch_seconds = 0.0;     ///< step 5
  double total_seconds = 0.0;      ///< whole-run wall clock
  /// Aggregate per-block phase times: each block's wall time for the phase,
  /// summed over blocks that may run concurrently. These measure work
  /// (approximately CPU-seconds), not elapsed time, and can exceed
  /// total_seconds in multi-thread runs; compare against the wall-clock
  /// fields above to see how well a stage parallelized. Caveat: when a
  /// block runs from the main thread (one block, or one dirty block in an
  /// incremental update) its nested ER/RP queries fan out across the pool,
  /// so that block's contribution is multi-thread wall time and
  /// *understates* CPU-seconds by up to the thread count.
  double schur_cpu_seconds = 0.0;     ///< step 2 aggregate over blocks
  double er_cpu_seconds = 0.0;        ///< step 3 aggregate over blocks
  double sparsify_cpu_seconds = 0.0;  ///< step 4 aggregate over blocks
  /// Blocks whose node-side slices (node_map / representative / shunt
  /// entries) were carried over from the previous model version instead of
  /// being rewritten — nonzero only on the copy-on-write incremental stitch
  /// path (stitch_blocks_update); a full stitch reports 0.
  index_t stitch_reused_blocks = 0;
  index_t blocks = 0;                 ///< partition width
  index_t original_nodes = 0;         ///< input |V|
  index_t reduced_nodes = 0;          ///< stitched model |V|
  std::size_t original_edges = 0;     ///< input |E|
  std::size_t reduced_edges = 0;      ///< stitched model |E|
};

/// Partition + node classification, computed once and reusable across
/// incremental re-reductions.
struct BlockStructure {
  index_t num_blocks = 0;
  std::vector<index_t> block_of;                 ///< node -> block
  std::vector<char> is_interface;                ///< touches a cut edge
  std::vector<std::vector<index_t>> block_nodes; ///< block -> member nodes
  std::vector<std::vector<Edge>> block_edges;    ///< block-internal edges
  std::vector<Edge> cut_edges;                   ///< inter-block edges
};

/// One block after steps 2-4.
struct BlockReduced {
  std::vector<index_t> kept_orig;   ///< S index -> original node id
  std::vector<index_t> merge_map;   ///< S index -> merged local id
  index_t merged_count = 0;         ///< nodes surviving the merge
  Graph sparse_graph;               ///< sparsified block, merged local ids
  std::vector<real_t> shunts;       ///< per merged local id
  double schur_seconds = 0.0;       ///< step 2 wall time of this block
  double er_seconds = 0.0;          ///< step 3 wall time of this block
  double sparsify_seconds = 0.0;    ///< step 4 wall time of this block
};

struct ReducedModel {
  ConductanceNetwork network;
  /// original node -> reduced node id, or -1 if eliminated.
  std::vector<index_t> node_map;
  /// reduced node id -> one original representative node.
  std::vector<index_t> representative;
  /// original node -> partition block (for cap redistribution etc.).
  std::vector<index_t> block_of;
  /// per block: reduced ids of its kept nodes.
  std::vector<std::vector<index_t>> block_kept;
  ReductionStats stats;
};

/// Shared ownership handle of one immutable stitched model version. The
/// pipeline produces every stitched model behind one of these so the
/// serving layer can alias it (zero-copy publish, DESIGN.md §4.1) instead
/// of deep-copying O(nodes+edges) state per publish: once wrapped, a
/// version is never mutated — the reducer builds the *next* version into a
/// fresh allocation and old versions die by refcount when the last
/// snapshot (or other pin) drops them.
using ModelPtr = std::shared_ptr<const ReducedModel>;

/// Everything Alg. 1 produces, with the per-block intermediates retained
/// instead of discarded after the stitch. The serving layer (`serve/`,
/// DESIGN.md §4) turns these into a resident, immutable ModelSnapshot:
/// `structure` routes queries to blocks, `blocks` seeds the per-block
/// engines, and `model` is the stitched network the answers refer to —
/// held through ModelPtr so a snapshot built from these artifacts aliases
/// the model instead of copying it.
struct ReductionArtifacts {
  BlockStructure structure;
  std::vector<BlockReduced> blocks;  ///< per-block reductions, indexed by block
  ModelPtr model;
};

/// Step 1: partition the network and classify nodes/edges. `pool`
/// (optional) parallelizes the heavy per-level partitioner work; the
/// partition is identical at any thread count.
BlockStructure build_block_structure(const ConductanceNetwork& input,
                                     const std::vector<char>& is_port,
                                     const ReductionOptions& opts,
                                     ThreadPool* pool = nullptr);

/// Steps 2-4 for one block. `pool` (optional) parallelizes the block's
/// batched ER queries; when reduce_block itself runs on a pool worker the
/// queries fall back to inline execution, so passing the same pool the
/// block dispatch uses is always safe.
BlockReduced reduce_block(const ConductanceNetwork& input,
                          const std::vector<char>& is_port,
                          const BlockStructure& structure, index_t block,
                          const ReductionOptions& opts,
                          ThreadPool* pool = nullptr);

/// Step 5: combine per-block reductions and cut edges. Two-pass: a serial
/// prefix sum over merged_count/edge counts fixes each block's global node
/// base and edge slice, then the per-block writes (node_map,
/// representative, shunts, edge slices) go across `pool` into disjoint
/// pre-sized slots; the cut-edge tail and parallel-edge coalescing stay
/// serial. Output is identical at any thread count. Sets
/// stats.stitch_seconds plus the per-phase *_cpu_seconds aggregates.
ReducedModel stitch_blocks(const ConductanceNetwork& input,
                           const BlockStructure& structure,
                           const std::vector<BlockReduced>& blocks,
                           ThreadPool* pool = nullptr);

/// Copy-on-write re-stitch after an incremental update: build the next
/// model version from `previous` (the version the last stitch produced)
/// by carrying over the node-side slices — node_map entries,
/// representative / shunt ranges, block_kept — of every block not listed
/// in `dirty_blocks` and rewriting only the dirty slices, which the PR 2
/// prefix-sum layout keeps disjoint per block. The edge array and the
/// coalesced reduced graph are rebuilt (parallel-edge coalescing and the
/// cut-edge tail are global), so the saving is the node-side scatter, not
/// the graph assembly. Falls back to a full stitch_blocks whenever the
/// layout moved (any dirty block's merged_count changed, shifting every
/// later block's node base). Output is bit-identical to
/// stitch_blocks(input, structure, blocks, pool) either way;
/// stats.stitch_reused_blocks reports how many blocks were carried over.
/// `previous` is read-only — safe to call with a version other snapshots
/// still alias. `dirty_blocks` must be sorted, deduplicated, and in range.
ReducedModel stitch_blocks_update(const ConductanceNetwork& input,
                                  const BlockStructure& structure,
                                  const std::vector<BlockReduced>& blocks,
                                  const ReducedModel& previous,
                                  const std::vector<index_t>& dirty_blocks,
                                  ThreadPool* pool = nullptr);

/// Approximate resident size of a stitched model in bytes (graph CSR +
/// edge list, shunts, node/block maps). The unit the serving layer's
/// publish-cost accounting reports: a deep-copy publish copies this many
/// bytes, a zero-copy publish aliases them (DESIGN.md §4.1).
std::size_t model_footprint_bytes(const ReducedModel& model);

/// Run the whole of Alg. 1. `is_port[v]` marks nodes that must survive
/// reduction (voltage/current source attachments).
ReducedModel reduce_network(const ConductanceNetwork& input,
                            const std::vector<char>& is_port,
                            const ReductionOptions& opts = {});

/// Like reduce_network, but keeps the block structure and the per-block
/// reductions alongside the stitched model (the inputs a serving
/// ModelSnapshot is built from). reduce_network is a thin wrapper that
/// discards everything but the model.
ReductionArtifacts reduce_network_artifacts(const ConductanceNetwork& input,
                                            const std::vector<char>& is_port,
                                            const ReductionOptions& opts = {});

/// Bit-exact equality of two per-block reductions (everything but the
/// timing fields): kept nodes, merge map, local graph edges/weights, and
/// shunts. The per-block determinism oracle behind the serving layer's
/// copy-on-write snapshot sharing — a block untouched by an incremental
/// update must reduce to a bit-identical BlockReduced, which is what lets
/// successive snapshots alias its factors (DESIGN.md §4.1).
bool blocks_identical(const BlockReduced& a, const BlockReduced& b);

/// Bit-exact equality of everything but timing stats: node maps,
/// representatives, block bookkeeping, edges, weights, and shunts. This is
/// the determinism oracle used to assert that serial and parallel runs
/// agree (DESIGN.md §3).
bool models_identical(const ReducedModel& a, const ReducedModel& b);

}  // namespace er
