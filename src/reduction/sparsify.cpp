#include "reduction/sparsify.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace er {

namespace {

/// Disjoint-set forest with path compression.
class UnionFind {
 public:
  explicit UnionFind(index_t n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  index_t find(index_t x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool unite(index_t a, index_t b) {
    const index_t ra = find(a), rb = find(b);
    if (ra == rb) return false;
    parent_[static_cast<std::size_t>(ra)] = rb;
    return true;
  }

 private:
  std::vector<index_t> parent_;
};

}  // namespace

std::vector<index_t> max_spanning_forest(const Graph& g,
                                         const std::vector<real_t>& score) {
  if (score.size() != g.num_edges())
    throw std::invalid_argument("max_spanning_forest: score size mismatch");
  std::vector<index_t> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return score[static_cast<std::size_t>(a)] >
           score[static_cast<std::size_t>(b)];
  });
  UnionFind uf(g.num_nodes());
  std::vector<index_t> forest;
  forest.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (index_t eid : order) {
    const Edge& e = g.edges()[static_cast<std::size_t>(eid)];
    if (uf.unite(e.u, e.v)) forest.push_back(eid);
  }
  return forest;
}

Graph sparsify_by_effective_resistance(const Graph& g,
                                       const std::vector<real_t>& edge_er,
                                       const SparsifyOptions& opts) {
  if (edge_er.size() != g.num_edges())
    throw std::invalid_argument("sparsify: edge_er size mismatch");
  const index_t n = g.num_nodes();
  const std::size_t m = g.num_edges();
  if (m == 0) return Graph(n);

  // Leverage scores w_e * R_e (clamped to [0, 1] against numeric noise).
  std::vector<real_t> leverage(m);
  for (std::size_t e = 0; e < m; ++e) {
    const real_t le = g.edges()[e].weight *
                      std::max<real_t>(edge_er[e], real_t{0.0});
    leverage[e] = std::min<real_t>(le, real_t{1.0});
  }

  const auto q = static_cast<std::size_t>(std::ceil(
      opts.quality * static_cast<double>(n) *
      std::log2(static_cast<double>(std::max<index_t>(n, 2)))));

  // If we'd sample as many entries as the graph has edges, sparsification
  // cannot help; return a copy.
  if (q >= m && !opts.keep_spanning_tree) return g;

  std::vector<real_t> acc_weight(m, 0.0);

  // Spanning forest kept verbatim.
  std::vector<char> in_forest(m, 0);
  if (opts.keep_spanning_tree) {
    for (index_t eid : max_spanning_forest(g, leverage))
      in_forest[static_cast<std::size_t>(eid)] = 1;
  }

  // Sampling distribution over non-forest edges.
  std::vector<double> probs(m, 0.0);
  double total = 0.0;
  for (std::size_t e = 0; e < m; ++e) {
    if (in_forest[e]) continue;
    probs[e] = std::max<real_t>(leverage[e], real_t{1e-12});
    total += probs[e];
  }

  if (total > 0.0) {
    AliasSampler sampler(probs);
    Rng rng(opts.seed);
    const double qd = static_cast<double>(q);
    for (std::size_t s = 0; s < q; ++s) {
      const auto e = static_cast<std::size_t>(sampler.sample(rng));
      const double pe = probs[e] / total;
      acc_weight[e] += g.edges()[e].weight / (qd * pe);
    }
  }

  Graph out(n);
  for (std::size_t e = 0; e < m; ++e) {
    const Edge& ed = g.edges()[e];
    real_t w = acc_weight[e];
    if (in_forest[e]) w += ed.weight;  // forest edges keep original weight
    if (w > 0.0) out.add_edge(ed.u, ed.v, w);
  }
  return out.coalesce_parallel_edges();
}

}  // namespace er
