// Conductance network: a weighted graph plus per-node shunt (ground)
// conductances. This is the object the reduction pipeline transforms —
// power grids, Schur complements and sparsified models are all instances.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace er {

struct ConductanceNetwork {
  Graph graph;
  std::vector<real_t> shunts;  // per-node conductance to ground (>= 0)

  [[nodiscard]] index_t num_nodes() const { return graph.num_nodes(); }

  /// System matrix: Laplacian(graph) + diag(shunts). SPD iff every
  /// connected component has at least one positive shunt.
  [[nodiscard]] CscMatrix system_matrix() const;
};

/// Interpret a symmetric SDD matrix as a conductance network:
/// edge (i, j) with weight -a_ij for every negative off-diagonal, and
/// shunt_i = a_ii - sum_j |a_ij| (clamped at 0; tiny numerical residues
/// below `tol` * diagonal are discarded).
ConductanceNetwork network_from_matrix(const CscMatrix& a, real_t tol = 1e-12);

}  // namespace er
