// Effective-resistance-based node merging (Alg. 1 step 4, from [8]):
// nodes joined by an edge whose effective resistance is far below the
// typical edge resistance are electrically indistinguishable and are
// collapsed into one node. Only nodes the caller marks as mergeable are
// touched (our modified Alg. 1 preserves every port).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace er {

struct MergeOptions {
  /// Merge edge (u,v) when R(u,v) < threshold * mean edge R. 0 disables.
  real_t relative_threshold = 0.0;
};

struct MergeResult {
  /// node -> representative node id in the *merged* graph (compact ids).
  std::vector<index_t> node_map;
  index_t merged_count = 0;  // nodes in the merged graph
  Graph merged;              // merged graph (parallel edges coalesced)
};

/// Merge nodes of g by edge effective resistance. `mergeable[v]` guards
/// which nodes may be absorbed (both endpoints must be mergeable, except
/// that a mergeable node may merge *into* a non-mergeable one).
MergeResult merge_by_effective_resistance(const Graph& g,
                                          const std::vector<real_t>& edge_er,
                                          const std::vector<char>& mergeable,
                                          const MergeOptions& opts);

}  // namespace er
