// Schur-complement elimination (Alg. 1 step 2): remove a set of nodes from
// an SPD conductance system exactly, so that the response seen at the kept
// nodes is unchanged:
//
//   S = A_KK - A_KE * A_EE^{-1} * A_EK .
//
// A_EE is factored with the complete sparse Cholesky; one triangular solve
// per kept column that touches the eliminated set.
#pragma once

#include <vector>

#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace er {

struct SchurResult {
  CscMatrix matrix;               // |keep| x |keep| Schur complement
  std::vector<index_t> keep;      // new index -> old index
};

/// Eliminate `elim` from the SPD matrix a; `keep` and `elim` must partition
/// [0, n). Entries with magnitude below `drop_tol` (relative to the column
/// diagonal) are dropped from S to keep it sparse-representable.
SchurResult schur_complement(const CscMatrix& a,
                             const std::vector<index_t>& keep,
                             const std::vector<index_t>& elim,
                             real_t drop_tol = 1e-13);

}  // namespace er
