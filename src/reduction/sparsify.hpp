// Spectral sparsification by effective-resistance sampling
// (Spielman–Srivastava [4], as used by the PG reduction framework [8]).
//
// Each edge e is sampled with probability proportional to w_e * R_e (its
// leverage score); a sampled edge enters the sparsifier with weight
// w_e / (q * p_e). A maximum-leverage spanning forest is always kept so the
// sparsifier never disconnects the network (practical guard also used by
// spectral-sparsification codes such as feGRASS [6]).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace er {

struct SparsifyOptions {
  /// Number of samples q = ceil(quality * n * log2(n)).
  real_t quality = 1.0;
  /// Always keep a spanning forest (recommended for PG reduction).
  bool keep_spanning_tree = true;
  std::uint64_t seed = 99;
};

/// Sparsify g given per-edge effective resistances (same order as
/// g.edges()). Returns a graph on the same node set.
Graph sparsify_by_effective_resistance(const Graph& g,
                                       const std::vector<real_t>& edge_er,
                                       const SparsifyOptions& opts = {});

/// Maximum-weight spanning forest edge ids (by the given edge score).
std::vector<index_t> max_spanning_forest(const Graph& g,
                                         const std::vector<real_t>& score);

}  // namespace er
