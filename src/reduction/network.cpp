#include "reduction/network.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/laplacian.hpp"

namespace er {

CscMatrix ConductanceNetwork::system_matrix() const {
  return laplacian_with_shunts(graph, shunts);
}

ConductanceNetwork network_from_matrix(const CscMatrix& a, real_t tol) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("network_from_matrix: not square");
  const index_t n = a.cols();
  ConductanceNetwork net;
  net.graph = Graph(n);
  net.shunts.assign(static_cast<std::size_t>(n), 0.0);

  const auto& cp = a.col_ptr();
  const auto& ri = a.row_ind();
  const auto& vv = a.values();

  std::vector<real_t> offdiag_sum(static_cast<std::size_t>(n), 0.0);
  const std::vector<real_t> diag = a.diagonal();
  for (index_t c = 0; c < n; ++c) {
    for (offset_t k = cp[static_cast<std::size_t>(c)];
         k < cp[static_cast<std::size_t>(c) + 1]; ++k) {
      const index_t r = ri[static_cast<std::size_t>(k)];
      const real_t v = vv[static_cast<std::size_t>(k)];
      if (r == c) continue;
      // Keep each undirected edge once (upper triangle sweep).
      if (r < c) {
        const real_t w = -v;
        const real_t scale = std::max(std::abs(diag[static_cast<std::size_t>(c)]),
                                      real_t{1.0});
        if (w > tol * scale) {
          net.graph.add_edge(r, c, w);
        }
        // Positive off-diagonals (non-SDD residues) are not representable
        // as conductances; they are ignored at the |.| <= tol scale and
        // rejected above it.
        if (v > tol * scale)
          throw std::invalid_argument(
              "network_from_matrix: positive off-diagonal entry");
      }
      offdiag_sum[static_cast<std::size_t>(r)] += std::max<real_t>(-v, 0.0);
    }
  }
  for (index_t i = 0; i < n; ++i) {
    const real_t s =
        diag[static_cast<std::size_t>(i)] - offdiag_sum[static_cast<std::size_t>(i)];
    net.shunts[static_cast<std::size_t>(i)] = std::max<real_t>(s, 0.0);
  }
  return net;
}

}  // namespace er
