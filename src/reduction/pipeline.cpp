#include "reduction/pipeline.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "effres/approx_chol.hpp"
#include "effres/exact.hpp"
#include "effres/random_projection.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "partition/partition.hpp"
#include "reduction/port_merge.hpp"
#include "reduction/schur.hpp"
#include "reduction/sparsify.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace er {

const char* to_string(ErBackend b) {
  switch (b) {
    case ErBackend::kExact:
      return "exact";
    case ErBackend::kRandomProjection:
      return "random-projection";
    case ErBackend::kApproxChol:
      return "approx-chol";
  }
  return "?";
}

namespace {

// Per-block RNG streams: each block-indexed random site hashes (seed, block)
// into an independent stream so reduction results do not depend on the order
// (or thread) in which blocks are processed. Distinct tags keep the engine
// and sparsifier streams decorrelated within a block.
constexpr std::uint64_t kEngineStreamTag = 0x65722d656e67ULL;   // "er-eng"
constexpr std::uint64_t kSparsifyStreamTag = 0x65722d7370ULL;   // "er-sp"

std::uint64_t block_stream_seed(std::uint64_t seed, std::uint64_t tag,
                                index_t block) {
  return mix_seed(seed ^ tag, static_cast<std::uint64_t>(block));
}

std::unique_ptr<EffResEngine> make_engine(const Graph& g,
                                          const ReductionOptions& opts,
                                          index_t block, ThreadPool* pool) {
  switch (opts.backend) {
    case ErBackend::kExact:
      return std::make_unique<ExactEffRes>(g);
    case ErBackend::kRandomProjection: {
      RandomProjectionOptions rp;
      rp.auto_scale = opts.projection_scale;
      rp.seed = block_stream_seed(opts.seed, kEngineStreamTag, block);
      // Row solves chunk across the same pool as the block dispatch; when
      // this block already runs on a worker the rows fall back inline.
      rp.pool = pool;
      return std::make_unique<RandomProjectionEffRes>(g, rp);
    }
    case ErBackend::kApproxChol: {
      ApproxCholOptions ac;
      ac.droptol = opts.droptol;
      ac.epsilon = opts.epsilon;
      return std::make_unique<ApproxCholEffRes>(g, ac);
    }
  }
  throw std::logic_error("make_engine: unknown backend");
}

}  // namespace

BlockStructure build_block_structure(const ConductanceNetwork& input,
                                     const std::vector<char>& is_port,
                                     const ReductionOptions& opts,
                                     ThreadPool* pool) {
  const index_t n = input.num_nodes();
  index_t num_ports = 0;
  for (char p : is_port)
    if (p) ++num_ports;

  BlockStructure st;
  PartitionOptions popts;
  popts.num_parts = opts.num_blocks > 0
                        ? opts.num_blocks
                        : std::max<index_t>(1, num_ports / 50);
  popts.seed = opts.seed;
  const PartitionResult part = partition_graph(input.graph, popts, pool);
  st.num_blocks = popts.num_parts;
  st.block_of = part.part;

  st.is_interface.assign(static_cast<std::size_t>(n), 0);
  for (const auto& e : input.graph.edges()) {
    if (st.block_of[static_cast<std::size_t>(e.u)] !=
        st.block_of[static_cast<std::size_t>(e.v)]) {
      st.is_interface[static_cast<std::size_t>(e.u)] = 1;
      st.is_interface[static_cast<std::size_t>(e.v)] = 1;
      st.cut_edges.push_back(e);
    }
  }

  st.block_nodes.assign(static_cast<std::size_t>(st.num_blocks), {});
  for (index_t v = 0; v < n; ++v)
    st.block_nodes[static_cast<std::size_t>(
                       st.block_of[static_cast<std::size_t>(v)])]
        .push_back(v);
  st.block_edges.assign(static_cast<std::size_t>(st.num_blocks), {});
  for (const auto& e : input.graph.edges())
    if (st.block_of[static_cast<std::size_t>(e.u)] ==
        st.block_of[static_cast<std::size_t>(e.v)])
      st.block_edges[static_cast<std::size_t>(
                         st.block_of[static_cast<std::size_t>(e.u)])]
          .push_back(e);
  return st;
}

BlockReduced reduce_block(const ConductanceNetwork& input,
                          const std::vector<char>& is_port,
                          const BlockStructure& structure, index_t block,
                          const ReductionOptions& opts, ThreadPool* pool) {
  const index_t n = input.num_nodes();
  const auto& nodes = structure.block_nodes[static_cast<std::size_t>(block)];
  BlockReduced out;
  if (nodes.empty()) return out;
  const auto nb = static_cast<index_t>(nodes.size());

  // Local ids within the block.
  std::vector<index_t> local_of(static_cast<std::size_t>(n), -1);
  for (index_t l = 0; l < nb; ++l)
    local_of[static_cast<std::size_t>(nodes[static_cast<std::size_t>(l)])] = l;

  // Local system matrix: internal edges + shunts.
  TripletMatrix t(nb, nb);
  for (const auto& e : structure.block_edges[static_cast<std::size_t>(block)])
    t.stamp_conductance(local_of[static_cast<std::size_t>(e.u)],
                        local_of[static_cast<std::size_t>(e.v)], e.weight);
  for (index_t l = 0; l < nb; ++l) {
    const real_t s =
        input.shunts[static_cast<std::size_t>(nodes[static_cast<std::size_t>(l)])];
    if (s != 0.0) t.add(l, l, s);
  }
  const CscMatrix a_b = CscMatrix::from_triplets(t);

  // Keep ports and interfaces; eliminate non-port interiors.
  std::vector<index_t> keep_local, elim_local;
  for (index_t l = 0; l < nb; ++l) {
    const index_t v = nodes[static_cast<std::size_t>(l)];
    if (is_port[static_cast<std::size_t>(v)] ||
        structure.is_interface[static_cast<std::size_t>(v)])
      keep_local.push_back(l);
    else
      elim_local.push_back(l);
  }
  if (keep_local.empty()) return out;  // floating block: drop entirely

  Timer phase;
  const SchurResult schur = [&] {
    OBS_SPAN("schur", block);
    return schur_complement(a_b, keep_local, elim_local);
  }();
  out.schur_seconds = phase.seconds();

  const ConductanceNetwork net_b = network_from_matrix(schur.matrix);
  const auto ns = static_cast<index_t>(keep_local.size());
  out.kept_orig.reserve(static_cast<std::size_t>(ns));
  for (index_t s = 0; s < ns; ++s)
    out.kept_orig.push_back(
        nodes[static_cast<std::size_t>(keep_local[static_cast<std::size_t>(s)])]);

  // Effective resistances of the reduced block's edges (step 3), as one
  // batched query so the engine can chunk it across the pool.
  phase.reset();
  std::vector<real_t> edge_er(net_b.graph.num_edges(), 0.0);
  std::unique_ptr<EffResEngine> engine;
  if (net_b.graph.num_edges() > 0) {
    OBS_SPAN("er", block);
    engine = make_engine(net_b.graph, opts, block, pool);
    edge_er = engine->resistances(all_edge_queries(net_b.graph), pool);
  }
  out.er_seconds = phase.seconds();

  // Merge non-port nodes, then sparsify (step 4). The span runs to the end
  // of the function, so it also covers the merged-ER batch and the shunt
  // fold — the whole post-ER tail of the block.
  phase.reset();
  OBS_SPAN("sparsify", block);
  std::vector<char> mergeable(static_cast<std::size_t>(ns), 0);
  for (index_t s = 0; s < ns; ++s)
    mergeable[static_cast<std::size_t>(s)] =
        is_port[static_cast<std::size_t>(out.kept_orig[static_cast<std::size_t>(s)])]
            ? 0
            : 1;
  MergeOptions mo;
  mo.relative_threshold = opts.merge_threshold;
  const MergeResult merge =
      merge_by_effective_resistance(net_b.graph, edge_er, mergeable, mo);
  out.merge_map = merge.node_map;
  out.merged_count = merge.merged_count;

  // Representative S-index per merged id for post-merge ER queries.
  std::vector<index_t> rep_s(static_cast<std::size_t>(merge.merged_count), -1);
  for (index_t s = 0; s < ns; ++s) {
    const index_t mid = merge.node_map[static_cast<std::size_t>(s)];
    if (rep_s[static_cast<std::size_t>(mid)] == -1)
      rep_s[static_cast<std::size_t>(mid)] = s;
  }
  std::vector<real_t> merged_er(merge.merged.num_edges(), 0.0);
  if (engine && merge.merged.num_edges() > 0) {
    std::vector<ResistanceQuery> merged_queries;
    merged_queries.reserve(merge.merged.num_edges());
    for (const Edge& ed : merge.merged.edges())
      merged_queries.emplace_back(rep_s[static_cast<std::size_t>(ed.u)],
                                  rep_s[static_cast<std::size_t>(ed.v)]);
    merged_er = engine->resistances(merged_queries, pool);
  }

  SparsifyOptions so;
  so.quality = opts.sparsify_quality;
  so.seed = block_stream_seed(opts.seed, kSparsifyStreamTag, block);
  out.sparse_graph =
      sparsify_by_effective_resistance(merge.merged, merged_er, so);
  out.sparsify_seconds = phase.seconds();

  // Shunts summed into merged representatives.
  out.shunts.assign(static_cast<std::size_t>(merge.merged_count), 0.0);
  for (index_t s = 0; s < ns; ++s)
    out.shunts[static_cast<std::size_t>(
        merge.node_map[static_cast<std::size_t>(s)])] +=
        net_b.shunts[static_cast<std::size_t>(s)];
  return out;
}

ReducedModel stitch_blocks(const ConductanceNetwork& input,
                           const BlockStructure& structure,
                           const std::vector<BlockReduced>& blocks,
                           ThreadPool* pool) {
  Timer stitch_timer;
  OBS_SPAN("stitch");
  const index_t n = input.num_nodes();
  const index_t nb = structure.num_blocks;
  ReducedModel out;
  out.stats.original_nodes = n;
  out.stats.original_edges = input.graph.num_edges();
  out.stats.blocks = nb;
  out.node_map.assign(static_cast<std::size_t>(n), -1);
  out.block_of = structure.block_of;
  out.block_kept.assign(static_cast<std::size_t>(nb), {});

  // Pass 1 (serial): prefix sums fix each block's global node base and its
  // slice of the edge array; per-block phase timings fold here in fixed
  // block order (they are CPU-second aggregates — see ReductionStats).
  std::vector<index_t> node_base(static_cast<std::size_t>(nb) + 1, 0);
  std::vector<std::size_t> edge_base(static_cast<std::size_t>(nb) + 1, 0);
  for (index_t b = 0; b < nb; ++b) {
    const BlockReduced& blk = blocks[static_cast<std::size_t>(b)];
    node_base[static_cast<std::size_t>(b) + 1] =
        node_base[static_cast<std::size_t>(b)] + blk.merged_count;
    edge_base[static_cast<std::size_t>(b) + 1] =
        edge_base[static_cast<std::size_t>(b)] +
        (blk.merged_count > 0 ? blk.sparse_graph.num_edges() : 0);
    out.stats.schur_cpu_seconds += blk.schur_seconds;
    out.stats.er_cpu_seconds += blk.er_seconds;
    out.stats.sparsify_cpu_seconds += blk.sparsify_seconds;
  }
  const index_t next_global = node_base[static_cast<std::size_t>(nb)];

  std::vector<Edge> reduced_edges(edge_base[static_cast<std::size_t>(nb)]);
  std::vector<real_t> reduced_shunts(static_cast<std::size_t>(next_global),
                                     0.0);
  out.representative.assign(static_cast<std::size_t>(next_global), -1);

  // Pass 2 (parallel): every block writes only its own node range
  // [node_base[b], node_base[b+1]), its own edge slice, and the node_map
  // entries of its own members — all disjoint across blocks, so the result
  // is identical at any thread count.
  parallel_for(pool, 0, nb, 1, [&](index_t lo, index_t hi) {
    for (index_t b = lo; b < hi; ++b) {
      const BlockReduced& blk = blocks[static_cast<std::size_t>(b)];
      if (blk.merged_count == 0) continue;
      const index_t base = node_base[static_cast<std::size_t>(b)];

      for (std::size_t s = 0; s < blk.kept_orig.size(); ++s) {
        const index_t v = blk.kept_orig[s];
        const index_t gid = base + blk.merge_map[s];
        out.node_map[static_cast<std::size_t>(v)] = gid;
        if (out.representative[static_cast<std::size_t>(gid)] == -1)
          out.representative[static_cast<std::size_t>(gid)] = v;
      }
      auto& kept = out.block_kept[static_cast<std::size_t>(b)];
      kept.reserve(static_cast<std::size_t>(blk.merged_count));
      for (index_t m = 0; m < blk.merged_count; ++m) {
        reduced_shunts[static_cast<std::size_t>(base + m)] =
            blk.shunts[static_cast<std::size_t>(m)];
        kept.push_back(base + m);
      }
      const std::size_t ebase = edge_base[static_cast<std::size_t>(b)];
      const auto& bedges = blk.sparse_graph.edges();
      for (std::size_t j = 0; j < bedges.size(); ++j)
        reduced_edges[ebase + j] = {base + bedges[j].u, base + bedges[j].v,
                                    bedges[j].weight};
    }
  });

  // Serial tail: cut edges need the completed node_map, and the coalesce
  // keeps its fixed, thread-count-independent edge order.
  for (const auto& e : structure.cut_edges) {
    const index_t gu = out.node_map[static_cast<std::size_t>(e.u)];
    const index_t gv = out.node_map[static_cast<std::size_t>(e.v)];
    if (gu >= 0 && gv >= 0 && gu != gv)
      reduced_edges.push_back({gu, gv, e.weight});
  }

  Graph rg(next_global);
  rg.reserve_edges(reduced_edges.size());
  for (const auto& e : reduced_edges) rg.add_edge(e.u, e.v, e.weight);
  out.network.graph = rg.coalesce_parallel_edges();
  out.network.shunts = std::move(reduced_shunts);
  out.stats.reduced_nodes = next_global;
  out.stats.reduced_edges = out.network.graph.num_edges();
  out.stats.stitch_seconds = stitch_timer.seconds();
  return out;
}

ReducedModel stitch_blocks_update(const ConductanceNetwork& input,
                                  const BlockStructure& structure,
                                  const std::vector<BlockReduced>& blocks,
                                  const ReducedModel& previous,
                                  const std::vector<index_t>& dirty_blocks,
                                  ThreadPool* pool) {
  Timer stitch_timer;
  // Distinct stage name so the copy-on-write path and the full-stitch
  // fallback it may delegate to stay separable in the span aggregates.
  OBS_SPAN("stitch_update");
  const index_t n = input.num_nodes();
  const index_t nb = structure.num_blocks;

  // New layout (pass 1 of stitch_blocks).
  std::vector<index_t> node_base(static_cast<std::size_t>(nb) + 1, 0);
  std::vector<std::size_t> edge_base(static_cast<std::size_t>(nb) + 1, 0);
  for (index_t b = 0; b < nb; ++b) {
    const BlockReduced& blk = blocks[static_cast<std::size_t>(b)];
    node_base[static_cast<std::size_t>(b) + 1] =
        node_base[static_cast<std::size_t>(b)] + blk.merged_count;
    edge_base[static_cast<std::size_t>(b) + 1] =
        edge_base[static_cast<std::size_t>(b)] +
        (blk.merged_count > 0 ? blk.sparse_graph.num_edges() : 0);
  }
  const index_t next_global = node_base[static_cast<std::size_t>(nb)];

  // Carrying slices over is only sound while every block keeps its node
  // range: a merged_count change in any dirty block shifts every later
  // block's base and renumbers clean blocks' nodes.
  bool layout_stable =
      previous.node_map.size() == static_cast<std::size_t>(n) &&
      previous.representative.size() ==
          static_cast<std::size_t>(next_global) &&
      previous.network.shunts.size() ==
          static_cast<std::size_t>(next_global) &&
      previous.block_kept.size() == static_cast<std::size_t>(nb) &&
      previous.block_of == structure.block_of;
  for (index_t b = 0; layout_stable && b < nb; ++b) {
    const auto& kept = previous.block_kept[static_cast<std::size_t>(b)];
    layout_stable =
        static_cast<index_t>(kept.size()) ==
            blocks[static_cast<std::size_t>(b)].merged_count &&
        (kept.empty() ||
         kept.front() == node_base[static_cast<std::size_t>(b)]);
  }
  if (!layout_stable) return stitch_blocks(input, structure, blocks, pool);

  ReducedModel out;
  out.stats.original_nodes = n;
  out.stats.original_edges = input.graph.num_edges();
  out.stats.blocks = nb;
  for (index_t b = 0; b < nb; ++b) {
    const BlockReduced& blk = blocks[static_cast<std::size_t>(b)];
    out.stats.schur_cpu_seconds += blk.schur_seconds;
    out.stats.er_cpu_seconds += blk.er_seconds;
    out.stats.sparsify_cpu_seconds += blk.sparsify_seconds;
  }
  out.stats.stitch_reused_blocks =
      nb - static_cast<index_t>(dirty_blocks.size());

  // Node side: carry the previous version's arrays over wholesale (one
  // contiguous copy each, never a per-node scatter) and rewrite only the
  // dirty blocks' slices — disjoint per block, so the rewrite parallelizes.
  out.node_map = previous.node_map;
  out.representative = previous.representative;
  out.block_of = previous.block_of;
  out.block_kept = previous.block_kept;
  out.network.shunts = previous.network.shunts;
  parallel_for(
      pool, 0, static_cast<index_t>(dirty_blocks.size()), 1,
      [&](index_t lo, index_t hi) {
        for (index_t i = lo; i < hi; ++i) {
          const index_t b = dirty_blocks[static_cast<std::size_t>(i)];
          const BlockReduced& blk = blocks[static_cast<std::size_t>(b)];
          const index_t base = node_base[static_cast<std::size_t>(b)];
          // Reset the block's members (a re-merge can change which nodes
          // survive), then replay exactly the writes of the full stitch.
          for (const index_t v :
               structure.block_nodes[static_cast<std::size_t>(b)])
            out.node_map[static_cast<std::size_t>(v)] = -1;
          for (index_t m = 0; m < blk.merged_count; ++m) {
            out.representative[static_cast<std::size_t>(base + m)] = -1;
            out.network.shunts[static_cast<std::size_t>(base + m)] =
                blk.shunts[static_cast<std::size_t>(m)];
          }
          for (std::size_t s = 0; s < blk.kept_orig.size(); ++s) {
            const index_t v = blk.kept_orig[s];
            const index_t gid = base + blk.merge_map[s];
            out.node_map[static_cast<std::size_t>(v)] = gid;
            if (out.representative[static_cast<std::size_t>(gid)] == -1)
              out.representative[static_cast<std::size_t>(gid)] = v;
          }
          // block_kept[b] is the contiguous range [base, base + count),
          // unchanged by the layout check — nothing to rewrite.
        }
      });

  // Edge side: rebuilt in full — parallel-edge coalescing and the cut-edge
  // tail are global — with the same two passes as stitch_blocks.
  std::vector<Edge> reduced_edges(edge_base[static_cast<std::size_t>(nb)]);
  parallel_for(pool, 0, nb, 1, [&](index_t lo, index_t hi) {
    for (index_t b = lo; b < hi; ++b) {
      const BlockReduced& blk = blocks[static_cast<std::size_t>(b)];
      if (blk.merged_count == 0) continue;
      const index_t base = node_base[static_cast<std::size_t>(b)];
      const std::size_t ebase = edge_base[static_cast<std::size_t>(b)];
      const auto& bedges = blk.sparse_graph.edges();
      for (std::size_t j = 0; j < bedges.size(); ++j)
        reduced_edges[ebase + j] = {base + bedges[j].u, base + bedges[j].v,
                                    bedges[j].weight};
    }
  });
  for (const auto& e : structure.cut_edges) {
    const index_t gu = out.node_map[static_cast<std::size_t>(e.u)];
    const index_t gv = out.node_map[static_cast<std::size_t>(e.v)];
    if (gu >= 0 && gv >= 0 && gu != gv)
      reduced_edges.push_back({gu, gv, e.weight});
  }
  Graph rg(next_global);
  rg.reserve_edges(reduced_edges.size());
  for (const auto& e : reduced_edges) rg.add_edge(e.u, e.v, e.weight);
  out.network.graph = rg.coalesce_parallel_edges();
  out.stats.reduced_nodes = next_global;
  out.stats.reduced_edges = out.network.graph.num_edges();
  out.stats.stitch_seconds = stitch_timer.seconds();
  return out;
}

std::size_t model_footprint_bytes(const ReducedModel& model) {
  const Graph& g = model.network.graph;
  // The CSR adjacency is sized analytically (ptr: n+1; neighbor / weight /
  // edge-id slots: 2 per edge) rather than through the accessors, which
  // would force the lazy cache to materialize just to be measured.
  const std::size_t adj_ptr = static_cast<std::size_t>(g.num_nodes()) + 1;
  const std::size_t adj_slots = 2 * g.num_edges();
  std::size_t bytes = g.edges().size() * sizeof(Edge) +
                      adj_ptr * sizeof(offset_t) +
                      adj_slots * (2 * sizeof(index_t) + sizeof(real_t)) +
                      model.network.shunts.size() * sizeof(real_t) +
                      model.node_map.size() * sizeof(index_t) +
                      model.representative.size() * sizeof(index_t) +
                      model.block_of.size() * sizeof(index_t);
  for (const auto& kept : model.block_kept)
    bytes += kept.size() * sizeof(index_t);
  return bytes;
}

ReductionArtifacts reduce_network_artifacts(const ConductanceNetwork& input,
                                            const std::vector<char>& is_port,
                                            const ReductionOptions& opts) {
  const index_t n = input.num_nodes();
  if (is_port.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("reduce_network: is_port size mismatch");

  Timer total_timer;
  // The pool is shared by every stage: partitioner levels, block dispatch,
  // batched ER queries / RP row solves inside blocks, and the stitch.
  std::unique_ptr<ThreadPool> pool;
  if (resolve_num_threads(opts.parallel.num_threads) > 1)
    pool = std::make_unique<ThreadPool>(opts.parallel.num_threads);

  ReductionArtifacts out;
  Timer phase;
  {
    OBS_SPAN("partition");
    out.structure = build_block_structure(input, is_port, opts, pool.get());
  }
  const double partition_seconds = phase.seconds();

  // Steps 2-4 are independent per block; dispatch them across the pool.
  // Each task writes only its own slot, and every random stream is derived
  // from (seed, block), so the result is identical at any thread count.
  phase.reset();
  out.blocks.assign(static_cast<std::size_t>(out.structure.num_blocks), {});
  {
    OBS_SPAN("reduce");
    parallel_for(pool.get(), 0, out.structure.num_blocks, 1,
                 [&](index_t lo, index_t hi) {
                   for (index_t b = lo; b < hi; ++b)
                     out.blocks[static_cast<std::size_t>(b)] = reduce_block(
                         input, is_port, out.structure, b, opts, pool.get());
                 });
  }
  const double reduce_seconds = phase.seconds();

  ReducedModel model = stitch_blocks(input, out.structure, out.blocks,
                                     pool.get());
  model.stats.partition_seconds = partition_seconds;
  model.stats.reduce_seconds = reduce_seconds;
  model.stats.total_seconds = total_timer.seconds();
  // Freeze the stitched model behind shared ownership: from here on it is
  // immutable, so serving snapshots alias it instead of copying. Warm the
  // graph's lazy CSR cache first — a frozen model may be read concurrently,
  // and the cache build mutates `mutable` state.
  (void)model.network.graph.adjacency_ptr();
  out.model = std::make_shared<const ReducedModel>(std::move(model));
  return out;
}

ReducedModel reduce_network(const ConductanceNetwork& input,
                            const std::vector<char>& is_port,
                            const ReductionOptions& opts) {
  // One-shot convenience wrapper: the copy out of the (locally owned,
  // refcount-1) shared model is noise next to the reduction itself.
  return *reduce_network_artifacts(input, is_port, opts).model;
}

namespace {

/// Bit-exact graph equality (node count, edge order, endpoints, weights) —
/// the edge-level criterion shared by both determinism oracles below.
bool graphs_identical(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges())
    return false;
  for (std::size_t e = 0; e < a.num_edges(); ++e) {
    const Edge& ea = a.edges()[e];
    const Edge& eb = b.edges()[e];
    if (ea.u != eb.u || ea.v != eb.v || ea.weight != eb.weight) return false;
  }
  return true;
}

}  // namespace

bool blocks_identical(const BlockReduced& a, const BlockReduced& b) {
  if (a.kept_orig != b.kept_orig || a.merge_map != b.merge_map ||
      a.merged_count != b.merged_count || a.shunts != b.shunts)
    return false;
  return graphs_identical(a.sparse_graph, b.sparse_graph);
}

bool models_identical(const ReducedModel& a, const ReducedModel& b) {
  if (a.node_map != b.node_map || a.representative != b.representative ||
      a.block_of != b.block_of || a.block_kept != b.block_kept)
    return false;
  return graphs_identical(a.network.graph, b.network.graph) &&
         a.network.shunts == b.network.shunts;
}

}  // namespace er
