#include "reduction/port_merge.hpp"

#include <numeric>
#include <stdexcept>

namespace er {

MergeResult merge_by_effective_resistance(const Graph& g,
                                          const std::vector<real_t>& edge_er,
                                          const std::vector<char>& mergeable,
                                          const MergeOptions& opts) {
  const index_t n = g.num_nodes();
  if (edge_er.size() != g.num_edges() ||
      mergeable.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("merge_by_effective_resistance: size mismatch");

  MergeResult out;
  // Union-find; roots biased towards non-mergeable nodes so that ports
  // always represent their merged group.
  std::vector<index_t> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](index_t x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };

  if (opts.relative_threshold > 0.0 && g.num_edges() > 0) {
    real_t mean_er = 0.0;
    for (real_t r : edge_er) mean_er += r;
    mean_er /= static_cast<real_t>(edge_er.size());
    const real_t cut = opts.relative_threshold * mean_er;

    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      if (edge_er[e] >= cut) continue;
      const Edge& ed = g.edges()[e];
      index_t ru = find(ed.u);
      index_t rv = find(ed.v);
      if (ru == rv) continue;
      const bool u_fixed = !mergeable[static_cast<std::size_t>(ru)];
      const bool v_fixed = !mergeable[static_cast<std::size_t>(rv)];
      if (u_fixed && v_fixed) continue;  // never merge two ports
      // Absorb the mergeable root into the fixed one (or either if both
      // mergeable).
      if (u_fixed)
        parent[static_cast<std::size_t>(rv)] = ru;
      else
        parent[static_cast<std::size_t>(ru)] = rv;
    }
  }

  // Compact representative ids.
  out.node_map.assign(static_cast<std::size_t>(n), -1);
  index_t next_id = 0;
  for (index_t v = 0; v < n; ++v) {
    const index_t r = find(v);
    if (out.node_map[static_cast<std::size_t>(r)] == -1)
      out.node_map[static_cast<std::size_t>(r)] = next_id++;
    out.node_map[static_cast<std::size_t>(v)] =
        out.node_map[static_cast<std::size_t>(r)];
  }
  out.merged_count = next_id;

  Graph merged(next_id);
  for (const auto& e : g.edges()) {
    const index_t mu = out.node_map[static_cast<std::size_t>(e.u)];
    const index_t mv = out.node_map[static_cast<std::size_t>(e.v)];
    if (mu != mv) merged.add_edge(mu, mv, e.weight);
  }
  out.merged = merged.coalesce_parallel_edges();
  return out;
}

}  // namespace er
