// Synthetic graph generators — substitutes for the paper's benchmark suite.
//
// Table I of the paper uses SNAP social networks, finite-element meshes and
// circuit matrices. Those artifacts are not redistributable here, so each
// family is replaced by a generator that reproduces its structural regime
// (degree distribution, mesh-likeness, fill-in behaviour under elimination):
//   * social / co-authorship  -> Barabási–Albert, R-MAT
//   * finite-element meshes   -> 3D grids, random geometric graphs
//   * circuit / power grids   -> 2D grids, multilayer meshes
// See DESIGN.md §2 for the substitution rationale.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace er {

/// Weight assignment policy for generators.
enum class WeightKind {
  kUnit,          // all weights 1
  kUniform,       // uniform in [0.5, 2)
  kLogUniform,    // 10^uniform(-1, 1): two decades of spread
};

real_t draw_weight(WeightKind kind, Rng& rng);

/// nx-by-ny 4-neighbour grid. Mesh-like; substitutes 2D circuit matrices
/// (G2_circuit / G3_circuit / NACA0015 regimes).
Graph grid_2d(index_t nx, index_t ny, WeightKind kind = WeightKind::kUnit,
              std::uint64_t seed = 1);

/// nx-by-ny-by-nz 6-neighbour grid. Substitutes 3D FE meshes
/// (fe_tooth / fe_rotor regimes).
Graph grid_3d(index_t nx, index_t ny, index_t nz,
              WeightKind kind = WeightKind::kUnit, std::uint64_t seed = 1);

/// Random geometric graph on the unit square: n points, edges within
/// `radius`, weight = 1/distance (capped). Mesh-like with irregular degrees.
/// Connectivity is enforced by linking consecutive components.
Graph random_geometric(index_t n, real_t radius,
                       WeightKind kind = WeightKind::kUnit,
                       std::uint64_t seed = 1);

/// Barabási–Albert preferential attachment: heavy-tailed degrees,
/// substitutes co-authorship graphs. Each new node attaches `m_attach`
/// edges. Connected by construction.
Graph barabasi_albert(index_t n, index_t m_attach,
                      WeightKind kind = WeightKind::kUnit,
                      std::uint64_t seed = 1);

/// R-MAT generator (Chakrabarti et al.): power-law + community structure,
/// substitutes large social networks (com-Youtube regime).
/// Generates ~m distinct edges on 2^scale nodes; isolated nodes are
/// stitched onto the graph so the result is connected.
Graph rmat(index_t scale, std::size_t m, double a = 0.57, double b = 0.19,
           double c = 0.19, WeightKind kind = WeightKind::kUnit,
           std::uint64_t seed = 1);

/// Watts–Strogatz small world: ring of n nodes, k nearest neighbours,
/// rewiring probability beta.
Graph watts_strogatz(index_t n, index_t k, double beta,
                     WeightKind kind = WeightKind::kUnit,
                     std::uint64_t seed = 1);

/// Multilayer power-grid-like mesh: `layers` stacked 2D grids with
/// progressively coarser pitch, connected by vias. Substitutes the IBM/THU
/// power-grid benchmark topology (ibmpg / thupg regimes) when only the graph
/// (not the electrical netlist) is needed.
Graph multilayer_mesh(index_t nx, index_t ny, index_t layers,
                      WeightKind kind = WeightKind::kLogUniform,
                      std::uint64_t seed = 1);

/// Connect a possibly-disconnected graph by adding one unit edge between
/// consecutive components (representatives chosen deterministically).
void ensure_connected(Graph& g);

/// Erdős–Rényi G(n, m): m distinct uniform random edges, then connected.
Graph erdos_renyi(index_t n, std::size_t m, WeightKind kind = WeightKind::kUnit,
                  std::uint64_t seed = 1);

}  // namespace er
