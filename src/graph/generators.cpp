#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "graph/components.hpp"

namespace er {

namespace {

/// Pack an undirected pair into a 64-bit key for dedup sets.
std::uint64_t edge_key(index_t u, index_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

}  // namespace

real_t draw_weight(WeightKind kind, Rng& rng) {
  switch (kind) {
    case WeightKind::kUnit:
      return 1.0;
    case WeightKind::kUniform:
      return rng.uniform(0.5, 2.0);
    case WeightKind::kLogUniform:
      return std::pow(10.0, rng.uniform(-1.0, 1.0));
  }
  return 1.0;
}

Graph grid_2d(index_t nx, index_t ny, WeightKind kind, std::uint64_t seed) {
  if (nx <= 0 || ny <= 0) throw std::invalid_argument("grid_2d: empty grid");
  Rng rng(seed);
  Graph g(nx * ny);
  g.reserve_edges(static_cast<std::size_t>(nx) * ny * 2);
  auto id = [nx](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) g.add_edge(id(x, y), id(x + 1, y), draw_weight(kind, rng));
      if (y + 1 < ny) g.add_edge(id(x, y), id(x, y + 1), draw_weight(kind, rng));
    }
  }
  return g;
}

Graph grid_3d(index_t nx, index_t ny, index_t nz, WeightKind kind,
              std::uint64_t seed) {
  if (nx <= 0 || ny <= 0 || nz <= 0)
    throw std::invalid_argument("grid_3d: empty grid");
  Rng rng(seed);
  Graph g(nx * ny * nz);
  auto id = [nx, ny](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  for (index_t z = 0; z < nz; ++z)
    for (index_t y = 0; y < ny; ++y)
      for (index_t x = 0; x < nx; ++x) {
        if (x + 1 < nx)
          g.add_edge(id(x, y, z), id(x + 1, y, z), draw_weight(kind, rng));
        if (y + 1 < ny)
          g.add_edge(id(x, y, z), id(x, y + 1, z), draw_weight(kind, rng));
        if (z + 1 < nz)
          g.add_edge(id(x, y, z), id(x, y, z + 1), draw_weight(kind, rng));
      }
  return g;
}

Graph random_geometric(index_t n, real_t radius, WeightKind kind,
                       std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("random_geometric: n <= 0");
  Rng rng(seed);
  std::vector<real_t> px(static_cast<std::size_t>(n)),
      py(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    px[static_cast<std::size_t>(i)] = rng.uniform();
    py[static_cast<std::size_t>(i)] = rng.uniform();
  }
  // Uniform cell grid of pitch `radius` for neighbour search.
  const auto cells = static_cast<index_t>(std::max(1.0, std::floor(1.0 / radius)));
  std::vector<std::vector<index_t>> bucket(
      static_cast<std::size_t>(cells) * static_cast<std::size_t>(cells));
  auto cell_of = [&](real_t x) {
    auto c = static_cast<index_t>(x * cells);
    return std::min(c, static_cast<index_t>(cells - 1));
  };
  for (index_t i = 0; i < n; ++i)
    bucket[static_cast<std::size_t>(cell_of(py[static_cast<std::size_t>(i)])) * cells +
           cell_of(px[static_cast<std::size_t>(i)])]
        .push_back(i);

  Graph g(n);
  const real_t r2 = radius * radius;
  for (index_t i = 0; i < n; ++i) {
    const index_t cx = cell_of(px[static_cast<std::size_t>(i)]);
    const index_t cy = cell_of(py[static_cast<std::size_t>(i)]);
    for (index_t dy = -1; dy <= 1; ++dy) {
      for (index_t dx = -1; dx <= 1; ++dx) {
        const index_t bx = cx + dx, by = cy + dy;
        if (bx < 0 || bx >= cells || by < 0 || by >= cells) continue;
        for (index_t j :
             bucket[static_cast<std::size_t>(by) * cells + bx]) {
          if (j <= i) continue;
          const real_t ddx = px[static_cast<std::size_t>(i)] -
                             px[static_cast<std::size_t>(j)];
          const real_t ddy = py[static_cast<std::size_t>(i)] -
                             py[static_cast<std::size_t>(j)];
          const real_t d2 = ddx * ddx + ddy * ddy;
          if (d2 <= r2) {
            real_t w = kind == WeightKind::kUnit
                           ? std::min(real_t{10.0},
                                      1.0 / std::max(std::sqrt(d2), real_t{0.1} * radius))
                           : draw_weight(kind, rng);
            g.add_edge(i, j, w);
          }
        }
      }
    }
  }
  ensure_connected(g);
  return g;
}

Graph barabasi_albert(index_t n, index_t m_attach, WeightKind kind,
                      std::uint64_t seed) {
  if (n <= m_attach || m_attach <= 0)
    throw std::invalid_argument("barabasi_albert: need n > m_attach > 0");
  Rng rng(seed);
  Graph g(n);
  g.reserve_edges(static_cast<std::size_t>(n) * m_attach);

  // Repeated-targets list: preferential attachment by sampling uniformly
  // from the endpoint multiset.
  std::vector<index_t> targets;
  targets.reserve(2 * static_cast<std::size_t>(n) * m_attach);

  // Seed clique on m_attach + 1 nodes.
  for (index_t u = 0; u <= m_attach; ++u)
    for (index_t v = u + 1; v <= m_attach; ++v) {
      g.add_edge(u, v, draw_weight(kind, rng));
      targets.push_back(u);
      targets.push_back(v);
    }

  std::unordered_set<index_t> picked;
  for (index_t u = m_attach + 1; u < n; ++u) {
    picked.clear();
    while (static_cast<index_t>(picked.size()) < m_attach) {
      const index_t t = targets[static_cast<std::size_t>(
          rng.uniform_index(targets.size()))];
      picked.insert(t);
    }
    for (index_t v : picked) {
      g.add_edge(u, v, draw_weight(kind, rng));
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return g;
}

Graph rmat(index_t scale, std::size_t m, double a, double b, double c,
           WeightKind kind, std::uint64_t seed) {
  if (scale <= 0 || scale > 30) throw std::invalid_argument("rmat: bad scale");
  const double d = 1.0 - a - b - c;
  if (d < 0) throw std::invalid_argument("rmat: probabilities exceed 1");
  Rng rng(seed);
  const index_t n = index_t{1} << scale;
  Graph g(n);
  g.reserve_edges(m);

  std::unordered_set<std::uint64_t> seen;
  seen.reserve(2 * m);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 20 * m + 1000;
  while (g.num_edges() < m && attempts++ < max_attempts) {
    index_t u = 0, v = 0;
    for (index_t bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      index_t du = 0, dv = 0;
      if (r < a) {
      } else if (r < a + b) {
        dv = 1;
      } else if (r < a + b + c) {
        du = 1;
      } else {
        du = 1;
        dv = 1;
      }
      u = (u << 1) | du;
      v = (v << 1) | dv;
    }
    if (u == v) continue;
    const std::uint64_t key = edge_key(u, v);
    if (!seen.insert(key).second) continue;
    g.add_edge(u, v, draw_weight(kind, rng));
  }
  ensure_connected(g);
  return g;
}

Graph watts_strogatz(index_t n, index_t k, double beta, WeightKind kind,
                     std::uint64_t seed) {
  if (n <= 2 * k || k <= 0)
    throw std::invalid_argument("watts_strogatz: need n > 2k > 0");
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  Graph g(n);
  for (index_t u = 0; u < n; ++u) {
    for (index_t j = 1; j <= k; ++j) {
      index_t v = (u + j) % n;
      if (rng.uniform() < beta) {
        // Rewire to a uniform random non-neighbour target.
        for (int tries = 0; tries < 32; ++tries) {
          const index_t cand = rng.uniform_int(n);
          if (cand != u && !seen.count(edge_key(u, cand))) {
            v = cand;
            break;
          }
        }
      }
      if (v == u || seen.count(edge_key(u, v))) continue;
      seen.insert(edge_key(u, v));
      g.add_edge(u, v, draw_weight(kind, rng));
    }
  }
  ensure_connected(g);
  return g;
}

Graph multilayer_mesh(index_t nx, index_t ny, index_t layers, WeightKind kind,
                      std::uint64_t seed) {
  if (layers <= 0) throw std::invalid_argument("multilayer_mesh: layers <= 0");
  Rng rng(seed);

  // Layer l is a grid with pitch 2^l: nodes at (x, y) where x % 2^l == 0.
  // Node ids are assigned layer by layer.
  std::vector<index_t> layer_nx(static_cast<std::size_t>(layers));
  std::vector<index_t> layer_ny(static_cast<std::size_t>(layers));
  std::vector<index_t> layer_base(static_cast<std::size_t>(layers));
  index_t total = 0;
  for (index_t l = 0; l < layers; ++l) {
    const index_t pitch = index_t{1} << l;
    layer_nx[static_cast<std::size_t>(l)] = (nx + pitch - 1) / pitch;
    layer_ny[static_cast<std::size_t>(l)] = (ny + pitch - 1) / pitch;
    layer_base[static_cast<std::size_t>(l)] = total;
    total += layer_nx[static_cast<std::size_t>(l)] *
             layer_ny[static_cast<std::size_t>(l)];
  }

  Graph g(total);
  auto id = [&](index_t l, index_t x, index_t y) {
    return layer_base[static_cast<std::size_t>(l)] +
           y * layer_nx[static_cast<std::size_t>(l)] + x;
  };

  for (index_t l = 0; l < layers; ++l) {
    const index_t lx = layer_nx[static_cast<std::size_t>(l)];
    const index_t ly = layer_ny[static_cast<std::size_t>(l)];
    // In-layer mesh; upper layers have lower sheet resistance (higher w).
    const real_t scale = std::pow(4.0, static_cast<real_t>(l));
    for (index_t y = 0; y < ly; ++y)
      for (index_t x = 0; x < lx; ++x) {
        if (x + 1 < lx)
          g.add_edge(id(l, x, y), id(l, x + 1, y),
                     scale * draw_weight(kind, rng));
        if (y + 1 < ly)
          g.add_edge(id(l, x, y), id(l, x, y + 1),
                     scale * draw_weight(kind, rng));
      }
    // Vias to layer above at every other node of the coarser layer.
    if (l + 1 < layers) {
      const index_t ux = layer_nx[static_cast<std::size_t>(l) + 1];
      const index_t uy = layer_ny[static_cast<std::size_t>(l) + 1];
      for (index_t y = 0; y < uy; ++y)
        for (index_t x = 0; x < ux; ++x) {
          const index_t fx = std::min<index_t>(x * 2, lx - 1);
          const index_t fy = std::min<index_t>(y * 2, ly - 1);
          g.add_edge(id(l, fx, fy), id(l + 1, x, y),
                     2.0 * scale * draw_weight(kind, rng));
        }
    }
  }
  return g;
}

void ensure_connected(Graph& g) {
  const Components comp = connected_components(g);
  if (comp.count <= 1) return;
  std::vector<index_t> rep(static_cast<std::size_t>(comp.count), -1);
  for (index_t v = 0; v < g.num_nodes(); ++v) {
    const index_t c = comp.label[static_cast<std::size_t>(v)];
    if (rep[static_cast<std::size_t>(c)] < 0) rep[static_cast<std::size_t>(c)] = v;
  }
  for (index_t c = 1; c < comp.count; ++c)
    g.add_edge(rep[0], rep[static_cast<std::size_t>(c)], 1.0);
}

Graph erdos_renyi(index_t n, std::size_t m, WeightKind kind,
                  std::uint64_t seed) {
  if (n <= 1) throw std::invalid_argument("erdos_renyi: n <= 1");
  Rng rng(seed);
  Graph g(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(2 * m);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 20 * m + 1000;
  while (g.num_edges() < m && attempts++ < max_attempts) {
    const index_t u = rng.uniform_int(n);
    const index_t v = rng.uniform_int(n);
    if (u == v) continue;
    if (!seen.insert(edge_key(u, v)).second) continue;
    g.add_edge(u, v, draw_weight(kind, rng));
  }
  ensure_connected(g);
  return g;
}

}  // namespace er
