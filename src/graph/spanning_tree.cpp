#include "graph/spanning_tree.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/components.hpp"
#include "graph/laplacian.hpp"
#include "sparse/dense.hpp"

namespace er {

std::vector<index_t> sample_uniform_spanning_tree(const Graph& g, Rng& rng) {
  const index_t n = g.num_nodes();
  if (n == 0) return {};
  if (!is_connected(g))
    throw std::invalid_argument("sample_uniform_spanning_tree: disconnected");

  const auto& ptr = g.adjacency_ptr();
  const auto& nbr = g.neighbors();
  const auto& wts = g.adjacency_weights();
  const auto& eids = g.adjacency_edge_ids();

  // Wilson's algorithm: root the tree at node 0, then for every node not
  // yet in the tree run a weighted loop-erased random walk until it hits
  // the tree.
  std::vector<char> in_tree(static_cast<std::size_t>(n), 0);
  // next[v] = adjacency slot taken when leaving v in the current walk
  // (records both the successor and the edge id).
  std::vector<offset_t> next_slot(static_cast<std::size_t>(n), -1);
  in_tree[0] = 1;

  std::vector<index_t> tree;
  tree.reserve(static_cast<std::size_t>(n) - 1);

  for (index_t start = 1; start < n; ++start) {
    if (in_tree[static_cast<std::size_t>(start)]) continue;
    // Random walk from start, remembering the last exit from each node
    // (this implicitly erases loops).
    index_t u = start;
    while (!in_tree[static_cast<std::size_t>(u)]) {
      const offset_t begin = ptr[static_cast<std::size_t>(u)];
      const offset_t end = ptr[static_cast<std::size_t>(u) + 1];
      if (begin == end)
        throw std::logic_error("sample_uniform_spanning_tree: dangling node");
      // Weighted neighbour choice.
      real_t total = 0.0;
      for (offset_t k = begin; k < end; ++k)
        total += wts[static_cast<std::size_t>(k)];
      real_t pick = rng.uniform() * total;
      offset_t chosen = end - 1;
      for (offset_t k = begin; k < end; ++k) {
        pick -= wts[static_cast<std::size_t>(k)];
        if (pick <= 0.0) {
          chosen = k;
          break;
        }
      }
      next_slot[static_cast<std::size_t>(u)] = chosen;
      u = nbr[static_cast<std::size_t>(chosen)];
    }
    // Retrace the loop-erased path and add it to the tree.
    u = start;
    while (!in_tree[static_cast<std::size_t>(u)]) {
      in_tree[static_cast<std::size_t>(u)] = 1;
      const offset_t slot = next_slot[static_cast<std::size_t>(u)];
      tree.push_back(eids[static_cast<std::size_t>(slot)]);
      u = nbr[static_cast<std::size_t>(slot)];
    }
  }
  return tree;
}

std::vector<real_t> estimate_spanning_edge_probabilities(const Graph& g,
                                                         std::size_t samples,
                                                         std::uint64_t seed) {
  std::vector<real_t> freq(g.num_edges(), 0.0);
  Rng rng(seed);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto tree = sample_uniform_spanning_tree(g, rng);
    for (index_t e : tree) freq[static_cast<std::size_t>(e)] += 1.0;
  }
  for (real_t& f : freq) f /= static_cast<real_t>(samples);
  return freq;
}

real_t count_spanning_trees(const Graph& g) {
  const index_t n = g.num_nodes();
  if (n <= 1) return 1.0;
  if (n > 500)
    throw std::invalid_argument("count_spanning_trees: graph too large");
  // Matrix-tree theorem: delete row/col 0 of the Laplacian, take det.
  const CscMatrix l = laplacian(g);
  const index_t m = n - 1;
  DenseMatrix a(m, m);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < m; ++j) a(i, j) = l.at(i + 1, j + 1);
  // Determinant via Cholesky: det = prod diag^2 (reduced Laplacian is SPD
  // for connected graphs).
  if (!a.cholesky_in_place()) return 0.0;  // disconnected
  real_t det = 1.0;
  for (index_t i = 0; i < m; ++i) det *= a(i, i) * a(i, i);
  return det;
}

}  // namespace er
