// Weighted undirected graph G = (V, E, w) — the paper's input object.
//
// Storage is an edge list plus a CSR-style adjacency built on demand.
// Self-loops are rejected (they do not affect effective resistances);
// parallel edges are allowed and behave as conductances in parallel.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace er {

/// One undirected edge with positive weight (conductance).
struct Edge {
  index_t u = 0;
  index_t v = 0;
  real_t weight = 1.0;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(index_t num_nodes) : num_nodes_(num_nodes) {}

  /// Add an undirected edge; weight must be > 0, u != v.
  void add_edge(index_t u, index_t v, real_t weight = 1.0);

  void reserve_edges(std::size_t m) { edges_.reserve(m); }

  [[nodiscard]] index_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Sum of all edge weights.
  [[nodiscard]] real_t total_weight() const;

  /// Weighted degree of each node (sum of incident edge weights).
  [[nodiscard]] std::vector<real_t> weighted_degrees() const;

  /// Merge parallel edges (summing weights); returns the simplified graph.
  [[nodiscard]] Graph coalesce_parallel_edges() const;

  /// CSR adjacency access. adjacency_ptr has num_nodes()+1 entries;
  /// neighbors/adj_weights/adj_edge_ids are parallel arrays of length
  /// 2*num_edges(). Built lazily; invalidated by add_edge.
  const std::vector<offset_t>& adjacency_ptr() const;
  const std::vector<index_t>& neighbors() const;
  const std::vector<real_t>& adjacency_weights() const;
  /// Edge-list index of each adjacency slot (for edge-centric algorithms).
  const std::vector<index_t>& adjacency_edge_ids() const;

  /// Plain (unweighted) degree.
  [[nodiscard]] index_t degree(index_t u) const;

 private:
  void build_adjacency() const;

  index_t num_nodes_ = 0;
  std::vector<Edge> edges_;

  // Lazy adjacency cache.
  mutable bool adj_valid_ = false;
  mutable std::vector<offset_t> adj_ptr_;
  mutable std::vector<index_t> adj_nbr_;
  mutable std::vector<real_t> adj_w_;
  mutable std::vector<index_t> adj_eid_;
};

}  // namespace er
