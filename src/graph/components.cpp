#include "graph/components.hpp"

#include <stdexcept>

namespace er {

Components connected_components(const Graph& g) {
  const index_t n = g.num_nodes();
  Components out;
  out.label.assign(static_cast<std::size_t>(n), -1);
  const auto& ptr = g.adjacency_ptr();
  const auto& nbr = g.neighbors();

  std::vector<index_t> stack;
  for (index_t s = 0; s < n; ++s) {
    if (out.label[static_cast<std::size_t>(s)] >= 0) continue;
    const index_t c = out.count++;
    stack.push_back(s);
    out.label[static_cast<std::size_t>(s)] = c;
    while (!stack.empty()) {
      const index_t u = stack.back();
      stack.pop_back();
      for (offset_t k = ptr[static_cast<std::size_t>(u)];
           k < ptr[static_cast<std::size_t>(u) + 1]; ++k) {
        const index_t v = nbr[static_cast<std::size_t>(k)];
        if (out.label[static_cast<std::size_t>(v)] < 0) {
          out.label[static_cast<std::size_t>(v)] = c;
          stack.push_back(v);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return false;
  return connected_components(g).count == 1;
}

BfsTree bfs(const Graph& g, index_t source) {
  const index_t n = g.num_nodes();
  if (source < 0 || source >= n)
    throw std::out_of_range("bfs: source out of range");
  BfsTree t;
  t.parent.assign(static_cast<std::size_t>(n), -2);
  t.level.assign(static_cast<std::size_t>(n), -1);
  t.order.reserve(static_cast<std::size_t>(n));

  const auto& ptr = g.adjacency_ptr();
  const auto& nbr = g.neighbors();

  t.parent[static_cast<std::size_t>(source)] = -1;
  t.level[static_cast<std::size_t>(source)] = 0;
  t.order.push_back(source);
  for (std::size_t head = 0; head < t.order.size(); ++head) {
    const index_t u = t.order[head];
    for (offset_t k = ptr[static_cast<std::size_t>(u)];
         k < ptr[static_cast<std::size_t>(u) + 1]; ++k) {
      const index_t v = nbr[static_cast<std::size_t>(k)];
      if (t.parent[static_cast<std::size_t>(v)] == -2) {
        t.parent[static_cast<std::size_t>(v)] = u;
        t.level[static_cast<std::size_t>(v)] =
            t.level[static_cast<std::size_t>(u)] + 1;
        t.order.push_back(v);
      }
    }
  }
  return t;
}

}  // namespace er
