// Uniform random spanning trees via Wilson's algorithm (loop-erased random
// walks). Effective resistances and spanning-tree statistics are two views
// of the same object: Pr[e in uniform spanning tree] = w_e * R(e), so tree
// sampling provides a Monte-Carlo validator for every ER engine, entirely
// independent of the linear-algebra stack.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace er {

/// Sample one spanning tree of a connected weighted graph uniformly at
/// random (weighted by tree weight: Pr[T] ∝ Π_{e∈T} w_e).
/// Returns edge ids (into g.edges()) of the n-1 tree edges.
std::vector<index_t> sample_uniform_spanning_tree(const Graph& g, Rng& rng);

/// Monte-Carlo estimate of Pr[e ∈ UST] per edge from `samples` trees.
std::vector<real_t> estimate_spanning_edge_probabilities(const Graph& g,
                                                         std::size_t samples,
                                                         std::uint64_t seed);

/// Number of spanning trees of a small graph via the matrix-tree theorem
/// (dense determinant of the reduced Laplacian; n must be modest).
real_t count_spanning_trees(const Graph& g);

}  // namespace er
