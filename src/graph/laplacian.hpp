// Laplacian and incidence-matrix assembly (paper Eq. (1)-(2)) plus the
// grounding transformation that makes the Laplacian SDD-nonsingular.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sparse/csc.hpp"
#include "util/types.hpp"

namespace er {

/// L_G = B^T W B: n-by-n singular Laplacian of the graph.
CscMatrix laplacian(const Graph& g);

/// Signed incidence matrix B (|E| x |V|): row e has +1 at the head (u) and
/// -1 at the tail (v) of edge e.
CscMatrix incidence(const Graph& g);

/// Diagonal weight matrix W (|E| x |E|).
CscMatrix edge_weight_matrix(const Graph& g);

/// Grounded Laplacian: L_G plus `ground_conductance` added to the diagonal
/// entry of one representative node per connected component (the paper's
/// §II-A trick). The result is symmetric positive definite, and — because a
/// single grounded node per component leaves balanced injections e_p - e_q
/// unaffected — effective resistances computed from it are exact.
///
/// `grounded_nodes`, if non-null, receives the chosen representatives.
CscMatrix grounded_laplacian(const Graph& g, real_t ground_conductance = 1.0,
                             std::vector<index_t>* grounded_nodes = nullptr);

/// Laplacian with arbitrary per-node shunt (diagonal) conductances added;
/// used for Schur-complement blocks which carry ground couplings.
CscMatrix laplacian_with_shunts(const Graph& g,
                                const std::vector<real_t>& shunts);

}  // namespace er
