#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace er {

void Graph::add_edge(index_t u, index_t v, real_t weight) {
  if (u < 0 || u >= num_nodes_ || v < 0 || v >= num_nodes_)
    throw std::out_of_range("Graph::add_edge: node index out of range");
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (!(weight > 0.0))
    throw std::invalid_argument("Graph::add_edge: weight must be positive");
  edges_.push_back({u, v, weight});
  adj_valid_ = false;
}

real_t Graph::total_weight() const {
  real_t acc = 0.0;
  for (const auto& e : edges_) acc += e.weight;
  return acc;
}

std::vector<real_t> Graph::weighted_degrees() const {
  std::vector<real_t> deg(static_cast<std::size_t>(num_nodes_), 0.0);
  for (const auto& e : edges_) {
    deg[static_cast<std::size_t>(e.u)] += e.weight;
    deg[static_cast<std::size_t>(e.v)] += e.weight;
  }
  return deg;
}

Graph Graph::coalesce_parallel_edges() const {
  // Normalize (u, v) with u < v, sort, and sum runs.
  std::vector<Edge> sorted = edges_;
  for (auto& e : sorted)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(sorted.begin(), sorted.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  Graph out(num_nodes_);
  out.reserve_edges(sorted.size());
  for (std::size_t k = 0; k < sorted.size();) {
    std::size_t j = k;
    real_t w = 0.0;
    while (j < sorted.size() && sorted[j].u == sorted[k].u &&
           sorted[j].v == sorted[k].v) {
      w += sorted[j].weight;
      ++j;
    }
    out.add_edge(sorted[k].u, sorted[k].v, w);
    k = j;
  }
  return out;
}

void Graph::build_adjacency() const {
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  adj_ptr_.assign(n + 1, 0);
  for (const auto& e : edges_) {
    ++adj_ptr_[static_cast<std::size_t>(e.u) + 1];
    ++adj_ptr_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) adj_ptr_[i + 1] += adj_ptr_[i];

  adj_nbr_.resize(2 * edges_.size());
  adj_w_.resize(2 * edges_.size());
  adj_eid_.resize(2 * edges_.size());
  std::vector<offset_t> next(adj_ptr_.begin(), adj_ptr_.end() - 1);
  for (std::size_t eid = 0; eid < edges_.size(); ++eid) {
    const Edge& e = edges_[eid];
    offset_t pu = next[static_cast<std::size_t>(e.u)]++;
    adj_nbr_[static_cast<std::size_t>(pu)] = e.v;
    adj_w_[static_cast<std::size_t>(pu)] = e.weight;
    adj_eid_[static_cast<std::size_t>(pu)] = static_cast<index_t>(eid);
    offset_t pv = next[static_cast<std::size_t>(e.v)]++;
    adj_nbr_[static_cast<std::size_t>(pv)] = e.u;
    adj_w_[static_cast<std::size_t>(pv)] = e.weight;
    adj_eid_[static_cast<std::size_t>(pv)] = static_cast<index_t>(eid);
  }
  adj_valid_ = true;
}

const std::vector<offset_t>& Graph::adjacency_ptr() const {
  if (!adj_valid_) build_adjacency();
  return adj_ptr_;
}

const std::vector<index_t>& Graph::neighbors() const {
  if (!adj_valid_) build_adjacency();
  return adj_nbr_;
}

const std::vector<real_t>& Graph::adjacency_weights() const {
  if (!adj_valid_) build_adjacency();
  return adj_w_;
}

const std::vector<index_t>& Graph::adjacency_edge_ids() const {
  if (!adj_valid_) build_adjacency();
  return adj_eid_;
}

index_t Graph::degree(index_t u) const {
  const auto& ptr = adjacency_ptr();
  return static_cast<index_t>(ptr[static_cast<std::size_t>(u) + 1] -
                              ptr[static_cast<std::size_t>(u)]);
}

}  // namespace er
