#include "graph/io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace er {

Graph read_edge_list(std::istream& in, index_t num_nodes) {
  std::vector<std::tuple<index_t, index_t, real_t>> edges;
  index_t max_node = -1;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    long long u = 0, v = 0;
    double w = 1.0;
    if (!(ls >> u >> v))
      throw std::runtime_error("edge list line " + std::to_string(line_no) +
                               ": malformed");
    ls >> w;
    if (u < 0 || v < 0)
      throw std::runtime_error("edge list line " + std::to_string(line_no) +
                               ": negative node id");
    if (!(w > 0.0))
      throw std::runtime_error("edge list line " + std::to_string(line_no) +
                               ": non-positive weight");
    if (u == v) continue;  // skip self-loops
    edges.emplace_back(static_cast<index_t>(u), static_cast<index_t>(v),
                       static_cast<real_t>(w));
    max_node = std::max(max_node, static_cast<index_t>(std::max(u, v)));
  }
  const index_t n = num_nodes >= 0 ? num_nodes : max_node + 1;
  Graph g(n);
  g.reserve_edges(edges.size());
  for (const auto& [u, v, w] : edges) g.add_edge(u, v, w);
  return g;
}

Graph read_edge_list_file(const std::string& path, index_t num_nodes) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_edge_list(in, num_nodes);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out.precision(17);
  out << "# " << g.num_nodes() << " nodes, " << g.num_edges() << " edges\n";
  for (const auto& e : g.edges())
    out << e.u << ' ' << e.v << ' ' << e.weight << '\n';
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  write_edge_list(g, out);
}

Graph graph_from_symmetric_matrix(const CscMatrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("graph_from_symmetric_matrix: not square");
  Graph g(a.cols());
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_ind();
  const auto& vv = a.values();
  for (index_t c = 0; c < a.cols(); ++c)
    for (offset_t k = cp[static_cast<std::size_t>(c)];
         k < cp[static_cast<std::size_t>(c) + 1]; ++k) {
      const index_t r = ri[static_cast<std::size_t>(k)];
      const real_t v = vv[static_cast<std::size_t>(k)];
      if (r < c && v != 0.0) g.add_edge(r, c, std::abs(v));
    }
  return g;
}

}  // namespace er
